// BENCH_09: sub-pattern fragment cache, before/after in one run.
//
// The fragment tier targets exactly the workload the whole-query cache is
// worst at: diversified queries that rarely repeat, so exact/sub/super
// hits are scarce and Method M verification dominates. "UU" (uniform
// query draw, uniform target draw) is that workload. Each query is
// decomposed into its canonical one-hop stars; cached fragment bitsets
// are intersected into the Method M candidate set between the
// FTV/formula pruning and sub-iso verification — a pruning-only tier, so
// answers, resident whole-query state and replacement decisions are
// bit-exact with --fragments=off (the "before" side, run in the same
// process over the same evolving dataset).
//
// The run FAILS (exit 1) when:
//   - any GC+ row's answers diverge from the uncached Method M baseline
//     (fragments must never change answers);
//   - a fragments-on row pruned nothing (fragment_candidates_pruned == 0
//     — the tier did not engage) or ran MORE sub-iso tests than its
//     fragments-off twin;
//   - a fragments-on row's admission/dedup/eviction counters differ from
//     its fragments-off twin (replacement decisions must be untouched);
//   - a fragments-off row reports any fragment activity.
//
// Per row the JSON carries the fragment counters (hits, computations,
// intersections, candidates pruned, admissions/merges/evictions,
// digest collisions) and the approximate resident byte footprint split
// (graph/bitset/posting/fragment bytes).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

namespace {

bool SameAnswers(const RunReport& a, const RunReport& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i] != b.answers[i]) return false;
  }
  return true;
}

void EmitRow(JsonWriter* json, const char* system, const char* path,
             const RunReport& r) {
  if (json == nullptr) return;
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "\"system\": \"%s\", \"path\": \"%s\", "
      "\"tests_per_query\": %.3f, \"avg_query_ms\": %.5f, "
      "\"verify_throughput_tests_per_sec\": %.1f, "
      "\"avg_fragment_ms\": %.5f, "
      "\"fragment_hits\": %llu, \"fragment_computed\": %llu, "
      "\"fragment_intersections\": %llu, "
      "\"fragment_candidates_pruned\": %llu, "
      "\"fragment_admissions\": %llu, \"fragment_merges\": %llu, "
      "\"fragment_evictions\": %llu, \"fragment_digest_collisions\": %llu, "
      "\"approx_graph_bytes\": %llu, \"approx_bitset_bytes\": %llu, "
      "\"approx_posting_bytes\": %llu, \"approx_fragment_bytes\": %llu",
      system, path, r.avg_si_tests(), r.avg_query_ms(),
      VerifyThroughputTestsPerSec(r),
      r.agg.queries == 0 ? 0.0
                         : static_cast<double>(r.agg.t_fragment_ns) / 1e6 /
                               static_cast<double>(r.agg.queries),
      static_cast<unsigned long long>(r.agg.fragment_hits),
      static_cast<unsigned long long>(r.agg.fragment_computed),
      static_cast<unsigned long long>(r.agg.fragment_intersections),
      static_cast<unsigned long long>(r.agg.fragment_candidates_pruned),
      static_cast<unsigned long long>(r.cache_stats.fragment_admissions),
      static_cast<unsigned long long>(r.cache_stats.fragment_merges),
      static_cast<unsigned long long>(r.cache_stats.fragment_evictions),
      static_cast<unsigned long long>(
          r.cache_stats.fragment_digest_collisions),
      static_cast<unsigned long long>(r.cache_stats.approx_graph_bytes),
      static_cast<unsigned long long>(r.cache_stats.approx_bitset_bytes),
      static_cast<unsigned long long>(r.cache_stats.approx_posting_bytes),
      static_cast<unsigned long long>(r.cache_stats.approx_fragment_bytes));
  json->Row(buf);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchConfig cfg = BenchConfig::FromFlags(flags);
  if (!flags.Has("labels")) {
    // A denser label space than the AIDS-like default, so distinct queries
    // share one-hop stars: the cross-query reuse the fragment store feeds
    // on. Override with --labels to study sparser sharing.
    cfg.labels = 12;
  }
  PrintConfig(cfg, "BENCH 09: sub-pattern fragment cache, before/after");
  ApplyProcessToggles(cfg);

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const Workload w = BuildWorkload("UU", corpus, cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const MatcherKind method = MatcherKind::kVf2Plus;

  std::unique_ptr<JsonWriter> json;
  if (!cfg.json_path.empty()) {
    json = std::make_unique<JsonWriter>(cfg.json_path, "fragments", cfg);
  }

  int failures = 0;

  // --- Baseline: uncached Method M (the answer oracle) -------------------
  RunnerConfig base_rc = MakeRunnerConfig(RunMode::kMethodM, method, cfg);
  base_rc.record_answers = true;
  const RunReport base = RunWorkload(corpus, w, plan, base_rc);
  std::printf("\n%-6s %-10s %12s %12s %12s %12s %12s\n", "sys", "path",
              "tests/q", "avg q ms", "frag ms", "frag hits", "pruned");
  std::printf("%-6s %-10s %12.1f %12.5f %12.5f %12llu %12llu\n", "M", "-",
              base.avg_si_tests(), base.avg_query_ms(), 0.0, 0ULL, 0ULL);
  EmitRow(json.get(), "M", "baseline", base);

  for (const RunMode sys : {RunMode::kEvi, RunMode::kCon}) {
    const std::string sys_name(RunModeName(sys));
    RunReport sides[2];
    for (const bool frag : {false, true}) {
      RunnerConfig rc = MakeRunnerConfig(sys, method, cfg);
      rc.fragments = frag;
      rc.record_answers = true;
      RunReport r = RunWorkload(corpus, w, plan, rc);
      const double frag_ms =
          r.agg.queries == 0 ? 0.0
                             : static_cast<double>(r.agg.t_fragment_ns) /
                                   1e6 / static_cast<double>(r.agg.queries);
      std::printf("%-6s %-10s %12.1f %12.5f %12.5f %12llu %12llu\n",
                  sys_name.c_str(),
                  frag ? "fragments" : "off", r.avg_si_tests(),
                  r.avg_query_ms(), frag_ms,
                  static_cast<unsigned long long>(r.agg.fragment_hits),
                  static_cast<unsigned long long>(
                      r.agg.fragment_candidates_pruned));
      std::fflush(stdout);
      EmitRow(json.get(), sys_name.c_str(),
              frag ? "fragments" : "off", r);
      sides[frag ? 1 : 0] = std::move(r);
    }
    const RunReport& off = sides[0];
    const RunReport& on = sides[1];

    if (!SameAnswers(base, off) || !SameAnswers(base, on)) {
      std::fprintf(stderr,
                   "FAIL: %s answers diverged from the Method M baseline\n",
                   sys_name.c_str());
      ++failures;
    }
    if (on.agg.fragment_candidates_pruned == 0) {
      std::fprintf(stderr,
                   "FAIL: %s fragments-on pruned no candidates — the tier "
                   "never engaged\n",
                   sys_name.c_str());
      ++failures;
    }
    if (on.agg.si_tests > off.agg.si_tests) {
      std::fprintf(stderr,
                   "FAIL: %s fragments-on ran %llu sub-iso tests vs %llu "
                   "off — pruning made verification worse\n",
                   sys_name.c_str(),
                   static_cast<unsigned long long>(on.agg.si_tests),
                   static_cast<unsigned long long>(off.agg.si_tests));
      ++failures;
    }
    if (on.cache_stats.total_admissions != off.cache_stats.total_admissions ||
        on.cache_stats.total_admission_dedups !=
            off.cache_stats.total_admission_dedups ||
        on.cache_stats.total_evictions != off.cache_stats.total_evictions) {
      std::fprintf(stderr,
                   "FAIL: %s whole-query replacement diverged "
                   "(admissions %llu/%llu, dedups %llu/%llu, evictions "
                   "%llu/%llu on/off)\n",
                   sys_name.c_str(),
                   static_cast<unsigned long long>(
                       on.cache_stats.total_admissions),
                   static_cast<unsigned long long>(
                       off.cache_stats.total_admissions),
                   static_cast<unsigned long long>(
                       on.cache_stats.total_admission_dedups),
                   static_cast<unsigned long long>(
                       off.cache_stats.total_admission_dedups),
                   static_cast<unsigned long long>(
                       on.cache_stats.total_evictions),
                   static_cast<unsigned long long>(
                       off.cache_stats.total_evictions));
      ++failures;
    }
    if (off.agg.fragment_hits != 0 || off.agg.fragment_computed != 0 ||
        off.agg.fragment_candidates_pruned != 0 ||
        off.cache_stats.fragment_admissions != 0) {
      std::fprintf(stderr,
                   "FAIL: %s fragments-off reported fragment activity\n",
                   sys_name.c_str());
      ++failures;
    }
    if (on.cache_stats.approx_fragment_bytes == 0 &&
        on.cache_stats.fragment_admissions != 0) {
      std::fprintf(stderr,
                   "FAIL: %s resident fragments but zero accounted bytes\n",
                   sys_name.c_str());
      ++failures;
    }
  }

  std::printf(
      "\n# Expected shape: identical answers across M, off and fragments\n"
      "# (the tier is pruning-only). tests/q drops on the fragments side —\n"
      "# resident fragment bitsets AND-NOT candidates away before\n"
      "# verification — while whole-query admissions/evictions match the\n"
      "# off side exactly. frag ms (intersection + on-miss star\n"
      "# computation) stays well under the verify time it saves; the byte\n"
      "# split shows what the fragment store costs to keep resident.\n");
  return failures == 0 ? 0 : 1;
}
