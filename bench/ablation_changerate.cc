// Ablation A3: change-rate sweep — where does CON's advantage over EVI
// come from, and where does it erode? EVI pays a full re-warm per batch;
// CON only loses the bits the batch actually touched. As batches become
// very frequent, both degrade towards bare Method M, CON much more
// slowly.

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Ablation A3: change-rate sweep (VF2+, ZU)");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const Workload w = BuildWorkload("ZU", corpus, cfg);

  std::printf("\n%10s %10s %12s %12s %12s %12s\n", "batches", "ops/batch",
              "EVI t-spdup", "CON t-spdup", "EVI n-spdup", "CON n-spdup");
  struct Point {
    std::uint32_t batches;
    std::uint32_t ops;
  };
  const std::vector<Point> points = {
      {0, 0},                          // static dataset
      {cfg.batches / 2 + 1, cfg.ops_per_batch},
      {cfg.batches, cfg.ops_per_batch},
      {cfg.batches * 3, cfg.ops_per_batch},
      {cfg.batches * 10, cfg.ops_per_batch},
  };
  for (const Point p : points) {
    BenchConfig point_cfg = cfg;
    point_cfg.batches = p.batches;
    point_cfg.ops_per_batch = p.ops;
    const ChangePlan plan = BuildPlan(point_cfg, corpus.size());
    const RunReport base = RunWorkload(
        corpus, w, plan,
        MakeRunnerConfig(RunMode::kMethodM, MatcherKind::kVf2Plus, cfg));
    const RunReport evi = RunWorkload(
        corpus, w, plan,
        MakeRunnerConfig(RunMode::kEvi, MatcherKind::kVf2Plus, cfg));
    const RunReport con = RunWorkload(
        corpus, w, plan,
        MakeRunnerConfig(RunMode::kCon, MatcherKind::kVf2Plus, cfg));
    std::printf("%10u %10u %11.2fx %11.2fx %11.2fx %11.2fx\n", p.batches,
                p.ops, QueryTimeSpeedup(base, evi),
                QueryTimeSpeedup(base, con), SiTestSpeedup(base, evi),
                SiTestSpeedup(base, con));
    std::fflush(stdout);
  }
  std::printf(
      "\n# Expected: with no changes EVI == CON; as batches multiply EVI\n"
      "# collapses towards 1x while CON degrades gracefully.\n");
  return 0;
}
