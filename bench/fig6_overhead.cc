// Figure 6: average execution time and overhead per query (both panels).
//
// Paper numbers (Method M = VF2), average query time in ms with GC+
// maintenance overhead alongside:
//        ZZ: M 1217, EVI 698 (+4), CON 155 (+11)
//        ZU: M 1130, EVI 789 (+3), CON 237 (+9)
//        UU: M 1385, EVI 1085 (+3), CON 270 (+7)
//        0%: M 1627, EVI 856 (+3), CON 250 (+11)
//       20%: M 1383, EVI 785 (+3), CON 266 (+10)
//       50%: M  990, EVI 631 (+3), CON 217 (+8)
//
// Overhead = window/cache maintenance (admission, replacement,
// re-indexing). For CON the overhead additionally covers Algorithms 1 + 2
// (log analysis + validation), which §7.2 reports as <1% of CON overhead —
// printed here as its own column (E6).

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Figure 6: per-query execution time and overhead (VF2)");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const std::vector<std::string> workloads = {"ZZ", "ZU", "UU",
                                              "0%", "20%", "50%"};
  const MatcherKind method = MatcherKind::kVf2;

  std::printf("\n%-10s %-6s %14s %14s %16s %18s\n", "workload", "system",
              "avg query ms", "overhead ms", "validation ms",
              "validation share");
  for (const std::string& wname : workloads) {
    const Workload w = BuildWorkload(wname, corpus, cfg);
    struct Row {
      const char* name;
      RunMode mode;
    };
    for (const Row row : {Row{"M", RunMode::kMethodM},
                          Row{"EVI", RunMode::kEvi},
                          Row{"CON", RunMode::kCon}}) {
      const RunReport r = RunWorkload(
          corpus, w, plan, MakeRunnerConfig(row.mode, method, cfg));
      const double queries = static_cast<double>(r.agg.queries);
      const double validation_ms =
          queries > 0 ? static_cast<double>(r.agg.t_validate_ns) / 1e6 / queries
                      : 0.0;
      if (row.mode == RunMode::kMethodM) {
        // Bare Method M has no cache to validate or maintain.
        std::printf("%-10s %-6s %14.3f %14s %16s %18s\n", wname.c_str(),
                    row.name, r.avg_query_ms(), "-", "-", "-");
      } else {
        std::printf("%-10s %-6s %14.3f %14.3f %16.4f %17.2f%%\n",
                    wname.c_str(), row.name, r.avg_query_ms(),
                    r.avg_overhead_ms(), validation_ms,
                    100.0 * r.agg.ValidationShareOfOverhead());
      }
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n# Expected shape (paper): CON query time << EVI << M; overheads are\n"
      "# a few ms and CON-specific validation is a trivial share (<1%% at\n"
      "# paper scale; the share shrinks further as dataset size grows).\n");
  return 0;
}
