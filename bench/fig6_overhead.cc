// Figure 6: average execution time and overhead per query (both panels).
//
// Paper numbers (Method M = VF2), average query time in ms with GC+
// maintenance overhead alongside:
//        ZZ: M 1217, EVI 698 (+4), CON 155 (+11)
//        ZU: M 1130, EVI 789 (+3), CON 237 (+9)
//        UU: M 1385, EVI 1085 (+3), CON 270 (+7)
//        0%: M 1627, EVI 856 (+3), CON 250 (+11)
//       20%: M 1383, EVI 785 (+3), CON 266 (+10)
//       50%: M  990, EVI 631 (+3), CON 217 (+8)
//
// Overhead = window/cache maintenance (admission, replacement,
// re-indexing). For CON the overhead additionally covers Algorithms 1 + 2
// (log analysis + validation), which §7.2 reports as <1% of CON overhead —
// printed here as its own column (E6).
//
// The probe column isolates per-query hit-discovery cost — the part the
// inverted feature-signature index attacks. With --json=PATH every
// workload runs over both the legacy (--legacy: brute-force O(resident)
// discovery scan) and the optimized path in one invocation, emitting a
// machine-readable before/after report.

#include <memory>

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Figure 6: per-query execution time and overhead (VF2)");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const std::vector<std::string> workloads = {"ZZ", "ZU", "UU",
                                              "0%", "20%", "50%"};
  const MatcherKind method = MatcherKind::kVf2;

  std::unique_ptr<JsonWriter> json;
  std::vector<bool> legacy_modes;
  if (!cfg.json_path.empty()) {
    json = std::make_unique<JsonWriter>(cfg.json_path, "fig6_overhead", cfg);
    legacy_modes = {true, false};  // before, then after
  } else {
    legacy_modes = {cfg.legacy_hot_path};
  }

  std::printf("\n%-10s %-10s %-6s %13s %12s %11s %12s %13s %15s\n",
              "workload", "path", "system", "avg query ms", "overhead ms",
              "probe ms", "discover ms", "validation ms", "validation shr");
  for (const std::string& wname : workloads) {
    const Workload w = BuildWorkload(wname, corpus, cfg);
    for (const bool legacy : legacy_modes) {
      BenchConfig mode_cfg = cfg;
      mode_cfg.legacy_hot_path = legacy;
      const char* path = legacy ? "legacy" : "optimized";
      struct Row {
        const char* name;
        RunMode mode;
      };
      for (const Row row : {Row{"M", RunMode::kMethodM},
                            Row{"EVI", RunMode::kEvi},
                            Row{"CON", RunMode::kCon}}) {
        const RunReport r = RunWorkload(
            corpus, w, plan, MakeRunnerConfig(row.mode, method, mode_cfg));
        const double queries = static_cast<double>(r.agg.queries);
        const double validation_ms =
            queries > 0
                ? static_cast<double>(r.agg.t_validate_ns) / 1e6 / queries
                : 0.0;
        if (row.mode == RunMode::kMethodM) {
          // Bare Method M has no cache to validate, maintain or probe.
          std::printf("%-10s %-10s %-6s %13.3f %12s %11s %12s %13s %15s\n",
                      wname.c_str(), path, row.name, r.avg_query_ms(), "-",
                      "-", "-", "-", "-");
        } else {
          std::printf(
              "%-10s %-10s %-6s %13.3f %12.3f %11.4f %12.5f %13.4f %14.2f%%\n",
              wname.c_str(), path, row.name, r.avg_query_ms(),
              r.avg_overhead_ms(), AvgProbeMs(r), AvgDiscoverMs(r),
              validation_ms, 100.0 * r.agg.ValidationShareOfOverhead());
        }
        std::fflush(stdout);
        if (json != nullptr) {
          char buf[512];
          std::snprintf(
              buf, sizeof(buf),
              "\"workload\": \"%s\", \"path\": \"%s\", \"system\": \"%s\", "
              "\"avg_query_ms\": %.5f, \"avg_overhead_ms\": %.5f, "
              "\"avg_probe_ms\": %.5f, \"avg_discover_ms\": %.5f, "
              "\"validation_ms\": %.5f",
              wname.c_str(), path, row.name, r.avg_query_ms(),
              r.avg_overhead_ms(), AvgProbeMs(r), AvgDiscoverMs(r),
              validation_ms);
          json->Row(buf);
        }
      }
    }
  }
  std::printf(
      "\n# Expected shape (paper): CON query time << EVI << M; overheads are\n"
      "# a few ms and CON-specific validation is a trivial share (<1%% at\n"
      "# paper scale; the share shrinks further as dataset size grows).\n"
      "# The optimized path must show lower probe ms than legacy.\n");
  return 0;
}
