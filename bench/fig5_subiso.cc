// Figure 5: GC+ speedup in the NUMBER of sub-iso tests performed.
//
// Paper series (method-independent by construction):
//        ZZ   ZU   UU   0%   20%  50%
//   EVI 1.94 1.81 1.53 2.21 1.96 1.83
//   CON 8.71 6.53 7.30 9.84 5.42 6.23
//
// Under a fixed configuration the pruned candidate set is identical for
// every Method M (asserted by the test suite), so one run per
// workload/model suffices; we use VF2+ as the verifier.

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Figure 5: GC+ speedup in number of sub-iso tests");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const std::vector<std::string> workloads = {"ZZ", "ZU", "UU",
                                              "0%", "20%", "50%"};
  const MatcherKind method = MatcherKind::kVf2Plus;

  std::printf("\n%-10s %14s %14s %14s %10s %10s\n", "workload", "M tests/q",
              "EVI tests/q", "CON tests/q", "EVI spdup", "CON spdup");
  for (const std::string& wname : workloads) {
    const Workload w = BuildWorkload(wname, corpus, cfg);
    const RunReport base = RunWorkload(
        corpus, w, plan, MakeRunnerConfig(RunMode::kMethodM, method, cfg));
    const RunReport evi = RunWorkload(
        corpus, w, plan, MakeRunnerConfig(RunMode::kEvi, method, cfg));
    const RunReport con = RunWorkload(
        corpus, w, plan, MakeRunnerConfig(RunMode::kCon, method, cfg));
    std::printf("%-10s %14.1f %14.1f %14.1f %9.2fx %9.2fx\n", wname.c_str(),
                base.avg_si_tests(), evi.avg_si_tests(), con.avg_si_tests(),
                SiTestSpeedup(base, evi), SiTestSpeedup(base, con));
    std::fflush(stdout);
  }
  std::printf(
      "\n# Expected shape (paper): CON saves ~5-10x of the tests, EVI only\n"
      "# ~1.5-2.2x; reductions in tests exceed reductions in query time\n"
      "# (cache hits have heterogeneous value).\n");
  return 0;
}
