// Figure 5: GC+ speedup in the NUMBER of sub-iso tests performed.
//
// Paper series (method-independent by construction):
//        ZZ   ZU   UU   0%   20%  50%
//   EVI 1.94 1.81 1.53 2.21 1.96 1.83
//   CON 8.71 6.53 7.30 9.84 5.42 6.23
//
// Under a fixed configuration the pruned candidate set is identical for
// every Method M (asserted by the test suite), so one run per
// workload/model suffices; we use VF2+ as the verifier.
//
// Besides the paper's test-count axis this bench reports Method M
// verification THROUGHPUT (sub-iso tests per second of verify wall time),
// the axis the reusable-match-context optimisation moves. With
// --json=PATH every workload runs twice — once over the legacy hot path
// (per-pair match-state recomputation, --legacy) and once over the
// optimized one — and both sides land in one machine-readable report, so
// before/after comes from the same machine in the same run.

#include <memory>

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Figure 5: GC+ speedup in number of sub-iso tests");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const std::vector<std::string> workloads = {"ZZ", "ZU", "UU",
                                              "0%", "20%", "50%"};
  const MatcherKind method = MatcherKind::kVf2Plus;

  std::unique_ptr<JsonWriter> json;
  std::vector<bool> legacy_modes;
  if (!cfg.json_path.empty()) {
    json = std::make_unique<JsonWriter>(cfg.json_path, "fig5_subiso", cfg);
    legacy_modes = {true, false};  // before, then after
  } else {
    legacy_modes = {cfg.legacy_hot_path};
  }

  std::printf("\n%-10s %-10s %12s %12s %12s %9s %9s %14s\n", "workload",
              "path", "M tests/q", "EVI tests/q", "CON tests/q", "EVI spd",
              "CON spd", "M verify t/s");
  for (const std::string& wname : workloads) {
    const Workload w = BuildWorkload(wname, corpus, cfg);
    for (const bool legacy : legacy_modes) {
      BenchConfig mode_cfg = cfg;
      mode_cfg.legacy_hot_path = legacy;
      const char* path = legacy ? "legacy" : "optimized";
      const RunReport base =
          RunWorkload(corpus, w, plan,
                      MakeRunnerConfig(RunMode::kMethodM, method, mode_cfg));
      const RunReport evi = RunWorkload(
          corpus, w, plan, MakeRunnerConfig(RunMode::kEvi, method, mode_cfg));
      const RunReport con = RunWorkload(
          corpus, w, plan, MakeRunnerConfig(RunMode::kCon, method, mode_cfg));
      std::printf("%-10s %-10s %12.1f %12.1f %12.1f %8.2fx %8.2fx %14.0f\n",
                  wname.c_str(), path, base.avg_si_tests(),
                  evi.avg_si_tests(), con.avg_si_tests(),
                  SiTestSpeedup(base, evi), SiTestSpeedup(base, con),
                  VerifyThroughputTestsPerSec(base));
      std::fflush(stdout);
      if (json != nullptr) {
        struct Row {
          const char* system;
          const RunReport* r;
        };
        for (const Row row :
             {Row{"M", &base}, Row{"EVI", &evi}, Row{"CON", &con}}) {
          char buf[512];
          std::snprintf(
              buf, sizeof(buf),
              "\"workload\": \"%s\", \"path\": \"%s\", \"system\": \"%s\", "
              "\"tests_per_query\": %.3f, \"avg_query_ms\": %.5f, "
              "\"avg_verify_ms\": %.5f, "
              "\"verify_throughput_tests_per_sec\": %.1f",
              wname.c_str(), path, row.system, row.r->avg_si_tests(),
              row.r->avg_query_ms(),
              row.r->agg.queries == 0
                  ? 0.0
                  : static_cast<double>(row.r->agg.t_verify_ns) / 1e6 /
                        static_cast<double>(row.r->agg.queries),
              VerifyThroughputTestsPerSec(*row.r));
          json->Row(buf);
        }
      }
    }
  }
  std::printf(
      "\n# Expected shape (paper): CON saves ~5-10x of the tests, EVI only\n"
      "# ~1.5-2.2x; reductions in tests exceed reductions in query time\n"
      "# (cache hits have heterogeneous value). The optimized path must\n"
      "# additionally verify >= 1.5x more tests per second than legacy.\n");
  return 0;
}
