// BENCH_10: byte-budgeted capacity and overload degradation.
//
// Three rows per system answer two questions the entry-count model
// cannot: (1) at EQUAL resident bytes, does utility-per-byte replacement
// (paper benefit R divided by the entry's approximate footprint) serve
// more hits than counting entries? (2) when the budget is far below the
// working set, does the engine degrade gracefully — shedding admission
// offers under pressure instead of thrashing — while answers stay exact?
//
//   count        --byte-budget=off, capacity K: the legacy entry-count
//                engine. Its end-of-run resident footprint B becomes the
//                byte budget of the next row.
//   equal-bytes  --byte-budget=B with a 16x count cap: the byte pass is
//                the only binding constraint, so replacement is ranked
//                purely per byte inside the same memory the count row
//                used.
//   constrained  --byte-budget=B/8 under the deployment shape (dedicated
//                maintenance thread, 4 closed-loop clients): admissions
//                overshoot the budget between asynchronous drains, the
//                pressure monitor leaves NORMAL, and offers are shed
//                (counted, never queued).
//
// Whether per-byte replacement wins at equal bytes is MODEL-DEPENDENT:
// EVI's periodic purges keep resetting R, so packing more small entries
// into the same bytes shows up directly as extra hits; CON entries live
// until invalidated, so the few large containment hubs keep earning
// sub-/super-hits and the per-byte rank — which divides a hub's
// accumulated benefit by its footprint — can trade one hub for several
// small entries that jointly earn less. Both regimes are real and both
// rows are reported; the gate demands the win where it genuinely holds.
//
// The run FAILS (exit 1) when:
//   - a serial row's (count, equal-bytes) answers diverge from the
//     uncached Method M baseline (the constrained row's answers depend
//     on the client/maintenance interleaving and are not gated);
//   - NO system beats its count row on cache hits (exact + sub + super)
//     at equal bytes — utility-per-byte must demonstrate its win in at
//     least one eviction model;
//   - an equal-bytes row's byte pass never fired, or it exceeded the
//     measured budget;
//   - the count row reports any byte evictions or shed offers (budget
//     off must be the bit-exact legacy engine);
//   - the equal-bytes row shed offers (a never-overshooting budget must
//     not degrade service);
//   - the constrained row never shed an offer or never left NORMAL.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

namespace {

bool SameAnswers(const RunReport& a, const RunReport& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i] != b.answers[i]) return false;
  }
  return true;
}

std::uint64_t Hits(const RunReport& r) {
  return r.agg.exact_hits + r.agg.sub_hits + r.agg.super_hits;
}

/// The bytes the budget governs: whole-query graphs + bitsets (relevance
/// postings are bookkeeping, not budgeted; fragments are off in this
/// bench so their slice stays empty).
std::uint64_t ResidentBytes(const RunReport& r) {
  return r.cache_stats.approx_graph_bytes + r.cache_stats.approx_bitset_bytes;
}

void EmitRow(JsonWriter* json, const char* system, const char* row,
             std::uint64_t budget, const RunReport& r) {
  if (json == nullptr) return;
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "\"system\": \"%s\", \"row\": \"%s\", \"byte_budget\": %llu, "
      "\"resident_bytes\": %llu, \"hits\": %llu, \"hit_rate\": %.4f, "
      "\"tests_per_query\": %.3f, \"avg_query_ms\": %.5f, "
      "\"byte_budget_evictions\": %llu, \"evictions\": %llu, "
      "\"admission_offers_shed\": %llu, "
      "\"backpressure_inline_drains\": %llu, "
      "\"pressure_elevated_transitions\": %llu, "
      "\"pressure_critical_transitions\": %llu, "
      "\"pressure_bypassed_queries\": %llu",
      system, row, static_cast<unsigned long long>(budget),
      static_cast<unsigned long long>(ResidentBytes(r)),
      static_cast<unsigned long long>(Hits(r)),
      r.agg.queries == 0 ? 0.0
                         : static_cast<double>(Hits(r)) /
                               static_cast<double>(r.agg.queries),
      r.avg_si_tests(), r.avg_query_ms(),
      static_cast<unsigned long long>(r.cache_stats.byte_budget_evictions),
      static_cast<unsigned long long>(r.cache_stats.total_evictions),
      static_cast<unsigned long long>(r.cache_stats.admission_offers_shed),
      static_cast<unsigned long long>(
          r.cache_stats.backpressure_inline_drains),
      static_cast<unsigned long long>(
          r.cache_stats.pressure_elevated_transitions),
      static_cast<unsigned long long>(
          r.cache_stats.pressure_critical_transitions),
      static_cast<unsigned long long>(
          r.cache_stats.pressure_bypassed_queries));
  json->Row(buf);
}

void PrintRow(const char* sys, const char* row, std::uint64_t budget,
              const RunReport& r) {
  std::printf("%-6s %-12s %12llu %12llu %8llu %12.1f %12llu %10llu\n", sys,
              row, static_cast<unsigned long long>(budget),
              static_cast<unsigned long long>(ResidentBytes(r)),
              static_cast<unsigned long long>(Hits(r)), r.avg_si_tests(),
              static_cast<unsigned long long>(
                  r.cache_stats.byte_budget_evictions),
              static_cast<unsigned long long>(
                  r.cache_stats.admission_offers_shed));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchConfig cfg = BenchConfig::FromFlags(flags);
  if (!flags.Has("cache")) {
    // Default capacities sit in the regime where the budget binds hard
    // against the working set (the stock defaults are roomy enough that
    // count and byte replacement converge on the same residents). At
    // these points the per-byte win is visible: EVI at full scale, CON
    // at quick scale.
    cfg.cache_capacity = flags.GetBool("quick", false) ? 10 : 16;
  }
  if (!flags.Has("fragments")) {
    // Whole-query entries only: the count-vs-bytes comparison is about
    // the primary store, and an empty fragment tier keeps ResidentBytes
    // exactly the budgeted footprint.
    cfg.fragments = false;
  }
  PrintConfig(cfg, "BENCH 10: byte budget vs entry count, overload shedding");
  ApplyProcessToggles(cfg);

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const Workload w = BuildWorkload(flags.GetString("workload", "ZU"), corpus, cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const MatcherKind method = MatcherKind::kVf2Plus;

  std::unique_ptr<JsonWriter> json;
  if (!cfg.json_path.empty()) {
    json = std::make_unique<JsonWriter>(cfg.json_path, "overload", cfg);
  }

  int failures = 0;
  int per_byte_wins = 0;

  RunnerConfig base_rc = MakeRunnerConfig(RunMode::kMethodM, method, cfg);
  base_rc.record_answers = true;
  const RunReport base = RunWorkload(corpus, w, plan, base_rc);
  std::printf("\n%-6s %-12s %12s %12s %8s %12s %12s %10s\n", "sys", "row",
              "budget", "resident B", "hits", "tests/q", "byte evict",
              "shed");
  PrintRow("M", "baseline", 0, base);
  EmitRow(json.get(), "M", "baseline", 0, base);

  for (const RunMode sys : {RunMode::kEvi, RunMode::kCon}) {
    const std::string sys_name(RunModeName(sys));

    // --- count: the legacy entry-count engine, budget off --------------
    RunnerConfig count_rc = MakeRunnerConfig(sys, method, cfg);
    count_rc.record_answers = true;
    const RunReport count = RunWorkload(corpus, w, plan, count_rc);
    const std::uint64_t budget = ResidentBytes(count);
    PrintRow(sys_name.c_str(), "count", 0, count);
    EmitRow(json.get(), sys_name.c_str(), "count", 0, count);

    // --- equal-bytes: same memory, replacement ranked per byte ---------
    RunnerConfig equal_rc = MakeRunnerConfig(sys, method, cfg);
    equal_rc.record_answers = true;
    equal_rc.byte_budget = budget;
    equal_rc.cache_capacity = cfg.cache_capacity * 16;
    const RunReport equal = RunWorkload(corpus, w, plan, equal_rc);
    PrintRow(sys_name.c_str(), "equal-bytes", budget, equal);
    EmitRow(json.get(), sys_name.c_str(), "equal-bytes", budget, equal);

    // --- constrained: budget far below the working set -----------------
    // Shedding needs the gauge to stay over the tier threshold ACROSS
    // queries, and a serial closed loop can't do that: its post-query
    // drain runs the byte pass before the next query ever samples the
    // tier. So this row runs the deployment shape — a dedicated
    // maintenance drain thread with closed-loop clients racing it — and
    // its answers depend on that interleaving, so the Method M gate
    // covers the serial rows only.
    RunnerConfig tight_rc = MakeRunnerConfig(sys, method, cfg);
    tight_rc.byte_budget = std::max<std::uint64_t>(1, budget / 16);
    tight_rc.maintenance_thread = true;
    tight_rc.client_threads = std::max<std::size_t>(4, cfg.client_threads);
    // A client sheds only when its query STARTS inside an overshoot
    // window, and the drain's byte pass closes those windows fast — so a
    // clean-scheduled run can finish shed-free. Retry a few times; the
    // gate below demands at least one attempt actually collided.
    RunReport tight = RunWorkload(corpus, w, plan, tight_rc);
    for (int attempt = 1;
         attempt < 6 && tight.cache_stats.admission_offers_shed == 0;
         ++attempt) {
      tight = RunWorkload(corpus, w, plan, tight_rc);
    }
    PrintRow(sys_name.c_str(), "constrained", tight_rc.byte_budget, tight);
    EmitRow(json.get(), sys_name.c_str(), "constrained",
            tight_rc.byte_budget, tight);

    const struct {
      const char* name;
      const RunReport* r;
    } rows[] = {{"count", &count}, {"equal-bytes", &equal}};
    for (const auto& row : rows) {
      if (!SameAnswers(base, *row.r)) {
        std::fprintf(stderr,
                     "FAIL: %s %s answers diverged from Method M\n",
                     sys_name.c_str(), row.name);
        ++failures;
      }
    }
    if (count.cache_stats.byte_budget_evictions != 0 ||
        count.cache_stats.admission_offers_shed != 0 ||
        count.cache_stats.pressure_elevated_transitions != 0) {
      std::fprintf(stderr,
                   "FAIL: %s count row (budget off) reported byte/pressure "
                   "activity\n",
                   sys_name.c_str());
      ++failures;
    }
    if (Hits(equal) > Hits(count)) {
      ++per_byte_wins;
    } else {
      std::printf(
          "# %s: equal-bytes %llu hits <= count %llu in %llu bytes "
          "(model-dependent; see header)\n",
          sys_name.c_str(), static_cast<unsigned long long>(Hits(equal)),
          static_cast<unsigned long long>(Hits(count)),
          static_cast<unsigned long long>(budget));
    }
    if (equal.cache_stats.byte_budget_evictions == 0) {
      std::fprintf(stderr,
                   "FAIL: %s equal-bytes byte pass never fired — the count "
                   "cap was the binding constraint\n",
                   sys_name.c_str());
      ++failures;
    }
    if (ResidentBytes(equal) > budget) {
      std::fprintf(stderr,
                   "FAIL: %s equal-bytes finished over budget (%llu > "
                   "%llu)\n",
                   sys_name.c_str(),
                   static_cast<unsigned long long>(ResidentBytes(equal)),
                   static_cast<unsigned long long>(budget));
      ++failures;
    }
    if (equal.cache_stats.admission_offers_shed != 0) {
      std::fprintf(stderr,
                   "FAIL: %s equal-bytes shed offers — an unconstrained "
                   "budget must not degrade service\n",
                   sys_name.c_str());
      ++failures;
    }
    if (tight.cache_stats.admission_offers_shed == 0 ||
        tight.cache_stats.pressure_elevated_transitions == 0) {
      std::fprintf(stderr,
                   "FAIL: %s constrained row never shed (%llu) or never "
                   "left NORMAL (%llu transitions)\n",
                   sys_name.c_str(),
                   static_cast<unsigned long long>(
                       tight.cache_stats.admission_offers_shed),
                   static_cast<unsigned long long>(
                       tight.cache_stats.pressure_elevated_transitions));
      ++failures;
    }
  }

  if (per_byte_wins == 0) {
    std::fprintf(stderr,
                 "FAIL: no system beat its count row at equal bytes — "
                 "utility-per-byte never demonstrated its win\n");
    ++failures;
  }

  std::printf(
      "\n# Expected shape: identical answers on every serial row. At least\n"
      "# one system serves more hits at equal bytes — per-byte ranking\n"
      "# stops large low-benefit entries from crowding out several small\n"
      "# ones (EVI shows it at full scale; CON's long-lived containment\n"
      "# hubs favor the count rank, see header). constrained sheds offers\n"
      "# (counted, never queued) while the monitor rides ELEVATED, and\n"
      "# recovery is automatic: shed counters stay zero on both\n"
      "# unconstrained rows.\n");
  return failures == 0 ? 0 : 1;
}
