// Ablation A1: replacement policy comparison (HD vs PIN vs PINC vs
// LRU/LFU/RANDOM). The paper uses HD throughout, citing GraphCache's
// finding that HD is "always better or on par with the best alternative";
// this ablation regenerates that comparison under dataset changes.

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Ablation A1: replacement policies (CON, VF2+)");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const std::vector<std::string> workloads = {"ZU", "UU"};
  const std::vector<ReplacementPolicy> policies = {
      ReplacementPolicy::kHybrid, ReplacementPolicy::kPin,
      ReplacementPolicy::kPinc,   ReplacementPolicy::kLru,
      ReplacementPolicy::kLfu,    ReplacementPolicy::kRandom};

  for (const std::string& wname : workloads) {
    const Workload w = BuildWorkload(wname, corpus, cfg);
    const RunReport base = RunWorkload(
        corpus, w, plan,
        MakeRunnerConfig(RunMode::kMethodM, MatcherKind::kVf2Plus, cfg));
    std::printf("\nworkload %s (M baseline: %.3f ms/query, %.1f tests/query)\n",
                wname.c_str(), base.avg_query_ms(), base.avg_si_tests());
    std::printf("%-8s %14s %14s %10s %10s %12s\n", "policy", "avg query ms",
                "tests/query", "t-spdup", "n-spdup", "evictions");
    for (const ReplacementPolicy policy : policies) {
      RunnerConfig rc = MakeRunnerConfig(RunMode::kCon,
                                         MatcherKind::kVf2Plus, cfg);
      rc.policy = policy;
      const RunReport r = RunWorkload(corpus, w, plan, rc);
      std::printf("%-8s %14.3f %14.1f %9.2fx %9.2fx %12llu\n",
                  std::string(ReplacementPolicyName(policy)).c_str(),
                  r.avg_query_ms(), r.avg_si_tests(),
                  QueryTimeSpeedup(base, r), SiTestSpeedup(base, r),
                  static_cast<unsigned long long>(
                      r.cache_stats.total_evictions));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n# Expected: HD tracks the better of PIN/PINC; benefit-aware\n"
      "# policies beat LRU/LFU/RANDOM on skewed (ZU) workloads.\n");
  return 0;
}
