// BENCH_07: reconciliation through the change-relevance index,
// before/after in one run.
//
// "Before" reconciles every change batch brute-force: Algorithm 2 walks
// every resident entry of every shard (ValidateAll), even when the batch
// touched a handful of dataset graphs. "After" routes the batch through
// the change-relevance index: only entries whose CGvalid footprint
// intersects the batch run the counter loop, everything else keeps its
// bits untouched by construction. A third CON row adds delta
// re-validation (per-pair keep/re-verify instead of fade-only clears).
//
// The bench drives the engine directly (not through RunWorkload) so the
// churn's *locality* is controlled: "localized" batches aim their edge
// ops at a ≤1% band of the newest live graphs — the regime the index
// exists for — while "uniform" batches spray ops across the whole id
// space, the honest worst case where footprints rarely let anything
// skip. Both run on the epoch read path, where reconciliation happens
// inside ApplyDatasetChanges, so wall-clocking the mutation calls times
// reconciliation itself.
//
// The run fails (exit 1) if any path's per-step answers diverge from the
// brute-force oracle's (the equivalence suite pins this too), or if the
// localized CON "after" row does not touch strictly fewer entries than
// "before". Wall-clock deltas are reported, not gated.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/graphcache_plus.hpp"

using namespace gcp;
using namespace gcp::bench;

namespace {

struct PathToggles {
  const char* path;  // "before" / "after" / "after+delta"
  bool relevance;
  bool delta;
};

struct RowResult {
  std::uint64_t answers_digest = 0;
  std::uint64_t touched = 0;
  std::uint64_t skipped = 0;
  std::uint64_t delta_keeps = 0;
  std::uint64_t delta_fallbacks = 0;
  double reconcile_ms = 0.0;  // total wall time inside ApplyDatasetChanges
  double avg_query_ms = 0.0;
  std::size_t resident = 0;
};

std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Removes one deterministically chosen ring edge of `id`; reports which
/// via `u`/`v`. False when the graph has no ring edge left.
bool RemoveOneEdge(GraphDataset& ds, GraphId id, std::size_t salt,
                   VertexId* u, VertexId* v) {
  const Graph& g = ds.graph(id);
  const std::size_t n = g.NumVertices();
  if (n < 2) return false;
  for (std::size_t off = 0; off < n; ++off) {
    const auto a = static_cast<VertexId>((salt + off) % n);
    const auto b = static_cast<VertexId>((a + 1) % n);
    if (a != b && g.HasEdge(a, b)) {
      *u = a;
      *v = b;
      return ds.RemoveEdge(id, a, b).ok();
    }
  }
  return false;
}

/// One churn batch, deterministic in `step` so every path replays the
/// exact same dataset evolution. Localized batches are pure edge churn
/// inside the newest ≤1% of live ids — removal-leaning, so most batches
/// are UR-exclusive per graph and Algorithm 2's polarity rules have
/// something to preserve; every fourth batch re-adds the removed edges
/// (mixed ops). Uniform batches also grow the corpus and spray the same
/// edge churn across the whole live range.
void ApplyChurn(GraphDataset& ds, const std::vector<Graph>& corpus,
                std::size_t step, std::size_t batch, bool localized) {
  if (!localized) ds.AddGraph(corpus[(5 * step + 2) % corpus.size()]);
  const std::vector<GraphId> live = ds.LiveIds();
  const std::size_t band =
      localized ? std::max<std::size_t>(1, live.size() / 100) : live.size();
  std::size_t mutated = 0;
  for (std::size_t k = 0; k < 32 && mutated < 4; ++k) {
    const std::size_t idx = live.size() - 1 - ((7 * step + 3 * k) % band);
    const GraphId id = live[idx];
    VertexId u = 0;
    VertexId v = 0;
    if (RemoveOneEdge(ds, id, step + 5 * k, &u, &v)) {
      if (batch % 4 == 3) (void)ds.AddEdge(id, u, v);
      ++mutated;
    }
  }
}

RowResult RunRow(const std::vector<Graph>& corpus, const Workload& w,
                 const BenchConfig& cfg, CacheModel model,
                 const PathToggles& path, bool localized) {
  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlusOptions opts = MakeEngineOptions(model, cfg);
  opts.epoch_reads = true;  // reconcile inside ApplyDatasetChanges
  opts.use_ftv_index = true;
  opts.use_relevance_index = path.relevance;
  opts.delta_revalidation = path.delta;
  GraphCachePlus gc(&ds, opts);

  const std::size_t interval =
      std::max<std::size_t>(1, w.size() / std::max(1u, cfg.batches));
  RowResult r;
  std::int64_t query_ns = 0;
  std::int64_t reconcile_ns = 0;
  std::size_t queries = 0;
  for (std::size_t step = 0; step < w.size(); ++step) {
    if (step % interval == interval - 1) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t batch = step / interval;
      gc.ApplyDatasetChanges(
          [&corpus, step, batch, localized](GraphDataset& d) {
            ApplyChurn(d, corpus, step, batch, localized);
          });
      reconcile_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    }
    const QueryKind kind =
        step % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
    const auto t0 = std::chrono::steady_clock::now();
    const QueryResult res = gc.Query(w.queries[step].query, kind);
    query_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    ++queries;
    r.answers_digest = HashCombine(r.answers_digest, res.answer.size());
    for (const GraphId id : res.answer) {
      r.answers_digest = HashCombine(r.answers_digest, id);
    }
  }
  gc.FlushMaintenance();
  const StatisticsManager stats = gc.CacheStatsSnapshot();
  r.touched = stats.reconcile_entries_touched;
  r.skipped = stats.reconcile_entries_skipped;
  r.delta_keeps = stats.delta_revalidations;
  r.delta_fallbacks = stats.delta_fallback_full_checks;
  r.reconcile_ms = static_cast<double>(reconcile_ns) / 1e6;
  r.avg_query_ms =
      queries == 0 ? 0.0
                   : static_cast<double>(query_ns) / 1e6 /
                         static_cast<double>(queries);
  gc.cache_shards().ForEachEntry([&r](const CachedQuery&) { ++r.resident; });
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "BENCH 07: relevance-indexed reconciliation, before/after");
  ApplyProcessToggles(cfg);

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const Workload w = BuildWorkload("ZU", corpus, cfg);

  std::unique_ptr<JsonWriter> json;
  if (!cfg.json_path.empty()) {
    json = std::make_unique<JsonWriter>(cfg.json_path, "reconciliation", cfg);
  }

  const PathToggles kBefore{"before", false, false};
  const PathToggles kAfter{"after", true, false};
  const PathToggles kAfterDelta{"after+delta", true, true};

  int failures = 0;
  std::printf("\n%-10s %-12s %-4s %10s %10s %8s %8s %13s %11s\n", "churn",
              "path", "sys", "touched", "skipped", "dkeep", "dfull",
              "reconcile ms", "avg q ms");
  for (const bool localized : {true, false}) {
    const char* churn = localized ? "localized" : "uniform";
    for (const CacheModel model : {CacheModel::kCon, CacheModel::kEvi}) {
      const char* sys = model == CacheModel::kCon ? "CON" : "EVI";
      std::vector<std::pair<PathToggles, RowResult>> rows;
      rows.emplace_back(kBefore,
                        RunRow(corpus, w, cfg, model, kBefore, localized));
      rows.emplace_back(kAfter,
                        RunRow(corpus, w, cfg, model, kAfter, localized));
      if (model == CacheModel::kCon) {
        rows.emplace_back(
            kAfterDelta, RunRow(corpus, w, cfg, model, kAfterDelta, localized));
      }
      const RowResult& before = rows.front().second;
      for (const auto& [path, r] : rows) {
        std::printf("%-10s %-12s %-4s %10llu %10llu %8llu %8llu %13.3f "
                    "%11.5f\n",
                    churn, path.path, sys,
                    static_cast<unsigned long long>(r.touched),
                    static_cast<unsigned long long>(r.skipped),
                    static_cast<unsigned long long>(r.delta_keeps),
                    static_cast<unsigned long long>(r.delta_fallbacks),
                    r.reconcile_ms, r.avg_query_ms);
        std::fflush(stdout);
        if (r.answers_digest != before.answers_digest) {
          std::fprintf(stderr,
                       "FAIL: %s/%s/%s answers diverged from the "
                       "brute-force oracle\n",
                       churn, path.path, sys);
          ++failures;
        }
        if (json != nullptr) {
          char buf[512];
          std::snprintf(
              buf, sizeof(buf),
              "\"churn\": \"%s\", \"path\": \"%s\", \"system\": \"%s\", "
              "\"reconcile_entries_touched\": %llu, "
              "\"reconcile_entries_skipped\": %llu, "
              "\"delta_revalidations\": %llu, "
              "\"delta_fallback_full_checks\": %llu, "
              "\"reconcile_ms\": %.3f, \"avg_query_ms\": %.5f, "
              "\"resident\": %zu, \"answers_digest\": %llu",
              churn, path.path, sys,
              static_cast<unsigned long long>(r.touched),
              static_cast<unsigned long long>(r.skipped),
              static_cast<unsigned long long>(r.delta_keeps),
              static_cast<unsigned long long>(r.delta_fallbacks),
              r.reconcile_ms, r.avg_query_ms, r.resident,
              static_cast<unsigned long long>(r.answers_digest));
          json->Row(buf);
        }
      }
      // The localized CON "after" row must actually skip work.
      if (localized && model == CacheModel::kCon) {
        const RowResult& after = rows[1].second;
        if (after.touched >= before.touched || after.skipped == 0) {
          std::fprintf(stderr,
                       "FAIL: localized CON after touched %llu (before "
                       "%llu), skipped %llu — the index screened nothing\n",
                       static_cast<unsigned long long>(after.touched),
                       static_cast<unsigned long long>(before.touched),
                       static_cast<unsigned long long>(after.skipped));
          ++failures;
        }
      }
    }
  }

  std::printf(
      "\n# Expected shape: identical answers on every row of a (churn, sys)\n"
      "# group — the index and the delta hook never change results. On\n"
      "# localized churn, CON after touches a small fraction of what\n"
      "# before touches (skipped >> touched) and reconcile ms drops; on\n"
      "# uniform churn the footprints intersect almost every batch, so\n"
      "# touched stays near before — reported honestly, not gated. EVI\n"
      "# purges are indiscriminate by definition: touched is identical\n"
      "# across paths. after+delta trades reconcile-time containment\n"
      "# checks (dfull) + pair-screen keeps (dkeep) for warmer caches.\n");
  return failures == 0 ? 0 : 1;
}
