// A5: google-benchmark micro-benchmarks of the GC+ primitives — bitset
// algebra, Algorithm 1 (log analysis), Algorithm 2 (validation), hit
// discovery and the sub-iso kernels. These quantify the "<1% validation
// overhead" claim at the operation level.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "cache/cache_validator.hpp"
#include "cache/query_index.hpp"
#include "common/bitset.hpp"
#include "dataset/aids_like.hpp"
#include "dataset/change_log.hpp"
#include "dataset/log_analyzer.hpp"
#include "graph/canonical.hpp"
#include "graph/features.hpp"
#include "match/matcher.hpp"
#include "workload/query_gen.hpp"

namespace gcp {
namespace {

void BM_BitsetAnd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  DynamicBitset a(n), b(n);
  for (std::size_t i = 0; i < n / 3; ++i) {
    a.Set(rng.UniformBelow(n));
    b.Set(rng.UniformBelow(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DynamicBitset::And(a, b).Count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitsetAnd)->Arg(1000)->Arg(40000)->Arg(1000000);

void BM_BitsetCountAnd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  DynamicBitset a(n), b(n);
  for (std::size_t i = 0; i < n / 3; ++i) {
    a.Set(rng.UniformBelow(n));
    b.Set(rng.UniformBelow(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.CountAnd(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitsetCountAnd)->Arg(40000)->Arg(1000000);

// Algorithm 1 throughput: a paper-sized batch (20 ops).
void BM_LogAnalyzer(benchmark::State& state) {
  gcp::ChangeLog log;
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    log.Append(static_cast<ChangeType>(rng.UniformBelow(4)),
               static_cast<GraphId>(rng.UniformBelow(40000)));
  }
  const std::vector<ChangeRecord> records = log.ExtractSince(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogAnalyzer::Analyze(records));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogAnalyzer)->Arg(20)->Arg(2000);

// Algorithm 2 on a paper-scale cache: 120 resident entries, 40,000-graph
// horizon, one batch of 20 operations.
void BM_CacheValidatorRefresh(benchmark::State& state) {
  const std::size_t horizon = 40000;
  Rng rng(4);
  std::vector<CachedQuery> entries(120);
  for (auto& e : entries) {
    e.answer = DynamicBitset(horizon);
    for (int i = 0; i < 50; ++i) e.answer.Set(rng.UniformBelow(horizon));
    e.valid = DynamicBitset(horizon, true);
  }
  gcp::ChangeLog log;
  for (int i = 0; i < 20; ++i) {
    log.Append(static_cast<ChangeType>(rng.UniformBelow(4)),
               static_cast<GraphId>(rng.UniformBelow(horizon)));
  }
  const ChangeCounters counters = LogAnalyzer::Analyze(log.ExtractSince(0));
  for (auto _ : state) {
    for (auto& e : entries) {
      CacheValidator::RefreshEntry(e, counters, horizon);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_CacheValidatorRefresh);

void BM_FeatureExtract(benchmark::State& state) {
  AidsLikeOptions opts;
  opts.num_graphs = 1;
  AidsLikeGenerator gen(opts);
  const Graph g = gen.GenerateOne(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphFeatures::Extract(g));
  }
}
BENCHMARK(BM_FeatureExtract)->Arg(20)->Arg(45)->Arg(245);

void BM_WlDigest(benchmark::State& state) {
  AidsLikeOptions opts;
  opts.num_graphs = 1;
  AidsLikeGenerator gen(opts);
  const Graph g = gen.GenerateOne(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WlDigest(g));
  }
}
BENCHMARK(BM_WlDigest)->Arg(20)->Arg(45);

// Sub-iso kernels on AIDS-like molecule/query pairs.
void SubIsoKernel(benchmark::State& state, MatcherKind kind) {
  AidsLikeOptions opts;
  opts.num_graphs = 64;
  opts.seed = 5;
  AidsLikeGenerator gen(opts);
  const std::vector<Graph> targets = gen.Generate();
  Rng rng(6);
  std::vector<Graph> queries;
  for (int i = 0; i < 16; ++i) {
    const Graph& src = targets[rng.UniformBelow(targets.size())];
    queries.push_back(ExtractBfsQuery(
        src, static_cast<VertexId>(rng.UniformBelow(src.NumVertices())),
        12));
  }
  const auto matcher = MakeMatcher(kind);
  std::size_t qi = 0, ti = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher->Contains(queries[qi], targets[ti]));
    qi = (qi + 1) % queries.size();
    ti = (ti + 7) % targets.size();
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_SubIsoVf2(benchmark::State& s) { SubIsoKernel(s, MatcherKind::kVf2); }
void BM_SubIsoVf2Plus(benchmark::State& s) {
  SubIsoKernel(s, MatcherKind::kVf2Plus);
}
void BM_SubIsoGql(benchmark::State& s) {
  SubIsoKernel(s, MatcherKind::kGraphQl);
}
BENCHMARK(BM_SubIsoVf2);
BENCHMARK(BM_SubIsoVf2Plus);
BENCHMARK(BM_SubIsoGql);

// The same VF2+ kernel with per-query prepared contexts (the Method M
// usage pattern): BM_SubIsoVf2Plus above is the per-pair "before", this is
// the reusable-MatchContext "after".
void BM_SubIsoVf2PlusPrepared(benchmark::State& state) {
  AidsLikeOptions opts;
  opts.num_graphs = 64;
  opts.seed = 5;
  AidsLikeGenerator gen(opts);
  const std::vector<Graph> targets = gen.Generate();
  Rng rng(6);
  std::vector<Graph> queries;
  for (int i = 0; i < 16; ++i) {
    const Graph& src = targets[rng.UniformBelow(targets.size())];
    queries.push_back(ExtractBfsQuery(
        src, static_cast<VertexId>(rng.UniformBelow(src.NumVertices())),
        12));
  }
  std::map<Label, std::uint32_t> freq;
  for (const Graph& t : targets) {
    for (const auto& [l, c] : t.label_histogram()) freq[l] += c;
  }
  const LabelHistogram global(freq.begin(), freq.end());
  const auto matcher = MakeMatcher(MatcherKind::kVf2Plus);
  std::vector<std::unique_ptr<PreparedPattern>> prepared;
  for (const Graph& q : queries) prepared.push_back(matcher->Prepare(q, &global));
  std::size_t qi = 0, ti = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher->ContainsPrepared(*prepared[qi], targets[ti]));
    qi = (qi + 1) % queries.size();
    ti = (ti + 7) % targets.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubIsoVf2PlusPrepared);

// Hit discovery over a paper-scale resident population (120 entries):
// brute-force feature scan (before) vs the inverted feature-signature
// index (after). Both probe the same query stream and return identical
// candidate sets.
void QueryIndexKernel(benchmark::State& state, bool indexed) {
  AidsLikeOptions opts;
  opts.num_graphs = 64;
  opts.seed = 11;
  AidsLikeGenerator gen(opts);
  const std::vector<Graph> corpus = gen.Generate();
  Rng rng(12);
  std::vector<std::unique_ptr<CachedQuery>> entries;
  QueryIndex index;
  for (int i = 0; i < 120; ++i) {
    const Graph& src = corpus[rng.UniformBelow(corpus.size())];
    Graph q = ExtractBfsQuery(
        src, static_cast<VertexId>(rng.UniformBelow(src.NumVertices())),
        4 + rng.UniformBelow(10));
    auto e = std::make_unique<CachedQuery>();
    e->id = static_cast<CacheEntryId>(i + 1);
    e->features = GraphFeatures::Extract(q);
    e->digest = WlDigest(q);
    e->query = std::make_shared<const Graph>(std::move(q));
    index.Insert(e.get());
    entries.push_back(std::move(e));
  }
  std::vector<GraphFeatures> probes;
  for (int i = 0; i < 32; ++i) {
    const Graph& src = corpus[rng.UniformBelow(corpus.size())];
    probes.push_back(GraphFeatures::Extract(ExtractBfsQuery(
        src, static_cast<VertexId>(rng.UniformBelow(src.NumVertices())),
        4 + rng.UniformBelow(10))));
  }
  std::size_t pi = 0;
  for (auto _ : state) {
    const GraphFeatures& p = probes[pi];
    if (indexed) {
      benchmark::DoNotOptimize(index.SupergraphCandidates(p).size());
      benchmark::DoNotOptimize(index.SubgraphCandidates(p).size());
    } else {
      benchmark::DoNotOptimize(index.SupergraphCandidatesScan(p).size());
      benchmark::DoNotOptimize(index.SubgraphCandidatesScan(p).size());
    }
    pi = (pi + 1) % probes.size();
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_HitDiscoveryScan(benchmark::State& s) { QueryIndexKernel(s, false); }
void BM_HitDiscoveryIndexed(benchmark::State& s) { QueryIndexKernel(s, true); }
BENCHMARK(BM_HitDiscoveryScan);
BENCHMARK(BM_HitDiscoveryIndexed);

}  // namespace
}  // namespace gcp
