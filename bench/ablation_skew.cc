// Ablation A4: workload-skew sweep (Zipf alpha). The paper uses alpha=1.4
// and notes web popularity corresponds to ~2.4. GC+ claims benefit for
// both skewed and non-skewed workloads (via sub/supergraph hits); the
// sweep quantifies that.

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Ablation A4: Zipf-alpha sweep (CON, VF2+, ZU)");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());

  std::printf("\n%8s %14s %14s %10s %10s %12s %12s\n", "alpha",
              "M avg ms", "CON avg ms", "t-spdup", "n-spdup", "exact hits",
              "sub+super");
  for (const double alpha : {0.0, 0.8, 1.4, 2.0, 2.4}) {
    BenchConfig point_cfg = cfg;
    point_cfg.zipf_alpha = alpha;
    const Workload w = BuildWorkload("ZU", corpus, point_cfg);
    const RunReport base = RunWorkload(
        corpus, w, plan,
        MakeRunnerConfig(RunMode::kMethodM, MatcherKind::kVf2Plus, cfg));
    const RunReport con = RunWorkload(
        corpus, w, plan,
        MakeRunnerConfig(RunMode::kCon, MatcherKind::kVf2Plus, cfg));
    std::printf("%8.1f %14.3f %14.3f %9.2fx %9.2fx %12llu %12llu\n", alpha,
                base.avg_query_ms(), con.avg_query_ms(),
                QueryTimeSpeedup(base, con), SiTestSpeedup(base, con),
                static_cast<unsigned long long>(con.agg.exact_hits),
                static_cast<unsigned long long>(con.agg.sub_hits +
                                                con.agg.super_hits));
    std::fflush(stdout);
  }
  std::printf(
      "\n# Expected: exact-match hits grow with alpha; sub/supergraph hits\n"
      "# sustain a solid speedup even at alpha=0 (uniform).\n");
  return 0;
}
