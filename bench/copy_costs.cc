// BENCH_06: the carried-over copy costs, before/after in one run.
//
// "Before" replays the pre-PR 6 allocation behaviour on today's engine:
// every hit-discovery survivor deep-copies its cached query graph (and
// bitsets) under the shard lock, matcher scratch comes off the plain
// heap, and every bitset/signature kernel runs the scalar loop. "After"
// is the shipped configuration: survivors share ownership of the
// resident graph (shared_ptr + epoch grace periods), per-thread arenas
// back the matcher scratch, and the kernels dispatch to the widest SIMD
// level the CPU offers. Both sides run the same workloads over the same
// evolving dataset in the same process, so the delta is the copy costs
// and nothing else — answers are bit-identical by construction (the
// equivalence suite asserts it).
//
// The run fails (exit 1) if the shared-ownership side reports a nonzero
// StatisticsManager::shard_lock_graph_copies — the counter the tier-1
// suite also pins to zero.
//
// A second section microbenchmarks the dispatched kernels against their
// scalar oracles at every level the CPU supports.

#include <cassert>
#include <chrono>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "common/bitset.hpp"

using namespace gcp;
using namespace gcp::bench;

namespace {

double NsPerOp(const std::function<void()>& op, int iters) {
  // One warm-up call keeps first-touch page faults out of the timing.
  op();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         iters;
}

struct ModeToggles {
  const char* path;       // "before" / "after"
  bool copy_survivors;
  bool arena;
  simd::SimdLevel level;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "BENCH 06: carried-over copy costs, before/after");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const std::vector<std::string> workloads = {"ZZ", "UU", "20%"};
  const MatcherKind method = MatcherKind::kVf2Plus;

  std::unique_ptr<JsonWriter> json;
  if (!cfg.json_path.empty()) {
    json = std::make_unique<JsonWriter>(cfg.json_path, "copy_costs", cfg);
  }

  const simd::SimdLevel detected = simd::DetectedSimdLevel();
  const ModeToggles modes[] = {
      {"before", true, false, simd::SimdLevel::kScalar},
      {"after", false, true, detected},
  };

  int failures = 0;
  std::printf("\n%-10s %-8s %-6s %12s %12s %12s %10s %10s\n", "workload",
              "path", "sys", "tests/q", "avg q ms", "probe ms", "sum cp",
              "graph cp");
  for (const std::string& wname : workloads) {
    const Workload w = BuildWorkload(wname, corpus, cfg);
    for (const ModeToggles& mode : modes) {
      SetArenaEnabled(mode.arena);
      simd::SetSimdLevel(mode.level);
      BenchConfig mode_cfg = cfg;
      mode_cfg.copy_survivors = mode.copy_survivors;
      for (const RunMode sys : {RunMode::kEvi, RunMode::kCon}) {
        RunnerConfig rc = MakeRunnerConfig(sys, method, mode_cfg);
        // The counters the tentpole moves are epoch-engine counters; run
        // both sides on the epoch read path with the FTV index equipped
        // so summary-clone accounting is live.
        rc.epoch_reads = true;
        rc.use_ftv = true;
        const RunReport r = RunWorkload(corpus, w, plan, rc);
        const auto sum_cp = r.cache_stats.snapshot_summary_copies;
        const auto graph_cp = r.cache_stats.shard_lock_graph_copies;
        std::printf("%-10s %-8s %-6s %12.1f %12.5f %12.5f %10llu %10llu\n",
                    wname.c_str(), mode.path,
                    std::string(RunModeName(sys)).c_str(), r.avg_si_tests(),
                    r.avg_query_ms(), AvgProbeMs(r),
                    static_cast<unsigned long long>(sum_cp),
                    static_cast<unsigned long long>(graph_cp));
        std::fflush(stdout);
        if (!mode.copy_survivors && graph_cp != 0) {
          std::fprintf(stderr,
                       "FAIL: shared-ownership run reported %llu "
                       "shard-lock graph copies (want 0)\n",
                       static_cast<unsigned long long>(graph_cp));
          ++failures;
        }
        if (json != nullptr) {
          char buf[512];
          std::snprintf(
              buf, sizeof(buf),
              "\"kind\": \"workload\", \"workload\": \"%s\", "
              "\"path\": \"%s\", \"system\": \"%s\", "
              "\"tests_per_query\": %.3f, \"avg_query_ms\": %.5f, "
              "\"avg_probe_ms\": %.5f, "
              "\"verify_throughput_tests_per_sec\": %.1f, "
              "\"snapshot_summary_copies\": %llu, "
              "\"shard_lock_graph_copies\": %llu, "
              "\"simd\": \"%s\", \"arena\": %s",
              wname.c_str(), mode.path,
              std::string(RunModeName(sys)).c_str(), r.avg_si_tests(),
              r.avg_query_ms(), AvgProbeMs(r),
              VerifyThroughputTestsPerSec(r),
              static_cast<unsigned long long>(sum_cp),
              static_cast<unsigned long long>(graph_cp),
              simd::SimdLevelName(mode.level),
              mode.arena ? "true" : "false");
          json->Row(buf);
        }
      }
    }
  }

  // --- Kernel micros: each dispatch level against the scalar oracle ----
  std::printf("\n%-22s %-8s %12s\n", "kernel", "level", "ns/op");
  {
    std::mt19937_64 prng(cfg.seed);
    constexpr std::size_t kWords = 4096;  // 256 Kbit bitsets
    std::vector<std::uint64_t> a(kWords), b(kWords);
    for (auto& w : a) w = prng();
    for (auto& w : b) w = prng();
    constexpr std::size_t kSigs = 2048;
    std::vector<std::uint64_t> sigs(kSigs);
    for (auto& s : sigs) s = prng() & 0x3333333333333333ULL;  // small nibbles
    std::vector<std::uint32_t> survivors(kSigs);
    volatile std::uint64_t sink = 0;

    for (int lv = 0; lv <= static_cast<int>(detected); ++lv) {
      const auto level = static_cast<simd::SimdLevel>(lv);
      simd::SetSimdLevel(level);
      struct Kernel {
        const char* name;
        std::function<void()> op;
      };
      const Kernel kernels[] = {
          {"popcount_4096w",
           [&] { sink = sink + simd::PopcountWords(a.data(), kWords); }},
          {"and_4096w",
           [&] { simd::AndWords(a.data(), b.data(), kWords); }},
          {"popcount_and_4096w",
           [&] {
             sink = sink + simd::PopcountAndWords(a.data(), b.data(), kWords);
           }},
          {"subset_4096w",
           [&] {
             sink = sink + (simd::SubsetWords(a.data(), b.data(), kWords) ? 1 : 0);
           }},
          {"sig_screen_2048",
           [&] {
             sink = sink + simd::SignatureDominanceScreen(
                 0x1111111111111111ULL, sigs.data(), kSigs, survivors.data());
           }},
      };
      for (const Kernel& k : kernels) {
        const double ns = NsPerOp(k.op, 2000);
        std::printf("%-22s %-8s %12.1f\n", k.name,
                    simd::SimdLevelName(level), ns);
        if (json != nullptr) {
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "\"kind\": \"kernel\", \"kernel\": \"%s\", "
                        "\"level\": \"%s\", \"ns_per_op\": %.1f",
                        k.name,
                        simd::SimdLevelName(level), ns);
          json->Row(buf);
        }
      }
    }
    (void)sink;
  }
  // Leave the process-global toggles in their default state.
  simd::SetSimdLevel(detected);
  SetArenaEnabled(true);

  std::printf(
      "\n# Expected shape: identical tests/q per (workload, system) across\n"
      "# before/after (the copies never changed answers — that's the bug:\n"
      "# pure overhead). avg q ms and probe ms drop on the after side;\n"
      "# shard_lock_graph_copies is nonzero before, exactly zero after;\n"
      "# snapshot_summary_copies matches the FTV-mutating batch count on\n"
      "# both sides. Kernel rows: higher levels must not be slower.\n");
  return failures == 0 ? 0 : 1;
}
