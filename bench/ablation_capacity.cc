// Ablation A2: cache/window capacity sweep. The paper fixes 100/20
// ("meagre 100-query cache"); this sweep shows how the CON speedup scales
// with cache size, keeping the paper's 5:1 cache:window ratio.

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Ablation A2: cache capacity sweep (CON, VF2+, ZU)");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const Workload w = BuildWorkload("ZU", corpus, cfg);
  const RunReport base = RunWorkload(
      corpus, w, plan,
      MakeRunnerConfig(RunMode::kMethodM, MatcherKind::kVf2Plus, cfg));
  std::printf("\nM baseline: %.3f ms/query, %.1f tests/query\n",
              base.avg_query_ms(), base.avg_si_tests());

  std::printf("%8s %8s %14s %14s %10s %10s\n", "cache", "window",
              "avg query ms", "tests/query", "t-spdup", "n-spdup");
  for (const std::size_t cache :
       {std::size_t{5}, std::size_t{10}, std::size_t{25}, std::size_t{50},
        std::size_t{100}, std::size_t{200}}) {
    RunnerConfig rc =
        MakeRunnerConfig(RunMode::kCon, MatcherKind::kVf2Plus, cfg);
    rc.cache_capacity = cache;
    rc.window_capacity = std::max<std::size_t>(1, cache / 5);
    rc.warmup_queries = rc.window_capacity;
    const RunReport r = RunWorkload(corpus, w, plan, rc);
    std::printf("%8zu %8zu %14.3f %14.1f %9.2fx %9.2fx\n", cache,
                rc.window_capacity, r.avg_query_ms(), r.avg_si_tests(),
                QueryTimeSpeedup(base, r), SiTestSpeedup(base, r));
    std::fflush(stdout);
  }
  std::printf(
      "\n# Expected: speedup grows with capacity and saturates once the\n"
      "# popular query set fits (Zipf head).\n");
  return 0;
}
