// Figure 4 (right panel): GC+ speedup in query time — Type B workloads.
//
// Paper series (AIDS, cache 100 / window 20, HD policy):
//           VF2            VF2+           GQL
//        0%   20%  50%  0%   20%  50%  0%   20%  50%
//   EVI 1.90 1.76 1.57 2.17 1.95 1.84 1.34 1.25 1.18
//   CON 6.52 5.20 4.57 9.50 5.35 6.14 7.31 6.68 6.67
//
// Type B workloads mix random-walk queries with "no-answer" queries
// (non-empty candidate set, empty answer) at 0% / 20% / 50%.

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Figure 4 (Type B): GC+ speedup in query time");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const std::vector<std::string> workloads = {"0%", "20%", "50%"};
  const std::vector<MatcherKind> methods = {
      MatcherKind::kVf2, MatcherKind::kVf2Plus, MatcherKind::kGraphQl};

  std::printf("\n%-8s %-10s %12s %12s %12s %10s %10s\n", "method", "workload",
              "M avg ms", "EVI avg ms", "CON avg ms", "EVI spdup",
              "CON spdup");
  for (const MatcherKind method : methods) {
    for (const std::string& wname : workloads) {
      const Workload w = BuildWorkload(wname, corpus, cfg);
      const RunReport base = RunWorkload(
          corpus, w, plan, MakeRunnerConfig(RunMode::kMethodM, method, cfg));
      const RunReport evi = RunWorkload(
          corpus, w, plan, MakeRunnerConfig(RunMode::kEvi, method, cfg));
      const RunReport con = RunWorkload(
          corpus, w, plan, MakeRunnerConfig(RunMode::kCon, method, cfg));
      std::printf("%-8s %-10s %12.3f %12.3f %12.3f %9.2fx %9.2fx\n",
                  std::string(MatcherKindName(method)).c_str(), wname.c_str(),
                  base.avg_query_ms(), evi.avg_query_ms(), con.avg_query_ms(),
                  QueryTimeSpeedup(base, evi), QueryTimeSpeedup(base, con));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n# Expected shape (paper): CON >> EVI > 1 everywhere; the empty-"
      "answer\n# shortcut keeps CON strong as the no-answer share grows.\n");
  return 0;
}
