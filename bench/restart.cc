// BENCH_08: durable cache — cold vs warm restart, in one run.
//
// Phase 1 ("seed") runs a Zipf workload over a churning dataset with
// background checkpointing on (maintenance thread + --checkpoint-interval)
// plus one explicit mid-run checkpoint, leaving a directory of committed
// checkpoint siblings behind. Phases 2 and 3 simulate a process restart:
// a fresh GraphDataset replays the identical change-plan evolution (same
// lineage, same watermark), then a fresh engine re-runs the workload —
// cold (empty stores) vs warm (WarmRestart from the checkpoint directory,
// fast-forwarded from the checkpoint's watermark through CON replay).
//
// Reported: the per-window hit-rate recovery curve of each phase,
// time-to-warm (queries until a window first reaches 80% of the warm
// phase's overall hit rate), and restart cost (read+validate+apply ms).
//
// The run FAILS (exit 1) when:
//   - cold or warm answers diverge from the uncached Method M oracle on
//     the same dataset state (restores must never change answers);
//   - the warm phase did not actually restore a checkpoint, restored no
//     entries, or recovered a lower overall hit rate than cold;
//   - any epoch-mode phase took an engine lock on the read path.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cache/checkpoint.hpp"
#include "common/io.hpp"
#include "core/graphcache_plus.hpp"
#include "dataset/change_plan.hpp"

using namespace gcp;
using namespace gcp::bench;

namespace {

std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

GraphCachePlusOptions EngineOptions(const BenchConfig& cfg,
                                    const std::string& dir,
                                    std::size_t interval_us) {
  GraphCachePlusOptions opts = MakeEngineOptions(CacheModel::kCon, cfg);
  opts.epoch_reads = true;
  opts.maintenance_thread = true;
  opts.checkpoint_dir = dir;
  opts.checkpoint_interval_us = interval_us;
  opts.checkpoint_keep = 4;  // siblings for the degradation ladder
  return opts;
}

/// Replays the change plan's full evolution onto a fresh dataset — the
/// deterministic "same process lineage" a restarted engine would see.
void ReplayEvolution(GraphDataset& ds, const std::vector<Graph>& corpus,
                     const ChangePlan& plan, const BenchConfig& cfg,
                     std::uint32_t upto) {
  ChangePlanExecutor executor(plan, corpus, ds, Rng(cfg.seed + 404));
  executor.AdvanceTo(upto);
}

struct PhaseResult {
  std::vector<double> window_hit_rate;  ///< One slot per query window.
  std::size_t window_queries = 0;
  double overall_hit_rate = 0.0;
  double avg_query_ms = 0.0;
  double restart_ms = 0.0;  ///< WarmRestart wall time (warm phase only).
  std::uint64_t answers_digest = 0;
  std::uint64_t engine_lock_acquisitions = 0;
  GraphCachePlus::WarmRestartReport restart;
};

/// Runs the measured workload on `gc` (already constructed and, for the
/// warm phase, already restored) and folds per-window hit anatomy.
PhaseResult MeasurePhase(GraphCachePlus& gc, const Workload& w) {
  PhaseResult r;
  r.window_queries = std::max<std::size_t>(5, w.size() / 20);
  std::size_t window_hits = 0;
  std::size_t in_window = 0;
  std::size_t total_hits = 0;
  std::int64_t query_ns = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const QueryResult res = gc.Query(w.queries[i].query, QueryKind::kSubgraph);
    query_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    const bool hit = res.metrics.exact_hit || res.metrics.empty_shortcut ||
                     res.metrics.sub_hits > 0 || res.metrics.super_hits > 0;
    window_hits += hit ? 1 : 0;
    total_hits += hit ? 1 : 0;
    if (++in_window == r.window_queries || i + 1 == w.size()) {
      r.window_hit_rate.push_back(static_cast<double>(window_hits) /
                                  static_cast<double>(in_window));
      window_hits = 0;
      in_window = 0;
    }
    r.answers_digest = HashCombine(r.answers_digest, res.answer.size());
    for (const GraphId id : res.answer) {
      r.answers_digest = HashCombine(r.answers_digest, id);
    }
  }
  gc.FlushMaintenance();
  r.overall_hit_rate =
      w.size() == 0 ? 0.0
                    : static_cast<double>(total_hits) /
                          static_cast<double>(w.size());
  r.avg_query_ms = w.size() == 0 ? 0.0
                                 : static_cast<double>(query_ns) / 1e6 /
                                       static_cast<double>(w.size());
  r.engine_lock_acquisitions = gc.read_phase_engine_lock_acquisitions();
  return r;
}

/// Queries until a window first reaches `threshold` hit rate; the full
/// workload length + 1 when no window ever does.
std::size_t TimeToWarmQueries(const PhaseResult& r, double threshold) {
  for (std::size_t wdx = 0; wdx < r.window_hit_rate.size(); ++wdx) {
    if (r.window_hit_rate[wdx] >= threshold) {
      return wdx * r.window_queries + 1;
    }
  }
  return r.window_hit_rate.size() * r.window_queries + 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "BENCH 08: durable cache — cold vs warm restart");
  ApplyProcessToggles(cfg);

  const std::string dir = cfg.checkpoint_dir.empty()
                              ? "bench_restart_checkpoints"
                              : cfg.checkpoint_dir;
  // Start from a clean directory so reruns measure this run's files.
  (void)EnsureDirectory(dir);
  (void)PruneCheckpoints(dir, 0);
  const std::size_t interval_us =
      cfg.checkpoint_interval_us == 0 ? 20000 : cfg.checkpoint_interval_us;

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const Workload w = BuildWorkload("ZU", corpus, cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const auto last_query = static_cast<std::uint32_t>(
      w.size() == 0 ? 0 : w.size() - 1);

  int failures = 0;

  // --- Phase 1: seed run with background + one explicit checkpoint ------
  {
    GraphDataset ds;
    ds.Bootstrap(corpus);
    ChangePlanExecutor executor(plan, corpus, ds, Rng(cfg.seed + 404));
    GraphCachePlus gc(&ds, EngineOptions(cfg, dir, interval_us));
    for (std::size_t i = 0; i < w.size(); ++i) {
      const auto pos = static_cast<std::uint32_t>(i);
      if (executor.NextBatchAt() <= pos) {
        gc.ApplyDatasetChanges(
            [&executor, pos](GraphDataset&) { executor.AdvanceTo(pos); });
      }
      (void)gc.Query(w.queries[i].query, QueryKind::kSubgraph);
      if (i == w.size() * 3 / 5) {
        // Explicit mid-run checkpoint: an older sibling whose watermark
        // trails the final dataset state, so a restart from it exercises
        // the CON fast-forward replay.
        if (const Status st = gc.CheckpointNow(); !st.ok()) {
          std::fprintf(stderr, "FAIL: mid-run checkpoint: %s\n",
                       st.ToString().c_str());
          ++failures;
        }
      }
    }
    gc.FlushMaintenance();
    if (const Status st = gc.CheckpointNow(); !st.ok()) {
      std::fprintf(stderr, "FAIL: final checkpoint: %s\n",
                   st.ToString().c_str());
      ++failures;
    }
    const StatisticsManager stats = gc.CacheStatsSnapshot();
    std::printf(
        "\nseed: %llu checkpoints committed (%llu failed), %.1f KiB total, "
        "%.2f ms checkpoint wall\n",
        static_cast<unsigned long long>(stats.checkpoints_written),
        static_cast<unsigned long long>(stats.checkpoints_failed),
        static_cast<double>(stats.checkpoint_bytes) / 1024.0,
        static_cast<double>(stats.t_checkpoint_ns) / 1e6);
  }

  // --- Oracle: uncached Method M on the evolved dataset ------------------
  std::uint64_t oracle_digest = 0;
  {
    GraphDataset ds;
    ds.Bootstrap(corpus);
    ReplayEvolution(ds, corpus, plan, cfg, last_query);
    GraphCachePlusOptions opts = MakeEngineOptions(CacheModel::kEvi, cfg);
    // Bare Method M: no admission ⇒ empty cache, every query verified
    // against the live dataset (fragments are gated on admission too).
    opts.enable_admission = false;
    opts.enable_exact_shortcut = false;
    opts.enable_empty_answer_shortcut = false;
    opts.checkpoint_dir.clear();  // the oracle never persists
    opts.checkpoint_interval_us = 0;
    GraphCachePlus oracle(&ds, opts);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const QueryResult res =
          oracle.Query(w.queries[i].query, QueryKind::kSubgraph);
      oracle_digest = HashCombine(oracle_digest, res.answer.size());
      for (const GraphId id : res.answer) {
        oracle_digest = HashCombine(oracle_digest, id);
      }
    }
  }

  // --- Phases 2 + 3: cold vs warm restart --------------------------------
  PhaseResult results[2];
  for (const bool warm : {false, true}) {
    GraphDataset ds;
    ds.Bootstrap(corpus);
    ReplayEvolution(ds, corpus, plan, cfg, last_query);
    GraphCachePlus gc(&ds, EngineOptions(cfg, dir, interval_us));
    PhaseResult pre;
    if (warm) {
      const auto t0 = std::chrono::steady_clock::now();
      const Status st = gc.WarmRestart(&pre.restart);
      pre.restart_ms =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()) /
          1e6;
      if (!st.ok()) {
        std::fprintf(stderr, "FAIL: warm restart: %s\n",
                     st.ToString().c_str());
        ++failures;
      }
    }
    PhaseResult r = MeasurePhase(gc, w);
    r.restart = pre.restart;
    r.restart_ms = pre.restart_ms;
    results[warm ? 1 : 0] = std::move(r);
  }
  const PhaseResult& cold = results[0];
  const PhaseResult& warm = results[1];

  // --- Gates -------------------------------------------------------------
  if (cold.answers_digest != oracle_digest) {
    std::fprintf(stderr, "FAIL: cold answers diverged from the oracle\n");
    ++failures;
  }
  if (warm.answers_digest != oracle_digest) {
    std::fprintf(stderr, "FAIL: warm answers diverged from the oracle\n");
    ++failures;
  }
  if (!warm.restart.warm || warm.restart.entries == 0) {
    std::fprintf(stderr,
                 "FAIL: warm phase did not restore a checkpoint (warm=%d, "
                 "entries=%zu, rejected=%zu)\n",
                 warm.restart.warm ? 1 : 0, warm.restart.entries,
                 warm.restart.rejected);
    ++failures;
  }
  if (warm.overall_hit_rate < cold.overall_hit_rate) {
    std::fprintf(stderr,
                 "FAIL: warm hit rate %.3f below cold %.3f — the restore "
                 "lost ground\n",
                 warm.overall_hit_rate, cold.overall_hit_rate);
    ++failures;
  }
  if (cold.engine_lock_acquisitions != 0 ||
      warm.engine_lock_acquisitions != 0) {
    std::fprintf(stderr,
                 "FAIL: epoch read path took %llu/%llu engine locks\n",
                 static_cast<unsigned long long>(
                     cold.engine_lock_acquisitions),
                 static_cast<unsigned long long>(
                     warm.engine_lock_acquisitions));
    ++failures;
  }

  // --- Report ------------------------------------------------------------
  const double threshold = 0.8 * warm.overall_hit_rate;
  const std::size_t cold_ttw = TimeToWarmQueries(cold, threshold);
  const std::size_t warm_ttw = TimeToWarmQueries(warm, threshold);
  std::printf(
      "warm restart: %s (%zu entries, %zu siblings rejected, watermark "
      "%llu) in %.2f ms\n\n",
      warm.restart.warm ? "restored" : "cold start", warm.restart.entries,
      warm.restart.rejected,
      static_cast<unsigned long long>(warm.restart.watermark),
      warm.restart_ms);
  std::printf("%-8s %12s %12s %14s %14s\n", "phase", "hit rate", "avg q ms",
              "ttw queries", "restart ms");
  std::printf("%-8s %12.3f %12.5f %14zu %14.2f\n", "cold",
              cold.overall_hit_rate, cold.avg_query_ms, cold_ttw, 0.0);
  std::printf("%-8s %12.3f %12.5f %14zu %14.2f\n", "warm",
              warm.overall_hit_rate, warm.avg_query_ms, warm_ttw,
              warm.restart_ms);
  std::printf("\nrecovery curve (hit rate per %zu-query window):\n",
              cold.window_queries);
  const std::size_t windows = std::max(cold.window_hit_rate.size(),
                                       warm.window_hit_rate.size());
  for (std::size_t i = 0; i < windows; ++i) {
    const double c =
        i < cold.window_hit_rate.size() ? cold.window_hit_rate[i] : 0.0;
    const double h =
        i < warm.window_hit_rate.size() ? warm.window_hit_rate[i] : 0.0;
    std::printf("  w%02zu  cold %.3f  warm %.3f\n", i, c, h);
  }

  if (!cfg.json_path.empty()) {
    JsonWriter json(cfg.json_path, "restart", cfg);
    for (int p = 0; p < 2; ++p) {
      const PhaseResult& r = results[p];
      const char* phase = p == 0 ? "cold" : "warm";
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "\"phase\": \"%s\", \"row\": \"summary\", "
          "\"overall_hit_rate\": %.4f, \"avg_query_ms\": %.5f, "
          "\"time_to_warm_queries\": %zu, \"restart_ms\": %.3f, "
          "\"restored_entries\": %zu, \"siblings_rejected\": %zu, "
          "\"answers_digest\": %llu",
          phase, r.overall_hit_rate, r.avg_query_ms,
          TimeToWarmQueries(r, threshold), r.restart_ms, r.restart.entries,
          r.restart.rejected,
          static_cast<unsigned long long>(r.answers_digest));
      json.Row(buf);
      for (std::size_t i = 0; i < r.window_hit_rate.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "\"phase\": \"%s\", \"row\": \"curve\", "
                      "\"window\": %zu, \"first_query\": %zu, "
                      "\"hit_rate\": %.4f",
                      phase, i, i * r.window_queries, r.window_hit_rate[i]);
        json.Row(buf);
      }
    }
  }

  std::printf(
      "\n# Expected shape: identical answer digests across oracle, cold and\n"
      "# warm (restores never change answers). The warm curve starts at or\n"
      "# near its steady-state hit rate (time-to-warm ~1 query) while the\n"
      "# cold curve climbs from 0 over several windows; warm overall hit\n"
      "# rate >= cold. Restart cost is the read+validate+apply of the\n"
      "# newest surviving checkpoint, a few ms at bench scale.\n");
  return failures == 0 ? 0 : 1;
}
