// Concurrent-serving throughput: queries/sec of one shared GraphCachePlus
// under 1 / 2 / 4 / 8 closed-loop client threads (Type-A workload),
// swept across cache shard counts — the PR 4 earn-out: with N shards a
// maintenance drain serializes one shard instead of the whole cache, and
// the dedicated maintenance thread takes drains off the query tail
// entirely.
//
// Sweeps threads (1,2,4,.. up to --max-threads / --threads) x shard
// configurations (--shard-sweep, default "1,4"). --maintenance-thread
// applies to every configuration; shards=1 without it is the PR 2/3
// engine bit-exactly.
//
// One JSON line per configuration on stdout for the BENCH_* trajectory;
// --json=PATH additionally writes the whole sweep as one report
// (committed as BENCH_04.json).
//
// Flags: --threads N caps the sweep (default 8); --workload ZZ|ZU|UU;
// --shard-sweep a,b,c; --maintenance-thread; the usual corpus/cache knobs
// from bench_common.

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

namespace {

std::vector<std::size_t> ParseShardSweep(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v > 0) out.push_back(static_cast<std::size_t>(v));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchConfig cfg = BenchConfig::FromFlags(flags);
  const std::size_t max_threads = cfg.client_threads > 1
                                      ? cfg.client_threads
                                      : static_cast<std::size_t>(
                                            flags.GetInt("max-threads", 8));
  const std::string wname = flags.GetString("workload", "ZZ");
  const std::vector<std::size_t> shard_sweep =
      ParseShardSweep(flags.GetString("shard-sweep", "1,4"));
  const unsigned cores = std::thread::hardware_concurrency();
  PrintConfig(cfg, "Throughput scaling: one shared GC+ vs. client threads "
                   "x cache shards");
  std::printf("# hardware_concurrency: %u — scaling beyond this is not "
              "expected\n", cores);

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const Workload w = BuildWorkload(wname, corpus, cfg);

  std::unique_ptr<JsonWriter> json;
  if (!cfg.json_path.empty()) {
    json = std::make_unique<JsonWriter>(cfg.json_path, "throughput_scaling",
                                        cfg);
  }

  for (const std::size_t shards : shard_sweep) {
    cfg.shards = shards;
    std::printf("\n## shards=%zu maintenance_thread=%s\n", shards,
                cfg.maintenance_thread ? "on" : "off");
    std::printf("%-8s %12s %14s %12s %10s\n", "threads", "qps",
                "measured ms", "avg q ms", "scaling");
    double qps_at_1 = 0.0;
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      cfg.client_threads = threads;
      RunnerConfig rc =
          MakeRunnerConfig(RunMode::kCon, MatcherKind::kVf2, cfg);
      const RunReport r = RunWorkload(corpus, w, plan, rc);
      if (threads == 1) qps_at_1 = r.qps();
      const double scaling = qps_at_1 > 0.0 ? r.qps() / qps_at_1 : 0.0;
      std::printf("%-8zu %12.1f %14.2f %12.4f %9.2fx\n", threads, r.qps(),
                  r.measured_wall_ms, r.avg_query_ms(), scaling);
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "\"workload\":\"%s\",\"mode\":\"CON\",\"method\":\"VF2\","
          "\"client_threads\":%zu,\"shards\":%zu,"
          "\"maintenance_thread\":%s,\"cores\":%u,\"queries\":%zu,"
          "\"measured_queries\":%zu,\"measured_wall_ms\":%.3f,\"qps\":%.2f,"
          "\"avg_query_ms\":%.5f,\"avg_overhead_ms\":%.5f,"
          "\"scaling_vs_1\":%.3f",
          wname.c_str(), threads, shards,
          cfg.maintenance_thread ? "true" : "false", cores, w.size(),
          r.measured_queries, r.measured_wall_ms, r.qps(), r.avg_query_ms(),
          r.avg_overhead_ms(), scaling);
      std::printf("{\"bench\":\"throughput_scaling\",%s}\n", row);
      if (json != nullptr) json->Row(row);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n# Expected shape: qps grows 1 → 4 threads while threads <= cores "
      "(read phases share the lock);\n# sharding moves the curve where "
      "maintenance drains bind — a drain on shard k no longer\n# stalls "
      "readers of shard j. On a single-core machine flat ~1.0x scaling is "
      "the correct\n# result — the split's win is bounded by hardware.\n");
  return 0;
}
