// Concurrent-serving throughput: queries/sec of one shared GraphCachePlus
// under 1 / 2 / 4 / 8 closed-loop client threads (Type-A workload).
//
// This is the read-phase/maintenance-phase split's earn-out: discovery,
// pruning and Method M verification run under the shared lock, so
// queries/sec should climb from 1 → 4 clients; maintenance (admission,
// replacement, validation) stays serialized and bounds the curve.
//
// One JSON line per configuration for the BENCH_* trajectory, e.g.:
//   {"bench":"throughput_scaling","workload":"ZZ","mode":"CON", ...}
//
// Flags: --threads N caps the sweep (default 8); --workload ZZ|ZU|UU;
// the usual corpus/cache knobs from bench_common.

#include <thread>

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchConfig cfg = BenchConfig::FromFlags(flags);
  const std::size_t max_threads = cfg.client_threads > 1
                                      ? cfg.client_threads
                                      : static_cast<std::size_t>(
                                            flags.GetInt("max-threads", 8));
  const std::string wname = flags.GetString("workload", "ZZ");
  const unsigned cores = std::thread::hardware_concurrency();
  PrintConfig(cfg, "Throughput scaling: one shared GC+ vs. client threads");
  std::printf("# hardware_concurrency: %u — scaling beyond this is not "
              "expected\n", cores);

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const Workload w = BuildWorkload(wname, corpus, cfg);

  std::printf("\n%-8s %12s %14s %12s %10s\n", "threads", "qps",
              "measured ms", "avg q ms", "scaling");
  double qps_at_1 = 0.0;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    cfg.client_threads = threads;
    RunnerConfig rc = MakeRunnerConfig(RunMode::kCon, MatcherKind::kVf2, cfg);
    const RunReport r = RunWorkload(corpus, w, plan, rc);
    if (threads == 1) qps_at_1 = r.qps();
    const double scaling = qps_at_1 > 0.0 ? r.qps() / qps_at_1 : 0.0;
    std::printf("%-8zu %12.1f %14.2f %12.4f %9.2fx\n", threads, r.qps(),
                r.measured_wall_ms, r.avg_query_ms(), scaling);
    std::printf(
        "{\"bench\":\"throughput_scaling\",\"workload\":\"%s\",\"mode\":"
        "\"CON\",\"method\":\"VF2\",\"client_threads\":%zu,\"cores\":%u,"
        "\"queries\":%zu,\"measured_queries\":%zu,\"measured_wall_ms\":%.3f,"
        "\"qps\":%.2f,\"avg_query_ms\":%.5f,\"avg_overhead_ms\":%.5f,"
        "\"scaling_vs_1\":%.3f}\n",
        wname.c_str(), threads, cores, w.size(), r.measured_queries,
        r.measured_wall_ms, r.qps(), r.avg_query_ms(), r.avg_overhead_ms(),
        scaling);
    std::fflush(stdout);
  }
  std::printf(
      "\n# Expected shape: qps grows 1 → 4 threads while threads <= cores "
      "(read phases share the lock);\n# the curve flattens where "
      "serialized maintenance or core count binds. On a single-core\n"
      "# machine flat ~1.0x scaling is the correct result — the split's "
      "win is bounded by hardware.\n");
  return 0;
}
