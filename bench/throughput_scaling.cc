// Concurrent-serving throughput: queries/sec of one shared GraphCachePlus
// under 1 / 2 / 4 / 8 closed-loop client threads (Type-A workload),
// swept across cache shard counts AND read-path admission-control modes —
// the PR 5 earn-out: with --epoch the read phase pins an epoch and reads
// a published immutable snapshot instead of taking the engine lock
// (read_phase_engine_lock_acquisitions drops to zero, printed per row),
// and dataset changes publish + reconcile shard-by-shard instead of
// stopping the world.
//
// Sweeps epoch modes (--epoch-sweep, default "off,on") x shard
// configurations (--shard-sweep, default "1,4") x threads (1,2,4,.. up to
// --max-threads / --threads). --maintenance-thread applies to every
// configuration; shards=1, epoch=off without it is the PR 2/3 engine
// bit-exactly.
//
// One JSON line per configuration on stdout for the BENCH_* trajectory;
// --json=PATH additionally writes the whole sweep as one report
// (committed as BENCH_05.json). The trailing summary prints the same-run
// epoch-vs-lock qps and avg_overhead_ms deltas per (shards, threads).
//
// Flags: --threads N caps the sweep (default 8); --workload ZZ|ZU|UU;
// --shard-sweep a,b,c; --epoch-sweep on,off; --maintenance-thread; the
// usual corpus/cache knobs from bench_common.

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

namespace {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<std::size_t> ParseShardSweep(const std::string& csv) {
  std::vector<std::size_t> out;
  for (const std::string& tok : SplitCsv(csv)) {
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) out.push_back(1);
  return out;
}

std::vector<bool> ParseEpochSweep(const std::string& csv) {
  std::vector<bool> out;
  for (const std::string& tok : SplitCsv(csv)) {
    if (tok == "on" || tok == "1" || tok == "true") out.push_back(true);
    if (tok == "off" || tok == "0" || tok == "false") out.push_back(false);
  }
  if (out.empty()) out.push_back(false);
  return out;
}

struct Cell {
  double qps = 0.0;
  double overhead_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchConfig cfg = BenchConfig::FromFlags(flags);
  const std::size_t max_threads = cfg.client_threads > 1
                                      ? cfg.client_threads
                                      : static_cast<std::size_t>(
                                            flags.GetInt("max-threads", 8));
  const std::string wname = flags.GetString("workload", "ZZ");
  const std::vector<std::size_t> shard_sweep =
      ParseShardSweep(flags.GetString("shard-sweep", "1,4"));
  const std::vector<bool> epoch_sweep =
      ParseEpochSweep(flags.GetString("epoch-sweep", "off,on"));
  const unsigned cores = std::thread::hardware_concurrency();
  PrintConfig(cfg, "Throughput scaling: one shared GC+ vs. client threads "
                   "x cache shards x read-path mode (lock vs epoch)");
  std::printf("# hardware_concurrency: %u — scaling beyond this is not "
              "expected\n", cores);

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const Workload w = BuildWorkload(wname, corpus, cfg);

  std::unique_ptr<JsonWriter> json;
  if (!cfg.json_path.empty()) {
    json = std::make_unique<JsonWriter>(cfg.json_path, "throughput_scaling",
                                        cfg);
  }

  // (epoch, shards, threads) -> measured cell, for the trailing summary.
  std::map<std::tuple<bool, std::size_t, std::size_t>, Cell> cells;

  for (const bool epoch : epoch_sweep) {
    cfg.epoch = epoch;
    for (const std::size_t shards : shard_sweep) {
      cfg.shards = shards;
      std::printf("\n## epoch=%s shards=%zu maintenance_thread=%s\n",
                  epoch ? "on" : "off", shards,
                  cfg.maintenance_thread ? "on" : "off");
      std::printf("%-8s %12s %14s %12s %12s %10s\n", "threads", "qps",
                  "measured ms", "avg q ms", "avg ovh ms", "scaling");
      double qps_at_1 = 0.0;
      for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
        cfg.client_threads = threads;
        RunnerConfig rc =
            MakeRunnerConfig(RunMode::kCon, MatcherKind::kVf2, cfg);
        const RunReport r = RunWorkload(corpus, w, plan, rc);
        if (threads == 1) qps_at_1 = r.qps();
        const double scaling = qps_at_1 > 0.0 ? r.qps() / qps_at_1 : 0.0;
        std::printf("%-8zu %12.1f %14.2f %12.4f %12.5f %9.2fx\n", threads,
                    r.qps(), r.measured_wall_ms, r.avg_query_ms(),
                    r.avg_overhead_ms(), scaling);
        cells[{epoch, shards, threads}] =
            Cell{r.qps(), r.avg_overhead_ms()};
        char row[640];
        std::snprintf(
            row, sizeof(row),
            "\"workload\":\"%s\",\"mode\":\"CON\",\"method\":\"VF2\","
            "\"epoch\":%s,\"client_threads\":%zu,\"shards\":%zu,"
            "\"maintenance_thread\":%s,\"cores\":%u,\"queries\":%zu,"
            "\"measured_queries\":%zu,\"measured_wall_ms\":%.3f,\"qps\":%.2f,"
            "\"avg_query_ms\":%.5f,\"avg_overhead_ms\":%.5f,"
            "\"scaling_vs_1\":%.3f,"
            "\"read_phase_engine_lock_acquisitions\":%llu,"
            "\"snapshots_published\":%llu,\"epochs_retired\":%llu",
            wname.c_str(), epoch ? "true" : "false", threads, shards,
            cfg.maintenance_thread ? "true" : "false", cores, w.size(),
            r.measured_queries, r.measured_wall_ms, r.qps(),
            r.avg_query_ms(), r.avg_overhead_ms(), scaling,
            static_cast<unsigned long long>(
                r.cache_stats.read_phase_engine_lock_acquisitions),
            static_cast<unsigned long long>(
                r.cache_stats.snapshots_published),
            static_cast<unsigned long long>(r.cache_stats.epochs_retired));
        std::printf("{\"bench\":\"throughput_scaling\",%s}\n", row);
        if (json != nullptr) json->Row(row);
        if (epoch &&
            r.cache_stats.read_phase_engine_lock_acquisitions != 0) {
          std::printf("# WARNING: epoch run took %llu engine locks on the "
                      "read path (expected 0)\n",
                      static_cast<unsigned long long>(
                          r.cache_stats.read_phase_engine_lock_acquisitions));
        }
        std::fflush(stdout);
      }
    }
  }

  // Same-run epoch-vs-lock deltas (only when both modes were swept).
  bool both = false, on_seen = false, off_seen = false;
  for (const bool e : epoch_sweep) (e ? on_seen : off_seen) = true;
  both = on_seen && off_seen;
  if (both) {
    std::printf("\n## epoch vs lock (same run)\n");
    std::printf("%-8s %-8s %16s %22s\n", "shards", "threads", "qps ratio",
                "overhead ms off->on");
    for (const std::size_t shards : shard_sweep) {
      for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
        const auto off = cells.find({false, shards, threads});
        const auto on = cells.find({true, shards, threads});
        if (off == cells.end() || on == cells.end()) continue;
        const double ratio = off->second.qps > 0.0
                                 ? on->second.qps / off->second.qps
                                 : 0.0;
        std::printf("%-8zu %-8zu %15.3fx %10.5f -> %.5f\n", shards, threads,
                    ratio, off->second.overhead_ms, on->second.overhead_ms);
      }
    }
  }
  std::printf(
      "\n# Expected shape: the epoch path removes every engine-lock "
      "acquisition from the read\n# path and turns dataset changes into "
      "publish+reconcile instead of stop-the-world; on a\n# 1-core "
      "container the win is bounded by hardware (flat thread-scaling is "
      "the correct\n# result there) — the overhead column still drops "
      "because drains validate offers against\n# the snapshot's "
      "precomputed live mask and record segments instead of rebuilding "
      "them\n# from the dataset per offer.\n");
  return 0;
}
