// Shared scaffolding for the figure-reproduction benches.
//
// The paper's testbed (AIDS: 40,000 graphs; 10,000-query workloads; Dell
// R920, 60 cores / 320 GB) runs for hours. The benches default to a
// laptop-scale configuration that preserves the paper's *ratios* —
// cache : window : purge-interval : workload length — so the shape of the
// results (who wins, by roughly what factor) carries over. Every knob is a
// flag; `--paper` switches to the full published scale.

#ifndef GCP_BENCH_BENCH_COMMON_HPP_
#define GCP_BENCH_BENCH_COMMON_HPP_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/flags.hpp"
#include "common/simd.hpp"
#include "dataset/aids_like.hpp"
#include "dataset/change_plan.hpp"
#include "workload/runner.hpp"
#include "workload/type_a.hpp"
#include "workload/type_b.hpp"

namespace gcp::bench {

/// All experiment knobs, with scaled-down defaults.
struct BenchConfig {
  // Corpus (AIDS-like synthetic; see DESIGN.md §4).
  std::uint32_t graphs = 500;
  double mean_vertices = 30.0;
  double stddev_vertices = 12.0;
  std::uint32_t min_vertices = 5;
  std::uint32_t max_vertices = 120;
  std::uint32_t labels = 62;

  // Workload.
  std::uint32_t queries = 1000;
  double zipf_alpha = 1.4;

  // Cache (paper: 100 / 20; scaled keeping the 5:1 ratio).
  std::size_t cache_capacity = 50;
  std::size_t window_capacity = 10;
  std::size_t warmup = 10;  ///< One window (paper: one window = 20).

  // Change plan (paper: 100 batches x 20 ops over 10,000 queries — one
  // batch per ~cache-capacity queries; scaled accordingly).
  std::uint32_t batches = 20;
  std::uint32_t ops_per_batch = 10;

  // Per-query caps on verified cache hits (0 = unlimited).
  std::size_t max_sub_hits = 16;
  std::size_t max_super_hits = 16;

  std::uint64_t seed = 42;
  std::size_t verify_threads = 1;
  /// Closed-loop client threads sharing one GraphCachePlus (the runner's
  /// --threads flag; bench_throughput_scaling sweeps 1..this).
  std::size_t client_threads = 1;
  /// Digest-sharded cache stores (--shards; 1 = single-store legacy).
  std::size_t shards = 1;
  /// Dedicated maintenance drain thread (--maintenance-thread).
  bool maintenance_thread = false;
  /// Epoch-protected read path (--epoch; off = the PR 4 lock path).
  bool epoch = false;
  /// Run the legacy hot path (per-pair match state + brute-force
  /// discovery scan) instead of the optimized one (--legacy).
  bool legacy_hot_path = false;
  /// Deep-copy discovery survivors under the shard lock instead of
  /// sharing ownership (--copy-survivors; the pre-PR 6 oracle path).
  bool copy_survivors = false;
  /// Reconcile through the change-relevance index
  /// (--relevance-index=false = the brute-force ValidateAll oracle, the
  /// "before" side of bench_reconciliation).
  bool relevance_index = true;
  /// CON-only delta re-validation at reconcile time
  /// (--delta-revalidation; default off = Algorithm 2 fade-only).
  bool delta_revalidation = false;
  /// Sub-pattern fragment cache (--fragments=off = the fragment-free
  /// oracle, bit-exact on answers, resident whole-query state and
  /// replacement decisions — the "before" side of bench_fragments).
  bool fragments = true;
  /// SIMD dispatch cap (--simd=off|scalar|popcnt|avx2|auto; empty/auto =
  /// use whatever the CPU supports). "off"/"scalar" is the bit-exact
  /// scalar oracle.
  std::string simd;
  /// Thread arenas for per-query matcher scratch (--arena=off = the
  /// plain-heap oracle path).
  bool arena = true;
  /// Durable checkpoint directory (--checkpoint-dir; empty = off).
  std::string checkpoint_dir;
  /// Background checkpoint period in µs (--checkpoint-interval; 0 = off;
  /// needs --maintenance-thread to actually fire in the background).
  std::size_t checkpoint_interval_us = 0;
  /// Attempt a verified warm restart before the first query
  /// (--warm-restart; degrades to cold start when nothing usable exists).
  bool warm_restart = false;
  /// Byte-accounted capacity cap (--byte-budget=off|N; 0/off = the
  /// entry-count legacy model, bit-exact). Arms the pressure monitor.
  std::size_t byte_budget = 0;
  /// When non-empty, also emit machine-readable results here (--json=...).
  std::string json_path;

  static BenchConfig FromFlags(const Flags& flags) {
    BenchConfig c;
    if (flags.GetBool("paper", false)) {
      c.graphs = 40000;
      c.mean_vertices = 45.0;
      c.stddev_vertices = 22.0;
      c.max_vertices = 245;
      c.queries = 10000;
      c.cache_capacity = 100;
      c.window_capacity = 20;
      c.warmup = 20;
      c.batches = 100;
      c.ops_per_batch = 20;
    }
    if (flags.GetBool("quick", false)) {
      c.graphs = 150;
      c.queries = 120;
      c.cache_capacity = 30;
      c.window_capacity = 6;
      c.warmup = 6;
      c.batches = 3;
      c.ops_per_batch = 6;
    }
    c.graphs = static_cast<std::uint32_t>(flags.GetInt("graphs", c.graphs));
    c.queries = static_cast<std::uint32_t>(flags.GetInt("queries", c.queries));
    // Keep the paper's change cadence (one batch per ~50 scaled queries)
    // when only --queries is overridden.
    if (flags.Has("queries") && !flags.Has("batches") &&
        !flags.GetBool("paper", false)) {
      c.batches = std::max(1u, c.queries / 50);
    }
    c.labels = static_cast<std::uint32_t>(flags.GetInt("labels", c.labels));
    c.mean_vertices = flags.GetDouble("mean-vertices", c.mean_vertices);
    c.max_vertices =
        static_cast<std::uint32_t>(flags.GetInt("max-vertices", c.max_vertices));
    c.cache_capacity =
        static_cast<std::size_t>(flags.GetInt("cache", c.cache_capacity));
    c.window_capacity =
        static_cast<std::size_t>(flags.GetInt("window", c.window_capacity));
    c.warmup = static_cast<std::size_t>(flags.GetInt("warmup", c.warmup));
    c.batches = static_cast<std::uint32_t>(flags.GetInt("batches", c.batches));
    c.ops_per_batch = static_cast<std::uint32_t>(
        flags.GetInt("ops-per-batch", c.ops_per_batch));
    c.zipf_alpha = flags.GetDouble("alpha", c.zipf_alpha);
    c.max_sub_hits =
        static_cast<std::size_t>(flags.GetInt("max-sub-hits", c.max_sub_hits));
    c.max_super_hits = static_cast<std::size_t>(
        flags.GetInt("max-super-hits", c.max_super_hits));
    c.seed = static_cast<std::uint64_t>(flags.GetInt("seed", c.seed));
    c.verify_threads = static_cast<std::size_t>(
        flags.GetInt("verify-threads", c.verify_threads));
    c.client_threads =
        static_cast<std::size_t>(flags.GetInt("threads", c.client_threads));
    c.shards = static_cast<std::size_t>(flags.GetInt("shards", c.shards));
    c.maintenance_thread =
        flags.GetBool("maintenance-thread", c.maintenance_thread);
    c.epoch = flags.GetBool("epoch", c.epoch);
    c.legacy_hot_path = flags.GetBool("legacy", c.legacy_hot_path);
    c.copy_survivors = flags.GetBool("copy-survivors", c.copy_survivors);
    c.relevance_index = flags.GetBool("relevance-index", c.relevance_index);
    c.delta_revalidation =
        flags.GetBool("delta-revalidation", c.delta_revalidation);
    c.fragments = flags.GetBool("fragments", c.fragments);
    c.simd = flags.GetString("simd", c.simd);
    c.arena = flags.GetBool("arena", c.arena);
    c.checkpoint_dir = flags.GetString("checkpoint-dir", c.checkpoint_dir);
    c.checkpoint_interval_us = static_cast<std::size_t>(
        flags.GetInt("checkpoint-interval", c.checkpoint_interval_us));
    c.warm_restart = flags.GetBool("warm-restart", c.warm_restart);
    {
      // --byte-budget accepts "off" (the entry-count oracle) or a byte
      // count; anything else must parse as a non-negative integer.
      const std::string budget = flags.GetString("byte-budget", "");
      if (!budget.empty() && budget != "off") {
        c.byte_budget = static_cast<std::size_t>(
            flags.GetInt("byte-budget", c.byte_budget));
      }
    }
    c.json_path = flags.GetString("json", c.json_path);
    return c;
  }

  AidsLikeOptions CorpusOptions() const {
    AidsLikeOptions opts;
    opts.num_graphs = graphs;
    opts.mean_vertices = mean_vertices;
    opts.stddev_vertices = stddev_vertices;
    opts.min_vertices = min_vertices;
    opts.max_vertices = max_vertices;
    opts.num_labels = labels;
    opts.seed = seed;
    return opts;
  }
};

inline std::vector<Graph> BuildCorpus(const BenchConfig& cfg) {
  return AidsLikeGenerator(cfg.CorpusOptions()).Generate();
}

/// Builds a workload by its paper name: "ZZ"/"ZU"/"UU" (Type A) or
/// "0%"/"20%"/"50%" (Type B).
inline Workload BuildWorkload(const std::string& name,
                              const std::vector<Graph>& corpus,
                              const BenchConfig& cfg) {
  if (name == "ZZ" || name == "ZU" || name == "UU" || name == "UZ") {
    return GenerateTypeAByName(corpus, name, cfg.queries, cfg.seed + 101,
                               cfg.zipf_alpha);
  }
  TypeBOptions opts;
  opts.zipf_alpha = cfg.zipf_alpha;
  opts.num_queries = cfg.queries;
  opts.seed = cfg.seed + 202;
  opts.answer_pool_size = cfg.queries;
  opts.no_answer_pool_size = cfg.queries * 3 / 10;
  if (name == "0%") {
    opts.no_answer_prob = 0.0;
  } else if (name == "20%") {
    opts.no_answer_prob = 0.2;
  } else if (name == "50%") {
    opts.no_answer_prob = 0.5;
  } else {
    std::fprintf(stderr, "unknown workload name '%s'\n", name.c_str());
    std::exit(2);
  }
  return GenerateTypeB(corpus, opts);
}

inline ChangePlan BuildPlan(const BenchConfig& cfg,
                            std::size_t corpus_size) {
  Rng rng(cfg.seed + 303);
  return ChangePlan::Generate(rng, cfg.queries, cfg.batches,
                              cfg.ops_per_batch,
                              static_cast<std::uint32_t>(corpus_size));
}

inline RunnerConfig MakeRunnerConfig(RunMode mode, MatcherKind method,
                                     const BenchConfig& cfg) {
  RunnerConfig rc;
  rc.mode = mode;
  rc.method = method;
  rc.cache_capacity = cfg.cache_capacity;
  rc.window_capacity = cfg.window_capacity;
  rc.warmup_queries = cfg.warmup;
  rc.verify_threads = cfg.verify_threads;
  rc.client_threads = cfg.client_threads;
  rc.shards = cfg.shards;
  rc.maintenance_thread = cfg.maintenance_thread;
  rc.epoch_reads = cfg.epoch;
  rc.max_sub_hits = cfg.max_sub_hits;
  rc.max_super_hits = cfg.max_super_hits;
  rc.legacy_hot_path = cfg.legacy_hot_path;
  rc.copy_discovery_survivors = cfg.copy_survivors;
  rc.relevance_index = cfg.relevance_index;
  rc.delta_revalidation = cfg.delta_revalidation;
  rc.fragments = cfg.fragments;
  rc.checkpoint_dir = cfg.checkpoint_dir;
  rc.checkpoint_interval_us = cfg.checkpoint_interval_us;
  rc.warm_restart = cfg.warm_restart;
  rc.byte_budget = cfg.byte_budget;
  rc.plan_seed = cfg.seed + 404;
  return rc;
}

/// Engine options for benches that construct GraphCachePlus directly
/// (bypassing the workload runner). One place maps BenchConfig knobs —
/// including every oracle toggle (--legacy, --relevance-index,
/// --delta-revalidation, --fragments, --copy-survivors) — onto
/// GraphCachePlusOptions, so a new flag lands once instead of once per
/// bench. Callers override the handful of fields their experiment pins
/// (model, epoch_reads, checkpoint knobs, ...) after the call.
inline GraphCachePlusOptions MakeEngineOptions(CacheModel model,
                                               const BenchConfig& cfg) {
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = cfg.cache_capacity;
  opts.window_capacity = cfg.window_capacity;
  opts.verify_threads = cfg.verify_threads;
  opts.num_shards = std::max<std::size_t>(1, cfg.shards);
  opts.maintenance_thread = cfg.maintenance_thread;
  opts.epoch_reads = cfg.epoch;
  opts.copy_discovery_survivors = cfg.copy_survivors;
  opts.max_sub_hits = cfg.max_sub_hits;
  opts.max_super_hits = cfg.max_super_hits;
  opts.use_relevance_index = cfg.relevance_index;
  opts.use_fragment_cache = cfg.fragments;
  opts.delta_revalidation = cfg.delta_revalidation;
  opts.reuse_match_context = !cfg.legacy_hot_path;
  opts.use_discovery_index = !cfg.legacy_hot_path;
  opts.checkpoint_dir = cfg.checkpoint_dir;
  opts.checkpoint_interval_us = cfg.checkpoint_interval_us;
  opts.byte_budget = cfg.byte_budget;
  return opts;
}

/// Applies the process-global oracle toggles (--simd, --arena) for this
/// bench run. Call once from main before measuring; idempotent.
inline void ApplyProcessToggles(const BenchConfig& cfg) {
  SetArenaEnabled(cfg.arena);
  if (cfg.simd.empty() || cfg.simd == "auto") {
    simd::SetSimdLevel(simd::DetectedSimdLevel());
  } else if (cfg.simd == "off" || cfg.simd == "scalar") {
    simd::SetSimdLevel(simd::SimdLevel::kScalar);
  } else if (cfg.simd == "popcnt") {
    simd::SetSimdLevel(simd::SimdLevel::kPopcnt);
  } else if (cfg.simd == "avx2") {
    simd::SetSimdLevel(simd::SimdLevel::kAvx2);
  } else {
    std::fprintf(stderr, "unknown --simd level '%s'\n", cfg.simd.c_str());
    std::exit(2);
  }
}

/// Method M verification throughput: sub-iso tests per second of verify
/// wall time — the Figure 5 "how fast does verification itself run" axis.
inline double VerifyThroughputTestsPerSec(const RunReport& r) {
  return r.agg.t_verify_ns <= 0
             ? 0.0
             : static_cast<double>(r.agg.si_tests) /
                   (static_cast<double>(r.agg.t_verify_ns) / 1e9);
}

/// Average per-query hit-discovery (cache probe) time in ms — candidate
/// enumeration plus utilities plus containment verification of hits.
inline double AvgProbeMs(const RunReport& r) {
  return r.agg.queries == 0
             ? 0.0
             : static_cast<double>(r.agg.t_probe_ns) / 1e6 /
                   static_cast<double>(r.agg.queries);
}

/// Average per-query candidate-enumeration time in ms (the slice of probe
/// the inverted feature-signature index attacks).
inline double AvgDiscoverMs(const RunReport& r) {
  return r.agg.queries == 0
             ? 0.0
             : static_cast<double>(r.agg.t_discover_ns) / 1e6 /
                   static_cast<double>(r.agg.queries);
}

/// Minimal JSON writer for the before/after bench reports: an object of
/// "rows", each a flat field map. Callers pass alternating key/value
/// already-formatted fields.
class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path, const char* bench,
                      const BenchConfig& cfg) {
    f_ = std::fopen(path.c_str(), "w");
    if (f_ == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      std::exit(2);
    }
    std::fprintf(f_,
                 "{\n  \"bench\": \"%s\",\n  \"config\": {\"graphs\": %u, "
                 "\"queries\": %u, \"cache\": %zu, \"window\": %zu, "
                 "\"batches\": %u, \"ops_per_batch\": %u, \"seed\": %llu},\n"
                 "  \"rows\": [",
                 bench, cfg.graphs, cfg.queries, cfg.cache_capacity,
                 cfg.window_capacity, cfg.batches, cfg.ops_per_batch,
                 static_cast<unsigned long long>(cfg.seed));
  }
  ~JsonWriter() {
    if (f_ != nullptr) {
      std::fprintf(f_, "\n  ]\n}\n");
      std::fclose(f_);
    }
  }

  void Row(const std::string& fields) {
    std::fprintf(f_, "%s\n    {%s}", first_ ? "" : ",", fields.c_str());
    first_ = false;
  }

 private:
  std::FILE* f_ = nullptr;
  bool first_ = true;
};

inline void PrintConfig(const BenchConfig& cfg, const char* bench_name) {
  std::printf("# %s\n", bench_name);
  std::printf(
      "# corpus: %u AIDS-like graphs (mean |V| %.0f, max %u) | workload: %u "
      "queries (Zipf a=%.1f) | cache/window: %zu/%zu | change plan: %u "
      "batches x %u ops | seed %llu\n",
      cfg.graphs, cfg.mean_vertices, cfg.max_vertices, cfg.queries,
      cfg.zipf_alpha, cfg.cache_capacity, cfg.window_capacity, cfg.batches,
      cfg.ops_per_batch, static_cast<unsigned long long>(cfg.seed));
}

}  // namespace gcp::bench

#endif  // GCP_BENCH_BENCH_COMMON_HPP_
