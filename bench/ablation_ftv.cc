// Ablation A6: the FTV research thread vs. and combined with GC+.
//
// The paper motivates GC+ over SI methods because published FTV indexes
// are not updatable under dataset changes (§1). This repo implements the
// missing updatable index (src/ftv), enabling the comparison the paper
// could not run: bare scan (M), M + updatable FTV filter, GC+/CON over
// the scan, and GC+/CON composed with FTV.

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Ablation A6: updatable FTV index vs/with GC+ (VF2+)");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());

  for (const std::string& wname : {std::string("ZU"), std::string("0%")}) {
    const Workload w = BuildWorkload(wname, corpus, cfg);
    struct Row {
      const char* name;
      RunMode mode;
      bool ftv;
    };
    const Row rows[] = {
        {"M (scan)", RunMode::kMethodM, false},
        {"M + FTV", RunMode::kMethodM, true},
        {"CON", RunMode::kCon, false},
        {"CON + FTV", RunMode::kCon, true},
    };
    RunnerConfig base_cfg =
        MakeRunnerConfig(RunMode::kMethodM, MatcherKind::kVf2Plus, cfg);
    const RunReport base = RunWorkload(corpus, w, plan, base_cfg);
    std::printf("\nworkload %s\n", wname.c_str());
    std::printf("%-10s %14s %14s %10s %10s\n", "system", "avg query ms",
                "tests/query", "t-spdup", "n-spdup");
    for (const Row& row : rows) {
      RunnerConfig rc = MakeRunnerConfig(row.mode, MatcherKind::kVf2Plus, cfg);
      rc.use_ftv = row.ftv;
      const RunReport r = RunWorkload(corpus, w, plan, rc);
      std::printf("%-10s %14.3f %14.1f %9.2fx %9.2fx\n", row.name,
                  r.avg_query_ms(), r.avg_si_tests(),
                  QueryTimeSpeedup(base, r), SiTestSpeedup(base, r));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n# Expected: the FTV filter alone removes the label-impossible\n"
      "# candidates; GC+ composes with it (CON+FTV <= each alone in\n"
      "# tests/query) because the cache prunes whatever CS_M Method M\n"
      "# produces.\n");
  return 0;
}
