// Ablation A5: retrospective validation (the paper's §8 future-work
// optimisation, implemented here). Sweeps the per-sync re-verification
// budget: 0 = plain CON (knowledge fades on change), larger budgets
// restore faded bits off the critical path, trading maintenance time for
// query-time work.

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Ablation A5: retrospective validation budget (CON, VF2+, ZU)");

  // Repeat-heavy regime (strong skew): retrospective refresh pays off by
  // restoring full validity, which re-enables the §6.3 exact-match
  // shortcut for repeated queries after changes.
  BenchConfig sweep_cfg = cfg;
  if (sweep_cfg.zipf_alpha == 1.4) sweep_cfg.zipf_alpha = 2.2;
  const std::vector<Graph> corpus = BuildCorpus(sweep_cfg);
  const ChangePlan plan = BuildPlan(sweep_cfg, corpus.size());
  const Workload w = BuildWorkload("ZU", corpus, sweep_cfg);
  const RunReport base = RunWorkload(
      corpus, w, plan,
      MakeRunnerConfig(RunMode::kMethodM, MatcherKind::kVf2Plus, sweep_cfg));
  std::printf("\nM baseline: %.3f ms/query, %.1f tests/query (Zipf a=%.1f)\n",
              base.avg_query_ms(), base.avg_si_tests(),
              sweep_cfg.zipf_alpha);

  std::printf("%10s %14s %14s %10s %14s %12s %12s\n", "budget",
              "avg query ms", "tests/query", "t-spdup", "validate ms/q",
              "retro tests", "exact hits");
  for (const std::size_t budget :
       {std::size_t{0}, std::size_t{50}, std::size_t{200}, std::size_t{1000},
        std::size_t{5000}}) {
    RunnerConfig rc =
        MakeRunnerConfig(RunMode::kCon, MatcherKind::kVf2Plus, sweep_cfg);
    rc.retrospective_budget = budget;
    const RunReport r = RunWorkload(corpus, w, plan, rc);
    const double queries = static_cast<double>(r.agg.queries);
    std::printf("%10zu %14.3f %14.1f %9.2fx %14.4f %12llu %12llu\n", budget,
                r.avg_query_ms(), r.avg_si_tests(),
                QueryTimeSpeedup(base, r),
                queries > 0 ? static_cast<double>(r.agg.t_validate_ns) / 1e6 /
                                  queries
                            : 0.0,
                static_cast<unsigned long long>(
                    r.cache_stats.total_retro_refreshes),
                static_cast<unsigned long long>(r.agg.exact_hits));
    std::fflush(stdout);
  }
  std::printf(
      "\n# Expected: query-time tests fall as the budget grows (faded and\n"
      "# new-graph bits get pre-verified); validation cost rises in\n"
      "# exchange — the classic maintenance-vs-latency trade.\n");
  return 0;
}
