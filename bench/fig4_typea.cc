// Figure 4 (left panel): GC+ speedup in query time — Type A workloads.
//
// Paper series (AIDS, cache 100 / window 20, HD policy):
//           VF2            VF2+           GQL
//        ZZ   ZU   UU   ZZ   ZU   UU   ZZ   ZU   UU
//   EVI 1.74 1.43 1.28 1.79 1.78 1.52 1.31 1.27 1.23
//   CON 7.85 4.77 5.13 7.31 5.79 6.21 5.78 4.57 3.90
//
// This harness regenerates the same 18-cell table: for each Method M in
// {VF2, VF2+, GQL} and workload in {ZZ, ZU, UU}, speedup = avg query time
// of bare Method M / avg query time of GC+ (EVI resp. CON).

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Figure 4 (Type A): GC+ speedup in query time");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());
  const std::vector<std::string> workloads = {"ZZ", "ZU", "UU"};
  const std::vector<MatcherKind> methods = {
      MatcherKind::kVf2, MatcherKind::kVf2Plus, MatcherKind::kGraphQl};

  std::printf("\n%-8s %-10s %12s %12s %12s %10s %10s\n", "method", "workload",
              "M avg ms", "EVI avg ms", "CON avg ms", "EVI spdup",
              "CON spdup");
  for (const MatcherKind method : methods) {
    for (const std::string& wname : workloads) {
      const Workload w = BuildWorkload(wname, corpus, cfg);
      const RunReport base = RunWorkload(
          corpus, w, plan, MakeRunnerConfig(RunMode::kMethodM, method, cfg));
      const RunReport evi = RunWorkload(
          corpus, w, plan, MakeRunnerConfig(RunMode::kEvi, method, cfg));
      const RunReport con = RunWorkload(
          corpus, w, plan, MakeRunnerConfig(RunMode::kCon, method, cfg));
      std::printf("%-8s %-10s %12.3f %12.3f %12.3f %9.2fx %9.2fx\n",
                  std::string(MatcherKindName(method)).c_str(), wname.c_str(),
                  base.avg_query_ms(), evi.avg_query_ms(), con.avg_query_ms(),
                  QueryTimeSpeedup(base, evi), QueryTimeSpeedup(base, con));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n# Expected shape (paper): CON >> EVI > 1 for every method and "
      "workload;\n# EVI stays below ~2.2x (frequent purges), CON reaches "
      "~4-8x.\n");
  return 0;
}
