// E7 (§7.2 claims): anatomy of cache hits, ZU vs UU.
//
// The paper explains why ZU and UU speedups are close despite ZU's skew:
//   * ZU sees ~2.5x the exact-match hits of UU,
//   * but only ~4% of ZU's exact-match hits are sub-iso-test-free
//     (vs ~11% in UU) — an exact hit needs full validity to short-circuit,
//   * while UU sees ~2x the subgraph/supergraph hits of ZU.
// This bench reproduces those counters (CON model, VF2+).

#include "bench_common.hpp"

using namespace gcp;
using namespace gcp::bench;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const BenchConfig cfg = BenchConfig::FromFlags(flags);
  PrintConfig(cfg, "Hit anatomy (paper §7.2): ZU vs UU");

  const std::vector<Graph> corpus = BuildCorpus(cfg);
  const ChangePlan plan = BuildPlan(cfg, corpus.size());

  std::printf("\n%-10s %12s %18s %14s %14s %14s\n", "workload", "exact hits",
              "exact zero-test", "sub hits", "super hits", "empty proofs");
  struct Cell {
    std::string name;
    std::uint64_t exact = 0, exact_zero = 0, sub = 0, super = 0, empty = 0;
  };
  std::vector<Cell> cells;
  for (const std::string& wname : {std::string("ZU"), std::string("UU")}) {
    const Workload w = BuildWorkload(wname, corpus, cfg);
    const RunReport r =
        RunWorkload(corpus, w, plan,
                    MakeRunnerConfig(RunMode::kCon, MatcherKind::kVf2Plus,
                                     cfg));
    Cell c;
    c.name = wname;
    c.exact = r.agg.exact_hits;
    c.exact_zero = r.agg.exact_hits_zero_test;
    c.sub = r.agg.sub_hits;
    c.super = r.agg.super_hits;
    c.empty = r.agg.empty_shortcuts;
    cells.push_back(c);
    const double zero_share =
        c.exact > 0 ? 100.0 * static_cast<double>(c.exact_zero) /
                          static_cast<double>(c.exact)
                    : 0.0;
    std::printf("%-10s %12llu %15llu (%4.1f%%) %11llu %14llu %14llu\n",
                c.name.c_str(), static_cast<unsigned long long>(c.exact),
                static_cast<unsigned long long>(c.exact_zero), zero_share,
                static_cast<unsigned long long>(c.sub),
                static_cast<unsigned long long>(c.super),
                static_cast<unsigned long long>(c.empty));
    std::fflush(stdout);
  }
  if (cells.size() == 2 && cells[1].exact > 0) {
    std::printf("\n# exact-hit ratio ZU/UU: %.2fx (paper: ~2.5x)\n",
                static_cast<double>(cells[0].exact) /
                    static_cast<double>(cells[1].exact));
  }
  if (cells.size() == 2 && (cells[0].sub + cells[0].super) > 0) {
    std::printf("# sub+super-hit ratio UU/ZU: %.2fx (paper: ~2x)\n",
                static_cast<double>(cells[1].sub + cells[1].super) /
                    static_cast<double>(cells[0].sub + cells[0].super));
  }
  return 0;
}
