// Pattern mining on a single large graph — the paper's §8 future-work
// scenario ("finding all occurrences of a query graph against a single
// massive graph"), exercising the matching-problem substrate
// (EnumerateEmbeddings / CountEmbeddings) rather than the decision
// problem the cache runtime uses.
//
// Builds a large labelled interaction network and counts occurrences of
// a family of motifs, reporting raw embedding counts and per-motif rates.
//
// Run:  ./examples/pattern_mining [--vertices N] [--seed S]

#include <cstdio>

#include "common/flags.hpp"
#include "common/stopwatch.hpp"
#include "graph/generators.hpp"
#include "match/enumerate.hpp"

using namespace gcp;

namespace {

Graph Path(std::initializer_list<Label> labels) {
  Graph g;
  for (const Label l : labels) g.AddVertex(l);
  for (VertexId v = 0; v + 1 < g.NumVertices(); ++v) g.AddEdge(v, v + 1).ok();
  return g;
}

Graph Triangle(Label a, Label b, Label c) {
  Graph g = Path({a, b, c});
  g.AddEdge(2, 0).ok();
  return g;
}

Graph Star(std::initializer_list<Label> labels) {
  Graph g;
  for (const Label l : labels) g.AddVertex(l);
  for (VertexId v = 1; v < g.NumVertices(); ++v) g.AddEdge(0, v).ok();
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const auto n = static_cast<std::size_t>(flags.GetInt("vertices", 20000));
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 3)));

  // One massive graph with 3 role labels (0 dominates), ~1.6 edges/vertex.
  Graph big = RandomConnectedGraph(rng, n, n * 3 / 5, 1);
  {
    Graph relabelled;
    for (VertexId v = 0; v < big.NumVertices(); ++v) {
      const double u = rng.UniformDouble();
      relabelled.AddVertex(u < 0.7 ? 0 : (u < 0.9 ? 1 : 2));
    }
    for (const auto& [a, b] : big.Edges()) relabelled.AddEdge(a, b).ok();
    big = std::move(relabelled);
  }
  std::printf("network: %zu vertices, %zu edges\n", big.NumVertices(),
              big.NumEdges());

  struct Motif {
    const char* name;
    Graph pattern;
  };
  const Motif motifs[] = {
      {"wedge 0-1-0", Path({0, 1, 0})},
      {"chain 0-0-0-0", Path({0, 0, 0, 0})},
      {"triangle 0-0-0", Triangle(0, 0, 0)},
      {"hub 1<-(0,0,0)", Star({1, 0, 0, 0})},
      {"bridge 2-0-2", Path({2, 0, 2})},
  };

  std::printf("%-16s %16s %12s %14s\n", "motif", "embeddings", "ms",
              "emb/ms");
  for (const Motif& m : motifs) {
    Stopwatch watch;
    const std::uint64_t count = CountEmbeddings(m.pattern, big);
    const double ms = watch.ElapsedMillis();
    std::printf("%-16s %16llu %12.1f %14.0f\n", m.name,
                static_cast<unsigned long long>(count), ms,
                ms > 0 ? static_cast<double>(count) / ms : 0.0);
  }

  // Early-stop usage: grab three concrete witnesses of the rarest motif.
  std::printf("\nfirst 3 'bridge 2-0-2' witnesses (vertex ids):\n");
  int shown = 0;
  EnumerateEmbeddings(Path({2, 0, 2}), big,
                      [&](const std::vector<VertexId>& m) {
                        std::printf("  (%u, %u, %u)\n", m[0], m[1], m[2]);
                        return ++shown < 3;
                      });
  return 0;
}
