// Social-network exploration: the paper's second motivating scenario.
//
// A dataset of community interaction graphs (one graph per group/event;
// vertices carry role labels). Analysts explore by starting broad
// ("any moderator connected to two members") and narrowing in ("...where
// the members also follow an advertiser"), so consecutive queries form
// subgraph chains — exactly the structure GC+ exploits. Meanwhile the
// communities evolve: groups form (ADD) and dissolve (DEL), relations
// appear (UA) and disappear (UR).
//
// Run:  ./examples/social_exploration [--groups N] [--rounds R] [--seed S]

#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "core/graphcache_plus.hpp"
#include "graph/generators.hpp"
#include "workload/query_gen.hpp"

using namespace gcp;

namespace {

// Role labels.
constexpr Label kMember = 0;
constexpr Label kModerator = 1;
constexpr Label kAdvertiser = 2;
constexpr Label kBot = 3;

// A community: a moderator-centred, mostly-member graph with a sprinkle
// of advertisers/bots.
Graph MakeCommunity(Rng& rng, std::size_t people) {
  Graph g = RandomConnectedGraph(rng, people, people / 3, 1);
  // Re-label: ~80% members, 10% moderators, 7% advertisers, 3% bots.
  Graph relabelled;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const double u = rng.UniformDouble();
    Label role = kMember;
    if (u > 0.97) {
      role = kBot;
    } else if (u > 0.90) {
      role = kAdvertiser;
    } else if (u > 0.80) {
      role = kModerator;
    }
    relabelled.AddVertex(role);
  }
  for (const auto& [a, b] : g.Edges()) relabelled.AddEdge(a, b).ok();
  return relabelled;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const auto groups = static_cast<std::size_t>(flags.GetInt("groups", 250));
  const auto rounds = static_cast<std::size_t>(flags.GetInt("rounds", 40));
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 11)));

  std::vector<Graph> communities;
  communities.reserve(groups);
  for (std::size_t i = 0; i < groups; ++i) {
    communities.push_back(MakeCommunity(rng, 10 + rng.UniformBelow(30)));
  }

  GraphDataset dataset;
  dataset.Bootstrap(communities);

  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  opts.method_m = MatcherKind::kGraphQl;
  GraphCachePlus gc(&dataset, opts);

  std::uint64_t tests_broad = 0, tests_narrow = 0;
  std::uint64_t candidates_broad = 0, candidates_narrow = 0;
  std::size_t narrow_queries = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Community churn between exploration rounds.
    if (round % 4 == 3) {
      dataset.AddGraph(MakeCommunity(rng, 12 + rng.UniformBelow(24)));
      const auto live = dataset.LiveIds();
      dataset.DeleteGraph(live[rng.UniformBelow(live.size())]).ok();
      const auto live2 = dataset.LiveIds();
      const GraphId gid = live2[rng.UniformBelow(live2.size())];
      const auto non_edges = dataset.graph(gid).NonEdges();
      if (!non_edges.empty()) {
        const auto& [u, v] = non_edges[rng.UniformBelow(non_edges.size())];
        dataset.AddEdge(gid, u, v).ok();
      }
    }

    // Broad-to-narrow exploration: BFS prefixes of a random community,
    // 2 → 5 → 9 edges (each narrower query contains the previous one).
    const auto live = dataset.LiveIds();
    const Graph& focus = dataset.graph(live[rng.UniformBelow(live.size())]);
    const auto start =
        static_cast<VertexId>(rng.UniformBelow(focus.NumVertices()));
    bool first = true;
    for (const std::size_t size : {2u, 5u, 9u}) {
      const Graph pattern = ExtractBfsQuery(focus, start, size);
      const QueryResult r = gc.SubgraphQuery(pattern);
      if (first) {
        tests_broad += r.metrics.si_tests;
        candidates_broad += r.metrics.candidates_initial;
        first = false;
      } else {
        tests_narrow += r.metrics.si_tests;
        candidates_narrow += r.metrics.candidates_initial;
        ++narrow_queries;
      }
    }
  }

  const AggregateMetrics& agg = gc.aggregate();
  std::printf("exploration rounds:            %zu (3 queries each)\n",
              rounds);
  std::printf(
      "broad queries:     %5.1f of %5.1f candidates verified (%.0f%% saved)\n",
      static_cast<double>(tests_broad) / static_cast<double>(rounds),
      static_cast<double>(candidates_broad) / static_cast<double>(rounds),
      100.0 * (1.0 - static_cast<double>(tests_broad) /
                         static_cast<double>(candidates_broad)));
  std::printf(
      "narrowing queries: %5.1f of %5.1f candidates verified (%.0f%% saved)"
      "  <- cache-assisted\n",
      static_cast<double>(tests_narrow) / static_cast<double>(narrow_queries),
      static_cast<double>(candidates_narrow) /
          static_cast<double>(narrow_queries),
      100.0 * (1.0 - static_cast<double>(tests_narrow) /
                         static_cast<double>(candidates_narrow)));
  std::printf("hits: %llu exact, %llu subgraph, %llu supergraph, %llu "
              "empty-proof\n",
              static_cast<unsigned long long>(agg.exact_hits),
              static_cast<unsigned long long>(agg.sub_hits),
              static_cast<unsigned long long>(agg.super_hits),
              static_cast<unsigned long long>(agg.empty_shortcuts));
  std::printf("consistency: %llu dataset changes reconciled via Algorithms "
              "1+2, zero stale answers by construction\n",
              static_cast<unsigned long long>(dataset.log().size()));
  return 0;
}
