// Molecule screening: the paper's biochemical motivation end-to-end.
//
// A compound library (AIDS-like molecule graphs) is screened for
// functional-group patterns while the library itself keeps changing —
// newly synthesized compounds arrive (ADD), withdrawn ones leave (DEL),
// and structure revisions land as edge edits (UA/UR). Screens are
// hierarchical: chemists first look for a broad motif, then refine it
// (paper §1: "a hierarchy of queries for aminoacids, proteins, ...").
//
// The example runs the same screen sequence against bare VF2+ and against
// GC+/CON and reports the work saved, verifying both return identical
// answer sets at every step.
//
// Run:  ./examples/molecule_screening [--graphs N] [--seed S]

#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/query_gen.hpp"

using namespace gcp;

namespace {

// A refinement sequence: BFS prefixes of one source molecule, broad to
// narrow, ending with a repeat of the broad screen.
std::vector<Graph> BuildScreenSequence(const std::vector<Graph>& library,
                                       Rng& rng) {
  std::vector<Graph> screens;
  for (int round = 0; round < 12; ++round) {
    const Graph& source = library[rng.UniformBelow(library.size())];
    const auto start =
        static_cast<VertexId>(rng.UniformBelow(source.NumVertices()));
    for (const std::size_t size : {4u, 8u, 12u}) {
      screens.push_back(ExtractBfsQuery(source, start, size));
    }
    screens.push_back(ExtractBfsQuery(source, start, 4));  // broad repeat
  }
  return screens;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  AidsLikeOptions corpus;
  corpus.num_graphs =
      static_cast<std::uint32_t>(flags.GetInt("graphs", 300));
  corpus.mean_vertices = 28;
  corpus.stddev_vertices = 10;
  corpus.max_vertices = 90;
  corpus.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  const std::vector<Graph> library = AidsLikeGenerator(corpus).Generate();
  Rng rng(corpus.seed + 1);
  const std::vector<Graph> screens = BuildScreenSequence(library, rng);

  // Two systems over identically evolving libraries.
  GraphDataset plain_ds, cached_ds;
  plain_ds.Bootstrap(library);
  cached_ds.Bootstrap(library);

  GraphCachePlusOptions plain_opts;
  plain_opts.enable_admission = false;  // bare Method M
  plain_opts.method_m = MatcherKind::kVf2Plus;
  GraphCachePlus plain(&plain_ds, plain_opts);

  GraphCachePlusOptions cached_opts;
  cached_opts.model = CacheModel::kCon;
  cached_opts.method_m = MatcherKind::kVf2Plus;
  GraphCachePlus cached(&cached_ds, cached_opts);

  Rng change_rng(corpus.seed + 2);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < screens.size(); ++i) {
    // Library churn every few screens: one ADD, one DEL, one edge edit —
    // applied identically to both datasets.
    if (i % 5 == 4) {
      for (GraphDataset* ds : {&plain_ds, &cached_ds}) {
        Rng local = change_rng;  // same ops on both datasets
        ds->AddGraph(library[local.UniformBelow(library.size())]);
        const auto live = ds->LiveIds();
        ds->DeleteGraph(live[local.UniformBelow(live.size())]).ok();
        const auto live2 = ds->LiveIds();
        const GraphId target = live2[local.UniformBelow(live2.size())];
        const auto edges = ds->graph(target).Edges();
        if (!edges.empty()) {
          const auto& [u, v] = edges[local.UniformBelow(edges.size())];
          ds->RemoveEdge(target, u, v).ok();
        }
      }
      change_rng.Next();  // advance the shared stream once per batch
    }
    const QueryResult a = plain.SubgraphQuery(screens[i]);
    const QueryResult b = cached.SubgraphQuery(screens[i]);
    if (a.answer != b.answer) ++mismatches;
  }

  const AggregateMetrics& pa = plain.aggregate();
  const AggregateMetrics& ca = cached.aggregate();
  std::printf("screens executed:        %llu\n",
              static_cast<unsigned long long>(pa.queries));
  std::printf("answer mismatches:       %zu (must be 0)\n", mismatches);
  std::printf("sub-iso tests, bare:     %llu\n",
              static_cast<unsigned long long>(pa.si_tests));
  std::printf("sub-iso tests, GC+/CON:  %llu  (%.1f%% saved)\n",
              static_cast<unsigned long long>(ca.si_tests),
              100.0 * (1.0 - static_cast<double>(ca.si_tests) /
                                 static_cast<double>(pa.si_tests)));
  std::printf("cache hits: %llu exact, %llu subgraph, %llu supergraph, "
              "%llu empty-proof\n",
              static_cast<unsigned long long>(ca.exact_hits),
              static_cast<unsigned long long>(ca.sub_hits),
              static_cast<unsigned long long>(ca.super_hits),
              static_cast<unsigned long long>(ca.empty_shortcuts));
  return mismatches == 0 ? 0 : 1;
}
