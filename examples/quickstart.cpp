// Quickstart: the GC+ public API in ~60 lines.
//
//   1. Build a dataset of labelled graphs.
//   2. Wrap it in a GraphCachePlus instance (CON model).
//   3. Run subgraph queries; observe cache hits on related queries.
//   4. Change the dataset; answers stay consistent automatically.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "core/graphcache_plus.hpp"

using namespace gcp;

namespace {

// Labels: 0 = C(arbon), 1 = O(xygen), 2 = N(itrogen).
Graph Path(std::initializer_list<Label> labels) {
  Graph g;
  for (const Label l : labels) g.AddVertex(l);
  for (VertexId v = 0; v + 1 < g.NumVertices(); ++v) g.AddEdge(v, v + 1).ok();
  return g;
}

void PrintAnswer(const char* name, const QueryResult& r) {
  std::printf("%-14s answer = {", name);
  for (std::size_t i = 0; i < r.answer.size(); ++i) {
    std::printf("%s%u", i ? ", " : "", r.answer[i]);
  }
  std::printf("}  (sub-iso tests: %llu%s%s)\n",
              static_cast<unsigned long long>(r.metrics.si_tests),
              r.metrics.exact_hit ? ", exact cache hit" : "",
              r.metrics.empty_shortcut ? ", empty-answer shortcut" : "");
}

}  // namespace

int main() {
  // 1. A tiny molecule dataset.
  GraphDataset dataset;
  dataset.Bootstrap({
      Path({0, 0, 1}),  // G0: C-C-O
      Path({0, 1}),     // G1: C-O
      Path({2, 0, 1}),  // G2: N-C-O
      Path({0, 0, 0}),  // G3: C-C-C
  });

  // 2. GC+ with the CON consistency model (the paper's winner).
  GraphCachePlusOptions options;
  options.model = CacheModel::kCon;
  options.method_m = MatcherKind::kVf2Plus;
  GraphCachePlus cache(&dataset, options);

  // 3. Queries. The second is a subgraph of the first (cache hit); the
  //    third repeats the first (exact hit, zero sub-iso tests).
  PrintAnswer("N-C-O", cache.SubgraphQuery(Path({2, 0, 1})));
  PrintAnswer("N-C", cache.SubgraphQuery(Path({2, 0})));
  PrintAnswer("N-C-O again", cache.SubgraphQuery(Path({2, 0, 1})));

  // 4. The dataset changes: G3 is revised into C-C-C-O, G1 disappears.
  //    GC+ reconciles the cache with the change log before the next query
  //    — no manual invalidation, answers stay provably consistent (paper
  //    Theorems 3 + 6). Vertex-set revisions are modelled as ADD of the
  //    revised graph + DEL of the old one (edge edits would use
  //    dataset.AddEdge / dataset.RemoveEdge, the UA/UR operations).
  {
    Graph revised = dataset.graph(3);          // C-C-C
    const VertexId nv = revised.AddVertex(1);  // dangling O
    revised.AddEdge(nv, 2).ok();
    dataset.AddGraph(revised);     // G4 = C-C-C-O
    dataset.DeleteGraph(3).ok();   // G3 retired
    dataset.DeleteGraph(1).ok();   // G1 retired
  }

  std::printf("\nafter dataset changes (G3->G4 revision, G1 deleted):\n");
  PrintAnswer("C-O", cache.SubgraphQuery(Path({0, 1})));
  PrintAnswer("N-C-O again", cache.SubgraphQuery(Path({2, 0, 1})));

  const AggregateMetrics& agg = cache.aggregate();
  std::printf("\ntotals: %llu queries, %llu sub-iso tests, "
              "%llu exact hits, %llu sub hits, %llu super hits\n",
              static_cast<unsigned long long>(agg.queries),
              static_cast<unsigned long long>(agg.si_tests),
              static_cast<unsigned long long>(agg.exact_hits),
              static_cast<unsigned long long>(agg.sub_hits),
              static_cast<unsigned long long>(agg.super_hits));
  return 0;
}
