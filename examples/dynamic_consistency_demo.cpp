// Dynamic-consistency walkthrough: the paper's Figure 2 timeline, printed.
//
// Shows, step by step, how the CON cache's per-entry validity indicator
// (CGvalid) evolves as the dataset changes — including the two Algorithm 2
// optimisations (UA-exclusive keeps positive results, UR-exclusive keeps
// negative results) and the indicator extension for new graphs.
//
// Run:  ./examples/dynamic_consistency_demo

#include <cstdio>
#include <string>

#include "core/graphcache_plus.hpp"
#include "graph/canonical.hpp"

using namespace gcp;

namespace {

constexpr Label kA = 0, kB = 1, kC = 2;

Graph Path(std::initializer_list<Label> labels) {
  Graph g;
  for (const Label l : labels) g.AddVertex(l);
  for (VertexId v = 0; v + 1 < g.NumVertices(); ++v) g.AddEdge(v, v + 1).ok();
  return g;
}

Graph Singleton(Label l) {
  Graph g;
  g.AddVertex(l);
  return g;
}

void DumpEntry(const GraphCachePlus& gc, const Graph& query,
               const char* name) {
  const std::uint64_t digest = WlDigest(query);
  bool found = false;
  gc.cache_manager().ForEachEntry([&](const CachedQuery& e) {
    if (e.digest != digest || found) return;
    found = true;
    std::printf("  %-4s Answer  = %s\n", name, e.answer.ToString().c_str());
    std::printf("       CGvalid = %s\n", e.valid.ToString().c_str());
  });
  if (!found) std::printf("  %-4s (not resident)\n", name);
}

}  // namespace

int main() {
  // T0: dataset {G0..G3}, empty CON cache.
  GraphDataset ds;
  {
    Graph g1;
    g1.AddVertex(kA);
    g1.AddVertex(kB);  // G1: A, B with no edge
    ds.Bootstrap({Singleton(kA),          // G0
                  std::move(g1),          // G1
                  Path({kA, kB, kC}),     // G2: A-B-C
                  Path({kA, kB})});       // G3: A-B
  }
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  GraphCachePlus gc(&ds, opts);
  const Graph g_prime = Path({kA, kB});
  const Graph g_dprime = Singleton(kC);

  std::printf("T0  dataset {G0:A  G1:A,B  G2:A-B-C  G3:A-B}, empty cache\n");

  std::printf("\nT1  query g' = A-B executed (answer {G2, G3}):\n");
  gc.SubgraphQuery(g_prime);
  DumpEntry(gc, g_prime, "g'");

  std::printf("\nT2  dataset changes: ADD G4 (copy of G2), UR on G3\n");
  ds.AddGraph(ds.graph(2));
  ds.RemoveEdge(3, 0, 1).ok();

  std::printf("\nT3  query g'' = C executed; validation ran first:\n");
  gc.SubgraphQuery(g_dprime);
  DumpEntry(gc, g_prime, "g'");
  std::printf("       ^ G3 faded (UR on a positive), G4 unknown (new)\n");
  DumpEntry(gc, g_dprime, "g''");

  std::printf("\nT4  dataset changes: DEL G0, UA on G1\n");
  ds.DeleteGraph(0).ok();
  ds.AddEdge(1, 0, 1).ok();

  std::printf("\nT5  query g = A executed; validation ran first:\n");
  const QueryResult r = gc.SubgraphQuery(Singleton(kA));
  DumpEntry(gc, g_prime, "g'");
  std::printf("       ^ G0 faded (DEL), G1 faded (UA on a negative); only "
              "G2 still valid\n");
  DumpEntry(gc, g_dprime, "g''");
  std::printf("       ^ g'' keeps G2,G3,G4: UA on G1 faded only G1\n");

  std::printf("\n    g answered {");
  for (std::size_t i = 0; i < r.answer.size(); ++i) {
    std::printf("%sG%u", i ? ", " : "", r.answer[i]);
  }
  std::printf("} with %llu sub-iso tests (G2 transferred from g', "
              "formula (1))\n",
              static_cast<unsigned long long>(r.metrics.si_tests));
  return 0;
}
