// Synthetic stand-in for the NCI DTP AIDS antiviral screen dataset.
//
// The paper evaluates on AIDS [19]: 40,000 molecule graphs averaging ≈45
// vertices (σ 22, max 245) and ≈47 edges (σ 23, max 250), with a skewed
// vertex-label (atom type) distribution. The original files are not
// redistributable, so this generator synthesizes molecule-like graphs
// matching the published shape statistics (see DESIGN.md §4 for why this
// substitution preserves the behaviours GC+ depends on):
//   * vertex counts: log-normal fitted to mean 45 / σ 22, clipped to
//     [kMinVertices, max_vertices];
//   * edges: a random spanning tree plus a small number of cycle-closing
//     edges (edge count ≈ 1.05 × vertex count), with a degree cap of 4
//     (organic chemistry valence);
//   * labels: Zipf-like frequencies over `num_labels` atom types
//     (carbon-dominated skew).

#ifndef GCP_DATASET_AIDS_LIKE_HPP_
#define GCP_DATASET_AIDS_LIKE_HPP_

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gcp {

/// \brief Shape parameters of the synthetic molecule corpus.
struct AidsLikeOptions {
  std::uint32_t num_graphs = 40000;
  double mean_vertices = 45.0;
  double stddev_vertices = 22.0;
  std::uint32_t min_vertices = 5;
  std::uint32_t max_vertices = 245;
  /// Target |E| / |V| ratio (AIDS: 47/45 ≈ 1.045).
  double edge_factor = 1.045;
  /// Valence cap for molecule-like structure.
  std::uint32_t max_degree = 4;
  std::uint32_t num_labels = 62;
  /// Zipf exponent of the label-frequency skew for the tail labels.
  double label_skew = 1.6;
  /// Explicit head of the label distribution, matching the atom-type
  /// frequencies of the real AIDS dataset (C, O, N, S, Cl); the remaining
  /// probability mass is spread Zipf-like over the tail labels. This
  /// concentration is what gives molecule datasets their rich cross-graph
  /// containment structure.
  std::vector<double> head_label_probs = {0.657, 0.168, 0.097, 0.025, 0.017};
  std::uint64_t seed = 42;
};

/// \brief Generates AIDS-like molecule graphs.
class AidsLikeGenerator {
 public:
  explicit AidsLikeGenerator(AidsLikeOptions options = {});

  /// Generates options.num_graphs graphs.
  std::vector<Graph> Generate();

  /// Generates one graph with `n` vertices (shape rules as above).
  Graph GenerateOne(std::uint32_t n);

  /// Samples a vertex count from the size distribution.
  std::uint32_t SampleSize();

  /// Samples a label from the skewed label distribution.
  Label SampleLabel();

  const AidsLikeOptions& options() const { return options_; }

 private:
  AidsLikeOptions options_;
  Rng rng_;
  std::vector<double> label_cdf_;
  double lognormal_mu_ = 0.0;
  double lognormal_sigma_ = 0.0;
};

}  // namespace gcp

#endif  // GCP_DATASET_AIDS_LIKE_HPP_
