// Log Analyzer — Algorithm 1 of the paper.
//
// Categorizes the incremental dataset-change records into three per-graph
// counters: CT (total operations), CA (UA-exclusive count) and CR
// (UR-exclusive count). The Cache Validator (Algorithm 2) consumes the
// counters to decide, per cached query and per touched dataset graph,
// whether the cached relation survives:
//   * UA-only changes preserve positive results (g ⊆ G_i stays true), and
//   * UR-only changes preserve negative results (g ⊄ G_i stays true);
// every other combination invalidates the bit.

#ifndef GCP_DATASET_LOG_ANALYZER_HPP_
#define GCP_DATASET_LOG_ANALYZER_HPP_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "dataset/change.hpp"
#include "graph/graph.hpp"

namespace gcp {

/// \brief The counter container C of Algorithm 1.
struct ChangeCounters {
  /// CT: graph id -> total number of operations of any type.
  std::unordered_map<GraphId, std::uint32_t> total;
  /// CA: graph id -> number of UA (edge addition) operations.
  std::unordered_map<GraphId, std::uint32_t> edge_adds;
  /// CR: graph id -> number of UR (edge removal) operations.
  std::unordered_map<GraphId, std::uint32_t> edge_removes;

  bool empty() const { return total.empty(); }

  /// True iff every operation touching `id` was UA (tc == uac, Alg. 2 l.12).
  bool IsUaExclusive(GraphId id) const;
  /// True iff every operation touching `id` was UR (tc == urc, Alg. 2 l.14).
  bool IsUrExclusive(GraphId id) const;
};

/// Hashed 64-bit mask bit of the unordered edge-label pair {a, b}. The
/// delta re-validation screen intersects these masks; collisions are
/// conservative (they can only widen the "maybe affected" set, never
/// prove a pair absent that is present).
std::uint64_t EdgeLabelPairBit(Label a, Label b);

/// Per-graph delta summary of one change batch — the raw material of the
/// delta re-validation screen (a refinement of the ChangeCounters op
/// classes down to *which* edge-label pairs a batch added/removed).
struct GraphChangeDelta {
  /// An ADD or DEL record touched the graph: the batch is structurally
  /// undecidable for it (label-pair screens don't apply).
  bool structural = false;
  /// False when an endpoint label could not be resolved; treat every
  /// screen over this graph as undecidable.
  bool pairs_exact = true;
  std::uint64_t added_pair_mask = 0;    ///< pairs of UA (edge-add) records
  std::uint64_t removed_pair_mask = 0;  ///< pairs of UR (edge-remove) records
};

/// Batch footprint keyed by touched graph id.
struct ChangeBatchFootprint {
  std::unordered_map<GraphId, GraphChangeDelta> deltas;

  const GraphChangeDelta* Find(GraphId id) const {
    const auto it = deltas.find(id);
    return it == deltas.end() ? nullptr : &it->second;
  }
};

/// \brief Runs Algorithm 1 over the incremental records.
class LogAnalyzer {
 public:
  /// Analyzes `records` (the suffix of the dataset log not yet reflected in
  /// cache) and returns the per-graph operation counters.
  static ChangeCounters Analyze(const std::vector<ChangeRecord>& records);

  /// Companion of Analyze: per-graph label-pair deltas over the same
  /// records. `graph_of` resolves a graph id to its batch-target state
  /// (nullptr when the graph is dead there). Vertex labels are immutable
  /// over a graph's lifetime and ids are never reused, so resolving a
  /// UA/UR endpoint label against the target state is exact; unresolvable
  /// endpoints mark the graph's delta as not pairs_exact.
  static ChangeBatchFootprint PairFootprint(
      const std::vector<ChangeRecord>& records,
      const std::function<const Graph*(GraphId)>& graph_of);
};

}  // namespace gcp

#endif  // GCP_DATASET_LOG_ANALYZER_HPP_
