// Log Analyzer — Algorithm 1 of the paper.
//
// Categorizes the incremental dataset-change records into three per-graph
// counters: CT (total operations), CA (UA-exclusive count) and CR
// (UR-exclusive count). The Cache Validator (Algorithm 2) consumes the
// counters to decide, per cached query and per touched dataset graph,
// whether the cached relation survives:
//   * UA-only changes preserve positive results (g ⊆ G_i stays true), and
//   * UR-only changes preserve negative results (g ⊄ G_i stays true);
// every other combination invalidates the bit.

#ifndef GCP_DATASET_LOG_ANALYZER_HPP_
#define GCP_DATASET_LOG_ANALYZER_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataset/change.hpp"

namespace gcp {

/// \brief The counter container C of Algorithm 1.
struct ChangeCounters {
  /// CT: graph id -> total number of operations of any type.
  std::unordered_map<GraphId, std::uint32_t> total;
  /// CA: graph id -> number of UA (edge addition) operations.
  std::unordered_map<GraphId, std::uint32_t> edge_adds;
  /// CR: graph id -> number of UR (edge removal) operations.
  std::unordered_map<GraphId, std::uint32_t> edge_removes;

  bool empty() const { return total.empty(); }

  /// True iff every operation touching `id` was UA (tc == uac, Alg. 2 l.12).
  bool IsUaExclusive(GraphId id) const;
  /// True iff every operation touching `id` was UR (tc == urc, Alg. 2 l.14).
  bool IsUrExclusive(GraphId id) const;
};

/// \brief Runs Algorithm 1 over the incremental records.
class LogAnalyzer {
 public:
  /// Analyzes `records` (the suffix of the dataset log not yet reflected in
  /// cache) and returns the per-graph operation counters.
  static ChangeCounters Analyze(const std::vector<ChangeRecord>& records);
};

}  // namespace gcp

#endif  // GCP_DATASET_LOG_ANALYZER_HPP_
