#include "dataset/dataset.hpp"

namespace gcp {

void GraphDataset::Bootstrap(std::vector<Graph> graphs) {
  slots_.clear();
  label_freq_.clear();
  slots_.reserve(graphs.size());
  for (auto& g : graphs) {
    CountLabels(g, +1);
    slots_.emplace_back(std::move(g));
  }
  num_live_ = slots_.size();
}

GraphId GraphDataset::AddGraph(Graph g) {
  const auto id = static_cast<GraphId>(slots_.size());
  CountLabels(g, +1);
  slots_.emplace_back(std::move(g));
  ++num_live_;
  log_.Append(ChangeType::kAdd, id);
  return id;
}

Status GraphDataset::DeleteGraph(GraphId id) {
  if (!IsLive(id)) return Status::NotFound("graph id not live");
  CountLabels(*slots_[id], -1);
  slots_[id].reset();
  --num_live_;
  log_.Append(ChangeType::kDelete, id);
  return Status::OK();
}

void GraphDataset::CountLabels(const Graph& g, std::int64_t sign) {
  for (const auto& [label, count] : g.label_histogram()) {
    const std::int64_t next =
        (label_freq_[label] += sign * static_cast<std::int64_t>(count));
    if (next == 0) label_freq_.erase(label);
  }
}

LabelHistogram GraphDataset::GlobalLabelHistogram() const {
  LabelHistogram hist;
  hist.reserve(label_freq_.size());
  for (const auto& [label, count] : label_freq_) {
    hist.push_back({label, static_cast<std::uint32_t>(count)});
  }
  return hist;
}

Status GraphDataset::AddEdge(GraphId id, VertexId u, VertexId v) {
  if (!IsLive(id)) return Status::NotFound("graph id not live");
  GCP_RETURN_NOT_OK(slots_[id]->AddEdge(u, v));
  log_.Append(ChangeType::kEdgeAdd, id, u, v);
  return Status::OK();
}

Status GraphDataset::RemoveEdge(GraphId id, VertexId u, VertexId v) {
  if (!IsLive(id)) return Status::NotFound("graph id not live");
  GCP_RETURN_NOT_OK(slots_[id]->RemoveEdge(u, v));
  log_.Append(ChangeType::kEdgeRemove, id, u, v);
  return Status::OK();
}

DynamicBitset GraphDataset::LiveMask() const {
  DynamicBitset mask(slots_.size());
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    if (slots_[id].has_value()) mask.Set(id);
  }
  return mask;
}

std::vector<GraphId> GraphDataset::LiveIds() const {
  std::vector<GraphId> out;
  out.reserve(num_live_);
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    if (slots_[id].has_value()) out.push_back(static_cast<GraphId>(id));
  }
  return out;
}

std::size_t GraphDataset::TotalLiveVertices() const {
  std::size_t total = 0;
  for (const auto& slot : slots_) {
    if (slot.has_value()) total += slot->NumVertices();
  }
  return total;
}

std::size_t GraphDataset::TotalLiveEdges() const {
  std::size_t total = 0;
  for (const auto& slot : slots_) {
    if (slot.has_value()) total += slot->NumEdges();
  }
  return total;
}

}  // namespace gcp
