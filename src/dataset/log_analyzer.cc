#include "dataset/log_analyzer.hpp"

namespace gcp {

bool ChangeCounters::IsUaExclusive(GraphId id) const {
  const auto tc = total.find(id);
  if (tc == total.end()) return false;
  const auto ua = edge_adds.find(id);
  return ua != edge_adds.end() && ua->second == tc->second;
}

bool ChangeCounters::IsUrExclusive(GraphId id) const {
  const auto tc = total.find(id);
  if (tc == total.end()) return false;
  const auto ur = edge_removes.find(id);
  return ur != edge_removes.end() && ur->second == tc->second;
}

ChangeCounters LogAnalyzer::Analyze(const std::vector<ChangeRecord>& records) {
  ChangeCounters c;
  // Algorithm 1, lines 6-17: one pass over the incremental records,
  // dispatching on the operation type; every record counts toward CT.
  for (const ChangeRecord& r : records) {
    switch (r.type) {
      case ChangeType::kEdgeAdd:
        ++c.edge_adds[r.graph_id];
        break;
      case ChangeType::kEdgeRemove:
        ++c.edge_removes[r.graph_id];
        break;
      case ChangeType::kAdd:
      case ChangeType::kDelete:
        break;
    }
    ++c.total[r.graph_id];
  }
  return c;
}

}  // namespace gcp
