#include "dataset/log_analyzer.hpp"

namespace gcp {

bool ChangeCounters::IsUaExclusive(GraphId id) const {
  const auto tc = total.find(id);
  if (tc == total.end()) return false;
  const auto ua = edge_adds.find(id);
  return ua != edge_adds.end() && ua->second == tc->second;
}

bool ChangeCounters::IsUrExclusive(GraphId id) const {
  const auto tc = total.find(id);
  if (tc == total.end()) return false;
  const auto ur = edge_removes.find(id);
  return ur != edge_removes.end() && ur->second == tc->second;
}

std::uint64_t EdgeLabelPairBit(Label a, Label b) {
  const Label lo = a < b ? a : b;
  const Label hi = a < b ? b : a;
  // splitmix64-style finalizer over the packed unordered pair.
  std::uint64_t h =
      (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi);
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return std::uint64_t{1} << (h & 63);
}

ChangeBatchFootprint LogAnalyzer::PairFootprint(
    const std::vector<ChangeRecord>& records,
    const std::function<const Graph*(GraphId)>& graph_of) {
  ChangeBatchFootprint fp;
  for (const ChangeRecord& r : records) {
    GraphChangeDelta& d = fp.deltas[r.graph_id];
    switch (r.type) {
      case ChangeType::kAdd:
      case ChangeType::kDelete:
        d.structural = true;
        break;
      case ChangeType::kEdgeAdd:
      case ChangeType::kEdgeRemove: {
        const Graph* g = graph_of ? graph_of(r.graph_id) : nullptr;
        if (g == nullptr || r.edge_u >= g->NumVertices() ||
            r.edge_v >= g->NumVertices()) {
          d.pairs_exact = false;
          break;
        }
        const std::uint64_t bit =
            EdgeLabelPairBit(g->label(r.edge_u), g->label(r.edge_v));
        if (r.type == ChangeType::kEdgeAdd) {
          d.added_pair_mask |= bit;
        } else {
          d.removed_pair_mask |= bit;
        }
        break;
      }
    }
  }
  return fp;
}

ChangeCounters LogAnalyzer::Analyze(const std::vector<ChangeRecord>& records) {
  ChangeCounters c;
  // Algorithm 1, lines 6-17: one pass over the incremental records,
  // dispatching on the operation type; every record counts toward CT.
  for (const ChangeRecord& r : records) {
    switch (r.type) {
      case ChangeType::kEdgeAdd:
        ++c.edge_adds[r.graph_id];
        break;
      case ChangeType::kEdgeRemove:
        ++c.edge_removes[r.graph_id];
        break;
      case ChangeType::kAdd:
      case ChangeType::kDelete:
        break;
    }
    ++c.total[r.graph_id];
  }
  return c;
}

}  // namespace gcp
