#include "dataset/change_log.hpp"

namespace gcp {

std::string_view ChangeTypeName(ChangeType type) {
  switch (type) {
    case ChangeType::kAdd:
      return "ADD";
    case ChangeType::kDelete:
      return "DEL";
    case ChangeType::kEdgeAdd:
      return "UA";
    case ChangeType::kEdgeRemove:
      return "UR";
  }
  return "Unknown";
}

LogSeq ChangeLog::Append(ChangeType type, GraphId graph_id, VertexId u,
                         VertexId v) {
  ChangeRecord rec;
  rec.seq = next_seq_.load(std::memory_order_relaxed);
  rec.type = type;
  rec.graph_id = graph_id;
  rec.edge_u = u;
  rec.edge_v = v;
  records_.push_back(rec);
  // Publish the new sequence only after the record is in place, so a
  // LatestSeq probe never claims a record that is still being written.
  next_seq_.store(rec.seq + 1, std::memory_order_release);
  return rec.seq;
}

std::vector<ChangeRecord> ChangeLog::ExtractSince(LogSeq watermark) const {
  std::vector<ChangeRecord> out;
  // Sequence numbers are dense (1-based), so the suffix starts at index
  // `watermark` when it is within range.
  if (watermark >= records_.size()) return out;
  out.assign(records_.begin() + static_cast<std::ptrdiff_t>(watermark),
             records_.end());
  return out;
}

}  // namespace gcp
