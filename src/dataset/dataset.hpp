// GraphDataset — the Dataset Manager's graph store (paper §4).
//
// Holds the evolving collection D = {G_0, G_1, ...} of dataset graphs.
// Every mutation (ADD / DEL / UA / UR) is appended to the embedded
// ChangeLog; graph ids are never reused so that cached per-graph bitset
// indicators (Answer, CGvalid) stay aligned across changes.

#ifndef GCP_DATASET_DATASET_HPP_
#define GCP_DATASET_DATASET_HPP_

#include <map>
#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "common/status.hpp"
#include "dataset/change.hpp"
#include "dataset/change_log.hpp"
#include "graph/graph.hpp"

namespace gcp {

/// \brief Mutable, versioned collection of dataset graphs.
class GraphDataset {
 public:
  GraphDataset() = default;

  /// Installs the initial dataset without logging (changes prior to the
  /// first query are part of the baseline state, not of the incremental
  /// log the Cache Validator must reconcile).
  void Bootstrap(std::vector<Graph> graphs);

  /// ADD: appends a new graph; returns its id and logs the change.
  GraphId AddGraph(Graph g);

  /// DEL: removes graph `id`. Errors when `id` is unknown or deleted.
  Status DeleteGraph(GraphId id);

  /// UA: adds edge {u, v} to graph `id` and logs the change.
  Status AddEdge(GraphId id, VertexId u, VertexId v);

  /// UR: removes edge {u, v} from graph `id` and logs the change.
  Status RemoveEdge(GraphId id, VertexId u, VertexId v);

  /// True iff `id` refers to a live (non-deleted) graph.
  bool IsLive(GraphId id) const {
    return id < slots_.size() && slots_[id].has_value();
  }

  /// Live graph accessor; `id` must be live.
  const Graph& graph(GraphId id) const { return *slots_[id]; }

  /// One past the largest id ever assigned ("m + 1" of Algorithm 2).
  std::size_t IdHorizon() const { return slots_.size(); }

  /// Number of live graphs.
  std::size_t NumLive() const { return num_live_; }

  /// Bitset of live ids over [0, IdHorizon()) — the candidate set CS_M of a
  /// query when Method M runs without an index (the whole dataset).
  DynamicBitset LiveMask() const;

  /// Ids of live graphs, ascending.
  std::vector<GraphId> LiveIds() const;

  /// The embedded change log.
  const ChangeLog& log() const { return log_; }

  /// Total vertices/edges across live graphs (reporting only).
  std::size_t TotalLiveVertices() const;
  std::size_t TotalLiveEdges() const;

  /// Dataset-wide label histogram over live graphs (sorted (label, count)
  /// pairs) — the rarity table Method M hands to SubgraphMatcher::Prepare.
  /// Maintained incrementally by Bootstrap/AddGraph/DeleteGraph (edge
  /// changes do not touch labels).
  LabelHistogram GlobalLabelHistogram() const;

 private:
  void CountLabels(const Graph& g, std::int64_t sign);

  std::vector<std::optional<Graph>> slots_;
  std::size_t num_live_ = 0;
  ChangeLog log_;
  std::map<Label, std::int64_t> label_freq_;
};

}  // namespace gcp

#endif  // GCP_DATASET_DATASET_HPP_
