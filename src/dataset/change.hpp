// Dataset change model (paper §1): graph addition (ADD), graph deletion
// (DEL), graph update by edge addition (UA) and by edge removal (UR).

#ifndef GCP_DATASET_CHANGE_HPP_
#define GCP_DATASET_CHANGE_HPP_

#include <cstdint>
#include <string_view>

#include "graph/graph.hpp"

namespace gcp {

/// Dataset graph identifier. Ids are dense, 0-based, and never reused:
/// a deleted id stays a hole so cached bitset indicators remain aligned.
using GraphId = std::uint32_t;

/// Monotone position in the dataset change log.
using LogSeq = std::uint64_t;

/// The four dataset change operations GC+ tracks.
enum class ChangeType : std::uint8_t {
  kAdd,         ///< ADD: a new dataset graph.
  kDelete,      ///< DEL: an existing graph removed.
  kEdgeAdd,     ///< UA: an edge added to an existing graph.
  kEdgeRemove,  ///< UR: an edge removed from an existing graph.
};

std::string_view ChangeTypeName(ChangeType type);

/// \brief One entry of the dataset update log.
///
/// UA/UR records carry the edge endpoints for auditability; Algorithm 1
/// only consumes (graph_id, type).
struct ChangeRecord {
  LogSeq seq = 0;
  ChangeType type = ChangeType::kAdd;
  GraphId graph_id = 0;
  VertexId edge_u = 0;  ///< Valid for kEdgeAdd / kEdgeRemove.
  VertexId edge_v = 0;  ///< Valid for kEdgeAdd / kEdgeRemove.
};

}  // namespace gcp

#endif  // GCP_DATASET_CHANGE_HPP_
