// Dataset change plan (paper §7.1, "Dataset Change Plan").
//
// Change operations are performed in batches whose occurrence time is the
// id of a query in the workload. The paper's AIDS plan: 2,000 operations
// in 100 batches of 20, during 10,000 queries. Generation follows the
// paper: batch times uniform over query ids; operation types uniform over
// {ADD, DEL, UA, UR}; ADD re-inserts a uniformly chosen *initial* dataset
// graph (preserving dataset characteristics); DEL/UA/UR pick a uniformly
// random graph of the *up-to-date* dataset at execution time; UA adds a
// uniformly chosen non-edge, UR removes a uniformly chosen edge.
//
// Because DEL/UA/UR depend on the dataset state at execution time, a plan
// stores only the schedule (when, which types, and for ADD which initial
// graph); targets are resolved by ChangePlanExecutor when the batch fires.

#ifndef GCP_DATASET_CHANGE_PLAN_HPP_
#define GCP_DATASET_CHANGE_PLAN_HPP_

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dataset/dataset.hpp"

namespace gcp {

/// One scheduled operation. `add_source` is the index into the initial
/// dataset snapshot, valid only for kAdd.
struct PlannedOp {
  ChangeType type = ChangeType::kAdd;
  std::uint32_t add_source = 0;
};

/// A batch of operations fired just before query `at_query` executes.
struct PlannedBatch {
  std::uint32_t at_query = 0;
  std::vector<PlannedOp> ops;
};

/// \brief Schedule of change batches over a query workload.
struct ChangePlan {
  std::vector<PlannedBatch> batches;  ///< Sorted by at_query.

  /// Generates a plan per the paper's recipe.
  /// \param rng            randomness source
  /// \param num_queries    workload length (batch times drawn from it)
  /// \param num_batches    how many batches
  /// \param ops_per_batch  operations per batch
  /// \param initial_size   number of graphs in the initial dataset
  ///                       (ADD source pool)
  static ChangePlan Generate(Rng& rng, std::uint32_t num_queries,
                             std::uint32_t num_batches,
                             std::uint32_t ops_per_batch,
                             std::uint32_t initial_size);

  std::size_t TotalOps() const;
};

/// \brief Applies plan batches to a live dataset, resolving DEL/UA/UR
/// targets against the up-to-date dataset state.
class ChangePlanExecutor {
 public:
  /// `initial` is the snapshot used as the ADD source pool; it must
  /// outlive the executor.
  ChangePlanExecutor(const ChangePlan& plan,
                     const std::vector<Graph>& initial, GraphDataset& dataset,
                     Rng rng)
      : plan_(plan), initial_(initial), dataset_(dataset), rng_(rng) {}

  /// Fires every not-yet-fired batch scheduled at or before `query_id`.
  /// Returns the number of operations applied.
  std::size_t AdvanceTo(std::uint32_t query_id);

  /// True when every batch has fired.
  bool Exhausted() const { return next_batch_ >= plan_.batches.size(); }

  /// Query id the next unfired batch is scheduled at; kNoBatch when
  /// exhausted. Lets concurrent runners skip the (serializing) dataset
  /// lock when no batch is due.
  static constexpr std::uint32_t kNoBatch = 0xffffffffu;
  std::uint32_t NextBatchAt() const {
    return Exhausted() ? kNoBatch : plan_.batches[next_batch_].at_query;
  }

  std::size_t ops_applied() const { return ops_applied_; }
  std::size_t ops_skipped() const { return ops_skipped_; }

 private:
  void ApplyOp(const PlannedOp& op);

  const ChangePlan& plan_;
  const std::vector<Graph>& initial_;
  GraphDataset& dataset_;
  Rng rng_;
  std::size_t next_batch_ = 0;
  std::size_t ops_applied_ = 0;
  std::size_t ops_skipped_ = 0;
};

}  // namespace gcp

#endif  // GCP_DATASET_CHANGE_PLAN_HPP_
