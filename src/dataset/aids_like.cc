#include "dataset/aids_like.hpp"

#include <algorithm>
#include <cmath>

namespace gcp {

AidsLikeGenerator::AidsLikeGenerator(AidsLikeOptions options)
    : options_(options), rng_(options.seed) {
  // Fit log-normal to (mean, stddev): if X ~ LogNormal(mu, sigma) then
  // E[X] = exp(mu + sigma^2/2) and Var[X] = (exp(sigma^2)-1) exp(2mu+sigma^2).
  const double mean = options_.mean_vertices;
  const double var = options_.stddev_vertices * options_.stddev_vertices;
  const double sigma2 = std::log(1.0 + var / (mean * mean));
  lognormal_sigma_ = std::sqrt(sigma2);
  lognormal_mu_ = std::log(mean) - sigma2 / 2.0;

  // Label frequencies: explicit AIDS-like head, Zipf-like tail.
  label_cdf_.resize(options_.num_labels);
  const std::size_t head =
      std::min<std::size_t>(options_.head_label_probs.size(),
                            options_.num_labels);
  double head_mass = 0.0;
  for (std::size_t i = 0; i < head; ++i) {
    head_mass += options_.head_label_probs[i];
  }
  head_mass = std::min(head_mass, 1.0);
  const std::size_t tail = options_.num_labels - head;
  // Unnormalized Zipf weights for the tail.
  double tail_weight_total = 0.0;
  std::vector<double> tail_weights(tail);
  for (std::size_t i = 0; i < tail; ++i) {
    tail_weights[i] = std::pow(static_cast<double>(i + 1),
                               -options_.label_skew);
    tail_weight_total += tail_weights[i];
  }
  const double tail_mass = 1.0 - head_mass;
  double cumulative = 0.0;
  for (std::uint32_t i = 0; i < options_.num_labels; ++i) {
    if (i < head) {
      cumulative += options_.head_label_probs[i] *
                    (head == options_.num_labels ? 1.0 / head_mass : 1.0);
    } else if (tail_weight_total > 0.0) {
      cumulative += tail_mass * tail_weights[i - head] / tail_weight_total;
    }
    label_cdf_[i] = cumulative;
  }
  // Guard against rounding: the last bucket absorbs the remainder.
  label_cdf_.back() = 1.0;
}

std::uint32_t AidsLikeGenerator::SampleSize() {
  const double x = std::exp(rng_.Normal(lognormal_mu_, lognormal_sigma_));
  const auto n = static_cast<std::uint32_t>(std::lround(x));
  return std::clamp(n, options_.min_vertices, options_.max_vertices);
}

Label AidsLikeGenerator::SampleLabel() {
  const double u = rng_.UniformDouble();
  const auto it = std::lower_bound(label_cdf_.begin(), label_cdf_.end(), u);
  return static_cast<Label>(std::distance(label_cdf_.begin(), it));
}

Graph AidsLikeGenerator::GenerateOne(std::uint32_t n) {
  Graph g;
  for (std::uint32_t i = 0; i < n; ++i) g.AddVertex(SampleLabel());
  if (n <= 1) return g;

  // Spanning tree with valence cap: attach each new vertex to a random
  // earlier vertex that still has spare degree (molecule backbone).
  std::vector<VertexId> attachable{0};
  for (VertexId v = 1; v < n; ++v) {
    const std::size_t pick = rng_.UniformBelow(attachable.size());
    const VertexId parent = attachable[pick];
    g.AddEdge(v, parent).ok();
    if (g.degree(parent) >= options_.max_degree) {
      attachable[pick] = attachable.back();
      attachable.pop_back();
    }
    if (g.degree(v) < options_.max_degree) attachable.push_back(v);
    if (attachable.empty()) attachable.push_back(v);  // degraded fallback
  }

  // Cycle-closing extra edges up to the target edge factor, respecting the
  // valence cap (rings are what distinguish molecules from trees).
  const auto target_edges = static_cast<std::size_t>(
      std::lround(options_.edge_factor * static_cast<double>(n)));
  std::size_t budget =
      target_edges > g.NumEdges() ? target_edges - g.NumEdges() : 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 30 * (budget + 1);
  while (budget > 0 && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng_.UniformBelow(n));
    const auto v = static_cast<VertexId>(rng_.UniformBelow(n));
    if (u == v || g.HasEdge(u, v)) continue;
    if (g.degree(u) >= options_.max_degree ||
        g.degree(v) >= options_.max_degree) {
      continue;
    }
    g.AddEdge(u, v).ok();
    --budget;
  }
  return g;
}

std::vector<Graph> AidsLikeGenerator::Generate() {
  std::vector<Graph> graphs;
  graphs.reserve(options_.num_graphs);
  for (std::uint32_t i = 0; i < options_.num_graphs; ++i) {
    graphs.push_back(GenerateOne(SampleSize()));
  }
  return graphs;
}

}  // namespace gcp
