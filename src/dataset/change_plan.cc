#include "dataset/change_plan.hpp"

#include <algorithm>

namespace gcp {

ChangePlan ChangePlan::Generate(Rng& rng, std::uint32_t num_queries,
                                std::uint32_t num_batches,
                                std::uint32_t ops_per_batch,
                                std::uint32_t initial_size) {
  ChangePlan plan;
  plan.batches.reserve(num_batches);
  for (std::uint32_t b = 0; b < num_batches; ++b) {
    PlannedBatch batch;
    batch.at_query =
        static_cast<std::uint32_t>(rng.UniformBelow(std::max(1u, num_queries)));
    batch.ops.reserve(ops_per_batch);
    for (std::uint32_t i = 0; i < ops_per_batch; ++i) {
      PlannedOp op;
      switch (rng.UniformBelow(4)) {
        case 0:
          op.type = ChangeType::kAdd;
          op.add_source = static_cast<std::uint32_t>(
              rng.UniformBelow(std::max(1u, initial_size)));
          break;
        case 1:
          op.type = ChangeType::kDelete;
          break;
        case 2:
          op.type = ChangeType::kEdgeAdd;
          break;
        default:
          op.type = ChangeType::kEdgeRemove;
          break;
      }
      batch.ops.push_back(op);
    }
    plan.batches.push_back(std::move(batch));
  }
  std::stable_sort(plan.batches.begin(), plan.batches.end(),
                   [](const PlannedBatch& a, const PlannedBatch& b) {
                     return a.at_query < b.at_query;
                   });
  return plan;
}

std::size_t ChangePlan::TotalOps() const {
  std::size_t total = 0;
  for (const auto& b : batches) total += b.ops.size();
  return total;
}

std::size_t ChangePlanExecutor::AdvanceTo(std::uint32_t query_id) {
  std::size_t applied = 0;
  while (next_batch_ < plan_.batches.size() &&
         plan_.batches[next_batch_].at_query <= query_id) {
    for (const PlannedOp& op : plan_.batches[next_batch_].ops) {
      const std::size_t before = ops_applied_;
      ApplyOp(op);
      applied += ops_applied_ - before;
    }
    ++next_batch_;
  }
  return applied;
}

void ChangePlanExecutor::ApplyOp(const PlannedOp& op) {
  switch (op.type) {
    case ChangeType::kAdd: {
      // Re-insert a copy of an initial graph (paper: "ADD using the initial
      // dataset ... so as to maximumly keep the original dataset
      // characteristics"). It gets a fresh id.
      if (initial_.empty()) {
        ++ops_skipped_;
        return;
      }
      dataset_.AddGraph(initial_[op.add_source % initial_.size()]);
      ++ops_applied_;
      return;
    }
    case ChangeType::kDelete: {
      const auto live = dataset_.LiveIds();
      if (live.empty()) {
        ++ops_skipped_;
        return;
      }
      const GraphId id = live[rng_.UniformBelow(live.size())];
      if (dataset_.DeleteGraph(id).ok()) {
        ++ops_applied_;
      } else {
        ++ops_skipped_;
      }
      return;
    }
    case ChangeType::kEdgeAdd: {
      // Pick a live graph uniformly; retry a few times if it is complete
      // (no addable edge).
      const auto live = dataset_.LiveIds();
      if (live.empty()) {
        ++ops_skipped_;
        return;
      }
      for (int attempt = 0; attempt < 8; ++attempt) {
        const GraphId id = live[rng_.UniformBelow(live.size())];
        const auto non_edges = dataset_.graph(id).NonEdges();
        if (non_edges.empty()) continue;
        const auto& [u, v] = non_edges[rng_.UniformBelow(non_edges.size())];
        if (dataset_.AddEdge(id, u, v).ok()) {
          ++ops_applied_;
          return;
        }
      }
      ++ops_skipped_;
      return;
    }
    case ChangeType::kEdgeRemove: {
      const auto live = dataset_.LiveIds();
      if (live.empty()) {
        ++ops_skipped_;
        return;
      }
      for (int attempt = 0; attempt < 8; ++attempt) {
        const GraphId id = live[rng_.UniformBelow(live.size())];
        const auto edges = dataset_.graph(id).Edges();
        if (edges.empty()) continue;
        const auto& [u, v] = edges[rng_.UniformBelow(edges.size())];
        if (dataset_.RemoveEdge(id, u, v).ok()) {
          ++ops_applied_;
          return;
        }
      }
      ++ops_skipped_;
      return;
    }
  }
}

}  // namespace gcp
