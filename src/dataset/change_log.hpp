// Append-only dataset update log consumed by the Log Analyzer.
//
// Consumers (the Cache Validator via the Dataset Manager) remember a
// watermark — the sequence number up to which changes have been reflected
// in the cache — and extract only the incremental suffix (Algorithm 1,
// line 5: "Extract the incremental records R from L").

#ifndef GCP_DATASET_CHANGE_LOG_HPP_
#define GCP_DATASET_CHANGE_LOG_HPP_

#include <atomic>
#include <vector>

#include "dataset/change.hpp"

namespace gcp {

/// \brief In-memory append-only change log with monotone sequence numbers.
class ChangeLog {
 public:
  ChangeLog() = default;
  // Movable despite the atomic tail (single-threaded contexts only, e.g.
  // returning a freshly built dataset by value).
  ChangeLog(ChangeLog&& other) noexcept
      : records_(std::move(other.records_)),
        next_seq_(other.next_seq_.load(std::memory_order_relaxed)) {}
  ChangeLog& operator=(ChangeLog&& other) noexcept {
    records_ = std::move(other.records_);
    next_seq_.store(other.next_seq_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }

  /// Appends a record, assigning the next sequence number (starting at 1).
  /// Returns the assigned sequence number.
  LogSeq Append(ChangeType type, GraphId graph_id, VertexId u = 0,
                VertexId v = 0);

  /// Sequence number of the newest record; 0 when the log is empty.
  /// Safe to call concurrently with Append (the epoch read path probes it
  /// to detect out-of-band serial mutations); every other accessor still
  /// requires external synchronization against appends.
  LogSeq LatestSeq() const {
    return next_seq_.load(std::memory_order_acquire) - 1;
  }

  /// Records with seq > `watermark`, oldest first.
  std::vector<ChangeRecord> ExtractSince(LogSeq watermark) const;

  /// True iff records newer than `watermark` exist.
  bool HasChangesSince(LogSeq watermark) const {
    return LatestSeq() > watermark;
  }

  std::size_t size() const { return records_.size(); }
  const std::vector<ChangeRecord>& records() const { return records_; }

 private:
  std::vector<ChangeRecord> records_;
  std::atomic<LogSeq> next_seq_{1};
};

}  // namespace gcp

#endif  // GCP_DATASET_CHANGE_LOG_HPP_
