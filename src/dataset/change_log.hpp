// Append-only dataset update log consumed by the Log Analyzer.
//
// Consumers (the Cache Validator via the Dataset Manager) remember a
// watermark — the sequence number up to which changes have been reflected
// in the cache — and extract only the incremental suffix (Algorithm 1,
// line 5: "Extract the incremental records R from L").

#ifndef GCP_DATASET_CHANGE_LOG_HPP_
#define GCP_DATASET_CHANGE_LOG_HPP_

#include <vector>

#include "dataset/change.hpp"

namespace gcp {

/// \brief In-memory append-only change log with monotone sequence numbers.
class ChangeLog {
 public:
  /// Appends a record, assigning the next sequence number (starting at 1).
  /// Returns the assigned sequence number.
  LogSeq Append(ChangeType type, GraphId graph_id, VertexId u = 0,
                VertexId v = 0);

  /// Sequence number of the newest record; 0 when the log is empty.
  LogSeq LatestSeq() const { return next_seq_ - 1; }

  /// Records with seq > `watermark`, oldest first.
  std::vector<ChangeRecord> ExtractSince(LogSeq watermark) const;

  /// True iff records newer than `watermark` exist.
  bool HasChangesSince(LogSeq watermark) const {
    return LatestSeq() > watermark;
  }

  std::size_t size() const { return records_.size(); }
  const std::vector<ChangeRecord>& records() const { return records_; }

 private:
  std::vector<ChangeRecord> records_;
  LogSeq next_seq_ = 1;
};

}  // namespace gcp

#endif  // GCP_DATASET_CHANGE_LOG_HPP_
