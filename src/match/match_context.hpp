// MatchContext — per-pattern state precomputed once and reused across many
// targets.
//
// Method M verifies one query against thousands of candidate dataset
// graphs, and hit discovery verifies it against dozens of cached queries.
// Everything that depends only on the pattern — the static search order,
// the per-depth connectivity frontier, the label multiset and the degree
// sequence — is the same for every one of those verifications, so
// recomputing it per pair (as the textbook matcher formulation does) burns
// the bulk of small-pattern verification time. A MatchContext captures that
// state once; matchers that support it (VF2+) accept the context through
// SubgraphMatcher::Prepare / ContainsPrepared.
//
// The context also bundles sound constant-time early rejects (vertex/edge
// counts, label-histogram dominance, degree-sequence dominance) applied
// before any search state is allocated.

#ifndef GCP_MATCH_MATCH_CONTEXT_HPP_
#define GCP_MATCH_MATCH_CONTEXT_HPP_

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace gcp {

/// \brief Immutable per-pattern precomputation shared across targets.
///
/// Thread-compatible: concurrent searches may read one context (all state
/// is fixed at Build time; search scratch lives in the caller).
struct MatchContext {
  const Graph* pattern = nullptr;

  /// Static search order: connectivity to the ordered prefix first, then
  /// label rarity (w.r.t. `target_stats` when provided, the pattern's own
  /// histogram otherwise), then descending degree.
  std::vector<VertexId> order;

  /// Per-depth connectivity frontier, flattened: frontier ids
  /// frontier[frontier_offsets[d] .. frontier_offsets[d+1]) are the
  /// pattern neighbours of order[d] placed at depths < d.
  std::vector<std::uint32_t> frontier_offsets;
  std::vector<VertexId> frontier;

  /// Builds the context for `pattern`. `target_stats` (optional) supplies
  /// the label-frequency table rarity is ranked by — typically the
  /// dataset-wide histogram when verifying against many dataset graphs.
  /// `pattern` must outlive the context; `target_stats` is consumed here.
  static MatchContext Build(const Graph& pattern,
                            const LabelHistogram* target_stats = nullptr);

  /// Sound necessary-condition screen: true when `target` certainly cannot
  /// contain the pattern (vertex/edge counts, label-histogram dominance,
  /// degree-sequence dominance). Never true for an actual containment.
  bool CheapReject(const Graph& target) const;
};

}  // namespace gcp

#endif  // GCP_MATCH_MATCH_CONTEXT_HPP_
