#include "match/graphql.hpp"

#include <algorithm>
#include <vector>

namespace gcp {

namespace {

constexpr VertexId kUnmapped = static_cast<VertexId>(-1);

// Kuhn's augmenting-path bipartite matching: can every left vertex be
// matched to a distinct right vertex along `allowed` edges? Sizes here are
// vertex degrees (small), so the O(L*L*R) bound is irrelevant in practice.
class BipartiteMatcher {
 public:
  BipartiteMatcher(std::size_t left, std::size_t right)
      : left_(left), adj_(left), match_right_(right, kUnmapped) {}

  void AddEdge(std::size_t l, std::size_t r) {
    adj_[l].push_back(static_cast<VertexId>(r));
  }

  bool HasPerfectLeftMatching() {
    for (std::size_t l = 0; l < left_; ++l) {
      visited_.assign(match_right_.size(), false);
      if (!Augment(l)) return false;
    }
    return true;
  }

 private:
  bool Augment(std::size_t l) {
    for (const VertexId r : adj_[l]) {
      if (visited_[r]) continue;
      visited_[r] = true;
      if (match_right_[r] == kUnmapped || Augment(match_right_[r])) {
        match_right_[r] = static_cast<VertexId>(l);
        return true;
      }
    }
    return false;
  }

  std::size_t left_;
  std::vector<std::vector<VertexId>> adj_;
  std::vector<VertexId> match_right_;
  std::vector<bool> visited_;
};

// Sorted multiset containment: every element of `sub` (with multiplicity)
// appears in `super`. Both inputs sorted ascending.
bool MultisetContained(const std::vector<Label>& sub,
                       const std::vector<Label>& super) {
  std::size_t j = 0;
  for (const Label l : sub) {
    while (j < super.size() && super[j] < l) ++j;
    if (j == super.size() || super[j] != l) return false;
    ++j;
  }
  return true;
}

class GraphQlSearch {
 public:
  GraphQlSearch(const Graph& pattern, const Graph& target,
                std::vector<std::vector<VertexId>> candidates,
                MatchStats* stats)
      : pattern_(pattern),
        target_(target),
        candidates_(std::move(candidates)),
        stats_(stats),
        core_p_(pattern.NumVertices(), kUnmapped),
        used_t_(target.NumVertices(), false) {
    BuildOrder();
  }

  bool Search(std::size_t depth) {
    if (depth == order_.size()) return true;
    const VertexId u = order_[depth];
    for (const VertexId v : candidates_[u]) {
      if (stats_ != nullptr) ++stats_->nodes_expanded;
      if (used_t_[v] || !Consistent(u, v)) {
        if (stats_ != nullptr) ++stats_->pruned;
        continue;
      }
      core_p_[u] = v;
      used_t_[v] = true;
      if (Search(depth + 1)) return true;
      core_p_[u] = kUnmapped;
      used_t_[v] = false;
    }
    return false;
  }

  const std::vector<VertexId>& mapping() const { return core_p_; }

 private:
  // Search order: smallest candidate list first, then prefer connectivity
  // to the ordered prefix (GraphQL's "left-deep" ordering heuristic).
  void BuildOrder() {
    const std::size_t n = pattern_.NumVertices();
    std::vector<bool> placed(n, false);
    std::vector<int> placed_neighbors(n, 0);
    order_.reserve(n);
    for (std::size_t step = 0; step < n; ++step) {
      VertexId best = kUnmapped;
      for (VertexId u = 0; u < n; ++u) {
        if (placed[u]) continue;
        if (best == kUnmapped) {
          best = u;
          continue;
        }
        const auto key = [&](VertexId x) {
          return std::make_tuple(-placed_neighbors[x], candidates_[x].size(),
                                 -static_cast<long>(pattern_.degree(x)));
        };
        if (key(u) < key(best)) best = u;
      }
      placed[best] = true;
      order_.push_back(best);
      for (const VertexId w : pattern_.neighbors(best)) ++placed_neighbors[w];
    }
  }

  bool Consistent(VertexId u, VertexId v) const {
    for (const VertexId w : pattern_.neighbors(u)) {
      const VertexId img = core_p_[w];
      if (img != kUnmapped && !target_.HasEdge(v, img)) return false;
    }
    return true;
  }

  const Graph& pattern_;
  const Graph& target_;
  std::vector<std::vector<VertexId>> candidates_;
  MatchStats* stats_;
  std::vector<VertexId> order_;
  std::vector<VertexId> core_p_;
  std::vector<bool> used_t_;
};

}  // namespace

bool GraphQlMatcher::FindEmbedding(const Graph& pattern, const Graph& target,
                                   std::vector<VertexId>* embedding,
                                   MatchStats* stats) const {
  const std::size_t np = pattern.NumVertices();
  const std::size_t nt = target.NumVertices();
  if (np == 0) {
    if (embedding != nullptr) embedding->clear();
    return true;
  }
  if (np > nt || pattern.NumEdges() > target.NumEdges()) return false;

  // Neighbourhood label profiles (sorted label multisets).
  auto profile = [](const Graph& g, VertexId v) {
    std::vector<Label> p;
    p.reserve(g.degree(v));
    for (const VertexId w : g.neighbors(v)) p.push_back(g.label(w));
    std::sort(p.begin(), p.end());
    return p;
  };
  std::vector<std::vector<Label>> target_profiles(nt);
  for (VertexId v = 0; v < nt; ++v) target_profiles[v] = profile(target, v);

  // Phase 1: label + degree + profile filter.
  std::vector<std::vector<VertexId>> candidates(np);
  for (VertexId u = 0; u < np; ++u) {
    const std::vector<Label> pu = profile(pattern, u);
    for (VertexId v = 0; v < nt; ++v) {
      if (pattern.label(u) != target.label(v)) continue;
      if (pattern.degree(u) > target.degree(v)) continue;
      if (!MultisetContained(pu, target_profiles[v])) continue;
      candidates[u].push_back(v);
    }
    if (candidates[u].empty()) return false;
  }

  // Phase 2: iterative refinement. (u, v) survives iff neighbours of u can
  // be injectively assigned to distinct neighbours of v through the current
  // candidate lists.
  std::vector<std::vector<bool>> is_candidate(np, std::vector<bool>(nt, false));
  for (VertexId u = 0; u < np; ++u) {
    for (const VertexId v : candidates[u]) is_candidate[u][v] = true;
  }
  for (int round = 0; round < refine_rounds_; ++round) {
    bool changed = false;
    for (VertexId u = 0; u < np; ++u) {
      std::vector<VertexId> survivors;
      survivors.reserve(candidates[u].size());
      const auto& nu = pattern.neighbors(u);
      for (const VertexId v : candidates[u]) {
        const auto& nv = target.neighbors(v);
        BipartiteMatcher bm(nu.size(), nv.size());
        for (std::size_t i = 0; i < nu.size(); ++i) {
          for (std::size_t j = 0; j < nv.size(); ++j) {
            if (is_candidate[nu[i]][nv[j]]) bm.AddEdge(i, j);
          }
        }
        if (bm.HasPerfectLeftMatching()) {
          survivors.push_back(v);
        } else {
          is_candidate[u][v] = false;
          changed = true;
        }
      }
      if (survivors.empty()) return false;
      candidates[u] = std::move(survivors);
    }
    if (!changed) break;
  }

  GraphQlSearch search(pattern, target, std::move(candidates), stats);
  if (!search.Search(0)) return false;
  if (embedding != nullptr) *embedding = search.mapping();
  return true;
}

}  // namespace gcp
