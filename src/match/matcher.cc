#include "match/matcher.hpp"

#include "match/graphql.hpp"
#include "match/ullmann.hpp"
#include "match/vf2.hpp"
#include "match/vf2_plus.hpp"

namespace gcp {

std::string_view MatcherKindName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kVf2:
      return "VF2";
    case MatcherKind::kVf2Plus:
      return "VF2+";
    case MatcherKind::kGraphQl:
      return "GQL";
    case MatcherKind::kUllmann:
      return "Ullmann";
  }
  return "Unknown";
}

std::unique_ptr<PreparedPattern> SubgraphMatcher::Prepare(
    const Graph& pattern, const LabelHistogram* /*target_stats*/) const {
  return std::make_unique<PreparedPattern>(pattern);
}

bool SubgraphMatcher::FindEmbeddingPrepared(const PreparedPattern& prepared,
                                            const Graph& target,
                                            std::vector<VertexId>* embedding,
                                            MatchStats* stats) const {
  return FindEmbedding(prepared.pattern(), target, embedding, stats);
}

std::unique_ptr<SubgraphMatcher> MakeMatcher(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kVf2:
      return std::make_unique<Vf2Matcher>();
    case MatcherKind::kVf2Plus:
      return std::make_unique<Vf2PlusMatcher>();
    case MatcherKind::kGraphQl:
      return std::make_unique<GraphQlMatcher>();
    case MatcherKind::kUllmann:
      return std::make_unique<UllmannMatcher>();
  }
  return nullptr;
}

bool IsValidEmbedding(const Graph& pattern, const Graph& target,
                      const std::vector<VertexId>& embedding) {
  if (embedding.size() != pattern.NumVertices()) return false;
  std::vector<bool> used(target.NumVertices(), false);
  for (VertexId u = 0; u < pattern.NumVertices(); ++u) {
    const VertexId v = embedding[u];
    if (v >= target.NumVertices()) return false;
    if (used[v]) return false;  // injectivity
    used[v] = true;
    if (pattern.label(u) != target.label(v)) return false;
  }
  for (const auto& [u1, u2] : pattern.Edges()) {
    if (!target.HasEdge(embedding[u1], embedding[u2])) return false;
  }
  return true;
}

}  // namespace gcp
