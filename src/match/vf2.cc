#include "match/vf2.hpp"

#include <algorithm>

namespace gcp {

namespace {

constexpr VertexId kUnmapped = static_cast<VertexId>(-1);

class Vf2State {
 public:
  Vf2State(const Graph& pattern, const Graph& target, MatchStats* stats)
      : pattern_(pattern),
        target_(target),
        stats_(stats),
        core_p_(pattern.NumVertices(), kUnmapped),
        core_t_(target.NumVertices(), kUnmapped) {}

  bool Search(std::size_t depth) {
    if (depth == pattern_.NumVertices()) return true;
    const VertexId u = NextPatternVertex();
    // Candidate targets: when u touches the mapped region, only neighbours
    // of the image of one mapped neighbour are viable; otherwise scan all
    // target vertices (vanilla VF2's terminal-set fallback).
    const VertexId anchor = MappedNeighborOf(u);
    if (anchor != kUnmapped) {
      for (const VertexId v : target_.neighbors(core_p_[anchor])) {
        if (TryPair(u, v, depth)) return true;
      }
    } else {
      for (VertexId v = 0; v < target_.NumVertices(); ++v) {
        if (TryPair(u, v, depth)) return true;
      }
    }
    return false;
  }

  const std::vector<VertexId>& mapping() const { return core_p_; }

 private:
  bool TryPair(VertexId u, VertexId v, std::size_t depth) {
    if (stats_ != nullptr) ++stats_->nodes_expanded;
    if (!Feasible(u, v)) {
      if (stats_ != nullptr) ++stats_->pruned;
      return false;
    }
    core_p_[u] = v;
    core_t_[v] = u;
    if (Search(depth + 1)) return true;
    core_p_[u] = kUnmapped;
    core_t_[v] = kUnmapped;
    return false;
  }

  // First unmapped pattern vertex adjacent to the mapped region, or the
  // first unmapped vertex when the mapped region has no frontier (start of
  // the search or a disconnected pattern component).
  VertexId NextPatternVertex() const {
    VertexId first_free = kUnmapped;
    for (VertexId u = 0; u < pattern_.NumVertices(); ++u) {
      if (core_p_[u] != kUnmapped) continue;
      if (first_free == kUnmapped) first_free = u;
      for (const VertexId w : pattern_.neighbors(u)) {
        if (core_p_[w] != kUnmapped) return u;
      }
    }
    return first_free;
  }

  // Some mapped pattern neighbour of u, or kUnmapped.
  VertexId MappedNeighborOf(VertexId u) const {
    for (const VertexId w : pattern_.neighbors(u)) {
      if (core_p_[w] != kUnmapped) return w;
    }
    return kUnmapped;
  }

  // Non-induced feasibility: semantic (label), injectivity, degree and
  // mapped-adjacency consistency (every mapped pattern edge at u must be
  // realized in the target).
  bool Feasible(VertexId u, VertexId v) const {
    if (core_t_[v] != kUnmapped) return false;
    if (pattern_.label(u) != target_.label(v)) return false;
    if (pattern_.degree(u) > target_.degree(v)) return false;
    for (const VertexId w : pattern_.neighbors(u)) {
      const VertexId mapped = core_p_[w];
      if (mapped != kUnmapped && !target_.HasEdge(v, mapped)) return false;
    }
    return true;
  }

  const Graph& pattern_;
  const Graph& target_;
  MatchStats* stats_;
  std::vector<VertexId> core_p_;
  std::vector<VertexId> core_t_;
};

}  // namespace

bool Vf2Matcher::FindEmbedding(const Graph& pattern, const Graph& target,
                               std::vector<VertexId>* embedding,
                               MatchStats* stats) const {
  if (pattern.NumVertices() == 0) {
    if (embedding != nullptr) embedding->clear();
    return true;
  }
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return false;
  }
  Vf2State state(pattern, target, stats);
  if (!state.Search(0)) return false;
  if (embedding != nullptr) *embedding = state.mapping();
  return true;
}

}  // namespace gcp
