// GraphQL (He & Singh; SIGMOD 2008) subgraph matcher, reimplemented from
// the published algorithm as used in the comparison of Lee et al. (PVLDB
// 2012):
//   1. per-query-vertex candidate lists filtered by label, degree and
//      neighbourhood label-multiset containment ("profiles");
//   2. iterative global refinement: a candidate (u, v) survives only if
//      the neighbours of u can be injectively matched into the neighbours
//      of v using current candidate lists (bipartite semi-matching test);
//   3. backtracking search over the refined lists, smallest list first.

#ifndef GCP_MATCH_GRAPHQL_HPP_
#define GCP_MATCH_GRAPHQL_HPP_

#include "match/matcher.hpp"

namespace gcp {

/// \brief GraphQL-style matcher: filtered candidate lists + refinement +
/// ordered backtracking.
class GraphQlMatcher : public SubgraphMatcher {
 public:
  /// `refine_rounds` controls the pseudo-arc-consistency iterations
  /// (GraphQL's default behaviour corresponds to a small constant).
  explicit GraphQlMatcher(int refine_rounds = 2)
      : refine_rounds_(refine_rounds) {}

  std::string_view name() const override { return "GQL"; }

  bool FindEmbedding(const Graph& pattern, const Graph& target,
                     std::vector<VertexId>* embedding,
                     MatchStats* stats = nullptr) const override;

 private:
  int refine_rounds_;
};

}  // namespace gcp

#endif  // GCP_MATCH_GRAPHQL_HPP_
