// Ullmann's algorithm (JACM 1976) for subgraph isomorphism, with the
// classic candidate-matrix refinement. Not part of the paper's Method M
// line-up; bundled as an independent oracle for cross-checking the other
// matchers in tests.

#ifndef GCP_MATCH_ULLMANN_HPP_
#define GCP_MATCH_ULLMANN_HPP_

#include "match/matcher.hpp"

namespace gcp {

/// \brief Ullmann subgraph-isomorphism verifier (test oracle).
class UllmannMatcher : public SubgraphMatcher {
 public:
  std::string_view name() const override { return "Ullmann"; }

  bool FindEmbedding(const Graph& pattern, const Graph& target,
                     std::vector<VertexId>* embedding,
                     MatchStats* stats = nullptr) const override;
};

}  // namespace gcp

#endif  // GCP_MATCH_ULLMANN_HPP_
