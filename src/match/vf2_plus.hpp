// VF2+ — the modified VF2 used by CT-Index (Klein, Kriege, Mutzel; ICDE
// 2011), reimplemented: VF2 search augmented with
//   * a static query-vertex order chosen by label rarity in the target and
//     connectivity to the ordered prefix (rare, high-degree vertices
//     first), and
//   * one-step lookahead pruning on unmapped-neighbour counts,
//   * candidate generation from the smallest mapped-neighbour adjacency.
// A consistently strong performer in the evaluations of Lee et al.
// (PVLDB 2012) and Katsarou et al. (PVLDB 2015), which is why the paper
// uses it as one of its Method M verifiers.

#ifndef GCP_MATCH_VF2_PLUS_HPP_
#define GCP_MATCH_VF2_PLUS_HPP_

#include "match/match_context.hpp"
#include "match/matcher.hpp"

namespace gcp {

/// \brief VF2 with static rarity ordering and lookahead ("VF2+").
///
/// Supports the prepared-pattern protocol: Prepare builds a MatchContext
/// (static order, per-depth connectivity frontier, early-reject data) that
/// FindEmbeddingPrepared reuses across every target, with label-filtered
/// candidate generation (Graph::NeighborsWithLabel) and per-vertex
/// signature dominance pruning on top of the classic VF2+ feasibility
/// rules. FindEmbedding keeps the per-pair formulation (target-specific
/// rarity ordering) — it is the reference/legacy path benches compare
/// against.
class Vf2PlusMatcher : public SubgraphMatcher {
 public:
  std::string_view name() const override { return "VF2+"; }

  bool FindEmbedding(const Graph& pattern, const Graph& target,
                     std::vector<VertexId>* embedding,
                     MatchStats* stats = nullptr) const override;

  std::unique_ptr<PreparedPattern> Prepare(
      const Graph& pattern,
      const LabelHistogram* target_stats = nullptr) const override;

  bool FindEmbeddingPrepared(const PreparedPattern& prepared,
                             const Graph& target,
                             std::vector<VertexId>* embedding,
                             MatchStats* stats = nullptr) const override;
};

}  // namespace gcp

#endif  // GCP_MATCH_VF2_PLUS_HPP_
