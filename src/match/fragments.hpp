// Sub-pattern fragment decomposition — the pattern side of the fragment
// cache (after eBay's one-hop sub-query result caches).
//
// A *fragment* is a canonical one-hop star sub-pattern of a query: one
// center vertex plus the sorted multiset of its neighbours' labels.
// Because our graphs are vertex-labelled only (no edge labels), the pair
// (center label, sorted leaf-label multiset) — with single-edge stars
// normalized to center = min endpoint label, the one shape whose center
// is not structurally distinguished — is a *complete* isomorphism
// invariant for stars: two stars are isomorphic iff their keys are equal,
// and the canonical star graph built from a key (vertex 0 = center,
// vertices 1..k = leaves in sorted label order, edges (0, i)) is
// bit-identical across all isomorphic inputs. Fragment identity in the
// cache is the WL digest of that canonical graph — the same digest
// whole queries use — with a canonical-graph equality check behind it so
// a true digest collision can never alias two distinct fragments.
//
// Soundness of fragment pruning: the matcher semantics are non-induced,
// label-preserving and injective, so the star of any query vertex embeds
// into the query itself; containment is transitive, hence every dataset
// graph containing the query contains every one of its fragments. A
// fragment's valid-negative set (valid ∧ ¬answer) is therefore a sound
// exclusion set for any query the fragment decomposes from.

#ifndef GCP_MATCH_FRAGMENTS_HPP_
#define GCP_MATCH_FRAGMENTS_HPP_

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace gcp {

/// One canonical one-hop sub-pattern of a query.
struct Fragment {
  Graph star;                 ///< Canonical star graph (center = vertex 0).
  std::uint64_t digest = 0;   ///< WlDigest(star) — the cache key.
};

/// Builds the canonical star graph for (center, leaves): vertex 0 carries
/// `center`, vertices 1..k the leaf labels in ascending order, and every
/// leaf connects to the center. Single-edge stars normalize the center to
/// the smaller endpoint label. Isomorphic stars produce equal graphs.
Graph MakeStarGraph(Label center, std::vector<Label> leaves);

/// Decomposes `g` into its distinct one-hop fragments: one candidate star
/// per vertex of degree >= 1, deduplicated by canonical key, ordered most
/// selective first (descending leaf count, then center label, then leaf
/// labels) and capped at `max_fragments`. The order — and therefore the
/// cap's selection — is invariant under vertex/edge input permutation.
/// An edgeless graph has no fragments.
std::vector<Fragment> DecomposeToFragments(const Graph& g,
                                           std::size_t max_fragments);

}  // namespace gcp

#endif  // GCP_MATCH_FRAGMENTS_HPP_
