// Vanilla VF2 (Cordella, Foggia, Sansone, Vento; TPAMI 2004), adapted to
// the non-induced decision problem on vertex-labelled undirected graphs.
//
// This is deliberately the unoptimized baseline of the paper's evaluation:
// connectivity-driven pair generation, label/degree/adjacency-consistency
// feasibility, no static ordering and no lookahead beyond degrees.

#ifndef GCP_MATCH_VF2_HPP_
#define GCP_MATCH_VF2_HPP_

#include "match/matcher.hpp"

namespace gcp {

/// \brief Vanilla VF2 subgraph-isomorphism verifier.
class Vf2Matcher : public SubgraphMatcher {
 public:
  std::string_view name() const override { return "VF2"; }

  bool FindEmbedding(const Graph& pattern, const Graph& target,
                     std::vector<VertexId>* embedding,
                     MatchStats* stats = nullptr) const override;
};

}  // namespace gcp

#endif  // GCP_MATCH_VF2_HPP_
