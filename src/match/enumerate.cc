#include "match/enumerate.hpp"

#include <algorithm>
#include <map>

namespace gcp {

namespace {

constexpr VertexId kUnmapped = static_cast<VertexId>(-1);

// Shares the VF2+ search skeleton (static rarity order, anchor-adjacency
// candidates, full feasibility) but keeps searching after each success.
class Enumerator {
 public:
  Enumerator(const Graph& pattern, const Graph& target,
             const EmbeddingCallback& cb)
      : pattern_(pattern),
        target_(target),
        cb_(cb),
        core_p_(pattern.NumVertices(), kUnmapped),
        core_t_(target.NumVertices(), kUnmapped) {
    BuildOrder();
  }

  // Returns false when the callback requested a stop.
  bool Search(std::size_t depth) {
    if (depth == order_.size()) {
      ++count_;
      return cb_ == nullptr || cb_(core_p_);
    }
    const VertexId u = order_[depth];
    const VertexId anchor_image = SmallestMappedImage(u);
    if (anchor_image != kUnmapped) {
      for (const VertexId v : target_.neighbors(anchor_image)) {
        if (!TryPair(u, v, depth)) return false;
      }
    } else {
      for (VertexId v = 0; v < target_.NumVertices(); ++v) {
        if (!TryPair(u, v, depth)) return false;
      }
    }
    return true;
  }

  std::uint64_t count() const { return count_; }

 private:
  // Returns false only on callback-requested stop.
  bool TryPair(VertexId u, VertexId v, std::size_t depth) {
    if (!Feasible(u, v)) return true;
    core_p_[u] = v;
    core_t_[v] = u;
    const bool keep_going = Search(depth + 1);
    core_p_[u] = kUnmapped;
    core_t_[v] = kUnmapped;
    return keep_going;
  }

  void BuildOrder() {
    const std::size_t n = pattern_.NumVertices();
    std::map<Label, std::uint32_t> target_label_freq;
    for (VertexId v = 0; v < target_.NumVertices(); ++v) {
      ++target_label_freq[target_.label(v)];
    }
    auto rarity = [&](VertexId u) -> std::uint32_t {
      const auto it = target_label_freq.find(pattern_.label(u));
      return it == target_label_freq.end() ? 0 : it->second;
    };
    std::vector<bool> placed(n, false);
    std::vector<int> placed_neighbors(n, 0);
    order_.reserve(n);
    for (std::size_t step = 0; step < n; ++step) {
      VertexId best = kUnmapped;
      for (VertexId u = 0; u < n; ++u) {
        if (placed[u]) continue;
        if (best == kUnmapped) {
          best = u;
          continue;
        }
        const auto key = [&](VertexId x) {
          return std::make_tuple(-placed_neighbors[x], rarity(x),
                                 -static_cast<int>(pattern_.degree(x)));
        };
        if (key(u) < key(best)) best = u;
      }
      placed[best] = true;
      order_.push_back(best);
      for (const VertexId w : pattern_.neighbors(best)) ++placed_neighbors[w];
    }
  }

  VertexId SmallestMappedImage(VertexId u) const {
    VertexId best = kUnmapped;
    std::size_t best_degree = 0;
    for (const VertexId w : pattern_.neighbors(u)) {
      const VertexId img = core_p_[w];
      if (img == kUnmapped) continue;
      const std::size_t d = target_.degree(img);
      if (best == kUnmapped || d < best_degree) {
        best = img;
        best_degree = d;
      }
    }
    return best;
  }

  bool Feasible(VertexId u, VertexId v) const {
    if (core_t_[v] != kUnmapped) return false;
    if (pattern_.label(u) != target_.label(v)) return false;
    if (pattern_.degree(u) > target_.degree(v)) return false;
    for (const VertexId w : pattern_.neighbors(u)) {
      const VertexId mapped = core_p_[w];
      if (mapped != kUnmapped && !target_.HasEdge(v, mapped)) return false;
    }
    return true;
  }

  const Graph& pattern_;
  const Graph& target_;
  const EmbeddingCallback& cb_;
  std::vector<VertexId> order_;
  std::vector<VertexId> core_p_;
  std::vector<VertexId> core_t_;
  std::uint64_t count_ = 0;
};

}  // namespace

std::uint64_t EnumerateEmbeddings(const Graph& pattern, const Graph& target,
                                  const EmbeddingCallback& cb) {
  if (pattern.NumVertices() == 0) {
    if (cb != nullptr) cb({});
    return 1;
  }
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return 0;
  }
  Enumerator enumerator(pattern, target, cb);
  enumerator.Search(0);
  return enumerator.count();
}

std::uint64_t CountEmbeddings(const Graph& pattern, const Graph& target,
                              std::uint64_t limit) {
  std::uint64_t count = 0;
  EnumerateEmbeddings(pattern, target,
                      [&count, limit](const std::vector<VertexId>&) {
                        ++count;
                        return limit == 0 || count < limit;
                      });
  return count;
}

}  // namespace gcp
