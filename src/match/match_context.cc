#include "match/match_context.hpp"

#include <algorithm>
#include <tuple>

#include "common/arena.hpp"

namespace gcp {

namespace {

constexpr VertexId kUnplaced = static_cast<VertexId>(-1);

}  // namespace

MatchContext MatchContext::Build(const Graph& pattern,
                                 const LabelHistogram* target_stats) {
  MatchContext ctx;
  ctx.pattern = &pattern;
  const std::size_t n = pattern.NumVertices();
  ctx.order.reserve(n);
  ctx.frontier_offsets.reserve(n + 1);
  ctx.frontier_offsets.push_back(0);

  const LabelHistogram& rarity_hist =
      target_stats != nullptr ? *target_stats : pattern.label_histogram();

  // Greedy static order: most placed neighbours first, then rarest label,
  // then highest degree — the VF2+ ordering with the rarity table fixed up
  // front instead of re-derived per target.
  // Build scratch comes off the thread arena (heap fallback when arenas
  // are disabled) — Prepare runs once per query but for every cached
  // containment probe too, so its temporaries sit on the hot path.
  Arena* const arena = ThreadArena();
  ScratchArray<unsigned char> placed(arena, n, 0);
  ScratchArray<int> placed_neighbors(arena, n, 0);
  for (std::size_t step = 0; step < n; ++step) {
    VertexId best = kUnplaced;
    for (VertexId u = 0; u < n; ++u) {
      if (placed[u]) continue;
      if (best == kUnplaced) {
        best = u;
        continue;
      }
      const auto key = [&](VertexId x) {
        return std::make_tuple(-placed_neighbors[x],
                               HistogramCount(rarity_hist, pattern.label(x)),
                               -static_cast<int>(pattern.degree(x)));
      };
      if (key(u) < key(best)) best = u;
    }
    placed[best] = 1;
    ctx.order.push_back(best);
    for (const VertexId w : pattern.neighbors(best)) ++placed_neighbors[w];
    // The frontier of a later vertex is its placed neighbourhood; collect
    // it when the vertex is ordered (every neighbour placed so far).
  }

  // Second pass: for each depth, the pattern neighbours of order[d] placed
  // earlier — the only vertices whose images anchor candidate generation.
  ScratchArray<std::uint32_t> placed_at(arena, n, 0);
  for (std::size_t d = 0; d < n; ++d) {
    placed_at[ctx.order[d]] = static_cast<std::uint32_t>(d);
  }
  for (std::size_t d = 0; d < n; ++d) {
    const VertexId u = ctx.order[d];
    for (const VertexId w : pattern.neighbors(u)) {
      if (placed_at[w] < d) ctx.frontier.push_back(w);
    }
    ctx.frontier_offsets.push_back(
        static_cast<std::uint32_t>(ctx.frontier.size()));
  }
  return ctx;
}

bool MatchContext::CheapReject(const Graph& target) const {
  const Graph& p = *pattern;
  if (p.NumVertices() > target.NumVertices() ||
      p.NumEdges() > target.NumEdges()) {
    return true;
  }
  // Label-histogram dominance: the pattern cannot need more vertices of a
  // label than the target has.
  if (!HistogramDominates(p.label_histogram(), target.label_histogram())) {
    return true;
  }
  // Degree-sequence dominance: the i-th largest pattern degree must not
  // exceed the i-th largest target degree (counting argument over the
  // injective mapping). Both sequences are sorted descending.
  {
    const auto& pd = p.degree_sequence();
    const auto& td = target.degree_sequence();
    for (std::size_t i = 0; i < pd.size(); ++i) {
      if (pd[i] > td[i]) return true;
    }
  }
  return false;
}

}  // namespace gcp
