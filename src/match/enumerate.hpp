// The subgraph MATCHING problem (paper §2): locate all occurrences of a
// query graph within a (possibly single, massive) target graph — as
// opposed to the decision problem the GC+ runtime needs. The paper lists
// "extending GC+ to benefit subgraph queries when finding all occurrences
// of a query graph against a single massive graph" as future work (§8);
// this module provides the enumeration substrate for it.
//
// Embeddings are reported as raw injective mappings (pattern vertex ->
// target vertex); automorphic images of the pattern are therefore
// reported separately (e.g. a same-label triangle occurs 6 times per
// triangle of the target).

#ifndef GCP_MATCH_ENUMERATE_HPP_
#define GCP_MATCH_ENUMERATE_HPP_

#include <cstdint>
#include <functional>

#include "graph/graph.hpp"

namespace gcp {

/// Callback invoked per embedding; return false to stop the enumeration.
using EmbeddingCallback =
    std::function<bool(const std::vector<VertexId>& mapping)>;

/// Enumerates every (non-induced, label-preserving, injective) embedding
/// of `pattern` into `target`, invoking `cb` for each. Returns the number
/// of embeddings reported. The empty pattern has exactly one (empty)
/// embedding.
std::uint64_t EnumerateEmbeddings(const Graph& pattern, const Graph& target,
                                  const EmbeddingCallback& cb);

/// Counts embeddings; `limit` (0 = unlimited) stops counting early — the
/// return value saturates at `limit`.
std::uint64_t CountEmbeddings(const Graph& pattern, const Graph& target,
                              std::uint64_t limit = 0);

}  // namespace gcp

#endif  // GCP_MATCH_ENUMERATE_HPP_
