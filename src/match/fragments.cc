#include "match/fragments.hpp"

#include <algorithm>
#include <utility>

#include "graph/canonical.hpp"

namespace gcp {

Graph MakeStarGraph(Label center, std::vector<Label> leaves) {
  // A single-edge star is the one shape where the center is not
  // structurally distinguished: (a)-(b) read from either endpoint is the
  // same unrooted pattern. Normalize to center = min label so both
  // readings canonicalize to the same graph (and fragment key).
  if (leaves.size() == 1 && leaves[0] < center) {
    std::swap(center, leaves[0]);
  }
  std::sort(leaves.begin(), leaves.end());
  std::vector<Label> labels;
  labels.reserve(leaves.size() + 1);
  labels.push_back(center);
  labels.insert(labels.end(), leaves.begin(), leaves.end());
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    edges.emplace_back(0, static_cast<VertexId>(i + 1));
  }
  Result<Graph> g = Graph::Create(std::move(labels), edges);
  // A star over valid inputs cannot fail construction (no self-loops, no
  // duplicate edges by shape).
  return std::move(g).value();
}

std::vector<Fragment> DecomposeToFragments(const Graph& g,
                                           std::size_t max_fragments) {
  // Candidate key per vertex: (center label, sorted leaf labels).
  using Key = std::pair<Label, std::vector<Label>>;
  std::vector<Key> keys;
  keys.reserve(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.degree(v) == 0) continue;
    std::vector<Label> leaves;
    leaves.reserve(g.degree(v));
    for (const VertexId u : g.neighbors(v)) leaves.push_back(g.label(u));
    std::sort(leaves.begin(), leaves.end());
    Label center = g.label(v);
    // Mirror MakeStarGraph's single-edge normalization in the key itself,
    // so the two endpoint readings of one edge dedup to one fragment.
    if (leaves.size() == 1 && leaves[0] < center) {
      std::swap(center, leaves[0]);
    }
    keys.emplace_back(center, std::move(leaves));
  }
  // Most selective first; the tie chain makes the cap's selection (and the
  // resulting fragment list) invariant under input permutation.
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.second.size() != b.second.size()) {
      return a.second.size() > b.second.size();
    }
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.size() > max_fragments) keys.resize(max_fragments);

  std::vector<Fragment> out;
  out.reserve(keys.size());
  for (Key& key : keys) {
    Fragment f;
    f.star = MakeStarGraph(key.first, std::move(key.second));
    f.digest = WlDigest(f.star);
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace gcp
