// Subgraph-isomorphism matcher interface ("Method M" verifiers).
//
// The paper evaluates GC+ over three well-established SI methods: vanilla
// VF2 [3], VF2+ (the modified VF2 of CT-Index [11]) and GraphQL [14]. GC+
// treats the verifier as a black box: it only needs the boolean decision
// "is `pattern` subgraph-isomorphic to `target`?" (non-induced,
// label-preserving, injective). All matchers here answer exactly that, and
// can also surface one witness embedding for testing.

#ifndef GCP_MATCH_MATCHER_HPP_
#define GCP_MATCH_MATCHER_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace gcp {

/// Search-effort counters reported by a matcher invocation.
struct MatchStats {
  /// Recursion-tree nodes expanded (candidate pairs tried).
  std::uint64_t nodes_expanded = 0;
  /// Candidate pairs rejected by feasibility checks.
  std::uint64_t pruned = 0;

  void Add(const MatchStats& other) {
    nodes_expanded += other.nodes_expanded;
    pruned += other.pruned;
  }
};

/// Identifiers for the bundled matcher implementations.
enum class MatcherKind {
  kVf2,      ///< Cordella et al. 2004, vanilla.
  kVf2Plus,  ///< VF2 with static rarity ordering + lookahead (CT-Index).
  kGraphQl,  ///< He & Singh 2008: signature filter + refinement + search.
  kUllmann,  ///< Ullmann 1976 (test cross-check baseline).
};

std::string_view MatcherKindName(MatcherKind kind);

/// \brief Reusable per-pattern state for one matcher implementation.
///
/// Created once per query by SubgraphMatcher::Prepare and reused across
/// every target that query is verified against (Method M candidates, cache
/// residents). The base class only pins the pattern; matchers that
/// precompute real state (VF2+'s MatchContext) subclass it. The referenced
/// pattern must outlive the prepared object. Immutable after construction,
/// so one prepared pattern may serve concurrent searches.
class PreparedPattern {
 public:
  explicit PreparedPattern(const Graph& pattern) : pattern_(&pattern) {}
  virtual ~PreparedPattern() = default;

  const Graph& pattern() const { return *pattern_; }

 private:
  const Graph* pattern_;
};

/// \brief Decision-problem subgraph-isomorphism verifier.
class SubgraphMatcher {
 public:
  virtual ~SubgraphMatcher() = default;

  virtual std::string_view name() const = 0;

  /// True iff pattern ⊆ target. The empty pattern is contained in every
  /// graph. Thread-compatible: concurrent calls on one instance are safe.
  bool Contains(const Graph& pattern, const Graph& target,
                MatchStats* stats = nullptr) const {
    return FindEmbedding(pattern, target, nullptr, stats);
  }

  /// Like Contains, additionally writing a witness mapping
  /// pattern-vertex -> target-vertex into `embedding` when found (and
  /// non-null).
  virtual bool FindEmbedding(const Graph& pattern, const Graph& target,
                             std::vector<VertexId>* embedding,
                             MatchStats* stats = nullptr) const = 0;

  /// Precomputes per-pattern state reused across many targets (static
  /// vertex order, connectivity frontier, early-reject data). The default
  /// implementation wraps the pattern without precomputation, so
  /// FindEmbeddingPrepared falls back to FindEmbedding — matchers without
  /// a specialized prepared path behave exactly as before. `target_stats`
  /// (optional) supplies the label-frequency table rarity ordering ranks
  /// by (typically the dataset-wide histogram); it is consumed during
  /// Prepare and need not outlive the call. `pattern` must outlive the
  /// returned object.
  virtual std::unique_ptr<PreparedPattern> Prepare(
      const Graph& pattern,
      const LabelHistogram* target_stats = nullptr) const;

  /// FindEmbedding against a prepared pattern. `prepared` must come from
  /// this matcher's Prepare. Thread-compatible: concurrent calls sharing
  /// one prepared pattern are safe.
  virtual bool FindEmbeddingPrepared(const PreparedPattern& prepared,
                                     const Graph& target,
                                     std::vector<VertexId>* embedding,
                                     MatchStats* stats = nullptr) const;

  /// Contains against a prepared pattern.
  bool ContainsPrepared(const PreparedPattern& prepared, const Graph& target,
                        MatchStats* stats = nullptr) const {
    return FindEmbeddingPrepared(prepared, target, nullptr, stats);
  }
};

/// Factory for the bundled implementations.
std::unique_ptr<SubgraphMatcher> MakeMatcher(MatcherKind kind);

/// Validates that `embedding` is a correct non-induced label-preserving
/// injective mapping of `pattern` into `target` (used by tests).
bool IsValidEmbedding(const Graph& pattern, const Graph& target,
                      const std::vector<VertexId>& embedding);

}  // namespace gcp

#endif  // GCP_MATCH_MATCHER_HPP_
