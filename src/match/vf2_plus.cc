#include "match/vf2_plus.hpp"

#include <algorithm>
#include <cstdint>

#include "common/arena.hpp"
#include "common/simd.hpp"

namespace gcp {

namespace {

constexpr VertexId kUnmapped = static_cast<VertexId>(-1);

// Static order: greedily pick the unplaced vertex with (most placed
// neighbours, rarest target label, highest degree). The first vertex is
// chosen by (rarest label, highest degree) alone. Rarity is ranked by the
// target's precomputed label histogram.
std::vector<VertexId> StaticOrder(const Graph& pattern,
                                  const LabelHistogram& target_hist) {
  const std::size_t n = pattern.NumVertices();
  std::vector<VertexId> order;
  order.reserve(n);
  // Per-pair scratch: arena bumps instead of two heap round-trips per
  // (pattern, target) pair (heap fallback when arenas are disabled).
  Arena* const arena = ThreadArena();
  ScratchArray<unsigned char> placed(arena, n, 0);
  ScratchArray<int> placed_neighbors(arena, n, 0);

  auto rarity = [&](VertexId u) -> std::uint32_t {
    return HistogramCount(target_hist, pattern.label(u));
  };

  for (std::size_t step = 0; step < n; ++step) {
    VertexId best = kUnmapped;
    for (VertexId u = 0; u < n; ++u) {
      if (placed[u]) continue;
      if (best == kUnmapped) {
        best = u;
        continue;
      }
      const auto key = [&](VertexId x) {
        return std::make_tuple(-placed_neighbors[x], rarity(x),
                               -static_cast<int>(pattern.degree(x)));
      };
      if (key(u) < key(best)) best = u;
    }
    placed[best] = 1;
    order.push_back(best);
    for (const VertexId w : pattern.neighbors(best)) ++placed_neighbors[w];
  }
  return order;
}

class Vf2PlusState {
 public:
  Vf2PlusState(const Graph& pattern, const Graph& target,
               const std::vector<VertexId>& order, MatchStats* stats)
      : pattern_(pattern),
        target_(target),
        order_(order),
        stats_(stats),
        core_p_(ThreadArena(), pattern.NumVertices(), kUnmapped),
        core_t_(ThreadArena(), target.NumVertices(), kUnmapped) {}

  bool Search(std::size_t depth) {
    if (depth == order_.size()) return true;
    const VertexId u = order_[depth];
    // Candidates come from the adjacency of the mapped neighbour whose
    // image has the smallest degree (tightest constraint).
    const VertexId anchor_image = SmallestMappedImage(u);
    if (anchor_image != kUnmapped) {
      for (const VertexId v : target_.neighbors(anchor_image)) {
        if (TryPair(u, v, depth)) return true;
      }
    } else {
      for (VertexId v = 0; v < target_.NumVertices(); ++v) {
        if (TryPair(u, v, depth)) return true;
      }
    }
    return false;
  }

  void ExportMapping(std::vector<VertexId>* out) const {
    out->assign(core_p_.data(), core_p_.data() + core_p_.size());
  }

 private:
  bool TryPair(VertexId u, VertexId v, std::size_t depth) {
    if (stats_ != nullptr) ++stats_->nodes_expanded;
    if (!Feasible(u, v)) {
      if (stats_ != nullptr) ++stats_->pruned;
      return false;
    }
    core_p_[u] = v;
    core_t_[v] = u;
    if (Search(depth + 1)) return true;
    core_p_[u] = kUnmapped;
    core_t_[v] = kUnmapped;
    return false;
  }

  VertexId SmallestMappedImage(VertexId u) const {
    VertexId best = kUnmapped;
    std::size_t best_degree = 0;
    for (const VertexId w : pattern_.neighbors(u)) {
      const VertexId img = core_p_[w];
      if (img == kUnmapped) continue;
      const std::size_t d = target_.degree(img);
      if (best == kUnmapped || d < best_degree) {
        best = img;
        best_degree = d;
      }
    }
    return best;
  }

  bool Feasible(VertexId u, VertexId v) const {
    if (core_t_[v] != kUnmapped) return false;
    if (pattern_.label(u) != target_.label(v)) return false;
    if (pattern_.degree(u) > target_.degree(v)) return false;
    // Adjacency consistency plus unmapped-neighbour lookahead. Non-induced
    // safe: unmapped pattern neighbours of u must eventually occupy
    // distinct unmapped target neighbours of v.
    std::size_t unmapped_p = 0;
    for (const VertexId w : pattern_.neighbors(u)) {
      const VertexId mapped = core_p_[w];
      if (mapped == kUnmapped) {
        ++unmapped_p;
      } else if (!target_.HasEdge(v, mapped)) {
        return false;
      }
    }
    std::size_t unmapped_t = 0;
    for (const VertexId w : target_.neighbors(v)) {
      if (core_t_[w] == kUnmapped) ++unmapped_t;
    }
    return unmapped_p <= unmapped_t;
  }

  const Graph& pattern_;
  const Graph& target_;
  const std::vector<VertexId>& order_;
  MatchStats* stats_;
  // Arena-backed (heap fallback when disabled); members release in
  // reverse construction order, honouring the arena's LIFO contract.
  ScratchArray<VertexId> core_p_;
  ScratchArray<VertexId> core_t_;
};

// Search state over a prepared MatchContext: the static order and the
// per-depth connectivity frontier come precomputed, candidate generation
// is label-filtered through the CSR label runs, and per-vertex signature
// dominance prunes pairs before the adjacency walk.
class Vf2PlusPreparedState {
 public:
  Vf2PlusPreparedState(const MatchContext& ctx, const Graph& target,
                       MatchStats* stats)
      : ctx_(ctx),
        pattern_(*ctx.pattern),
        target_(target),
        stats_(stats),
        core_p_(ThreadArena(), pattern_.NumVertices(), kUnmapped),
        core_t_(ThreadArena(), target.NumVertices(), kUnmapped) {}

  bool Search(std::size_t depth) {
    if (depth == ctx_.order.size()) return true;
    const VertexId u = ctx_.order[depth];
    const VertexId anchor_image = SmallestFrontierImage(depth);
    if (anchor_image != kUnmapped) {
      // Only target neighbours carrying u's label can be feasible; the
      // label-sorted CSR run enumerates exactly those, in ascending id
      // order (the same relative order the unfiltered scan would try
      // feasible candidates in). Batch signature prescreen over the
      // neighbour run, mirroring the unanchored branch below: the SIMD
      // screen drops exactly the pairs Feasible would reject on
      // signature dominance, survivors are tried in the same order, and
      // each drop is charged one expansion + one prune exactly when the
      // unscreened loop would have reached it — MatchStats stay
      // bit-identical, early exit included.
      const NeighborRange cands =
          target_.NeighborsWithLabel(anchor_image, pattern_.label(u));
      const std::size_t m = cands.size();
      Arena* const arena = ThreadArena();
      ScratchArray<std::uint64_t> sigs(arena, m);
      for (std::size_t i = 0; i < m; ++i) {
        sigs[i] = target_.vertex_signature(cands[i]);
      }
      ScratchArray<std::uint32_t> survivors(arena, m);
      const std::size_t kept = simd::SignatureDominanceScreen(
          pattern_.vertex_signature(u), sigs.data(), m, survivors.data());
      std::size_t next_survivor = 0;
      for (std::size_t i = 0; i < m; ++i) {
        if (next_survivor < kept && survivors[next_survivor] == i) {
          ++next_survivor;
          if (TryPair(u, cands[i], depth)) return true;
        } else if (stats_ != nullptr) {
          ++stats_->nodes_expanded;
          ++stats_->pruned;
        }
      }
    } else {
      // Unanchored (depth 0, or a new connected component): only target
      // vertices carrying u's label are feasible — the label→vertices
      // index enumerates exactly those, ascending by id (the same
      // relative order the full scan would try feasible candidates in).
      // Batch signature prescreen over the whole label run: Feasible
      // applies the same SignatureDominates test per pair, so the SIMD
      // screen drops exactly the pairs Feasible would reject — survivors
      // are tried in the same order, and each dropped pair is charged one
      // expansion + one prune exactly when the unscreened loop would have
      // reached it (so MatchStats stay bit-identical, early exit
      // included).
      const NeighborRange cands =
          target_.VerticesWithLabel(pattern_.label(u));
      const std::size_t m = cands.size();
      Arena* const arena = ThreadArena();
      ScratchArray<std::uint64_t> sigs(arena, m);
      for (std::size_t i = 0; i < m; ++i) {
        sigs[i] = target_.vertex_signature(cands[i]);
      }
      ScratchArray<std::uint32_t> survivors(arena, m);
      const std::size_t kept = simd::SignatureDominanceScreen(
          pattern_.vertex_signature(u), sigs.data(), m, survivors.data());
      std::size_t next_survivor = 0;
      for (std::size_t i = 0; i < m; ++i) {
        if (next_survivor < kept && survivors[next_survivor] == i) {
          ++next_survivor;
          if (TryPair(u, cands[i], depth)) return true;
        } else if (stats_ != nullptr) {
          ++stats_->nodes_expanded;
          ++stats_->pruned;
        }
      }
    }
    return false;
  }

  void ExportMapping(std::vector<VertexId>* out) const {
    out->assign(core_p_.data(), core_p_.data() + core_p_.size());
  }

 private:
  bool TryPair(VertexId u, VertexId v, std::size_t depth) {
    if (stats_ != nullptr) ++stats_->nodes_expanded;
    if (!Feasible(u, v)) {
      if (stats_ != nullptr) ++stats_->pruned;
      return false;
    }
    core_p_[u] = v;
    core_t_[v] = u;
    if (Search(depth + 1)) return true;
    core_p_[u] = kUnmapped;
    core_t_[v] = kUnmapped;
    return false;
  }

  // Image (in the target) of the frontier vertex whose image has the
  // smallest degree — the tightest anchor. All frontier vertices of this
  // depth are placed by construction.
  VertexId SmallestFrontierImage(std::size_t depth) const {
    VertexId best = kUnmapped;
    std::size_t best_degree = 0;
    for (std::uint32_t i = ctx_.frontier_offsets[depth];
         i < ctx_.frontier_offsets[depth + 1]; ++i) {
      const VertexId img = core_p_[ctx_.frontier[i]];
      const std::size_t d = target_.degree(img);
      if (best == kUnmapped || d < best_degree) {
        best = img;
        best_degree = d;
      }
    }
    return best;
  }

  bool Feasible(VertexId u, VertexId v) const {
    if (core_t_[v] != kUnmapped) return false;
    if (pattern_.label(u) != target_.label(v)) return false;
    if (pattern_.degree(u) > target_.degree(v)) return false;
    // Neighbourhood label-signature dominance: u's neighbour-label
    // histogram must fit inside v's (sound — the mapping is injective and
    // label-preserving on N(u)).
    if (!SignatureDominates(pattern_.vertex_signature(u),
                            target_.vertex_signature(v))) {
      return false;
    }
    // Adjacency consistency plus unmapped-neighbour lookahead, as in the
    // per-pair path.
    std::size_t unmapped_p = 0;
    for (const VertexId w : pattern_.neighbors(u)) {
      const VertexId mapped = core_p_[w];
      if (mapped == kUnmapped) {
        ++unmapped_p;
      } else if (!target_.HasEdge(v, mapped)) {
        return false;
      }
    }
    std::size_t unmapped_t = 0;
    for (const VertexId w : target_.neighbors(v)) {
      if (core_t_[w] == kUnmapped) ++unmapped_t;
    }
    return unmapped_p <= unmapped_t;
  }

  const MatchContext& ctx_;
  const Graph& pattern_;
  const Graph& target_;
  MatchStats* stats_;
  // Arena-backed (heap fallback when disabled); members release in
  // reverse construction order, honouring the arena's LIFO contract.
  ScratchArray<VertexId> core_p_;
  ScratchArray<VertexId> core_t_;
};

// Prepared wrapper owning the reusable context.
class Vf2PlusPrepared : public PreparedPattern {
 public:
  Vf2PlusPrepared(const Graph& pattern, const LabelHistogram* target_stats)
      : PreparedPattern(pattern),
        ctx_(MatchContext::Build(pattern, target_stats)) {}

  const MatchContext& ctx() const { return ctx_; }

 private:
  MatchContext ctx_;
};

}  // namespace

std::unique_ptr<PreparedPattern> Vf2PlusMatcher::Prepare(
    const Graph& pattern, const LabelHistogram* target_stats) const {
  return std::make_unique<Vf2PlusPrepared>(pattern, target_stats);
}

bool Vf2PlusMatcher::FindEmbeddingPrepared(const PreparedPattern& prepared,
                                           const Graph& target,
                                           std::vector<VertexId>* embedding,
                                           MatchStats* stats) const {
  const auto& p = static_cast<const Vf2PlusPrepared&>(prepared);
  const MatchContext& ctx = p.ctx();
  if (ctx.pattern->NumVertices() == 0) {
    if (embedding != nullptr) embedding->clear();
    return true;
  }
  if (ctx.CheapReject(target)) return false;
  Vf2PlusPreparedState state(ctx, target, stats);
  if (!state.Search(0)) return false;
  if (embedding != nullptr) state.ExportMapping(embedding);
  return true;
}

bool Vf2PlusMatcher::FindEmbedding(const Graph& pattern, const Graph& target,
                                   std::vector<VertexId>* embedding,
                                   MatchStats* stats) const {
  if (pattern.NumVertices() == 0) {
    if (embedding != nullptr) embedding->clear();
    return true;
  }
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return false;
  }
  // Quick label-multiset screen on the graphs' precomputed histograms
  // (maintained incrementally by the Graph itself — no per-pair counting
  // pass): the pattern cannot need more vertices of a label than the
  // target has.
  if (!HistogramDominates(pattern.label_histogram(),
                          target.label_histogram())) {
    return false;
  }

  const std::vector<VertexId> order =
      StaticOrder(pattern, target.label_histogram());
  Vf2PlusState state(pattern, target, order, stats);
  if (!state.Search(0)) return false;
  if (embedding != nullptr) state.ExportMapping(embedding);
  return true;
}

}  // namespace gcp
