#include "match/ullmann.hpp"

#include <vector>

namespace gcp {

namespace {

constexpr VertexId kUnmapped = static_cast<VertexId>(-1);

class UllmannState {
 public:
  UllmannState(const Graph& pattern, const Graph& target, MatchStats* stats)
      : pattern_(pattern),
        target_(target),
        stats_(stats),
        np_(pattern.NumVertices()),
        nt_(target.NumVertices()),
        m_(np_, std::vector<char>(nt_, 0)),
        mapping_(np_, kUnmapped),
        used_(nt_, false) {}

  bool Initialize() {
    for (VertexId u = 0; u < np_; ++u) {
      bool any = false;
      for (VertexId v = 0; v < nt_; ++v) {
        if (pattern_.label(u) == target_.label(v) &&
            pattern_.degree(u) <= target_.degree(v)) {
          m_[u][v] = 1;
          any = true;
        }
      }
      if (!any) return false;
    }
    return Refine();
  }

  // Ullmann refinement to a fixpoint: candidate (u, v) survives only if
  // every pattern neighbour of u has some candidate among target
  // neighbours of v.
  bool Refine() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId u = 0; u < np_; ++u) {
        bool any = false;
        for (VertexId v = 0; v < nt_; ++v) {
          if (m_[u][v] == 0) continue;
          bool ok = true;
          for (const VertexId w : pattern_.neighbors(u)) {
            bool neighbor_ok = false;
            for (const VertexId x : target_.neighbors(v)) {
              if (m_[w][x] != 0) {
                neighbor_ok = true;
                break;
              }
            }
            if (!neighbor_ok) {
              ok = false;
              break;
            }
          }
          if (!ok) {
            m_[u][v] = 0;
            changed = true;
          } else {
            any = true;
          }
        }
        if (!any) return false;
      }
    }
    return true;
  }

  bool Search(VertexId u) {
    if (u == np_) return true;
    for (VertexId v = 0; v < nt_; ++v) {
      if (m_[u][v] == 0 || used_[v]) continue;
      if (stats_ != nullptr) ++stats_->nodes_expanded;
      bool consistent = true;
      for (const VertexId w : pattern_.neighbors(u)) {
        if (w < u && !target_.HasEdge(v, mapping_[w])) {
          consistent = false;
          break;
        }
      }
      if (!consistent) {
        if (stats_ != nullptr) ++stats_->pruned;
        continue;
      }
      mapping_[u] = v;
      used_[v] = true;
      if (Search(u + 1)) return true;
      mapping_[u] = kUnmapped;
      used_[v] = false;
    }
    return false;
  }

  const std::vector<VertexId>& mapping() const { return mapping_; }

 private:
  const Graph& pattern_;
  const Graph& target_;
  MatchStats* stats_;
  VertexId np_;
  VertexId nt_;
  std::vector<std::vector<char>> m_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
};

}  // namespace

bool UllmannMatcher::FindEmbedding(const Graph& pattern, const Graph& target,
                                   std::vector<VertexId>* embedding,
                                   MatchStats* stats) const {
  if (pattern.NumVertices() == 0) {
    if (embedding != nullptr) embedding->clear();
    return true;
  }
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return false;
  }
  UllmannState state(pattern, target, stats);
  if (!state.Initialize()) return false;
  if (!state.Search(0)) return false;
  if (embedding != nullptr) *embedding = state.mapping();
  return true;
}

}  // namespace gcp
