#include "cache/cache_validator.hpp"

namespace gcp {

void CacheValidator::ExtendEntry(CachedQuery& entry, std::size_t id_horizon) {
  // Algorithm 2, lines 4-6: extend the indicator for newly added dataset
  // graphs; the relation towards them is unknown, hence invalid (false).
  if (id_horizon > entry.valid.size()) {
    entry.valid.Resize(id_horizon, false);
  }
  if (id_horizon > entry.answer.size()) {
    entry.answer.Resize(id_horizon, false);
  }
}

void CacheValidator::ApplyCounters(CachedQuery& entry,
                                   const ChangeCounters& counters,
                                   const DeltaRevalidateFn* delta,
                                   StatisticsManager* stats) {
  // Lines 7-19: apply the counters to the touched graphs only.
  //
  // The polarity of the UA/UR optimisations depends on the entry's query
  // kind. Algorithm 2 as printed covers subgraph queries (answer bit i
  // means query ⊆ G_i): edge additions cannot break a containment, edge
  // removals cannot create one. For supergraph-query entries (answer bit i
  // means G_i ⊆ query) the rules invert: adding an edge to G_i can break
  // G_i ⊆ query but cannot create it, and removing one can create it but
  // cannot break it. (The paper omits the supergraph mechanism "for space
  // reason" — this is the exact inverse it refers to.)
  const bool super_entry = entry.kind == CachedQueryKind::kSupergraph;
  for (const auto& [graph_id, total_ops] : counters.total) {
    (void)total_ops;
    if (graph_id >= entry.valid.size()) continue;  // beyond horizon: ignore
    const bool was_valid = entry.valid.Test(graph_id);
    if (!was_valid) continue;  // already invalid; nothing can revive it
    const bool in_answer = entry.answer.Test(graph_id);
    // The polarity a UA-exclusive batch preserves (UR preserves the other).
    const bool ua_safe_polarity = super_entry ? !in_answer : in_answer;
    if (counters.IsUaExclusive(graph_id) && ua_safe_polarity) {
      continue;  // line 12-13 (resp. its supergraph inverse)
    }
    if (counters.IsUrExclusive(graph_id) && !ua_safe_polarity) {
      continue;  // line 14-15 (resp. its supergraph inverse)
    }
    if (delta != nullptr && stats != nullptr &&
        (*delta)(entry, graph_id, *stats)) {
      continue;  // delta re-validation kept or rewrote the bit
    }
    entry.valid.Set(graph_id, false);  // line 17
  }
}

void CacheValidator::RefreshEntry(CachedQuery& entry,
                                  const ChangeCounters& counters,
                                  std::size_t id_horizon,
                                  const DeltaRevalidateFn* delta,
                                  StatisticsManager* stats) {
  ExtendEntry(entry, id_horizon);
  ApplyCounters(entry, counters, delta, stats);
}

}  // namespace gcp
