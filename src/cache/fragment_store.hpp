// Fragment store — per-shard cache of one-hop sub-pattern results.
//
// Each resident fragment is a full CachedQuery (kind kSubgraph, query =
// the canonical star from match/fragments, answer = dataset graphs known
// to contain the star, valid = Algorithm 2's indicator), so consistency
// reuses the Cache Validator verbatim: CON reconciles fragments with
// RefreshEntry, EVI purges them, and the store keeps its own
// change-relevance index so relevance-screened drains extend to fragments.
// Unlike whole-query entries, fragments never produce answers directly —
// their valid-negative sets (valid ∧ ¬answer) only *shrink* Method M
// candidate sets, so a stale or missing fragment is a lost pruning
// opportunity, never a wrong answer.
//
// Identity is the star's WL digest with a canonical-graph equality check
// behind the lookup: a digest owned by a *different* star rejects the
// offer (fragment_digest_collisions) instead of aliasing two fragments.
// Offers for an already-resident star merge: valid bits union in and the
// offer's answer knowledge overwrites the covered range — both sides are
// forward-validated to the same watermark before merging, so they agree
// wherever both are valid.
//
// Thread model matches CacheManager: the owner (one CacheManager per
// shard) guarantees const members run under the shard's shared lock and
// mutating members under its exclusive lock.

#ifndef GCP_CACHE_FRAGMENT_STORE_HPP_
#define GCP_CACHE_FRAGMENT_STORE_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cache/cache_entry.hpp"
#include "cache/relevance_index.hpp"
#include "cache/statistics.hpp"
#include "common/pressure.hpp"
#include "common/status.hpp"
#include "dataset/log_analyzer.hpp"

namespace gcp {

/// \brief Digest-keyed store of fragment entries with LRU bounding.
class FragmentStore {
 public:
  /// `byte_budget` is this store's slice of the engine byte budget (0 =
  /// off); `pressure` optionally mirrors the byte gauge into the shared
  /// pressure monitor (not owned).
  explicit FragmentStore(std::size_t capacity, bool maintain_relevance_index,
                         std::uint64_t byte_budget = 0,
                         PressureMonitor* pressure = nullptr)
      : capacity_(capacity),
        maintain_relevance_index_(maintain_relevance_index),
        byte_budget_(byte_budget),
        pressure_(pressure) {}

  /// Resident entry for `digest` whose canonical star equals `star`;
  /// nullptr on miss or digest collision. Does not touch recency — reads
  /// run under the shared lock; recency advances via Credit at drain time.
  const CachedQuery* Probe(std::uint64_t digest, const Graph& star) const;

  /// Admits a freshly computed fragment entry, or merges it into the
  /// resident twin. The entry must be forward-validated to the store's
  /// watermark by the caller (the same discipline as admission offers).
  /// Evicts least-recently-used entries beyond capacity, then entries
  /// beyond the byte slice (worst utility-per-byte first). Returns
  /// ResourceExhausted when the allocation-fault injector refused a fresh
  /// admission (a merge never allocates entry storage and cannot fail).
  Status AdmitOrMerge(std::unique_ptr<CachedQuery> entry, std::uint64_t now,
                      StatisticsManager& stats);

  /// Drain-time hit credit: `pruned` Method M candidates were removed by
  /// the fragment with `digest`. Bumps recency + benefit so restores can
  /// keep the most useful fragments first. No-op when evicted in between.
  void Credit(std::uint64_t digest, std::uint64_t pruned, std::uint64_t now,
              StatisticsManager& stats);

  /// Drops every fragment (EVI purge / restore preamble).
  void Clear();

  /// CON reconciliation, brute force: Algorithm 2 over every fragment.
  void ValidateAll(const ChangeCounters& counters, std::size_t id_horizon,
                   StatisticsManager& stats);

  /// CON reconciliation through this store's own relevance index —
  /// bit-exact vs ValidateAll for the same reason the entry path is: the
  /// screen only skips fragments no counter can mutate. Falls back to
  /// ValidateAll when the index is off.
  void ValidateRelevant(const ChangeCounters& counters, std::size_t id_horizon,
                        StatisticsManager& stats);

  /// EVI reconcile purge: every fragment counts as touched, then Clear().
  void PurgeForReconcile(StatisticsManager& stats);

  /// Copies of every resident fragment (ascending digest — deterministic
  /// snapshot payload; copies alias the shared star graphs).
  std::vector<CachedQuery> Export() const;

  /// Replaces the contents with `entries` (best tests_saved first when
  /// over capacity; digests and features are recomputed from the restored
  /// graphs, so a tampered payload cannot plant a mismatched key).
  void Restore(std::vector<CachedQuery> entries, StatisticsManager& stats);

  /// Graphs + bitsets + relevance postings of everything resident — the
  /// fragment_bytes category of ApproxByteFootprint.
  std::uint64_t ApproxBytes() const;

  std::size_t size() const { return by_digest_.size(); }

  /// Incrementally maintained graph+bitset bytes of resident fragments
  /// (asserted against a recompute in ApproxBytes).
  std::uint64_t approx_entry_bytes() const { return entry_bytes_; }

  /// This store's slice of the byte budget (0 = off).
  std::uint64_t byte_budget() const { return byte_budget_; }

  /// Calls `fn(const CachedQuery&)` for every fragment, ascending digest.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [digest, e] : by_digest_) fn(*e);
  }

 private:
  /// Evicts ascending (last_used_at, digest) until size() <= capacity_,
  /// then — when the byte slice is on and exceeded — worst
  /// tests_saved-per-byte first until the slice fits.
  void EvictOverCapacity(StatisticsManager& stats);

  /// Byte-gauge maintenance (see CacheManager's accounting helpers).
  void AccountAdmit(CachedQuery& e);
  void AccountEvict(const CachedQuery& e);
  void AccountRefresh(CachedQuery& e);

  CachedQuery* FindMutable(std::uint64_t digest);

  std::size_t capacity_;
  bool maintain_relevance_index_;
  std::uint64_t byte_budget_ = 0;
  PressureMonitor* pressure_ = nullptr;
  /// Running graph+bitset bytes of resident fragments.
  std::uint64_t entry_bytes_ = 0;
  /// digest → entry; ordered so iteration (export, eviction scans) is
  /// deterministic across runs and shard counts.
  std::map<std::uint64_t, std::unique_ptr<CachedQuery>> by_digest_;
  /// Own relevance index + id space, disjoint from the entry store's.
  RelevanceIndex relevance_;
  CacheEntryId next_id_ = 1;
};

}  // namespace gcp

#endif  // GCP_CACHE_FRAGMENT_STORE_HPP_
