// Cache Validator — Algorithm 2 of the paper.
//
// Refreshes the dataset-graph-validity indicator (CGvalid) of cached
// queries against the operation counters produced by the Log Analyzer
// (Algorithm 1). Per touched dataset graph G_i:
//   * UA-exclusive changes (only edge additions) preserve a valid positive
//     result g ⊆ G_i — adding edges cannot destroy a containment;
//   * UR-exclusive changes (only edge removals) preserve a valid negative
//     result g ⊄ G_i — removing edges cannot create a containment;
//   * everything else (ADD, DEL, mixed UA+UR, or a change conflicting
//     with the cached polarity) turns the validity bit off.
// Newly added dataset graphs appear as indicator extension with bits
// defaulting to false (relation unknown).

#ifndef GCP_CACHE_CACHE_VALIDATOR_HPP_
#define GCP_CACHE_CACHE_VALIDATOR_HPP_

#include <cstddef>

#include "cache/cache_entry.hpp"
#include "dataset/log_analyzer.hpp"

namespace gcp {

/// \brief Applies Algorithm 2 to cached queries.
class CacheValidator {
 public:
  /// Refreshes one entry's CGvalid given the counters and the current id
  /// horizon (m + 1 of Algorithm 2). Also aligns the answer snapshot's
  /// size so downstream bitset algebra operates on equal widths.
  static void RefreshEntry(CachedQuery& entry, const ChangeCounters& counters,
                           std::size_t id_horizon);
};

}  // namespace gcp

#endif  // GCP_CACHE_CACHE_VALIDATOR_HPP_
