// Cache Validator — Algorithm 2 of the paper.
//
// Refreshes the dataset-graph-validity indicator (CGvalid) of cached
// queries against the operation counters produced by the Log Analyzer
// (Algorithm 1). Per touched dataset graph G_i:
//   * UA-exclusive changes (only edge additions) preserve a valid positive
//     result g ⊆ G_i — adding edges cannot destroy a containment;
//   * UR-exclusive changes (only edge removals) preserve a valid negative
//     result g ⊄ G_i — removing edges cannot create a containment;
//   * everything else (ADD, DEL, mixed UA+UR, or a change conflicting
//     with the cached polarity) turns the validity bit off.
// Newly added dataset graphs appear as indicator extension with bits
// defaulting to false (relation unknown).
//
// The algorithm splits into ExtendEntry (indicator extension, lines 4-6)
// and ApplyCounters (the per-touched-graph loop, lines 7-19) so the
// change-relevance index can extend every resident indicator while
// running the counter loop only over entries the batch can affect.

#ifndef GCP_CACHE_CACHE_VALIDATOR_HPP_
#define GCP_CACHE_CACHE_VALIDATOR_HPP_

#include <cstddef>
#include <functional>

#include "cache/cache_entry.hpp"
#include "cache/statistics.hpp"
#include "dataset/log_analyzer.hpp"

namespace gcp {

/// \brief Applies Algorithm 2 to cached queries.
class CacheValidator {
 public:
  /// Delta re-validation hook, consulted for every (entry, graph) pair
  /// Algorithm 2 is about to invalidate. Returns true when it handled
  /// the pair — kept the bit via a change-delta proof, or rewrote
  /// answer/valid from a fresh containment check; false falls through to
  /// the plain clear (line 17). `stats` is the owning store's counter
  /// sink for delta_revalidations / delta_fallback_full_checks.
  using DeltaRevalidateFn =
      std::function<bool(CachedQuery& entry, GraphId graph_id,
                         StatisticsManager& stats)>;

  /// Refreshes one entry's CGvalid given the counters and the current id
  /// horizon (m + 1 of Algorithm 2). Also aligns the answer snapshot's
  /// size so downstream bitset algebra operates on equal widths.
  static void RefreshEntry(CachedQuery& entry, const ChangeCounters& counters,
                           std::size_t id_horizon,
                           const DeltaRevalidateFn* delta = nullptr,
                           StatisticsManager* stats = nullptr);

  /// Lines 4-6 alone: extends the indicator/answer to `id_horizon` with
  /// false bits. Never flips an existing bit.
  static void ExtendEntry(CachedQuery& entry, std::size_t id_horizon);

  /// Lines 7-19 alone: applies the counters to the touched graphs.
  static void ApplyCounters(CachedQuery& entry, const ChangeCounters& counters,
                            const DeltaRevalidateFn* delta = nullptr,
                            StatisticsManager* stats = nullptr);
};

}  // namespace gcp

#endif  // GCP_CACHE_CACHE_VALIDATOR_HPP_
