// Cache replacement policies (paper §7.1).
//
// GC+ inherits GraphCache's policy suite. The paper's experiments use the
// hybrid HD policy, which coalesces the two GC/GC+ exclusive policies:
//   * PIN  — rank by R, the number of sub-iso tests the entry alleviated;
//   * PINC — rank by R × C, folding in an estimated per-test cost C;
// choosing PIN when the R distribution is highly variable (squared
// coefficient of variation > 1) and PINC otherwise. LRU / LFU / RANDOM are
// conventional baselines.

#ifndef GCP_CACHE_REPLACEMENT_HPP_
#define GCP_CACHE_REPLACEMENT_HPP_

#include <string_view>
#include <vector>

#include "cache/cache_entry.hpp"
#include "common/rng.hpp"

namespace gcp {

/// Available eviction policies.
enum class ReplacementPolicy {
  kLru,     ///< Evict least-recently-useful.
  kLfu,     ///< Evict least-frequently-hit.
  kRandom,  ///< Evict uniformly at random.
  kPin,     ///< Evict smallest R.
  kPinc,    ///< Evict smallest R × C.
  kHybrid,  ///< HD: PIN when CoV²(R) > 1 else PINC (paper's default).
};

std::string_view ReplacementPolicyName(ReplacementPolicy policy);

/// \brief Ranks entries for eviction under a policy.
class ReplacementRanker {
 public:
  explicit ReplacementRanker(ReplacementPolicy policy, Rng* rng)
      : policy_(policy), rng_(rng) {}

  /// Returns the indices of `entries` ordered best-first (keep prefix,
  /// evict suffix). Deterministic apart from kRandom. Ties favour more
  /// recently admitted entries so fresh queries can enter a cache full of
  /// stale zero-benefit entries.
  std::vector<std::size_t> RankBestFirst(
      const std::vector<const CachedQuery*>& entries) const;

  /// Utility-per-byte ranking for the byte-budgeted capacity model: the
  /// policy score divided by the entry's approximate byte footprint
  /// (paper R ÷ footprint under PIN/PINC/HD), best-first. Used only for
  /// evictions the byte budget forces, so `--byte-budget=off` replays the
  /// plain RankBestFirst decisions bit-exactly.
  std::vector<std::size_t> RankBestPerByteFirst(
      const std::vector<const CachedQuery*>& entries) const;

  /// The policy actually applied on the last RankBestFirst call (HD
  /// resolves to PIN or PINC; others return themselves).
  ReplacementPolicy effective_policy() const { return effective_; }

 private:
  double Score(const CachedQuery& e, ReplacementPolicy p) const;
  ReplacementPolicy ResolvePolicy(
      const std::vector<const CachedQuery*>& entries) const;
  std::vector<std::size_t> SortByScore(
      const std::vector<const CachedQuery*>& entries,
      const std::vector<double>& scores) const;

  ReplacementPolicy policy_;
  Rng* rng_;
  mutable ReplacementPolicy effective_ = ReplacementPolicy::kLru;
};

}  // namespace gcp

#endif  // GCP_CACHE_REPLACEMENT_HPP_
