// Crash-safe checkpoint container around the cache snapshot.
//
// A checkpoint file is the versioned text snapshot (cache/snapshot.*)
// wrapped in a corruption-evident envelope:
//
//   GCPCHKPT v2\n                                  -- version header
//   section meta <len> <crc32>\n                   -- per-section framing
//   <len bytes: "watermark W\nhorizon H\nentries N\nfragments F\n">
//   section body <len> <crc32>\n
//   <len bytes: the GCPCACHE v2 snapshot text>
//   footer <entries> <watermark> <horizon> <crc32>\n
//
// v1 envelopes (no fragments meta line, v1 snapshot body) are still
// accepted on read: a v1 checkpoint warm-restarts with its whole-query
// entries intact and the fragment store rebuilding cold.
//
// Every section carries its own length + CRC32, so a torn write, a
// truncation at any byte, or a flipped bit in any region is detected at
// load — never parsed into a silently-wrong cache. The footer repeats the
// meta fields and a whole-prefix CRC: a file without a matching footer is
// by definition incomplete. Files are written tmp → fsync → atomic-rename
// through common/io's AtomicFileWriter, so the final name only ever holds
// a complete image; the envelope defends against everything else
// (bit rot, manual truncation, a torn tmp renamed by some other actor).
//
// A checkpoint DIRECTORY holds numbered siblings, checkpoint-<seq>.gcpchk,
// newest = highest seq. Recovery walks newest → oldest and degrades:
// first valid sibling wins (last-good), none valid ⇒ cold start.

#ifndef GCP_CACHE_CHECKPOINT_HPP_
#define GCP_CACHE_CHECKPOINT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/snapshot.hpp"
#include "common/io.hpp"
#include "common/status.hpp"

namespace gcp {

/// File name of checkpoint sequence `seq` ("checkpoint-000042.gcpchk").
std::string CheckpointFileName(std::uint64_t seq);

/// Parses a checkpoint file name back to its sequence; NotFound for
/// non-checkpoint names (tmp files, foreign files).
Result<std::uint64_t> ParseCheckpointSeq(const std::string& name);

/// Serializes `snapshot` into the envelope format (in memory). `version`
/// selects the format (1 or 2) so tests can author authentic v1 bytes;
/// a v1 encode drops the fragment payload.
std::string EncodeCheckpoint(const CacheSnapshot& snapshot,
                             int version = kCacheSnapshotVersion);

/// Validates the envelope (header, section CRCs, footer) and parses the
/// embedded snapshot (v1 or v2). Corruption pinpoints the failing
/// section.
Result<CacheSnapshot> DecodeCheckpoint(const std::string& bytes);

/// Writes `snapshot` to `path` crash-safely (tmp → fsync → rename), every
/// file operation consulting `fault` (nullable). `bytes_out` (nullable)
/// receives the file size on success.
Status WriteCheckpointFile(const std::string& path,
                           const CacheSnapshot& snapshot,
                           FaultInjector* fault = nullptr,
                           std::uint64_t* bytes_out = nullptr);

/// Reads and validates one checkpoint file.
Result<CacheSnapshot> ReadCheckpointFile(const std::string& path);

/// Checkpoint sequences present in `dir`, descending (newest first).
/// Non-checkpoint files are ignored. Empty when the directory is missing.
std::vector<std::uint64_t> ListCheckpointSeqs(const std::string& dir);

/// Deletes all but the newest `keep` checkpoints (and any stale tmp file
/// belonging to a deleted sibling). Best-effort: returns the first error
/// but keeps going.
Status PruneCheckpoints(const std::string& dir, std::size_t keep);

}  // namespace gcp

#endif  // GCP_CACHE_CHECKPOINT_HPP_
