// ShardedCache — N digest-sharded CacheManager stores behind per-shard
// reader/writer locks.
//
// PR 2/3 serialized every maintenance drain under the engine's single
// shared_mutex: one admission batch stalled every reader. The paper's
// window/cache split does not require that coupling — reconciliation only
// touches the entries affected by a change — so the stores are partitioned
// by WL-digest: an entry lives in shard digest % N for its whole lifetime,
// together with its slice of the QueryIndex inverted postings, the
// statistics counters and the replacement state. Each shard carries its
// own std::shared_mutex, so a maintenance drain on shard k (shard-k
// exclusive) never blocks hit discovery on shard j (shard-j shared).
//
// Lock order: the engine lock (dataset/watermark) is always acquired
// before any shard lock, and shard locks are acquired in ascending index
// order. Stop-the-world operations (dataset mutation, EVI purge, CON
// ValidateAll, snapshot restore) hold the engine lock exclusively and take
// every shard lock through LockAllExclusive.
//
// The "a drain never touches a foreign shard" invariant is enforced, not
// just documented: DrainScope marks the current thread as draining shard
// k, and every subsequent Lock*(j != k) on that thread bumps an atomic
// violation counter the stress tests assert to be zero.
//
// With num_shards == 1 the router degenerates to exactly the PR 2/3
// engine: one store, one lock, identical admission order and replacement
// decisions — the bit-exact legacy comparison path.

#ifndef GCP_CACHE_SHARDED_CACHE_HPP_
#define GCP_CACHE_SHARDED_CACHE_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "cache/cache_manager.hpp"

namespace gcp {

/// \brief Digest-sharded collection of CacheManager stores.
class ShardedCache {
 public:
  /// Splits `total` capacities across `num_shards` stores (ceil division,
  /// at least 1 each, so total capacity is preserved up to rounding). A
  /// zero shard count is clamped to 1.
  ShardedCache(std::size_t num_shards, const CacheManagerOptions& total);

  /// The per-shard options derived from engine-total options: entry,
  /// window, fragment capacities and the byte budget are all ceil-split so
  /// per-shard sums stay within total + (num_shards - 1). Exposed for the
  /// split-invariant unit tests.
  static CacheManagerOptions SplitOptions(const CacheManagerOptions& total,
                                          std::size_t num_shards);

  std::size_t num_shards() const { return shards_.size(); }

  /// Home shard of an entry: fixed by the query's WL digest at admission,
  /// recomputable from any CachedQuery ever after.
  std::size_t ShardOfDigest(std::uint64_t digest) const {
    return shards_.size() == 1
               ? 0
               : static_cast<std::size_t>(digest % shards_.size());
  }

  CacheManager& shard(std::size_t s) { return shards_[s]->store; }
  const CacheManager& shard(std::size_t s) const { return shards_[s]->store; }

  // --- Locking ------------------------------------------------------------
  // All store access goes through these helpers so cross-shard
  // acquisitions inside a DrainScope are detected.

  std::shared_lock<std::shared_mutex> LockShared(std::size_t s) const;
  std::unique_lock<std::shared_mutex> LockExclusive(std::size_t s) const;
  /// Non-blocking exclusive acquisition (owns_lock() == false on failure).
  std::unique_lock<std::shared_mutex> TryLockExclusive(std::size_t s) const;
  /// Every shard lock, shared, in ascending index order (read phase).
  std::vector<std::shared_lock<std::shared_mutex>> LockAllShared() const;
  /// Every shard lock, exclusive, in ascending index order (stop-the-world
  /// barrier: dataset changes, EVI purge, ValidateAll, restore).
  std::vector<std::unique_lock<std::shared_mutex>> LockAllExclusive() const;

  /// RAII marker: the current thread is draining shard `s`. While one is
  /// alive, locking any other shard from the same thread counts as a
  /// violation. Not reentrant (one live scope per thread).
  class DrainScope {
   public:
    explicit DrainScope(std::size_t s);
    ~DrainScope();
    DrainScope(const DrainScope&) = delete;
    DrainScope& operator=(const DrainScope&) = delete;
  };

  /// Number of foreign-shard lock acquisitions observed inside drain
  /// scopes since construction — asserted zero by the stress tests.
  std::uint64_t lock_violations() const {
    return violations_.load(std::memory_order_relaxed);
  }

  // --- Cross-shard aggregation --------------------------------------------
  // Callers hold the appropriate locks (shard locks, or the engine lock
  // exclusively, which excludes every shard writer).

  std::size_t resident() const;
  std::size_t cache_size() const;
  std::size_t window_size() const;

  /// Sums every shard's StatisticsManager counters into one snapshot.
  StatisticsManager AggregateStats() const;

  /// EVI purge across every shard.
  void Clear();

  /// CON validation (Algorithm 2) across every shard.
  void ValidateAll(const ChangeCounters& counters, std::size_t id_horizon);

  /// Calls `fn(const CachedQuery&)` for every resident entry, shard 0
  /// first.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& s : shards_) s->store.ForEachEntry(fn);
  }

  /// Copies every resident entry (shard 0 first) — snapshot payload.
  /// Copies alias the shared query graphs (no graph deep copies).
  std::vector<CachedQuery> ExportEntries() const;

  /// Replaces the resident contents with `entries`, each routed to its
  /// digest's home shard (per-shard capacity truncation applies).
  void RestoreEntries(std::vector<CachedQuery> entries);

  /// Copies every resident fragment (shard 0 first) — the fragment
  /// payload of a v2 snapshot.
  std::vector<CachedQuery> ExportFragments() const;

  /// Routes `fragments` to their digests' home shards. Must run after
  /// RestoreEntries: each shard's RestoreEntries clears its fragment
  /// store as part of the wipe.
  void RestoreFragments(std::vector<CachedQuery> fragments);

 private:
  struct Shard {
    explicit Shard(const CacheManagerOptions& options) : store(options) {}
    CacheManager store;
    mutable std::shared_mutex mu;
  };

  /// Records a lock acquisition on shard `s` for violation tracking.
  void NoteLock(std::size_t s) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::uint64_t> violations_{0};
};

}  // namespace gcp

#endif  // GCP_CACHE_SHARDED_CACHE_HPP_
