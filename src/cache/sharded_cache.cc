#include "cache/sharded_cache.hpp"

namespace gcp {

namespace {

/// Thread-local shard being drained by this thread; -1 = none.
thread_local int tls_drain_shard = -1;

}  // namespace

CacheManagerOptions ShardedCache::SplitOptions(const CacheManagerOptions& total,
                                               std::size_t num_shards) {
  CacheManagerOptions per = total;
  per.cache_capacity =
      std::max<std::size_t>(1, (total.cache_capacity + num_shards - 1) /
                                   num_shards);
  per.window_capacity =
      std::max<std::size_t>(1, (total.window_capacity + num_shards - 1) /
                                   num_shards);
  if (total.fragment_capacity != 0) {
    per.fragment_capacity =
        std::max<std::size_t>(1, (total.fragment_capacity + num_shards - 1) /
                                     num_shards);
  }
  if (total.byte_budget != 0) {
    // Ceil split mirrors the capacity split: the per-shard budgets sum to
    // at most total + (num_shards - 1) bytes and never starve a shard.
    per.byte_budget = (total.byte_budget + num_shards - 1) / num_shards;
  }
  return per;
}

ShardedCache::ShardedCache(std::size_t num_shards,
                           const CacheManagerOptions& total) {
  const std::size_t n = std::max<std::size_t>(1, num_shards);
  const CacheManagerOptions per = SplitOptions(total, n);
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    // Distinct RNG streams keep the RANDOM policy from making identical
    // eviction picks in every shard.
    CacheManagerOptions opts = per;
    opts.rng_seed = total.rng_seed + s;
    shards_.push_back(std::make_unique<Shard>(opts));
  }
}

void ShardedCache::NoteLock(std::size_t s) const {
  const int draining = tls_drain_shard;
  if (draining >= 0 && static_cast<std::size_t>(draining) != s) {
    violations_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_lock<std::shared_mutex> ShardedCache::LockShared(
    std::size_t s) const {
  NoteLock(s);
  return std::shared_lock<std::shared_mutex>(shards_[s]->mu);
}

std::unique_lock<std::shared_mutex> ShardedCache::LockExclusive(
    std::size_t s) const {
  NoteLock(s);
  return std::unique_lock<std::shared_mutex>(shards_[s]->mu);
}

std::unique_lock<std::shared_mutex> ShardedCache::TryLockExclusive(
    std::size_t s) const {
  NoteLock(s);
  return std::unique_lock<std::shared_mutex>(shards_[s]->mu,
                                             std::try_to_lock);
}

std::vector<std::shared_lock<std::shared_mutex>> ShardedCache::LockAllShared()
    const {
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    locks.push_back(LockShared(s));
  }
  return locks;
}

std::vector<std::unique_lock<std::shared_mutex>>
ShardedCache::LockAllExclusive() const {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    locks.push_back(LockExclusive(s));
  }
  return locks;
}

ShardedCache::DrainScope::DrainScope(std::size_t s) {
  tls_drain_shard = static_cast<int>(s);
}

ShardedCache::DrainScope::~DrainScope() { tls_drain_shard = -1; }

std::size_t ShardedCache::resident() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->store.resident();
  return n;
}

std::size_t ShardedCache::cache_size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->store.cache_size();
  return n;
}

std::size_t ShardedCache::window_size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->store.window_size();
  return n;
}

StatisticsManager ShardedCache::AggregateStats() const {
  StatisticsManager sum;
  for (const auto& s : shards_) {
    const StatisticsManager& st = s->store.stats();
    sum.total_exact_hits += st.total_exact_hits;
    sum.total_exact_hits_zero_test += st.total_exact_hits_zero_test;
    sum.total_sub_hits += st.total_sub_hits;
    sum.total_super_hits += st.total_super_hits;
    sum.total_empty_shortcuts += st.total_empty_shortcuts;
    sum.total_tests_saved += st.total_tests_saved;
    sum.total_admissions += st.total_admissions;
    sum.total_admission_dedups += st.total_admission_dedups;
    sum.total_evictions += st.total_evictions;
    sum.total_cache_clears += st.total_cache_clears;
    sum.total_retro_refreshes += st.total_retro_refreshes;
    sum.snapshots_published += st.snapshots_published;
    sum.epochs_retired += st.epochs_retired;
    sum.read_phase_engine_lock_acquisitions +=
        st.read_phase_engine_lock_acquisitions;
    sum.snapshot_summary_copies += st.snapshot_summary_copies;
    sum.shard_lock_graph_copies += st.shard_lock_graph_copies;
    sum.checkpoints_written += st.checkpoints_written;
    sum.checkpoints_failed += st.checkpoints_failed;
    sum.checkpoints_retried += st.checkpoints_retried;
    sum.checkpoint_bytes += st.checkpoint_bytes;
    sum.t_checkpoint_ns += st.t_checkpoint_ns;
    sum.warm_restarts += st.warm_restarts;
    sum.warm_restart_rejected += st.warm_restart_rejected;
    sum.restored_entries += st.restored_entries;
    sum.reconcile_entries_touched += st.reconcile_entries_touched;
    sum.reconcile_entries_skipped += st.reconcile_entries_skipped;
    sum.delta_revalidations += st.delta_revalidations;
    sum.delta_fallback_full_checks += st.delta_fallback_full_checks;
    sum.fragment_admissions += st.fragment_admissions;
    sum.fragment_merges += st.fragment_merges;
    sum.fragment_evictions += st.fragment_evictions;
    sum.fragment_digest_collisions += st.fragment_digest_collisions;
    sum.fragment_hits += st.fragment_hits;
    sum.fragment_candidates_pruned += st.fragment_candidates_pruned;
    sum.fragment_reconcile_touched += st.fragment_reconcile_touched;
    sum.fragment_reconcile_skipped += st.fragment_reconcile_skipped;
    sum.restored_fragments += st.restored_fragments;
    sum.byte_budget_evictions += st.byte_budget_evictions;
    sum.fragment_byte_evictions += st.fragment_byte_evictions;
    sum.alloc_failed_admissions += st.alloc_failed_admissions;
    sum.alloc_failed_fragments += st.alloc_failed_fragments;
    sum.restore_budget_dropped += st.restore_budget_dropped;
    // Byte gauges are recomputed from the live stores, not carried in the
    // per-shard counter state.
    const ApproxByteFootprint bytes = s->store.ApproxBytes();
    sum.approx_graph_bytes += bytes.graph_bytes;
    sum.approx_bitset_bytes += bytes.bitset_bytes;
    sum.approx_posting_bytes += bytes.posting_bytes;
    sum.approx_fragment_bytes += bytes.fragment_bytes;
  }
  return sum;
}

void ShardedCache::Clear() {
  for (auto& s : shards_) s->store.Clear();
}

void ShardedCache::ValidateAll(const ChangeCounters& counters,
                               std::size_t id_horizon) {
  for (auto& s : shards_) s->store.ValidateAll(counters, id_horizon);
}

std::vector<CachedQuery> ShardedCache::ExportEntries() const {
  std::vector<CachedQuery> out;
  out.reserve(resident());
  for (const auto& s : shards_) {
    std::vector<CachedQuery> part = s->store.ExportEntries();
    for (CachedQuery& e : part) out.push_back(std::move(e));
  }
  return out;
}

void ShardedCache::RestoreEntries(std::vector<CachedQuery> entries) {
  std::vector<std::vector<CachedQuery>> routed(shards_.size());
  for (CachedQuery& e : entries) {
    routed[ShardOfDigest(e.digest)].push_back(std::move(e));
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->store.RestoreEntries(std::move(routed[s]));
  }
}

std::vector<CachedQuery> ShardedCache::ExportFragments() const {
  std::vector<CachedQuery> out;
  for (const auto& s : shards_) {
    std::vector<CachedQuery> part = s->store.ExportFragments();
    for (CachedQuery& e : part) out.push_back(std::move(e));
  }
  return out;
}

void ShardedCache::RestoreFragments(std::vector<CachedQuery> fragments) {
  std::vector<std::vector<CachedQuery>> routed(shards_.size());
  for (CachedQuery& e : fragments) {
    routed[ShardOfDigest(e.digest)].push_back(std::move(e));
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->store.RestoreFragments(std::move(routed[s]));
  }
}

}  // namespace gcp
