#include "cache/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <sstream>

#include "common/crc32.hpp"

namespace gcp {

namespace {

constexpr char kHeaderV1[] = "GCPCHKPT v1\n";
constexpr char kHeaderV2[] = "GCPCHKPT v2\n";
constexpr char kPrefix[] = "checkpoint-";
constexpr char kSuffix[] = ".gcpchk";

std::string MetaPayload(const CacheSnapshot& s, int version) {
  std::ostringstream os;
  os << "watermark " << s.watermark << "\n"
     << "horizon " << s.id_horizon << "\n"
     << "entries " << s.entries.size() << "\n";
  if (version >= 2) os << "fragments " << s.fragments.size() << "\n";
  return os.str();
}

std::string SectionHeader(const char* name, const std::string& payload) {
  std::ostringstream os;
  os << "section " << name << " " << payload.size() << " " << Crc32(payload)
     << "\n";
  return os.str();
}

/// Consumes one "section <name> <len> <crc>\n" + payload from `bytes` at
/// `pos`; Corruption names the section on any mismatch.
Status TakeSection(const std::string& bytes, std::size_t& pos,
                   const char* name, std::string& payload_out) {
  const std::size_t eol = bytes.find('\n', pos);
  if (eol == std::string::npos) {
    return Status::Corruption(std::string("truncated before section '") +
                              name + "' header");
  }
  const std::string line = bytes.substr(pos, eol - pos);
  std::istringstream ls(line);
  std::string tag, got_name;
  std::uint64_t len = 0;
  std::uint32_t crc = 0;
  if (!(ls >> tag >> got_name >> len >> crc) || tag != "section" ||
      got_name != name) {
    return Status::Corruption(std::string("malformed section '") + name +
                              "' header: " + line);
  }
  pos = eol + 1;
  if (bytes.size() - pos < len) {
    return Status::Corruption(std::string("section '") + name +
                              "' truncated: " + std::to_string(len) +
                              " bytes declared, " +
                              std::to_string(bytes.size() - pos) +
                              " available");
  }
  payload_out = bytes.substr(pos, len);
  pos += len;
  if (Crc32(payload_out) != crc) {
    return Status::Corruption(std::string("section '") + name +
                              "' CRC mismatch");
  }
  return Status::OK();
}

}  // namespace

std::string CheckpointFileName(std::uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%06" PRIu64 "%s", kPrefix, seq, kSuffix);
  return buf;
}

Result<std::uint64_t> ParseCheckpointSeq(const std::string& name) {
  const std::size_t prefix_len = std::strlen(kPrefix);
  const std::size_t suffix_len = std::strlen(kSuffix);
  if (name.size() <= prefix_len + suffix_len ||
      name.compare(0, prefix_len, kPrefix) != 0 ||
      name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return Status::NotFound("not a checkpoint file name: " + name);
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return Status::NotFound("not a checkpoint file name: " + name);
  }
  return static_cast<std::uint64_t>(std::strtoull(digits.c_str(), nullptr, 10));
}

std::string EncodeCheckpoint(const CacheSnapshot& snapshot, int version) {
  const std::string meta = MetaPayload(snapshot, version);
  std::ostringstream body_os;
  WriteCacheSnapshot(body_os, snapshot, version);
  const std::string body = body_os.str();

  std::string out;
  out.reserve(meta.size() + body.size() + 160);
  out += version >= 2 ? kHeaderV2 : kHeaderV1;
  out += SectionHeader("meta", meta);
  out += meta;
  out += SectionHeader("body", body);
  out += body;
  // Footer: repeated counts + CRC of everything before the footer line,
  // so "file ends without a footer" and "sections swapped/edited" are
  // both detectable even when each section is individually intact.
  std::ostringstream footer;
  footer << "footer " << snapshot.entries.size() << " " << snapshot.watermark
         << " " << snapshot.id_horizon << " " << Crc32(out) << "\n";
  out += footer.str();
  return out;
}

Result<CacheSnapshot> DecodeCheckpoint(const std::string& bytes) {
  const std::size_t header_len = std::strlen(kHeaderV2);
  int version = 0;
  if (bytes.size() >= header_len) {
    if (bytes.compare(0, header_len, kHeaderV2) == 0) {
      version = 2;
    } else if (bytes.compare(0, header_len, kHeaderV1) == 0) {
      version = 1;
    }
  }
  if (version == 0) {
    return Status::Corruption("not a GCPCHKPT v1/v2 checkpoint");
  }
  std::size_t pos = header_len;
  std::string meta, body;
  GCP_RETURN_NOT_OK(TakeSection(bytes, pos, "meta", meta));
  GCP_RETURN_NOT_OK(TakeSection(bytes, pos, "body", body));

  // Footer line covers the whole prefix [0, pos).
  const std::size_t eol = bytes.find('\n', pos);
  if (eol == std::string::npos) {
    return Status::Corruption("missing checkpoint footer");
  }
  std::istringstream fs(bytes.substr(pos, eol - pos));
  std::string tag;
  std::uint64_t f_entries = 0, f_watermark = 0, f_horizon = 0;
  std::uint32_t f_crc = 0;
  if (!(fs >> tag >> f_entries >> f_watermark >> f_horizon >> f_crc) ||
      tag != "footer") {
    return Status::Corruption("malformed checkpoint footer");
  }
  if (eol + 1 != bytes.size()) {
    return Status::Corruption("trailing bytes after checkpoint footer");
  }
  if (Crc32(bytes.substr(0, pos)) != f_crc) {
    return Status::Corruption("checkpoint whole-file CRC mismatch");
  }

  // Meta section: parsed first so the cheap cross-checks run before the
  // (comparatively expensive) body parse.
  std::istringstream ms(meta);
  std::string key;
  std::uint64_t m_watermark = 0, m_horizon = 0, m_entries = 0;
  if (!(ms >> key >> m_watermark) || key != "watermark") {
    return Status::Corruption("malformed meta section: watermark");
  }
  if (!(ms >> key >> m_horizon) || key != "horizon") {
    return Status::Corruption("malformed meta section: horizon");
  }
  if (!(ms >> key >> m_entries) || key != "entries") {
    return Status::Corruption("malformed meta section: entries");
  }
  std::uint64_t m_fragments = 0;
  if (version >= 2 &&
      (!(ms >> key >> m_fragments) || key != "fragments")) {
    return Status::Corruption("malformed meta section: fragments");
  }
  if (m_entries != f_entries || m_watermark != f_watermark ||
      m_horizon != f_horizon) {
    return Status::Corruption("meta/footer disagreement");
  }

  std::istringstream bs(body);
  Result<CacheSnapshot> snapshot = ReadCacheSnapshot(bs);
  if (!snapshot.ok()) return snapshot.status();
  CacheSnapshot& s = snapshot.value();
  if (s.watermark != m_watermark || s.id_horizon != m_horizon ||
      s.entries.size() != m_entries || s.fragments.size() != m_fragments) {
    return Status::Corruption("body/meta disagreement");
  }
  return snapshot;
}

Status WriteCheckpointFile(const std::string& path,
                           const CacheSnapshot& snapshot,
                           FaultInjector* fault, std::uint64_t* bytes_out) {
  const std::string bytes = EncodeCheckpoint(snapshot);
  AtomicFileWriter writer(path, fault);
  GCP_RETURN_NOT_OK(writer.Open());
  GCP_RETURN_NOT_OK(writer.Append(bytes));
  GCP_RETURN_NOT_OK(writer.Commit());
  if (bytes_out != nullptr) *bytes_out = writer.bytes_written();
  return Status::OK();
}

Result<CacheSnapshot> ReadCheckpointFile(const std::string& path) {
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeCheckpoint(bytes.value());
}

std::vector<std::uint64_t> ListCheckpointSeqs(const std::string& dir) {
  std::vector<std::uint64_t> seqs;
  Result<std::vector<std::string>> names = ListDirectory(dir);
  if (!names.ok()) return seqs;
  for (const std::string& name : names.value()) {
    Result<std::uint64_t> seq = ParseCheckpointSeq(name);
    if (seq.ok()) seqs.push_back(seq.value());
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

Status PruneCheckpoints(const std::string& dir, std::size_t keep) {
  const std::vector<std::uint64_t> seqs = ListCheckpointSeqs(dir);
  Status first;
  for (std::size_t i = keep; i < seqs.size(); ++i) {
    const std::string base = dir + "/" + CheckpointFileName(seqs[i]);
    for (const std::string& path : {base, base + ".tmp"}) {
      const Status st = RemoveFile(path);
      if (!st.ok() && first.ok()) first = st;
    }
  }
  return first;
}

}  // namespace gcp
