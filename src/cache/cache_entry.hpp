// CachedQuery — one previously executed query resident in the GC+ cache or
// window, together with the data Algorithm 2 and the candidate-set pruner
// operate on: the answer snapshot and the validity indicator, both keyed by
// dataset graph id (paper §5.2.2).

#ifndef GCP_CACHE_CACHE_ENTRY_HPP_
#define GCP_CACHE_CACHE_ENTRY_HPP_

#include <cstdint>
#include <memory>

#include "common/bitset.hpp"
#include "dataset/change.hpp"
#include "graph/features.hpp"
#include "graph/graph.hpp"

namespace gcp {

/// Unique identity of a cached query within one GC+ instance.
using CacheEntryId = std::uint64_t;

/// Direction of the query a cache entry answered. Mirrors
/// core/method_m.hpp's QueryKind; duplicated here (as a plain tag) to keep
/// the cache layer independent of the runtime layer. 0 = subgraph query
/// (answer = graphs containing the query), 1 = supergraph query (answer =
/// graphs contained in the query). An entry can only serve hits for
/// queries of the same kind — the answer semantics differ.
enum class CachedQueryKind : std::uint8_t {
  kSubgraph = 0,
  kSupergraph = 1,
};

/// \brief A cached query with its answer snapshot and validity indicator.
struct CachedQuery {
  CacheEntryId id = 0;

  /// The query graph as executed — shared and immutable after admission.
  /// Hit-discovery survivors, exported checkpoints and entry copies alias
  /// this one Graph instead of deep-copying it; refcounted lifetime means
  /// an evicted entry's graph stays reachable for any in-flight reader
  /// that grabbed the pointer under the shard lock (the shared-ownership
  /// leg of the epoch reclamation story).
  std::shared_ptr<const Graph> query;

  /// Which kind of query produced this entry.
  CachedQueryKind kind = CachedQueryKind::kSubgraph;

  /// Monotone features of `query` (precomputed for hit discovery).
  GraphFeatures features;

  /// WL digest of `query` (exact-match prefilter / dedup key).
  std::uint64_t digest = 0;

  /// Answer(g'): bit i set iff graph i contained `query` when the query
  /// was executed. Never re-evaluated after execution (GC+ snapshots the
  /// relation; consistency is carried by `valid` instead).
  DynamicBitset answer;

  /// CGvalid(g'): bit i set iff the cached relation towards dataset graph
  /// i still holds for the up-to-date dataset. Maintained by the Cache
  /// Validator (Algorithm 2).
  DynamicBitset valid;

  // --- Statistics Manager metadata (replacement policies) ---------------

  /// R: total sub-iso tests this entry has alleviated (PIN score basis).
  std::uint64_t tests_saved = 0;
  /// C: estimated cost (milliseconds) of one sub-iso test against this
  /// entry's query — the heuristic cost component of PINC.
  double est_test_cost_ms = 0.0;
  /// Number of times this entry produced any kind of hit.
  std::uint64_t hits = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t sub_hits = 0;    ///< Hits where new query ⊆ this query.
  std::uint64_t super_hits = 0;  ///< Hits where this query ⊆ new query.

  /// Workload position when admitted / last useful (LRU/recency ties).
  std::uint64_t admitted_at = 0;
  std::uint64_t last_used_at = 0;

  /// True while the entry still sits in the admission window.
  bool in_window = false;

  /// Cached byte footprint (ApproxEntryBytes) as last accounted by the
  /// owning store. Maintained by the store on admit/validate/restore so
  /// the store's running byte gauge can be adjusted by exact deltas when
  /// bitsets grow; 0 for entries not (yet) owned by a store.
  std::uint64_t approx_bytes = 0;

  /// Answer bits restricted to currently-valid knowledge:
  /// valid ∩ answer — the sub-iso-test-free set of formula (1).
  DynamicBitset ValidAnswer() const {
    return DynamicBitset::And(valid, answer);
  }

  /// valid ∩ ¬answer — graphs known (and still valid) to NOT contain the
  /// query; the supergraph case prunes these from the candidate set.
  DynamicBitset ValidNonAnswer() const {
    return DynamicBitset::AndNot(valid, answer);
  }
};

}  // namespace gcp

#endif  // GCP_CACHE_CACHE_ENTRY_HPP_
