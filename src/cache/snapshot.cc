#include "cache/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "graph/graph_io.hpp"

namespace gcp {

namespace {

constexpr char kMagic[] = "GCPCACHE";

// Bitsets are serialized as '0'/'1' strings (diff-friendly; snapshots are
// maintenance artifacts, not a hot path). Any character outside {0,1} is
// corruption — a bit-flipped byte must fail the load, not silently parse
// as a cleared bit.
Result<DynamicBitset> ParseBits(const std::string& s) {
  DynamicBitset b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') {
      b.Set(i);
    } else if (s[i] != '0') {
      return Status::Corruption("bitset holds a non-0/1 character");
    }
  }
  return b;
}

// Entries and fragments share one block shape; only the leading keyword
// differs ("entry" / "fragment"), so a reader can never confuse the
// sections.
void WriteEntryBlock(std::ostream& os, const CachedQuery& e,
                     const char* keyword) {
  os << keyword << " kind=" << static_cast<int>(e.kind)
     << " admitted=" << e.admitted_at << " last_used=" << e.last_used_at
     << " hits=" << e.hits << " tests_saved=" << e.tests_saved
     << " exact=" << e.exact_hits << " sub=" << e.sub_hits
     << " super=" << e.super_hits << " cost=" << e.est_test_cost_ms << "\n";
  os << "answer " << e.answer.ToString() << "\n";
  os << "valid " << e.valid.ToString() << "\n";
  // Serializes through the shared graph reference — exporting a
  // checkpoint never deep-copies resident graphs.
  os << GraphToGSpan(*e.query);
  os << "endentry\n";
}

}  // namespace

void WriteCacheSnapshot(std::ostream& os, const CacheSnapshot& snapshot,
                        int version) {
  os << kMagic << " v" << version << "\n";
  os << "watermark " << snapshot.watermark << "\n";
  os << "horizon " << snapshot.id_horizon << "\n";
  os << "entries " << snapshot.entries.size() << "\n";
  if (version >= 2) os << "fragments " << snapshot.fragments.size() << "\n";
  for (const CachedQuery& e : snapshot.entries) {
    WriteEntryBlock(os, e, "entry");
  }
  if (version >= 2) {
    for (const CachedQuery& e : snapshot.fragments) {
      WriteEntryBlock(os, e, "fragment");
    }
  }
}

namespace {

/// Parses one "<keyword> ..." block (header + bitsets + graph) into `*out`.
Status ParseEntryBlock(std::istream& is, const char* keyword, std::size_t i,
                       CachedQuery* out) {
  const std::string prefix = std::string(keyword) + " ";
  std::string line;
  if (!std::getline(is, line) || line.rfind(prefix, 0) != 0) {
    return Status::Corruption(std::string("expected ") + keyword +
                              " header for " + keyword + " " +
                              std::to_string(i));
  }
  CachedQuery e;
  {
    std::istringstream hs(line.substr(prefix.size()));
      std::string field;
      std::size_t fields_seen = 0;
      while (hs >> field) {
        const auto eq = field.find('=');
        if (eq == std::string::npos) {
          return Status::Corruption("malformed entry field: " + field);
        }
        const std::string name = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        char* end = nullptr;
        if (name == "cost") {
          e.est_test_cost_ms = std::strtod(value.c_str(), &end);
        } else {
          const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
          if (name == "kind") {
            if (v > 1) return Status::Corruption("bad entry kind");
            e.kind = static_cast<CachedQueryKind>(v);
          } else if (name == "admitted") {
            e.admitted_at = v;
          } else if (name == "last_used") {
            e.last_used_at = v;
          } else if (name == "hits") {
            e.hits = v;
          } else if (name == "tests_saved") {
            e.tests_saved = v;
          } else if (name == "exact") {
            e.exact_hits = v;
          } else if (name == "sub") {
            e.sub_hits = v;
          } else if (name == "super") {
            e.super_hits = v;
          } else {
            return Status::Corruption("unknown entry field: " + name);
          }
        }
        if (end == nullptr || *end != '\0') {
          return Status::Corruption("malformed entry value: " + field);
        }
        ++fields_seen;
      }
      // A truncated header line must not yield a default-constructed
      // entry: all 9 metadata fields are required.
      if (fields_seen != 9) {
        return Status::Corruption("entry header holds " +
                                  std::to_string(fields_seen) +
                                  " fields, expected 9");
      }
    }
  if (!std::getline(is, line) || line.rfind("answer ", 0) != 0) {
    return Status::Corruption("missing answer bits");
  }
  auto answer = ParseBits(line.substr(7));
  if (!answer.ok()) return answer.status();
  e.answer = std::move(answer).value();
  if (!std::getline(is, line) || line.rfind("valid ", 0) != 0) {
    return Status::Corruption("missing valid bits");
  }
  auto valid = ParseBits(line.substr(6));
  if (!valid.ok()) return valid.status();
  e.valid = std::move(valid).value();
  if (e.answer.size() != e.valid.size()) {
    return Status::Corruption("answer/valid width mismatch");
  }
  // Graph block runs until "endentry".
  std::ostringstream graph_text;
  bool terminated = false;
  while (std::getline(is, line)) {
    if (line == "endentry") {
      terminated = true;
      break;
    }
    graph_text << line << "\n";
  }
  if (!terminated) return Status::Corruption("unterminated entry block");
  auto g = GraphFromGSpan(graph_text.str());
  if (!g.ok()) return g.status();
  e.query = std::make_shared<const Graph>(std::move(g).value());
  *out = std::move(e);
  return Status::OK();
}

}  // namespace

Result<CacheSnapshot> ReadCacheSnapshot(std::istream& is) {
  CacheSnapshot snapshot;
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic ||
      (version != "v1" && version != "v2")) {
    return Status::Corruption("not a GCPCACHE v1/v2 snapshot");
  }
  const bool v2 = version == "v2";
  std::string key;
  std::size_t entry_count = 0;
  std::size_t fragment_count = 0;
  if (!(is >> key >> snapshot.watermark) || key != "watermark") {
    return Status::Corruption("missing watermark record");
  }
  if (!(is >> key >> snapshot.id_horizon) || key != "horizon") {
    return Status::Corruption("missing horizon record");
  }
  if (!(is >> key >> entry_count) || key != "entries") {
    return Status::Corruption("missing entries record");
  }
  if (v2 && (!(is >> key >> fragment_count) || key != "fragments")) {
    return Status::Corruption("missing fragments record");
  }
  std::string line;
  std::getline(is, line);  // consume end-of-line
  // Cap the up-front reservations: a corrupt count must not turn into a
  // multi-GB allocation before the first entry parse fails.
  snapshot.entries.reserve(
      entry_count < std::size_t{4096} ? entry_count : std::size_t{4096});
  snapshot.fragments.reserve(
      fragment_count < std::size_t{4096} ? fragment_count : std::size_t{4096});
  for (std::size_t i = 0; i < entry_count; ++i) {
    CachedQuery e;
    if (const Status st = ParseEntryBlock(is, "entry", i, &e); !st.ok()) {
      return st;
    }
    snapshot.entries.push_back(std::move(e));
  }
  for (std::size_t i = 0; i < fragment_count; ++i) {
    CachedQuery e;
    if (const Status st = ParseEntryBlock(is, "fragment", i, &e); !st.ok()) {
      return st;
    }
    if (e.kind != CachedQueryKind::kSubgraph) {
      return Status::Corruption("fragment with non-subgraph kind");
    }
    snapshot.fragments.push_back(std::move(e));
  }
  return snapshot;
}

Status WriteCacheSnapshotToFile(const std::string& path,
                                const CacheSnapshot& snapshot) {
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot open for writing: " + path);
  WriteCacheSnapshot(os, snapshot);
  os.flush();
  if (!os) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<CacheSnapshot> ReadCacheSnapshotFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open for reading: " + path);
  return ReadCacheSnapshot(is);
}

}  // namespace gcp
