#include "cache/cache_manager.hpp"

#include <algorithm>
#include <cassert>

#include "cache/cache_validator.hpp"
#include "common/alloc_fault.hpp"
#include "graph/canonical.hpp"

namespace gcp {

namespace {

/// Fragment-store slice of a shard's byte budget: 1/8 when both the budget
/// and the fragment tier are on, 0 otherwise. The whole-query stores get
/// the remainder.
std::uint64_t FragmentByteSlice(const CacheManagerOptions& o) {
  if (o.byte_budget == 0 || o.fragment_capacity == 0) return 0;
  return static_cast<std::uint64_t>(o.byte_budget) / 8;
}

}  // namespace

CacheManager::CacheManager(CacheManagerOptions options)
    : options_(options),
      fragments_(options.fragment_capacity, options.maintain_relevance_index,
                 FragmentByteSlice(options), options.pressure),
      rng_(options.rng_seed) {
  entry_byte_budget_ =
      options_.byte_budget == 0
          ? 0
          : static_cast<std::uint64_t>(options_.byte_budget) -
                FragmentByteSlice(options_);
}

Result<CacheEntryId> CacheManager::Admit(Graph query, CachedQueryKind kind,
                                         DynamicBitset answer,
                                         DynamicBitset valid,
                                         std::uint64_t now,
                                         double est_test_cost_ms) {
  Result<CacheEntryId> id =
      AdmitDeferred(std::move(query), kind, std::move(answer),
                    std::move(valid), now, est_test_cost_ms);
  if (!id.ok()) return id;
  MaybeMergeWindow();
  return id;
}

std::unique_ptr<CachedQuery> CacheManager::PrepareEntry(
    std::shared_ptr<const Graph> query, CachedQueryKind kind,
    DynamicBitset answer, DynamicBitset valid, double est_test_cost_ms) {
  auto entry = std::make_unique<CachedQuery>();
  entry->kind = kind;
  entry->features = GraphFeatures::Extract(*query);
  entry->digest = WlDigest(*query);
  entry->query = std::move(query);  // pointer handoff — the Graph itself
                                    // is neither copied nor moved
  entry->answer = std::move(answer);
  entry->valid = std::move(valid);
  entry->est_test_cost_ms = est_test_cost_ms;
  return entry;
}

Result<CacheEntryId> CacheManager::AdmitDeferred(Graph query,
                                                 CachedQueryKind kind,
                                                 DynamicBitset answer,
                                                 DynamicBitset valid,
                                                 std::uint64_t now,
                                                 double est_test_cost_ms) {
  // The by-value Graph becomes shared storage in this one move; every
  // later stage passes the pointer.
  return AdmitPrepared(
      PrepareEntry(std::make_shared<const Graph>(std::move(query)), kind,
                   std::move(answer), std::move(valid), est_test_cost_ms),
      now);
}

Result<CacheEntryId> CacheManager::AdmitPrepared(
    std::unique_ptr<CachedQuery> entry, std::uint64_t now) {
  if (AllocationFaultFires(AllocSite::kAdmission, ApproxEntryBytes(*entry))) {
    ++stats_.alloc_failed_admissions;
    return Status::ResourceExhausted("cache admission allocation failed");
  }
  entry->id = next_id_++;
  entry->admitted_at = now;
  entry->last_used_at = now;
  entry->in_window = true;
  const CacheEntryId id = entry->id;
  CachedQuery* raw = entry.get();
  index_.Insert(raw);
  if (options_.maintain_relevance_index) relevance_.Insert(raw);
  by_id_.emplace(id, raw);
  window_.push_back(std::move(entry));
  AccountAdmit(*raw);
  ++stats_.total_admissions;
  return id;
}

void CacheManager::MaybeMergeWindow() {
  // The byte condition lets replacement run even on a half-full window —
  // the budget bounds resident bytes per drain, not per window fill.
  if (window_.size() >= options_.window_capacity ||
      (entry_byte_budget_ != 0 && entry_bytes_ > entry_byte_budget_)) {
    MergeWindowIntoCache();
  }
}

void CacheManager::MergeWindowIntoCache() {
  // Candidate pool: current cache residents plus the window batch.
  for (auto& e : window_) {
    e->in_window = false;
    cache_.push_back(std::move(e));
  }
  window_.clear();
  if (cache_.size() > options_.cache_capacity) {
    std::vector<const CachedQuery*> pool;
    pool.reserve(cache_.size());
    for (const auto& e : cache_) pool.push_back(e.get());
    const ReplacementRanker ranker(options_.policy, &rng_);
    const std::vector<std::size_t> order = ranker.RankBestFirst(pool);
    last_effective_ = ranker.effective_policy();

    std::vector<std::unique_ptr<CachedQuery>> kept;
    kept.reserve(options_.cache_capacity);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      auto& slot = cache_[order[rank]];
      if (rank < options_.cache_capacity) {
        kept.push_back(std::move(slot));
      } else {
        AccountEvict(*slot);
        index_.Erase(slot->id);
        relevance_.Erase(slot->id);
        by_id_.erase(slot->id);
        ++stats_.total_evictions;
      }
    }
    cache_ = std::move(kept);
  }
  EnforceByteBudget();
}

void CacheManager::EnforceByteBudget() {
  if (entry_byte_budget_ == 0 || entry_bytes_ <= entry_byte_budget_) return;
  // Greedy knapsack over the utility-per-byte ranking: keep the best
  // prefix that fits (a too-big entry is skipped, later smaller ones may
  // still fit). Runs with the window empty (callers merge first), so
  // entry_bytes_ covers exactly cache_.
  std::vector<const CachedQuery*> pool;
  pool.reserve(cache_.size());
  for (const auto& e : cache_) pool.push_back(e.get());
  const ReplacementRanker ranker(options_.policy, &rng_);
  const std::vector<std::size_t> order = ranker.RankBestPerByteFirst(pool);
  last_effective_ = ranker.effective_policy();

  std::vector<std::unique_ptr<CachedQuery>> kept;
  kept.reserve(cache_.size());
  std::uint64_t kept_bytes = 0;
  for (const std::size_t i : order) {
    auto& slot = cache_[i];
    if (kept_bytes + slot->approx_bytes <= entry_byte_budget_) {
      kept_bytes += slot->approx_bytes;
      kept.push_back(std::move(slot));
    } else {
      AccountEvict(*slot);
      index_.Erase(slot->id);
      relevance_.Erase(slot->id);
      by_id_.erase(slot->id);
      ++stats_.total_evictions;
      ++stats_.byte_budget_evictions;
    }
  }
  cache_ = std::move(kept);
}

void CacheManager::Clear() {
  if (!cache_.empty() || !window_.empty()) ++stats_.total_cache_clears;
  if (options_.pressure != nullptr && entry_bytes_ != 0) {
    options_.pressure->AddBytes(-static_cast<std::int64_t>(entry_bytes_));
  }
  entry_bytes_ = 0;
  cache_.clear();
  window_.clear();
  by_id_.clear();
  index_.Clear();
  relevance_.Clear();
  fragments_.Clear();
}

void CacheManager::PurgeForReconcile() {
  stats_.reconcile_entries_touched += resident();
  stats_.fragment_reconcile_touched += fragments_.size();
  // An EVI purge touches everything; the post-restore balance holds
  // trivially (skipped == 0).
  restore_balance_check_pending_ = false;
  Clear();
}

void CacheManager::ValidateAll(
    const ChangeCounters& counters, std::size_t id_horizon,
    const CacheValidator::DeltaRevalidateFn* delta) {
  stats_.reconcile_entries_touched += resident();
  // Brute-force validation touches everything; balance holds trivially.
  restore_balance_check_pending_ = false;
  for (auto& e : cache_) {
    CacheValidator::RefreshEntry(*e, counters, id_horizon, delta, &stats_);
    if (options_.maintain_relevance_index) relevance_.Refresh(e.get());
    AccountRefresh(*e);
  }
  for (auto& e : window_) {
    CacheValidator::RefreshEntry(*e, counters, id_horizon, delta, &stats_);
    if (options_.maintain_relevance_index) relevance_.Refresh(e.get());
    AccountRefresh(*e);
  }
  // Fragments reconcile with plain Algorithm 2 — the delta hook re-proves
  // whole-query containments and is never needed for soundness here.
  fragments_.ValidateAll(counters, id_horizon, stats_);
}

void CacheManager::ValidateRelevant(
    const ChangeCounters& counters, std::size_t id_horizon,
    const CacheValidator::DeltaRevalidateFn* delta) {
  // Indicator extension (Algorithm 2 lines 4-6) applies to every resident
  // entry — new ids default to invalid and no existing bit can flip, so
  // extension alone never makes an entry "touched".
  for (auto& e : cache_) {
    CacheValidator::ExtendEntry(*e, id_horizon);
    AccountRefresh(*e);
  }
  for (auto& e : window_) {
    CacheValidator::ExtendEntry(*e, id_horizon);
    AccountRefresh(*e);
  }

  const RelevanceIndex::BatchFootprint batch =
      RelevanceIndex::FootprintOf(counters);
  const std::vector<const CachedQuery*> affected =
      relevance_.CollectAffected(batch);
  std::size_t touched = 0;
  for (const CachedQuery* c : affected) {
    CachedQuery* e = FindMutable(c->id);
    if (e == nullptr) continue;  // defensive; affected ids are resident
    CacheValidator::ApplyCounters(*e, counters, delta, &stats_);
    // Re-tightens after clears and restores the superset invariant after
    // a delta fallback re-set bits.
    relevance_.Refresh(e);
    ++touched;
  }
  if (restore_balance_check_pending_) {
    // First reconcile over a restored population: the relevance screen
    // must partition exactly the entries RestoreEntries re-admitted —
    // every posting resolves to a resident entry and the touched/skipped
    // split balances. A stale posting (entry restored without its
    // footprint) would break both.
    assert(touched == affected.size() &&
           "post-restore reconcile hit a non-resident posting");
    assert(touched + (resident() - touched) == resident());
    restore_balance_check_pending_ = false;
  }
  stats_.reconcile_entries_touched += touched;
  stats_.reconcile_entries_skipped += resident() - touched;
  fragments_.ValidateRelevant(counters, id_horizon, stats_);
}

void CacheManager::RefreshRelevanceFootprint(CacheEntryId id) {
  if (!options_.maintain_relevance_index) return;
  const CachedQuery* e = Find(id);
  if (e != nullptr) relevance_.Refresh(e);
}

void CacheManager::ExtendAll(std::size_t id_horizon) {
  const ChangeCounters empty;
  for (auto& e : cache_) {
    CacheValidator::RefreshEntry(*e, empty, id_horizon);
    AccountRefresh(*e);
  }
  for (auto& e : window_) {
    CacheValidator::RefreshEntry(*e, empty, id_horizon);
    AccountRefresh(*e);
  }
}

void CacheManager::NoteEntryBytesChanged(CacheEntryId id) {
  CachedQuery* e = FindMutable(id);
  if (e != nullptr) AccountRefresh(*e);
}

void CacheManager::RecordBenefit(CacheEntryId id, std::uint64_t tests_saved,
                                 std::uint64_t now) {
  CachedQuery* e = FindMutable(id);
  if (e == nullptr) return;
  StatisticsManager::RecordBenefit(*e, tests_saved, now);
  stats_.total_tests_saved += tests_saved;
}

void CacheManager::CreditHit(CacheEntryId id, HitKind kind,
                             std::uint64_t tests_saved, std::uint64_t now,
                             bool zero_test_exact) {
  RecordBenefit(id, tests_saved, now);
  CachedQuery* e = FindMutable(id);
  switch (kind) {
    case HitKind::kExact:
      if (e != nullptr) ++e->exact_hits;
      ++stats_.total_exact_hits;
      if (zero_test_exact) ++stats_.total_exact_hits_zero_test;
      break;
    case HitKind::kEmptyProof:
      if (e != nullptr) ++e->super_hits;
      ++stats_.total_empty_shortcuts;
      break;
    case HitKind::kSub:
      if (e != nullptr) ++e->sub_hits;
      ++stats_.total_sub_hits;
      break;
    case HitKind::kSuper:
      if (e != nullptr) ++e->super_hits;
      ++stats_.total_super_hits;
      break;
  }
}

void CacheManager::CreditHitsBatched(
    const std::vector<EntryCreditSum>& credits) {
  for (const EntryCreditSum& c : credits) {
    CachedQuery* e = FindMutable(c.id);
    if (e != nullptr) {
      StatisticsManager::RecordBenefitSum(*e, c.tests_saved, c.hit_count,
                                          c.last_used);
      e->exact_hits += c.exact;
      e->sub_hits += c.sub;
      // kEmptyProof credits count towards super_hits, as in CreditHit.
      e->super_hits += c.super + c.empty_proof;
      // Benefit totals only accrue for entries still resident — identical
      // to RecordBenefit's no-op on evicted ids.
      stats_.total_tests_saved += c.tests_saved;
    }
    // Per-kind global counters record the hits whether or not the entry
    // survived until the drain — identical to the per-credit path.
    stats_.total_exact_hits += c.exact;
    stats_.total_exact_hits_zero_test += c.zero_test_exact;
    stats_.total_empty_shortcuts += c.empty_proof;
    stats_.total_sub_hits += c.sub;
    stats_.total_super_hits += c.super;
  }
}

std::vector<CachedQuery> CacheManager::ExportEntries() const {
  std::vector<CachedQuery> out;
  out.reserve(resident());
  ForEachEntry([&out](const CachedQuery& e) { out.push_back(e); });
  return out;
}

void CacheManager::RestoreEntries(std::vector<CachedQuery> entries) {
  Clear();
  std::stable_sort(entries.begin(), entries.end(),
                   [](const CachedQuery& a, const CachedQuery& b) {
                     return a.tests_saved > b.tests_saved;
                   });
  if (entries.size() > options_.cache_capacity) {
    entries.resize(options_.cache_capacity);
  }
  // Byte budget: a restored snapshot that exceeds the whole-query slice
  // keeps the best tests_saved-per-byte subset that fits; the rest are
  // dropped and counted. Survivors land in the legacy (tests_saved desc)
  // insertion order.
  std::vector<bool> keep(entries.size(), true);
  if (entry_byte_budget_ > 0) {
    std::vector<std::size_t> order(entries.size());
    std::vector<std::uint64_t> bytes(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      order[i] = i;
      bytes[i] = ApproxEntryBytes(entries[i]);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const double sa =
                           static_cast<double>(entries[a].tests_saved) /
                           static_cast<double>(std::max<std::uint64_t>(
                               std::uint64_t{1}, bytes[a]));
                       const double sb =
                           static_cast<double>(entries[b].tests_saved) /
                           static_cast<double>(std::max<std::uint64_t>(
                               std::uint64_t{1}, bytes[b]));
                       return sa > sb;
                     });
    std::uint64_t kept_bytes = 0;
    for (const std::size_t i : order) {
      if (kept_bytes + bytes[i] <= entry_byte_budget_) {
        kept_bytes += bytes[i];
      } else {
        keep[i] = false;
        ++stats_.restore_budget_dropped;
      }
    }
  }
  for (std::size_t idx = 0; idx < entries.size(); ++idx) {
    if (!keep[idx]) continue;
    CachedQuery& e = entries[idx];
    auto owned = std::make_unique<CachedQuery>(std::move(e));
    owned->id = next_id_++;
    owned->in_window = false;
    owned->features = GraphFeatures::Extract(*owned->query);
    owned->digest = WlDigest(*owned->query);
    // Re-seed the replacement inputs instead of trusting the file: a
    // snapshot from an older writer may carry no cost estimate, and PINC
    // ranks on it.
    if (owned->est_test_cost_ms <= 0.0) {
      owned->est_test_cost_ms =
          StatisticsManager::StructuralCostEstimateMs(*owned->query);
    }
    index_.Insert(owned.get());
    if (options_.maintain_relevance_index) relevance_.Insert(owned.get());
    by_id_.emplace(owned->id, owned.get());
    AccountAdmit(*owned);
    cache_.push_back(std::move(owned));
    // Footprints are rebuilt from the restored bitsets, never carried
    // over from the file — the relevance screen's superset invariant must
    // hold for whatever validity state actually landed in the store.
    RefreshRelevanceFootprint(cache_.back()->id);
  }
  stats_.restored_entries += cache_.size();
  // RANDOM-policy replacement restarts from the configured seed, so a
  // restore is deterministic regardless of pre-restore RNG consumption.
  rng_ = Rng(options_.rng_seed);
  restore_balance_check_pending_ = true;
}

std::vector<CacheEntryId> CacheManager::ResidentIdsByBenefit() const {
  std::vector<const CachedQuery*> all;
  all.reserve(resident());
  for (const auto& e : cache_) all.push_back(e.get());
  for (const auto& e : window_) all.push_back(e.get());
  std::stable_sort(all.begin(), all.end(),
                   [](const CachedQuery* a, const CachedQuery* b) {
                     return a->tests_saved > b->tests_saved;
                   });
  std::vector<CacheEntryId> ids;
  ids.reserve(all.size());
  for (const auto* e : all) ids.push_back(e->id);
  return ids;
}

ApproxByteFootprint CacheManager::ApproxBytes() const {
  ApproxByteFootprint b;
  ForEachEntry([&b](const CachedQuery& e) {
    b.graph_bytes += ApproxGraphBytes(*e.query);
    b.bitset_bytes += 8 * (e.answer.num_words() + e.valid.num_words());
  });
  assert(b.graph_bytes + b.bitset_bytes == entry_bytes_ &&
         "entry byte gauge drifted from recompute");
  b.posting_bytes = relevance_.ApproxBytes();
  b.fragment_bytes = fragments_.ApproxBytes();
  return b;
}

void CacheManager::AccountAdmit(CachedQuery& e) {
  e.approx_bytes = ApproxEntryBytes(e);
  entry_bytes_ += e.approx_bytes;
  if (options_.pressure != nullptr) {
    options_.pressure->AddBytes(static_cast<std::int64_t>(e.approx_bytes));
  }
}

void CacheManager::AccountEvict(const CachedQuery& e) {
  entry_bytes_ -= e.approx_bytes;
  if (options_.pressure != nullptr) {
    options_.pressure->AddBytes(-static_cast<std::int64_t>(e.approx_bytes));
  }
}

void CacheManager::AccountRefresh(CachedQuery& e) {
  const std::uint64_t fresh = ApproxEntryBytes(e);
  if (fresh == e.approx_bytes) return;
  entry_bytes_ += fresh - e.approx_bytes;  // unsigned wrap-around is exact
  if (options_.pressure != nullptr) {
    options_.pressure->AddBytes(static_cast<std::int64_t>(fresh) -
                                static_cast<std::int64_t>(e.approx_bytes));
  }
  e.approx_bytes = fresh;
}

const CachedQuery* CacheManager::Find(CacheEntryId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

CachedQuery* CacheManager::FindMutable(CacheEntryId id) {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

}  // namespace gcp
