#include "cache/replacement.hpp"

#include <algorithm>
#include <numeric>

#include "cache/statistics.hpp"

namespace gcp {

std::string_view ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kLfu:
      return "LFU";
    case ReplacementPolicy::kRandom:
      return "RANDOM";
    case ReplacementPolicy::kPin:
      return "PIN";
    case ReplacementPolicy::kPinc:
      return "PINC";
    case ReplacementPolicy::kHybrid:
      return "HD";
  }
  return "Unknown";
}

double ReplacementRanker::Score(const CachedQuery& e,
                                ReplacementPolicy p) const {
  switch (p) {
    case ReplacementPolicy::kLru:
      return static_cast<double>(std::max(e.last_used_at, e.admitted_at));
    case ReplacementPolicy::kLfu:
      return static_cast<double>(e.hits);
    case ReplacementPolicy::kRandom:
      return rng_ != nullptr ? rng_->UniformDouble() : 0.5;
    case ReplacementPolicy::kPin:
      return static_cast<double>(e.tests_saved);
    case ReplacementPolicy::kPinc:
      return static_cast<double>(e.tests_saved) * e.est_test_cost_ms;
    case ReplacementPolicy::kHybrid:
      break;  // resolved by RankBestFirst before scoring
  }
  return 0.0;
}

ReplacementPolicy ReplacementRanker::ResolvePolicy(
    const std::vector<const CachedQuery*>& entries) const {
  ReplacementPolicy p = policy_;
  if (p == ReplacementPolicy::kHybrid) {
    // HD: inspect the variability of the R distribution (paper §7.1).
    std::vector<double> r_values;
    r_values.reserve(entries.size());
    for (const auto* e : entries) {
      r_values.push_back(static_cast<double>(e->tests_saved));
    }
    p = StatisticsManager::SquaredCoV(r_values) > 1.0
            ? ReplacementPolicy::kPin
            : ReplacementPolicy::kPinc;
  }
  return p;
}

std::vector<std::size_t> ReplacementRanker::SortByScore(
    const std::vector<const CachedQuery*>& entries,
    const std::vector<double>& scores) const {
  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     // Tie-break: prefer the fresher entry.
                     return entries[a]->admitted_at > entries[b]->admitted_at;
                   });
  return order;
}

std::vector<std::size_t> ReplacementRanker::RankBestFirst(
    const std::vector<const CachedQuery*>& entries) const {
  const ReplacementPolicy p = ResolvePolicy(entries);
  effective_ = p;
  std::vector<double> scores(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    scores[i] = Score(*entries[i], p);
  }
  return SortByScore(entries, scores);
}

std::vector<std::size_t> ReplacementRanker::RankBestPerByteFirst(
    const std::vector<const CachedQuery*>& entries) const {
  const ReplacementPolicy p = ResolvePolicy(entries);
  effective_ = p;
  std::vector<double> scores(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::uint64_t bytes = std::max<std::uint64_t>(
        std::uint64_t{1}, ApproxEntryBytes(*entries[i]));
    scores[i] = Score(*entries[i], p) / static_cast<double>(bytes);
  }
  return SortByScore(entries, scores);
}

}  // namespace gcp
