#include "cache/query_index.hpp"

#include <algorithm>
#include <bit>

namespace gcp {

std::uint64_t QueryIndex::LabelMaskOf(const GraphFeatures& f) {
  std::uint64_t mask = 0;
  for (const auto& [label, count] : f.label_counts) {
    mask |= 1ULL << (label & 63u);
  }
  return mask;
}

std::uint32_t QueryIndex::BandOf(std::uint32_t count) {
  return count == 0 ? 0 : std::bit_width(count) - 1;
}

void QueryIndex::Insert(const CachedQuery* entry) {
  entries_[entry->id] = entry;
  by_digest_.emplace(entry->digest, entry);
  bands_[BandKey(BandOf(entry->features.num_vertices),
                 BandOf(entry->features.num_edges))]
      .push_back(Posting{entry, LabelMaskOf(entry->features),
                         entry->features.num_vertices,
                         entry->features.num_edges});
}

void QueryIndex::Erase(CacheEntryId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  const CachedQuery* entry = it->second;
  entries_.erase(it);
  auto [lo, hi] = by_digest_.equal_range(entry->digest);
  for (auto dit = lo; dit != hi; ++dit) {
    if (dit->second->id == id) {
      by_digest_.erase(dit);
      break;
    }
  }
  const auto bit = bands_.find(BandKey(BandOf(entry->features.num_vertices),
                                       BandOf(entry->features.num_edges)));
  if (bit != bands_.end()) {
    auto& postings = bit->second;
    postings.erase(std::remove_if(postings.begin(), postings.end(),
                                  [id](const Posting& p) {
                                    return p.entry->id == id;
                                  }),
                   postings.end());
    if (postings.empty()) bands_.erase(bit);
  }
}

void QueryIndex::Clear() {
  entries_.clear();
  by_digest_.clear();
  bands_.clear();
}

std::vector<const CachedQuery*> QueryIndex::SupergraphCandidates(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  out.reserve(entries_.size());
  const std::uint64_t mask = LabelMaskOf(g);
  // Entries that could contain g have num_vertices >= g.num_vertices AND
  // num_edges >= g.num_edges: vertex bands from g's upward, and within
  // each vertex band only edge bands from g's upward (a posting in a
  // lower edge band has num_edges < g.num_edges by band monotonicity, so
  // the whole bucket is skipped with one map jump).
  const std::uint32_t vband = BandOf(g.num_vertices);
  const std::uint32_t eband = BandOf(g.num_edges);
  for (auto it = bands_.lower_bound(BandKey(vband, eband));
       it != bands_.end();) {
    if (EBandOf(it->first) < eband) {
      it = bands_.lower_bound(BandKey(VBandOf(it->first), eband));
      continue;
    }
    for (const Posting& p : it->second) {
      if (p.num_vertices < g.num_vertices || p.num_edges < g.num_edges ||
          (mask & ~p.label_mask) != 0) {
        continue;
      }
      if (g.CouldBeSubgraphOf(p.entry->features)) out.push_back(p.entry);
    }
    ++it;
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::SubgraphCandidates(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  out.reserve(entries_.size());
  const std::uint64_t mask = LabelMaskOf(g);
  // Entries contained in g have num_vertices <= g.num_vertices AND
  // num_edges <= g.num_edges: vertex bands up to and including g's, edge
  // bands up to and including g's within each (a higher edge band implies
  // num_edges > g.num_edges — jump straight to the next vertex band).
  const std::uint32_t vband = BandOf(g.num_vertices);
  const std::uint32_t eband = BandOf(g.num_edges);
  const std::uint64_t last_key = BandKey(vband, eband);
  for (auto it = bands_.begin();
       it != bands_.end() && it->first <= last_key;) {
    if (EBandOf(it->first) > eband) {
      it = bands_.lower_bound(BandKey(VBandOf(it->first) + 1, 0));
      continue;
    }
    for (const Posting& p : it->second) {
      if (p.num_vertices > g.num_vertices || p.num_edges > g.num_edges ||
          (p.label_mask & ~mask) != 0) {
        continue;
      }
      if (p.entry->features.CouldBeSubgraphOf(g)) out.push_back(p.entry);
    }
    ++it;
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::SupergraphCandidatesScan(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (g.CouldBeSubgraphOf(entry->features)) out.push_back(entry);
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::SubgraphCandidatesScan(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (entry->features.CouldBeSubgraphOf(g)) out.push_back(entry);
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::DigestMatches(
    std::uint64_t digest) const {
  std::vector<const CachedQuery*> out;
  auto [lo, hi] = by_digest_.equal_range(digest);
  out.reserve(static_cast<std::size_t>(std::distance(lo, hi)));
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

}  // namespace gcp
