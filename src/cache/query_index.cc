#include "cache/query_index.hpp"

#include <algorithm>
#include <bit>

namespace gcp {

std::uint64_t QueryIndex::LabelMaskOf(const GraphFeatures& f) {
  std::uint64_t mask = 0;
  for (const auto& [label, count] : f.label_counts) {
    mask |= 1ULL << (label & 63u);
  }
  return mask;
}

std::uint32_t QueryIndex::BandOf(std::uint32_t num_vertices) {
  return num_vertices == 0 ? 0 : std::bit_width(num_vertices) - 1;
}

void QueryIndex::Insert(const CachedQuery* entry) {
  entries_[entry->id] = entry;
  by_digest_.emplace(entry->digest, entry);
  bands_[BandOf(entry->features.num_vertices)].push_back(
      Posting{entry, LabelMaskOf(entry->features),
              entry->features.num_vertices, entry->features.num_edges});
}

void QueryIndex::Erase(CacheEntryId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  const CachedQuery* entry = it->second;
  entries_.erase(it);
  auto [lo, hi] = by_digest_.equal_range(entry->digest);
  for (auto dit = lo; dit != hi; ++dit) {
    if (dit->second->id == id) {
      by_digest_.erase(dit);
      break;
    }
  }
  const auto bit = bands_.find(BandOf(entry->features.num_vertices));
  if (bit != bands_.end()) {
    auto& postings = bit->second;
    postings.erase(std::remove_if(postings.begin(), postings.end(),
                                  [id](const Posting& p) {
                                    return p.entry->id == id;
                                  }),
                   postings.end());
    if (postings.empty()) bands_.erase(bit);
  }
}

void QueryIndex::Clear() {
  entries_.clear();
  by_digest_.clear();
  bands_.clear();
}

std::vector<const CachedQuery*> QueryIndex::SupergraphCandidates(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  out.reserve(entries_.size());
  const std::uint64_t mask = LabelMaskOf(g);
  // Entries that could contain g have num_vertices >= g.num_vertices, so
  // they live in g's band or above.
  for (auto it = bands_.lower_bound(BandOf(g.num_vertices));
       it != bands_.end(); ++it) {
    for (const Posting& p : it->second) {
      if (p.num_vertices < g.num_vertices || p.num_edges < g.num_edges ||
          (mask & ~p.label_mask) != 0) {
        continue;
      }
      if (g.CouldBeSubgraphOf(p.entry->features)) out.push_back(p.entry);
    }
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::SubgraphCandidates(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  out.reserve(entries_.size());
  const std::uint64_t mask = LabelMaskOf(g);
  // Entries contained in g have num_vertices <= g.num_vertices: bands up
  // to and including g's band.
  const std::uint32_t last_band = BandOf(g.num_vertices);
  for (auto it = bands_.begin(); it != bands_.end() && it->first <= last_band;
       ++it) {
    for (const Posting& p : it->second) {
      if (p.num_vertices > g.num_vertices || p.num_edges > g.num_edges ||
          (p.label_mask & ~mask) != 0) {
        continue;
      }
      if (p.entry->features.CouldBeSubgraphOf(g)) out.push_back(p.entry);
    }
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::SupergraphCandidatesScan(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (g.CouldBeSubgraphOf(entry->features)) out.push_back(entry);
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::SubgraphCandidatesScan(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (entry->features.CouldBeSubgraphOf(g)) out.push_back(entry);
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::DigestMatches(
    std::uint64_t digest) const {
  std::vector<const CachedQuery*> out;
  auto [lo, hi] = by_digest_.equal_range(digest);
  out.reserve(static_cast<std::size_t>(std::distance(lo, hi)));
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

}  // namespace gcp
