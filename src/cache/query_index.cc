#include "cache/query_index.hpp"

namespace gcp {

void QueryIndex::Insert(const CachedQuery* entry) {
  entries_[entry->id] = entry;
  by_digest_.emplace(entry->digest, entry->id);
}

void QueryIndex::Erase(CacheEntryId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  const std::uint64_t digest = it->second->digest;
  entries_.erase(it);
  auto [lo, hi] = by_digest_.equal_range(digest);
  for (auto dit = lo; dit != hi; ++dit) {
    if (dit->second == id) {
      by_digest_.erase(dit);
      break;
    }
  }
}

void QueryIndex::Clear() {
  entries_.clear();
  by_digest_.clear();
}

std::vector<const CachedQuery*> QueryIndex::SupergraphCandidates(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  for (const auto& [id, entry] : entries_) {
    if (g.CouldBeSubgraphOf(entry->features)) out.push_back(entry);
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::SubgraphCandidates(
    const GraphFeatures& g) const {
  std::vector<const CachedQuery*> out;
  for (const auto& [id, entry] : entries_) {
    if (entry->features.CouldBeSubgraphOf(g)) out.push_back(entry);
  }
  return out;
}

std::vector<const CachedQuery*> QueryIndex::DigestMatches(
    std::uint64_t digest) const {
  std::vector<const CachedQuery*> out;
  auto [lo, hi] = by_digest_.equal_range(digest);
  for (auto it = lo; it != hi; ++it) {
    const auto eit = entries_.find(it->second);
    if (eit != entries_.end()) out.push_back(eit->second);
  }
  return out;
}

}  // namespace gcp
