// Feature index over cached queries.
//
// To exploit the cache, GC+ must discover — for each incoming query g —
// the cached queries g' with g ⊆ g' (subgraph case) and g'' with g'' ⊆ g
// (supergraph case). Verifying g against every cached query with an exact
// matcher would defeat the purpose, so the index keeps the monotone
// features of every resident query and applies the filter-then-verify
// pattern *to the cache itself* (the role iGQ [25] plays inside
// GraphCache): feature dominance shortlists candidates, the processors
// verify survivors with a matcher on query-sized graphs.

#ifndef GCP_CACHE_QUERY_INDEX_HPP_
#define GCP_CACHE_QUERY_INDEX_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.hpp"

namespace gcp {

/// \brief Index of resident cached queries by monotone features.
class QueryIndex {
 public:
  /// Registers an entry (entry storage is owned by the CacheManager and
  /// must outlive the index registration).
  void Insert(const CachedQuery* entry);

  /// Removes an entry by id; no-op if absent.
  void Erase(CacheEntryId id);

  /// Drops everything (EVI purge).
  void Clear();

  std::size_t size() const { return entries_.size(); }

  /// Cached queries that could CONTAIN `g` (candidates for g ⊆ g').
  /// Sound: never misses a true supergraph of g.
  std::vector<const CachedQuery*> SupergraphCandidates(
      const GraphFeatures& g) const;

  /// Cached queries that could BE CONTAINED in `g` (candidates for
  /// g'' ⊆ g). Sound: never misses a true subgraph of g.
  std::vector<const CachedQuery*> SubgraphCandidates(
      const GraphFeatures& g) const;

  /// Cached queries with WL digest `digest` (exact-match / dedup probes).
  std::vector<const CachedQuery*> DigestMatches(std::uint64_t digest) const;

 private:
  std::unordered_map<CacheEntryId, const CachedQuery*> entries_;
  std::unordered_multimap<std::uint64_t, CacheEntryId> by_digest_;
};

}  // namespace gcp

#endif  // GCP_CACHE_QUERY_INDEX_HPP_
