// Feature index over cached queries.
//
// To exploit the cache, GC+ must discover — for each incoming query g —
// the cached queries g' with g ⊆ g' (subgraph case) and g'' with g'' ⊆ g
// (supergraph case). Verifying g against every cached query with an exact
// matcher would defeat the purpose, so the index keeps the monotone
// features of every resident query and applies the filter-then-verify
// pattern *to the cache itself* (the role iGQ [25] plays inside
// GraphCache): feature dominance shortlists candidates, the processors
// verify survivors with a matcher on query-sized graphs.
//
// Discovery is served by an inverted feature-signature index: every
// resident entry is posted under a two-dimensional (vertex-count band,
// edge-count band) key together with a 64-bit label-set mask and its
// vertex/edge counts. A containment probe walks only the band buckets
// that can satisfy both count constraints — the edge dimension keeps the
// screen selective for populations where many residents share a vertex
// band (paper-scale residency and beyond) — screens each posting with
// three integer comparisons plus one mask test (a sound superset of the
// dominance candidates), and verifies survivors with the full
// CouldBeSubgraphOf dominance check — cost proportional to the
// candidates, not to the resident population. The legacy O(resident)
// scans remain available (*Scan) as the reference implementation for
// equivalence tests and before/after benchmarks; both paths return
// identical candidate sets.

#ifndef GCP_CACHE_QUERY_INDEX_HPP_
#define GCP_CACHE_QUERY_INDEX_HPP_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.hpp"

namespace gcp {

/// \brief Index of resident cached queries by monotone features.
class QueryIndex {
 public:
  /// Registers an entry (entry storage is owned by the CacheManager and
  /// must outlive the index registration).
  void Insert(const CachedQuery* entry);

  /// Removes an entry by id; no-op if absent.
  void Erase(CacheEntryId id);

  /// Drops everything (EVI purge).
  void Clear();

  std::size_t size() const { return entries_.size(); }

  /// Cached queries that could CONTAIN `g` (candidates for g ⊆ g').
  /// Sound: never misses a true supergraph of g.
  std::vector<const CachedQuery*> SupergraphCandidates(
      const GraphFeatures& g) const;

  /// Cached queries that could BE CONTAINED in `g` (candidates for
  /// g'' ⊆ g). Sound: never misses a true subgraph of g.
  std::vector<const CachedQuery*> SubgraphCandidates(
      const GraphFeatures& g) const;

  /// Brute-force reference implementations: scan every resident entry and
  /// apply the dominance check. Return exactly the same candidate sets as
  /// the indexed versions (asserted by the equivalence tests; also the
  /// "before" side of the discovery benchmarks).
  std::vector<const CachedQuery*> SupergraphCandidatesScan(
      const GraphFeatures& g) const;
  std::vector<const CachedQuery*> SubgraphCandidatesScan(
      const GraphFeatures& g) const;

  /// Cached queries with WL digest `digest` (exact-match / dedup probes).
  std::vector<const CachedQuery*> DigestMatches(std::uint64_t digest) const;

 private:
  /// One inverted-index posting: the screening features of a resident
  /// entry, flattened so a probe touches one contiguous array per band.
  struct Posting {
    const CachedQuery* entry;
    std::uint64_t label_mask;  ///< Bit l%64 set iff label l occurs.
    std::uint32_t num_vertices;
    std::uint32_t num_edges;
  };

  static std::uint64_t LabelMaskOf(const GraphFeatures& f);
  /// Band of a count: floor(log2(n)) (0 for n == 0) — monotone in n, so a
  /// count constraint translates into a band range.
  static std::uint32_t BandOf(std::uint32_t count);
  /// Composite ordered key: vertex band in the high 32 bits, edge band in
  /// the low 32 — map order is (vertex band, then edge band).
  static std::uint64_t BandKey(std::uint32_t vband, std::uint32_t eband) {
    return (static_cast<std::uint64_t>(vband) << 32) | eband;
  }
  static std::uint32_t VBandOf(std::uint64_t key) {
    return static_cast<std::uint32_t>(key >> 32);
  }
  static std::uint32_t EBandOf(std::uint64_t key) {
    return static_cast<std::uint32_t>(key);
  }

  /// (vertex band, edge band) → postings in insertion order (keeps
  /// candidate order deterministic across runs).
  std::map<std::uint64_t, std::vector<Posting>> bands_;
  std::unordered_map<CacheEntryId, const CachedQuery*> entries_;
  std::unordered_multimap<std::uint64_t, const CachedQuery*> by_digest_;
};

}  // namespace gcp

#endif  // GCP_CACHE_QUERY_INDEX_HPP_
