#include "cache/fragment_store.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "cache/cache_validator.hpp"
#include "common/alloc_fault.hpp"
#include "graph/canonical.hpp"

namespace gcp {

const CachedQuery* FragmentStore::Probe(std::uint64_t digest,
                                        const Graph& star) const {
  const auto it = by_digest_.find(digest);
  if (it == by_digest_.end() || !(*it->second->query == star)) return nullptr;
  return it->second.get();
}

CachedQuery* FragmentStore::FindMutable(std::uint64_t digest) {
  const auto it = by_digest_.find(digest);
  return it == by_digest_.end() ? nullptr : it->second.get();
}

Status FragmentStore::AdmitOrMerge(std::unique_ptr<CachedQuery> entry,
                                   std::uint64_t now,
                                   StatisticsManager& stats) {
  const auto it = by_digest_.find(entry->digest);
  if (it != by_digest_.end()) {
    CachedQuery& resident = *it->second;
    if (!(*resident.query == *entry->query)) {
      ++stats.fragment_digest_collisions;
      return Status::OK();
    }
    // Both sides are reconciled to the same watermark, so wherever both
    // are valid they agree; the offer's knowledge overwrites its covered
    // range and the valid sets union.
    const std::size_t horizon =
        std::max(resident.valid.size(), entry->valid.size());
    CacheValidator::ExtendEntry(resident, horizon);
    CacheValidator::ExtendEntry(*entry, horizon);
    resident.answer.AndNotWith(entry->valid);
    resident.answer.OrWith(DynamicBitset::And(entry->answer, entry->valid));
    resident.valid.OrWith(entry->valid);
    resident.last_used_at = now;
    ++stats.fragment_merges;
    // The merge can SET valid bits — the footprint must be recomputed to
    // stay a superset — and can grow the bitsets past the byte slice.
    if (maintain_relevance_index_) relevance_.Refresh(&resident);
    AccountRefresh(resident);
    EvictOverCapacity(stats);
    return Status::OK();
  }
  if (AllocationFaultFires(AllocSite::kFragmentAdmission,
                           ApproxEntryBytes(*entry))) {
    ++stats.alloc_failed_fragments;
    return Status::ResourceExhausted("fragment admission allocation failed");
  }
  entry->id = next_id_++;
  entry->admitted_at = now;
  entry->last_used_at = now;
  entry->in_window = false;
  CachedQuery* raw = entry.get();
  by_digest_.emplace(entry->digest, std::move(entry));
  if (maintain_relevance_index_) relevance_.Insert(raw);
  AccountAdmit(*raw);
  ++stats.fragment_admissions;
  EvictOverCapacity(stats);
  return Status::OK();
}

void FragmentStore::Credit(std::uint64_t digest, std::uint64_t pruned,
                           std::uint64_t now, StatisticsManager& stats) {
  CachedQuery* e = FindMutable(digest);
  if (e == nullptr) return;  // Evicted between read phase and drain.
  ++stats.fragment_hits;
  stats.fragment_candidates_pruned += pruned;
  StatisticsManager::RecordBenefit(*e, pruned, now);
}

void FragmentStore::Clear() {
  if (pressure_ != nullptr && entry_bytes_ != 0) {
    pressure_->AddBytes(-static_cast<std::int64_t>(entry_bytes_));
  }
  entry_bytes_ = 0;
  by_digest_.clear();
  relevance_.Clear();
}

void FragmentStore::ValidateAll(const ChangeCounters& counters,
                                std::size_t id_horizon,
                                StatisticsManager& stats) {
  stats.fragment_reconcile_touched += by_digest_.size();
  for (auto& [digest, e] : by_digest_) {
    CacheValidator::RefreshEntry(*e, counters, id_horizon);
    if (maintain_relevance_index_) relevance_.Refresh(e.get());
    AccountRefresh(*e);
  }
}

void FragmentStore::ValidateRelevant(const ChangeCounters& counters,
                                     std::size_t id_horizon,
                                     StatisticsManager& stats) {
  if (!maintain_relevance_index_) {
    ValidateAll(counters, id_horizon, stats);
    return;
  }
  for (auto& [digest, e] : by_digest_) {
    CacheValidator::ExtendEntry(*e, id_horizon);
    AccountRefresh(*e);
  }
  const RelevanceIndex::BatchFootprint batch =
      RelevanceIndex::FootprintOf(counters);
  std::uint64_t touched = 0;
  for (const CachedQuery* affected : relevance_.CollectAffected(batch)) {
    CachedQuery* e = FindMutable(affected->digest);
    if (e == nullptr) continue;
    CacheValidator::ApplyCounters(*e, counters);
    relevance_.Refresh(e);
    ++touched;
  }
  stats.fragment_reconcile_touched += touched;
  stats.fragment_reconcile_skipped += by_digest_.size() - touched;
}

void FragmentStore::PurgeForReconcile(StatisticsManager& stats) {
  stats.fragment_reconcile_touched += by_digest_.size();
  Clear();
}

std::vector<CachedQuery> FragmentStore::Export() const {
  std::vector<CachedQuery> out;
  out.reserve(by_digest_.size());
  for (const auto& [digest, e] : by_digest_) out.push_back(*e);
  return out;
}

void FragmentStore::Restore(std::vector<CachedQuery> entries,
                            StatisticsManager& stats) {
  Clear();
  // Identity is recomputed from the restored graphs — a checkpoint cannot
  // plant a digest its star does not hash to.
  for (CachedQuery& e : entries) {
    e.kind = CachedQueryKind::kSubgraph;
    e.features = GraphFeatures::Extract(*e.query);
    e.digest = WlDigest(*e.query);
    if (e.est_test_cost_ms <= 0.0) {
      e.est_test_cost_ms = StatisticsManager::StructuralCostEstimateMs(*e.query);
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const CachedQuery& a, const CachedQuery& b) {
                     if (a.tests_saved != b.tests_saved) {
                       return a.tests_saved > b.tests_saved;
                     }
                     return a.digest < b.digest;
                   });
  if (entries.size() > capacity_) entries.resize(capacity_);
  // Byte slice: keep the best tests_saved-per-byte prefix that fits, drop
  // the rest (counted). Selection is greedy over the per-byte ranking;
  // insertion keeps the legacy tests_saved order among survivors.
  std::vector<bool> keep(entries.size(), true);
  if (byte_budget_ > 0) {
    std::vector<std::size_t> order(entries.size());
    std::vector<std::uint64_t> bytes(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      order[i] = i;
      bytes[i] = ApproxEntryBytes(entries[i]);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const double sa =
                           static_cast<double>(entries[a].tests_saved) /
                           static_cast<double>(std::max<std::uint64_t>(
                               std::uint64_t{1}, bytes[a]));
                       const double sb =
                           static_cast<double>(entries[b].tests_saved) /
                           static_cast<double>(std::max<std::uint64_t>(
                               std::uint64_t{1}, bytes[b]));
                       return sa > sb;
                     });
    std::uint64_t kept_bytes = 0;
    for (const std::size_t i : order) {
      if (kept_bytes + bytes[i] <= byte_budget_) {
        kept_bytes += bytes[i];
      } else {
        keep[i] = false;
        ++stats.restore_budget_dropped;
      }
    }
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!keep[i]) continue;
    CachedQuery& e = entries[i];
    if (by_digest_.count(e.digest) != 0) continue;  // Twin stars: keep best.
    auto owned = std::make_unique<CachedQuery>(std::move(e));
    owned->id = next_id_++;
    owned->in_window = false;
    CachedQuery* raw = owned.get();
    by_digest_.emplace(owned->digest, std::move(owned));
    if (maintain_relevance_index_) relevance_.Insert(raw);
    AccountAdmit(*raw);
    ++stats.restored_fragments;
  }
}

std::uint64_t FragmentStore::ApproxBytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [digest, e] : by_digest_) {
    bytes += ApproxGraphBytes(*e->query) +
             8 * (e->answer.num_words() + e->valid.num_words());
  }
  assert(bytes == entry_bytes_ &&
         "fragment byte gauge drifted from recompute");
  return bytes + relevance_.ApproxBytes();
}

void FragmentStore::AccountAdmit(CachedQuery& e) {
  e.approx_bytes = ApproxEntryBytes(e);
  entry_bytes_ += e.approx_bytes;
  if (pressure_ != nullptr) {
    pressure_->AddBytes(static_cast<std::int64_t>(e.approx_bytes));
  }
}

void FragmentStore::AccountEvict(const CachedQuery& e) {
  entry_bytes_ -= e.approx_bytes;
  if (pressure_ != nullptr) {
    pressure_->AddBytes(-static_cast<std::int64_t>(e.approx_bytes));
  }
}

void FragmentStore::AccountRefresh(CachedQuery& e) {
  const std::uint64_t fresh = ApproxEntryBytes(e);
  if (fresh == e.approx_bytes) return;
  entry_bytes_ += fresh - e.approx_bytes;  // unsigned wrap-around is exact
  if (pressure_ != nullptr) {
    pressure_->AddBytes(static_cast<std::int64_t>(fresh) -
                        static_cast<std::int64_t>(e.approx_bytes));
  }
  e.approx_bytes = fresh;
}

void FragmentStore::EvictOverCapacity(StatisticsManager& stats) {
  while (by_digest_.size() > capacity_) {
    auto victim = by_digest_.begin();
    for (auto it = std::next(by_digest_.begin()); it != by_digest_.end();
         ++it) {
      if (it->second->last_used_at < victim->second->last_used_at) victim = it;
    }
    AccountEvict(*victim->second);
    relevance_.Erase(victim->second->id);
    by_digest_.erase(victim);
    ++stats.fragment_evictions;
  }
  if (byte_budget_ == 0) return;
  // Byte pass: evict the worst tests_saved-per-byte fragment until the
  // slice fits. Ties break least-recently-used first, then map (digest)
  // order — deterministic across runs and shard counts.
  while (entry_bytes_ > byte_budget_ && !by_digest_.empty()) {
    const auto score = [](const CachedQuery& e) {
      return static_cast<double>(e.tests_saved) /
             static_cast<double>(
                 std::max<std::uint64_t>(std::uint64_t{1}, e.approx_bytes));
    };
    auto victim = by_digest_.begin();
    for (auto it = std::next(by_digest_.begin()); it != by_digest_.end();
         ++it) {
      const double s = score(*it->second);
      const double v = score(*victim->second);
      if (s < v ||
          (s == v && it->second->last_used_at < victim->second->last_used_at)) {
        victim = it;
      }
    }
    AccountEvict(*victim->second);
    relevance_.Erase(victim->second->id);
    by_digest_.erase(victim);
    ++stats.fragment_evictions;
    ++stats.fragment_byte_evictions;
  }
}

}  // namespace gcp
