#include "cache/statistics.hpp"

namespace gcp {

double StatisticsManager::SquaredCoV(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  return var / (mean * mean);
}

double StatisticsManager::StructuralCostEstimateMs(const Graph& query) {
  // Sub-iso test cost grows with the size of the search tree, which is
  // driven by query vertices and edges; the constants keep the estimate in
  // the same unit range as measured averages on molecule-sized targets.
  return 0.01 * static_cast<double>(query.NumVertices()) +
         0.005 * static_cast<double>(query.NumEdges());
}

void StatisticsManager::RecordBenefit(CachedQuery& entry,
                                      std::uint64_t tests_saved,
                                      std::uint64_t now) {
  RecordBenefitSum(entry, tests_saved, 1, now);
}

void StatisticsManager::RecordBenefitSum(CachedQuery& entry,
                                         std::uint64_t tests_saved,
                                         std::uint64_t hit_count,
                                         std::uint64_t now) {
  entry.tests_saved += tests_saved;
  entry.hits += hit_count;
  entry.last_used_at = now;
}

}  // namespace gcp
