// Change-relevance index — the reconciliation sibling of QueryIndex.
//
// CON/EVI reconciliation used to walk every resident entry per change
// batch (CacheManager::ValidateAll), even when the batch touched three
// dataset graphs out of millions. This index routes each change batch to
// only the entries it can affect, the way discrimination networks route
// changes to the patterns they feed:
//
//   * Every resident entry carries a word-granular *footprint* of its
//     CGvalid indicator: bit b of `pos` (resp. `neg`) marks that valid
//     word b — dataset graphs [64b, 64b+64) — holds at least one
//     valid-positive (resp. valid-negative) answer bit.
//   * Inverted postings map each occupied word-block to the entry ids
//     whose footprint covers it, maintained on admit / evict / purge /
//     restore.
//   * A change batch (Algorithm 1's ChangeCounters) projects onto the
//     same word grid, split by op class: `mixed` blocks (graphs with
//     structural or mixed UA+UR ops — these clear any valid bit),
//     `ua` blocks (UA-exclusive graphs — clear only the polarity a
//     UA-exclusive batch does not preserve) and `ur` blocks (the
//     inverse). Intersecting the batch masks against an entry's
//     polarity-matched footprint decides whether Algorithm 2 could
//     mutate the entry at all.
//
// Soundness: Algorithm 2 only resizes indicators (new bits false) and
// *clears* valid bits, so an entry whose polarity-matched footprint does
// not intersect the batch keeps every CGvalid bit untouched by
// construction — skipping it is bit-exact, not approximate. Footprints
// are maintained as supersets (clears never require a footprint update;
// anything that *sets* valid bits — retrospective refresh, delta
// re-validation, restore — must call Refresh). Block granularity and
// staleness only produce false positives, which merely run a no-op
// Algorithm 2 pass over that entry.

#ifndef GCP_CACHE_RELEVANCE_INDEX_HPP_
#define GCP_CACHE_RELEVANCE_INDEX_HPP_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.hpp"
#include "dataset/log_analyzer.hpp"
#include "graph/features.hpp"

namespace gcp {

/// Hashed mask of every edge-label pair of a query's features — the
/// query-side operand of the delta re-validation screen (same hash as
/// the batch-side EdgeLabelPairBit masks).
std::uint64_t EdgeLabelPairMaskOf(const GraphFeatures& features);

/// \brief Inverted change→entry relevance index over one cache store.
class RelevanceIndex {
 public:
  /// Word-granular footprint of one resident entry's CGvalid indicator
  /// (a superset of the truth; see file comment).
  struct Footprint {
    const CachedQuery* entry = nullptr;
    std::vector<std::uint64_t> pos;  ///< blocks holding valid ∧ answer bits
    std::vector<std::uint64_t> neg;  ///< blocks holding valid ∧ ¬answer bits
  };

  /// One change batch projected onto the word grid, split by the op class
  /// Algorithm 2 dispatches on.
  struct BatchFootprint {
    std::vector<std::uint64_t> mixed;  ///< structural / mixed-op graphs
    std::vector<std::uint64_t> ua;     ///< UA-exclusive graphs
    std::vector<std::uint64_t> ur;     ///< UR-exclusive graphs

    bool empty() const;
  };

  /// Projects Algorithm 1's counters onto the block grid.
  static BatchFootprint FootprintOf(const ChangeCounters& counters);

  /// Registers `entry` with a footprint computed from its current
  /// bitsets. The pointer must stay valid until Erase/Clear.
  void Insert(const CachedQuery* entry);

  /// Drops `id` and its postings (no-op when absent).
  void Erase(CacheEntryId id);

  /// Drops everything (EVI purge / restore preamble).
  void Clear();

  /// Recomputes `entry`'s footprint from its current bitsets. Required
  /// after any mutation that may SET validity bits; also re-tightens a
  /// footprint after Algorithm 2 cleared bits. No-op when `entry` is not
  /// indexed.
  void Refresh(const CachedQuery* entry);

  /// Entries whose polarity-matched footprint intersects the batch — a
  /// superset of the entries Algorithm 2 could mutate — ascending by
  /// entry id (deterministic refresh order).
  std::vector<const CachedQuery*> CollectAffected(
      const BatchFootprint& batch) const;

  std::size_t size() const { return entries_.size(); }

  /// ~Bytes of the index's own state: per-entry polarity masks plus the
  /// inverted postings (the posting_bytes category of ApproxByteFootprint).
  std::uint64_t ApproxBytes() const {
    std::uint64_t bytes = 0;
    for (const auto& [id, fp] : entries_) {
      bytes += sizeof(CacheEntryId) + 8 * (fp.pos.size() + fp.neg.size());
    }
    for (const auto& [block, ids] : postings_) {
      bytes += sizeof(std::uint32_t) + sizeof(CacheEntryId) * ids.size();
    }
    return bytes;
  }

  /// Introspection for tests: footprint of `id` (nullptr when absent) and
  /// the sorted posting list of word-block `block` (nullptr when empty).
  const Footprint* footprint(CacheEntryId id) const;
  const std::vector<CacheEntryId>* postings(std::uint32_t block) const;

 private:
  static void ComputeMasks(const CachedQuery& e, std::vector<std::uint64_t>* pos,
                           std::vector<std::uint64_t>* neg);
  static bool Affected(const Footprint& fp, const BatchFootprint& batch);

  void AddPostings(CacheEntryId id, const Footprint& fp);
  void RemovePostings(CacheEntryId id, const Footprint& fp);

  std::unordered_map<CacheEntryId, Footprint> entries_;
  /// Word-block → sorted resident entry ids whose footprint covers it.
  std::map<std::uint32_t, std::vector<CacheEntryId>> postings_;
};

}  // namespace gcp

#endif  // GCP_CACHE_RELEVANCE_INDEX_HPP_
