// Cache snapshot persistence: save a warm GC+ cache and restore it in a
// later process, skipping the cold-start window the paper pays on every
// run ("one window before starting measuring").
//
// A snapshot records the dataset-log watermark it was consistent with.
// On load, the runtime resumes from that watermark: the first query's
// Dataset-Manager sync replays the incremental change-log suffix through
// Algorithms 1 + 2 (CON) or purges (EVI), so restoring a *stale* snapshot
// is exactly as safe as having kept the process alive.

#ifndef GCP_CACHE_SNAPSHOT_HPP_
#define GCP_CACHE_SNAPSHOT_HPP_

#include <iosfwd>
#include <string>
#include <vector>

#include "cache/cache_entry.hpp"
#include "common/status.hpp"
#include "dataset/change.hpp"

namespace gcp {

/// \brief Serializable image of the resident cache.
struct CacheSnapshot {
  /// Change-log sequence the entries' validity is consistent with.
  LogSeq watermark = 0;
  /// Dataset id horizon at save time (sanity check on load).
  std::uint64_t id_horizon = 0;
  std::vector<CachedQuery> entries;
  /// One-hop fragment entries (v2 payload; empty when restored from v1 —
  /// the fragment store rebuilds cold, which only costs pruning power).
  std::vector<CachedQuery> fragments;
};

/// Newest snapshot format: v2 = v1 plus a fragment section.
inline constexpr int kCacheSnapshotVersion = 2;

/// Writes `snapshot` as a versioned text stream. `version` selects the
/// format (1 or 2); v1 drops the fragment section, which lets tests and
/// downgrade tooling author authentic old-format bytes.
void WriteCacheSnapshot(std::ostream& os, const CacheSnapshot& snapshot,
                        int version = kCacheSnapshotVersion);

/// Parses a snapshot stream (v1 or v2); rejects unknown versions and
/// malformed records with Corruption.
Result<CacheSnapshot> ReadCacheSnapshot(std::istream& is);

/// File convenience wrappers.
Status WriteCacheSnapshotToFile(const std::string& path,
                                const CacheSnapshot& snapshot);
Result<CacheSnapshot> ReadCacheSnapshotFromFile(const std::string& path);

}  // namespace gcp

#endif  // GCP_CACHE_SNAPSHOT_HPP_
