// Cache Manager subsystem (paper §4): owns the Cache and Window stores,
// the Statistics Manager, the replacement machinery and the Cache
// Validator hook.
//
// Admission control follows GraphCache: newly executed queries are batched
// into a Window (default 20); when the window fills, window entries and
// cache residents are ranked together by the configured replacement policy
// and the best `cache_capacity` (default 100) survive in the cache.
// Queries in *both* stores serve cache hits (paper §4: "cached
// graphs/queries by default cover those previous queries in both cache and
// window").
//
// Thread model: the CacheManager itself is not synchronized. The engine
// (core/graphcache_plus) guarantees that every const member runs under a
// shared lock and every mutating member under the exclusive lock; const
// members therefore never touch mutable state.

#ifndef GCP_CACHE_CACHE_MANAGER_HPP_
#define GCP_CACHE_CACHE_MANAGER_HPP_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/cache_entry.hpp"
#include "cache/cache_validator.hpp"
#include "cache/fragment_store.hpp"
#include "cache/query_index.hpp"
#include "cache/relevance_index.hpp"
#include "cache/replacement.hpp"
#include "cache/statistics.hpp"
#include "common/pressure.hpp"
#include "common/status.hpp"
#include "dataset/log_analyzer.hpp"

namespace gcp {

/// Configuration of the cache stores.
struct CacheManagerOptions {
  std::size_t cache_capacity = 100;   ///< Paper default.
  std::size_t window_capacity = 20;   ///< Paper default.
  ReplacementPolicy policy = ReplacementPolicy::kHybrid;
  std::uint64_t rng_seed = 7;         ///< For the RANDOM policy only.
  /// Maintain the change-relevance index (footprints + postings) across
  /// admissions/evictions so ValidateRelevant can screen reconciles. Off
  /// on the brute-force oracle path so its cost stays visible in benches.
  bool maintain_relevance_index = true;
  /// Capacity of the embedded one-hop fragment store (0 disables it).
  std::size_t fragment_capacity = 256;
  /// Byte-accounted capacity cap over this store's resident graph+bitset
  /// footprint (0 = off: the entry-count model, bit-exact legacy). When
  /// on, 1/8 of the budget is carved out for the fragment store (when
  /// enabled) and the rest bounds the whole-query stores; evictions the
  /// budget forces rank by utility-per-byte. The entry/window count caps
  /// still apply — the budget only ever evicts *more*, so a budget that
  /// never binds replays the entry-count engine bit-exactly.
  std::size_t byte_budget = 0;
  /// Optional pressure monitor mirroring this store's byte gauge (shared
  /// across shards; not owned). Null = no pressure derivation.
  PressureMonitor* pressure = nullptr;
};

/// How a cache entry contributed to a query — determines which per-entry
/// and global hit counters a deferred credit bumps.
enum class HitKind : std::uint8_t {
  kExact,       ///< §6.3 case 1: isomorphic resident query.
  kEmptyProof,  ///< §6.3 case 2: fully-valid empty-answer proof.
  kSub,         ///< Positive transfer (new query ⊆ cached query).
  kSuper,       ///< Pruning transfer (cached query ⊆ new query).
};

/// \brief Cache + Window stores with admission, replacement, validation.
class CacheManager {
 public:
  explicit CacheManager(CacheManagerOptions options);

  /// Admits a freshly executed query into the window. May trigger a
  /// window→cache merge (replacement) when the window becomes full.
  /// Returns the assigned entry id, or ResourceExhausted when the
  /// allocation-fault injector refused the admission (the cache simply
  /// doesn't learn the query; correctness is unaffected).
  Result<CacheEntryId> Admit(Graph query, CachedQueryKind kind,
                             DynamicBitset answer, DynamicBitset valid,
                             std::uint64_t now, double est_test_cost_ms);

  /// Like Admit, but never merges: the concurrent engine batches queued
  /// admissions and runs replacement once per maintenance drain (via
  /// MaybeMergeWindow).
  Result<CacheEntryId> AdmitDeferred(Graph query, CachedQueryKind kind,
                                     DynamicBitset answer, DynamicBitset valid,
                                     std::uint64_t now,
                                     double est_test_cost_ms);

  /// Builds an admission-ready entry (features and WL digest extracted,
  /// snapshots moved in) without touching any store — the part of
  /// admission that can run off the exclusive lock. The shared graph is
  /// handed over exactly once; no copy or re-wrap happens downstream.
  static std::unique_ptr<CachedQuery> PrepareEntry(
      std::shared_ptr<const Graph> query, CachedQueryKind kind,
      DynamicBitset answer, DynamicBitset valid, double est_test_cost_ms);

  /// Window-admits an entry from PrepareEntry; only id assignment,
  /// timestamps and index registration happen here. Never merges.
  /// Returns the assigned id, or ResourceExhausted when the
  /// allocation-fault injector fired for this admission (the entry is
  /// dropped; no store state changes).
  Result<CacheEntryId> AdmitPrepared(std::unique_ptr<CachedQuery> entry,
                                     std::uint64_t now);

  /// Runs the window→cache merge iff the window reached capacity — the
  /// once-per-drain replacement step paired with AdmitDeferred.
  void MaybeMergeWindow();

  /// EVI purge: drops every resident entry (cache and window).
  void Clear();

  /// EVI *reconcile* purge: Clear() plus reconcile accounting (every
  /// resident entry counts as touched — an EVI purge is indiscriminate
  /// by definition). Restore paths call Clear() directly so snapshot
  /// loading never pollutes the reconciliation counters.
  void PurgeForReconcile();

  /// CON validation: applies Algorithm 2 to every resident entry — the
  /// brute-force oracle. Every resident entry counts as touched; skipped
  /// stays 0. `delta` optionally enables delta re-validation per
  /// invalidated (entry, graph) pair.
  void ValidateAll(const ChangeCounters& counters, std::size_t id_horizon,
                   const CacheValidator::DeltaRevalidateFn* delta = nullptr);

  /// CON validation through the change-relevance index: extends every
  /// resident indicator to `id_horizon`, then runs Algorithm 2's counter
  /// loop only over entries whose footprint intersects the batch —
  /// bit-exact vs ValidateAll by construction (the screen only skips
  /// entries no counter can mutate). Touched/skipped accounting per
  /// call: touched + skipped == resident. Requires
  /// options().maintain_relevance_index.
  void ValidateRelevant(const ChangeCounters& counters, std::size_t id_horizon,
                        const CacheValidator::DeltaRevalidateFn* delta =
                            nullptr);

  /// Recomputes `id`'s relevance footprint from its current bitsets.
  /// Must be called after any path that SETS validity bits outside the
  /// validator (retrospective refresh §8) so footprints stay supersets.
  void RefreshRelevanceFootprint(CacheEntryId id);

  /// Aligns every resident indicator/answer to `id_horizon` without
  /// consuming counters (used when only ADDs happened — subsumed by
  /// ValidateAll, kept for introspection in tests).
  void ExtendAll(std::size_t id_horizon);

  /// Records that entry `id` alleviated `tests_saved` sub-iso tests.
  void RecordBenefit(CacheEntryId id, std::uint64_t tests_saved,
                     std::uint64_t now);

  /// Applies one deferred hit credit: RecordBenefit plus the per-entry and
  /// global counters for `kind`. `zero_test_exact` marks an exact hit that
  /// required no sub-iso test at all. No-op (except the global counters,
  /// which record that the hit happened) when the entry was evicted
  /// between discovery and drain.
  void CreditHit(CacheEntryId id, HitKind kind, std::uint64_t tests_saved,
                 std::uint64_t now, bool zero_test_exact = false);

  /// All hit credits one maintenance drain produced for a single entry,
  /// summed so the exclusive-lock section applies one update per entry
  /// instead of one per hit. Equivalent to the matching CreditHit
  /// sequence: `tests_saved` is the benefit sum, `hit_count` the number of
  /// credits, `last_used` the `now` of the last credit in drain order.
  struct EntryCreditSum {
    CacheEntryId id = 0;
    std::uint64_t tests_saved = 0;
    std::uint64_t hit_count = 0;
    std::uint64_t last_used = 0;
    std::uint32_t exact = 0;
    std::uint32_t empty_proof = 0;
    std::uint32_t sub = 0;
    std::uint32_t super = 0;
    std::uint32_t zero_test_exact = 0;
  };

  /// Applies a batch of per-entry credit sums (one entry lookup and one
  /// counter update per entry per drain).
  void CreditHitsBatched(const std::vector<EntryCreditSum>& credits);

  /// O(1) entry lookup via the id→entry map; nullptr when not resident.
  const CachedQuery* Find(CacheEntryId id) const;

  /// Mutable entry lookup (hit-kind counters); nullptr when not resident.
  CachedQuery* FindMutable(CacheEntryId id);

  /// Ids of all resident entries (cache first, then window), most useful
  /// first within each store (by R) — the order retrospective validation
  /// spends its budget in.
  std::vector<CacheEntryId> ResidentIdsByBenefit() const;

  /// Feature index over all resident entries.
  const QueryIndex& index() const { return index_; }

  /// Change-relevance index over all resident entries (empty when
  /// maintain_relevance_index is off).
  const RelevanceIndex& relevance_index() const { return relevance_; }

  /// Embedded one-hop fragment store. Shares this store's lock discipline
  /// and watermark; Clear/PurgeForReconcile/ValidateAll/ValidateRelevant
  /// cover it automatically.
  FragmentStore& fragments() { return fragments_; }
  const FragmentStore& fragments() const { return fragments_; }

  /// Copies of every resident fragment — the fragment payload of a v2
  /// cache snapshot.
  std::vector<CachedQuery> ExportFragments() const {
    return fragments_.Export();
  }

  /// Replaces the fragment store's contents (restore path; call after
  /// RestoreEntries, whose Clear() wipes fragments too).
  void RestoreFragments(std::vector<CachedQuery> entries) {
    fragments_.Restore(std::move(entries), stats_);
  }

  /// Approximate resident byte footprint of this store, by category.
  /// In debug builds asserts the from-scratch graph+bitset sum against the
  /// incrementally maintained gauge (drift = an accounting bug).
  ApproxByteFootprint ApproxBytes() const;

  /// Incrementally maintained graph+bitset bytes of the whole-query stores
  /// (cache + window). Always maintained, budget on or off.
  std::uint64_t approx_entry_bytes() const { return entry_bytes_; }

  /// The whole-query slice of the byte budget (0 = budget off). The
  /// fragment slice lives in fragments().byte_budget().
  std::uint64_t entry_byte_budget() const { return entry_byte_budget_; }

  /// Re-accounts `id`'s byte footprint after an out-of-store mutation that
  /// may have resized its bitsets (the engine validates stale admission
  /// offers directly via CacheValidator::RefreshEntry). No-op for
  /// non-resident ids.
  void NoteEntryBytesChanged(CacheEntryId id);

  std::size_t cache_size() const { return cache_.size(); }
  std::size_t window_size() const { return window_.size(); }
  std::size_t resident() const { return cache_.size() + window_.size(); }

  const CacheManagerOptions& options() const { return options_; }
  StatisticsManager& stats() { return stats_; }
  const StatisticsManager& stats() const { return stats_; }

  /// Change-log position this store's validity state is reconciled to.
  /// Under the epoch engine each shard advances independently (shard-local
  /// CON/EVI reconciliation); under the lock engine every shard tracks the
  /// engine watermark. Guarded by this store's shard lock.
  LogSeq watermark() const { return watermark_; }
  void set_watermark(LogSeq w) { watermark_ = w; }

  /// Policy the last merge actually applied (HD resolves to PIN or PINC).
  ReplacementPolicy last_effective_policy() const { return last_effective_; }

  /// Calls `fn(const CachedQuery&)` for every resident entry.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& e : cache_) fn(*e);
    for (const auto& e : window_) fn(*e);
  }

  /// Forces the window→cache merge immediately (exposed for tests).
  void MergeWindowIntoCache();

  /// Copies every resident entry (cache store first, then window) — the
  /// payload of a cache snapshot. Entry copies alias the shared query
  /// graphs, so exporting is bitsets + metadata, not graph deep copies.
  std::vector<CachedQuery> ExportEntries() const;

  /// Replaces the resident contents with `entries` (fresh ids are
  /// assigned; at most cache_capacity entries are kept, best R first; all
  /// land in the cache store). Used when restoring a snapshot. Relevance
  /// footprints are rebuilt from the restored bitsets, the replacement RNG
  /// is re-seeded, and the first reconcile after the restore re-checks the
  /// touched + skipped == resident balance over the restored population.
  void RestoreEntries(std::vector<CachedQuery> entries);

  /// True between a RestoreEntries call and the first reconcile after it —
  /// exposed so restart tests can confirm the post-restore balance check
  /// actually ran.
  bool restore_balance_check_pending() const {
    return restore_balance_check_pending_;
  }

 private:
  /// Sets `e.approx_bytes` from ApproxEntryBytes and adds it to the
  /// running gauge (and the pressure monitor, when attached).
  void AccountAdmit(CachedQuery& e);
  /// Subtracts `e.approx_bytes` from the gauge (eviction / purge).
  void AccountEvict(const CachedQuery& e);
  /// Re-measures `e` and applies the delta (bitset growth on validate).
  void AccountRefresh(CachedQuery& e);
  /// Byte pass of the capacity model: while the whole-query stores exceed
  /// their budget slice, evicts worst utility-per-byte residents. No-op
  /// when the budget is off or not exceeded — in particular it consumes no
  /// RNG state, so a never-binding budget replays the entry-count engine
  /// bit-exactly even under the RANDOM policy. Callers run it right after
  /// a merge, when the window is empty.
  void EnforceByteBudget();

  CacheManagerOptions options_;
  std::vector<std::unique_ptr<CachedQuery>> cache_;
  std::vector<std::unique_ptr<CachedQuery>> window_;
  /// Id→entry map over both stores, kept in sync by AdmitDeferred /
  /// MergeWindowIntoCache / Clear / RestoreEntries. Backs the O(1)
  /// Find/FindMutable on the per-hit RecordBenefit path.
  std::unordered_map<CacheEntryId, CachedQuery*> by_id_;
  QueryIndex index_;
  RelevanceIndex relevance_;
  FragmentStore fragments_;
  StatisticsManager stats_;
  Rng rng_;
  CacheEntryId next_id_ = 1;
  /// Running graph+bitset bytes of cache_ + window_ (mirror of the sum of
  /// resident approx_bytes; asserted against a recompute in ApproxBytes).
  std::uint64_t entry_bytes_ = 0;
  /// Whole-query slice of options_.byte_budget (budget minus the fragment
  /// carve-out); 0 when the budget is off.
  std::uint64_t entry_byte_budget_ = 0;
  LogSeq watermark_ = 0;
  ReplacementPolicy last_effective_ = ReplacementPolicy::kHybrid;
  /// Armed by RestoreEntries, consumed by the next reconcile: the first
  /// post-restore drain re-verifies that the relevance screen's
  /// touched/skipped split covers exactly the restored population.
  bool restore_balance_check_pending_ = false;
};

}  // namespace gcp

#endif  // GCP_CACHE_CACHE_MANAGER_HPP_
