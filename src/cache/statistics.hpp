// Statistics Manager — metadata backing the replacement policies
// (paper §4, §7.1 "Cache Replacement Policy").
//
// PIN ranks entries by R (sub-iso tests alleviated); PINC by R weighted
// with an estimated per-test cost C; HD (hybrid) picks between them at
// eviction time using the squared coefficient of variation of the R
// distribution: CoV² = Var/Mean² > 1 → high variability → PIN, else PINC.

#ifndef GCP_CACHE_STATISTICS_HPP_
#define GCP_CACHE_STATISTICS_HPP_

#include <cstdint>
#include <vector>

#include "cache/cache_entry.hpp"
#include "graph/graph.hpp"

namespace gcp {

/// \brief Aggregate statistics over cache entries.
class StatisticsManager {
 public:
  /// Squared coefficient of variation (Var/Mean²) of the entries' R
  /// values. Returns 0 for fewer than two entries or an all-zero mean.
  static double SquaredCoV(const std::vector<double>& values);

  /// Heuristic per-sub-iso-test cost (ms) of a query when no measurement
  /// is available: grows with query size (after [25] GC+ estimates cost
  /// from structural properties).
  static double StructuralCostEstimateMs(const Graph& query);

  /// Records that `entry` alleviated `tests_saved` sub-iso tests at
  /// workload position `now`.
  static void RecordBenefit(CachedQuery& entry, std::uint64_t tests_saved,
                            std::uint64_t now);

  /// Batched form: `hit_count` RecordBenefit calls summing `tests_saved`,
  /// the last at workload position `now`. Kept here so the per-credit and
  /// per-drain paths can never diverge on benefit accounting.
  static void RecordBenefitSum(CachedQuery& entry, std::uint64_t tests_saved,
                               std::uint64_t hit_count, std::uint64_t now);

  // --- Global counters (reported by the hit-anatomy bench) ---------------
  std::uint64_t total_exact_hits = 0;
  std::uint64_t total_exact_hits_zero_test = 0;
  std::uint64_t total_sub_hits = 0;
  std::uint64_t total_super_hits = 0;
  std::uint64_t total_empty_shortcuts = 0;
  std::uint64_t total_tests_saved = 0;
  std::uint64_t total_admissions = 0;
  /// Drain-time twin drops: admission offers rejected because an
  /// isomorphic, fully-valid resident already covers the query.
  std::uint64_t total_admission_dedups = 0;
  std::uint64_t total_evictions = 0;
  std::uint64_t total_cache_clears = 0;  ///< EVI purges.
  std::uint64_t total_retro_refreshes = 0;  ///< Retrospective re-tests (§8).

  // --- Epoch-engine counters (engine-level; per-shard stores report 0,
  // the engine overlays them onto aggregated snapshots) ------------------
  /// Immutable EngineSnapshots published through the atomic pointer.
  std::uint64_t snapshots_published = 0;
  /// Completed epoch grace periods (retired snapshots reclaimed behind
  /// them).
  std::uint64_t epochs_retired = 0;
  /// Engine-lock acquisitions made by query read phases — zero under
  /// --epoch (asserted by the epoch stress suite), >= 1 per query on the
  /// lock path.
  std::uint64_t read_phase_engine_lock_acquisitions = 0;
  /// Copy-on-write clones of the FTV summary vector — one per
  /// FTV-mutating sync batch; snapshot publishes alias the vector and
  /// never add to this.
  std::uint64_t snapshot_summary_copies = 0;
  /// Survivor Graphs deep-copied under a shard lock by hit discovery —
  /// zero when survivors share ownership of the resident graph (the
  /// default), > 0 only on the copy_discovery_survivors oracle path.
  std::uint64_t shard_lock_graph_copies = 0;

  // --- Durability counters (checkpointing + warm restart). The
  // checkpoint_* group is engine-level (the engine overlays it onto
  // aggregated snapshots, like the epoch counters); restored_entries is
  // per-shard. ------------------------------------------------------------
  /// Checkpoints durably committed (tmp → fsync → rename completed).
  std::uint64_t checkpoints_written = 0;
  /// Checkpoint attempts that failed on any I/O step (the tmp file, if
  /// any, is left behind as a crash would leave it).
  std::uint64_t checkpoints_failed = 0;
  /// Background attempts made while recovering from a failure (backoff
  /// retries; a first failure is counted in checkpoints_failed only).
  std::uint64_t checkpoints_retried = 0;
  /// Bytes of committed checkpoint files.
  std::uint64_t checkpoint_bytes = 0;
  /// Wall time spent exporting + writing checkpoints.
  std::uint64_t t_checkpoint_ns = 0;
  /// Successful warm restarts (a checkpoint was loaded and applied).
  std::uint64_t warm_restarts = 0;
  /// Checkpoint siblings rejected during restart (corrupt / truncated /
  /// wrong lineage) before last-good or cold start was reached.
  std::uint64_t warm_restart_rejected = 0;
  /// Entries re-admitted into the stores by snapshot/checkpoint restores.
  std::uint64_t restored_entries = 0;

  // --- Reconciliation counters (change-relevance index + delta
  // re-validation). Per reconcile event, touched + skipped == resident;
  // with the relevance index off every resident entry is touched and
  // skipped stays 0. ---------------------------------------------------
  /// Resident entries Algorithm 2 actually ran over during CON
  /// reconciliation (or purged by an EVI reconcile).
  std::uint64_t reconcile_entries_touched = 0;
  /// Resident entries the relevance index proved unaffected by the change
  /// batch — their CGvalid bits were left untouched by construction.
  std::uint64_t reconcile_entries_skipped = 0;
  /// (entry, dataset-graph) bits Algorithm 2 would have cleared that the
  /// delta screen proved unchanged and kept valid.
  std::uint64_t delta_revalidations = 0;
  /// Delta-screen fallbacks: full Method M containment re-checks of one
  /// (entry, dataset-graph) pair whose delta was undecidable.
  std::uint64_t delta_fallback_full_checks = 0;

  // --- Fragment-cache counters (one-hop sub-pattern store). Reconcile
  // accounting is kept separate from the entry counters above so the
  // touched + skipped == resident balance over *entries* stays exact. ----
  /// Fragment entries admitted fresh into a fragment store.
  std::uint64_t fragment_admissions = 0;
  /// Offers merged into an already-resident fragment (valid/answer union).
  std::uint64_t fragment_merges = 0;
  /// Fragment entries evicted past fragment_capacity (oldest-used first).
  std::uint64_t fragment_evictions = 0;
  /// Offers dropped because a *different* star already owns the digest —
  /// true WL collisions, expected to stay at (or very near) zero.
  std::uint64_t fragment_digest_collisions = 0;
  /// Drain-time credits: queries whose candidate set a resident fragment
  /// actually shrank (one per contributing fragment per query).
  std::uint64_t fragment_hits = 0;
  /// Method M candidates removed by fragment-bitset intersection, summed.
  std::uint64_t fragment_candidates_pruned = 0;
  /// Fragment entries a reconcile ran Algorithm 2 over (or EVI-purged).
  std::uint64_t fragment_reconcile_touched = 0;
  /// Fragment entries the relevance screen proved unaffected.
  std::uint64_t fragment_reconcile_skipped = 0;
  /// Fragment entries re-admitted by snapshot/checkpoint restores.
  std::uint64_t restored_fragments = 0;

  // --- Overload / byte-budget counters (PR 10). The shed, drain and
  // pressure groups are engine-level (overlaid like the epoch counters);
  // the byte-eviction, alloc-failure and restore-drop groups are
  // per-shard. ----------------------------------------------------------
  /// Admission offers shed at ELEVATED/CRITICAL pressure — counted at the
  /// read phase and never queued (whole-query and fragment offers both).
  std::uint64_t admission_offers_shed = 0;
  /// MPSC TryPush failures that fell back to an inline backpressure drain
  /// of the full shard queue on the producer thread.
  std::uint64_t backpressure_inline_drains = 0;
  /// Overall pressure-tier ascents into ELEVATED (from NORMAL).
  std::uint64_t pressure_elevated_transitions = 0;
  /// Overall pressure-tier ascents into CRITICAL.
  std::uint64_t pressure_critical_transitions = 0;
  /// Queries served straight through uncached Method M because the read
  /// phase sampled CRITICAL pressure (discovery + fragment tier skipped).
  std::uint64_t pressure_bypassed_queries = 0;
  /// Whole-query evictions forced by the byte budget (the utility-per-byte
  /// pass, beyond any entry-count-cap evictions).
  std::uint64_t byte_budget_evictions = 0;
  /// Fragment evictions forced by the fragment slice of the byte budget.
  std::uint64_t fragment_byte_evictions = 0;
  /// Whole-query admissions refused by an injected allocation fault.
  std::uint64_t alloc_failed_admissions = 0;
  /// Fragment admissions refused by an injected allocation fault.
  std::uint64_t alloc_failed_fragments = 0;
  /// Snapshot entries dropped at restore time because the restored set
  /// exceeded the byte budget (worst utility-per-byte first).
  std::uint64_t restore_budget_dropped = 0;

  // --- Approximate resident byte footprint (gauges, recomputed from the
  // stores on every aggregated stats snapshot — groundwork for the
  // bytes-accounted capacity model). -------------------------------------
  /// CSR graph payloads of resident whole-query entries (~20n + 16m each).
  std::uint64_t approx_graph_bytes = 0;
  /// Answer + valid indicator words of resident whole-query entries.
  std::uint64_t approx_bitset_bytes = 0;
  /// Relevance-index footprints + postings over whole-query entries.
  std::uint64_t approx_posting_bytes = 0;
  /// Everything resident in the fragment store (graphs + bitsets +
  /// postings).
  std::uint64_t approx_fragment_bytes = 0;
};

/// Approximate resident byte footprint of one cache store, split by
/// category — the per-shard source of the approx_*_bytes gauges.
struct ApproxByteFootprint {
  std::uint64_t graph_bytes = 0;
  std::uint64_t bitset_bytes = 0;
  std::uint64_t posting_bytes = 0;
  std::uint64_t fragment_bytes = 0;
};

/// ~Bytes of one CSR graph: labels + offsets + two flat neighbour arrays +
/// signatures + degree sequence. Deliberately a closed-form estimate (not
/// sizeof walks) so the number is stable across allocator/container
/// implementations.
inline std::uint64_t ApproxGraphBytes(const Graph& g) {
  return 20 * static_cast<std::uint64_t>(g.NumVertices()) +
         16 * static_cast<std::uint64_t>(g.NumEdges());
}

/// Per-entry byte footprint the byte budget accounts against: the CSR
/// query graph plus the answer/valid indicator words. (Relevance postings
/// are store-level and excluded — they are bounded by the entry count and
/// small next to graphs and bitsets.) The stores maintain this
/// incrementally in `CachedQuery::approx_bytes` and assert the running
/// sum against a from-scratch recompute.
inline std::uint64_t ApproxEntryBytes(const CachedQuery& e) {
  return ApproxGraphBytes(*e.query) +
         8 * static_cast<std::uint64_t>(e.answer.num_words() +
                                        e.valid.num_words());
}

}  // namespace gcp

#endif  // GCP_CACHE_STATISTICS_HPP_
