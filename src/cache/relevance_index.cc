#include "cache/relevance_index.hpp"

#include <algorithm>

namespace gcp {

namespace {

/// True iff the common prefix of `a` and `b` shares a set bit. Footprint
/// and batch masks may be sized to different horizons; graphs beyond an
/// entry's indicator are ignored by Algorithm 2 (graph_id >= valid.size()
/// continues), which is exactly the min-prefix semantics.
bool IntersectsPrefix(const std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

void SetBlock(std::vector<std::uint64_t>& mask, std::uint32_t block) {
  const std::size_t word = block >> 6;
  if (word >= mask.size()) mask.resize(word + 1, 0);
  mask[word] |= std::uint64_t{1} << (block & 63);
}

template <typename Fn>
void ForEachBlock(const std::vector<std::uint64_t>& mask, Fn&& fn) {
  for (std::size_t w = 0; w < mask.size(); ++w) {
    std::uint64_t word = mask[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      fn(static_cast<std::uint32_t>(w * 64 + bit));
      word &= word - 1;
    }
  }
}

}  // namespace

std::uint64_t EdgeLabelPairMaskOf(const GraphFeatures& features) {
  std::uint64_t mask = 0;
  for (const auto& [pair, count] : features.edge_label_counts) {
    (void)count;
    mask |= EdgeLabelPairBit(pair.first, pair.second);
  }
  return mask;
}

bool RelevanceIndex::BatchFootprint::empty() const {
  for (const std::uint64_t w : mixed) {
    if (w != 0) return false;
  }
  for (const std::uint64_t w : ua) {
    if (w != 0) return false;
  }
  for (const std::uint64_t w : ur) {
    if (w != 0) return false;
  }
  return true;
}

RelevanceIndex::BatchFootprint RelevanceIndex::FootprintOf(
    const ChangeCounters& counters) {
  BatchFootprint batch;
  for (const auto& [graph_id, total_ops] : counters.total) {
    (void)total_ops;
    const auto block = static_cast<std::uint32_t>(graph_id >> 6);
    if (counters.IsUaExclusive(graph_id)) {
      SetBlock(batch.ua, block);
    } else if (counters.IsUrExclusive(graph_id)) {
      SetBlock(batch.ur, block);
    } else {
      SetBlock(batch.mixed, block);
    }
  }
  return batch;
}

void RelevanceIndex::ComputeMasks(const CachedQuery& e,
                                  std::vector<std::uint64_t>* pos,
                                  std::vector<std::uint64_t>* neg) {
  pos->clear();
  neg->clear();
  const std::uint64_t* vw = e.valid.words();
  const std::uint64_t* aw = e.answer.words();
  const std::size_t nv = e.valid.num_words();
  const std::size_t na = std::min(nv, e.answer.num_words());
  for (std::size_t w = 0; w < na; ++w) {
    if ((vw[w] & aw[w]) != 0) SetBlock(*pos, static_cast<std::uint32_t>(w));
    if ((vw[w] & ~aw[w]) != 0) SetBlock(*neg, static_cast<std::uint32_t>(w));
  }
  // A valid indicator wider than the answer snapshot reads as answer
  // bits false (TestOrFalse semantics): negative polarity.
  for (std::size_t w = na; w < nv; ++w) {
    if (vw[w] != 0) SetBlock(*neg, static_cast<std::uint32_t>(w));
  }
}

void RelevanceIndex::AddPostings(CacheEntryId id, const Footprint& fp) {
  const auto add = [this, id](std::uint32_t block) {
    std::vector<CacheEntryId>& list = postings_[block];
    const auto it = std::lower_bound(list.begin(), list.end(), id);
    if (it == list.end() || *it != id) list.insert(it, id);
  };
  ForEachBlock(fp.pos, add);
  // Blocks covered by both masks are inserted once (lower_bound dedup).
  ForEachBlock(fp.neg, add);
}

void RelevanceIndex::RemovePostings(CacheEntryId id, const Footprint& fp) {
  const auto remove = [this, id](std::uint32_t block) {
    const auto pit = postings_.find(block);
    if (pit == postings_.end()) return;
    std::vector<CacheEntryId>& list = pit->second;
    const auto it = std::lower_bound(list.begin(), list.end(), id);
    if (it != list.end() && *it == id) list.erase(it);
    if (list.empty()) postings_.erase(pit);
  };
  ForEachBlock(fp.pos, remove);
  ForEachBlock(fp.neg, remove);
}

void RelevanceIndex::Insert(const CachedQuery* entry) {
  Footprint& fp = entries_[entry->id];
  if (fp.entry != nullptr) RemovePostings(entry->id, fp);
  fp.entry = entry;
  ComputeMasks(*entry, &fp.pos, &fp.neg);
  AddPostings(entry->id, fp);
}

void RelevanceIndex::Erase(CacheEntryId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  RemovePostings(id, it->second);
  entries_.erase(it);
}

void RelevanceIndex::Clear() {
  entries_.clear();
  postings_.clear();
}

void RelevanceIndex::Refresh(const CachedQuery* entry) {
  const auto it = entries_.find(entry->id);
  if (it == entries_.end()) return;
  Footprint& fp = it->second;
  std::vector<std::uint64_t> pos;
  std::vector<std::uint64_t> neg;
  ComputeMasks(*entry, &pos, &neg);
  if (pos == fp.pos && neg == fp.neg) return;
  RemovePostings(entry->id, fp);
  fp.pos = std::move(pos);
  fp.neg = std::move(neg);
  AddPostings(entry->id, fp);
}

bool RelevanceIndex::Affected(const Footprint& fp,
                              const BatchFootprint& batch) {
  // Mixed/structural ops clear any valid bit regardless of polarity.
  if (IntersectsPrefix(batch.mixed, fp.pos) ||
      IntersectsPrefix(batch.mixed, fp.neg)) {
    return true;
  }
  // Algorithm 2's polarity rules: a UA-exclusive graph clears only the
  // bits whose polarity a UA batch does not preserve — valid-negative
  // for subgraph entries, valid-positive for supergraph entries — and a
  // UR-exclusive graph clears the opposite polarity.
  const bool super_entry = fp.entry->kind == CachedQueryKind::kSupergraph;
  const std::vector<std::uint64_t>& ua_clears = super_entry ? fp.pos : fp.neg;
  const std::vector<std::uint64_t>& ur_clears = super_entry ? fp.neg : fp.pos;
  return IntersectsPrefix(batch.ua, ua_clears) ||
         IntersectsPrefix(batch.ur, ur_clears);
}

std::vector<const CachedQuery*> RelevanceIndex::CollectAffected(
    const BatchFootprint& batch) const {
  std::vector<CacheEntryId> candidates;
  const auto gather = [this, &candidates](std::uint32_t block) {
    const auto it = postings_.find(block);
    if (it == postings_.end()) return;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  };
  ForEachBlock(batch.mixed, gather);
  ForEachBlock(batch.ua, gather);
  ForEachBlock(batch.ur, gather);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<const CachedQuery*> affected;
  affected.reserve(candidates.size());
  for (const CacheEntryId id : candidates) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    if (Affected(it->second, batch)) affected.push_back(it->second.entry);
  }
  return affected;
}

const RelevanceIndex::Footprint* RelevanceIndex::footprint(
    CacheEntryId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

const std::vector<CacheEntryId>* RelevanceIndex::postings(
    std::uint32_t block) const {
  const auto it = postings_.find(block);
  return it == postings_.end() ? nullptr : &it->second;
}

}  // namespace gcp
