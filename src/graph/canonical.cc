#include "graph/canonical.hpp"

#include <algorithm>
#include <vector>

#include "common/hash.hpp"

namespace gcp {

std::uint64_t WlDigest(const Graph& g, int rounds) {
  const std::size_t n = g.NumVertices();
  std::vector<std::uint64_t> color(n), next(n);
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t seed = 0x517cc1b727220a95ULL;
    HashCombine(seed, g.label(v));
    color[v] = seed;
  }
  std::vector<std::uint64_t> neigh;
  for (int r = 0; r < rounds; ++r) {
    for (VertexId v = 0; v < n; ++v) {
      neigh.clear();
      for (const VertexId u : g.neighbors(v)) neigh.push_back(color[u]);
      std::sort(neigh.begin(), neigh.end());
      std::uint64_t seed = color[v];
      for (const std::uint64_t c : neigh) HashCombine(seed, c);
      next[v] = seed;
    }
    color.swap(next);
  }
  std::sort(color.begin(), color.end());
  std::uint64_t digest = 0x2545f4914f6cdd1dULL;
  HashCombine(digest, n);
  HashCombine(digest, g.NumEdges());
  for (const std::uint64_t c : color) HashCombine(digest, c);
  return digest;
}

bool MaybeIsomorphic(const Graph& g1, const Graph& g2) {
  return g1.NumVertices() == g2.NumVertices() &&
         g1.NumEdges() == g2.NumEdges() && WlDigest(g1) == WlDigest(g2);
}

}  // namespace gcp
