// Monotone structural features used as a filter for containment tests.
//
// If g is subgraph-isomorphic to G then every feature count of g is
// dominated by the corresponding count of G (labels are preserved and the
// mapping is injective). The cache's query index (src/cache/query_index)
// uses CouldBeSubgraphOf as a sound necessary condition to shortlist
// cached queries before verifying with an exact matcher — the classic
// filter-then-verify pattern applied to the cache itself.

#ifndef GCP_GRAPH_FEATURES_HPP_
#define GCP_GRAPH_FEATURES_HPP_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace gcp {

/// \brief Permutation-invariant feature summary of a labelled graph.
struct GraphFeatures {
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;
  std::uint32_t max_degree = 0;

  /// label -> number of vertices carrying it.
  std::map<Label, std::uint32_t> label_counts;

  /// (min(la,lb), max(la,lb)) -> number of edges joining labels la and lb.
  std::map<std::pair<Label, Label>, std::uint32_t> edge_label_counts;

  /// label -> descending degree sequence of vertices with that label.
  std::map<Label, std::vector<std::uint32_t>> label_degrees;

  /// Extracts features of `g`.
  static GraphFeatures Extract(const Graph& g);

  /// Sound necessary condition for "this graph ⊆ other graph"
  /// (non-induced, label-preserving). Never returns false for a true
  /// containment; may return true for a non-containment.
  bool CouldBeSubgraphOf(const GraphFeatures& other) const;

  bool operator==(const GraphFeatures& other) const = default;
};

}  // namespace gcp

#endif  // GCP_GRAPH_FEATURES_HPP_
