// Random labelled-graph generators for tests and micro-benchmarks.
// (The AIDS-like dataset generator lives in src/dataset/aids_like.)

#ifndef GCP_GRAPH_GENERATORS_HPP_
#define GCP_GRAPH_GENERATORS_HPP_

#include <cstddef>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gcp {

/// Connected random graph: a uniform random spanning tree over `n` vertices
/// plus `extra_edges` additional distinct random edges (capped at the
/// complete graph). Labels are uniform over [0, num_labels).
Graph RandomConnectedGraph(Rng& rng, std::size_t n, std::size_t extra_edges,
                           std::size_t num_labels);

/// Erdos-Renyi G(n, p) with uniform labels; may be disconnected.
Graph RandomGraph(Rng& rng, std::size_t n, double edge_prob,
                  std::size_t num_labels);

/// Uniformly relabels every vertex of `g` in place with labels drawn from
/// [0, num_labels).
void RelabelUniform(Rng& rng, Graph& g, std::size_t num_labels);

/// Returns a copy of `g` with vertices renumbered by a random permutation
/// (an isomorphic graph). Useful for testing permutation invariance.
Graph RandomlyPermuted(Rng& rng, const Graph& g);

}  // namespace gcp

#endif  // GCP_GRAPH_GENERATORS_HPP_
