// Permutation-invariant graph digests via Weisfeiler-Leman colour
// refinement.
//
// GC+ detects exact-match cache hits (paper §6.3) by checking g ⊆ g' with
// |V(g)| = |V(g')| and |E(g)| = |E(g')|. The digest here is a cheap
// necessary-condition prefilter for that test and the identity used to
// deduplicate cached queries: isomorphic graphs always share a digest,
// non-isomorphic graphs collide only with hash probability.

#ifndef GCP_GRAPH_CANONICAL_HPP_
#define GCP_GRAPH_CANONICAL_HPP_

#include <cstdint>

#include "graph/graph.hpp"

namespace gcp {

/// Digest invariant under vertex renumbering. `rounds` is the number of WL
/// refinement iterations (3 distinguishes almost all small graphs).
std::uint64_t WlDigest(const Graph& g, int rounds = 3);

/// True iff g1 and g2 could be isomorphic by cheap invariants
/// (size, edge count and WL digest). Sound: never false for isomorphic
/// inputs.
bool MaybeIsomorphic(const Graph& g1, const Graph& g2);

}  // namespace gcp

#endif  // GCP_GRAPH_CANONICAL_HPP_
