#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>

namespace gcp {

Graph RandomConnectedGraph(Rng& rng, std::size_t n, std::size_t extra_edges,
                           std::size_t num_labels) {
  Graph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.AddVertex(static_cast<Label>(rng.UniformBelow(std::max<std::size_t>(
        1, num_labels))));
  }
  if (n <= 1) return g;
  // Random spanning tree: attach each vertex to a uniformly random earlier
  // vertex of a random permutation (a random recursive tree).
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    const VertexId parent = order[rng.UniformBelow(i)];
    g.AddEdge(order[i], parent).ok();
  }
  const std::size_t max_edges = n * (n - 1) / 2;
  std::size_t budget = std::min(extra_edges, max_edges - g.NumEdges());
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * (budget + 1) + 100;
  while (budget > 0 && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<VertexId>(rng.UniformBelow(n));
    const auto v = static_cast<VertexId>(rng.UniformBelow(n));
    if (u == v || g.HasEdge(u, v)) continue;
    g.AddEdge(u, v).ok();
    --budget;
  }
  if (budget > 0) {
    // Dense regime: fall back to explicit non-edge enumeration.
    auto non_edges = g.NonEdges();
    rng.Shuffle(non_edges);
    for (std::size_t i = 0; i < non_edges.size() && budget > 0; ++i, --budget) {
      g.AddEdge(non_edges[i].first, non_edges[i].second).ok();
    }
  }
  return g;
}

Graph RandomGraph(Rng& rng, std::size_t n, double edge_prob,
                  std::size_t num_labels) {
  Graph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.AddVertex(static_cast<Label>(rng.UniformBelow(std::max<std::size_t>(
        1, num_labels))));
  }
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(edge_prob)) g.AddEdge(u, v).ok();
    }
  }
  return g;
}

void RelabelUniform(Rng& rng, Graph& g, std::size_t num_labels) {
  Graph fresh;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    fresh.AddVertex(static_cast<Label>(rng.UniformBelow(std::max<std::size_t>(
        1, num_labels))));
  }
  for (const auto& [u, v] : g.Edges()) fresh.AddEdge(u, v).ok();
  g = std::move(fresh);
}

Graph RandomlyPermuted(Rng& rng, const Graph& g) {
  const std::size_t n = g.NumVertices();
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  Graph out;
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[perm[v]] = g.label(v);
  for (const Label l : labels) out.AddVertex(l);
  for (const auto& [u, v] : g.Edges()) out.AddEdge(perm[u], perm[v]).ok();
  return out;
}

}  // namespace gcp
