#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>

namespace gcp {

void WriteGraphs(std::ostream& os, const std::vector<Graph>& graphs) {
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    os << "t # " << i << "\n";
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      os << "v " << v << " " << g.label(v) << "\n";
    }
    for (const auto& [u, v] : g.Edges()) {
      os << "e " << u << " " << v << "\n";
    }
  }
}

Result<std::vector<Graph>> ReadGraphs(std::istream& is) {
  std::vector<Graph> graphs;
  bool in_graph = false;
  Graph current;
  std::string line;
  std::size_t line_no = 0;

  auto flush = [&]() {
    if (in_graph) graphs.push_back(std::move(current));
    current = Graph();
  };

  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag.empty() || tag[0] == '#') continue;
    if (tag == "t") {
      flush();
      in_graph = true;
      continue;
    }
    if (!in_graph) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": vertex/edge before any 't' record");
    }
    if (tag == "v") {
      std::int64_t vid = -1, lbl = -1;
      if (!(ls >> vid >> lbl) || vid < 0 || lbl < 0) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": malformed vertex record");
      }
      if (static_cast<std::size_t>(vid) != current.NumVertices()) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": vertex ids must be dense and in order");
      }
      current.AddVertex(static_cast<Label>(lbl));
    } else if (tag == "e") {
      std::int64_t u = -1, v = -1;
      if (!(ls >> u >> v) || u < 0 || v < 0) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": malformed edge record");
      }
      // A trailing edge label, if any, is ignored.
      const Status st = current.AddEdge(static_cast<VertexId>(u),
                                        static_cast<VertexId>(v));
      if (!st.ok()) {
        return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                  st.ToString());
      }
    } else {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": unknown record tag '" + tag + "'");
    }
  }
  flush();
  return graphs;
}

Status WriteGraphsToFile(const std::string& path,
                         const std::vector<Graph>& graphs) {
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot open for writing: " + path);
  WriteGraphs(os, graphs);
  os.flush();
  if (!os) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<Graph>> ReadGraphsFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open for reading: " + path);
  return ReadGraphs(is);
}

std::string GraphToGSpan(const Graph& g) {
  std::ostringstream os;
  WriteGraphs(os, {g});
  return os.str();
}

Result<Graph> GraphFromGSpan(const std::string& text) {
  std::istringstream is(text);
  auto r = ReadGraphs(is);
  if (!r.ok()) return r.status();
  if (r.value().size() != 1) {
    return Status::InvalidArgument("expected exactly one graph, got " +
                                   std::to_string(r.value().size()));
  }
  return std::move(r.value()[0]);
}

}  // namespace gcp
