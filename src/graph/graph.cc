#include "graph/graph.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace gcp {

namespace {

// Bucket of a label in the 16-nibble vertex signature.
inline std::size_t SignatureBucket(Label l) { return l & 15u; }

// Saturating nibble increment of `sig` at `bucket`.
inline std::uint64_t SignatureAdd(std::uint64_t sig, std::size_t bucket) {
  const std::uint64_t nibble = (sig >> (4 * bucket)) & 0xFULL;
  if (nibble == 0xF) return sig;  // saturated
  return sig + (1ULL << (4 * bucket));
}

}  // namespace

void PrintTo(const NeighborRange& range, std::ostream* os) {
  *os << "[";
  bool first = true;
  for (const VertexId v : range) {
    if (!first) *os << ",";
    first = false;
    *os << v;
  }
  *os << "]";
}

Result<Graph> Graph::Create(
    std::vector<Label> labels,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  Graph g;
  g.labels_ = std::move(labels);
  const std::size_t n = g.labels_.size();
  for (const auto& [u, v] : edges) {
    if (u >= n || v >= n) {
      return Status::OutOfRange("edge endpoint out of range");
    }
    if (u == v) {
      return Status::InvalidArgument("self-loops are not supported");
    }
  }
  // Bulk CSR build: degree count, prefix sums, fill, per-run sort.
  g.offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.flat_.resize(2 * edges.size());
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.flat_[cursor[u]++] = v;
    g.flat_[cursor[v]++] = u;
  }
  for (std::size_t v = 0; v < n; ++v) {
    const auto lo = g.flat_.begin() + g.offsets_[v];
    const auto hi = g.flat_.begin() + g.offsets_[v + 1];
    std::sort(lo, hi);
    if (std::adjacent_find(lo, hi) != hi) {
      return Status::AlreadyExists("edge already present");
    }
  }
  g.num_edges_ = edges.size();
  g.RebuildDerived();
  return g;
}

VertexId Graph::AddVertex(Label label) {
  const VertexId id = static_cast<VertexId>(labels_.size());
  labels_.push_back(label);
  offsets_.push_back(offsets_.back());
  vertex_sig_.push_back(0);
  // Degree 0 keeps the descending degree sequence sorted when appended.
  degree_seq_.push_back(0);
  // The new id is the largest, so it slots at the end of its label's run.
  verts_by_label_.insert(
      std::upper_bound(verts_by_label_.begin(), verts_by_label_.end(), label,
                       [this](Label l, VertexId v) { return l < labels_[v]; }),
      id);
  const auto it = std::lower_bound(
      label_hist_.begin(), label_hist_.end(), label,
      [](const std::pair<Label, std::uint32_t>& p, Label l) {
        return p.first < l;
      });
  if (it != label_hist_.end() && it->first == label) {
    ++it->second;
  } else {
    label_hist_.insert(it, {label, 1});
  }
  return static_cast<VertexId>(labels_.size() - 1);
}

void Graph::RunInsert(VertexId v, VertexId value) {
  // Both flat arrays share offsets_, so the paired inserts keep every
  // later run aligned; offsets shift once after both land.
  const auto lo = flat_.begin() + offsets_[v];
  const auto hi = flat_.begin() + offsets_[v + 1];
  flat_.insert(std::lower_bound(lo, hi, value), value);
  const auto llo = label_flat_.begin() + offsets_[v];
  const auto lhi = label_flat_.begin() + offsets_[v + 1];
  label_flat_.insert(
      std::lower_bound(llo, lhi, value,
                       [this](VertexId a, VertexId b) {
                         return labels_[a] != labels_[b]
                                    ? labels_[a] < labels_[b]
                                    : a < b;
                       }),
      value);
  for (std::size_t i = v + 1; i < offsets_.size(); ++i) ++offsets_[i];
}

void Graph::RunErase(VertexId v, VertexId value) {
  const auto lo = flat_.begin() + offsets_[v];
  const auto hi = flat_.begin() + offsets_[v + 1];
  flat_.erase(std::lower_bound(lo, hi, value));
  const auto llo = label_flat_.begin() + offsets_[v];
  const auto lhi = label_flat_.begin() + offsets_[v + 1];
  label_flat_.erase(std::find(llo, lhi, value));
  for (std::size_t i = v + 1; i < offsets_.size(); ++i) --offsets_[i];
}

void Graph::ShiftDegree(std::uint32_t old_degree, std::uint32_t new_degree) {
  // degree_seq_ is sorted descending; moving one occurrence of old_degree
  // by ±1 preserves order when the leftmost (for +1) or rightmost (for
  // -1) occurrence is the one rewritten.
  const auto range =
      std::equal_range(degree_seq_.begin(), degree_seq_.end(), old_degree,
                       std::greater<>());
  (new_degree > old_degree ? *range.first : *(range.second - 1)) = new_degree;
}

Status Graph::AddEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loops are not supported");
  }
  if (HasEdge(u, v)) {
    return Status::AlreadyExists("edge already present");
  }
  const auto du = static_cast<std::uint32_t>(degree(u));
  const auto dv = static_cast<std::uint32_t>(degree(v));
  RunInsert(u, v);
  RunInsert(v, u);
  ++num_edges_;
  vertex_sig_[u] = SignatureAdd(vertex_sig_[u], SignatureBucket(labels_[v]));
  vertex_sig_[v] = SignatureAdd(vertex_sig_[v], SignatureBucket(labels_[u]));
  ShiftDegree(du, du + 1);
  ShiftDegree(dv, dv + 1);
  return Status::OK();
}

Status Graph::RemoveEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v || !HasEdge(u, v)) {
    return Status::NotFound("edge not present");
  }
  const auto du = static_cast<std::uint32_t>(degree(u));
  const auto dv = static_cast<std::uint32_t>(degree(v));
  RunErase(u, v);
  RunErase(v, u);
  --num_edges_;
  // Saturating bucket counts are not invertible — recompute from the run.
  vertex_sig_[u] = ComputeSignature(u);
  vertex_sig_[v] = ComputeSignature(v);
  ShiftDegree(du, du - 1);
  ShiftDegree(dv, dv - 1);
  return Status::OK();
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices() || u == v) return false;
  const auto lo = flat_.begin() + offsets_[u];
  const auto hi = flat_.begin() + offsets_[u + 1];
  return std::binary_search(lo, hi, v);
}

NeighborRange Graph::NeighborsWithLabel(VertexId v, Label l) const {
  const VertexId* base = label_flat_.data();
  const VertexId* lo = base + offsets_[v];
  const VertexId* hi = base + offsets_[v + 1];
  const VertexId* first = std::lower_bound(
      lo, hi, l, [this](VertexId w, Label lab) { return labels_[w] < lab; });
  const VertexId* last = std::upper_bound(
      first, hi, l, [this](Label lab, VertexId w) { return lab < labels_[w]; });
  return NeighborRange(first, last);
}

NeighborRange Graph::VerticesWithLabel(Label l) const {
  const VertexId* base = verts_by_label_.data();
  const VertexId* lo = base;
  const VertexId* hi = base + verts_by_label_.size();
  const VertexId* first = std::lower_bound(
      lo, hi, l, [this](VertexId v, Label lab) { return labels_[v] < lab; });
  const VertexId* last = std::upper_bound(
      first, hi, l, [this](Label lab, VertexId v) { return lab < labels_[v]; });
  return NeighborRange(first, last);
}

std::uint64_t Graph::ComputeSignature(VertexId v) const {
  std::uint64_t sig = 0;
  for (const VertexId w : neighbors(v)) {
    sig = SignatureAdd(sig, SignatureBucket(labels_[w]));
  }
  return sig;
}

void Graph::RebuildDerived() {
  const std::size_t n = NumVertices();
  label_flat_ = flat_;
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(label_flat_.begin() + offsets_[v],
              label_flat_.begin() + offsets_[v + 1],
              [this](VertexId a, VertexId b) {
                return labels_[a] != labels_[b] ? labels_[a] < labels_[b]
                                                : a < b;
              });
  }
  vertex_sig_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    vertex_sig_[v] = ComputeSignature(static_cast<VertexId>(v));
  }
  verts_by_label_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    verts_by_label_[v] = static_cast<VertexId>(v);
  }
  std::sort(verts_by_label_.begin(), verts_by_label_.end(),
            [this](VertexId a, VertexId b) {
              return labels_[a] != labels_[b] ? labels_[a] < labels_[b]
                                              : a < b;
            });
  label_hist_.clear();
  std::vector<Label> sorted_labels = labels_;
  std::sort(sorted_labels.begin(), sorted_labels.end());
  for (std::size_t i = 0; i < sorted_labels.size();) {
    std::size_t j = i;
    while (j < sorted_labels.size() && sorted_labels[j] == sorted_labels[i]) {
      ++j;
    }
    label_hist_.push_back(
        {sorted_labels[i], static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  degree_seq_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    degree_seq_[v] = offsets_[v + 1] - offsets_[v];
  }
  std::sort(degree_seq_.begin(), degree_seq_.end(), std::greater<>());
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(num_edges_);
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const VertexId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

bool Graph::IsConnected() const {
  if (NumVertices() == 0) return true;
  std::vector<bool> seen(NumVertices(), false);
  std::vector<VertexId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (const VertexId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == NumVertices();
}

std::vector<std::pair<VertexId, VertexId>> Graph::NonEdges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v = u + 1; v < NumVertices(); ++v) {
      if (!HasEdge(u, v)) out.emplace_back(u, v);
    }
  }
  return out;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << "n=" << NumVertices() << " m=" << NumEdges() << " labels=[";
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) os << ",";
    os << labels_[i];
  }
  os << "] edges=[";
  bool first = true;
  for (const auto& [u, v] : Edges()) {
    if (!first) os << ",";
    first = false;
    os << "(" << u << "," << v << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace gcp
