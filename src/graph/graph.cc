#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

namespace gcp {

namespace {

// Insert `value` into sorted vector `v`; returns false when already present.
bool SortedInsert(std::vector<VertexId>& v, VertexId value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it != v.end() && *it == value) return false;
  v.insert(it, value);
  return true;
}

// Erase `value` from sorted vector `v`; returns false when absent.
bool SortedErase(std::vector<VertexId>& v, VertexId value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it == v.end() || *it != value) return false;
  v.erase(it);
  return true;
}

}  // namespace

Result<Graph> Graph::Create(
    std::vector<Label> labels,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  Graph g;
  g.labels_ = std::move(labels);
  g.adj_.resize(g.labels_.size());
  for (const auto& [u, v] : edges) {
    GCP_RETURN_NOT_OK(g.AddEdge(u, v));
  }
  return g;
}

VertexId Graph::AddVertex(Label label) {
  labels_.push_back(label);
  adj_.emplace_back();
  return static_cast<VertexId>(labels_.size() - 1);
}

Status Graph::AddEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loops are not supported");
  }
  if (!SortedInsert(adj_[u], v)) {
    return Status::AlreadyExists("edge already present");
  }
  SortedInsert(adj_[v], u);
  ++num_edges_;
  return Status::OK();
}

Status Graph::RemoveEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (!SortedErase(adj_[u], v)) {
    return Status::NotFound("edge not present");
  }
  SortedErase(adj_[v], u);
  --num_edges_;
  return Status::OK();
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices() || u == v) return false;
  const auto& nu = adj_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(num_edges_);
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const VertexId v : adj_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

bool Graph::IsConnected() const {
  if (NumVertices() == 0) return true;
  std::vector<bool> seen(NumVertices(), false);
  std::vector<VertexId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (const VertexId v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == NumVertices();
}

std::vector<std::pair<VertexId, VertexId>> Graph::NonEdges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v = u + 1; v < NumVertices(); ++v) {
      if (!HasEdge(u, v)) out.emplace_back(u, v);
    }
  }
  return out;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << "n=" << NumVertices() << " m=" << NumEdges() << " labels=[";
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) os << ",";
    os << labels_[i];
  }
  os << "] edges=[";
  bool first = true;
  for (const auto& [u, v] : Edges()) {
    if (!first) os << ",";
    first = false;
    os << "(" << u << "," << v << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace gcp
