// Text (de)serialization in the gSpan transaction format used by the AIDS
// antiviral screen dataset and most graph-mining benchmarks:
//
//   t # <graph-id>
//   v <vertex-id> <label>
//   e <u> <v> [<edge-label>]
//
// Edge labels are accepted on input and ignored (GC+ operates on
// vertex-labelled graphs, paper §3); they are not emitted.

#ifndef GCP_GRAPH_GRAPH_IO_HPP_
#define GCP_GRAPH_GRAPH_IO_HPP_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "graph/graph.hpp"

namespace gcp {

/// Writes `graphs` in gSpan format; graph ids are positional (0-based).
void WriteGraphs(std::ostream& os, const std::vector<Graph>& graphs);

/// Parses a gSpan-format stream. Vertex ids inside each transaction must be
/// dense and 0-based (the format used by the published AIDS files).
Result<std::vector<Graph>> ReadGraphs(std::istream& is);

/// File convenience wrappers.
Status WriteGraphsToFile(const std::string& path,
                         const std::vector<Graph>& graphs);
Result<std::vector<Graph>> ReadGraphsFromFile(const std::string& path);

/// One-graph helpers used by tests and tools.
std::string GraphToGSpan(const Graph& g);
Result<Graph> GraphFromGSpan(const std::string& text);

}  // namespace gcp

#endif  // GCP_GRAPH_GRAPH_IO_HPP_
