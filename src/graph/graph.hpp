// Undirected labelled graph — the unit of data in GC+.
//
// Following the paper (§3) graphs are undirected with vertex labels only;
// all results generalize to directed/edge-labelled graphs. Dataset graphs
// must support in-place edge addition (UA) and removal (UR) since those are
// two of the four dataset change operations GC+ tracks.

#ifndef GCP_GRAPH_GRAPH_HPP_
#define GCP_GRAPH_GRAPH_HPP_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace gcp {

/// Vertex index within a graph (dense, 0-based).
using VertexId = std::uint32_t;
/// Vertex label drawn from a dataset-wide label universe.
using Label = std::uint32_t;

/// \brief Simple undirected graph with vertex labels.
///
/// Adjacency lists are kept sorted so HasEdge is a binary search and
/// neighbour iteration is ordered (which the matchers rely on for
/// deterministic traversal). No self-loops, no parallel edges.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph in one call. Edges reference vertex positions in
  /// `labels`. Returns InvalidArgument on out-of-range endpoints,
  /// self-loops, or duplicate edges.
  static Result<Graph> Create(
      std::vector<Label> labels,
      const std::vector<std::pair<VertexId, VertexId>>& edges);

  /// Appends a vertex with the given label; returns its id.
  VertexId AddVertex(Label label);

  /// Adds undirected edge {u, v}. Errors on out-of-range ids, u == v, or an
  /// existing edge.
  Status AddEdge(VertexId u, VertexId v);

  /// Removes undirected edge {u, v}. Errors when absent.
  Status RemoveEdge(VertexId u, VertexId v);

  /// True iff edge {u, v} is present (ids must be valid).
  bool HasEdge(VertexId u, VertexId v) const;

  std::size_t NumVertices() const { return labels_.size(); }
  std::size_t NumEdges() const { return num_edges_; }

  Label label(VertexId v) const { return labels_[v]; }
  const std::vector<Label>& labels() const { return labels_; }

  /// Sorted neighbour list of `v`.
  const std::vector<VertexId>& neighbors(VertexId v) const { return adj_[v]; }
  std::size_t degree(VertexId v) const { return adj_[v].size(); }

  /// All edges as (u, v) pairs with u < v, lexicographically sorted.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// True iff the graph is connected (the empty graph is connected).
  bool IsConnected() const;

  /// Non-edges (u, v), u < v — the candidate pool for a UA change.
  std::vector<std::pair<VertexId, VertexId>> NonEdges() const;

  bool operator==(const Graph& other) const {
    return labels_ == other.labels_ && adj_ == other.adj_;
  }

  /// Debug rendering: "n=3 m=2 labels=[0,1,0] edges=[(0,1),(1,2)]".
  std::string ToString() const;

 private:
  std::vector<Label> labels_;
  std::vector<std::vector<VertexId>> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace gcp

#endif  // GCP_GRAPH_GRAPH_HPP_
