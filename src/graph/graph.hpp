// Undirected labelled graph — the unit of data in GC+.
//
// Following the paper (§3) graphs are undirected with vertex labels only;
// all results generalize to directed/edge-labelled graphs. Dataset graphs
// must support in-place edge addition (UA) and removal (UR) since those are
// two of the four dataset change operations GC+ tracks.
//
// Storage is CSR (compressed sparse row): one offsets array plus one flat
// neighbour array, so neighbour iteration is a contiguous scan with no
// per-vertex heap indirection. Two derived structures are maintained for
// the matchers' hot path:
//   * a second flat array ordering each neighbour run by (label, id), so a
//     matcher can enumerate exactly the neighbours carrying a given label
//     (NeighborsWithLabel) instead of filtering the whole run, and
//   * a per-vertex 64-bit label-histogram signature (16 buckets x 4-bit
//     saturating counts of neighbour labels) whose dominance test is a
//     sound necessary condition for mapping one vertex onto another.
// Mutations (UA/UR) edit the primary arrays in place and refresh the
// derived state; bulk construction (Create) builds everything in one pass.

#ifndef GCP_GRAPH_GRAPH_HPP_
#define GCP_GRAPH_GRAPH_HPP_

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace gcp {

/// Vertex index within a graph (dense, 0-based).
using VertexId = std::uint32_t;
/// Vertex label drawn from a dataset-wide label universe.
using Label = std::uint32_t;

/// Sorted (label, multiplicity) pairs — a graph-level label histogram.
using LabelHistogram = std::vector<std::pair<Label, std::uint32_t>>;

/// Multiplicity of `l` in a sorted histogram; absent labels count 0.
inline std::uint32_t HistogramCount(const LabelHistogram& hist, Label l) {
  const auto it = std::lower_bound(
      hist.begin(), hist.end(), l,
      [](const std::pair<Label, std::uint32_t>& p, Label lab) {
        return p.first < lab;
      });
  return (it != hist.end() && it->first == l) ? it->second : 0;
}

/// True iff every (label, count) of `sub` is covered by `super`: a sound
/// necessary condition for an injective label-preserving mapping of a
/// graph with histogram `sub` into one with histogram `super`. Both
/// histograms are sorted by label.
inline bool HistogramDominates(const LabelHistogram& sub,
                               const LabelHistogram& super) {
  std::size_t j = 0;
  for (const auto& [label, count] : sub) {
    while (j < super.size() && super[j].first < label) ++j;
    if (j == super.size() || super[j].first != label ||
        super[j].second < count) {
      return false;
    }
  }
  return true;
}

/// \brief Contiguous view over a neighbour run in a CSR array.
///
/// Lightweight (two pointers); valid until the next graph mutation.
class NeighborRange {
 public:
  using value_type = VertexId;
  using const_iterator = const VertexId*;

  NeighborRange() = default;
  NeighborRange(const VertexId* begin, const VertexId* end)
      : begin_(begin), end_(end) {}

  const VertexId* begin() const { return begin_; }
  const VertexId* end() const { return end_; }
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  VertexId operator[](std::size_t i) const { return begin_[i]; }
  VertexId front() const { return *begin_; }
  VertexId back() const { return *(end_ - 1); }

  std::vector<VertexId> ToVector() const {
    return std::vector<VertexId>(begin_, end_);
  }

  friend bool operator==(const NeighborRange& a, const NeighborRange& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const NeighborRange& a,
                         const std::vector<VertexId>& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<VertexId>& a,
                         const NeighborRange& b) {
    return b == a;
  }

 private:
  const VertexId* begin_ = nullptr;
  const VertexId* end_ = nullptr;
};

/// gtest-friendly printing.
void PrintTo(const NeighborRange& range, std::ostream* os);

/// Sound nibble-wise dominance test over two vertex signatures: true iff
/// every 4-bit bucket count of `sub` is <= the matching bucket of `super`.
/// If pattern vertex u can map onto target vertex v (non-induced,
/// label-preserving, injective) then SignatureDominates(sig(u), sig(v))
/// holds — saturation keeps the test conservative, never unsound.
/// simd::SignatureDominanceScreen (common/simd.hpp) batches this exact
/// test over a whole candidate run with the same borrow trick widened to
/// vector lanes; the two must stay bit-equivalent.
inline bool SignatureDominates(std::uint64_t sub, std::uint64_t super) {
  // Split nibbles into even/odd byte lanes so each 4-bit count sits in its
  // own byte with headroom, then use the classic SWAR borrow test: for
  // byte values a, b <= 15, b >= a  <=>  ((b | 0x80) - a) keeps bit 7 set.
  constexpr std::uint64_t kLo = 0x0F0F0F0F0F0F0F0FULL;
  constexpr std::uint64_t kHi = 0x8080808080808080ULL;
  const std::uint64_t sub_even = sub & kLo;
  const std::uint64_t sup_even = super & kLo;
  const std::uint64_t sub_odd = (sub >> 4) & kLo;
  const std::uint64_t sup_odd = (super >> 4) & kLo;
  return ((((sup_even | kHi) - sub_even) & kHi) == kHi) &&
         ((((sup_odd | kHi) - sub_odd) & kHi) == kHi);
}

/// \brief Simple undirected graph with vertex labels over CSR storage.
///
/// Neighbour runs are kept sorted by id so HasEdge is a binary search and
/// neighbour iteration is ordered (which the matchers rely on for
/// deterministic traversal). No self-loops, no parallel edges.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph in one call. Edges reference vertex positions in
  /// `labels`. Returns InvalidArgument on out-of-range endpoints,
  /// self-loops, or duplicate edges.
  static Result<Graph> Create(
      std::vector<Label> labels,
      const std::vector<std::pair<VertexId, VertexId>>& edges);

  /// Appends a vertex with the given label; returns its id.
  VertexId AddVertex(Label label);

  /// Adds undirected edge {u, v}. Errors on out-of-range ids, u == v, or an
  /// existing edge.
  Status AddEdge(VertexId u, VertexId v);

  /// Removes undirected edge {u, v}. Errors when absent.
  Status RemoveEdge(VertexId u, VertexId v);

  /// True iff edge {u, v} is present (ids must be valid).
  bool HasEdge(VertexId u, VertexId v) const;

  std::size_t NumVertices() const { return labels_.size(); }
  std::size_t NumEdges() const { return num_edges_; }

  Label label(VertexId v) const { return labels_[v]; }
  const std::vector<Label>& labels() const { return labels_; }

  /// Neighbours of `v`, sorted ascending by id.
  NeighborRange neighbors(VertexId v) const {
    const VertexId* base = flat_.data();
    return NeighborRange(base + offsets_[v], base + offsets_[v + 1]);
  }

  std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbours of `v` carrying label `l` (sorted ascending by id) — a
  /// binary-searched slice of the label-sorted neighbour run.
  NeighborRange NeighborsWithLabel(VertexId v, Label l) const;

  /// All vertices carrying label `l` (sorted ascending by id) — a
  /// binary-searched slice of the label-sorted vertex array. Lets a
  /// matcher seed unanchored candidates by label instead of scanning
  /// every target vertex.
  NeighborRange VerticesWithLabel(Label l) const;

  /// Per-vertex label-histogram signature of `v`'s neighbourhood (16
  /// buckets x 4-bit saturating counts). See SignatureDominates.
  std::uint64_t vertex_signature(VertexId v) const { return vertex_sig_[v]; }

  /// Graph-level label histogram: sorted (label, count) pairs.
  const LabelHistogram& label_histogram() const { return label_hist_; }

  /// Vertex degrees sorted descending.
  const std::vector<std::uint32_t>& degree_sequence() const {
    return degree_seq_;
  }

  /// All edges as (u, v) pairs with u < v, lexicographically sorted.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// True iff the graph is connected (the empty graph is connected).
  bool IsConnected() const;

  /// Non-edges (u, v), u < v — the candidate pool for a UA change.
  std::vector<std::pair<VertexId, VertexId>> NonEdges() const;

  bool operator==(const Graph& other) const {
    return labels_ == other.labels_ && offsets_ == other.offsets_ &&
           flat_ == other.flat_;
  }

  /// Debug rendering: "n=3 m=2 labels=[0,1,0] edges=[(0,1),(1,2)]".
  std::string ToString() const;

 private:
  /// Inserts/erases `value` in v's runs of both flat arrays (id-sorted in
  /// flat_, label-sorted in label_flat_) and shifts the offsets. The
  /// caller guarantees presence/absence.
  void RunInsert(VertexId v, VertexId value);
  void RunErase(VertexId v, VertexId value);

  /// Rewrites one occurrence of `old_degree` in the descending degree
  /// sequence with `new_degree` (which must differ by exactly 1).
  void ShiftDegree(std::uint32_t old_degree, std::uint32_t new_degree);

  /// Rebuilds every derived structure from labels_/offsets_/flat_.
  void RebuildDerived();

  std::uint64_t ComputeSignature(VertexId v) const;

  std::vector<Label> labels_;
  /// CSR offsets: size NumVertices() + 1, offsets_[v]..offsets_[v+1] is
  /// v's run in flat_ and label_flat_.
  std::vector<std::uint32_t> offsets_{0};
  /// Neighbour runs sorted ascending by id.
  std::vector<VertexId> flat_;
  /// The same runs sorted by (label(neighbour), neighbour id).
  std::vector<VertexId> label_flat_;
  /// All vertex ids sorted by (label, id) — the label→vertices index.
  std::vector<VertexId> verts_by_label_;
  /// Per-vertex neighbourhood label signatures.
  std::vector<std::uint64_t> vertex_sig_;
  LabelHistogram label_hist_;
  std::vector<std::uint32_t> degree_seq_;
  std::size_t num_edges_ = 0;
};

}  // namespace gcp

#endif  // GCP_GRAPH_GRAPH_HPP_
