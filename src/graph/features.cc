#include "graph/features.hpp"

#include <algorithm>

namespace gcp {

GraphFeatures GraphFeatures::Extract(const Graph& g) {
  GraphFeatures f;
  f.num_vertices = static_cast<std::uint32_t>(g.NumVertices());
  f.num_edges = static_cast<std::uint32_t>(g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const Label l = g.label(v);
    ++f.label_counts[l];
    const auto deg = static_cast<std::uint32_t>(g.degree(v));
    f.label_degrees[l].push_back(deg);
    f.max_degree = std::max(f.max_degree, deg);
  }
  for (auto& [label, degrees] : f.label_degrees) {
    std::sort(degrees.begin(), degrees.end(), std::greater<>());
  }
  for (const auto& [u, v] : g.Edges()) {
    const Label lu = g.label(u);
    const Label lv = g.label(v);
    ++f.edge_label_counts[{std::min(lu, lv), std::max(lu, lv)}];
  }
  return f;
}

bool GraphFeatures::CouldBeSubgraphOf(const GraphFeatures& other) const {
  // Screens run cheapest-first: scalar comparisons, then the per-label
  // count walk, then the edge-label-pair walk (pair-keyed map), and the
  // degree-dominance loop — the only one that touches vectors — last.
  // The distinct-key counts are scalars too: a subgraph cannot use more
  // distinct labels (or label pairs) than its supergraph, so these reject
  // before any map lookup happens.
  if (num_vertices > other.num_vertices || num_edges > other.num_edges ||
      max_degree > other.max_degree ||
      label_counts.size() > other.label_counts.size() ||
      edge_label_counts.size() > other.edge_label_counts.size()) {
    return false;
  }
  for (const auto& [label, count] : label_counts) {
    const auto it = other.label_counts.find(label);
    if (it == other.label_counts.end() || count > it->second) return false;
  }
  for (const auto& [pair, count] : edge_label_counts) {
    const auto it = other.edge_label_counts.find(pair);
    if (it == other.edge_label_counts.end() || count > it->second) return false;
  }
  // Per-label degree dominance: the i-th largest degree among this graph's
  // vertices labelled l must not exceed the i-th largest among other's
  // (injective mapping within a label class; standard counting argument).
  for (const auto& [label, degrees] : label_degrees) {
    const auto it = other.label_degrees.find(label);
    if (it == other.label_degrees.end()) return false;
    const auto& theirs = it->second;
    if (degrees.size() > theirs.size()) return false;
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      if (degrees[i] > theirs[i]) return false;
    }
  }
  return true;
}

}  // namespace gcp
