#include "ftv/ftv_index.hpp"

#include <algorithm>

namespace gcp {

FtvIndex::FtvIndex(const GraphDataset& dataset) : dataset_(&dataset) {
  // Initial build composes the vector in place and publishes it once —
  // it is not a copy-on-write clone, so summary_copies() starts at 0.
  auto built = std::make_shared<SummaryVec>();
  built->resize(dataset_->IdHorizon());
  for (const GraphId id : dataset_->LiveIds()) {
    IndexGraph(*built, id);
  }
  summaries_ = std::move(built);
  watermark_ = dataset_->log().LatestSeq();
}

void FtvIndex::IndexGraph(SummaryVec& into, GraphId id) const {
  if (id >= into.size()) into.resize(id + 1);
  into[id] = GraphFeatures::Extract(dataset_->graph(id));
}

std::size_t FtvIndex::SyncWithDataset() {
  const std::vector<ChangeRecord> records =
      dataset_->log().ExtractSince(watermark_);
  if (records.empty()) return 0;
  // Coalesce: a graph touched multiple times needs only one re-derivation
  // against its final state in this window.
  std::vector<GraphId> touched;
  for (const ChangeRecord& r : records) {
    touched.push_back(r.graph_id);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Copy-on-write: snapshots may alias the published vector, so mutate a
  // clone and republish. One clone per mutating batch, independent of how
  // many snapshots are published in between.
  auto next = std::make_shared<SummaryVec>(*summaries_);
  summary_copies_.fetch_add(1, std::memory_order_relaxed);
  std::size_t updates = 0;
  if (dataset_->IdHorizon() > next->size()) {
    next->resize(dataset_->IdHorizon());
  }
  for (const GraphId id : touched) {
    if (dataset_->IsLive(id)) {
      IndexGraph(*next, id);  // ADD or UA/UR: (re-)derive the local summary
    } else {
      if (id < next->size()) (*next)[id].reset();  // DEL
    }
    ++updates;
  }
  summaries_ = std::move(next);
  watermark_ = dataset_->log().LatestSeq();
  return updates;
}

DynamicBitset FtvIndex::CandidateSet(const GraphFeatures& query_features,
                                     FtvQueryDirection direction) const {
  DynamicBitset candidates(dataset_->IdHorizon());
  const SummaryVec& summaries = *summaries_;
  const std::size_t limit = std::min(summaries.size(), dataset_->IdHorizon());
  for (std::size_t id = 0; id < limit; ++id) {
    const auto& summary = summaries[id];
    if (!summary.has_value() || !dataset_->IsLive(static_cast<GraphId>(id))) {
      continue;
    }
    const bool pass = direction == FtvQueryDirection::kSubgraph
                          ? query_features.CouldBeSubgraphOf(*summary)
                          : summary->CouldBeSubgraphOf(query_features);
    if (pass) candidates.Set(id);
  }
  return candidates;
}

DynamicBitset FtvIndex::CandidateSetOver(
    const SummaryVec& summaries, const DynamicBitset& live,
    const GraphFeatures& query_features, FtvQueryDirection direction) {
  DynamicBitset candidates(live.size());
  const std::size_t limit = std::min(summaries.size(), live.size());
  for (std::size_t id = 0; id < limit; ++id) {
    const auto& summary = summaries[id];
    if (!summary.has_value() || !live.Test(id)) continue;
    const bool pass = direction == FtvQueryDirection::kSubgraph
                          ? query_features.CouldBeSubgraphOf(*summary)
                          : summary->CouldBeSubgraphOf(query_features);
    if (pass) candidates.Set(id);
  }
  return candidates;
}

std::size_t FtvIndex::IndexedCount() const {
  std::size_t count = 0;
  for (const auto& s : *summaries_) {
    if (s.has_value()) ++count;
  }
  return count;
}

const GraphFeatures* FtvIndex::SummaryOf(GraphId id) const {
  const SummaryVec& summaries = *summaries_;
  if (id >= summaries.size() || !summaries[id].has_value()) return nullptr;
  return &*summaries[id];
}

}  // namespace gcp
