#include "ftv/ftv_index.hpp"

#include <algorithm>

namespace gcp {

FtvIndex::FtvIndex(const GraphDataset& dataset) : dataset_(&dataset) {
  summaries_.resize(dataset_->IdHorizon());
  for (const GraphId id : dataset_->LiveIds()) {
    IndexGraph(id);
  }
  watermark_ = dataset_->log().LatestSeq();
}

void FtvIndex::IndexGraph(GraphId id) {
  if (id >= summaries_.size()) summaries_.resize(id + 1);
  summaries_[id] = GraphFeatures::Extract(dataset_->graph(id));
}

std::size_t FtvIndex::SyncWithDataset() {
  const std::vector<ChangeRecord> records =
      dataset_->log().ExtractSince(watermark_);
  if (records.empty()) return 0;
  // Coalesce: a graph touched multiple times needs only one re-derivation
  // against its final state in this window.
  std::vector<GraphId> touched;
  for (const ChangeRecord& r : records) {
    touched.push_back(r.graph_id);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  std::size_t updates = 0;
  if (dataset_->IdHorizon() > summaries_.size()) {
    summaries_.resize(dataset_->IdHorizon());
  }
  for (const GraphId id : touched) {
    if (dataset_->IsLive(id)) {
      IndexGraph(id);  // ADD or UA/UR: (re-)derive the local summary
    } else {
      if (id < summaries_.size()) summaries_[id].reset();  // DEL
    }
    ++updates;
  }
  watermark_ = dataset_->log().LatestSeq();
  return updates;
}

DynamicBitset FtvIndex::CandidateSet(const GraphFeatures& query_features,
                                     FtvQueryDirection direction) const {
  DynamicBitset candidates(dataset_->IdHorizon());
  const std::size_t limit =
      std::min(summaries_.size(), dataset_->IdHorizon());
  for (std::size_t id = 0; id < limit; ++id) {
    const auto& summary = summaries_[id];
    if (!summary.has_value() || !dataset_->IsLive(static_cast<GraphId>(id))) {
      continue;
    }
    const bool pass = direction == FtvQueryDirection::kSubgraph
                          ? query_features.CouldBeSubgraphOf(*summary)
                          : summary->CouldBeSubgraphOf(query_features);
    if (pass) candidates.Set(id);
  }
  return candidates;
}

DynamicBitset FtvIndex::CandidateSetOver(
    const std::vector<std::optional<GraphFeatures>>& summaries,
    const DynamicBitset& live, const GraphFeatures& query_features,
    FtvQueryDirection direction) {
  DynamicBitset candidates(live.size());
  const std::size_t limit = std::min(summaries.size(), live.size());
  for (std::size_t id = 0; id < limit; ++id) {
    const auto& summary = summaries[id];
    if (!summary.has_value() || !live.Test(id)) continue;
    const bool pass = direction == FtvQueryDirection::kSubgraph
                          ? query_features.CouldBeSubgraphOf(*summary)
                          : summary->CouldBeSubgraphOf(query_features);
    if (pass) candidates.Set(id);
  }
  return candidates;
}

std::size_t FtvIndex::IndexedCount() const {
  std::size_t count = 0;
  for (const auto& s : summaries_) {
    if (s.has_value()) ++count;
  }
  return count;
}

const GraphFeatures* FtvIndex::SummaryOf(GraphId id) const {
  if (id >= summaries_.size() || !summaries_[id].has_value()) return nullptr;
  return &*summaries_[id];
}

}  // namespace gcp
