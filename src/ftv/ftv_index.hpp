// Updatable filter-then-verify (FTV) dataset index.
//
// The paper's §1 observes that FTV methods — the other research thread
// besides SI heuristics — cannot handle dataset changes because "none of
// the proposed FTV algorithms so far has updatable index or similar
// solutions", which is why GC+ is evaluated over SI methods. This module
// implements exactly the missing capability, as a baseline/companion:
// a per-graph monotone-feature summary index that
//   * filters a query's candidate set by feature dominance (sound: never
//     drops a true answer; paper §1's "candidate set"),
//   * and maintains itself *incrementally* from the dataset change log —
//     ADD extracts one summary, DEL drops one, UA/UR re-derive only the
//     touched graph's summary (an O(|G_i|) local update).
//
// GC+ is orthogonal: it prunes whatever candidate set Method M produces,
// so it composes with this index (GraphCachePlusOptions::use_ftv_index).

#ifndef GCP_FTV_FTV_INDEX_HPP_
#define GCP_FTV_FTV_INDEX_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "dataset/dataset.hpp"
#include "graph/features.hpp"

namespace gcp {

/// Direction of the candidate-set filter (mirrors core's QueryKind
/// without depending on the runtime layer).
enum class FtvQueryDirection {
  kSubgraph,    ///< Candidates: graphs whose features dominate the query's.
  kSupergraph,  ///< Candidates: graphs whose features the query dominates.
};

/// \brief Incrementally-maintained feature index over a GraphDataset.
///
/// The summary table is copy-on-write: it lives behind a shared immutable
/// vector that engine snapshots alias for free, and a mutating
/// SyncWithDataset republishes a fresh vector (one clone per FTV-mutating
/// batch — counted by summary_copies() and surfaced as the engine's
/// snapshot_summary_copies statistic). Publishing a snapshot never copies
/// summaries.
class FtvIndex {
 public:
  using SummaryVec = std::vector<std::optional<GraphFeatures>>;

  /// Builds summaries for every live graph and records the current log
  /// watermark. The dataset must outlive the index.
  explicit FtvIndex(const GraphDataset& dataset);

  /// Catches up with dataset changes since the last (re)build/sync by
  /// consuming the change log incrementally. Returns the number of
  /// per-graph summary updates performed.
  std::size_t SyncWithDataset();

  /// Candidate set of `query_features` over the live dataset: a bitset
  /// over [0, IdHorizon()) that is a superset of the true answer set
  /// (never a false drop) and a subset of the live mask.
  DynamicBitset CandidateSet(const GraphFeatures& query_features,
                             FtvQueryDirection direction) const;

  /// True when the index reflects every logged change.
  bool InSync() const {
    return watermark_ == dataset_->log().LatestSeq();
  }

  /// Number of indexed (live) graphs.
  std::size_t IndexedCount() const;

  /// Summary accessor (nullptr when `id` is not live / not indexed).
  const GraphFeatures* SummaryOf(GraphId id) const;

  /// The per-graph-id summaries (holes for deleted ids).
  const SummaryVec& summaries() const { return *summaries_; }

  /// Shared immutable view of the summaries — aliased (not copied) into
  /// the engine's snapshots so the epoch read path can filter without
  /// touching the index or the dataset. Stable across non-mutating syncs.
  std::shared_ptr<const SummaryVec> shared_summaries() const {
    return summaries_;
  }

  /// Number of copy-on-write clones of the summary vector performed so
  /// far — exactly one per FTV-mutating SyncWithDataset batch, never one
  /// per published snapshot. Readable without the engine lock.
  std::uint64_t summary_copies() const {
    return summary_copies_.load(std::memory_order_relaxed);
  }

  /// Candidate set over an exported summary view: same filter as
  /// CandidateSet, but reading `summaries` and the `live` mask instead of
  /// the backing dataset (lock-free snapshot path). Returns a bitset over
  /// [0, live.size()).
  static DynamicBitset CandidateSetOver(
      const SummaryVec& summaries, const DynamicBitset& live,
      const GraphFeatures& query_features, FtvQueryDirection direction);

 private:
  void IndexGraph(SummaryVec& into, GraphId id) const;

  const GraphDataset* dataset_;
  LogSeq watermark_ = 0;
  /// Per-graph-id feature summaries; holes for deleted ids. Immutable
  /// once published here; mutations clone (COW) and swap the pointer.
  std::shared_ptr<const SummaryVec> summaries_;
  std::atomic<std::uint64_t> summary_copies_{0};
};

}  // namespace gcp

#endif  // GCP_FTV_FTV_INDEX_HPP_
