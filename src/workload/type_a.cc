#include "workload/type_a.hpp"

#include <cassert>

#include "common/rng.hpp"
#include "workload/query_gen.hpp"
#include "workload/zipf.hpp"

namespace gcp {

Workload GenerateTypeA(const std::vector<Graph>& dataset,
                       const TypeAOptions& options) {
  assert(!dataset.empty());
  assert(!options.sizes.empty());
  Workload w;
  w.name = std::string(options.graph_dist == SelectionDist::kZipf ? "Z" : "U") +
           (options.node_dist == SelectionDist::kZipf ? "Z" : "U");
  w.queries.reserve(options.num_queries);

  Rng rng(options.seed);
  const ZipfSampler graph_zipf(dataset.size(), options.zipf_alpha);

  for (std::size_t q = 0; q < options.num_queries; ++q) {
    // Source graph: Uniform or Zipf over dataset positions.
    const std::size_t gi = options.graph_dist == SelectionDist::kZipf
                               ? graph_zipf.Sample(rng)
                               : rng.UniformBelow(dataset.size());
    const Graph& source = dataset[gi];
    if (source.NumVertices() == 0) {
      --q;  // degenerate source; redraw (cannot happen with AIDS-like data)
      continue;
    }
    // Start node: Uniform or Zipf over the source's vertex ids.
    std::size_t node;
    if (options.node_dist == SelectionDist::kZipf) {
      const ZipfSampler node_zipf(source.NumVertices(), options.zipf_alpha);
      node = node_zipf.Sample(rng);
    } else {
      node = rng.UniformBelow(source.NumVertices());
    }
    // Query size uniform over the configured sizes.
    const std::size_t size = options.sizes[rng.UniformBelow(
        options.sizes.size())];
    WorkloadQuery wq;
    wq.query = ExtractBfsQuery(source, static_cast<VertexId>(node), size);
    w.queries.push_back(std::move(wq));
  }
  return w;
}

Workload GenerateTypeAByName(const std::vector<Graph>& dataset,
                             const std::string& name, std::size_t num_queries,
                             std::uint64_t seed, double zipf_alpha) {
  TypeAOptions opts;
  opts.zipf_alpha = zipf_alpha;
  opts.num_queries = num_queries;
  opts.seed = seed;
  assert(name.size() == 2);
  opts.graph_dist =
      name[0] == 'Z' ? SelectionDist::kZipf : SelectionDist::kUniform;
  opts.node_dist =
      name[1] == 'Z' ? SelectionDist::kZipf : SelectionDist::kUniform;
  return GenerateTypeA(dataset, opts);
}

}  // namespace gcp
