// Type B workloads (paper §7.1): two per-size query pools — random-walk
// queries with guaranteed non-empty answers (a subgraph of its source
// always matches at least the source) and "no-answer" queries whose
// relabelling keeps a non-empty candidate set but an empty answer set.
// Workload queries flip a biased coin between pools (no-answer probability
// 0% / 20% / 50%) and then draw Zipf-skewed from the chosen pool.

#ifndef GCP_WORKLOAD_TYPE_B_HPP_
#define GCP_WORKLOAD_TYPE_B_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "match/matcher.hpp"
#include "workload/workload.hpp"

namespace gcp {

/// \brief Parameters of a Type B workload.
struct TypeBOptions {
  /// Probability of drawing from the no-answer pool (paper: 0, 0.2, 0.5).
  double no_answer_prob = 0.0;
  /// Pool sizes (paper: 10,000 and 3,000; scaled down in benches). These
  /// are per-workload pools, not per-size, with sizes mixed inside.
  std::size_t answer_pool_size = 10000;
  std::size_t no_answer_pool_size = 3000;
  double zipf_alpha = 1.4;
  std::vector<std::size_t> sizes = {4, 8, 12, 16, 20};
  std::size_t num_queries = 10000;
  std::uint64_t seed = 2;
  /// Relabel retries per no-answer query before drawing a fresh walk.
  int max_relabel_attempts = 64;
  /// Matcher verifying emptiness during pool construction.
  MatcherKind oracle_matcher = MatcherKind::kVf2Plus;
};

/// Generates a Type B workload from the initial dataset graphs.
Workload GenerateTypeB(const std::vector<Graph>& dataset,
                       const TypeBOptions& options);

}  // namespace gcp

#endif  // GCP_WORKLOAD_TYPE_B_HPP_
