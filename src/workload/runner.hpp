// Experiment runner: drives a workload and a change plan through Method M
// alone, GC+/EVI or GC+/CON — the three systems the paper's Figures 4-6
// compare — over identically evolving datasets.
//
// Dataset evolution is deterministic in (initial dataset, plan, plan
// seed): plan targets are resolved against the live dataset by an RNG
// that consumes no query-dependent state, so every mode observes the
// exact same dataset sequence. This is what makes cross-mode answer
// equivalence a sound oracle (Theorems 3 and 6) and speedups well
// defined.

#ifndef GCP_WORKLOAD_RUNNER_HPP_
#define GCP_WORKLOAD_RUNNER_HPP_

#include <string>
#include <vector>

#include "cache/statistics.hpp"
#include "core/graphcache_plus.hpp"
#include "dataset/change_plan.hpp"
#include "workload/workload.hpp"

namespace gcp {

/// Which system executes the workload.
enum class RunMode {
  kMethodM,  ///< Bare Method M: every live graph is sub-iso tested.
  kEvi,      ///< GC+ with the EVI consistency model.
  kCon,      ///< GC+ with the CON consistency model.
};

std::string_view RunModeName(RunMode mode);

/// \brief One experiment configuration.
struct RunnerConfig {
  RunMode mode = RunMode::kCon;
  MatcherKind method = MatcherKind::kVf2;
  QueryKind query_kind = QueryKind::kSubgraph;
  ReplacementPolicy policy = ReplacementPolicy::kHybrid;
  std::size_t cache_capacity = 100;   ///< Paper default.
  std::size_t window_capacity = 20;   ///< Paper default.
  /// Queries executed before measurement starts (paper: one window).
  std::size_t warmup_queries = 20;
  std::size_t verify_threads = 1;
  /// Closed-loop client threads sharing the one GraphCachePlus instance.
  /// 1 = the classic serial loop. With N > 1, warm-up still runs serially
  /// (deterministic warm cache), then N threads pull queries from a shared
  /// ticket; plan batches fire through ApplyDatasetChanges, serialized
  /// against in-flight read phases. Answers stay exact w.r.t. the dataset
  /// state each query observes, but the query↔change interleaving is no
  /// longer deterministic — cross-mode answer equivalence holds only for
  /// an empty change plan.
  std::size_t client_threads = 1;
  /// Digest-sharded cache stores (1 = the single-store legacy engine,
  /// bit-exact with PR 2/3 including replacement decisions).
  std::size_t shards = 1;
  /// Drain maintenance on a dedicated thread (queue-pressure/timer
  /// wakeups) instead of opportunistic post-query try-lock drains.
  bool maintenance_thread = false;
  /// Epoch-protected read path: read phases pin an epoch and read an
  /// immutable published snapshot instead of taking the engine lock;
  /// dataset changes publish + retire instead of stopping the world. Off
  /// (default) is the PR 4 lock path — bit-exact, the equivalence oracle.
  bool epoch_reads = false;
  /// Deep-copy each discovery survivor's Graph under the shard lock
  /// instead of sharing ownership (the pre-PR 6 behaviour; the "before"
  /// side of the copy-costs bench and the sharing equivalence oracle).
  bool copy_discovery_survivors = false;
  std::size_t max_sub_hits = 16;
  std::size_t max_super_hits = 16;
  /// Reconcile change batches through the change-relevance index (on,
  /// the default) or the brute-force ValidateAll oracle (off) — bit-exact
  /// either way; off is the "before" side of the reconciliation bench.
  bool relevance_index = true;
  /// CON-only delta re-validation at reconcile time (default off):
  /// per-pair keep/re-verify instead of Algorithm 2's fade-only clears.
  bool delta_revalidation = false;
  /// Sub-pattern fragment cache (on, the default) or the fragment-free
  /// oracle (off) — answers, resident whole-query state and replacement
  /// decisions are bit-exact either way; off is the "before" side of the
  /// fragments bench.
  bool fragments = true;
  /// CON-only retrospective validation budget per sync (0 = off, §8).
  std::size_t retrospective_budget = 0;
  /// Equip Method M with the updatable FTV index (src/ftv).
  bool use_ftv = false;
  /// Run the legacy hot path: per-pair match-state recomputation and
  /// brute-force O(resident) hit discovery instead of reusable match
  /// contexts and the inverted feature-signature index. Answers are
  /// identical either way — this is the "before" side of the perf benches.
  bool legacy_hot_path = false;
  /// Seed of the change-plan executor (same seed across modes ⇒ same
  /// dataset evolution).
  std::uint64_t plan_seed = 99;
  /// Record every query's answer ids (for equivalence oracles).
  bool record_answers = false;
  /// Durable checkpoint directory (--checkpoint-dir; empty = durability
  /// off). With checkpoint_interval_us and maintenance_thread the engine
  /// checkpoints in the background while the workload runs.
  std::string checkpoint_dir;
  /// Background checkpoint period in µs (--checkpoint-interval; 0 = no
  /// background checkpoints — explicit ones still work).
  std::size_t checkpoint_interval_us = 0;
  /// Attempt a verified warm restart from checkpoint_dir before the first
  /// query (--warm-restart); degrades to cold start when no checkpoint
  /// survives validation.
  bool warm_restart = false;
  /// Write one final checkpoint after the end-of-run flush, so a
  /// follow-up warm_restart run restores the fully-warm cache.
  bool checkpoint_at_end = false;
  /// Byte-accounted capacity cap (--byte-budget; 0 = off, the entry-count
  /// legacy model). See GraphCachePlusOptions::byte_budget.
  std::size_t byte_budget = 0;
};

/// \brief Outcome of one experiment run.
struct RunReport {
  std::string label;
  /// Post-warm-up aggregates.
  AggregateMetrics agg;
  /// Cache-side counters at end of run.
  StatisticsManager cache_stats;
  /// Per-query answers (all queries, warm-up included) when requested.
  std::vector<std::vector<GraphId>> answers;
  /// What the pre-run warm restart did (config.warm_restart only).
  GraphCachePlus::WarmRestartReport warm_restart_report;
  /// Wall time of the whole run (ms).
  double total_wall_ms = 0.0;
  /// Wall time of the post-warm-up (measured) span (ms) — the throughput
  /// denominator for the scaling bench.
  double measured_wall_ms = 0.0;
  /// Queries in the measured span.
  std::size_t measured_queries = 0;

  double qps() const {
    return measured_wall_ms <= 0.0
               ? 0.0
               : static_cast<double>(measured_queries) /
                     (measured_wall_ms / 1000.0);
  }

  double avg_query_ms() const { return agg.AvgQueryTimeMs(); }
  double avg_overhead_ms() const { return agg.AvgOverheadMs(); }
  double avg_si_tests() const { return agg.AvgSiTests(); }
};

/// Runs `workload` (with `plan` firing between queries) under `config`,
/// starting from a fresh copy of `initial`.
RunReport RunWorkload(const std::vector<Graph>& initial,
                      const Workload& workload, const ChangePlan& plan,
                      const RunnerConfig& config);

/// Speedup of `cached` over `base` in average query time (>1 = faster).
double QueryTimeSpeedup(const RunReport& base, const RunReport& cached);

/// Speedup in the average number of sub-iso tests per query.
double SiTestSpeedup(const RunReport& base, const RunReport& cached);

}  // namespace gcp

#endif  // GCP_WORKLOAD_RUNNER_HPP_
