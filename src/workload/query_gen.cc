#include "workload/query_gen.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace gcp {

namespace {

// Builds a query graph from `source` restricted to `edges`, remapping
// vertex ids densely in first-appearance order.
Graph BuildFromEdges(const Graph& source,
                     const std::vector<std::pair<VertexId, VertexId>>& edges,
                     VertexId start) {
  Graph q;
  std::unordered_map<VertexId, VertexId> remap;
  auto map_vertex = [&](VertexId v) {
    const auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    const VertexId nv = q.AddVertex(source.label(v));
    remap.emplace(v, nv);
    return nv;
  };
  map_vertex(start);  // queries of 0 edges still carry the start vertex
  for (const auto& [u, v] : edges) {
    const VertexId qu = map_vertex(u);
    const VertexId qv = map_vertex(v);
    q.AddEdge(qu, qv).ok();
  }
  return q;
}

}  // namespace

Graph ExtractBfsQuery(const Graph& source, VertexId start,
                      std::size_t num_edges) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  if (source.NumVertices() == 0) return Graph();
  std::vector<bool> visited(source.NumVertices(), false);
  std::deque<VertexId> queue;
  visited[start] = true;
  queue.push_back(start);
  while (!queue.empty() && edges.size() < num_edges) {
    const VertexId u = queue.front();
    queue.pop_front();
    // Deterministic neighbour order (sorted adjacency): repeated
    // extractions from one (source, start) are prefixes of each other.
    const NeighborRange neigh = source.neighbors(u);
    for (const VertexId v : neigh) {
      if (edges.size() >= num_edges) break;
      if (visited[v]) continue;
      visited[v] = true;
      queue.push_back(v);
      // All edges from the new vertex towards already-visited vertices.
      for (const VertexId w : source.neighbors(v)) {
        if (edges.size() >= num_edges) break;
        if (visited[w] && w != v) {
          // Edge (v, w); avoid duplicates: (v, w) is new because v was just
          // visited, so no earlier vertex could have added it.
          edges.emplace_back(v, w);
        }
      }
    }
  }
  return BuildFromEdges(source, edges, start);
}

Graph ExtractRandomWalkQuery(Rng& rng, const Graph& source, VertexId start,
                             std::size_t num_edges) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  if (source.NumVertices() == 0) return Graph();
  std::vector<VertexId> visited{start};
  std::vector<bool> is_visited(source.NumVertices(), false);
  is_visited[start] = true;
  // Track collected edges to avoid duplicates.
  auto has_edge = [&edges](VertexId a, VertexId b) {
    for (const auto& [u, v] : edges) {
      if ((u == a && v == b) || (u == b && v == a)) return true;
    }
    return false;
  };
  VertexId cur = start;
  std::size_t stuck = 0;
  const std::size_t max_stuck = 8 * (num_edges + 4);
  while (edges.size() < num_edges && stuck < max_stuck) {
    const auto& neigh = source.neighbors(cur);
    if (neigh.empty()) break;
    const VertexId next = neigh[rng.UniformBelow(neigh.size())];
    if (!has_edge(cur, next)) {
      edges.emplace_back(cur, next);
      stuck = 0;
    } else {
      ++stuck;
    }
    if (!is_visited[next]) {
      is_visited[next] = true;
      visited.push_back(next);
    }
    // Occasionally teleport to a random visited vertex to escape traps.
    cur = (stuck > 0 && stuck % 4 == 0)
              ? visited[rng.UniformBelow(visited.size())]
              : next;
  }
  return BuildFromEdges(source, edges, start);
}

NoAnswerOracle NoAnswerOracle::Build(const std::vector<Graph>& dataset) {
  NoAnswerOracle oracle;
  oracle.dataset_features.reserve(dataset.size());
  for (const Graph& g : dataset) {
    oracle.dataset_features.push_back(GraphFeatures::Extract(g));
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      oracle.label_pool.push_back(g.label(v));
    }
  }
  return oracle;
}

std::size_t NoAnswerOracle::CountCandidates(const GraphFeatures& qf) const {
  std::size_t count = 0;
  for (const GraphFeatures& df : dataset_features) {
    if (qf.CouldBeSubgraphOf(df)) ++count;
  }
  return count;
}

bool MakeNoAnswerQuery(Rng& rng, Graph& query,
                       const std::vector<Graph>& dataset,
                       const NoAnswerOracle& oracle,
                       const SubgraphMatcher& matcher, int max_attempts) {
  if (oracle.label_pool.empty()) return false;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Relabel every vertex with labels drawn from the dataset's label
    // multiset (frequency-weighted, so candidate sets stay non-empty).
    Graph candidate;
    for (VertexId v = 0; v < query.NumVertices(); ++v) {
      candidate.AddVertex(rng.Choice(oracle.label_pool));
    }
    for (const auto& [u, v] : query.Edges()) candidate.AddEdge(u, v).ok();

    const GraphFeatures qf = GraphFeatures::Extract(candidate);
    bool any_candidate = false;
    bool any_answer = false;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      if (!qf.CouldBeSubgraphOf(oracle.dataset_features[i])) continue;
      any_candidate = true;
      if (matcher.Contains(candidate, dataset[i])) {
        any_answer = true;
        break;
      }
    }
    if (any_candidate && !any_answer) {
      query = std::move(candidate);
      return true;
    }
  }
  return false;
}

}  // namespace gcp
