#include "workload/type_b.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>

#include "common/rng.hpp"
#include "workload/query_gen.hpp"
#include "workload/zipf.hpp"

namespace gcp {

namespace {

// "Uniformly selecting a start node across all nodes in all dataset
// graphs": graph probability proportional to its vertex count.
struct GlobalNodePicker {
  std::vector<std::size_t> cumulative;  // cumulative vertex counts
  std::size_t total = 0;

  explicit GlobalNodePicker(const std::vector<Graph>& dataset) {
    cumulative.reserve(dataset.size());
    for (const Graph& g : dataset) {
      total += g.NumVertices();
      cumulative.push_back(total);
    }
  }

  // Returns (graph index, vertex id).
  std::pair<std::size_t, VertexId> Pick(Rng& rng) const {
    assert(total > 0);
    const std::size_t x = rng.UniformBelow(total);
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), x);
    const std::size_t gi =
        static_cast<std::size_t>(std::distance(cumulative.begin(), it));
    const std::size_t before = gi == 0 ? 0 : cumulative[gi - 1];
    return {gi, static_cast<VertexId>(x - before)};
  }
};

}  // namespace

Workload GenerateTypeB(const std::vector<Graph>& dataset,
                       const TypeBOptions& options) {
  assert(!dataset.empty());
  Workload w;
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g%%",
                  options.no_answer_prob * 100.0);
    w.name = buf;
  }

  Rng rng(options.seed);
  const GlobalNodePicker picker(dataset);
  const auto matcher = MakeMatcher(options.oracle_matcher);
  const NoAnswerOracle oracle = NoAnswerOracle::Build(dataset);

  auto draw_walk_query = [&]() {
    const auto [gi, node] = picker.Pick(rng);
    const std::size_t size =
        options.sizes[rng.UniformBelow(options.sizes.size())];
    return ExtractRandomWalkQuery(rng, dataset[gi], node, size);
  };

  // Pool 1: non-empty-answer queries (a subgraph of a dataset graph always
  // has that graph in its answer).
  std::vector<Graph> answer_pool;
  answer_pool.reserve(options.answer_pool_size);
  for (std::size_t i = 0; i < options.answer_pool_size; ++i) {
    answer_pool.push_back(draw_walk_query());
  }

  // Pool 2: no-answer queries via relabelling (only when needed).
  std::vector<Graph> no_answer_pool;
  if (options.no_answer_prob > 0.0) {
    no_answer_pool.reserve(options.no_answer_pool_size);
    while (no_answer_pool.size() < options.no_answer_pool_size) {
      Graph q = draw_walk_query();
      if (MakeNoAnswerQuery(rng, q, dataset, oracle, *matcher,
                            options.max_relabel_attempts)) {
        no_answer_pool.push_back(std::move(q));
      }
      // On failure a fresh walk is drawn on the next iteration (the
      // paper's generator also loops until success).
    }
  }

  // Mix: biased coin between pools, Zipf rank within the chosen pool.
  const ZipfSampler answer_zipf(answer_pool.size(), options.zipf_alpha);
  const ZipfSampler no_answer_zipf(
      no_answer_pool.empty() ? 1 : no_answer_pool.size(), options.zipf_alpha);
  w.queries.reserve(options.num_queries);
  for (std::size_t i = 0; i < options.num_queries; ++i) {
    WorkloadQuery wq;
    const bool pick_no_answer =
        !no_answer_pool.empty() && rng.Bernoulli(options.no_answer_prob);
    if (pick_no_answer) {
      wq.query = no_answer_pool[no_answer_zipf.Sample(rng)];
      wq.from_no_answer_pool = true;
    } else {
      wq.query = answer_pool[answer_zipf.Sample(rng)];
    }
    w.queries.push_back(std::move(wq));
  }
  return w;
}

}  // namespace gcp
