// Zipf sampling for workload skew (paper §7.1: Zipf α = 1.4 by default,
// p(x) = x^{-α} / ζ(α) truncated to the population size).

#ifndef GCP_WORKLOAD_ZIPF_HPP_
#define GCP_WORKLOAD_ZIPF_HPP_

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace gcp {

/// \brief Samples 0-based ranks from a (truncated) Zipf distribution.
///
/// Rank 0 is the most popular element; p(rank r) ∝ (r + 1)^{-α}.
class ZipfSampler {
 public:
  /// `n` must be ≥ 1; `alpha` ≥ 0 (0 degenerates to uniform).
  ZipfSampler(std::size_t n, double alpha);

  /// Draws one rank in [0, n).
  std::size_t Sample(Rng& rng) const;

  /// Probability mass of `rank`.
  double Pmf(std::size_t rank) const;

  std::size_t n() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

 private:
  std::vector<double> cdf_;
  double alpha_;
};

}  // namespace gcp

#endif  // GCP_WORKLOAD_ZIPF_HPP_
