#include "workload/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gcp {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::Pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace gcp
