// Query extraction primitives (paper §7.1).
//
// Type A queries: BFS extraction from a dataset graph — starting at a
// chosen node, each newly visited node contributes all its edges towards
// already-visited nodes until the target edge count is reached.
// Type B queries: random-walk extraction, plus "no-answer" queries
// produced by relabelling a walk-extracted query until it keeps a
// non-empty candidate set (some graph passes the feature filter) but has
// an empty answer set (no graph contains it).

#ifndef GCP_WORKLOAD_QUERY_GEN_HPP_
#define GCP_WORKLOAD_QUERY_GEN_HPP_

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "graph/features.hpp"
#include "graph/graph.hpp"
#include "match/matcher.hpp"

namespace gcp {

/// BFS query extraction: grows from `start` in (deterministic) BFS order;
/// every newly visited vertex adds all its edges to already-visited
/// vertices, stopping once `num_edges` edges were collected. The result is
/// connected and is by construction a subgraph of `source` (it may have
/// fewer than `num_edges` edges when the component is exhausted first).
///
/// Determinism matters: two extractions from the same (source, start) with
/// sizes s1 < s2 yield nested queries (the s1-query is a prefix — hence a
/// subgraph — of the s2-query). This gives Type A workloads the
/// subgraph/supergraph hit structure the paper's motivation describes
/// (hierarchies of increasingly specific patterns).
Graph ExtractBfsQuery(const Graph& source, VertexId start,
                      std::size_t num_edges);

/// Random-walk query extraction: walks from `start`, collecting each
/// traversed edge once, restarting from a random visited vertex on dead
/// ends, until `num_edges` distinct edges were collected (or the component
/// is exhausted).
Graph ExtractRandomWalkQuery(Rng& rng, const Graph& source, VertexId start,
                             std::size_t num_edges);

/// Precomputed dataset-side state for no-answer query synthesis.
struct NoAnswerOracle {
  /// Features of every dataset graph (the FTV candidate filter).
  std::vector<GraphFeatures> dataset_features;
  /// Label multiset of the dataset (sampling pool for relabelling).
  std::vector<Label> label_pool;

  static NoAnswerOracle Build(const std::vector<Graph>& dataset);

  /// Candidate ids of `query` under the feature filter.
  std::size_t CountCandidates(const GraphFeatures& qf) const;
};

/// Relabels `query` (in place) with labels drawn from the dataset label
/// pool until it has a non-empty candidate set but an empty answer set
/// against `dataset` (verified with `matcher`). Returns true on success
/// within `max_attempts`.
bool MakeNoAnswerQuery(Rng& rng, Graph& query,
                       const std::vector<Graph>& dataset,
                       const NoAnswerOracle& oracle,
                       const SubgraphMatcher& matcher, int max_attempts);

}  // namespace gcp

#endif  // GCP_WORKLOAD_QUERY_GEN_HPP_
