// Workload container shared by the Type A / Type B generators and the
// experiment runner.

#ifndef GCP_WORKLOAD_WORKLOAD_HPP_
#define GCP_WORKLOAD_WORKLOAD_HPP_

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace gcp {

/// One workload query.
struct WorkloadQuery {
  Graph query;
  /// Type B bookkeeping: drawn from the no-answer pool (answer was empty
  /// against the *initial* dataset; changes may alter that).
  bool from_no_answer_pool = false;
};

/// \brief A named sequence of queries.
struct Workload {
  std::string name;
  std::vector<WorkloadQuery> queries;

  std::size_t size() const { return queries.size(); }
};

}  // namespace gcp

#endif  // GCP_WORKLOAD_WORKLOAD_HPP_
