#include "workload/runner.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/stopwatch.hpp"

namespace gcp {

std::string_view RunModeName(RunMode mode) {
  switch (mode) {
    case RunMode::kMethodM:
      return "M";
    case RunMode::kEvi:
      return "EVI";
    case RunMode::kCon:
      return "CON";
  }
  return "Unknown";
}

namespace {

/// N client threads pull query tickets from a shared counter; whichever
/// thread draws a query with a due change batch fires it through
/// ApplyDatasetChanges (exclusive lock) before querying. `answers` must be
/// pre-sized: each slot is written by exactly one thread.
void RunClientsConcurrently(GraphCachePlus& gc, const Workload& workload,
                            ChangePlanExecutor& executor,
                            const RunnerConfig& config, std::size_t first,
                            std::vector<std::vector<GraphId>>* answers) {
  std::atomic<std::size_t> ticket{first};
  std::mutex plan_mu;
  auto client = [&] {
    for (std::size_t i = ticket.fetch_add(1); i < workload.size();
         i = ticket.fetch_add(1)) {
      {
        std::lock_guard<std::mutex> lock(plan_mu);
        if (executor.NextBatchAt() <= i) {
          gc.ApplyDatasetChanges([&executor, i](GraphDataset&) {
            executor.AdvanceTo(static_cast<std::uint32_t>(i));
          });
        }
      }
      QueryResult r = gc.Query(workload.queries[i].query, config.query_kind);
      if (answers != nullptr) (*answers)[i] = std::move(r.answer);
    }
  };
  std::vector<std::thread> clients;
  clients.reserve(config.client_threads);
  for (std::size_t t = 0; t < config.client_threads; ++t) {
    clients.emplace_back(client);
  }
  for (auto& c : clients) c.join();
}

}  // namespace

RunReport RunWorkload(const std::vector<Graph>& initial,
                      const Workload& workload, const ChangePlan& plan,
                      const RunnerConfig& config) {
  GraphDataset dataset;
  dataset.Bootstrap(initial);
  ChangePlanExecutor executor(plan, initial, dataset, Rng(config.plan_seed));

  GraphCachePlusOptions opts;
  opts.method_m = config.method;
  opts.policy = config.policy;
  opts.cache_capacity = config.cache_capacity;
  opts.window_capacity = config.window_capacity;
  opts.verify_threads = config.verify_threads;
  opts.num_shards = config.shards;
  opts.maintenance_thread = config.maintenance_thread;
  opts.epoch_reads = config.epoch_reads;
  opts.copy_discovery_survivors = config.copy_discovery_survivors;
  opts.max_sub_hits = config.max_sub_hits;
  opts.max_super_hits = config.max_super_hits;
  opts.use_relevance_index = config.relevance_index;
  opts.use_fragment_cache = config.fragments;
  opts.delta_revalidation = config.delta_revalidation;
  opts.retrospective_budget = config.retrospective_budget;
  opts.use_ftv_index = config.use_ftv;
  opts.reuse_match_context = !config.legacy_hot_path;
  opts.use_discovery_index = !config.legacy_hot_path;
  opts.checkpoint_dir = config.checkpoint_dir;
  opts.checkpoint_interval_us = config.checkpoint_interval_us;
  opts.byte_budget = config.byte_budget;
  switch (config.mode) {
    case RunMode::kMethodM:
      // Bare Method M: no admission ⇒ the cache stays empty and every
      // query is verified against the full live dataset.
      opts.model = CacheModel::kEvi;
      opts.enable_admission = false;
      opts.enable_exact_shortcut = false;
      opts.enable_empty_answer_shortcut = false;
      break;
    case RunMode::kEvi:
      opts.model = CacheModel::kEvi;
      break;
    case RunMode::kCon:
      opts.model = CacheModel::kCon;
      break;
  }

  GraphCachePlus gc(&dataset, opts);

  RunReport report;
  report.label = std::string(RunModeName(config.mode)) +
                 (config.use_ftv ? "+FTV" : "") + "/" +
                 std::string(MatcherKindName(config.method)) + "/" +
                 workload.name;
  if (config.record_answers) report.answers.resize(workload.size());

  if (config.warm_restart && !config.checkpoint_dir.empty()) {
    // Verified warm restart before the first query; a cold start (nothing
    // usable on disk) is a valid outcome, not an error.
    (void)gc.WarmRestart(&report.warm_restart_report);
  }

  const std::size_t warmup =
      config.warmup_queries < workload.size() ? config.warmup_queries : 0;
  std::vector<std::vector<GraphId>>* answers =
      config.record_answers ? &report.answers : nullptr;

  Stopwatch wall;
  Stopwatch measured_wall;
  if (config.client_threads <= 1) {
    for (std::size_t i = 0; i < workload.size(); ++i) {
      executor.AdvanceTo(static_cast<std::uint32_t>(i));
      QueryResult r = gc.Query(workload.queries[i].query, config.query_kind);
      if (answers != nullptr) (*answers)[i] = std::move(r.answer);
      if (warmup != 0 && i + 1 == warmup) {
        gc.ResetAggregate();
        measured_wall.Restart();
      }
    }
  } else {
    // Warm-up stays serial so every configuration starts its measured span
    // from the same deterministic warm cache.
    for (std::size_t i = 0; i < warmup; ++i) {
      executor.AdvanceTo(static_cast<std::uint32_t>(i));
      QueryResult r = gc.Query(workload.queries[i].query, config.query_kind);
      if (answers != nullptr) (*answers)[i] = std::move(r.answer);
    }
    if (warmup != 0) gc.ResetAggregate();
    measured_wall.Restart();
    RunClientsConcurrently(gc, workload, executor, config, warmup, answers);
  }
  report.measured_wall_ms = measured_wall.ElapsedMillis();
  report.measured_queries = workload.size() - warmup;
  report.total_wall_ms = wall.ElapsedMillis();
  gc.FlushMaintenance();
  if (config.checkpoint_at_end && !config.checkpoint_dir.empty()) {
    // Persist the fully-settled warm cache (after the flush, so queued
    // admissions make it in). Off the measured span by construction.
    (void)gc.CheckpointNow();
  }
  report.agg = gc.AggregateSnapshot();
  report.cache_stats = gc.CacheStatsSnapshot();
  return report;
}

double QueryTimeSpeedup(const RunReport& base, const RunReport& cached) {
  const double cached_ms = cached.avg_query_ms();
  if (cached_ms <= 0.0) return 0.0;
  return base.avg_query_ms() / cached_ms;
}

double SiTestSpeedup(const RunReport& base, const RunReport& cached) {
  const double cached_tests = cached.avg_si_tests();
  if (cached_tests <= 0.0) return 0.0;
  return base.avg_si_tests() / cached_tests;
}

}  // namespace gcp
