// Type A workloads (paper §7.1): queries extracted by BFS from dataset
// graphs. Three categories by the (source-graph, start-node) selection
// distributions: "UU", "ZU", "ZZ" — U = uniform, Z = Zipf(α) — e.g. ZU
// selects the source graph Zipf-skewed and the start node uniformly.

#ifndef GCP_WORKLOAD_TYPE_A_HPP_
#define GCP_WORKLOAD_TYPE_A_HPP_

#include <cstdint>
#include <vector>

#include "workload/workload.hpp"

namespace gcp {

/// Selection distribution for a Type A random choice.
enum class SelectionDist {
  kUniform,
  kZipf,
};

/// \brief Parameters of a Type A workload.
struct TypeAOptions {
  SelectionDist graph_dist = SelectionDist::kZipf;
  SelectionDist node_dist = SelectionDist::kUniform;
  double zipf_alpha = 1.4;  ///< Paper default.
  /// Query sizes in edges, selected uniformly (paper: 4, 8, 12, 16, 20).
  std::vector<std::size_t> sizes = {4, 8, 12, 16, 20};
  std::size_t num_queries = 10000;
  std::uint64_t seed = 1;
};

/// Generates a Type A workload from the initial dataset graphs.
Workload GenerateTypeA(const std::vector<Graph>& dataset,
                       const TypeAOptions& options);

/// Convenience: "UU" / "ZU" / "ZZ" by name.
Workload GenerateTypeAByName(const std::vector<Graph>& dataset,
                             const std::string& name, std::size_t num_queries,
                             std::uint64_t seed, double zipf_alpha = 1.4);

}  // namespace gcp

#endif  // GCP_WORKLOAD_TYPE_A_HPP_
