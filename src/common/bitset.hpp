// DynamicBitset: a growable, word-parallel bit vector.
//
// GC+ keys its consistency bookkeeping on dataset-graph ids: every cached
// query stores its answer set (`Answer`) and its validity indicator
// (`CGvalid`, Algorithm 2 of the paper) as one bit per dataset graph id.
// All candidate-set pruning (formulas (1)-(5)) reduces to bitset algebra,
// which is what makes cache validation and pruning cheap relative to
// subgraph-isomorphism testing.

#ifndef GCP_COMMON_BITSET_HPP_
#define GCP_COMMON_BITSET_HPP_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gcp {

/// \brief Growable bit vector with word-level set algebra.
///
/// Semantics relevant to GC+:
///  - `Resize(n)` zero-fills newly exposed bits — exactly the behaviour
///    Algorithm 2 requires when dataset graphs were added (the relation of
///    a cached query to a new graph is unknown, i.e. invalid).
///  - binary operations require equal sizes; callers align sizes first
///    (CacheValidator resizes all indicators to the dataset horizon).
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Constructs a bitset of `size` bits, all set to `value`.
  explicit DynamicBitset(std::size_t size, bool value = false) {
    Resize(size, value);
  }

  /// Number of addressable bits.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Grows (or shrinks) to `size` bits; newly exposed bits become `value`.
  void Resize(std::size_t size, bool value = false);

  /// Sets bit `i` to `value`. `i` must be < size().
  void Set(std::size_t i, bool value = true) {
    assert(i < size_);
    if (value) {
      words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
    } else {
      words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }
  }

  /// Clears bit `i`.
  void Reset(std::size_t i) { Set(i, false); }

  /// Returns bit `i`. `i` must be < size().
  bool Test(std::size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Returns bit `i`, or false when `i` is out of range. Used where ids may
  /// refer to graphs beyond a not-yet-extended indicator.
  bool TestOrFalse(std::size_t i) const { return i < size_ && Test(i); }

  /// Sets every bit.
  void SetAll();
  /// Clears every bit.
  void ResetAll();

  /// Number of set bits.
  std::size_t Count() const;
  /// True iff at least one bit is set.
  bool Any() const;
  /// True iff no bit is set.
  bool None() const { return !Any(); }
  /// True iff every bit is set.
  bool All() const { return Count() == size_; }

  /// this &= other. Sizes must match.
  void AndWith(const DynamicBitset& other);
  /// this |= other. Sizes must match.
  void OrWith(const DynamicBitset& other);
  /// this &= ~other (set difference). Sizes must match.
  void AndNotWith(const DynamicBitset& other);
  /// Flips every bit (complement within size()).
  void Complement();

  /// Returns lhs & rhs. Sizes must match.
  static DynamicBitset And(const DynamicBitset& lhs, const DynamicBitset& rhs);
  /// Returns lhs | rhs. Sizes must match.
  static DynamicBitset Or(const DynamicBitset& lhs, const DynamicBitset& rhs);
  /// Returns lhs & ~rhs. Sizes must match.
  static DynamicBitset AndNot(const DynamicBitset& lhs,
                              const DynamicBitset& rhs);
  /// Returns ~v (within v.size()).
  static DynamicBitset Not(const DynamicBitset& v);

  /// popcount(this & other) without materializing the intersection.
  std::size_t CountAnd(const DynamicBitset& other) const;

  /// True iff (this & other) has at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  /// True iff every set bit of this is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// Index of the first set bit at position >= `from`; npos when none.
  std::size_t FindNext(std::size_t from) const;
  /// Index of the first set bit; npos when none.
  std::size_t FindFirst() const { return FindNext(0); }

  /// Calls `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<std::size_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  /// Read-only view of the backing words: bit i lives in word i/64 at
  /// position i%64, and tail padding beyond size() is guaranteed zero.
  /// Lets word-granular summaries (the change-relevance index) scan in
  /// O(words) instead of O(bits).
  const std::uint64_t* words() const { return words_.data(); }
  std::size_t num_words() const { return words_.size(); }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> ToVector() const;

  /// Bits as '0'/'1' characters, index 0 first.
  std::string ToString() const;

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  // Zeroes bits in the last word beyond size_ (they must stay zero so that
  // Count/Any/equality are well defined after Complement/SetAll).
  void ClearPadding();

  static std::size_t WordsFor(std::size_t bits) { return (bits + 63) / 64; }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace gcp

#endif  // GCP_COMMON_BITSET_HPP_
