// Pressure tiers for overload-hardened serving.
//
// The engine degrades gracefully instead of failing when memory or the
// maintenance pipeline saturates. A PressureMonitor folds two load
// signals into one tier:
//
//   - byte occupancy: resident cache bytes (whole-query entries +
//     fragments, graph + bitset footprint) relative to the configured
//     byte budget. Steady-state occupancy sits at or under the budget
//     (merges evict down to it), so the byte channel keys on the
//     *transient overshoot* of unmerged window admissions — a flood of
//     large admissions between merges is the memory-pressure signal.
//   - MPSC queue depth: how far behind the maintenance drains are,
//     as a fraction of queue capacity.
//
// Tier semantics (enforced by the engine, not here):
//   NORMAL    — full caching.
//   ELEVATED  — new admission offers are shed (counted, never queued);
//               reads, hits and reconciliation unaffected.
//   CRITICAL  — additionally the fragment tier is disabled and discovery
//               misses are served straight through uncached Method M.
//
// Every shed path has a cache-bypass equivalent, so answers stay
// bit-exact by construction. Recovery is automatic: each channel uses
// enter/exit hysteresis (enter strictly above, exit at-or-below), and
// the overall tier is the max of the channels, so the tier falls back to
// NORMAL as soon as merges/drains catch up.
//
// The monitor is lock-free (relaxed atomics): tiers are heuristics, a
// momentarily stale read only delays a shed or a recovery by one query.

#ifndef GCP_COMMON_PRESSURE_HPP_
#define GCP_COMMON_PRESSURE_HPP_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace gcp {

enum class PressureTier : int {
  kNormal = 0,
  kElevated = 1,
  kCritical = 2,
};

/// Human-readable tier name ("NORMAL"/"ELEVATED"/"CRITICAL").
const char* PressureTierName(PressureTier tier);

/// Enter/exit thresholds for one hysteresis channel, as fractions of the
/// channel's reference (byte budget or queue capacity). Enter is strict
/// (frac > enter), exit is inclusive (frac <= exit), so a channel parked
/// exactly on its reference recovers.
struct PressureChannelConfig {
  double elevated_enter;
  double elevated_exit;
  double critical_enter;
  double critical_exit;
};

struct PressureConfig {
  /// Byte budget the occupancy fraction is measured against. 0 disables
  /// the byte channel (the monitor then reacts to queue depth only).
  std::uint64_t byte_budget = 0;

  /// Byte channel: merges evict back down to the budget, so occupancy
  /// beyond it is unmerged-window overshoot. The default window:cache
  /// ratio is 1:5 (~20% overshoot when every window slot admits), so
  /// ELEVATED starts beyond that and CRITICAL at near-double occupancy.
  PressureChannelConfig bytes{1.35, 1.10, 1.75, 1.35};

  /// Queue channel: depth/capacity. A full queue (1.0) is CRITICAL —
  /// producers are already paying inline backpressure drains.
  PressureChannelConfig queue{0.60, 0.30, 0.999, 0.75};
};

/// \brief Derives NORMAL/ELEVATED/CRITICAL from byte occupancy and MPSC
/// queue depth with per-channel hysteresis. Thread-safe; all methods are
/// wait-free atomic updates.
class PressureMonitor {
 public:
  explicit PressureMonitor(const PressureConfig& config);

  /// Adjusts the resident-byte gauge (admission +, eviction -) and
  /// re-evaluates the byte channel.
  void AddBytes(std::int64_t delta);

  /// Current resident-byte gauge.
  std::uint64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Reports an observed queue depth and re-evaluates the queue channel.
  /// `capacity` 0 is treated as an idle queue.
  void NoteQueueDepth(std::size_t depth, std::size_t capacity);

  /// Current overall tier (max of the channels).
  PressureTier tier() const {
    return static_cast<PressureTier>(tier_.load(std::memory_order_relaxed));
  }

  /// Times the overall tier rose into ELEVATED from NORMAL.
  std::uint64_t elevated_transitions() const {
    return elevated_transitions_.load(std::memory_order_relaxed);
  }
  /// Times the overall tier rose into CRITICAL.
  std::uint64_t critical_transitions() const {
    return critical_transitions_.load(std::memory_order_relaxed);
  }

  const PressureConfig& config() const { return config_; }

 private:
  /// One hysteresis step for a channel currently at `current` observing
  /// fraction `frac`.
  static int StepChannel(int current, double frac,
                         const PressureChannelConfig& cfg);

  /// Folds the channel tiers into the overall tier, counting upward
  /// transitions.
  void RecomputeOverall();

  const PressureConfig config_;
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<int> byte_tier_{0};
  std::atomic<int> queue_tier_{0};
  std::atomic<int> tier_{0};
  std::atomic<std::uint64_t> elevated_transitions_{0};
  std::atomic<std::uint64_t> critical_transitions_{0};
};

}  // namespace gcp

#endif  // GCP_COMMON_PRESSURE_HPP_
