// Epoch-based reclamation (EBR) for read-mostly shared structures.
//
// The engine publishes immutable snapshots through a single atomic
// pointer; readers must be able to dereference the pointer they loaded
// without any lock, even while a writer swaps in a successor and wants to
// free the predecessor. EBR solves the reclamation side: a reader *pins*
// an epoch for the duration of its read-side critical section, a writer
// *retires* the unlinked object, and the object is physically freed only
// after a grace period — once no reader pinned at (or before) the retire
// epoch can still exist.
//
// Protocol (all epoch/slot/pointer operations are seq_cst; the total
// order is what makes the no-early-reclamation argument go through):
//   * Pin(): load the global epoch E, CAS a free per-thread slot from
//     kFree to "pinned at E". Any protected pointer is loaded *after* the
//     slot store, so if a writer's slot scan missed this reader, the scan
//     preceded the slot CAS in the seq_cst order — and then the reader's
//     later pointer load necessarily observes the writer's earlier swap,
//     i.e. the reader holds the successor, never the retired object.
//   * Retire(ptr, deleter): tag the object with the current epoch and
//     queue it. The object must already be unlinked (unreachable from the
//     published pointer).
//   * Collect(): advance the global epoch when every pinned slot has
//     observed it, then free every retired object whose tag is strictly
//     below the minimum pinned epoch (all of them when nothing is
//     pinned). A reader pinned at e can only hold objects retired at
//     epochs >= e, so `tag < min-pinned` is a sufficient grace period.
//
// Writers are expected to be rare (one per dataset-mutation batch), so
// the retire list is guarded by a plain mutex; the read side is two
// seq_cst atomics per pin/unpin and never blocks. Capacity is bounded:
// at most kMaxSlots concurrently pinned readers (Pin spins when all slots
// are taken — size it generously above the thread count).

#ifndef GCP_COMMON_EPOCH_HPP_
#define GCP_COMMON_EPOCH_HPP_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace gcp {

/// \brief Grace-period manager: pinned-reader guards + retire lists.
class EpochManager {
 public:
  /// Maximum concurrently pinned readers.
  static constexpr std::size_t kMaxSlots = 64;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Frees every still-retired object. The caller guarantees no guard is
  /// alive (the engine joins all readers before tearing down).
  ~EpochManager();

  /// \brief RAII pin: the read-side critical section.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept { *this = std::move(other); }
    Guard& operator=(Guard&& other) noexcept {
      Release();
      mgr_ = other.mgr_;
      slot_ = other.slot_;
      epoch_ = other.epoch_;
      other.mgr_ = nullptr;
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    /// Unpins early (idempotent). After this, pointers loaded under the
    /// guard must no longer be dereferenced.
    void Release();

    bool pinned() const { return mgr_ != nullptr; }
    /// Epoch this guard is pinned at (meaningful while pinned()).
    std::uint64_t epoch() const { return epoch_; }

   private:
    friend class EpochManager;
    Guard(EpochManager* mgr, std::size_t slot, std::uint64_t epoch)
        : mgr_(mgr), slot_(slot), epoch_(epoch) {}

    EpochManager* mgr_ = nullptr;
    std::size_t slot_ = 0;
    std::uint64_t epoch_ = 0;
  };

  /// Pins the current epoch. Spins (yielding) when more than kMaxSlots
  /// readers are simultaneously pinned.
  Guard Pin();

  /// Queues `ptr` for deletion once no pinned reader can still hold it.
  /// `ptr` must already be unreachable from the published pointer.
  /// Attempts an immediate Collect().
  void Retire(void* ptr, void (*deleter)(void*));

  /// Typed convenience: retire with `delete static_cast<T*>(ptr)`.
  template <typename T>
  void Retire(const T* ptr) {
    Retire(const_cast<void*>(static_cast<const void*>(ptr)),
           [](void* p) { delete static_cast<T*>(p); });
  }

  /// Advances the epoch if every pinned reader observed the current one,
  /// then frees all retired objects past their grace period. Returns the
  /// number of objects freed.
  std::size_t Collect();

  std::uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }
  /// Completed grace periods (epoch advances).
  std::uint64_t advances() const {
    return advances_.load(std::memory_order_relaxed);
  }
  /// Objects freed so far.
  std::uint64_t reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  /// Objects retired but not yet freed.
  std::size_t retired_pending() const;
  /// Currently pinned readers (diagnostic; racy by nature).
  std::size_t pinned_readers() const;

 private:
  /// Slot encoding: kFree, or 2 * epoch + 1 (odd = pinned at `epoch`).
  static constexpr std::uint64_t kFree = 0;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> state{kFree};
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  /// Advance + reclaim with retire_mu_ held.
  std::size_t CollectLocked();

  std::atomic<std::uint64_t> global_epoch_{1};
  Slot slots_[kMaxSlots];

  mutable std::mutex retire_mu_;
  std::vector<Retired> retired_;  ///< Guarded by retire_mu_.

  std::atomic<std::uint64_t> advances_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
};

}  // namespace gcp

#endif  // GCP_COMMON_EPOCH_HPP_
