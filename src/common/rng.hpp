// Deterministic pseudo-random number generation for workloads and tests.
//
// All stochastic components of GC+ (workload generators, change plans,
// synthetic datasets, randomized property tests) draw from this engine so
// experiments are reproducible from a single seed.

#ifndef GCP_COMMON_RNG_HPP_
#define GCP_COMMON_RNG_HPP_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace gcp {

/// SplitMix64 — used to seed the main engine and as a cheap stateless mixer.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** PRNG (Blackman & Vigna) with convenience samplers.
///
/// Satisfies UniformRandomBitGenerator so it can drive <random> facilities,
/// but the samplers below avoid libstdc++ distribution objects whose output
/// differs across standard library versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t UniformBelow(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    UniformBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Marsaglia polar method.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * UniformDouble() - 1.0;
      v = 2.0 * UniformDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return mean + stddev * u * factor;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = UniformBelow(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element. `v` must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    assert(!v.empty());
    return v[UniformBelow(v.size())];
  }

  /// Derives an independent child generator (for parallel determinism).
  Rng Fork() { return Rng(Next() ^ 0xa5a5a5a55a5a5a5aULL); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace gcp

#endif  // GCP_COMMON_RNG_HPP_
