#include "common/pressure.hpp"

#include <algorithm>

namespace gcp {

const char* PressureTierName(PressureTier tier) {
  switch (tier) {
    case PressureTier::kNormal:
      return "NORMAL";
    case PressureTier::kElevated:
      return "ELEVATED";
    case PressureTier::kCritical:
      return "CRITICAL";
  }
  return "UNKNOWN";
}

PressureMonitor::PressureMonitor(const PressureConfig& config)
    : config_(config) {}

int PressureMonitor::StepChannel(int current, double frac,
                                 const PressureChannelConfig& cfg) {
  // Escalation is immediate; de-escalation honors the exit thresholds so
  // the tier does not flap around a boundary.
  if (frac > cfg.critical_enter) return 2;
  if (current == 2) {
    if (frac > cfg.critical_exit) return 2;
    return frac > cfg.elevated_exit ? 1 : 0;
  }
  if (frac > cfg.elevated_enter) return std::max(current, 1);
  if (current == 1) return frac > cfg.elevated_exit ? 1 : 0;
  return 0;
}

void PressureMonitor::AddBytes(std::int64_t delta) {
  std::uint64_t now;
  if (delta >= 0) {
    now = bytes_.fetch_add(static_cast<std::uint64_t>(delta),
                           std::memory_order_relaxed) +
          static_cast<std::uint64_t>(delta);
  } else {
    const std::uint64_t dec = static_cast<std::uint64_t>(-delta);
    const std::uint64_t prev = bytes_.fetch_sub(dec, std::memory_order_relaxed);
    // Underflow would mean an accounting bug; clamp defensively so a
    // racing reader never sees a wrapped gauge drive the tier.
    now = prev >= dec ? prev - dec : 0;
  }
  if (config_.byte_budget == 0) return;
  const double frac =
      static_cast<double>(now) / static_cast<double>(config_.byte_budget);
  byte_tier_.store(StepChannel(byte_tier_.load(std::memory_order_relaxed),
                               frac, config_.bytes),
                   std::memory_order_relaxed);
  RecomputeOverall();
}

void PressureMonitor::NoteQueueDepth(std::size_t depth, std::size_t capacity) {
  const double frac = capacity == 0 ? 0.0
                                    : static_cast<double>(depth) /
                                          static_cast<double>(capacity);
  queue_tier_.store(StepChannel(queue_tier_.load(std::memory_order_relaxed),
                                frac, config_.queue),
                    std::memory_order_relaxed);
  RecomputeOverall();
}

void PressureMonitor::RecomputeOverall() {
  const int next = std::max(byte_tier_.load(std::memory_order_relaxed),
                            queue_tier_.load(std::memory_order_relaxed));
  const int prev = tier_.exchange(next, std::memory_order_relaxed);
  if (next > prev) {
    if (prev < 1 && next >= 1) {
      elevated_transitions_.fetch_add(1, std::memory_order_relaxed);
    }
    if (prev < 2 && next == 2) {
      critical_transitions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace gcp
