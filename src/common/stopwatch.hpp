// Wall-clock timing helpers used by the Statistics Monitor to produce the
// per-query time breakdown of the paper's Figure 6.

#ifndef GCP_COMMON_STOPWATCH_HPP_
#define GCP_COMMON_STOPWATCH_HPP_

#include <chrono>
#include <cstdint>

namespace gcp {

/// \brief Monotonic stopwatch reporting elapsed time in nanoseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds since construction or the last Restart().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Milliseconds (fractional) since construction or the last Restart().
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Adds the scope's duration to a counter on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::int64_t* accumulator_ns)
      : accumulator_ns_(accumulator_ns) {}
  ~ScopedTimer() { *accumulator_ns_ += watch_.ElapsedNanos(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::int64_t* accumulator_ns_;
  Stopwatch watch_;
};

}  // namespace gcp

#endif  // GCP_COMMON_STOPWATCH_HPP_
