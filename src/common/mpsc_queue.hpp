// Bounded multi-producer queue feeding the engine's serialized
// maintenance phase.
//
// Many reader threads finish a query's read phase concurrently and hand
// their deferred cache mutations (benefit credits, admission offers) to
// whichever thread next holds the engine's exclusive lock. Producers never
// block: TryPush fails when the queue is full, signalling the caller to
// apply backpressure (take the exclusive lock and drain inline). The
// consumer side is a single DrainAll under that exclusive lock, so batches
// are applied in FIFO push order.

#ifndef GCP_COMMON_MPSC_QUEUE_HPP_
#define GCP_COMMON_MPSC_QUEUE_HPP_

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace gcp {

/// \brief Bounded FIFO queue: concurrent producers, serialized drain.
template <typename T>
class BoundedMpscQueue {
 public:
  /// A zero capacity is clamped to 1 (a queue that can never accept an
  /// item would force every producer down the backpressure path).
  explicit BoundedMpscQueue(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {
    items_.reserve(capacity_);
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Enqueues `item`; returns false (leaving `item` untouched) when the
  /// queue is at capacity. `size_after` (optional) receives the queue size
  /// right after the push — the producer-side pressure signal that decides
  /// whether to wake the maintenance thread early.
  bool TryPush(T&& item, std::size_t* size_after = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    if (size_after != nullptr) *size_after = items_.size();
    return true;
  }

  /// Removes and returns every queued item in push order.
  std::vector<T> DrainAll() {
    std::vector<T> out;
    out.reserve(capacity_);
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(items_);
    return out;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<T> items_;
};

}  // namespace gcp

#endif  // GCP_COMMON_MPSC_QUEUE_HPP_
