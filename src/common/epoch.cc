#include "common/epoch.hpp"

#include <limits>
#include <thread>

namespace gcp {

EpochManager::~EpochManager() {
  // Contract: no guard is alive. Everything retired is past its grace
  // period by definition.
  for (const Retired& r : retired_) r.deleter(r.ptr);
  retired_.clear();
}

void EpochManager::Guard::Release() {
  if (mgr_ == nullptr) return;
  mgr_->slots_[slot_].state.store(kFree, std::memory_order_seq_cst);
  mgr_ = nullptr;
}

EpochManager::Guard EpochManager::Pin() {
  // Start probing at a thread-dependent slot so unrelated threads rarely
  // contend on the same CAS line.
  const std::size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kMaxSlots;
  for (;;) {
    for (std::size_t i = 0; i < kMaxSlots; ++i) {
      const std::size_t s = (start + i) % kMaxSlots;
      std::uint64_t expected = kFree;
      // Read the epoch before claiming the slot; a concurrent advance
      // leaves the pinned value one low, which is merely conservative
      // (delays reclamation, never enables it).
      const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
      if (slots_[s].state.compare_exchange_strong(
              expected, 2 * e + 1, std::memory_order_seq_cst)) {
        return Guard(this, s, e);
      }
    }
    // All slots pinned — more readers than capacity; wait for one.
    std::this_thread::yield();
  }
}

void EpochManager::Retire(void* ptr, void (*deleter)(void*)) {
  std::lock_guard<std::mutex> lock(retire_mu_);
  retired_.push_back(
      Retired{ptr, deleter, global_epoch_.load(std::memory_order_seq_cst)});
  CollectLocked();
}

std::size_t EpochManager::Collect() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return CollectLocked();
}

std::size_t EpochManager::CollectLocked() {
  const std::uint64_t cur = global_epoch_.load(std::memory_order_seq_cst);
  std::uint64_t min_pinned = std::numeric_limits<std::uint64_t>::max();
  bool all_current = true;
  for (const Slot& slot : slots_) {
    const std::uint64_t v = slot.state.load(std::memory_order_seq_cst);
    if (v == kFree) continue;
    const std::uint64_t e = (v - 1) / 2;
    if (e < min_pinned) min_pinned = e;
    if (e != cur) all_current = false;
  }
  if (all_current) {
    // Grace period complete: every pinned reader observed `cur`.
    global_epoch_.store(cur + 1, std::memory_order_seq_cst);
    advances_.fetch_add(1, std::memory_order_relaxed);
  }
  // A reader pinned at e can only hold objects retired at epochs >= e.
  std::size_t freed = 0;
  for (std::size_t i = 0; i < retired_.size();) {
    if (retired_[i].epoch < min_pinned) {
      retired_[i].deleter(retired_[i].ptr);
      retired_[i] = retired_.back();
      retired_.pop_back();
      ++freed;
    } else {
      ++i;
    }
  }
  reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

std::size_t EpochManager::retired_pending() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

std::size_t EpochManager::pinned_readers() const {
  std::size_t n = 0;
  for (const Slot& slot : slots_) {
    if (slot.state.load(std::memory_order_seq_cst) != kFree) ++n;
  }
  return n;
}

}  // namespace gcp
