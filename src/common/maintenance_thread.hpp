// MaintenanceThread — a dedicated background worker that drains deferred
// cache maintenance off the query critical path.
//
// PR 2 drained opportunistically: whichever query thread next won a
// try_lock paid for the whole backlog, so query tail latency carried the
// drains. With a dedicated thread, producers just enqueue and Notify();
// the thread wakes on queue pressure (Notify) or on a timer (so trickling
// batches never sit longer than one interval) and runs the drain callback
// with no query waiting on it.
//
// The callback runs on the maintenance thread only — never concurrently
// with itself — and must do its own locking (the engine's drain takes the
// engine lock shared plus one shard lock exclusive per shard drained).
// Stop() is idempotent, joins the thread, and runs one final drain so
// work enqueued up to the stop point is not stranded.

#ifndef GCP_COMMON_MAINTENANCE_THREAD_HPP_
#define GCP_COMMON_MAINTENANCE_THREAD_HPP_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace gcp {

/// \brief Wake-on-pressure-or-timer background drain loop.
class MaintenanceThread {
 public:
  /// Starts the thread. `drain` is invoked once per wakeup.
  MaintenanceThread(std::function<void()> drain,
                    std::chrono::microseconds interval);

  /// Stops and joins (idempotent).
  ~MaintenanceThread();

  MaintenanceThread(const MaintenanceThread&) = delete;
  MaintenanceThread& operator=(const MaintenanceThread&) = delete;

  /// Queue-pressure signal: wake the thread now instead of at the next
  /// timer tick. Callable from any thread; never blocks on the drain.
  void Notify();

  /// Stops the loop, runs one final drain on the worker, joins. Safe to
  /// call repeatedly and from the destructor.
  void Stop();

  /// Total drain invocations (timer + notified).
  std::uint64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }
  /// Drain invocations triggered by Notify rather than the timer.
  std::uint64_t notified_wakeups() const {
    return notified_wakeups_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  std::function<void()> drain_;
  std::chrono::microseconds interval_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool notified_ = false;  ///< Guarded by mu_.
  bool stop_ = false;      ///< Guarded by mu_.

  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> notified_wakeups_{0};

  std::thread thread_;  ///< Last member: starts after the state above.
};

}  // namespace gcp

#endif  // GCP_COMMON_MAINTENANCE_THREAD_HPP_
