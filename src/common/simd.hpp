// Runtime-dispatched SIMD kernels for the two word-level hot loops:
// DynamicBitset's bulk and/or/count operations and the SWAR signature
// dominance screen (graph.hpp SignatureDominates).
//
// The build stays plain -O2 with no -march flags; vector code is emitted
// per-function via target attributes and selected at runtime from CPUID
// (AVX2, then SSE4.2-class hardware popcount, then portable scalar). The
// scalar implementations are the originals, kept verbatim as the
// bit-exact oracle: SetSimdLevel(SimdLevel::kScalar) forces them
// process-wide (the benches' --simd=off toggle), and the differential
// tests drive every level against them on the same inputs.
//
// All kernels tolerate unaligned word pointers and any length, including
// zero. Level selection is a relaxed atomic — flipping it mid-run only
// changes which (bit-identical) implementation executes.

#ifndef GCP_COMMON_SIMD_HPP_
#define GCP_COMMON_SIMD_HPP_

#include <cstddef>
#include <cstdint>

namespace gcp::simd {

enum class SimdLevel : int {
  kScalar = 0,  ///< Portable C++ (the oracle path).
  kPopcnt = 1,  ///< SSE4.2-class: hardware POPCNT + 128-bit vectors.
  kAvx2 = 2,    ///< 256-bit integer vectors.
};

/// Best level the running CPU supports (probed once).
SimdLevel DetectedSimdLevel();

/// Level kernels actually dispatch to: min(DetectedSimdLevel, override).
SimdLevel ActiveSimdLevel();

/// Caps the dispatch level process-wide (kScalar = oracle). Levels above
/// DetectedSimdLevel are clamped.
void SetSimdLevel(SimdLevel level);

const char* SimdLevelName(SimdLevel level);

/// dst[i] &= src[i].
void AndWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
/// dst[i] |= src[i].
void OrWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
/// dst[i] &= ~src[i].
void AndNotWords(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n);
/// Total set bits in w[0..n).
std::size_t PopcountWords(const std::uint64_t* w, std::size_t n);
/// Total set bits in a[i] & b[i] without materializing the intersection.
std::size_t PopcountAndWords(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n);
/// True iff any a[i] & b[i] is non-zero.
bool IntersectsWords(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n);
/// True iff any w[i] is non-zero.
bool AnyWord(const std::uint64_t* w, std::size_t n);
/// True iff sub[i] & ~super[i] == 0 for all i (bitset inclusion).
bool SubsetWords(const std::uint64_t* sub, const std::uint64_t* super,
                 std::size_t n);

/// Batched SignatureDominates(sub, supers[i]) (graph.hpp): writes the
/// indices i whose signature dominates `sub` to `survivors` (ascending)
/// and returns how many survived. `survivors` must hold n entries.
std::size_t SignatureDominanceScreen(std::uint64_t sub,
                                     const std::uint64_t* supers,
                                     std::size_t n,
                                     std::uint32_t* survivors);

}  // namespace gcp::simd

#endif  // GCP_COMMON_SIMD_HPP_
