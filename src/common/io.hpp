// Durable file I/O behind a Status-returning interface, with an
// injectable fault hook on every operation.
//
// The checkpoint path (cache/checkpoint.*) must survive a crash at ANY
// byte: it writes to a temporary sibling, fsyncs, and atomically renames
// over the final name, so a reader only ever observes either the old
// complete file or the new complete file — never a torn one. That claim
// is only as good as its test coverage, which is why every syscall the
// durable-write path performs funnels through a FaultInjector consult:
// tests script "fail the nth write with EIO", "tear this write after k
// bytes", "fail the fsync", "fail the rename" and prove recovery ends in
// last-good or cold start, never UB.
//
// A failed write path deliberately LEAVES its temporary file behind —
// that is what a crash would do — so recovery code is always exercised
// against leftover garbage, and the next successful writer O_TRUNCs it.

#ifndef GCP_COMMON_IO_HPP_
#define GCP_COMMON_IO_HPP_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace gcp {

/// \brief Hook consulted before each file operation of a durable write.
///
/// Implementations decide per operation whether it proceeds or fails (and
/// for writes, how many bytes land on disk before the failure — a torn
/// write). The default-constructed Decision lets the operation through.
class FaultInjector {
 public:
  /// The operations the durable-write path performs, in the order a
  /// checkpoint performs them: open tmp, write chunks, fsync file, rename
  /// over the final name, fsync the directory.
  enum class Op : std::uint8_t { kOpen, kWrite, kFsync, kRename };

  struct Decision {
    /// Non-OK: the operation fails with this status (errno-style EIO is
    /// Status::IOError).
    Status status = Status::OK();
    /// For a failing kWrite only: bytes actually written before the
    /// failure. Values >= the requested length clamp to a clean failure
    /// with nothing written.
    std::size_t torn_prefix_bytes = 0;
  };

  virtual ~FaultInjector() = default;

  /// Consulted immediately before the operation executes. `len` is the
  /// chunk size for kWrite, 0 otherwise.
  virtual Decision OnOp(Op op, const std::string& path, std::size_t len) = 0;
};

std::string_view FaultOpName(FaultInjector::Op op);

/// \brief Scriptable FaultInjector: counts operations and fails at most
/// one scripted position. Thread-safe (the background checkpoint thread
/// consults it while the test thread reads the counters).
class ScriptedFaultInjector : public FaultInjector {
 public:
  /// Counts only; never fails.
  ScriptedFaultInjector() = default;

  /// Fails the `index`-th intercepted operation (0-based, across all
  /// kinds) with `status`; if that operation is a write, `torn_prefix`
  /// bytes land on disk first.
  void FailAt(std::uint64_t index, Status status,
              std::size_t torn_prefix = 0);

  /// Fails the `nth` operation (0-based) of kind `op`.
  void FailAtKind(Op op, std::uint64_t nth, Status status,
                  std::size_t torn_prefix = 0);

  Decision OnOp(Op op, const std::string& path, std::size_t len) override;

  /// Operations intercepted so far (all kinds).
  std::uint64_t ops_seen() const;
  /// Operations of one kind intercepted so far.
  std::uint64_t ops_seen(Op op) const;
  /// True once the scripted fault has fired.
  bool fired() const;
  /// Path of the operation the fault fired on (empty until fired).
  std::string fired_path() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t total_ = 0;
  std::uint64_t per_kind_[4] = {0, 0, 0, 0};
  // Scripted fault: by global index or by (kind, nth); at most one fires.
  std::optional<std::uint64_t> fail_index_;
  std::optional<std::pair<Op, std::uint64_t>> fail_kind_;
  Status fail_status_;
  std::size_t torn_prefix_ = 0;
  bool fired_ = false;
  std::string fired_path_;
};

// --- Plain file helpers (Status-returning, fault-injectable) -------------

/// Reads the whole file. IOError when it cannot be opened or read.
Result<std::string> ReadFileToString(const std::string& path);

/// True when `path` exists (any file type).
bool FileExists(const std::string& path);

/// File size in bytes; IOError when absent.
Result<std::uint64_t> FileSize(const std::string& path);

/// Deletes a file; OK when it does not exist (idempotent).
Status RemoveFile(const std::string& path);

/// Creates `dir` (single level); OK when it already exists.
Status EnsureDirectory(const std::string& dir);

/// Names of regular directory entries (not dotfiles' "." / ".."),
/// unsorted. IOError when the directory cannot be opened.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

/// \brief Crash-safe file writer: tmp file → fsync → atomic rename.
///
/// Usage: Open(), Append() any number of times, Commit(). After a
/// successful Commit the final path durably holds exactly the appended
/// bytes. On any failure the writer stops (subsequent calls return the
/// first error) and the temporary file is left on disk, as a crash would
/// leave it; Abandon() (or the destructor before Commit) closes the
/// descriptor without renaming.
class AtomicFileWriter {
 public:
  /// Writes will target `final_path` + ".tmp" until Commit renames it.
  /// `fault` (nullable, not owned) intercepts every operation.
  explicit AtomicFileWriter(std::string final_path,
                            FaultInjector* fault = nullptr);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Creates/truncates the temporary file.
  Status Open();

  /// Appends `data` (chunked so large payloads expose multiple write
  /// fault points).
  Status Append(std::string_view data);

  /// fsync(tmp) → close → rename(tmp, final) → fsync(parent dir).
  Status Commit();

  /// Closes the descriptor without committing (keeps the tmp file — the
  /// crash-shaped outcome; the next writer truncates it).
  void Abandon();

  /// Bytes appended so far (committed or not).
  std::uint64_t bytes_written() const { return bytes_written_; }

  const std::string& final_path() const { return final_path_; }
  const std::string& tmp_path() const { return tmp_path_; }

 private:
  Status Fail(Status st);  ///< Records and returns the sticky error.

  std::string final_path_;
  std::string tmp_path_;
  FaultInjector* fault_;
  int fd_ = -1;
  bool committed_ = false;
  std::uint64_t bytes_written_ = 0;
  Status first_error_;
};

}  // namespace gcp

#endif  // GCP_COMMON_IO_HPP_
