#include "common/simd.hpp"

#include <atomic>
#include <bit>

#if defined(__x86_64__) || defined(_M_X64)
#define GCP_SIMD_X86 1
#include <immintrin.h>
#else
#define GCP_SIMD_X86 0
#endif

namespace gcp::simd {

namespace {

constexpr std::uint64_t kNibbleLo = 0x0F0F0F0F0F0F0F0FULL;
constexpr std::uint64_t kByteHi = 0x8080808080808080ULL;

// ---------------------------------------------------------------------
// Scalar kernels — the oracle. These are the loops DynamicBitset shipped
// with before vectorization; every other level must match them bit for
// bit on any input.
// ---------------------------------------------------------------------

void AndScalar(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void OrScalar(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void AndNotScalar(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

std::size_t PopcountScalar(const std::uint64_t* w, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return total;
}

std::size_t PopcountAndScalar(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

bool IntersectsScalar(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool AnyScalar(const std::uint64_t* w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

bool SubsetScalar(const std::uint64_t* sub, const std::uint64_t* super,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

// Scalar mirror of graph.hpp SignatureDominates (see there for the SWAR
// borrow argument).
inline bool DominatesScalar(std::uint64_t sub, std::uint64_t super) {
  const std::uint64_t sub_even = sub & kNibbleLo;
  const std::uint64_t sup_even = super & kNibbleLo;
  const std::uint64_t sub_odd = (sub >> 4) & kNibbleLo;
  const std::uint64_t sup_odd = (super >> 4) & kNibbleLo;
  return ((((sup_even | kByteHi) - sub_even) & kByteHi) == kByteHi) &&
         ((((sup_odd | kByteHi) - sub_odd) & kByteHi) == kByteHi);
}

std::size_t ScreenScalar(std::uint64_t sub, const std::uint64_t* supers,
                         std::size_t n, std::uint32_t* survivors) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (DominatesScalar(sub, supers[i])) {
      survivors[kept++] = static_cast<std::uint32_t>(i);
    }
  }
  return kept;
}

#if GCP_SIMD_X86

// ---------------------------------------------------------------------
// SSE4.2-class kernels: hardware POPCNT; 128-bit vectors where they pay.
// ---------------------------------------------------------------------

__attribute__((target("popcnt"))) std::size_t PopcountPopcnt(
    const std::uint64_t* w, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  }
  return static_cast<std::size_t>(total);
}

__attribute__((target("popcnt"))) std::size_t PopcountAndPopcnt(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] & b[i]));
  }
  return static_cast<std::size_t>(total);
}

__attribute__((target("sse4.2"))) std::size_t ScreenSse(
    std::uint64_t sub, const std::uint64_t* supers, std::size_t n,
    std::uint32_t* survivors) {
  const __m128i lo = _mm_set1_epi64x(static_cast<long long>(kNibbleLo));
  const __m128i hi = _mm_set1_epi64x(static_cast<long long>(kByteHi));
  const __m128i sub_even =
      _mm_set1_epi64x(static_cast<long long>(sub & kNibbleLo));
  const __m128i sub_odd =
      _mm_set1_epi64x(static_cast<long long>((sub >> 4) & kNibbleLo));
  std::size_t kept = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i sup =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(supers + i));
    const __m128i sup_even = _mm_and_si128(sup, lo);
    const __m128i sup_odd = _mm_and_si128(_mm_srli_epi64(sup, 4), lo);
    // Byte-wise borrows cannot cross byte boundaries here (each byte of
    // sup|hi is >= 0x80 and each byte of sub is <= 0x0F), so the 64-bit
    // subtract is exactly the scalar SWAR test.
    const __m128i ok_even = _mm_cmpeq_epi64(
        _mm_and_si128(_mm_sub_epi64(_mm_or_si128(sup_even, hi), sub_even),
                      hi),
        hi);
    const __m128i ok_odd = _mm_cmpeq_epi64(
        _mm_and_si128(_mm_sub_epi64(_mm_or_si128(sup_odd, hi), sub_odd), hi),
        hi);
    int mask = _mm_movemask_pd(
        _mm_castsi128_pd(_mm_and_si128(ok_even, ok_odd)));
    while (mask != 0) {
      const int lane = std::countr_zero(static_cast<unsigned>(mask));
      survivors[kept++] = static_cast<std::uint32_t>(i) +
                          static_cast<std::uint32_t>(lane);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (DominatesScalar(sub, supers[i])) {
      survivors[kept++] = static_cast<std::uint32_t>(i);
    }
  }
  return kept;
}

// ---------------------------------------------------------------------
// AVX2 kernels.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) void AndAvx2(std::uint64_t* dst,
                                             const std::uint64_t* src,
                                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void OrAvx2(std::uint64_t* dst,
                                            const std::uint64_t* src,
                                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void AndNotAvx2(std::uint64_t* dst,
                                                const std::uint64_t* src,
                                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot computes ~first & second.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(b, a));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

// Per-byte popcount via two 16-entry nibble LUT shuffles, horizontally
// summed into the four 64-bit lanes by SAD against zero.
__attribute__((target("avx2"))) inline __m256i PopcountLanesAvx2(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2,popcnt"))) std::size_t PopcountAvx2(
    const std::uint64_t* w, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, PopcountLanesAvx2(v));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3));
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  }
  return static_cast<std::size_t>(total);
}

__attribute__((target("avx2,popcnt"))) std::size_t PopcountAndAvx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, PopcountLanesAvx2(_mm256_and_si256(va, vb)));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3));
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] & b[i]));
  }
  return static_cast<std::size_t>(total);
}

__attribute__((target("avx2"))) bool IntersectsAvx2(const std::uint64_t* a,
                                                    const std::uint64_t* b,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (_mm256_testz_si256(va, vb) == 0) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

__attribute__((target("avx2"))) bool AnyAvx2(const std::uint64_t* w,
                                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (_mm256_testz_si256(v, v) == 0) return true;
  }
  for (; i < n; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

__attribute__((target("avx2"))) bool SubsetAvx2(const std::uint64_t* sub,
                                                const std::uint64_t* super,
                                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vsub =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sub + i));
    const __m256i vsup =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(super + i));
    // testc(a, b) sets CF iff b & ~a == 0.
    if (_mm256_testc_si256(vsup, vsub) == 0) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

__attribute__((target("avx2"))) std::size_t ScreenAvx2(
    std::uint64_t sub, const std::uint64_t* supers, std::size_t n,
    std::uint32_t* survivors) {
  const __m256i lo = _mm256_set1_epi64x(static_cast<long long>(kNibbleLo));
  const __m256i hi = _mm256_set1_epi64x(static_cast<long long>(kByteHi));
  const __m256i sub_even =
      _mm256_set1_epi64x(static_cast<long long>(sub & kNibbleLo));
  const __m256i sub_odd =
      _mm256_set1_epi64x(static_cast<long long>((sub >> 4) & kNibbleLo));
  std::size_t kept = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i sup =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(supers + i));
    const __m256i sup_even = _mm256_and_si256(sup, lo);
    const __m256i sup_odd = _mm256_and_si256(_mm256_srli_epi64(sup, 4), lo);
    const __m256i ok_even = _mm256_cmpeq_epi64(
        _mm256_and_si256(
            _mm256_sub_epi64(_mm256_or_si256(sup_even, hi), sub_even), hi),
        hi);
    const __m256i ok_odd = _mm256_cmpeq_epi64(
        _mm256_and_si256(
            _mm256_sub_epi64(_mm256_or_si256(sup_odd, hi), sub_odd), hi),
        hi);
    int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_and_si256(ok_even, ok_odd)));
    while (mask != 0) {
      const int lane = std::countr_zero(static_cast<unsigned>(mask));
      survivors[kept++] = static_cast<std::uint32_t>(i) +
                          static_cast<std::uint32_t>(lane);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (DominatesScalar(sub, supers[i])) {
      survivors[kept++] = static_cast<std::uint32_t>(i);
    }
  }
  return kept;
}

#endif  // GCP_SIMD_X86

// -1 = "use DetectedSimdLevel()" so static init needs no CPUID ordering.
std::atomic<int> g_level_override{-1};

}  // namespace

SimdLevel DetectedSimdLevel() {
#if GCP_SIMD_X86
  static const SimdLevel detected = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
      return SimdLevel::kAvx2;
    }
    if (__builtin_cpu_supports("sse4.2") &&
        __builtin_cpu_supports("popcnt")) {
      return SimdLevel::kPopcnt;
    }
    return SimdLevel::kScalar;
  }();
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  const int forced = g_level_override.load(std::memory_order_relaxed);
  if (forced < 0) return DetectedSimdLevel();
  const SimdLevel detected = DetectedSimdLevel();
  return static_cast<int>(detected) < forced ? detected
                                             : static_cast<SimdLevel>(forced);
}

void SetSimdLevel(SimdLevel level) {
  g_level_override.store(static_cast<int>(level),
                         std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kPopcnt:
      return "popcnt";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void AndWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
#if GCP_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) return AndAvx2(dst, src, n);
#endif
  AndScalar(dst, src, n);
}

void OrWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
#if GCP_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) return OrAvx2(dst, src, n);
#endif
  OrScalar(dst, src, n);
}

void AndNotWords(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n) {
#if GCP_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) return AndNotAvx2(dst, src, n);
#endif
  AndNotScalar(dst, src, n);
}

std::size_t PopcountWords(const std::uint64_t* w, std::size_t n) {
#if GCP_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return PopcountAvx2(w, n);
    case SimdLevel::kPopcnt:
      return PopcountPopcnt(w, n);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return PopcountScalar(w, n);
}

std::size_t PopcountAndWords(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n) {
#if GCP_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return PopcountAndAvx2(a, b, n);
    case SimdLevel::kPopcnt:
      return PopcountAndPopcnt(a, b, n);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return PopcountAndScalar(a, b, n);
}

bool IntersectsWords(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
#if GCP_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) return IntersectsAvx2(a, b, n);
#endif
  return IntersectsScalar(a, b, n);
}

bool AnyWord(const std::uint64_t* w, std::size_t n) {
#if GCP_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) return AnyAvx2(w, n);
#endif
  return AnyScalar(w, n);
}

bool SubsetWords(const std::uint64_t* sub, const std::uint64_t* super,
                 std::size_t n) {
#if GCP_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    return SubsetAvx2(sub, super, n);
  }
#endif
  return SubsetScalar(sub, super, n);
}

std::size_t SignatureDominanceScreen(std::uint64_t sub,
                                     const std::uint64_t* supers,
                                     std::size_t n,
                                     std::uint32_t* survivors) {
#if GCP_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return ScreenAvx2(sub, supers, n, survivors);
    case SimdLevel::kPopcnt:
      return ScreenSse(sub, supers, n, survivors);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return ScreenScalar(sub, supers, n, survivors);
}

}  // namespace gcp::simd
