#include "common/maintenance_thread.hpp"

#include <utility>

namespace gcp {

MaintenanceThread::MaintenanceThread(std::function<void()> drain,
                                     std::chrono::microseconds interval)
    : drain_(std::move(drain)),
      interval_(interval),
      thread_([this] { Loop(); }) {}

MaintenanceThread::~MaintenanceThread() { Stop(); }

void MaintenanceThread::Notify() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    notified_ = true;
  }
  cv_.notify_one();
}

void MaintenanceThread::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void MaintenanceThread::Loop() {
  for (;;) {
    bool was_notified = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, interval_, [this] { return notified_ || stop_; });
      was_notified = notified_;
      notified_ = false;
      if (stop_) break;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (was_notified) {
      notified_wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
    drain_();
  }
  // Final drain: batches enqueued while the stop flag raced the last wait
  // must not be stranded (FlushMaintenance would still catch them, but a
  // plain destruction sequence should leave nothing queued).
  drain_();
}

}  // namespace gcp
