#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace gcp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr err = nullptr;
    std::swap(err, first_error_);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t shards = std::min(workers_.size(), n);
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t remaining = shards;  // guarded by done_mu
  std::exception_ptr error;        // guarded by done_mu
  const auto shard = [&] {
    try {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(done_mu);
      if (error == nullptr) error = std::current_exception();
    }
    // The final decrement and its notify both happen under done_mu: the
    // waiter can only observe remaining == 0 (and destroy these locals)
    // after the last worker has released the lock.
    std::lock_guard<std::mutex> lock(done_mu);
    if (--remaining == 0) done_cv.notify_all();
  };
  for (std::size_t s = 0; s < shards; ++s) {
    // Submit only fails during shutdown; running the shard inline keeps
    // every index covered and the remaining count balanced.
    if (!Submit(shard)) shard();
  }
  std::exception_ptr err = nullptr;
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
    std::swap(err, error);
  }
  if (err != nullptr) std::rethrow_exception(err);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    std::exception_ptr err = nullptr;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err != nullptr && first_error_ == nullptr) {
        first_error_ = err;
      }
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gcp
