// Hashing helpers shared by graph canonical digests and feature indexes.

#ifndef GCP_COMMON_HASH_HPP_
#define GCP_COMMON_HASH_HPP_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gcp {

/// Mixes `value` into `seed` (boost::hash_combine style, 64-bit constants).
inline void HashCombine(std::uint64_t& seed, std::uint64_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
}

/// FNV-1a over a byte range.
inline std::uint64_t Fnv1a(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t Fnv1a(std::string_view s) {
  return Fnv1a(s.data(), s.size());
}

}  // namespace gcp

#endif  // GCP_COMMON_HASH_HPP_
