#include "common/bitset.hpp"

#include <bit>

#include "common/simd.hpp"

namespace gcp {

void DynamicBitset::Resize(std::size_t size, bool value) {
  const std::size_t old_size = size_;
  words_.resize(WordsFor(size), value ? ~std::uint64_t{0} : 0);
  size_ = size;
  if (value && size > old_size && old_size > 0) {
    // The old tail word may expose previously-padded zero bits; set them.
    for (std::size_t i = old_size; i < std::min(size, WordsFor(old_size) * 64);
         ++i) {
      Set(i, true);
    }
  }
  ClearPadding();
}

void DynamicBitset::SetAll() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  ClearPadding();
}

void DynamicBitset::ResetAll() {
  for (auto& w : words_) w = 0;
}

// The bulk word kernels below dispatch through common/simd: AVX2/POPCNT
// when the CPU has them, the original scalar loops otherwise (and always
// under simd::SetSimdLevel(kScalar), the benches' oracle toggle). Results
// are bit-identical at every level.

std::size_t DynamicBitset::Count() const {
  return simd::PopcountWords(words_.data(), words_.size());
}

bool DynamicBitset::Any() const {
  return simd::AnyWord(words_.data(), words_.size());
}

void DynamicBitset::AndWith(const DynamicBitset& other) {
  assert(size_ == other.size_);
  simd::AndWords(words_.data(), other.words_.data(), words_.size());
}

void DynamicBitset::OrWith(const DynamicBitset& other) {
  assert(size_ == other.size_);
  simd::OrWords(words_.data(), other.words_.data(), words_.size());
}

void DynamicBitset::AndNotWith(const DynamicBitset& other) {
  assert(size_ == other.size_);
  simd::AndNotWords(words_.data(), other.words_.data(), words_.size());
}

void DynamicBitset::Complement() {
  for (auto& w : words_) w = ~w;
  ClearPadding();
}

DynamicBitset DynamicBitset::And(const DynamicBitset& lhs,
                                 const DynamicBitset& rhs) {
  DynamicBitset out = lhs;
  out.AndWith(rhs);
  return out;
}

DynamicBitset DynamicBitset::Or(const DynamicBitset& lhs,
                                const DynamicBitset& rhs) {
  DynamicBitset out = lhs;
  out.OrWith(rhs);
  return out;
}

DynamicBitset DynamicBitset::AndNot(const DynamicBitset& lhs,
                                    const DynamicBitset& rhs) {
  DynamicBitset out = lhs;
  out.AndNotWith(rhs);
  return out;
}

DynamicBitset DynamicBitset::Not(const DynamicBitset& v) {
  DynamicBitset out = v;
  out.Complement();
  return out;
}

std::size_t DynamicBitset::CountAnd(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  return simd::PopcountAndWords(words_.data(), other.words_.data(),
                                words_.size());
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  return simd::IntersectsWords(words_.data(), other.words_.data(),
                               words_.size());
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  return simd::SubsetWords(words_.data(), other.words_.data(),
                           words_.size());
}

std::size_t DynamicBitset::FindNext(std::size_t from) const {
  if (from >= size_) return npos;
  std::size_t w = from >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
    }
    if (++w >= words_.size()) return npos;
    word = words_[w];
  }
}

std::vector<std::size_t> DynamicBitset::ToVector() const {
  std::vector<std::size_t> out;
  out.reserve(Count());
  ForEachSetBit([&out](std::size_t i) { out.push_back(i); });
  return out;
}

std::string DynamicBitset::ToString() const {
  std::string out(size_, '0');
  ForEachSetBit([&out](std::size_t i) { out[i] = '1'; });
  return out;
}

void DynamicBitset::ClearPadding() {
  const std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

}  // namespace gcp
