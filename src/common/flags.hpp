// Tiny command-line flag parser for the bench harnesses and examples.
//
// Supports `--key=value`, `--key value` and boolean `--key` forms. Not a
// general-purpose library; just enough to parameterize experiments
// (--graphs, --queries, --seed, ...) the way the paper's harness was.

#ifndef GCP_COMMON_FLAGS_HPP_
#define GCP_COMMON_FLAGS_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gcp {

/// \brief Parsed command line: named flags plus positional arguments.
class Flags {
 public:
  /// Parses argv. Unknown flags are kept (validation is the caller's
  /// business via RequireKnown).
  static Flags Parse(int argc, const char* const* argv);

  /// True when the flag was present on the command line.
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// String value or `def` when absent.
  std::string GetString(const std::string& key, const std::string& def) const;
  /// Integer value or `def` when absent/malformed.
  std::int64_t GetInt(const std::string& key, std::int64_t def) const;
  /// Double value or `def` when absent/malformed.
  double GetDouble(const std::string& key, double def) const;
  /// Bool value ("", "1", "true", "yes" => true) or `def` when absent.
  bool GetBool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Returns InvalidArgument when a present flag is not in `known`.
  Status RequireKnown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gcp

#endif  // GCP_COMMON_FLAGS_HPP_
