#include "common/arena.hpp"

#include <atomic>

#include "common/alloc_fault.hpp"

namespace gcp {

namespace {

inline std::size_t AlignUp(std::size_t offset, std::size_t align) {
  return (offset + align - 1) & ~(align - 1);
}

std::atomic<bool> g_arena_enabled{true};

}  // namespace

void* Arena::AllocateImpl(std::size_t bytes, std::size_t align,
                          bool may_fail) {
  assert(align != 0 && (align & (align - 1)) == 0);
  assert(align <= alignof(std::max_align_t));
  // Try the active block, then any retained (empty) successor, then a
  // fresh block sized for the request.
  for (;;) {
    if (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      const std::size_t at = AlignUp(b.used, align);
      if (at + bytes <= b.size) {
        b.used = at + bytes;
        return b.data.get() + at;
      }
      if (current_ + 1 < blocks_.size() &&
          blocks_[current_ + 1].size >= bytes + align) {
        ++current_;
        assert(blocks_[current_].used == 0);
        continue;
      }
    }
    // Fresh-block growth is the arena's only discretionary allocation;
    // TryAllocate callers degrade to plain heap when it is injected to
    // fail, Allocate callers keep the never-null contract.
    if (may_fail &&
        AllocationFaultFires(AllocSite::kArenaBlock, bytes + align)) {
      return nullptr;
    }
    Block fresh;
    fresh.size = std::max(block_bytes_, bytes + align);
    fresh.data = std::make_unique<std::byte[]>(fresh.size);
    if (blocks_.empty()) {
      blocks_.push_back(std::move(fresh));
      current_ = 0;
    } else {
      // Insert right after the active block so Rewind's "later blocks are
      // empty" invariant keeps holding.
      blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(current_) +
                         1,
                     std::move(fresh));
      ++current_;
    }
  }
}

void Arena::Rewind(const Checkpoint& cp) {
  if (blocks_.empty()) return;
  assert(cp.block <= current_);
  for (std::size_t i = cp.block + 1; i <= current_; ++i) blocks_[i].used = 0;
  current_ = cp.block;
  assert(cp.used <= blocks_[current_].used);
  blocks_[current_].used = cp.used;
}

std::size_t Arena::BytesInUse() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < blocks_.size() && i <= current_; ++i) {
    total += blocks_[i].used;
  }
  return total;
}

void SetArenaEnabled(bool enabled) {
  g_arena_enabled.store(enabled, std::memory_order_relaxed);
}

bool ArenaEnabled() {
  return g_arena_enabled.load(std::memory_order_relaxed);
}

Arena* ThreadArena() {
  if (!ArenaEnabled()) return nullptr;
  thread_local Arena arena;
  return &arena;
}

}  // namespace gcp
