// Bump-pointer arena for per-query transient allocations.
//
// The hot path allocates the same short-lived buffers for every
// (query, candidate) pair — VF2+ core mapping arrays, static-order
// scratch, signature-prescreen survivor buffers. Each is a handful of
// heap round-trips per candidate, and Method M verifies a query against
// thousands of candidates. An Arena turns all of them into pointer bumps
// inside a few reused blocks: allocation is an add, deallocation is a
// checkpoint rewind, and the blocks themselves are recycled across
// queries instead of going back to the allocator.
//
// Usage contract: scratch lifetimes nest (LIFO). ScratchArray takes a
// checkpoint on construction and rewinds on destruction, so plain
// stack-scoped usage — including recursion, where deeper frames allocate
// after and release before shallower ones — is always safe. Interleaving
// non-nested lifetimes on one arena is not supported.
//
// Matcher scratch must live per-thread (PreparedPattern is shared across
// concurrent searches; see match_context.hpp), so callers reach the arena
// through ThreadArena(). SetArenaEnabled(false) makes ThreadArena()
// return nullptr and every ScratchArray fall back to plain heap arrays —
// the bit-exact "before" oracle for the benches.

#ifndef GCP_COMMON_ARENA_HPP_
#define GCP_COMMON_ARENA_HPP_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace gcp {

/// \brief Chained-block bump allocator. Not thread-safe; use one per
/// thread (ThreadArena) or guard externally.
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 16;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(std::max<std::size_t>(block_bytes, 64)) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Position marker; see Mark/Rewind.
  struct Checkpoint {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  /// Returns `bytes` of storage aligned to `align` (a power of two,
  /// at most alignof(std::max_align_t)). Never returns nullptr (zero-byte
  /// requests yield a valid, possibly shared, pointer).
  void* Allocate(std::size_t bytes, std::size_t align) {
    return AllocateImpl(bytes, align, /*may_fail=*/false);
  }

  /// Like Allocate, but consults the allocation-fault injector when a
  /// fresh block would have to be allocated; returns nullptr on an
  /// injected failure. Callers (ScratchArray) degrade to plain heap.
  void* TryAllocate(std::size_t bytes, std::size_t align) {
    return AllocateImpl(bytes, align, /*may_fail=*/true);
  }

  template <typename T>
  T* AllocateArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  template <typename T>
  T* TryAllocateArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    return static_cast<T*>(TryAllocate(n * sizeof(T), alignof(T)));
  }

  /// Captures the current bump position.
  Checkpoint Mark() const {
    if (blocks_.empty()) return Checkpoint{};
    return Checkpoint{current_, blocks_[current_].used};
  }

  /// Releases everything allocated after `cp` (blocks are retained for
  /// reuse). `cp` must come from this arena and still be "below" the
  /// current position — LIFO order.
  void Rewind(const Checkpoint& cp);

  /// Rewinds to empty, keeping the blocks.
  void Reset() { Rewind(Checkpoint{}); }

  /// Bytes currently handed out (diagnostics/tests).
  std::size_t BytesInUse() const;
  /// Number of blocks ever allocated (diagnostics/tests).
  std::size_t NumBlocks() const { return blocks_.size(); }

 private:
  void* AllocateImpl(std::size_t bytes, std::size_t align, bool may_fail);

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< Active block; later blocks are empty.
  std::size_t block_bytes_;
};

/// Process-wide switch for the thread arenas (default on). Off = every
/// ScratchArray heap-allocates — the deep-alloc oracle path.
void SetArenaEnabled(bool enabled);
bool ArenaEnabled();

/// The calling thread's scratch arena, or nullptr when arenas are
/// disabled. The arena lives until thread exit; callers must release
/// their allocations (ScratchArray does) so it stays empty between
/// queries.
Arena* ThreadArena();

/// \brief Fixed-size scratch buffer of trivially-destructible T, arena-
/// backed when an arena is given, heap-backed otherwise. Rewinds its
/// arena on destruction (LIFO).
template <typename T>
class ScratchArray {
  static_assert(std::is_trivially_destructible_v<T>);

 public:
  ScratchArray(Arena* arena, std::size_t n) : arena_(arena), size_(n) {
    if (arena_ != nullptr) {
      mark_ = arena_->Mark();
      data_ = arena_->TryAllocateArray<T>(n);
      if (data_ == nullptr && n != 0) {
        // Injected block-growth failure: degrade this scratch to plain
        // heap. The arena position is untouched (the failed request
        // allocated nothing past the mark).
        arena_->Rewind(mark_);
        arena_ = nullptr;
      }
    }
    if (arena_ == nullptr) {
      data_ = n == 0 ? nullptr : new T[n];
    }
  }

  ScratchArray(Arena* arena, std::size_t n, const T& fill)
      : ScratchArray(arena, n) {
    std::fill_n(data_, size_, fill);
  }

  ScratchArray(const ScratchArray&) = delete;
  ScratchArray& operator=(const ScratchArray&) = delete;

  ~ScratchArray() {
    if (arena_ != nullptr) {
      arena_->Rewind(mark_);
    } else {
      delete[] data_;
    }
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

 private:
  Arena* arena_;
  Arena::Checkpoint mark_;
  T* data_ = nullptr;
  std::size_t size_;
};

/// \brief std-compatible allocator over an Arena (deallocate is a no-op;
/// storage is reclaimed by the owner's Rewind/Reset).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) { assert(arena); }
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace gcp

#endif  // GCP_COMMON_ARENA_HPP_
