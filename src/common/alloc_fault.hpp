// Allocation-fault injection for the overload torture harness.
//
// The durable-cache work (io.hpp) proved the checkpoint pipeline against
// scripted I/O faults; this is the same pattern aimed at memory: a
// process-global hook consulted at the engine's discretionary allocation
// sites — arena block growth, whole-query admission, fragment admission,
// snapshot export. Each site has a graceful-degradation path (heap
// fallback, skipped admission, failed checkpoint) so an injected failure
// must never change answers, only shed cache state. The OOM-matrix test
// fails the Nth consult for every N, like crash_matrix_test does for I/O.
//
// The hook is process-global (an atomic pointer) because the arena is a
// thread-local singleton with no engine back-pointer. Injectors must be
// thread-safe; ScriptedAllocationFaultInjector serializes on a mutex.
// Production runs leave the hook null: the cost is one relaxed atomic
// load per consult.

#ifndef GCP_COMMON_ALLOC_FAULT_HPP_
#define GCP_COMMON_ALLOC_FAULT_HPP_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>

namespace gcp {

/// Discretionary allocation sites that consult the injector.
enum class AllocSite : std::uint8_t {
  kArenaBlock = 0,         ///< Arena fresh-block growth (matcher scratch).
  kAdmission = 1,          ///< CacheManager whole-query admission.
  kFragmentAdmission = 2,  ///< FragmentStore one-hop star admission.
  kSnapshotExport = 3,     ///< Checkpoint ExportSnapshot deep copy.
};
inline constexpr std::size_t kNumAllocSites = 4;

/// Human-readable site name (e.g. "ArenaBlock").
const char* AllocSiteName(AllocSite site);

/// \brief Decides whether a discretionary allocation "fails". Implementations
/// must be thread-safe: consults come from client threads, the maintenance
/// thread and checkpoint writers concurrently.
class AllocationFaultInjector {
 public:
  virtual ~AllocationFaultInjector() = default;

  /// True = the allocation at `site` (of roughly `bytes` bytes) must be
  /// treated as failed. Called once per discretionary allocation.
  virtual bool ShouldFail(AllocSite site, std::size_t bytes) = 0;
};

/// Installs `injector` as the process-global hook (nullptr = none) and
/// returns the previous hook. The injector must outlive its installation.
AllocationFaultInjector* ExchangeAllocationFaultInjector(
    AllocationFaultInjector* injector);

/// The currently installed hook, or nullptr.
AllocationFaultInjector* CurrentAllocationFaultInjector();

/// Convenience: true when a hook is installed and fails this consult.
inline bool AllocationFaultFires(AllocSite site, std::size_t bytes) {
  AllocationFaultInjector* injector = CurrentAllocationFaultInjector();
  return injector != nullptr && injector->ShouldFail(site, bytes);
}

/// \brief Deterministic scripted injector for the OOM matrix and torture
/// suites. Consults are numbered globally in arrival order; a script fails
/// either one index (FailAt), a half-open range (FailRange), or every
/// consult at one site (FailSite). Counters expose what actually ran so a
/// matrix can stop once the script stops firing.
class ScriptedAllocationFaultInjector : public AllocationFaultInjector {
 public:
  ScriptedAllocationFaultInjector() = default;

  /// Fails exactly the `index`-th consult (0-based).
  void FailAt(std::uint64_t index) { FailRange(index, index + 1); }

  /// Fails every consult with begin <= index < end.
  void FailRange(std::uint64_t begin, std::uint64_t end) {
    std::lock_guard<std::mutex> lock(mu_);
    begin_ = begin;
    end_ = end;
  }

  /// Additionally fails every consult at `site` while enabled.
  void FailSite(AllocSite site, bool fail) {
    std::lock_guard<std::mutex> lock(mu_);
    site_fail_[static_cast<std::size_t>(site)] = fail;
  }

  /// Clears the script (nothing fails; counters keep accumulating).
  void DisarmScript() {
    std::lock_guard<std::mutex> lock(mu_);
    begin_ = end_ = 0;
    for (bool& f : site_fail_) f = false;
  }

  bool ShouldFail(AllocSite site, std::size_t bytes) override {
    (void)bytes;
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t index = ops_seen_++;
    ++per_site_seen_[static_cast<std::size_t>(site)];
    const bool fail = (index >= begin_ && index < end_) ||
                      site_fail_[static_cast<std::size_t>(site)];
    if (fail) {
      ++fired_;
      fired_site_ = site;
    }
    return fail;
  }

  /// Total consults observed (all sites).
  std::uint64_t ops_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_seen_;
  }
  /// Consults observed at one site.
  std::uint64_t ops_seen(AllocSite site) const {
    std::lock_guard<std::mutex> lock(mu_);
    return per_site_seen_[static_cast<std::size_t>(site)];
  }
  /// Number of consults the script failed.
  std::uint64_t fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }
  /// Site of the most recent failed consult (meaningful when fired() > 0).
  AllocSite fired_site() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_site_;
  }

  /// Resets counters and script.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    ops_seen_ = fired_ = 0;
    begin_ = end_ = 0;
    for (auto& n : per_site_seen_) n = 0;
    for (bool& f : site_fail_) f = false;
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t ops_seen_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t begin_ = 0;
  std::uint64_t end_ = 0;  ///< Empty range = nothing fails by index.
  std::uint64_t per_site_seen_[kNumAllocSites] = {0, 0, 0, 0};
  bool site_fail_[kNumAllocSites] = {false, false, false, false};
  AllocSite fired_site_ = AllocSite::kArenaBlock;
};

/// RAII installer: installs on construction, restores the previous hook on
/// destruction. Keeps tests exception-safe and un-leaky.
class ScopedAllocationFaultInjector {
 public:
  explicit ScopedAllocationFaultInjector(AllocationFaultInjector* injector)
      : previous_(ExchangeAllocationFaultInjector(injector)) {}
  ~ScopedAllocationFaultInjector() {
    ExchangeAllocationFaultInjector(previous_);
  }
  ScopedAllocationFaultInjector(const ScopedAllocationFaultInjector&) = delete;
  ScopedAllocationFaultInjector& operator=(
      const ScopedAllocationFaultInjector&) = delete;

 private:
  AllocationFaultInjector* previous_;
};

}  // namespace gcp

#endif  // GCP_COMMON_ALLOC_FAULT_HPP_
