#include "common/io.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace gcp {

namespace {

/// Chunk size of AtomicFileWriter::Append: small enough that a multi-KB
/// checkpoint exposes several distinct write fault points, large enough
/// that syscall count stays negligible.
constexpr std::size_t kWriteChunk = 1 << 16;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// Parent directory of `path` ("." when it has no slash).
std::string ParentDir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::string_view FaultOpName(FaultInjector::Op op) {
  switch (op) {
    case FaultInjector::Op::kOpen:
      return "open";
    case FaultInjector::Op::kWrite:
      return "write";
    case FaultInjector::Op::kFsync:
      return "fsync";
    case FaultInjector::Op::kRename:
      return "rename";
  }
  return "unknown";
}

// --- ScriptedFaultInjector ------------------------------------------------

void ScriptedFaultInjector::FailAt(std::uint64_t index, Status status,
                                   std::size_t torn_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_index_ = index;
  fail_kind_.reset();
  fail_status_ = std::move(status);
  torn_prefix_ = torn_prefix;
  fired_ = false;
}

void ScriptedFaultInjector::FailAtKind(Op op, std::uint64_t nth, Status status,
                                       std::size_t torn_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_kind_ = std::make_pair(op, nth);
  fail_index_.reset();
  fail_status_ = std::move(status);
  torn_prefix_ = torn_prefix;
  fired_ = false;
}

FaultInjector::Decision ScriptedFaultInjector::OnOp(Op op,
                                                    const std::string& path,
                                                    std::size_t /*len*/) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = total_++;
  const std::uint64_t kind_index = per_kind_[static_cast<int>(op)]++;
  Decision d;
  const bool hit =
      (fail_index_.has_value() && *fail_index_ == index) ||
      (fail_kind_.has_value() && fail_kind_->first == op &&
       fail_kind_->second == kind_index);
  if (hit && !fail_status_.ok()) {
    fired_ = true;
    fired_path_ = path;
    d.status = fail_status_;
    d.torn_prefix_bytes = torn_prefix_;
  }
  return d;
}

std::uint64_t ScriptedFaultInjector::ops_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t ScriptedFaultInjector::ops_seen(Op op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_kind_[static_cast<int>(op)];
}

bool ScriptedFaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::string ScriptedFaultInjector::fired_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_path_;
}

// --- Plain helpers --------------------------------------------------------

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) return Status::IOError("read failed: " + path);
  return std::move(buf).str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("stat", path));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink", path));
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(ErrnoMessage("mkdir", dir));
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError(ErrnoMessage("opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  return names;
}

// --- AtomicFileWriter -----------------------------------------------------

AtomicFileWriter::AtomicFileWriter(std::string final_path,
                                   FaultInjector* fault)
    : final_path_(std::move(final_path)),
      tmp_path_(final_path_ + ".tmp"),
      fault_(fault) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abandon();
}

Status AtomicFileWriter::Fail(Status st) {
  if (first_error_.ok()) first_error_ = st;
  return st;
}

Status AtomicFileWriter::Open() {
  if (!first_error_.ok()) return first_error_;
  if (fault_ != nullptr) {
    const FaultInjector::Decision d = fault_->OnOp(FaultInjector::Op::kOpen, tmp_path_, 0);
    if (!d.status.ok()) return Fail(d.status);
  }
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return Fail(Status::IOError(ErrnoMessage("open", tmp_path_)));
  return Status::OK();
}

Status AtomicFileWriter::Append(std::string_view data) {
  if (!first_error_.ok()) return first_error_;
  if (fd_ < 0) return Fail(Status::FailedPrecondition("writer not open"));
  while (!data.empty()) {
    const std::size_t chunk = data.size() < kWriteChunk ? data.size()
                                                        : kWriteChunk;
    if (fault_ != nullptr) {
      const FaultInjector::Decision d = fault_->OnOp(FaultInjector::Op::kWrite, tmp_path_, chunk);
      if (!d.status.ok()) {
        // A torn write: the scripted prefix lands on disk, then the
        // "crash" — exactly what a power cut mid-write leaves behind.
        const std::size_t torn = d.torn_prefix_bytes < chunk
                                     ? d.torn_prefix_bytes
                                     : 0;
        if (torn > 0) {
          (void)::write(fd_, data.data(), torn);
          bytes_written_ += torn;
        }
        return Fail(d.status);
      }
    }
    const char* p = data.data();
    std::size_t remaining = chunk;
    while (remaining > 0) {
      const ssize_t n = ::write(fd_, p, remaining);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Fail(Status::IOError(ErrnoMessage("write", tmp_path_)));
      }
      p += n;
      remaining -= static_cast<std::size_t>(n);
      bytes_written_ += static_cast<std::uint64_t>(n);
    }
    data.remove_prefix(chunk);
  }
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (!first_error_.ok()) return first_error_;
  if (fd_ < 0) return Fail(Status::FailedPrecondition("writer not open"));
  if (fault_ != nullptr) {
    const FaultInjector::Decision d = fault_->OnOp(FaultInjector::Op::kFsync, tmp_path_, 0);
    if (!d.status.ok()) return Fail(d.status);
  }
  if (::fsync(fd_) != 0) {
    return Fail(Status::IOError(ErrnoMessage("fsync", tmp_path_)));
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Fail(Status::IOError(ErrnoMessage("close", tmp_path_)));
  }
  fd_ = -1;
  if (fault_ != nullptr) {
    const FaultInjector::Decision d = fault_->OnOp(FaultInjector::Op::kRename, final_path_, 0);
    if (!d.status.ok()) return Fail(d.status);
  }
  if (::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    return Fail(Status::IOError(ErrnoMessage("rename", tmp_path_)));
  }
  // Durable directory entry: without this, the rename itself may not
  // survive a crash even though the data would.
  const std::string dir = ParentDir(final_path_);
  if (fault_ != nullptr) {
    const FaultInjector::Decision d = fault_->OnOp(FaultInjector::Op::kFsync, dir, 0);
    if (!d.status.ok()) return Fail(d.status);
  }
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    ::close(dirfd);
  }
  committed_ = true;
  return Status::OK();
}

void AtomicFileWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // The tmp file is left in place on purpose — see the file comment.
}

}  // namespace gcp
