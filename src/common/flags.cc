#include "common/flags.hpp"

#include <algorithm>
#include <cstdlib>

namespace gcp {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a flag; `--key`
    // otherwise (boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::GetInt(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : def;
}

double Flags::GetDouble(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : def;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  return false;
}

Status Flags::RequireKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
  }
  return Status::OK();
}

}  // namespace gcp
