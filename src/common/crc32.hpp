// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// checksum of the durable checkpoint format.
//
// Software table implementation on purpose: checkpoints are a background
// maintenance artifact, not a hot path, and a dependency-free checksum
// keeps the io layer self-contained. The value for the empty string is 0
// and Crc32 composes incrementally: Crc32(b, n2, Crc32(a, n1)) ==
// Crc32(a+b, n1+n2).

#ifndef GCP_COMMON_CRC32_HPP_
#define GCP_COMMON_CRC32_HPP_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gcp {

/// CRC32 of `len` bytes at `data`, continuing from `seed` (0 to start).
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

inline std::uint32_t Crc32(std::string_view s, std::uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace gcp

#endif  // GCP_COMMON_CRC32_HPP_
