// Status / Result error-handling primitives for the GC+ library.
//
// The library does not throw exceptions (RocksDB / Google style): fallible
// operations at API boundaries return a Status (or a Result<T> when they
// also produce a value). Programming errors are handled with assertions.

#ifndef GCP_COMMON_STATUS_HPP_
#define GCP_COMMON_STATUS_HPP_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace gcp {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// \brief Lightweight success-or-error value.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Statuses are cheap to move and copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result is a programming error (checked by assertion).
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates a non-OK status to the caller.
#define GCP_RETURN_NOT_OK(expr)          \
  do {                                   \
    ::gcp::Status _st = (expr);          \
    if (!_st.ok()) return _st;           \
  } while (0)

}  // namespace gcp

#endif  // GCP_COMMON_STATUS_HPP_
