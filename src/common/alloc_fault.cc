#include "common/alloc_fault.hpp"

#include <atomic>

namespace gcp {

namespace {

std::atomic<AllocationFaultInjector*> g_alloc_fault_injector{nullptr};

}  // namespace

const char* AllocSiteName(AllocSite site) {
  switch (site) {
    case AllocSite::kArenaBlock:
      return "ArenaBlock";
    case AllocSite::kAdmission:
      return "Admission";
    case AllocSite::kFragmentAdmission:
      return "FragmentAdmission";
    case AllocSite::kSnapshotExport:
      return "SnapshotExport";
  }
  return "Unknown";
}

AllocationFaultInjector* ExchangeAllocationFaultInjector(
    AllocationFaultInjector* injector) {
  return g_alloc_fault_injector.exchange(injector, std::memory_order_acq_rel);
}

AllocationFaultInjector* CurrentAllocationFaultInjector() {
  return g_alloc_fault_injector.load(std::memory_order_acquire);
}

}  // namespace gcp
