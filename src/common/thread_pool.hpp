// Fixed-size thread pool backing the Query Processing Runtime's
// Resource Manager: GC+ can verify sub-iso candidates in parallel and run
// cache maintenance concurrently with query execution (paper §4).

#ifndef GCP_COMMON_THREAD_POOL_HPP_
#define GCP_COMMON_THREAD_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcp {

/// \brief Minimal fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Falls back to inline execution for n <= 1.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace gcp

#endif  // GCP_COMMON_THREAD_POOL_HPP_
