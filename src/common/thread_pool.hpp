// Fixed-size thread pool backing the Query Processing Runtime's
// Resource Manager: GC+ can verify sub-iso candidates in parallel and run
// cache maintenance concurrently with query execution (paper §4).

#ifndef GCP_COMMON_THREAD_POOL_HPP_
#define GCP_COMMON_THREAD_POOL_HPP_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcp {

/// \brief Minimal fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. Returns false (and drops
  /// the task) once shutdown has begun — tasks racing the destructor are
  /// rejected instead of enqueued onto a draining pool.
  bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw
  /// since the last WaitIdle(), rethrows the first such exception here
  /// (worker threads never let exceptions escape WorkerLoop).
  void WaitIdle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Falls back to inline execution for n <= 1. If `fn` throws, the
  /// throwing shard stops, the remaining shards finish their iterations,
  /// and the first exception is rethrown on the calling thread.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  /// First exception to escape a Submit()ed task; surfaced by WaitIdle().
  std::exception_ptr first_error_;
};

}  // namespace gcp

#endif  // GCP_COMMON_THREAD_POOL_HPP_
