#include "core/graphcache_plus.hpp"

#include "cache/snapshot.hpp"
#include "cache/statistics.hpp"
#include "common/stopwatch.hpp"
#include "core/pruner.hpp"
#include "dataset/log_analyzer.hpp"

namespace gcp {

std::string_view CacheModelName(CacheModel model) {
  switch (model) {
    case CacheModel::kEvi:
      return "EVI";
    case CacheModel::kCon:
      return "CON";
  }
  return "Unknown";
}

GraphCachePlus::GraphCachePlus(GraphDataset* dataset,
                               GraphCachePlusOptions options)
    : dataset_(dataset),
      options_(options),
      pool_(options.verify_threads > 1
                ? std::make_unique<ThreadPool>(options.verify_threads)
                : nullptr),
      ftv_(options.use_ftv_index ? std::make_unique<FtvIndex>(*dataset)
                                 : nullptr),
      method_m_(options.method_m, *dataset, pool_.get()),
      internal_matcher_(MakeMatcher(options.internal_matcher)),
      discovery_(*internal_matcher_, options_),
      cache_(CacheManagerOptions{options.cache_capacity,
                                 options.window_capacity, options.policy,
                                 options.rng_seed}) {}

void GraphCachePlus::SyncWithDataset(QueryMetrics* metrics) {
  ScopedTimer timer(&metrics->t_validate_ns);
  const ChangeLog& log = dataset_->log();
  if (!log.HasChangesSince(watermark_)) return;
  if (options_.model == CacheModel::kEvi) {
    // EVI: the Log Analyzer merely raises the changed flag; the Cache
    // Validator clears the stores indiscriminately (paper §5.1).
    cache_.Clear();
  } else {
    // CON: Algorithm 1 over the incremental records, then Algorithm 2 on
    // every resident entry (paper §5.2).
    const std::vector<ChangeRecord> records = log.ExtractSince(watermark_);
    const ChangeCounters counters = LogAnalyzer::Analyze(records);
    cache_.ValidateAll(counters, dataset_->IdHorizon());
    if (options_.retrospective_budget > 0) {
      RetrospectiveRefresh(options_.retrospective_budget);
    }
  }
  watermark_ = log.LatestSeq();
}

Status GraphCachePlus::SaveCache(const std::string& path) const {
  CacheSnapshot snapshot;
  snapshot.watermark = watermark_;
  snapshot.id_horizon = dataset_->IdHorizon();
  snapshot.entries = cache_.ExportEntries();
  return WriteCacheSnapshotToFile(path, snapshot);
}

Status GraphCachePlus::LoadCache(const std::string& path) {
  auto snapshot = ReadCacheSnapshotFromFile(path);
  if (!snapshot.ok()) return snapshot.status();
  CacheSnapshot& s = snapshot.value();
  if (s.watermark > dataset_->log().LatestSeq()) {
    return Status::FailedPrecondition(
        "snapshot watermark is ahead of the dataset change log — not the "
        "same dataset lineage");
  }
  if (s.id_horizon > dataset_->IdHorizon()) {
    return Status::FailedPrecondition(
        "snapshot horizon exceeds the dataset's id horizon");
  }
  for (const CachedQuery& e : s.entries) {
    if (e.valid.size() != s.id_horizon || e.answer.size() != s.id_horizon) {
      return Status::Corruption("snapshot entry width != snapshot horizon");
    }
  }
  cache_.RestoreEntries(std::move(s.entries));
  // Resume from the snapshot's watermark: the next query's sync replays
  // the incremental suffix, re-establishing consistency.
  watermark_ = s.watermark;
  return Status::OK();
}

void GraphCachePlus::RetrospectiveRefresh(std::size_t budget) {
  // The paper's §8 future-work optimisation: re-verify invalidated
  // (cached query, live graph) pairs against the current dataset so the
  // relation becomes known (and valid) again. Most-beneficial entries
  // first; cost is bounded by `budget` sub-iso tests per sync.
  const DynamicBitset live = dataset_->LiveMask();
  const SubgraphMatcher& verifier = method_m_.matcher();
  for (const CacheEntryId id : cache_.ResidentIdsByBenefit()) {
    if (budget == 0) return;
    CachedQuery* e = cache_.FindMutable(id);
    if (e == nullptr || e->valid.size() != live.size()) continue;
    // Unknown pairs: live graphs whose validity bit is off.
    DynamicBitset unknown = DynamicBitset::Not(e->valid);
    unknown.AndWith(live);
    for (std::size_t i = unknown.FindFirst();
         i != DynamicBitset::npos && budget > 0;
         i = unknown.FindNext(i + 1)) {
      const Graph& g = dataset_->graph(static_cast<GraphId>(i));
      const bool contained = e->kind == CachedQueryKind::kSubgraph
                                 ? verifier.Contains(e->query, g)
                                 : verifier.Contains(g, e->query);
      e->answer.Set(i, contained);
      e->valid.Set(i, true);
      --budget;
      ++cache_.stats().total_retro_refreshes;
    }
  }
}

QueryResult GraphCachePlus::Query(const Graph& g, QueryKind kind) {
  QueryResult result;
  QueryMetrics& m = result.metrics;
  m.query_id = query_counter_++;

  // --- Dataset Manager: reconcile dataset changes with the cache. --------
  SyncWithDataset(&m);

  // --- Method M candidate generation: whole live dataset, or the FTV
  // filter when Method M is equipped with the updatable index. -------------
  DynamicBitset csm;
  if (ftv_ != nullptr) {
    ScopedTimer timer(&m.t_index_ns);
    ftv_->SyncWithDataset();
    csm = ftv_->CandidateSet(
        GraphFeatures::Extract(g),
        kind == QueryKind::kSubgraph ? FtvQueryDirection::kSubgraph
                                     : FtvQueryDirection::kSupergraph);
  } else {
    csm = dataset_->LiveMask();
  }
  m.candidates_initial = csm.Count();

  // --- Query Processing Runtime: hit discovery. ---------------------------
  Stopwatch probe_watch;
  const DiscoveredHits hits = discovery_.Discover(g, kind, cache_, csm, &m);
  m.t_probe_ns = probe_watch.ElapsedNanos();

  // --- Candidate-set pruning (formulas (1)-(5), §6.3 shortcuts). ----------
  Stopwatch prune_watch;
  const PruneOutcome pruned = CandidateSetPruner::Prune(hits, csm, &m);
  m.t_prune_ns = prune_watch.ElapsedNanos();

  // --- Method M verification on the reduced candidate set. ----------------
  Stopwatch verify_watch;
  DynamicBitset answer_bits;
  if (pruned.direct) {
    answer_bits = pruned.answer_direct;
  } else {
    answer_bits =
        method_m_.VerifyCandidates(g, kind, pruned.candidates, &m.si_tests);
    // Formula (3): verified graphs plus direct transfers.
    answer_bits.OrWith(pruned.answer_direct);
  }
  m.t_verify_ns = verify_watch.ElapsedNanos();
  m.answer_size = answer_bits.Count();

  // --- Statistics Manager: credit contributing entries. -------------------
  {
    StatisticsManager& stats = cache_.stats();
    if (hits.exact != nullptr) {
      cache_.RecordBenefit(hits.exact->id, pruned.saved_positive,
                           m.query_id);
      CachedQuery* e = cache_.FindMutable(hits.exact->id);
      if (e != nullptr) ++e->exact_hits;
      ++stats.total_exact_hits;
      if (m.si_tests == 0) ++stats.total_exact_hits_zero_test;
    }
    if (hits.empty_proof != nullptr) {
      cache_.RecordBenefit(hits.empty_proof->id, pruned.saved_pruning,
                           m.query_id);
      CachedQuery* e = cache_.FindMutable(hits.empty_proof->id);
      if (e != nullptr) ++e->super_hits;
      ++stats.total_empty_shortcuts;
    }
    for (const CachedQuery* hit : hits.positive) {
      const std::uint64_t standalone =
          DynamicBitset::And(hit->valid, hit->answer).CountAnd(csm);
      cache_.RecordBenefit(hit->id, standalone, m.query_id);
      CachedQuery* e = cache_.FindMutable(hit->id);
      if (e != nullptr) ++e->sub_hits;
      ++stats.total_sub_hits;
    }
    for (const CachedQuery* hit : hits.pruning) {
      const std::uint64_t standalone =
          DynamicBitset::AndNot(hit->valid, hit->answer).CountAnd(csm);
      cache_.RecordBenefit(hit->id, standalone, m.query_id);
      CachedQuery* e = cache_.FindMutable(hit->id);
      if (e != nullptr) ++e->super_hits;
      ++stats.total_super_hits;
    }
  }

  // --- Cache Manager: admission + replacement (maintenance overhead). -----
  {
    ScopedTimer timer(&m.t_maintenance_ns);
    // Exact hits carry no new knowledge — the isomorphic entry is already
    // resident; everything else executed is offered to the window.
    if (options_.enable_admission && hits.exact == nullptr) {
      // C is a *structural* estimate (after [25]), deliberately not a wall
      // time: the paper's Figure 5 premise — "whatever SI method being the
      // Method M, GC+ results exactly the same pruned candidate set" —
      // requires every cache decision (incl. PINC/HD scoring) to be
      // method-independent.
      const double est_cost = StatisticsManager::StructuralCostEstimateMs(g);
      DynamicBitset valid(dataset_->IdHorizon());
      valid.SetAll();
      cache_.Admit(g,
                   kind == QueryKind::kSubgraph ? CachedQueryKind::kSubgraph
                                                : CachedQueryKind::kSupergraph,
                   answer_bits, std::move(valid), m.query_id, est_cost);
    }
  }

  result.answer.reserve(answer_bits.Count());
  answer_bits.ForEachSetBit([&result](std::size_t id) {
    result.answer.push_back(static_cast<GraphId>(id));
  });
  aggregate_.Add(m);
  return result;
}

}  // namespace gcp
