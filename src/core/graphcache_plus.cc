#include "core/graphcache_plus.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "cache/cache_validator.hpp"
#include "cache/checkpoint.hpp"
#include "cache/snapshot.hpp"
#include "cache/statistics.hpp"
#include "common/alloc_fault.hpp"
#include "common/io.hpp"
#include "common/stopwatch.hpp"
#include "core/pruner.hpp"
#include "dataset/log_analyzer.hpp"
#include "graph/canonical.hpp"
#include "match/fragments.hpp"

namespace gcp {

namespace {

/// Engine-total store options (per-shard splitting happens inside
/// ShardedCache). Named assignment on purpose: a positional brace init
/// here silently misbinds when CacheManagerOptions grows a field.
CacheManagerOptions MakeStoreOptions(const GraphCachePlusOptions& o,
                                     PressureMonitor* pressure) {
  CacheManagerOptions c;
  c.cache_capacity = o.cache_capacity;
  c.window_capacity = o.window_capacity;
  c.policy = o.policy;
  c.rng_seed = o.rng_seed;
  c.maintain_relevance_index = o.use_relevance_index;
  c.fragment_capacity = o.use_fragment_cache ? o.fragment_capacity : 0;
  c.byte_budget = o.byte_budget;
  c.pressure = pressure;
  return c;
}

PressureConfig MakePressureConfig(std::uint64_t byte_budget) {
  PressureConfig cfg;
  cfg.byte_budget = byte_budget;
  return cfg;
}

}  // namespace

std::string_view CacheModelName(CacheModel model) {
  switch (model) {
    case CacheModel::kEvi:
      return "EVI";
    case CacheModel::kCon:
      return "CON";
  }
  return "Unknown";
}

GraphCachePlus::GraphCachePlus(GraphDataset* dataset,
                               GraphCachePlusOptions options)
    : dataset_(dataset),
      options_(options),
      pool_(options.verify_threads > 1
                ? std::make_unique<ThreadPool>(options.verify_threads)
                : nullptr),
      ftv_(options.use_ftv_index ? std::make_unique<FtvIndex>(*dataset)
                                 : nullptr),
      method_m_(options.method_m, *dataset, pool_.get(),
                options.reuse_match_context),
      internal_matcher_(MakeMatcher(options.internal_matcher)),
      discovery_(*internal_matcher_, options_),
      pressure_(options.byte_budget > 0
                    ? std::make_unique<PressureMonitor>(
                          MakePressureConfig(options.byte_budget))
                    : nullptr),
      cache_(options.num_shards,
             MakeStoreOptions(options, pressure_.get())) {
  pending_.reserve(cache_.num_shards());
  for (std::size_t s = 0; s < cache_.num_shards(); ++s) {
    pending_.push_back(std::make_unique<BoundedMpscQueue<PendingMaintenance>>(
        options.maintenance_queue_capacity));
  }
  if (options.epoch_reads) {
    // The first snapshot reflects the dataset as constructed; every shard
    // starts reconciled to it.
    auto initial = EngineSnapshot::Initial(*dataset_, ftv_.get());
    watermark_ = initial->watermark;
    for (std::size_t s = 0; s < cache_.num_shards(); ++s) {
      cache_.shard(s).set_watermark(initial->watermark);
    }
    snapshot_.store(initial.release(), std::memory_order_seq_cst);
    snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  }
  if (options.maintenance_thread) {
    maintenance_ = std::make_unique<MaintenanceThread>(
        [this] { MaintenanceDrainPass(); },
        std::chrono::microseconds(options.maintenance_interval_us));
  }
}

GraphCachePlus::~GraphCachePlus() {
  // Join the drain thread before any member it touches is torn down.
  if (maintenance_ != nullptr) maintenance_->Stop();
  // No reader can be pinned anymore (contract): free the live snapshot;
  // the epoch manager's destructor frees everything still retired.
  delete snapshot_.exchange(nullptr, std::memory_order_acq_rel);
}

bool GraphCachePlus::NeedsSyncLocked() const {
  return dataset_->log().HasChangesSince(watermark_) ||
         (ftv_ != nullptr && !ftv_->InSync());
}

void GraphCachePlus::SyncWithDatasetLocked(QueryMetrics* metrics) {
  const ChangeLog& log = dataset_->log();
  // FTV first: after its sync the summaries reflect the batch-target
  // state, so the delta re-validation screen below may consult them.
  if (ftv_ != nullptr && !ftv_->InSync()) {
    ScopedTimer timer(&metrics->t_index_ns);
    ftv_->SyncWithDataset();
  }
  if (log.HasChangesSince(watermark_)) {
    ScopedTimer timer(&metrics->t_validate_ns);
    if (options_.model == CacheModel::kEvi) {
      // EVI: the Log Analyzer merely raises the changed flag; the Cache
      // Validator clears the stores indiscriminately (paper §5.1).
      for (std::size_t s = 0; s < cache_.num_shards(); ++s) {
        cache_.shard(s).PurgeForReconcile();
      }
    } else {
      // CON: Algorithm 1 over the incremental records, then Algorithm 2 —
      // relevance-screened or brute-force — per shard (paper §5.2).
      const std::vector<ChangeRecord> records = log.ExtractSince(watermark_);
      const ChangeCounters counters = LogAnalyzer::Analyze(records);
      CacheValidator::DeltaRevalidateFn delta_fn;
      const CacheValidator::DeltaRevalidateFn* delta = nullptr;
      if (options_.delta_revalidation) {
        delta_fn = MakeDeltaRevalidator(
            records,
            [this](GraphId id) -> const Graph* {
              return dataset_->IsLive(id) ? &dataset_->graph(id) : nullptr;
            },
            [this](GraphId id) -> const GraphFeatures* {
              // In sync after the block above — summaries are target-state.
              return ftv_ != nullptr && ftv_->InSync() ? ftv_->SummaryOf(id)
                                                       : nullptr;
            });
        delta = &delta_fn;
      }
      const std::size_t horizon = dataset_->IdHorizon();
      for (std::size_t s = 0; s < cache_.num_shards(); ++s) {
        ValidateShardStore(cache_.shard(s), counters, horizon, delta);
      }
      if (options_.retrospective_budget > 0) {
        std::size_t budget = options_.retrospective_budget;
        const DynamicBitset live = dataset_->LiveMask();
        for (std::size_t s = 0; s < cache_.num_shards() && budget > 0; ++s) {
          RetrospectiveRefreshShard(s, live, &budget);
        }
      }
    }
    watermark_ = log.LatestSeq();
    // Shard watermarks track the engine watermark on the lock path
    // (introspective invariant; the lock-path drains reference
    // watermark_ directly).
    for (std::size_t s = 0; s < cache_.num_shards(); ++s) {
      cache_.shard(s).set_watermark(watermark_);
    }
  }
}

std::vector<CacheManager::EntryCreditSum> GraphCachePlus::SumCredits(
    std::span<const PendingMaintenance> batches) {
  // One EntryCreditSum per distinct entry, in first-credit order (the
  // order CreditHit calls would have touched them).
  std::vector<CacheManager::EntryCreditSum> sums;
  std::unordered_map<CacheEntryId, std::size_t> slot_of;
  for (const PendingMaintenance& batch : batches) {
    for (const HitCredit& c : batch.credits) {
      const auto [it, inserted] = slot_of.emplace(c.id, sums.size());
      if (inserted) {
        sums.emplace_back();
        sums.back().id = c.id;
      }
      CacheManager::EntryCreditSum& sum = sums[it->second];
      sum.tests_saved += c.tests_saved;
      ++sum.hit_count;
      sum.last_used = batch.query_id;
      switch (c.kind) {
        case HitKind::kExact:
          ++sum.exact;
          if (c.zero_test_exact) ++sum.zero_test_exact;
          break;
        case HitKind::kEmptyProof:
          ++sum.empty_proof;
          break;
        case HitKind::kSub:
          ++sum.sub;
          break;
        case HitKind::kSuper:
          ++sum.super;
          break;
      }
    }
  }
  return sums;
}

bool GraphCachePlus::IsDuplicateAdmissionLocked(
    std::size_t s, const CachedQuery& entry,
    const DynamicBitset& live) const {
  // The probe mirrors the serial §6.3 exact-hit precondition (same-kind
  // isomorphic resident, fully valid over the live dataset): under that
  // condition the serial engine would not have produced this offer, so a
  // concurrent twin that did slip past the read-phase check is dropped
  // here. Residents that are isomorphic but NOT fully valid do not block
  // admission — the serial engine admits those too (their knowledge is
  // strictly weaker than the fresh offer's). Gated on the exact shortcut
  // so configurations that never detect exact hits keep admitting twins
  // exactly as before.
  if (!options_.enable_exact_shortcut) return false;
  const std::vector<const CachedQuery*> twins =
      cache_.shard(s).index().DigestMatches(entry.digest);
  if (twins.empty()) return false;
  for (const CachedQuery* twin : twins) {
    if (twin->kind != entry.kind ||
        twin->query->NumVertices() != entry.query->NumVertices() ||
        twin->query->NumEdges() != entry.query->NumEdges()) {
      continue;
    }
    if (twin->valid.size() != live.size() || !live.IsSubsetOf(twin->valid)) {
      continue;
    }
    // Equal counts + one-way containment ⇒ isomorphic (the §6.3 case-1
    // argument): the embedding is a bijection and edge counts match.
    if (internal_matcher_->Contains(*entry.query, *twin->query)) return true;
  }
  return false;
}

void GraphCachePlus::ApplyMaintenanceLocked(std::size_t s,
                                            PendingMaintenance& batch,
                                            const DrainEnv& env) {
  CacheManager& shard = cache_.shard(s);
  // Fragment credits first (credits-before-offers, as for entries):
  // recency + benefit for the masks the read phase applied.
  for (const FragmentCredit& c : batch.fragment_credits) {
    shard.fragments().Credit(c.digest, c.pruned, batch.query_id,
                             shard.stats());
  }
  // Fragment offers follow the admission staleness discipline verbatim:
  // never admitted as fresher than computed, dropped under EVI staleness,
  // forward-validated through Algorithms 1 + 2 under CON — so both sides
  // of an AdmitOrMerge sit at the store's watermark.
  for (AdmissionOffer& fo : batch.fragment_offers) {
    if (fo.observed_watermark > env.watermark) continue;
    const bool fo_stale = fo.observed_watermark != env.watermark;
    if (fo_stale && options_.model == CacheModel::kEvi) continue;
    if (fo_stale) {
      std::vector<ChangeRecord> records;
      if (env.snap != nullptr) {
        records =
            env.snap->RecordsBetween(fo.observed_watermark, env.watermark);
      } else {
        records = dataset_->log().ExtractSince(fo.observed_watermark);
        records.erase(std::remove_if(records.begin(), records.end(),
                                     [&env](const ChangeRecord& r) {
                                       return r.seq > env.watermark;
                                     }),
                      records.end());
      }
      const ChangeCounters counters = LogAnalyzer::Analyze(records);
      const std::size_t horizon = env.snap != nullptr
                                      ? env.snap->id_horizon
                                      : dataset_->IdHorizon();
      CacheValidator::RefreshEntry(*fo.entry, counters, horizon);
    }
    shard.fragments().AdmitOrMerge(std::move(fo.entry), batch.query_id,
                                   shard.stats());
  }
  if (!batch.offer.has_value()) return;
  AdmissionOffer& offer = *batch.offer;
  if (offer.observed_watermark > env.watermark) {
    // Knowledge from a snapshot newer than this drain's reference — only
    // possible on the epoch path when a publish raced the pop, and then a
    // later drain (whose snapshot covers the offer) would still be unable
    // to rewind it. Dropping is the only exact option; the pop-then-load
    // ordering in DrainShard makes this unreachable in practice.
    return;
  }
  const bool stale = offer.observed_watermark != env.watermark;
  if (stale && options_.model == CacheModel::kEvi) {
    // EVI keeps no pre-change knowledge: an offer computed before the
    // change the cache already purged for is dropped, exactly as a
    // resident entry would have been.
    return;
  }
  // Lock path (env.live == nullptr): recompute the live mask from the
  // dataset per offer, exactly as PR 4 — the bit-exact oracle. Epoch
  // path: the snapshot's precomputed mask, no dataset access.
  const DynamicBitset live_storage =
      env.live == nullptr ? dataset_->LiveMask() : DynamicBitset();
  const DynamicBitset& live =
      env.live == nullptr ? live_storage : *env.live;
  if (IsDuplicateAdmissionLocked(s, *offer.entry, live)) {
    // Concurrent twin: an isomorphic, fully-valid resident landed between
    // this query's read phase and its drain. Admitting both would split
    // capacity and benefit statistics across identical knowledge.
    ++shard.stats().total_admission_dedups;
    return;
  }
  const Result<CacheEntryId> admitted =
      shard.AdmitPrepared(std::move(offer.entry), batch.query_id);
  if (!admitted.ok()) return;  // Injected allocation failure: offer dropped.
  const CacheEntryId id = admitted.value();
  if (stale) {
    // CON: forward-validate the snapshot through Algorithms 1 + 2 over
    // exactly the records the store has already reconciled, so the new
    // entry joins the resident set at the store's watermark. Records past
    // it are left for the next reconcile (which refreshes every resident
    // entry uniformly).
    std::vector<ChangeRecord> records;
    if (env.snap != nullptr) {
      records = env.snap->RecordsBetween(offer.observed_watermark,
                                         env.watermark);
    } else {
      records = dataset_->log().ExtractSince(offer.observed_watermark);
      records.erase(std::remove_if(records.begin(), records.end(),
                                   [&env](const ChangeRecord& r) {
                                     return r.seq > env.watermark;
                                   }),
                    records.end());
    }
    const ChangeCounters counters = LogAnalyzer::Analyze(records);
    CachedQuery* e = shard.FindMutable(id);
    if (e != nullptr) {
      const std::size_t horizon = env.snap != nullptr
                                      ? env.snap->id_horizon
                                      : dataset_->IdHorizon();
      CacheValidator::RefreshEntry(*e, counters, horizon);
      // The forward validation can resize the entry's bitsets behind the
      // store's back — re-account its byte footprint.
      shard.NoteEntryBytesChanged(id);
    }
  }
}

void GraphCachePlus::ApplyBatchesLocked(std::size_t s,
                                        std::span<PendingMaintenance> batches,
                                        const DrainEnv& env) {
  if (batches.empty()) return;
  // Benefit credits are summed per entry across the whole drain and
  // applied as one update per entry; a credit can never reference an
  // entry admitted by an offer in the same drain (the entry had to be
  // resident when the crediting query's read phase discovered it), so
  // applying all credits before all offers preserves the per-batch order.
  cache_.shard(s).CreditHitsBatched(SumCredits(batches));
  for (PendingMaintenance& b : batches) ApplyMaintenanceLocked(s, b, env);
  // Replacement runs once per drain, however many admissions landed.
  cache_.shard(s).MaybeMergeWindow();
}

void GraphCachePlus::DrainShardLocked(std::size_t s, const DrainEnv& env) {
  std::vector<PendingMaintenance> batches = pending_[s]->DrainAll();
  ApplyBatchesLocked(s, batches, env);
}

bool GraphCachePlus::DrainShard(std::size_t s, bool try_lock,
                                PendingMaintenance* extra) {
  if (!options_.epoch_reads) {
    // Lock path: caller holds the engine lock (shared suffices).
    ShardedCache::DrainScope scope(s);
    auto lock =
        try_lock ? cache_.TryLockExclusive(s) : cache_.LockExclusive(s);
    if (!lock.owns_lock()) return false;
    const DrainEnv env{watermark_, nullptr, nullptr};
    DrainShardLocked(s, env);
    if (extra != nullptr) {
      ApplyBatchesLocked(s, std::span<PendingMaintenance>(extra, 1), env);
    }
    return true;
  }
  // Epoch path: no engine lock anywhere. Pin first so every snapshot
  // loaded below stays alive for the whole drain.
  EpochManager::Guard guard = epochs_.Pin();
  ShardedCache::DrainScope scope(s);
  auto lock = try_lock ? cache_.TryLockExclusive(s) : cache_.LockExclusive(s);
  if (!lock.owns_lock()) return false;
  // Pop BEFORE loading the snapshot: every popped offer was stamped from
  // a snapshot published before its push, and push happens-before pop, so
  // the snapshot loaded here covers every popped watermark — and is never
  // older than the shard watermark (a shard only advances to a published
  // snapshot's watermark).
  std::vector<PendingMaintenance> batches = pending_[s]->DrainAll();
  // seq_cst pairs with the epoch slot scan: either the publisher's slot
  // scan saw our pin (no reclamation until we unpin), or this load is
  // ordered after the publish and returns the successor.
  const EngineSnapshot* snap = snapshot_.load(std::memory_order_seq_cst);
  if (cache_.shard(s).watermark() != snap->watermark) {
    // Fast-forward a lagging shard (the mutator publishes before it
    // reconciles; drains help) so offers validate against a store whose
    // validity state matches the reference watermark.
    ReconcileShardLocked(s, *snap, nullptr);
  }
  const DrainEnv env{snap->watermark, &snap->live, snap};
  ApplyBatchesLocked(s, batches, env);
  if (extra != nullptr) {
    ApplyBatchesLocked(s, std::span<PendingMaintenance>(extra, 1), env);
  }
  return true;
}

void GraphCachePlus::DrainAllShardsLocked() {
  for (std::size_t s = 0; s < pending_.size(); ++s) {
    DrainShardLocked(s, DrainEnv{watermark_, nullptr, nullptr});
  }
}

void GraphCachePlus::MaintenanceDrainPass() {
  bool drained = false;
  std::int64_t drain_ns = 0;
  {
    ScopedTimer timer(&drain_ns);
    if (options_.epoch_reads) {
      // Epoch path: per-shard drains pin their own epoch; no engine lock.
      for (std::size_t s = 0; s < pending_.size(); ++s) {
        if (!pending_[s]->empty()) {
          drained |= DrainShard(s, /*try_lock=*/false);
        }
      }
    } else {
      std::shared_lock<std::shared_mutex> engine_read(mu_);
      for (std::size_t s = 0; s < pending_.size(); ++s) {
        if (!pending_[s]->empty()) {
          drained |= DrainShard(s, /*try_lock=*/false);
        }
      }
    }
  }
  if (drained) {
    // Drains run on the dedicated thread still count as maintenance
    // overhead — deferral moves the cost off the query, not off the books.
    std::lock_guard<std::mutex> agg_lock(agg_mu_);
    aggregate_.t_maintenance_ns += drain_ns;
  }
  // Background durability rides the drain loop; its cost is accounted in
  // t_checkpoint_ns, not maintenance time.
  MaybeBackgroundCheckpoint();
}

void GraphCachePlus::ReconcileShardLocked(std::size_t s,
                                          const EngineSnapshot& snap,
                                          std::size_t* retro_budget) {
  CacheManager& shard = cache_.shard(s);
  const LogSeq from = shard.watermark();
  if (from == snap.watermark) return;
  if (options_.model == CacheModel::kEvi) {
    // EVI: any dataset change purges — shard-locally here.
    shard.PurgeForReconcile();
  } else {
    const std::vector<ChangeRecord> records =
        snap.RecordsBetween(from, snap.watermark);
    const ChangeCounters counters = LogAnalyzer::Analyze(records);
    CacheValidator::DeltaRevalidateFn delta_fn;
    const CacheValidator::DeltaRevalidateFn* delta = nullptr;
    if (options_.delta_revalidation) {
      delta_fn = MakeDeltaRevalidator(
          records,
          [&snap](GraphId id) -> const Graph* {
            return id < snap.live.size() && snap.live.Test(id) &&
                           snap.graphs[id] != nullptr
                       ? &snap.graph(id)
                       : nullptr;
          },
          [&snap](GraphId id) -> const GraphFeatures* {
            if (!snap.has_ftv || snap.ftv_summaries == nullptr ||
                id >= snap.ftv_summaries->size()) {
              return nullptr;
            }
            const auto& slot = (*snap.ftv_summaries)[id];
            return slot.has_value() ? &*slot : nullptr;
          });
      delta = &delta_fn;
    }
    ValidateShardStore(shard, counters, snap.id_horizon, delta);
    if (retro_budget != nullptr && *retro_budget > 0) {
      RetrospectiveRefreshShard(s, snap.live, retro_budget);
    }
  }
  shard.set_watermark(snap.watermark);
}

void GraphCachePlus::ValidateShardStore(
    CacheManager& shard, const ChangeCounters& counters,
    std::size_t id_horizon, const CacheValidator::DeltaRevalidateFn* delta) {
  if (options_.use_relevance_index) {
    shard.ValidateRelevant(counters, id_horizon, delta);
  } else {
    shard.ValidateAll(counters, id_horizon, delta);
  }
}

CacheValidator::DeltaRevalidateFn GraphCachePlus::MakeDeltaRevalidator(
    const std::vector<ChangeRecord>& records,
    std::function<const Graph*(GraphId)> graph_of,
    std::function<const GraphFeatures*(GraphId)> summary_of) const {
  // One pass over the batch up front; the per-pair hook is then mask
  // tests plus (rarely) one containment check.
  ChangeBatchFootprint footprint =
      LogAnalyzer::PairFootprint(records, graph_of);
  const SubgraphMatcher& verifier = method_m_.matcher();
  return [footprint = std::move(footprint), graph_of = std::move(graph_of),
          summary_of = std::move(summary_of), &verifier](
             CachedQuery& e, GraphId graph_id,
             StatisticsManager& stats) -> bool {
    const bool super = e.kind == CachedQueryKind::kSupergraph;
    if (!super) {
      // Pair screen (sub entries only): a positive bit (query ⊆ G) can
      // only break when an edge whose label pair the query uses was
      // REMOVED; a negative bit only when such a pair was ADDED. If the
      // batch's per-graph delta is exact, non-structural and disjoint
      // from the query's pair mask, the old bit provably still holds.
      const GraphChangeDelta* d = footprint.Find(graph_id);
      if (d != nullptr && d->pairs_exact && !d->structural) {
        const std::uint64_t breaking = e.answer.Test(graph_id)
                                           ? d->removed_pair_mask
                                           : d->added_pair_mask;
        if ((breaking & EdgeLabelPairMaskOf(e.features)) == 0) {
          ++stats.delta_revalidations;
          return true;  // keep the bit as-is
        }
      }
    }
    // Fallback: re-verify the pair against the batch-target graph state
    // (exact — labels are immutable and ids never reused, so the target
    // state is the state every surviving record left the graph in).
    const Graph* g = graph_of(graph_id);
    if (g == nullptr) return false;  // dead at target — plain clear
    bool contained;
    const GraphFeatures* summary =
        summary_of != nullptr ? summary_of(graph_id) : nullptr;
    if (summary != nullptr &&
        (super ? !summary->CouldBeSubgraphOf(e.features)
               : !e.features.CouldBeSubgraphOf(*summary))) {
      contained = false;  // feature prescreen: containment impossible
    } else {
      contained = super ? verifier.Contains(*g, *e.query)
                        : verifier.Contains(*e.query, *g);
    }
    e.answer.Set(graph_id, contained);
    e.valid.Set(graph_id, true);
    ++stats.delta_fallback_full_checks;
    return true;
  };
}

void GraphCachePlus::PublishAndReconcile(QueryMetrics* metrics) {
  // mutation_mu_ held: we are the only publisher; the log cannot move.
  const EngineSnapshot* prev = snapshot_.load(std::memory_order_seq_cst);
  const bool log_moved = dataset_->log().LatestSeq() != prev->watermark;
  const bool ftv_lag = ftv_ != nullptr && !ftv_->InSync();
  if (!log_moved && !ftv_lag) return;

  if (ftv_lag) {
    std::int64_t unused_ns = 0;
    ScopedTimer timer(metrics != nullptr ? &metrics->t_index_ns : &unused_ns);
    ftv_->SyncWithDataset();
  }
  std::vector<ChangeRecord> records =
      dataset_->log().ExtractSince(prev->watermark);
  const EngineSnapshot* next =
      EngineSnapshot::Next(*prev, *dataset_, ftv_.get(), std::move(records))
          .release();
  snapshot_.store(next, std::memory_order_seq_cst);
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);

  // Shard-by-shard reconciliation under per-shard exclusive locks: drain
  // the shard's pending batches at its OLD watermark first (they were
  // prepared against the old snapshot — mirrors the lock path's
  // drain-before-sync), then purge (EVI) / validate + retrospective
  // refresh (CON) and advance the shard watermark. Readers of other
  // shards — and of this shard, on the old snapshot — are never stalled.
  std::int64_t unused_ns = 0;
  ScopedTimer timer(metrics != nullptr && log_moved
                        ? &metrics->t_validate_ns
                        : &unused_ns);
  std::size_t retro_budget =
      options_.model == CacheModel::kCon ? options_.retrospective_budget : 0;
  for (std::size_t s = 0; s < cache_.num_shards(); ++s) {
    ShardedCache::DrainScope scope(s);
    auto lock = cache_.LockExclusive(s);
    // Reconcile first, then drain at the new watermark: pre-publish
    // offers take the stale forward-validation path, offers from readers
    // already on `next` admit plainly. (Serially the queue is empty here
    // — the pre-mutation settle drains ran — so this matches the lock
    // path's drain-before-validate order bit-exactly.)
    ReconcileShardLocked(s, *next,
                         retro_budget > 0 ? &retro_budget : nullptr);
    DrainShardLocked(s, DrainEnv{next->watermark, &next->live, next});
  }
  watermark_ = next->watermark;
  epochs_.Retire(prev);
  epochs_.Collect();
}

void GraphCachePlus::ApplyDatasetChanges(
    const std::function<void(GraphDataset&)>& fn) {
  if (!options_.epoch_reads) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Stop-the-world barrier: every shard lock, so no drain or discovery
    // is in flight anywhere while the dataset mutates.
    const auto shard_locks = cache_.LockAllExclusive();
    DrainAllShardsLocked();
    fn(*dataset_);
    return;
  }
  std::lock_guard<std::mutex> lock(mutation_mu_);
  // Settle pending maintenance at the pre-change watermark (mirrors the
  // lock path's drain-before-mutation), one shard at a time — readers
  // keep flowing.
  for (std::size_t s = 0; s < pending_.size(); ++s) {
    if (!pending_[s]->empty()) DrainShard(s, /*try_lock=*/false);
  }
  fn(*dataset_);
  PublishAndReconcile(nullptr);
}

void GraphCachePlus::FlushMaintenance() {
  std::int64_t drain_ns = 0;
  if (!options_.epoch_reads) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    ScopedTimer timer(&drain_ns);
    const auto shard_locks = cache_.LockAllExclusive();
    DrainAllShardsLocked();
  } else {
    std::lock_guard<std::mutex> lock(mutation_mu_);
    ScopedTimer timer(&drain_ns);
    for (std::size_t s = 0; s < pending_.size(); ++s) {
      DrainShard(s, /*try_lock=*/false);
    }
    epochs_.Collect();
  }
  // Attribute the quiescing drain to maintenance overhead so end-of-run
  // flushes (e.g. the runner's) don't make deferral look free.
  std::lock_guard<std::mutex> agg_lock(agg_mu_);
  aggregate_.t_maintenance_ns += drain_ns;
}

void GraphCachePlus::ResetAggregate() {
  std::lock_guard<std::mutex> lock(agg_mu_);
  aggregate_ = AggregateMetrics();
}

AggregateMetrics GraphCachePlus::AggregateSnapshot() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return aggregate_;
}

StatisticsManager GraphCachePlus::CacheStatsSnapshot() const {
  StatisticsManager stats;
  if (!options_.epoch_reads) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto shard_locks = cache_.LockAllShared();
    stats = cache_.AggregateStats();
  } else {
    // Shard locks alone give a consistent per-shard view; the engine lock
    // guards nothing the stores need on the epoch path.
    const auto shard_locks = cache_.LockAllShared();
    stats = cache_.AggregateStats();
  }
  stats.snapshots_published =
      snapshots_published_.load(std::memory_order_relaxed);
  stats.epochs_retired = epochs_.advances();
  stats.read_phase_engine_lock_acquisitions =
      engine_lock_acquisitions_.load(std::memory_order_relaxed);
  stats.snapshot_summary_copies = ftv_ ? ftv_->summary_copies() : 0;
  stats.shard_lock_graph_copies = discovery_.shard_lock_graph_copies();
  // Durability counters are engine-level (per-shard stores report 0 for
  // all but restored_entries, which AggregateStats already summed).
  stats.checkpoints_written =
      checkpoints_written_.load(std::memory_order_relaxed);
  stats.checkpoints_failed =
      checkpoints_failed_.load(std::memory_order_relaxed);
  stats.checkpoints_retried =
      checkpoints_retried_.load(std::memory_order_relaxed);
  stats.checkpoint_bytes = checkpoint_bytes_.load(std::memory_order_relaxed);
  stats.t_checkpoint_ns = t_checkpoint_ns_.load(std::memory_order_relaxed);
  stats.warm_restarts = warm_restarts_.load(std::memory_order_relaxed);
  stats.warm_restart_rejected =
      warm_restart_rejected_.load(std::memory_order_relaxed);
  // Overload counters are engine-level too; tier transitions live in the
  // pressure monitor.
  stats.admission_offers_shed =
      admission_offers_shed_.load(std::memory_order_relaxed);
  stats.backpressure_inline_drains =
      backpressure_inline_drains_.load(std::memory_order_relaxed);
  stats.pressure_bypassed_queries =
      pressure_bypassed_queries_.load(std::memory_order_relaxed);
  if (pressure_ != nullptr) {
    stats.pressure_elevated_transitions = pressure_->elevated_transitions();
    stats.pressure_critical_transitions = pressure_->critical_transitions();
  }
  return stats;
}

Result<CacheSnapshot> GraphCachePlus::ExportSnapshot() const {
  // The export allocates copies of every resident entry — the injector
  // consult models that allocation failing before anything is copied.
  if (AllocationFaultFires(AllocSite::kSnapshotExport, 0)) {
    return Status::ResourceExhausted("snapshot export allocation failed");
  }
  CacheSnapshot snapshot;
  if (!options_.epoch_reads) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto shard_locks = cache_.LockAllShared();
    snapshot.watermark = watermark_;
    snapshot.id_horizon = dataset_->IdHorizon();
    snapshot.entries = cache_.ExportEntries();
    snapshot.fragments = cache_.ExportFragments();
    return snapshot;
  }
  // Epoch path: exclude publishes (mutation_mu_), then all shard locks
  // shared give a consistent export at the current snapshot's watermark.
  std::lock_guard<std::mutex> lock(
      const_cast<GraphCachePlus*>(this)->mutation_mu_);
  const EngineSnapshot* snap = snapshot_.load(std::memory_order_acquire);
  const auto shard_locks = cache_.LockAllShared();
  snapshot.watermark = snap->watermark;
  snapshot.id_horizon = snap->id_horizon;
  snapshot.entries = cache_.ExportEntries();
  snapshot.fragments = cache_.ExportFragments();
  return snapshot;
}

Status GraphCachePlus::SaveCache(const std::string& path) const {
  Result<CacheSnapshot> snapshot = ExportSnapshot();
  if (!snapshot.ok()) return snapshot.status();
  return WriteCacheSnapshotToFile(path, std::move(snapshot).value());
}

Status GraphCachePlus::LoadCache(const std::string& path) {
  auto snapshot = ReadCacheSnapshotFromFile(path);
  if (!snapshot.ok()) return snapshot.status();
  return ApplySnapshot(std::move(snapshot).value());
}

Status GraphCachePlus::ApplySnapshot(CacheSnapshot snapshot) {
  CacheSnapshot& s = snapshot;
  auto validate = [this, &s]() -> Status {
    if (s.watermark > dataset_->log().LatestSeq()) {
      return Status::FailedPrecondition(
          "snapshot watermark is ahead of the dataset change log — not the "
          "same dataset lineage");
    }
    if (s.id_horizon > dataset_->IdHorizon()) {
      return Status::FailedPrecondition(
          "snapshot horizon exceeds the dataset's id horizon");
    }
    for (const CachedQuery& e : s.entries) {
      if (e.valid.size() != s.id_horizon || e.answer.size() != s.id_horizon) {
        return Status::Corruption("snapshot entry width != snapshot horizon");
      }
    }
    for (const CachedQuery& e : s.fragments) {
      if (e.valid.size() != s.id_horizon || e.answer.size() != s.id_horizon) {
        return Status::Corruption(
            "snapshot fragment width != snapshot horizon");
      }
    }
    return Status::OK();
  };
  if (!options_.epoch_reads) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (Status st = validate(); !st.ok()) return st;
    const auto shard_locks = cache_.LockAllExclusive();
    // Settle queued maintenance before the restore wipes the stores it
    // refers to (stale credits would silently no-op; admissions from the
    // pre-restore cache would duplicate restored entries).
    DrainAllShardsLocked();
    cache_.RestoreEntries(std::move(s.entries));
    // After RestoreEntries — each shard's restore clears its fragment
    // store along with everything else.
    cache_.RestoreFragments(std::move(s.fragments));
    // Resume from the snapshot's watermark: the next query's sync replays
    // the incremental suffix, re-establishing consistency.
    watermark_ = s.watermark;
    for (std::size_t sh = 0; sh < cache_.num_shards(); ++sh) {
      cache_.shard(sh).set_watermark(watermark_);
    }
    return Status::OK();
  }
  // Epoch path: restore shard-by-shard at the file's watermark, then
  // reconcile each shard straight up to the current snapshot (the epoch
  // engine has no "sync on next query" — shards are only readable at the
  // snapshot watermark).
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (Status st = validate(); !st.ok()) return st;
  EpochManager::Guard guard = epochs_.Pin();
  const EngineSnapshot* snap = snapshot_.load(std::memory_order_seq_cst);
  std::vector<std::vector<CachedQuery>> routed(cache_.num_shards());
  for (CachedQuery& e : s.entries) {
    routed[cache_.ShardOfDigest(e.digest)].push_back(std::move(e));
  }
  std::vector<std::vector<CachedQuery>> frag_routed(cache_.num_shards());
  for (CachedQuery& e : s.fragments) {
    frag_routed[cache_.ShardOfDigest(e.digest)].push_back(std::move(e));
  }
  for (std::size_t sh = 0; sh < cache_.num_shards(); ++sh) {
    ShardedCache::DrainScope scope(sh);
    auto shard_lock = cache_.LockExclusive(sh);
    CacheManager& shard = cache_.shard(sh);
    DrainShardLocked(sh, DrainEnv{shard.watermark(), &snap->live, snap});
    shard.RestoreEntries(std::move(routed[sh]));
    // After RestoreEntries, whose Clear() wipes the fragment store too.
    shard.RestoreFragments(std::move(frag_routed[sh]));
    shard.set_watermark(s.watermark);
    ReconcileShardLocked(sh, *snap, nullptr);
  }
  return Status::OK();
}

std::uint64_t GraphCachePlus::NextCheckpointSeqLocked() {
  if (checkpoint_seq_ == 0) {
    const std::vector<std::uint64_t> seqs =
        ListCheckpointSeqs(options_.checkpoint_dir);
    if (!seqs.empty()) checkpoint_seq_ = seqs.front();
  }
  return ++checkpoint_seq_;
}

Status GraphCachePlus::CheckpointNow() {
  if (options_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition(
        "checkpointing requires options.checkpoint_dir");
  }
  std::int64_t ns = 0;
  std::uint64_t bytes = 0;
  Status st;
  {
    ScopedTimer timer(&ns);
    // Export first (engine/shard locks, no I/O), then write under
    // checkpoint_mu_ alone (I/O, no engine state locked) — a slow disk
    // never extends any lock hold. A refused export (injected allocation
    // failure) fails the attempt like any I/O error would.
    Result<CacheSnapshot> exported = ExportSnapshot();
    st = exported.status();
    if (st.ok()) {
      const CacheSnapshot snapshot = std::move(exported).value();
      std::lock_guard<std::mutex> lock(checkpoint_mu_);
      st = EnsureDirectory(options_.checkpoint_dir);
      if (st.ok()) {
        const std::string path = options_.checkpoint_dir + "/" +
                                 CheckpointFileName(NextCheckpointSeqLocked());
        st = WriteCheckpointFile(path, snapshot,
                                 options_.checkpoint_fault_injector, &bytes);
      }
      if (st.ok()) {
        // Best-effort prune: an unremovable stale sibling must not fail
        // the checkpoint that just committed.
        PruneCheckpoints(options_.checkpoint_dir,
                         std::max<std::size_t>(1, options_.checkpoint_keep));
      }
    }
  }
  t_checkpoint_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                             std::memory_order_relaxed);
  if (!st.ok()) {
    checkpoints_failed_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return Status::OK();
}

Status GraphCachePlus::WarmRestart(WarmRestartReport* report) {
  if (options_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition(
        "warm restart requires options.checkpoint_dir");
  }
  WarmRestartReport local;
  // Newest-first degradation ladder. `.tmp` files never appear here —
  // ListCheckpointSeqs only accepts committed names — so a torn tmp from
  // a mid-write crash is invisible by construction.
  for (const std::uint64_t seq : ListCheckpointSeqs(options_.checkpoint_dir)) {
    const std::string path =
        options_.checkpoint_dir + "/" + CheckpointFileName(seq);
    Result<CacheSnapshot> snapshot = ReadCheckpointFile(path);
    Status st = snapshot.status();
    std::size_t file_entries = 0;
    LogSeq file_watermark = 0;
    if (snapshot.ok()) {
      file_entries = snapshot.value().entries.size();
      file_watermark = snapshot.value().watermark;
      st = ApplySnapshot(std::move(snapshot).value());
    }
    if (st.ok()) {
      local.warm = true;
      local.path = path;
      local.entries = file_entries;
      local.watermark = file_watermark;
      warm_restarts_.fetch_add(1, std::memory_order_relaxed);
      if (report != nullptr) *report = std::move(local);
      return Status::OK();
    }
    // Corrupt, truncated, torn, or wrong lineage: reject this sibling and
    // degrade to the next-older one. ApplySnapshot validates before it
    // mutates, so a rejected file leaves the stores untouched.
    ++local.rejected;
    warm_restart_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  // Cold start: no survivor. Not an error — the engine runs with what it
  // has (empty stores at process start).
  if (report != nullptr) *report = std::move(local);
  return Status::OK();
}

void GraphCachePlus::MaybeBackgroundCheckpoint() {
  if (options_.checkpoint_dir.empty() ||
      options_.checkpoint_interval_us == 0) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  if (!checkpoint_clock_armed_) {
    // First pass arms the clock; the first checkpoint lands one full
    // interval later, not at startup when the cache is still cold.
    checkpoint_clock_armed_ = true;
    last_checkpoint_attempt_ = now;
    return;
  }
  const auto due = std::chrono::microseconds(options_.checkpoint_interval_us) *
                   checkpoint_backoff_;
  if (now - last_checkpoint_attempt_ < due) return;
  last_checkpoint_attempt_ = now;
  if (checkpoint_recovering_) {
    checkpoints_retried_.fetch_add(1, std::memory_order_relaxed);
  }
  if (CheckpointNow().ok()) {
    checkpoint_backoff_ = 1;
    checkpoint_recovering_ = false;
  } else {
    checkpoint_recovering_ = true;
    checkpoint_backoff_ = std::min<std::uint32_t>(checkpoint_backoff_ * 2, 64);
  }
}

void GraphCachePlus::RetrospectiveRefreshShard(std::size_t s,
                                               const DynamicBitset& live,
                                               std::size_t* budget) {
  // The paper's §8 future-work optimisation: re-verify invalidated
  // (cached query, live graph) pairs against the current dataset so the
  // relation becomes known (and valid) again. Most-beneficial entries
  // first; cost is bounded by the remaining budget.
  const SubgraphMatcher& verifier = method_m_.matcher();
  CacheManager& shard = cache_.shard(s);
  for (const CacheEntryId id : shard.ResidentIdsByBenefit()) {
    if (*budget == 0) return;
    CachedQuery* e = shard.FindMutable(id);
    if (e == nullptr || e->valid.size() != live.size()) continue;
    // Unknown pairs: live graphs whose validity bit is off.
    DynamicBitset unknown = DynamicBitset::Not(e->valid);
    unknown.AndWith(live);
    bool restored_any = false;
    for (std::size_t i = unknown.FindFirst();
         i != DynamicBitset::npos && *budget > 0;
         i = unknown.FindNext(i + 1)) {
      const Graph& g = dataset_->graph(static_cast<GraphId>(i));
      const bool contained = e->kind == CachedQueryKind::kSubgraph
                                 ? verifier.Contains(*e->query, g)
                                 : verifier.Contains(g, *e->query);
      e->answer.Set(i, contained);
      e->valid.Set(i, true);
      restored_any = true;
      --*budget;
      ++shard.stats().total_retro_refreshes;
    }
    // Bits were SET outside the validator — re-widen the entry's
    // relevance footprint so it stays a superset of the valid words.
    if (restored_any) shard.RefreshRelevanceFootprint(id);
  }
}

void GraphCachePlus::ExecuteReadSlice(
    const Graph& g, QueryKind kind, const DynamicBitset& csm,
    const EngineSnapshot* snap, LogSeq watermark, std::size_t id_horizon,
    QueryMetrics& m, Deferred& deferred, DynamicBitset& answer_bits,
    bool& had_exact) {
  auto batch_for = [&](std::size_t s) -> PendingMaintenance& {
    for (auto& [shard, batch] : deferred) {
      if (shard == s) return batch;
    }
    deferred.emplace_back(s, PendingMaintenance{});
    deferred.back().second.query_id = m.query_id;
    return deferred.back().second;
  };

  m.candidates_initial = csm.Count();

  // --- Pressure gate: the tier is sampled ONCE per read slice so one
  // query sees one consistent degradation level. ELEVATED sheds this
  // query's admission offers (whole-query and fragment — counted, never
  // queued); CRITICAL additionally disables the fragment tier and skips
  // hit discovery entirely, serving the miss straight through uncached
  // Method M. Every shed path is pruning/transfer-only, so answers stay
  // bit-exact by construction.
  const PressureTier tier =
      pressure_ == nullptr ? PressureTier::kNormal : pressure_->tier();
  const bool shed_offers = tier != PressureTier::kNormal;
  const bool bypass_cache = tier == PressureTier::kCritical;
  if (bypass_cache) {
    pressure_bypassed_queries_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Sub-pattern fragment tier, part 1: decompose the query into its
  // canonical one-hop stars once. Subgraph queries only — star ⊆ g means
  // g ⊆ G forces star ⊆ G, so a fragment's valid non-answers exclude
  // candidates; supergraph queries have no such transfer. Gated with
  // admission: a pass-through engine must not learn fragments either.
  std::vector<Fragment> fragments;
  if (options_.use_fragment_cache && options_.enable_admission &&
      options_.fragment_capacity > 0 && kind == QueryKind::kSubgraph &&
      !bypass_cache) {
    fragments = DecomposeToFragments(g, options_.max_fragments_per_query);
  }
  std::vector<DynamicBitset> fragment_masks(fragments.size());
  std::vector<char> fragment_resident(fragments.size(), 0);

  // --- Shard-local hit discovery: one shared shard lock at a time, held
  // only for that shard's prescreen; survivors are copied out, so the
  // merge, the utility ordering, containment verification, pruning and
  // Method M verification all run with NO shard lock held. A drain
  // (shard-exclusive) therefore overlaps everything but the one-shard
  // prescreen it contends with.
  Stopwatch probe_watch;
  DiscoveredHits hits;
  if (!bypass_cache) {
    const GraphFeatures features = GraphFeatures::Extract(g);
    std::vector<HitDiscovery::Candidate> pool;
    for (std::size_t s = 0; s < cache_.num_shards(); ++s) {
      const auto shard_lock = cache_.LockShared(s);
      if (snap != nullptr &&
          cache_.shard(s).watermark() != snap->watermark) {
        // Epoch path: this shard's validity state is at a different
        // dataset version than our snapshot (a mutation is mid-
        // reconciliation, or our snapshot is already superseded). Its
        // knowledge cannot be mixed into this answer — skip it; hits are
        // an optimization, exactness never depends on them.
        continue;
      }
      discovery_.CollectShard(g, features, kind, cache_.shard(s), csm, &pool,
                              &m);
      // Fragment probe rides the same shard lock (and the same epoch
      // lag-skip: a lagging shard's fragment bits describe an older
      // dataset version, so using them could prune a graph that since
      // became an answer). Masks are copied out; intersection runs later
      // with no lock held.
      for (std::size_t i = 0; i < fragments.size(); ++i) {
        if (cache_.ShardOfDigest(fragments[i].digest) != s) continue;
        const CachedQuery* e = cache_.shard(s).fragments().Probe(
            fragments[i].digest, fragments[i].star);
        // A fragment not yet extended to this horizon contributes
        // nothing this query (pruning is optional, never required).
        if (e == nullptr || e->valid.size() != csm.size()) continue;
        fragment_masks[i] = e->ValidNonAnswer();
        fragment_resident[i] = 1;
        ++m.fragment_hits;
      }
    }
    hits = discovery_.ResolveHits(g, kind, std::move(pool), csm, &m);
  }
  m.t_probe_ns = probe_watch.ElapsedNanos();

  // --- Candidate-set pruning (formulas (1)-(5), §6.3 shortcuts). --------
  Stopwatch prune_watch;
  PruneOutcome pruned = CandidateSetPruner::Prune(hits, csm, &m);
  m.t_prune_ns = prune_watch.ElapsedNanos();

  // --- Sub-pattern fragment tier, part 2: between whole-query pruning
  // and Method M. Each resident fragment's valid non-answer mask AND-NOTs
  // straight out of the candidate set; each missing fragment is computed
  // over CS_M here (it prunes this query too, and becomes an offer for
  // the next). Only `pruned.candidates` is touched — answers, whole-query
  // credits and the admission offer below never see fragment state, so
  // the --fragments=off oracle stays bit-exact on everything but
  // si_tests/candidates_final (the win being measured).
  if (!fragments.empty() && !pruned.direct) {
    Stopwatch fragment_watch;
    for (std::size_t i = 0; i < fragments.size(); ++i) {
      DynamicBitset computed;
      if (!fragment_resident[i]) {
        // Miss: verify the star against every CS_M member. Stars are
        // tiny; the prepared path reuses the vertex order across targets.
        const auto prepared = internal_matcher_->Prepare(fragments[i].star);
        DynamicBitset star_answer(csm.size());
        for (std::size_t id = csm.FindFirst(); id != DynamicBitset::npos;
             id = csm.FindNext(id + 1)) {
          const Graph& target =
              snap != nullptr ? snap->graph(static_cast<GraphId>(id))
                              : dataset_->graph(static_cast<GraphId>(id));
          if (internal_matcher_->ContainsPrepared(*prepared, target)) {
            star_answer.Set(id);
          }
        }
        ++m.fragment_computed;
        computed = DynamicBitset::AndNot(csm, star_answer);
        if (shed_offers) {
          // ELEVATED: the freshly computed knowledge still prunes THIS
          // query (below), but is not offered to the store.
          admission_offers_shed_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // The fresh knowledge covers exactly the candidates checked:
          // valid = CS_M, stamped with the watermark it was computed at.
          AdmissionOffer offer;
          offer.entry = CacheManager::PrepareEntry(
              std::make_shared<const Graph>(fragments[i].star),
              CachedQueryKind::kSubgraph, std::move(star_answer),
              DynamicBitset(csm),
              StatisticsManager::StructuralCostEstimateMs(fragments[i].star));
          offer.observed_watermark = watermark;
          batch_for(cache_.ShardOfDigest(fragments[i].digest))
              .fragment_offers.push_back(std::move(offer));
        }
      }
      const DynamicBitset& mask =
          fragment_resident[i] ? fragment_masks[i] : computed;
      if (mask.size() != pruned.candidates.size()) continue;
      const std::uint64_t removed = mask.CountAnd(pruned.candidates);
      pruned.candidates.AndNotWith(mask);
      ++m.fragment_intersections;
      m.fragment_candidates_pruned += removed;
      if (fragment_resident[i]) {
        batch_for(cache_.ShardOfDigest(fragments[i].digest))
            .fragment_credits.push_back({fragments[i].digest, removed});
      }
    }
    // candidates_final reports what Method M actually verifies.
    m.candidates_final = pruned.candidates.Count();
    m.t_fragment_ns = fragment_watch.ElapsedNanos();
  }

  // --- Statistics Manager: defer credits for contributing entries,
  // routed to each entry's home shard. ----------------------------------
  had_exact = hits.exact.has_value();
  if (hits.exact.has_value()) {
    // An exact hit short-circuits the query (pruned.direct below), so
    // Method M never runs and the hit is zero-test by construction —
    // recorded explicitly rather than via m.si_tests, which is only
    // written by the (skipped) verification step.
    batch_for(cache_.ShardOfDigest(hits.exact->digest))
        .credits.push_back({hits.exact->id, HitKind::kExact,
                            pruned.saved_positive,
                            /*zero_test_exact=*/true});
  }
  if (hits.empty_proof.has_value()) {
    batch_for(cache_.ShardOfDigest(hits.empty_proof->digest))
        .credits.push_back({hits.empty_proof->id, HitKind::kEmptyProof,
                            pruned.saved_pruning, false});
  }
  for (const DiscoveredHit& hit : hits.positive) {
    const std::uint64_t standalone =
        DynamicBitset::And(hit.valid, hit.answer).CountAnd(csm);
    batch_for(cache_.ShardOfDigest(hit.digest))
        .credits.push_back({hit.id, HitKind::kSub, standalone, false});
  }
  for (const DiscoveredHit& hit : hits.pruning) {
    const std::uint64_t standalone =
        DynamicBitset::AndNot(hit.valid, hit.answer).CountAnd(csm);
    batch_for(cache_.ShardOfDigest(hit.digest))
        .credits.push_back({hit.id, HitKind::kSuper, standalone, false});
  }

  // --- Method M verification on the reduced candidate set. --------------
  Stopwatch verify_watch;
  if (pruned.direct) {
    answer_bits = pruned.answer_direct;
  } else {
    answer_bits =
        snap != nullptr
            ? method_m_.VerifyCandidatesOn(*snap, g, kind, pruned.candidates,
                                           &m.si_tests)
            : method_m_.VerifyCandidates(g, kind, pruned.candidates,
                                         &m.si_tests);
    // Formula (3): verified graphs plus direct transfers.
    answer_bits.OrWith(pruned.answer_direct);
  }
  m.t_verify_ns = verify_watch.ElapsedNanos();
  m.answer_size = answer_bits.Count();

  // --- Cache Manager: defer the admission offer, stamped with the
  // watermark the answer snapshot is consistent with and routed to the
  // query digest's home shard. Exact hits carry no new knowledge — the
  // isomorphic entry is already resident. ------------------------------
  if (options_.enable_admission && !had_exact && shed_offers) {
    // ELEVATED/CRITICAL: the answer was produced normally, but the store
    // is not offered the new entry — no queue traffic, no bytes.
    admission_offers_shed_.fetch_add(1, std::memory_order_relaxed);
  } else if (options_.enable_admission && !had_exact) {
    // Entry preparation is admission work executed early (off any
    // exclusive lock), so it bills to maintenance, not query time.
    ScopedTimer timer(&m.t_maintenance_ns);
    AdmissionOffer offer;
    // C is a *structural* estimate (after [25]), deliberately not a wall
    // time: the paper's Figure 5 premise — "whatever SI method being the
    // Method M, GC+ results exactly the same pruned candidate set" —
    // requires every cache decision (incl. PINC/HD scoring) to be
    // method-independent.
    DynamicBitset valid(id_horizon);
    valid.SetAll();
    // One copy of g into shared storage (the caller keeps the original);
    // from here on the admission path only moves the pointer.
    offer.entry = CacheManager::PrepareEntry(
        std::make_shared<const Graph>(g),
        kind == QueryKind::kSubgraph ? CachedQueryKind::kSubgraph
                                     : CachedQueryKind::kSupergraph,
        answer_bits, std::move(valid),
        StatisticsManager::StructuralCostEstimateMs(g));
    offer.observed_watermark = watermark;
    const std::size_t home = cache_.ShardOfDigest(offer.entry->digest);
    batch_for(home).offer = std::move(offer);
  }
}

void GraphCachePlus::ReadPhaseLocked(const Graph& g, QueryKind kind,
                                     QueryMetrics& m, Deferred& deferred,
                                     DynamicBitset& answer_bits,
                                     bool& had_exact) {
  // ===== Read phase (engine shared lock) =================================
  std::shared_lock<std::shared_mutex> read_lock(mu_);
  engine_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);

  // --- Dataset Manager: reconcile dataset changes with the cache. -------
  // Upgrade to the stop-the-world barrier only when the change log moved
  // past the cache watermark (or the FTV index lags); queued maintenance
  // drains first so deferred admissions are validated like residents.
  // The loop re-checks after the downgrade: another thread may have
  // synced for us, or applied a further change.
  while (NeedsSyncLocked()) {
    read_lock.unlock();
    {
      std::unique_lock<std::shared_mutex> write_lock(mu_);
      engine_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
      const auto shard_locks = cache_.LockAllExclusive();
      DrainAllShardsLocked();
      SyncWithDatasetLocked(&m);
    }
    read_lock.lock();
    engine_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Method M candidate generation: whole live dataset, or the FTV
  // filter when Method M is equipped with the updatable index. -----------
  DynamicBitset csm;
  if (ftv_ != nullptr) {
    ScopedTimer timer(&m.t_index_ns);
    csm = ftv_->CandidateSet(
        GraphFeatures::Extract(g),
        kind == QueryKind::kSubgraph ? FtvQueryDirection::kSubgraph
                                     : FtvQueryDirection::kSupergraph);
  } else {
    csm = dataset_->LiveMask();
  }

  ExecuteReadSlice(g, kind, csm, /*snap=*/nullptr, watermark_,
                   dataset_->IdHorizon(), m, deferred, answer_bits,
                   had_exact);
}  // ===== engine shared lock released =====================================

void GraphCachePlus::ReadPhaseEpoch(const Graph& g, QueryKind kind,
                                    QueryMetrics& m, Deferred& deferred,
                                    DynamicBitset& answer_bits,
                                    bool& had_exact) {
  // ===== Read phase (epoch pin — no engine lock anywhere) ================
  EpochManager::Guard guard;
  const EngineSnapshot* snap = nullptr;
  for (;;) {
    guard = epochs_.Pin();
    snap = snapshot_.load(std::memory_order_seq_cst);
    // Out-of-band serial mutation support: callers that mutate the
    // dataset directly between queries (no ApplyDatasetChanges) leave the
    // snapshot stale. Detect via the log's atomic tail and republish —
    // the epoch-path equivalent of the lock path's sync upgrade, billed
    // to the same validation bucket.
    if (dataset_->log().LatestSeq() == snap->watermark) break;
    // Stale. Either a single-threaded caller mutated the dataset
    // directly (we must republish before reading), or a concurrent
    // ApplyDatasetChanges is mid-publish — then the mutex is held, and
    // reading the still-current snapshot is the linearizable outcome
    // for a query concurrent with that mutation: keep flowing, don't
    // block behind the mutator.
    std::unique_lock<std::mutex> lock(mutation_mu_, std::try_to_lock);
    if (!lock.owns_lock()) break;
    guard.Release();
    PublishAndReconcile(&m);
  }

  DynamicBitset csm;
  if (snap->has_ftv) {
    ScopedTimer timer(&m.t_index_ns);
    csm = FtvIndex::CandidateSetOver(
        *snap->ftv_summaries, snap->live, GraphFeatures::Extract(g),
        kind == QueryKind::kSubgraph ? FtvQueryDirection::kSubgraph
                                     : FtvQueryDirection::kSupergraph);
  } else {
    csm = snap->live;
  }

  ExecuteReadSlice(g, kind, csm, snap, snap->watermark, snap->id_horizon, m,
                   deferred, answer_bits, had_exact);
}  // ===== epoch unpinned on guard destruction =============================

QueryResult GraphCachePlus::Query(const Graph& g, QueryKind kind) {
  QueryResult result;
  QueryMetrics& m = result.metrics;
  m.query_id = query_counter_.fetch_add(1, std::memory_order_relaxed);

  // Deferred mutations, routed per home shard (most queries touch one or
  // two shards; linear probe beats a map at that size).
  Deferred deferred;

  DynamicBitset answer_bits;
  bool had_exact = false;
  if (options_.epoch_reads) {
    ReadPhaseEpoch(g, kind, m, deferred, answer_bits, had_exact);
  } else {
    ReadPhaseLocked(g, kind, m, deferred, answer_bits, had_exact);
  }

  result.answer.reserve(answer_bits.Count());
  answer_bits.ForEachSetBit([&result](std::size_t id) {
    result.answer.push_back(static_cast<GraphId>(id));
  });

  // ===== Maintenance hand-off ============================================
  if (!deferred.empty()) {
    // Lock path: the engine shared lock spans the hand-off exactly as in
    // PR 4. Epoch path: no engine lock — queues are MPSC-safe and drains
    // pin their own epoch.
    std::shared_lock<std::shared_mutex> read_lock(mu_, std::defer_lock);
    if (!options_.epoch_reads) {
      read_lock.lock();
      engine_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    }
    for (auto& [s, batch] : deferred) {
      std::size_t size_after = 0;
      if (pending_[s]->TryPush(std::move(batch), &size_after)) {
        if (pressure_ != nullptr) {
          // Feed the queue channel: depth after a successful push is how
          // far behind the drains are.
          pressure_->NoteQueueDepth(size_after, pending_[s]->capacity());
        }
        if (maintenance_ != nullptr) {
          // Queue-pressure wakeup: don't let a half-full queue wait for
          // the timer. Below the threshold the timer tick picks it up.
          if (size_after * 2 >= pending_[s]->capacity()) {
            maintenance_->Notify();
          }
        } else {
          // Opportunistic per-shard drain: single-threaded callers always
          // win this try_lock, so maintenance lands immediately (serial
          // behavior is unchanged); under contention the batch simply
          // waits for the next drain — the "off the critical path" of
          // paper §4. Only shard s's lock is taken: readers and drains of
          // other shards are never disturbed.
          ScopedTimer timer(&m.t_maintenance_ns);
          DrainShard(s, /*try_lock=*/true);
        }
      } else {
        // Backpressure: shard s's bounded queue is full — drain inline,
        // then apply this query's own rejected batch under the same env.
        backpressure_inline_drains_.fetch_add(1, std::memory_order_relaxed);
        if (pressure_ != nullptr) {
          // A full queue is the strongest queue-pressure signal.
          pressure_->NoteQueueDepth(pending_[s]->capacity(),
                                    pending_[s]->capacity());
        }
        ScopedTimer timer(&m.t_maintenance_ns);
        DrainShard(s, /*try_lock=*/false, &batch);
        if (pressure_ != nullptr) {
          // The inline drain emptied the queue; let the channel recover.
          pressure_->NoteQueueDepth(0, pending_[s]->capacity());
        }
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    aggregate_.Add(m);
  }
  return result;
}

}  // namespace gcp
