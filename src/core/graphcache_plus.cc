#include "core/graphcache_plus.hpp"

#include <algorithm>

#include "cache/cache_validator.hpp"
#include "cache/snapshot.hpp"
#include "cache/statistics.hpp"
#include "common/stopwatch.hpp"
#include "core/pruner.hpp"
#include "dataset/log_analyzer.hpp"
#include "graph/canonical.hpp"

namespace gcp {

std::string_view CacheModelName(CacheModel model) {
  switch (model) {
    case CacheModel::kEvi:
      return "EVI";
    case CacheModel::kCon:
      return "CON";
  }
  return "Unknown";
}

GraphCachePlus::GraphCachePlus(GraphDataset* dataset,
                               GraphCachePlusOptions options)
    : dataset_(dataset),
      options_(options),
      pool_(options.verify_threads > 1
                ? std::make_unique<ThreadPool>(options.verify_threads)
                : nullptr),
      ftv_(options.use_ftv_index ? std::make_unique<FtvIndex>(*dataset)
                                 : nullptr),
      method_m_(options.method_m, *dataset, pool_.get(),
                options.reuse_match_context),
      internal_matcher_(MakeMatcher(options.internal_matcher)),
      discovery_(*internal_matcher_, options_),
      cache_(CacheManagerOptions{options.cache_capacity,
                                 options.window_capacity, options.policy,
                                 options.rng_seed}),
      pending_(options.maintenance_queue_capacity) {}

bool GraphCachePlus::NeedsSyncLocked() const {
  return dataset_->log().HasChangesSince(watermark_) ||
         (ftv_ != nullptr && !ftv_->InSync());
}

void GraphCachePlus::SyncWithDatasetLocked(QueryMetrics* metrics) {
  const ChangeLog& log = dataset_->log();
  if (log.HasChangesSince(watermark_)) {
    ScopedTimer timer(&metrics->t_validate_ns);
    if (options_.model == CacheModel::kEvi) {
      // EVI: the Log Analyzer merely raises the changed flag; the Cache
      // Validator clears the stores indiscriminately (paper §5.1).
      cache_.Clear();
    } else {
      // CON: Algorithm 1 over the incremental records, then Algorithm 2 on
      // every resident entry (paper §5.2).
      const std::vector<ChangeRecord> records = log.ExtractSince(watermark_);
      const ChangeCounters counters = LogAnalyzer::Analyze(records);
      cache_.ValidateAll(counters, dataset_->IdHorizon());
      if (options_.retrospective_budget > 0) {
        RetrospectiveRefresh(options_.retrospective_budget);
      }
    }
    watermark_ = log.LatestSeq();
  }
  if (ftv_ != nullptr && !ftv_->InSync()) {
    ScopedTimer timer(&metrics->t_index_ns);
    ftv_->SyncWithDataset();
  }
}

std::vector<CacheManager::EntryCreditSum> GraphCachePlus::SumCredits(
    std::span<const PendingMaintenance> batches) {
  // One EntryCreditSum per distinct entry, in first-credit order (the
  // order CreditHit calls would have touched them).
  std::vector<CacheManager::EntryCreditSum> sums;
  std::unordered_map<CacheEntryId, std::size_t> slot_of;
  for (const PendingMaintenance& batch : batches) {
    for (const HitCredit& c : batch.credits) {
      const auto [it, inserted] = slot_of.emplace(c.id, sums.size());
      if (inserted) {
        sums.emplace_back();
        sums.back().id = c.id;
      }
      CacheManager::EntryCreditSum& sum = sums[it->second];
      sum.tests_saved += c.tests_saved;
      ++sum.hit_count;
      sum.last_used = batch.query_id;
      switch (c.kind) {
        case HitKind::kExact:
          ++sum.exact;
          if (c.zero_test_exact) ++sum.zero_test_exact;
          break;
        case HitKind::kEmptyProof:
          ++sum.empty_proof;
          break;
        case HitKind::kSub:
          ++sum.sub;
          break;
        case HitKind::kSuper:
          ++sum.super;
          break;
      }
    }
  }
  return sums;
}

void GraphCachePlus::ApplyMaintenanceLocked(PendingMaintenance& batch) {
  if (!batch.offer.has_value()) return;
  AdmissionOffer& offer = *batch.offer;
  const bool stale = offer.observed_watermark != watermark_;
  if (stale && options_.model == CacheModel::kEvi) {
    // EVI keeps no pre-change knowledge: an offer computed before the
    // change the cache already purged for is dropped, exactly as a
    // resident entry would have been.
    return;
  }
  const CacheEntryId id =
      cache_.AdmitPrepared(std::move(offer.entry), batch.query_id);
  if (stale) {
    // CON: forward-validate the snapshot through Algorithms 1 + 2 over
    // exactly the records the cache has already reconciled, so the new
    // entry joins the resident set at the cache watermark. Records past
    // the watermark are left for the next sync (which refreshes every
    // resident entry uniformly).
    std::vector<ChangeRecord> records =
        dataset_->log().ExtractSince(offer.observed_watermark);
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [this](const ChangeRecord& r) {
                                   return r.seq > watermark_;
                                 }),
                  records.end());
    const ChangeCounters counters = LogAnalyzer::Analyze(records);
    CachedQuery* e = cache_.FindMutable(id);
    if (e != nullptr) {
      CacheValidator::RefreshEntry(*e, counters, dataset_->IdHorizon());
    }
  }
}

void GraphCachePlus::DrainMaintenanceLocked() {
  std::vector<PendingMaintenance> batches = pending_.DrainAll();
  if (batches.empty()) return;
  // Benefit credits are summed per entry across the whole drain and
  // applied as one update per entry; a credit can never reference an
  // entry admitted by an offer in the same drain (the entry had to be
  // resident when the crediting query's read phase discovered it), so
  // applying all credits before all offers preserves the per-batch order.
  cache_.CreditHitsBatched(SumCredits(batches));
  for (PendingMaintenance& b : batches) ApplyMaintenanceLocked(b);
  // Replacement runs once per drain, however many admissions landed.
  cache_.MaybeMergeWindow();
}

void GraphCachePlus::ApplyDatasetChanges(
    const std::function<void(GraphDataset&)>& fn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  DrainMaintenanceLocked();
  fn(*dataset_);
}

void GraphCachePlus::FlushMaintenance() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::int64_t drain_ns = 0;
  {
    ScopedTimer timer(&drain_ns);
    DrainMaintenanceLocked();
  }
  // Attribute the quiescing drain to maintenance overhead so end-of-run
  // flushes (e.g. the runner's) don't make deferral look free.
  std::lock_guard<std::mutex> agg_lock(agg_mu_);
  aggregate_.t_maintenance_ns += drain_ns;
}

void GraphCachePlus::ResetAggregate() {
  std::lock_guard<std::mutex> lock(agg_mu_);
  aggregate_ = AggregateMetrics();
}

AggregateMetrics GraphCachePlus::AggregateSnapshot() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return aggregate_;
}

Status GraphCachePlus::SaveCache(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  CacheSnapshot snapshot;
  snapshot.watermark = watermark_;
  snapshot.id_horizon = dataset_->IdHorizon();
  snapshot.entries = cache_.ExportEntries();
  return WriteCacheSnapshotToFile(path, snapshot);
}

Status GraphCachePlus::LoadCache(const std::string& path) {
  auto snapshot = ReadCacheSnapshotFromFile(path);
  if (!snapshot.ok()) return snapshot.status();
  CacheSnapshot& s = snapshot.value();
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (s.watermark > dataset_->log().LatestSeq()) {
    return Status::FailedPrecondition(
        "snapshot watermark is ahead of the dataset change log — not the "
        "same dataset lineage");
  }
  if (s.id_horizon > dataset_->IdHorizon()) {
    return Status::FailedPrecondition(
        "snapshot horizon exceeds the dataset's id horizon");
  }
  for (const CachedQuery& e : s.entries) {
    if (e.valid.size() != s.id_horizon || e.answer.size() != s.id_horizon) {
      return Status::Corruption("snapshot entry width != snapshot horizon");
    }
  }
  // Settle queued maintenance before the restore wipes the stores it
  // refers to (stale credits would silently no-op; admissions from the
  // pre-restore cache would duplicate restored entries).
  DrainMaintenanceLocked();
  cache_.RestoreEntries(std::move(s.entries));
  // Resume from the snapshot's watermark: the next query's sync replays
  // the incremental suffix, re-establishing consistency.
  watermark_ = s.watermark;
  return Status::OK();
}

void GraphCachePlus::RetrospectiveRefresh(std::size_t budget) {
  // The paper's §8 future-work optimisation: re-verify invalidated
  // (cached query, live graph) pairs against the current dataset so the
  // relation becomes known (and valid) again. Most-beneficial entries
  // first; cost is bounded by `budget` sub-iso tests per sync.
  const DynamicBitset live = dataset_->LiveMask();
  const SubgraphMatcher& verifier = method_m_.matcher();
  for (const CacheEntryId id : cache_.ResidentIdsByBenefit()) {
    if (budget == 0) return;
    CachedQuery* e = cache_.FindMutable(id);
    if (e == nullptr || e->valid.size() != live.size()) continue;
    // Unknown pairs: live graphs whose validity bit is off.
    DynamicBitset unknown = DynamicBitset::Not(e->valid);
    unknown.AndWith(live);
    for (std::size_t i = unknown.FindFirst();
         i != DynamicBitset::npos && budget > 0;
         i = unknown.FindNext(i + 1)) {
      const Graph& g = dataset_->graph(static_cast<GraphId>(i));
      const bool contained = e->kind == CachedQueryKind::kSubgraph
                                 ? verifier.Contains(e->query, g)
                                 : verifier.Contains(g, e->query);
      e->answer.Set(i, contained);
      e->valid.Set(i, true);
      --budget;
      ++cache_.stats().total_retro_refreshes;
    }
  }
}

QueryResult GraphCachePlus::Query(const Graph& g, QueryKind kind) {
  QueryResult result;
  QueryMetrics& m = result.metrics;
  m.query_id = query_counter_.fetch_add(1, std::memory_order_relaxed);

  PendingMaintenance pending;
  pending.query_id = m.query_id;

  DynamicBitset answer_bits;
  {
    // ===== Read phase (shared lock) ======================================
    std::shared_lock<std::shared_mutex> read_lock(mu_);

    // --- Dataset Manager: reconcile dataset changes with the cache. ------
    // Upgrade to the exclusive lock only when the change log moved past
    // the cache watermark (or the FTV index lags); queued maintenance
    // drains first so deferred admissions are validated like residents.
    // The loop re-checks after the downgrade: another thread may have
    // synced for us, or applied a further change.
    while (NeedsSyncLocked()) {
      read_lock.unlock();
      {
        std::unique_lock<std::shared_mutex> write_lock(mu_);
        DrainMaintenanceLocked();
        SyncWithDatasetLocked(&m);
      }
      read_lock.lock();
    }

    // --- Method M candidate generation: whole live dataset, or the FTV
    // filter when Method M is equipped with the updatable index. ----------
    DynamicBitset csm;
    if (ftv_ != nullptr) {
      ScopedTimer timer(&m.t_index_ns);
      csm = ftv_->CandidateSet(
          GraphFeatures::Extract(g),
          kind == QueryKind::kSubgraph ? FtvQueryDirection::kSubgraph
                                       : FtvQueryDirection::kSupergraph);
    } else {
      csm = dataset_->LiveMask();
    }
    m.candidates_initial = csm.Count();

    // --- Query Processing Runtime: hit discovery. -------------------------
    Stopwatch probe_watch;
    const DiscoveredHits hits = discovery_.Discover(g, kind, cache_, csm, &m);
    m.t_probe_ns = probe_watch.ElapsedNanos();

    // --- Candidate-set pruning (formulas (1)-(5), §6.3 shortcuts). --------
    Stopwatch prune_watch;
    const PruneOutcome pruned = CandidateSetPruner::Prune(hits, csm, &m);
    m.t_prune_ns = prune_watch.ElapsedNanos();

    // --- Method M verification on the reduced candidate set. --------------
    Stopwatch verify_watch;
    if (pruned.direct) {
      answer_bits = pruned.answer_direct;
    } else {
      answer_bits =
          method_m_.VerifyCandidates(g, kind, pruned.candidates, &m.si_tests);
      // Formula (3): verified graphs plus direct transfers.
      answer_bits.OrWith(pruned.answer_direct);
    }
    m.t_verify_ns = verify_watch.ElapsedNanos();
    m.answer_size = answer_bits.Count();

    // --- Statistics Manager: defer credits for contributing entries. The
    // hit pointers die with the shared lock, so only ids and computed
    // benefits leave the read phase. -------------------------------------
    if (hits.exact != nullptr) {
      pending.credits.push_back({hits.exact->id, HitKind::kExact,
                                 pruned.saved_positive, m.si_tests == 0});
    }
    if (hits.empty_proof != nullptr) {
      pending.credits.push_back({hits.empty_proof->id, HitKind::kEmptyProof,
                                 pruned.saved_pruning, false});
    }
    for (const CachedQuery* hit : hits.positive) {
      const std::uint64_t standalone =
          DynamicBitset::And(hit->valid, hit->answer).CountAnd(csm);
      pending.credits.push_back({hit->id, HitKind::kSub, standalone, false});
    }
    for (const CachedQuery* hit : hits.pruning) {
      const std::uint64_t standalone =
          DynamicBitset::AndNot(hit->valid, hit->answer).CountAnd(csm);
      pending.credits.push_back({hit->id, HitKind::kSuper, standalone, false});
    }

    // --- Cache Manager: defer the admission offer, stamped with the
    // watermark the answer snapshot is consistent with. Exact hits carry
    // no new knowledge — the isomorphic entry is already resident. --------
    if (options_.enable_admission && hits.exact == nullptr) {
      // Entry preparation is admission work executed early (off the
      // exclusive lock), so it bills to maintenance, not query time.
      ScopedTimer timer(&m.t_maintenance_ns);
      AdmissionOffer offer;
      // C is a *structural* estimate (after [25]), deliberately not a wall
      // time: the paper's Figure 5 premise — "whatever SI method being the
      // Method M, GC+ results exactly the same pruned candidate set" —
      // requires every cache decision (incl. PINC/HD scoring) to be
      // method-independent.
      DynamicBitset valid(dataset_->IdHorizon());
      valid.SetAll();
      offer.entry = CacheManager::PrepareEntry(
          g,
          kind == QueryKind::kSubgraph ? CachedQueryKind::kSubgraph
                                       : CachedQueryKind::kSupergraph,
          answer_bits, std::move(valid),
          StatisticsManager::StructuralCostEstimateMs(g));
      offer.observed_watermark = watermark_;
      pending.offer = std::move(offer);
    }
  }  // ===== shared lock released =========================================

  result.answer.reserve(answer_bits.Count());
  answer_bits.ForEachSetBit([&result](std::size_t id) {
    result.answer.push_back(static_cast<GraphId>(id));
  });

  // ===== Maintenance hand-off ============================================
  if (!pending.credits.empty() || pending.offer.has_value()) {
    if (pending_.TryPush(std::move(pending))) {
      // Opportunistic drain: single-threaded callers always win this
      // try_lock, so maintenance lands immediately (serial behavior is
      // unchanged); under reader contention the batch simply waits for
      // the next drain — the "off the critical path" of paper §4.
      std::unique_lock<std::shared_mutex> write_lock(mu_, std::try_to_lock);
      if (write_lock.owns_lock()) {
        ScopedTimer timer(&m.t_maintenance_ns);
        DrainMaintenanceLocked();
      }
    } else {
      // Backpressure: the bounded queue is full — drain inline.
      std::unique_lock<std::shared_mutex> write_lock(mu_);
      ScopedTimer timer(&m.t_maintenance_ns);
      DrainMaintenanceLocked();
      cache_.CreditHitsBatched(SumCredits({&pending, 1}));
      ApplyMaintenanceLocked(pending);
      cache_.MaybeMergeWindow();
    }
  }

  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    aggregate_.Add(m);
  }
  return result;
}

}  // namespace gcp
