#include "core/graphcache_plus.hpp"

#include <algorithm>
#include <chrono>

#include "cache/cache_validator.hpp"
#include "cache/snapshot.hpp"
#include "cache/statistics.hpp"
#include "common/stopwatch.hpp"
#include "core/pruner.hpp"
#include "dataset/log_analyzer.hpp"
#include "graph/canonical.hpp"

namespace gcp {

std::string_view CacheModelName(CacheModel model) {
  switch (model) {
    case CacheModel::kEvi:
      return "EVI";
    case CacheModel::kCon:
      return "CON";
  }
  return "Unknown";
}

GraphCachePlus::GraphCachePlus(GraphDataset* dataset,
                               GraphCachePlusOptions options)
    : dataset_(dataset),
      options_(options),
      pool_(options.verify_threads > 1
                ? std::make_unique<ThreadPool>(options.verify_threads)
                : nullptr),
      ftv_(options.use_ftv_index ? std::make_unique<FtvIndex>(*dataset)
                                 : nullptr),
      method_m_(options.method_m, *dataset, pool_.get(),
                options.reuse_match_context),
      internal_matcher_(MakeMatcher(options.internal_matcher)),
      discovery_(*internal_matcher_, options_),
      cache_(options.num_shards,
             CacheManagerOptions{options.cache_capacity,
                                 options.window_capacity, options.policy,
                                 options.rng_seed}) {
  pending_.reserve(cache_.num_shards());
  shard_ptrs_.reserve(cache_.num_shards());
  for (std::size_t s = 0; s < cache_.num_shards(); ++s) {
    pending_.push_back(std::make_unique<BoundedMpscQueue<PendingMaintenance>>(
        options.maintenance_queue_capacity));
    shard_ptrs_.push_back(&cache_.shard(s));
  }
  if (options.maintenance_thread) {
    maintenance_ = std::make_unique<MaintenanceThread>(
        [this] { MaintenanceDrainPass(); },
        std::chrono::microseconds(options.maintenance_interval_us));
  }
}

GraphCachePlus::~GraphCachePlus() {
  // Join the drain thread before any member it touches is torn down.
  if (maintenance_ != nullptr) maintenance_->Stop();
}

bool GraphCachePlus::NeedsSyncLocked() const {
  return dataset_->log().HasChangesSince(watermark_) ||
         (ftv_ != nullptr && !ftv_->InSync());
}

void GraphCachePlus::SyncWithDatasetLocked(QueryMetrics* metrics) {
  const ChangeLog& log = dataset_->log();
  if (log.HasChangesSince(watermark_)) {
    ScopedTimer timer(&metrics->t_validate_ns);
    if (options_.model == CacheModel::kEvi) {
      // EVI: the Log Analyzer merely raises the changed flag; the Cache
      // Validator clears the stores indiscriminately (paper §5.1).
      cache_.Clear();
    } else {
      // CON: Algorithm 1 over the incremental records, then Algorithm 2 on
      // every resident entry of every shard (paper §5.2).
      const std::vector<ChangeRecord> records = log.ExtractSince(watermark_);
      const ChangeCounters counters = LogAnalyzer::Analyze(records);
      cache_.ValidateAll(counters, dataset_->IdHorizon());
      if (options_.retrospective_budget > 0) {
        RetrospectiveRefresh(options_.retrospective_budget);
      }
    }
    watermark_ = log.LatestSeq();
  }
  if (ftv_ != nullptr && !ftv_->InSync()) {
    ScopedTimer timer(&metrics->t_index_ns);
    ftv_->SyncWithDataset();
  }
}

std::vector<CacheManager::EntryCreditSum> GraphCachePlus::SumCredits(
    std::span<const PendingMaintenance> batches) {
  // One EntryCreditSum per distinct entry, in first-credit order (the
  // order CreditHit calls would have touched them).
  std::vector<CacheManager::EntryCreditSum> sums;
  std::unordered_map<CacheEntryId, std::size_t> slot_of;
  for (const PendingMaintenance& batch : batches) {
    for (const HitCredit& c : batch.credits) {
      const auto [it, inserted] = slot_of.emplace(c.id, sums.size());
      if (inserted) {
        sums.emplace_back();
        sums.back().id = c.id;
      }
      CacheManager::EntryCreditSum& sum = sums[it->second];
      sum.tests_saved += c.tests_saved;
      ++sum.hit_count;
      sum.last_used = batch.query_id;
      switch (c.kind) {
        case HitKind::kExact:
          ++sum.exact;
          if (c.zero_test_exact) ++sum.zero_test_exact;
          break;
        case HitKind::kEmptyProof:
          ++sum.empty_proof;
          break;
        case HitKind::kSub:
          ++sum.sub;
          break;
        case HitKind::kSuper:
          ++sum.super;
          break;
      }
    }
  }
  return sums;
}

bool GraphCachePlus::IsDuplicateAdmissionLocked(
    std::size_t s, const CachedQuery& entry) const {
  // The probe mirrors the serial §6.3 exact-hit precondition (same-kind
  // isomorphic resident, fully valid over the live dataset): under that
  // condition the serial engine would not have produced this offer, so a
  // concurrent twin that did slip past the read-phase check is dropped
  // here. Residents that are isomorphic but NOT fully valid do not block
  // admission — the serial engine admits those too (their knowledge is
  // strictly weaker than the fresh offer's). Gated on the exact shortcut
  // so configurations that never detect exact hits keep admitting twins
  // exactly as before.
  if (!options_.enable_exact_shortcut) return false;
  const std::vector<const CachedQuery*> twins =
      cache_.shard(s).index().DigestMatches(entry.digest);
  if (twins.empty()) return false;
  const DynamicBitset live = dataset_->LiveMask();
  for (const CachedQuery* twin : twins) {
    if (twin->kind != entry.kind ||
        twin->query.NumVertices() != entry.query.NumVertices() ||
        twin->query.NumEdges() != entry.query.NumEdges()) {
      continue;
    }
    if (twin->valid.size() != live.size() || !live.IsSubsetOf(twin->valid)) {
      continue;
    }
    // Equal counts + one-way containment ⇒ isomorphic (the §6.3 case-1
    // argument): the embedding is a bijection and edge counts match.
    if (internal_matcher_->Contains(entry.query, twin->query)) return true;
  }
  return false;
}

void GraphCachePlus::ApplyMaintenanceLocked(std::size_t s,
                                            PendingMaintenance& batch) {
  if (!batch.offer.has_value()) return;
  AdmissionOffer& offer = *batch.offer;
  const bool stale = offer.observed_watermark != watermark_;
  if (stale && options_.model == CacheModel::kEvi) {
    // EVI keeps no pre-change knowledge: an offer computed before the
    // change the cache already purged for is dropped, exactly as a
    // resident entry would have been.
    return;
  }
  if (IsDuplicateAdmissionLocked(s, *offer.entry)) {
    // Concurrent twin: an isomorphic, fully-valid resident landed between
    // this query's read phase and its drain. Admitting both would split
    // capacity and benefit statistics across identical knowledge.
    ++cache_.shard(s).stats().total_admission_dedups;
    return;
  }
  CacheManager& shard = cache_.shard(s);
  const CacheEntryId id =
      shard.AdmitPrepared(std::move(offer.entry), batch.query_id);
  if (stale) {
    // CON: forward-validate the snapshot through Algorithms 1 + 2 over
    // exactly the records the cache has already reconciled, so the new
    // entry joins the resident set at the cache watermark. Records past
    // the watermark are left for the next sync (which refreshes every
    // resident entry uniformly).
    std::vector<ChangeRecord> records =
        dataset_->log().ExtractSince(offer.observed_watermark);
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [this](const ChangeRecord& r) {
                                   return r.seq > watermark_;
                                 }),
                  records.end());
    const ChangeCounters counters = LogAnalyzer::Analyze(records);
    CachedQuery* e = shard.FindMutable(id);
    if (e != nullptr) {
      CacheValidator::RefreshEntry(*e, counters, dataset_->IdHorizon());
    }
  }
}

void GraphCachePlus::DrainShardLocked(std::size_t s) {
  std::vector<PendingMaintenance> batches = pending_[s]->DrainAll();
  if (batches.empty()) return;
  // Benefit credits are summed per entry across the whole drain and
  // applied as one update per entry; a credit can never reference an
  // entry admitted by an offer in the same drain (the entry had to be
  // resident when the crediting query's read phase discovered it), so
  // applying all credits before all offers preserves the per-batch order.
  cache_.shard(s).CreditHitsBatched(SumCredits(batches));
  for (PendingMaintenance& b : batches) ApplyMaintenanceLocked(s, b);
  // Replacement runs once per drain, however many admissions landed.
  cache_.shard(s).MaybeMergeWindow();
}

bool GraphCachePlus::DrainShard(std::size_t s, bool try_lock) {
  ShardedCache::DrainScope scope(s);
  auto lock =
      try_lock ? cache_.TryLockExclusive(s) : cache_.LockExclusive(s);
  if (!lock.owns_lock()) return false;
  DrainShardLocked(s);
  return true;
}

void GraphCachePlus::DrainAllShardsLocked() {
  for (std::size_t s = 0; s < pending_.size(); ++s) DrainShardLocked(s);
}

void GraphCachePlus::MaintenanceDrainPass() {
  bool drained = false;
  std::int64_t drain_ns = 0;
  {
    ScopedTimer timer(&drain_ns);
    std::shared_lock<std::shared_mutex> engine_read(mu_);
    for (std::size_t s = 0; s < pending_.size(); ++s) {
      if (!pending_[s]->empty()) drained |= DrainShard(s, /*try_lock=*/false);
    }
  }
  if (drained) {
    // Drains run on the dedicated thread still count as maintenance
    // overhead — deferral moves the cost off the query, not off the books.
    std::lock_guard<std::mutex> agg_lock(agg_mu_);
    aggregate_.t_maintenance_ns += drain_ns;
  }
}

void GraphCachePlus::ApplyDatasetChanges(
    const std::function<void(GraphDataset&)>& fn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Stop-the-world barrier: every shard lock, so no drain or discovery is
  // in flight anywhere while the dataset mutates.
  const auto shard_locks = cache_.LockAllExclusive();
  DrainAllShardsLocked();
  fn(*dataset_);
}

void GraphCachePlus::FlushMaintenance() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::int64_t drain_ns = 0;
  {
    ScopedTimer timer(&drain_ns);
    const auto shard_locks = cache_.LockAllExclusive();
    DrainAllShardsLocked();
  }
  // Attribute the quiescing drain to maintenance overhead so end-of-run
  // flushes (e.g. the runner's) don't make deferral look free.
  std::lock_guard<std::mutex> agg_lock(agg_mu_);
  aggregate_.t_maintenance_ns += drain_ns;
}

void GraphCachePlus::ResetAggregate() {
  std::lock_guard<std::mutex> lock(agg_mu_);
  aggregate_ = AggregateMetrics();
}

AggregateMetrics GraphCachePlus::AggregateSnapshot() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return aggregate_;
}

StatisticsManager GraphCachePlus::CacheStatsSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto shard_locks = cache_.LockAllShared();
  return cache_.AggregateStats();
}

Status GraphCachePlus::SaveCache(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto shard_locks = cache_.LockAllShared();
  CacheSnapshot snapshot;
  snapshot.watermark = watermark_;
  snapshot.id_horizon = dataset_->IdHorizon();
  snapshot.entries = cache_.ExportEntries();
  return WriteCacheSnapshotToFile(path, snapshot);
}

Status GraphCachePlus::LoadCache(const std::string& path) {
  auto snapshot = ReadCacheSnapshotFromFile(path);
  if (!snapshot.ok()) return snapshot.status();
  CacheSnapshot& s = snapshot.value();
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (s.watermark > dataset_->log().LatestSeq()) {
    return Status::FailedPrecondition(
        "snapshot watermark is ahead of the dataset change log — not the "
        "same dataset lineage");
  }
  if (s.id_horizon > dataset_->IdHorizon()) {
    return Status::FailedPrecondition(
        "snapshot horizon exceeds the dataset's id horizon");
  }
  for (const CachedQuery& e : s.entries) {
    if (e.valid.size() != s.id_horizon || e.answer.size() != s.id_horizon) {
      return Status::Corruption("snapshot entry width != snapshot horizon");
    }
  }
  const auto shard_locks = cache_.LockAllExclusive();
  // Settle queued maintenance before the restore wipes the stores it
  // refers to (stale credits would silently no-op; admissions from the
  // pre-restore cache would duplicate restored entries).
  DrainAllShardsLocked();
  cache_.RestoreEntries(std::move(s.entries));
  // Resume from the snapshot's watermark: the next query's sync replays
  // the incremental suffix, re-establishing consistency.
  watermark_ = s.watermark;
  return Status::OK();
}

void GraphCachePlus::RetrospectiveRefresh(std::size_t budget) {
  // The paper's §8 future-work optimisation: re-verify invalidated
  // (cached query, live graph) pairs against the current dataset so the
  // relation becomes known (and valid) again. Most-beneficial entries
  // first within each shard; cost is bounded by `budget` sub-iso tests
  // per sync.
  const DynamicBitset live = dataset_->LiveMask();
  const SubgraphMatcher& verifier = method_m_.matcher();
  for (std::size_t shard_idx = 0;
       shard_idx < cache_.num_shards() && budget > 0; ++shard_idx) {
    CacheManager& shard = cache_.shard(shard_idx);
    for (const CacheEntryId id : shard.ResidentIdsByBenefit()) {
      if (budget == 0) return;
      CachedQuery* e = shard.FindMutable(id);
      if (e == nullptr || e->valid.size() != live.size()) continue;
      // Unknown pairs: live graphs whose validity bit is off.
      DynamicBitset unknown = DynamicBitset::Not(e->valid);
      unknown.AndWith(live);
      for (std::size_t i = unknown.FindFirst();
           i != DynamicBitset::npos && budget > 0;
           i = unknown.FindNext(i + 1)) {
        const Graph& g = dataset_->graph(static_cast<GraphId>(i));
        const bool contained = e->kind == CachedQueryKind::kSubgraph
                                   ? verifier.Contains(e->query, g)
                                   : verifier.Contains(g, e->query);
        e->answer.Set(i, contained);
        e->valid.Set(i, true);
        --budget;
        ++shard.stats().total_retro_refreshes;
      }
    }
  }
}

QueryResult GraphCachePlus::Query(const Graph& g, QueryKind kind) {
  QueryResult result;
  QueryMetrics& m = result.metrics;
  m.query_id = query_counter_.fetch_add(1, std::memory_order_relaxed);

  // Deferred mutations, routed per home shard (most queries touch one or
  // two shards; linear probe beats a map at that size).
  std::vector<std::pair<std::size_t, PendingMaintenance>> deferred;
  auto batch_for = [&](std::size_t s) -> PendingMaintenance& {
    for (auto& [shard, batch] : deferred) {
      if (shard == s) return batch;
    }
    deferred.emplace_back(s, PendingMaintenance{});
    deferred.back().second.query_id = m.query_id;
    return deferred.back().second;
  };

  DynamicBitset answer_bits;
  bool had_exact = false;
  {
    // ===== Read phase (engine shared lock) ===============================
    std::shared_lock<std::shared_mutex> read_lock(mu_);

    // --- Dataset Manager: reconcile dataset changes with the cache. ------
    // Upgrade to the stop-the-world barrier only when the change log moved
    // past the cache watermark (or the FTV index lags); queued maintenance
    // drains first so deferred admissions are validated like residents.
    // The loop re-checks after the downgrade: another thread may have
    // synced for us, or applied a further change.
    while (NeedsSyncLocked()) {
      read_lock.unlock();
      {
        std::unique_lock<std::shared_mutex> write_lock(mu_);
        const auto shard_locks = cache_.LockAllExclusive();
        DrainAllShardsLocked();
        SyncWithDatasetLocked(&m);
      }
      read_lock.lock();
    }

    // --- Method M candidate generation: whole live dataset, or the FTV
    // filter when Method M is equipped with the updatable index. ----------
    DynamicBitset csm;
    if (ftv_ != nullptr) {
      ScopedTimer timer(&m.t_index_ns);
      csm = ftv_->CandidateSet(
          GraphFeatures::Extract(g),
          kind == QueryKind::kSubgraph ? FtvQueryDirection::kSubgraph
                                       : FtvQueryDirection::kSupergraph);
    } else {
      csm = dataset_->LiveMask();
    }
    m.candidates_initial = csm.Count();

    PruneOutcome pruned;
    {
      // --- Shard-locked slice: hit discovery, pruning, credit extraction.
      // Every shard lock is held shared, so resident entry pointers stay
      // valid exactly this long; only ids, digests and value bitsets
      // escape the block. Method M verification — the dominant read-phase
      // cost — runs after release, so a drain (shard-exclusive) overlaps
      // it freely.
      const auto shard_locks = cache_.LockAllShared();

      Stopwatch probe_watch;
      const DiscoveredHits hits =
          discovery_.Discover(g, kind, shard_ptrs_, csm, &m);
      m.t_probe_ns = probe_watch.ElapsedNanos();

      // --- Candidate-set pruning (formulas (1)-(5), §6.3 shortcuts). -----
      Stopwatch prune_watch;
      pruned = CandidateSetPruner::Prune(hits, csm, &m);
      m.t_prune_ns = prune_watch.ElapsedNanos();

      // --- Statistics Manager: defer credits for contributing entries,
      // routed to each entry's home shard. -------------------------------
      had_exact = hits.exact != nullptr;
      if (hits.exact != nullptr) {
        // An exact hit short-circuits the query (pruned.direct below), so
        // Method M never runs and the hit is zero-test by construction —
        // recorded explicitly rather than via m.si_tests, which is only
        // written by the (skipped) verification step.
        batch_for(cache_.ShardOfDigest(hits.exact->digest))
            .credits.push_back({hits.exact->id, HitKind::kExact,
                                pruned.saved_positive,
                                /*zero_test_exact=*/true});
      }
      if (hits.empty_proof != nullptr) {
        batch_for(cache_.ShardOfDigest(hits.empty_proof->digest))
            .credits.push_back({hits.empty_proof->id, HitKind::kEmptyProof,
                                pruned.saved_pruning, false});
      }
      for (const CachedQuery* hit : hits.positive) {
        const std::uint64_t standalone =
            DynamicBitset::And(hit->valid, hit->answer).CountAnd(csm);
        batch_for(cache_.ShardOfDigest(hit->digest))
            .credits.push_back({hit->id, HitKind::kSub, standalone, false});
      }
      for (const CachedQuery* hit : hits.pruning) {
        const std::uint64_t standalone =
            DynamicBitset::AndNot(hit->valid, hit->answer).CountAnd(csm);
        batch_for(cache_.ShardOfDigest(hit->digest))
            .credits.push_back({hit->id, HitKind::kSuper, standalone, false});
      }
    }  // --- shard locks released -----------------------------------------

    // --- Method M verification on the reduced candidate set. --------------
    Stopwatch verify_watch;
    if (pruned.direct) {
      answer_bits = pruned.answer_direct;
    } else {
      answer_bits =
          method_m_.VerifyCandidates(g, kind, pruned.candidates, &m.si_tests);
      // Formula (3): verified graphs plus direct transfers.
      answer_bits.OrWith(pruned.answer_direct);
    }
    m.t_verify_ns = verify_watch.ElapsedNanos();
    m.answer_size = answer_bits.Count();

    // --- Cache Manager: defer the admission offer, stamped with the
    // watermark the answer snapshot is consistent with and routed to the
    // query digest's home shard. Exact hits carry no new knowledge — the
    // isomorphic entry is already resident. ------------------------------
    if (options_.enable_admission && !had_exact) {
      // Entry preparation is admission work executed early (off any
      // exclusive lock), so it bills to maintenance, not query time.
      ScopedTimer timer(&m.t_maintenance_ns);
      AdmissionOffer offer;
      // C is a *structural* estimate (after [25]), deliberately not a wall
      // time: the paper's Figure 5 premise — "whatever SI method being the
      // Method M, GC+ results exactly the same pruned candidate set" —
      // requires every cache decision (incl. PINC/HD scoring) to be
      // method-independent.
      DynamicBitset valid(dataset_->IdHorizon());
      valid.SetAll();
      offer.entry = CacheManager::PrepareEntry(
          g,
          kind == QueryKind::kSubgraph ? CachedQueryKind::kSubgraph
                                       : CachedQueryKind::kSupergraph,
          answer_bits, std::move(valid),
          StatisticsManager::StructuralCostEstimateMs(g));
      offer.observed_watermark = watermark_;
      const std::size_t home = cache_.ShardOfDigest(offer.entry->digest);
      batch_for(home).offer = std::move(offer);
    }
  }  // ===== engine shared lock released ===================================

  result.answer.reserve(answer_bits.Count());
  answer_bits.ForEachSetBit([&result](std::size_t id) {
    result.answer.push_back(static_cast<GraphId>(id));
  });

  // ===== Maintenance hand-off ============================================
  if (!deferred.empty()) {
    std::shared_lock<std::shared_mutex> read_lock(mu_);
    for (auto& [s, batch] : deferred) {
      std::size_t size_after = 0;
      if (pending_[s]->TryPush(std::move(batch), &size_after)) {
        if (maintenance_ != nullptr) {
          // Queue-pressure wakeup: don't let a half-full queue wait for
          // the timer. Below the threshold the timer tick picks it up.
          if (size_after * 2 >= pending_[s]->capacity()) {
            maintenance_->Notify();
          }
        } else {
          // Opportunistic per-shard drain: single-threaded callers always
          // win this try_lock, so maintenance lands immediately (serial
          // behavior is unchanged); under contention the batch simply
          // waits for the next drain — the "off the critical path" of
          // paper §4. Only shard s's lock is taken: readers and drains of
          // other shards are never disturbed.
          ScopedTimer timer(&m.t_maintenance_ns);
          DrainShard(s, /*try_lock=*/true);
        }
      } else {
        // Backpressure: shard s's bounded queue is full — drain inline.
        ScopedTimer timer(&m.t_maintenance_ns);
        ShardedCache::DrainScope scope(s);
        const auto shard_lock = cache_.LockExclusive(s);
        DrainShardLocked(s);
        cache_.shard(s).CreditHitsBatched(SumCredits({&batch, 1}));
        ApplyMaintenanceLocked(s, batch);
        cache_.shard(s).MaybeMergeWindow();
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    aggregate_.Add(m);
  }
  return result;
}

}  // namespace gcp
