// GraphCachePlus — the GC+ system facade (paper §4).
//
// Wires the four subsystems together:
//   Dataset Manager  — the GraphDataset + Log Analyzer (Algorithm 1);
//   Cache Manager    — cache/window stores, statistics, replacement,
//                      Cache Validator (Algorithm 2);
//   Query Processing Runtime — GC+sub/GC+super processors, Candidate Set
//                      Pruner, metrics monitor;
//   Method M         — the external SI verifier being expedited.
//
// Per query g (paper §4): the Dataset Manager first reconciles recent
// dataset changes with the cache (EVI: purge; CON: validate); the
// processors discover hits; the pruner reduces CS_M(g); Method M verifies
// the remaining candidates; the answer is assembled (formula (3)); the
// executed query enters the admission window and replacement may run —
// accounted as maintenance overhead, off the query's critical path.
//
// Concurrency (PR 5): two read-path admission-control modes share one
// engine.
//
//   LOCK PATH (options.epoch_reads == false — the PR 4 engine, preserved
//   bit-exactly as the equivalence oracle): the ENGINE lock (mu_) guards
//   the dataset, the change-log watermark and the FTV index. Read phases
//   hold it shared; dataset mutations, syncs and snapshot restores hold
//   it exclusive together with every shard lock (stop-the-world).
//
//   EPOCH PATH (options.epoch_reads == true): the engine publishes an
//   immutable EngineSnapshot (core/engine_snapshot.hpp — watermark, live
//   mask, copy-on-write graph table, label histogram, chained change
//   records, FTV summary view) through one atomic pointer. A query read
//   phase pins an epoch (common/epoch.hpp), loads the snapshot and runs
//   entirely against it — engine-lock acquisitions on the read path are
//   ZERO (counted, and asserted zero by the epoch stress suite). A
//   dataset mutation serializes on mutation_mu_, applies the change,
//   publishes the successor snapshot, retires the predecessor to the
//   epoch manager (freed after a grace period), and then reconciles
//   CON/EVI validity shard-by-shard under per-shard exclusive locks — no
//   stop-the-world barrier, readers on the old snapshot keep flowing. A
//   shard whose watermark lags a reader's snapshot is simply skipped by
//   that reader's discovery (fewer hits, never a wrong answer); drains
//   fast-forward a lagging shard before applying batches.
//
// In BOTH modes the cache stores are partitioned into N digest-sharded
// CacheManager stores (cache/sharded_cache.hpp), each behind its own
// shared_mutex, and hit discovery is shard-local: the read phase visits
// shards one at a time (one shared lock each), runs the per-shard
// utility/cap prescreen and COPIES the survivors, then merges, orders and
// verifies them with no lock held (hit selection is shard-layout-
// independent — ties break on WL digest then entry id). A maintenance
// drain takes exactly ONE shard lock exclusive, so a drain on shard k
// never blocks discovery or drains on shard j.
//
// Deferred mutations (id-based hit credits, watermark-stamped admission
// offers) are routed by entry digest to per-shard bounded MPSC queues.
// Drains happen (a) opportunistically after a query (per-shard try-lock),
// (b) on the dedicated maintenance thread (options.maintenance_thread)
// woken by queue pressure or a timer, and (c) inline under backpressure
// when a shard queue is full.
// Invariants (PR 2's, preserved per shard):
//   1. Answers are exact: a read phase observes a dataset+cache state
//      that is internally consistent — on the lock path via the recheck
//      loop that re-syncs before reading; on the epoch path because a
//      snapshot is immutable and only same-watermark shards contribute
//      hits — and cache contents only ever prune or transfer — never
//      alter — the answer (Theorems 3/6).
//   2. Deferred knowledge is never admitted as fresher than it is: an
//      admission offer carries the watermark its answer was computed at;
//      at drain time a stale offer is forward-validated through
//      Algorithms 1+2 (CON) or dropped (EVI), per shard, against that
//      shard's own watermark.
//   3. Dataset mutations go through ApplyDatasetChanges once queries run
//      concurrently, making every change atomic w.r.t. read phases.
// Lock order: engine lock (lock path) / mutation_mu_ (epoch path) before
// shard locks; shard locks in ascending index order; never the reverse.

#ifndef GCP_CORE_GRAPHCACHE_PLUS_HPP_
#define GCP_CORE_GRAPHCACHE_PLUS_HPP_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_manager.hpp"
#include "cache/sharded_cache.hpp"
#include "cache/snapshot.hpp"
#include "common/epoch.hpp"
#include "common/maintenance_thread.hpp"
#include "common/mpsc_queue.hpp"
#include "common/thread_pool.hpp"
#include "core/engine_snapshot.hpp"
#include "core/method_m.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/processors.hpp"
#include "dataset/dataset.hpp"
#include "ftv/ftv_index.hpp"

namespace gcp {

/// Answer and accounting of one query execution.
struct QueryResult {
  /// Ids of dataset graphs in the answer set, ascending.
  std::vector<GraphId> answer;
  QueryMetrics metrics;
};

/// \brief The GC+ caching system.
class GraphCachePlus {
 public:
  /// `dataset` must outlive the instance. Changes to the dataset between
  /// queries are picked up through its change log.
  GraphCachePlus(GraphDataset* dataset, GraphCachePlusOptions options);

  /// Stops the maintenance thread (if any); queued-but-undrained batches
  /// are discarded with the stores. No query may be in flight.
  ~GraphCachePlus();

  /// Executes a subgraph query: all live G with g ⊆ G.
  QueryResult SubgraphQuery(const Graph& g) {
    return Query(g, QueryKind::kSubgraph);
  }

  /// Executes a supergraph query: all live G with G ⊆ g.
  QueryResult SupergraphQuery(const Graph& g) {
    return Query(g, QueryKind::kSupergraph);
  }

  /// Executes a query of the given kind. Thread-safe: any number of
  /// threads may query one instance concurrently, provided concurrent
  /// dataset mutations go through ApplyDatasetChanges.
  QueryResult Query(const Graph& g, QueryKind kind);

  /// Runs `fn(dataset)` atomically w.r.t. concurrent read phases, after
  /// draining pending maintenance. Lock path: the stop-the-world barrier
  /// (engine exclusive + every shard lock). Epoch path: serializes on the
  /// mutation mutex, mutates, publishes the successor snapshot, retires
  /// the predecessor and reconciles shard-by-shard — concurrent readers
  /// keep flowing on the old snapshot throughout. The only safe way to
  /// mutate the dataset while queries are in flight (single-threaded
  /// callers may keep mutating the dataset directly between queries).
  void ApplyDatasetChanges(const std::function<void(GraphDataset&)>& fn);

  /// Drains every queued maintenance batch on every shard, bringing the
  /// cache to a quiescent state (exposed for tests, snapshots, benches).
  void FlushMaintenance();

  /// Cumulative metrics since construction or the last ResetAggregate()
  /// (benches reset after warm-up, mirroring the paper's one-window
  /// warm-up). Safe only when no queries are in flight; use
  /// AggregateSnapshot() concurrently.
  const AggregateMetrics& aggregate() const { return aggregate_; }
  void ResetAggregate();

  /// Thread-safe copy of the aggregate metrics.
  AggregateMetrics AggregateSnapshot() const;

  /// Persists the warm cache (entries + the change-log watermark they are
  /// consistent with). A later process over the same dataset lineage can
  /// LoadCache and skip the cold start. Queued-but-undrained admissions
  /// are not part of the snapshot (call FlushMaintenance first to include
  /// them).
  Status SaveCache(const std::string& path) const;

  /// Restores a snapshot saved by SaveCache (entries re-routed to their
  /// digest's home shard). The dataset's change log must still contain
  /// every record after the snapshot's watermark; the incremental suffix
  /// is reconciled through Algorithms 1+2 for CON (purge for EVI) — on
  /// the next query (lock path) or immediately per shard (epoch path) —
  /// so stale snapshots remain exact.
  Status LoadCache(const std::string& path);

  // --- Durability (crash-safe checkpoints + verified warm restart) --------

  /// Copies the full warm-cache state (entries + the watermark and id
  /// horizon they are consistent with) — the payload SaveCache and
  /// CheckpointNow persist. Thread-safe; queries keep flowing (shard
  /// locks are held shared, plus mutation_mu_ on the epoch path).
  /// ResourceExhausted when the allocation-fault injector refused the
  /// export (nothing is copied; the resident state is untouched).
  Result<CacheSnapshot> ExportSnapshot() const;

  /// Installs `snapshot` as the resident cache state — the LoadCache body
  /// after the file read: lineage-validated (FailedPrecondition when the
  /// watermark or horizon outruns this dataset), entries re-routed to
  /// their digest's home shard, then fast-forwarded from the snapshot's
  /// watermark through CON replay / EVI purge. Thread-safe.
  Status ApplySnapshot(CacheSnapshot snapshot);

  /// Writes one durable checkpoint into options().checkpoint_dir — encode
  /// with per-section CRCs, tmp file, fsync, atomic rename, fsync of the
  /// directory — then prunes committed siblings beyond
  /// options().checkpoint_keep. The export never stalls queries and file
  /// I/O runs with no engine state locked. FailedPrecondition when
  /// checkpoint_dir is empty; on I/O failure the torn tmp file is left
  /// behind exactly as a crash would leave it.
  Status CheckpointNow();

  /// What WarmRestart did.
  struct WarmRestartReport {
    bool warm = false;         ///< A checkpoint was loaded and applied.
    std::string path;          ///< Winning file (empty on cold start).
    std::size_t entries = 0;   ///< Entries the winning checkpoint carried.
    std::size_t rejected = 0;  ///< Siblings rejected before the outcome.
    LogSeq watermark = 0;      ///< Winning checkpoint's watermark.
  };

  /// Verified warm restart with graceful degradation: checkpoints in
  /// options().checkpoint_dir are tried newest-first; a corrupt,
  /// truncated, torn or wrong-lineage file is rejected (counted) and the
  /// next-older sibling is tried; when none survives the engine cold
  /// starts with whatever it already holds. Returns OK for both warm and
  /// cold outcomes — only an unconfigured checkpoint_dir is an error.
  Status WarmRestart(WarmRestartReport* report = nullptr);

  /// Shard 0's store — the full cache when options().num_shards == 1 (the
  /// default), one slice otherwise. Sharded callers use cache_shards() /
  /// CacheStatsSnapshot().
  CacheManager& cache_manager() { return cache_.shard(0); }
  const CacheManager& cache_manager() const { return cache_.shard(0); }

  /// The sharded store router (shard access, lock-violation counter).
  ShardedCache& cache_shards() { return cache_; }
  const ShardedCache& cache_shards() const { return cache_; }

  /// Thread-safe cross-shard sum of the cache statistics counters, with
  /// the engine-level epoch counters (snapshots_published, epochs_retired,
  /// read_phase_engine_lock_acquisitions) overlaid.
  StatisticsManager CacheStatsSnapshot() const;

  /// The maintenance thread, or nullptr when options().maintenance_thread
  /// is off (introspection for tests/benches).
  const MaintenanceThread* maintenance_thread() const {
    return maintenance_.get();
  }

  /// Engine-lock acquisitions made by query paths since construction —
  /// zero under options().epoch_reads.
  std::uint64_t read_phase_engine_lock_acquisitions() const {
    return engine_lock_acquisitions_.load(std::memory_order_relaxed);
  }
  /// EngineSnapshots published (epoch path; 0 on the lock path).
  std::uint64_t snapshots_published() const {
    return snapshots_published_.load(std::memory_order_relaxed);
  }
  /// The epoch manager (grace-period counters; introspection for tests).
  const EpochManager& epoch_manager() const { return epochs_; }

  /// The overload pressure monitor, or nullptr when options().byte_budget
  /// is 0. Exposed mutable so torture tests can drive deterministic tier
  /// transitions (AddBytes / NoteQueueDepth) around real queries.
  PressureMonitor* pressure_monitor() { return pressure_.get(); }
  const PressureMonitor* pressure_monitor() const { return pressure_.get(); }

  /// Current overall pressure tier (NORMAL when no monitor is armed).
  PressureTier pressure_tier() const {
    return pressure_ == nullptr ? PressureTier::kNormal : pressure_->tier();
  }

  const GraphCachePlusOptions& options() const { return options_; }
  const GraphDataset& dataset() const { return *dataset_; }
  /// The FTV index, or nullptr when options().use_ftv_index is off.
  const FtvIndex* ftv_index() const { return ftv_.get(); }

 private:
  /// One deferred hit credit: entry id + benefit, applied at drain time
  /// by CacheManager::CreditHitsBatched. Id-based on purpose — the entry
  /// may have been evicted by the time the credit lands.
  struct HitCredit {
    CacheEntryId id = 0;
    HitKind kind = HitKind::kSub;
    std::uint64_t tests_saved = 0;
    bool zero_test_exact = false;
  };

  /// A deferred admission: a fully-prepared cache entry (query copy,
  /// features, WL digest, answer and validity snapshots — all computed in
  /// the read phase to keep the exclusive section minimal), stamped with
  /// the watermark the read phase observed so a drain that happens after
  /// further dataset changes can tell how stale the knowledge is.
  struct AdmissionOffer {
    std::unique_ptr<CachedQuery> entry;
    LogSeq observed_watermark = 0;
  };

  /// One deferred fragment hit credit: the read phase applied this
  /// fragment's mask, removing `pruned` Method M candidates. Digest-keyed
  /// (the fragment store has its own id space, and the fragment may be
  /// evicted or merged before the drain lands).
  struct FragmentCredit {
    std::uint64_t digest = 0;
    std::uint64_t pruned = 0;
  };

  /// Everything one query defers to ONE shard: the credits for entries
  /// homed there plus (at most) the admission offer routed there by the
  /// query's digest, plus fragment credits/offers for fragments homed
  /// there (fragment offers follow the admission watermark-staleness
  /// discipline verbatim).
  struct PendingMaintenance {
    std::uint64_t query_id = 0;
    std::vector<HitCredit> credits;
    std::optional<AdmissionOffer> offer;
    std::vector<FragmentCredit> fragment_credits;
    std::vector<AdmissionOffer> fragment_offers;
  };

  /// Context a drain applies batches under. Legacy (lock-path) drains
  /// leave `live`/`snap` null and read the dataset under the engine lock
  /// exactly as PR 4 did; epoch drains carry the snapshot's live mask and
  /// record segments so they never touch the dataset.
  struct DrainEnv {
    /// Staleness reference: the watermark the target store's validity
    /// state is reconciled to (engine watermark on the lock path, shard
    /// watermark == snapshot watermark on the epoch path).
    LogSeq watermark = 0;
    /// Live mask for the admission-dedup probe; nullptr → recompute from
    /// the dataset per offer (PR 4 lock-path fidelity).
    const DynamicBitset* live = nullptr;
    /// Record source for forward validation; nullptr → the change log.
    const EngineSnapshot* snap = nullptr;
  };

  /// True when the next read phase must not start yet: the change log
  /// moved past the cache watermark, or the FTV index lags. Requires at
  /// least the engine shared lock. Lock path only.
  bool NeedsSyncLocked() const;

  /// Dataset Manager sync: reconcile unprocessed change-log records with
  /// the cache (Algorithms 1 + 2 for CON; full purge for EVI), then bring
  /// the FTV index up to date. Requires the engine exclusive lock; takes
  /// every shard lock (stop-the-world). Lock path only.
  void SyncWithDatasetLocked(QueryMetrics* metrics);

  // --- Read phases --------------------------------------------------------

  using Deferred = std::vector<std::pair<std::size_t, PendingMaintenance>>;

  /// Lock-path read phase: engine shared lock + sync recheck loop, then
  /// the shared read slice. Bumps engine_lock_acquisitions_ per mu_
  /// acquisition.
  void ReadPhaseLocked(const Graph& g, QueryKind kind, QueryMetrics& m,
                       Deferred& deferred, DynamicBitset& answer_bits,
                       bool& had_exact);

  /// Epoch-path read phase: pin, load snapshot, republish-if-stale (only
  /// out-of-band serial mutations trigger that), then the shared read
  /// slice against the snapshot. Never touches mu_.
  void ReadPhaseEpoch(const Graph& g, QueryKind kind, QueryMetrics& m,
                      Deferred& deferred, DynamicBitset& answer_bits,
                      bool& had_exact);

  /// The mode-independent read slice: shard-local discovery (one shared
  /// shard lock at a time; epoch mode skips shards whose watermark is not
  /// `watermark`), pruning, credit extraction, Method M verification, and
  /// admission-offer preparation. `snap` null on the lock path.
  void ExecuteReadSlice(const Graph& g, QueryKind kind,
                        const DynamicBitset& csm, const EngineSnapshot* snap,
                        LogSeq watermark, std::size_t id_horizon,
                        QueryMetrics& m, Deferred& deferred,
                        DynamicBitset& answer_bits, bool& had_exact);

  // --- Maintenance --------------------------------------------------------

  /// Pops shard `s`'s queue and applies it under `env` — credits summed
  /// per entry, offers dedup-probed/validated/admitted, replacement at
  /// most once. Requires shard `s`'s exclusive lock (plus, on the lock
  /// path, the engine lock).
  void DrainShardLocked(std::size_t s, const DrainEnv& env);

  /// Applies already-popped batches (the tail of DrainShardLocked, also
  /// used by the backpressure path for the caller's own batch).
  void ApplyBatchesLocked(std::size_t s,
                          std::span<PendingMaintenance> batches,
                          const DrainEnv& env);

  /// Per-shard drain entry point for the post-query and maintenance-
  /// thread paths. Lock path: engine shared lock held by the caller;
  /// takes shard `s`'s exclusive lock under a DrainScope. Epoch path:
  /// pins an epoch, fast-forwards the shard to the current snapshot's
  /// watermark if it lags, then drains. With `try_lock`, gives up
  /// (returns false) when the shard lock is contended. `extra`
  /// (nullable) is one additional batch applied after the queue — the
  /// backpressure path's own rejected batch.
  bool DrainShard(std::size_t s, bool try_lock,
                  PendingMaintenance* extra = nullptr);

  /// Drains every shard under the engine exclusive lock (lock-path
  /// stop-the-world: sync, dataset change, flush, restore).
  void DrainAllShardsLocked();

  /// Maintenance-thread body: drain every shard with a non-empty queue,
  /// one shard lock at a time, then give background checkpointing its
  /// periodic chance.
  void MaintenanceDrainPass();

  /// Background checkpoint driver (maintenance thread only): attempts a
  /// checkpoint once per checkpoint_interval_us, stretched by a doubling
  /// backoff (cap 64×) while attempts fail so a sick disk can't turn the
  /// drain loop into a retry storm. No-op unless checkpoint_dir and a
  /// nonzero interval are configured.
  void MaybeBackgroundCheckpoint();

  /// Allocates the next checkpoint sequence number, seeding from the
  /// highest committed sibling already in checkpoint_dir (a restarted
  /// process must never reuse — and thereby clobber — a live seq).
  /// Requires checkpoint_mu_.
  std::uint64_t NextCheckpointSeqLocked();

  /// Sums the hit credits of `batches` per entry, in first-credit order.
  static std::vector<CacheManager::EntryCreditSum> SumCredits(
      std::span<const PendingMaintenance> batches);

  /// Applies one batch's admission offer to shard `s` (dedup-dropped when
  /// an isomorphic fully-valid twin is resident; forward-validated or
  /// dropped when stale). Requires shard `s`'s exclusive lock.
  void ApplyMaintenanceLocked(std::size_t s, PendingMaintenance& batch,
                              const DrainEnv& env);

  /// True when shard `s` already holds an entry isomorphic to `entry`
  /// (same kind, same WL digest, equal counts, containment) that is fully
  /// valid over `live` — the §6.3 exact-hit precondition, which is
  /// exactly when the serial engine would not have produced this offer in
  /// the first place. Requires shard `s`'s lock.
  bool IsDuplicateAdmissionLocked(std::size_t s, const CachedQuery& entry,
                                  const DynamicBitset& live) const;

  // --- Epoch path ---------------------------------------------------------

  /// Publishes the successor snapshot for the dataset's current state and
  /// reconciles every shard to it (per-shard exclusive locks, one at a
  /// time: drain pending batches at the shard's old watermark, then EVI
  /// purge / CON ValidateAll + optional retrospective refresh, then
  /// advance the shard watermark). No-op when nothing changed. Requires
  /// mutation_mu_. `metrics` (nullable) receives validation/index time.
  void PublishAndReconcile(QueryMetrics* metrics);

  /// Brings shard `s` from its watermark to `snap`'s (EVI: purge; CON:
  /// Algorithms 1+2 over the snapshot's record segments). Requires shard
  /// `s`'s exclusive lock. `retro_budget` (nullable) enables the §8
  /// retrospective refresh — mutator context only (reads the dataset).
  void ReconcileShardLocked(std::size_t s, const EngineSnapshot& snap,
                            std::size_t* retro_budget);

  /// §8 future-work extension, one shard's slice: re-verify up to
  /// `*budget` invalidated (entry, live graph) pairs, restoring validity
  /// with fresh knowledge. Requires shard `s`'s exclusive lock and a
  /// quiescent dataset (mutator context / stop-the-world).
  void RetrospectiveRefreshShard(std::size_t s, const DynamicBitset& live,
                                 std::size_t* budget);

  /// Builds the per-batch delta re-validation hook (CON +
  /// options_.delta_revalidation): for every (entry, graph) pair
  /// Algorithm 2 would invalidate, keep the bit when the batch's
  /// edge-label-pair delta proves the relation unchanged, else re-verify
  /// the pair against the batch-target graph state (FTV-summary
  /// prescreen, then one containment check) and rewrite answer/valid.
  /// `graph_of` resolves ids to the target state (nullptr = dead there);
  /// `summary_of` optionally resolves target-state FTV summaries.
  CacheValidator::DeltaRevalidateFn MakeDeltaRevalidator(
      const std::vector<ChangeRecord>& records,
      std::function<const Graph*(GraphId)> graph_of,
      std::function<const GraphFeatures*(GraphId)> summary_of) const;

  /// CON-validates one shard's store against `counters`: through the
  /// change-relevance index (options_.use_relevance_index) or the
  /// brute-force ValidateAll oracle — bit-exact either way. Requires the
  /// shard's exclusive lock.
  void ValidateShardStore(CacheManager& shard, const ChangeCounters& counters,
                          std::size_t id_horizon,
                          const CacheValidator::DeltaRevalidateFn* delta);

  GraphDataset* dataset_;
  GraphCachePlusOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<FtvIndex> ftv_;
  MethodM method_m_;
  std::unique_ptr<SubgraphMatcher> internal_matcher_;
  HitDiscovery discovery_;

  /// Engine lock (lock path): guards watermark_, ftv_ mutation and the
  /// dataset. Read phases hold it shared; sync/dataset changes exclusive.
  /// Always taken before any shard lock. Unused on the epoch path.
  mutable std::shared_mutex mu_;
  /// Overload pressure monitor — created iff options.byte_budget > 0, fed
  /// by every shard store's byte accounting and the queue hand-off.
  /// Declared before cache_: the shard stores hold the raw pointer.
  std::unique_ptr<PressureMonitor> pressure_;
  ShardedCache cache_;
  LogSeq watermark_ = 0;

  /// Epoch path: current snapshot (null on the lock path), its epoch
  /// manager, and the mutator serialization lock.
  std::atomic<const EngineSnapshot*> snapshot_{nullptr};
  EpochManager epochs_;
  std::mutex mutation_mu_;

  std::atomic<std::uint64_t> snapshots_published_{0};
  std::atomic<std::uint64_t> engine_lock_acquisitions_{0};

  /// Per-shard maintenance queues: read phases enqueue batches routed by
  /// digest; drains pop under that shard's exclusive lock.
  std::vector<std::unique_ptr<BoundedMpscQueue<PendingMaintenance>>> pending_;

  /// Dedicated drain thread (options.maintenance_thread); else null and
  /// drains happen opportunistically post-query.
  std::unique_ptr<MaintenanceThread> maintenance_;

  std::atomic<std::uint64_t> query_counter_{0};

  /// Serializes checkpoint writes and seq allocation — CheckpointNow may
  /// be called from any thread while the maintenance thread runs its own
  /// background attempts. Never held while engine or shard locks are
  /// held (the export completes and releases them first).
  mutable std::mutex checkpoint_mu_;
  std::uint64_t checkpoint_seq_ = 0;  ///< Guarded by checkpoint_mu_; 0 = unseeded.

  // Durability counters (engine-level; overlaid onto CacheStatsSnapshot).
  std::atomic<std::uint64_t> checkpoints_written_{0};
  std::atomic<std::uint64_t> checkpoints_failed_{0};
  std::atomic<std::uint64_t> checkpoints_retried_{0};
  std::atomic<std::uint64_t> checkpoint_bytes_{0};
  std::atomic<std::uint64_t> t_checkpoint_ns_{0};
  std::atomic<std::uint64_t> warm_restarts_{0};
  std::atomic<std::uint64_t> warm_restart_rejected_{0};

  // Overload counters (engine-level; overlaid onto CacheStatsSnapshot).
  std::atomic<std::uint64_t> admission_offers_shed_{0};
  std::atomic<std::uint64_t> backpressure_inline_drains_{0};
  std::atomic<std::uint64_t> pressure_bypassed_queries_{0};

  /// Background scheduling state — touched only on the maintenance
  /// thread, so plain members suffice.
  std::chrono::steady_clock::time_point last_checkpoint_attempt_{};
  std::uint32_t checkpoint_backoff_ = 1;
  bool checkpoint_clock_armed_ = false;
  bool checkpoint_recovering_ = false;

  /// Guards aggregate_ — per-thread QueryMetrics merge through here.
  mutable std::mutex agg_mu_;
  AggregateMetrics aggregate_;
};

}  // namespace gcp

#endif  // GCP_CORE_GRAPHCACHE_PLUS_HPP_
