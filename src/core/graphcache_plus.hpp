// GraphCachePlus — the GC+ system facade (paper §4).
//
// Wires the four subsystems together:
//   Dataset Manager  — the GraphDataset + Log Analyzer (Algorithm 1);
//   Cache Manager    — cache/window stores, statistics, replacement,
//                      Cache Validator (Algorithm 2);
//   Query Processing Runtime — GC+sub/GC+super processors, Candidate Set
//                      Pruner, metrics monitor;
//   Method M         — the external SI verifier being expedited.
//
// Per query g (paper §4): the Dataset Manager first reconciles recent
// dataset changes with the cache (EVI: purge; CON: validate); the
// processors discover hits; the pruner reduces CS_M(g); Method M verifies
// the remaining candidates; the answer is assembled (formula (3)); the
// executed query enters the admission window and replacement may run —
// accounted as maintenance overhead, off the query's critical path.
//
// Concurrency (the paper's §4 line, taken literally): the query path is
// split into
//   * a READ PHASE — watermark check, hit discovery, pruning, Method M
//     verification — executed by many client threads concurrently under a
//     shared lock against an immutable view of the cache and dataset, and
//   * a MAINTENANCE PHASE — benefit recording, admission, window→cache
//     merge, change-log reconciliation — serialized under the exclusive
//     lock. Read phases hand their deferred mutations (as id-based
//     credits and watermark-stamped admission offers) to a bounded MPSC
//     queue; whichever thread next acquires the exclusive lock drains the
//     queue as one batch, so replacement runs once per drain.
// Invariants:
//   1. Answers are exact: a read phase observes a dataset+cache state
//      that is internally consistent (the recheck loop re-syncs before
//      reading whenever the change log moved past the cache watermark),
//      and cache contents only ever prune or transfer — never alter —
//      the answer (Theorems 3/6).
//   2. Deferred knowledge is never admitted as fresher than it is: an
//      admission offer carries the watermark its answer was computed at;
//      a stale offer is forward-validated through Algorithms 1+2 (CON)
//      or dropped (EVI) at drain time.
//   3. Dataset mutations go through ApplyDatasetChanges once queries run
//      concurrently, making every change atomic w.r.t. read phases.

#ifndef GCP_CORE_GRAPHCACHE_PLUS_HPP_
#define GCP_CORE_GRAPHCACHE_PLUS_HPP_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "cache/cache_manager.hpp"
#include "common/mpsc_queue.hpp"
#include "common/thread_pool.hpp"
#include "core/method_m.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/processors.hpp"
#include "dataset/dataset.hpp"
#include "ftv/ftv_index.hpp"

namespace gcp {

/// Answer and accounting of one query execution.
struct QueryResult {
  /// Ids of dataset graphs in the answer set, ascending.
  std::vector<GraphId> answer;
  QueryMetrics metrics;
};

/// \brief The GC+ caching system.
class GraphCachePlus {
 public:
  /// `dataset` must outlive the instance. Changes to the dataset between
  /// queries are picked up through its change log.
  GraphCachePlus(GraphDataset* dataset, GraphCachePlusOptions options);

  /// Executes a subgraph query: all live G with g ⊆ G.
  QueryResult SubgraphQuery(const Graph& g) {
    return Query(g, QueryKind::kSubgraph);
  }

  /// Executes a supergraph query: all live G with G ⊆ g.
  QueryResult SupergraphQuery(const Graph& g) {
    return Query(g, QueryKind::kSupergraph);
  }

  /// Executes a query of the given kind. Thread-safe: any number of
  /// threads may query one instance concurrently, provided concurrent
  /// dataset mutations go through ApplyDatasetChanges.
  QueryResult Query(const Graph& g, QueryKind kind);

  /// Runs `fn(dataset)` under the exclusive lock, after draining pending
  /// maintenance: concurrent read phases never observe a half-applied
  /// change. The only safe way to mutate the dataset while queries are in
  /// flight (single-threaded callers may keep mutating the dataset
  /// directly between queries).
  void ApplyDatasetChanges(const std::function<void(GraphDataset&)>& fn);

  /// Drains every queued maintenance batch, bringing the cache to a
  /// quiescent state (exposed for tests, snapshots and benches).
  void FlushMaintenance();

  /// Cumulative metrics since construction or the last ResetAggregate()
  /// (benches reset after warm-up, mirroring the paper's one-window
  /// warm-up). Safe only when no queries are in flight; use
  /// AggregateSnapshot() concurrently.
  const AggregateMetrics& aggregate() const { return aggregate_; }
  void ResetAggregate();

  /// Thread-safe copy of the aggregate metrics.
  AggregateMetrics AggregateSnapshot() const;

  /// Persists the warm cache (entries + the change-log watermark they are
  /// consistent with). A later process over the same dataset lineage can
  /// LoadCache and skip the cold start. Queued-but-undrained admissions
  /// are not part of the snapshot (call FlushMaintenance first to include
  /// them).
  Status SaveCache(const std::string& path) const;

  /// Restores a snapshot saved by SaveCache. The dataset's change log
  /// must still contain every record after the snapshot's watermark; the
  /// incremental suffix is reconciled on the next query (Algorithms 1+2
  /// for CON, purge for EVI), so stale snapshots remain exact.
  Status LoadCache(const std::string& path);

  CacheManager& cache_manager() { return cache_; }
  const CacheManager& cache_manager() const { return cache_; }
  const GraphCachePlusOptions& options() const { return options_; }
  const GraphDataset& dataset() const { return *dataset_; }
  /// The FTV index, or nullptr when options().use_ftv_index is off.
  const FtvIndex* ftv_index() const { return ftv_.get(); }

 private:
  /// One deferred hit credit: entry id + benefit, applied at drain time
  /// by CacheManager::CreditHit. Id-based on purpose — the entry may have
  /// been evicted by the time the credit lands.
  struct HitCredit {
    CacheEntryId id = 0;
    HitKind kind = HitKind::kSub;
    std::uint64_t tests_saved = 0;
    bool zero_test_exact = false;
  };

  /// A deferred admission: a fully-prepared cache entry (query copy,
  /// features, WL digest, answer and validity snapshots — all computed in
  /// the read phase to keep the exclusive section minimal), stamped with
  /// the watermark the read phase observed so a drain that happens after
  /// further dataset changes can tell how stale the knowledge is.
  struct AdmissionOffer {
    std::unique_ptr<CachedQuery> entry;
    LogSeq observed_watermark = 0;
  };

  /// Everything one query defers from its read phase.
  struct PendingMaintenance {
    std::uint64_t query_id = 0;
    std::vector<HitCredit> credits;
    std::optional<AdmissionOffer> offer;
  };

  /// True when the next read phase must not start yet: the change log
  /// moved past the cache watermark, or the FTV index lags. Requires at
  /// least the shared lock.
  bool NeedsSyncLocked() const;

  /// Dataset Manager sync: reconcile unprocessed change-log records with
  /// the cache (Algorithms 1 + 2 for CON; full purge for EVI), then bring
  /// the FTV index up to date. Requires the exclusive lock.
  void SyncWithDatasetLocked(QueryMetrics* metrics);

  /// Applies every queued batch — credits summed per entry across the
  /// drain, then each admission offer — and runs replacement at most
  /// once. Requires the exclusive lock.
  void DrainMaintenanceLocked();

  /// Sums the hit credits of `batches` per entry, in first-credit order.
  static std::vector<CacheManager::EntryCreditSum> SumCredits(
      std::span<const PendingMaintenance> batches);

  /// Applies one batch's admission offer (forward-validated or dropped
  /// when stale); credits are applied separately via CreditHitsBatched.
  /// Requires the exclusive lock.
  void ApplyMaintenanceLocked(PendingMaintenance& batch);

  /// §8 future-work extension: re-verify up to `budget` invalidated
  /// (entry, live graph) pairs, restoring validity with fresh knowledge.
  /// Requires the exclusive lock.
  void RetrospectiveRefresh(std::size_t budget);

  GraphDataset* dataset_;
  GraphCachePlusOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<FtvIndex> ftv_;
  MethodM method_m_;
  std::unique_ptr<SubgraphMatcher> internal_matcher_;
  HitDiscovery discovery_;

  /// Guards cache_, watermark_, ftv_ mutation and the dataset: read
  /// phases hold it shared, maintenance/sync/dataset changes exclusive.
  mutable std::shared_mutex mu_;
  CacheManager cache_;
  LogSeq watermark_ = 0;

  /// Read phases enqueue here; drains happen under the exclusive lock.
  BoundedMpscQueue<PendingMaintenance> pending_;

  std::atomic<std::uint64_t> query_counter_{0};

  /// Guards aggregate_ — per-thread QueryMetrics merge through here.
  mutable std::mutex agg_mu_;
  AggregateMetrics aggregate_;
};

}  // namespace gcp

#endif  // GCP_CORE_GRAPHCACHE_PLUS_HPP_
