// GraphCachePlus — the GC+ system facade (paper §4).
//
// Wires the four subsystems together:
//   Dataset Manager  — the GraphDataset + Log Analyzer (Algorithm 1);
//   Cache Manager    — cache/window stores, statistics, replacement,
//                      Cache Validator (Algorithm 2);
//   Query Processing Runtime — GC+sub/GC+super processors, Candidate Set
//                      Pruner, metrics monitor;
//   Method M         — the external SI verifier being expedited.
//
// Per query g (paper §4): the Dataset Manager first reconciles recent
// dataset changes with the cache (EVI: purge; CON: validate); the
// processors discover hits; the pruner reduces CS_M(g); Method M verifies
// the remaining candidates; the answer is assembled (formula (3)); the
// executed query enters the admission window and replacement may run —
// accounted as maintenance overhead, off the query's critical path.

#ifndef GCP_CORE_GRAPHCACHE_PLUS_HPP_
#define GCP_CORE_GRAPHCACHE_PLUS_HPP_

#include <memory>
#include <vector>

#include "cache/cache_manager.hpp"
#include "common/thread_pool.hpp"
#include "core/method_m.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/processors.hpp"
#include "dataset/dataset.hpp"
#include "ftv/ftv_index.hpp"

namespace gcp {

/// Answer and accounting of one query execution.
struct QueryResult {
  /// Ids of dataset graphs in the answer set, ascending.
  std::vector<GraphId> answer;
  QueryMetrics metrics;
};

/// \brief The GC+ caching system.
class GraphCachePlus {
 public:
  /// `dataset` must outlive the instance. Changes to the dataset between
  /// queries are picked up through its change log.
  GraphCachePlus(GraphDataset* dataset, GraphCachePlusOptions options);

  /// Executes a subgraph query: all live G with g ⊆ G.
  QueryResult SubgraphQuery(const Graph& g) {
    return Query(g, QueryKind::kSubgraph);
  }

  /// Executes a supergraph query: all live G with G ⊆ g.
  QueryResult SupergraphQuery(const Graph& g) {
    return Query(g, QueryKind::kSupergraph);
  }

  /// Executes a query of the given kind.
  QueryResult Query(const Graph& g, QueryKind kind);

  /// Cumulative metrics since construction or the last ResetAggregate()
  /// (benches reset after warm-up, mirroring the paper's one-window
  /// warm-up).
  const AggregateMetrics& aggregate() const { return aggregate_; }
  void ResetAggregate() { aggregate_ = AggregateMetrics(); }

  /// Persists the warm cache (entries + the change-log watermark they are
  /// consistent with). A later process over the same dataset lineage can
  /// LoadCache and skip the cold start.
  Status SaveCache(const std::string& path) const;

  /// Restores a snapshot saved by SaveCache. The dataset's change log
  /// must still contain every record after the snapshot's watermark; the
  /// incremental suffix is reconciled on the next query (Algorithms 1+2
  /// for CON, purge for EVI), so stale snapshots remain exact.
  Status LoadCache(const std::string& path);

  CacheManager& cache_manager() { return cache_; }
  const CacheManager& cache_manager() const { return cache_; }
  const GraphCachePlusOptions& options() const { return options_; }
  const GraphDataset& dataset() const { return *dataset_; }
  /// The FTV index, or nullptr when options().use_ftv_index is off.
  const FtvIndex* ftv_index() const { return ftv_.get(); }

 private:
  /// Dataset Manager sync: reconcile unprocessed change-log records with
  /// the cache (Algorithms 1 + 2 for CON; full purge for EVI).
  void SyncWithDataset(QueryMetrics* metrics);

  /// §8 future-work extension: re-verify up to `budget` invalidated
  /// (entry, live graph) pairs, restoring validity with fresh knowledge.
  void RetrospectiveRefresh(std::size_t budget);

  GraphDataset* dataset_;
  GraphCachePlusOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<FtvIndex> ftv_;
  MethodM method_m_;
  std::unique_ptr<SubgraphMatcher> internal_matcher_;
  HitDiscovery discovery_;
  CacheManager cache_;
  LogSeq watermark_ = 0;
  std::uint64_t query_counter_ = 0;
  AggregateMetrics aggregate_;
};

}  // namespace gcp

#endif  // GCP_CORE_GRAPHCACHE_PLUS_HPP_
