// GraphCachePlus — the GC+ system facade (paper §4).
//
// Wires the four subsystems together:
//   Dataset Manager  — the GraphDataset + Log Analyzer (Algorithm 1);
//   Cache Manager    — cache/window stores, statistics, replacement,
//                      Cache Validator (Algorithm 2);
//   Query Processing Runtime — GC+sub/GC+super processors, Candidate Set
//                      Pruner, metrics monitor;
//   Method M         — the external SI verifier being expedited.
//
// Per query g (paper §4): the Dataset Manager first reconciles recent
// dataset changes with the cache (EVI: purge; CON: validate); the
// processors discover hits; the pruner reduces CS_M(g); Method M verifies
// the remaining candidates; the answer is assembled (formula (3)); the
// executed query enters the admission window and replacement may run —
// accounted as maintenance overhead, off the query's critical path.
//
// Concurrency (PR 4): two lock levels.
//   * The ENGINE lock (mu_) guards the dataset, the change-log watermark
//     and the FTV index. Read phases hold it shared; dataset mutations,
//     syncs and snapshot restores hold it exclusive — those are the
//     stop-the-world barriers, which additionally take every shard lock.
//   * The cache stores are partitioned into N digest-sharded
//     CacheManager stores (cache/sharded_cache.hpp), each behind its own
//     shared_mutex. Hit discovery takes all shard locks shared (only for
//     the discovery+pruning slice of the read phase — Method M
//     verification, the dominant cost, runs outside them); a maintenance
//     drain takes exactly ONE shard lock exclusive, so a drain on shard k
//     never blocks discovery or drains on shard j.
// Deferred mutations (id-based hit credits, watermark-stamped admission
// offers) are routed by entry digest to per-shard bounded MPSC queues.
// Drains happen (a) opportunistically after a query (per-shard try-lock),
// (b) on the dedicated maintenance thread (options.maintenance_thread)
// woken by queue pressure or a timer, and (c) inline under backpressure
// when a shard queue is full.
// Invariants (PR 2's, preserved per shard):
//   1. Answers are exact: a read phase observes a dataset+cache state
//      that is internally consistent (the recheck loop re-syncs before
//      reading whenever the change log moved past the cache watermark),
//      and cache contents only ever prune or transfer — never alter —
//      the answer (Theorems 3/6).
//   2. Deferred knowledge is never admitted as fresher than it is: an
//      admission offer carries the watermark its answer was computed at;
//      at drain time a stale offer is forward-validated through
//      Algorithms 1+2 (CON) or dropped (EVI), per shard.
//   3. Dataset mutations go through ApplyDatasetChanges once queries run
//      concurrently, making every change atomic w.r.t. read phases.
// Lock order: engine lock before shard locks; shard locks in ascending
// index order; never the reverse.

#ifndef GCP_CORE_GRAPHCACHE_PLUS_HPP_
#define GCP_CORE_GRAPHCACHE_PLUS_HPP_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "cache/cache_manager.hpp"
#include "cache/sharded_cache.hpp"
#include "common/maintenance_thread.hpp"
#include "common/mpsc_queue.hpp"
#include "common/thread_pool.hpp"
#include "core/method_m.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/processors.hpp"
#include "dataset/dataset.hpp"
#include "ftv/ftv_index.hpp"

namespace gcp {

/// Answer and accounting of one query execution.
struct QueryResult {
  /// Ids of dataset graphs in the answer set, ascending.
  std::vector<GraphId> answer;
  QueryMetrics metrics;
};

/// \brief The GC+ caching system.
class GraphCachePlus {
 public:
  /// `dataset` must outlive the instance. Changes to the dataset between
  /// queries are picked up through its change log.
  GraphCachePlus(GraphDataset* dataset, GraphCachePlusOptions options);

  /// Stops the maintenance thread (if any); queued-but-undrained batches
  /// are discarded with the stores.
  ~GraphCachePlus();

  /// Executes a subgraph query: all live G with g ⊆ G.
  QueryResult SubgraphQuery(const Graph& g) {
    return Query(g, QueryKind::kSubgraph);
  }

  /// Executes a supergraph query: all live G with G ⊆ g.
  QueryResult SupergraphQuery(const Graph& g) {
    return Query(g, QueryKind::kSupergraph);
  }

  /// Executes a query of the given kind. Thread-safe: any number of
  /// threads may query one instance concurrently, provided concurrent
  /// dataset mutations go through ApplyDatasetChanges.
  QueryResult Query(const Graph& g, QueryKind kind);

  /// Runs `fn(dataset)` under the engine exclusive lock with every shard
  /// lock held (the stop-the-world barrier), after draining pending
  /// maintenance: concurrent read phases never observe a half-applied
  /// change. The only safe way to mutate the dataset while queries are in
  /// flight (single-threaded callers may keep mutating the dataset
  /// directly between queries).
  void ApplyDatasetChanges(const std::function<void(GraphDataset&)>& fn);

  /// Drains every queued maintenance batch on every shard, bringing the
  /// cache to a quiescent state (exposed for tests, snapshots, benches).
  void FlushMaintenance();

  /// Cumulative metrics since construction or the last ResetAggregate()
  /// (benches reset after warm-up, mirroring the paper's one-window
  /// warm-up). Safe only when no queries are in flight; use
  /// AggregateSnapshot() concurrently.
  const AggregateMetrics& aggregate() const { return aggregate_; }
  void ResetAggregate();

  /// Thread-safe copy of the aggregate metrics.
  AggregateMetrics AggregateSnapshot() const;

  /// Persists the warm cache (entries + the change-log watermark they are
  /// consistent with). A later process over the same dataset lineage can
  /// LoadCache and skip the cold start. Queued-but-undrained admissions
  /// are not part of the snapshot (call FlushMaintenance first to include
  /// them).
  Status SaveCache(const std::string& path) const;

  /// Restores a snapshot saved by SaveCache (entries re-routed to their
  /// digest's home shard). The dataset's change log must still contain
  /// every record after the snapshot's watermark; the incremental suffix
  /// is reconciled on the next query (Algorithms 1+2 for CON, purge for
  /// EVI), so stale snapshots remain exact.
  Status LoadCache(const std::string& path);

  /// Shard 0's store — the full cache when options().num_shards == 1 (the
  /// default), one slice otherwise. Sharded callers use cache_shards() /
  /// CacheStatsSnapshot().
  CacheManager& cache_manager() { return cache_.shard(0); }
  const CacheManager& cache_manager() const { return cache_.shard(0); }

  /// The sharded store router (shard access, lock-violation counter).
  ShardedCache& cache_shards() { return cache_; }
  const ShardedCache& cache_shards() const { return cache_; }

  /// Thread-safe cross-shard sum of the cache statistics counters.
  StatisticsManager CacheStatsSnapshot() const;

  /// The maintenance thread, or nullptr when options().maintenance_thread
  /// is off (introspection for tests/benches).
  const MaintenanceThread* maintenance_thread() const {
    return maintenance_.get();
  }

  const GraphCachePlusOptions& options() const { return options_; }
  const GraphDataset& dataset() const { return *dataset_; }
  /// The FTV index, or nullptr when options().use_ftv_index is off.
  const FtvIndex* ftv_index() const { return ftv_.get(); }

 private:
  /// One deferred hit credit: entry id + benefit, applied at drain time
  /// by CacheManager::CreditHitsBatched. Id-based on purpose — the entry
  /// may have been evicted by the time the credit lands.
  struct HitCredit {
    CacheEntryId id = 0;
    HitKind kind = HitKind::kSub;
    std::uint64_t tests_saved = 0;
    bool zero_test_exact = false;
  };

  /// A deferred admission: a fully-prepared cache entry (query copy,
  /// features, WL digest, answer and validity snapshots — all computed in
  /// the read phase to keep the exclusive section minimal), stamped with
  /// the watermark the read phase observed so a drain that happens after
  /// further dataset changes can tell how stale the knowledge is.
  struct AdmissionOffer {
    std::unique_ptr<CachedQuery> entry;
    LogSeq observed_watermark = 0;
  };

  /// Everything one query defers to ONE shard: the credits for entries
  /// homed there plus (at most) the admission offer routed there by the
  /// query's digest.
  struct PendingMaintenance {
    std::uint64_t query_id = 0;
    std::vector<HitCredit> credits;
    std::optional<AdmissionOffer> offer;
  };

  /// True when the next read phase must not start yet: the change log
  /// moved past the cache watermark, or the FTV index lags. Requires at
  /// least the engine shared lock.
  bool NeedsSyncLocked() const;

  /// Dataset Manager sync: reconcile unprocessed change-log records with
  /// the cache (Algorithms 1 + 2 for CON; full purge for EVI), then bring
  /// the FTV index up to date. Requires the engine exclusive lock; takes
  /// every shard lock (stop-the-world).
  void SyncWithDatasetLocked(QueryMetrics* metrics);

  /// Drains shard `s`'s queue and applies it — credits summed per entry,
  /// offers dedup-probed/validated/admitted, replacement at most once.
  /// Requires shard `s`'s exclusive lock plus the engine lock (shared
  /// suffices; exclusive on the stop-the-world paths).
  void DrainShardLocked(std::size_t s);

  /// Per-shard drain entry point for the post-query and maintenance-
  /// thread paths: engine shared lock held by the caller; takes shard
  /// `s`'s exclusive lock under a DrainScope. With `try_lock`, gives up
  /// (returns false) when the shard lock is contended.
  bool DrainShard(std::size_t s, bool try_lock);

  /// Drains every shard under the engine exclusive lock (stop-the-world
  /// paths: sync, dataset change, flush, restore).
  void DrainAllShardsLocked();

  /// Maintenance-thread body: drain every shard with a non-empty queue
  /// under the engine shared lock, one shard lock at a time.
  void MaintenanceDrainPass();

  /// Sums the hit credits of `batches` per entry, in first-credit order.
  static std::vector<CacheManager::EntryCreditSum> SumCredits(
      std::span<const PendingMaintenance> batches);

  /// Applies one batch's admission offer to shard `s` (dedup-dropped when
  /// an isomorphic fully-valid twin is resident; forward-validated or
  /// dropped when stale). Requires shard `s`'s exclusive lock + engine
  /// lock.
  void ApplyMaintenanceLocked(std::size_t s, PendingMaintenance& batch);

  /// True when shard `s` already holds an entry isomorphic to `entry`
  /// (same kind, same WL digest, equal counts, containment) that is fully
  /// valid over the live dataset — the §6.3 exact-hit precondition, which
  /// is exactly when the serial engine would not have produced this offer
  /// in the first place. Requires shard `s`'s lock + engine lock.
  bool IsDuplicateAdmissionLocked(std::size_t s,
                                  const CachedQuery& entry) const;

  /// §8 future-work extension: re-verify up to `budget` invalidated
  /// (entry, live graph) pairs, restoring validity with fresh knowledge.
  /// Requires the engine exclusive lock + all shard locks.
  void RetrospectiveRefresh(std::size_t budget);

  GraphDataset* dataset_;
  GraphCachePlusOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<FtvIndex> ftv_;
  MethodM method_m_;
  std::unique_ptr<SubgraphMatcher> internal_matcher_;
  HitDiscovery discovery_;

  /// Engine lock: guards watermark_, ftv_ mutation and the dataset. Read
  /// phases hold it shared; sync/dataset changes exclusive. Always taken
  /// before any shard lock.
  mutable std::shared_mutex mu_;
  ShardedCache cache_;
  /// Stable per-shard store pointers handed to HitDiscovery::Discover.
  std::vector<const CacheManager*> shard_ptrs_;
  LogSeq watermark_ = 0;

  /// Per-shard maintenance queues: read phases enqueue batches routed by
  /// digest; drains pop under that shard's exclusive lock.
  std::vector<std::unique_ptr<BoundedMpscQueue<PendingMaintenance>>> pending_;

  /// Dedicated drain thread (options.maintenance_thread); else null and
  /// drains happen opportunistically post-query.
  std::unique_ptr<MaintenanceThread> maintenance_;

  std::atomic<std::uint64_t> query_counter_{0};

  /// Guards aggregate_ — per-thread QueryMetrics merge through here.
  mutable std::mutex agg_mu_;
  AggregateMetrics aggregate_;
};

}  // namespace gcp

#endif  // GCP_CORE_GRAPHCACHE_PLUS_HPP_
