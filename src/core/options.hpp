// Configuration of a GraphCachePlus instance.

#ifndef GCP_CORE_OPTIONS_HPP_
#define GCP_CORE_OPTIONS_HPP_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "cache/replacement.hpp"
#include "match/matcher.hpp"

namespace gcp {

class FaultInjector;

/// The two GC+ consistency models (paper §5).
enum class CacheModel {
  kEvi,  ///< Evict the whole cache whenever the dataset changed.
  kCon,  ///< Keep per-entry validity bits refreshed by Algorithms 1 + 2.
};

std::string_view CacheModelName(CacheModel model);

/// \brief Knobs of the GC+ system. Defaults mirror the paper's setup.
struct GraphCachePlusOptions {
  /// Consistency model (the paper's EVI / CON).
  CacheModel model = CacheModel::kCon;

  /// Method M: the external SI verifier GC+ expedites (paper: VF2, VF2+,
  /// GQL).
  MatcherKind method_m = MatcherKind::kVf2;

  /// Matcher for GC+-internal query-vs-cached-query containment checks
  /// (query graphs are small; VF2+ is a good default).
  MatcherKind internal_matcher = MatcherKind::kVf2Plus;

  /// Cache / window capacities (paper defaults: 100 / 20).
  std::size_t cache_capacity = 100;
  std::size_t window_capacity = 20;

  /// Replacement policy (paper's experiments use HD).
  ReplacementPolicy policy = ReplacementPolicy::kHybrid;

  /// Caps on the number of *verified* hits each processor may exploit per
  /// query; limits cache-probe cost on hit-rich workloads. 0 = unlimited.
  std::size_t max_sub_hits = 16;
  std::size_t max_super_hits = 16;

  /// §6.3 optimal cases.
  bool enable_exact_shortcut = true;
  bool enable_empty_answer_shortcut = true;

  /// Whether executed queries are admitted to the window at all (off turns
  /// GC+ into a pass-through around Method M; useful for baselines).
  bool enable_admission = true;

  /// Equip Method M with the updatable FTV index (src/ftv): its candidate
  /// set CS_M becomes the feature-filtered subset of the live dataset
  /// instead of the whole dataset. Orthogonal to the cache — GC+ prunes
  /// whatever CS_M Method M produces.
  bool use_ftv_index = false;

  /// Reuse per-query match state (SubgraphMatcher::Prepare) across Method
  /// M candidates and cache-resident containment checks instead of
  /// re-deriving vertex order and label statistics per pair. Off = the
  /// legacy per-pair hot path (kept for before/after benchmarking).
  bool reuse_match_context = true;

  /// Discover cache hits through the QueryIndex's inverted
  /// feature-signature index instead of the O(resident) brute-force
  /// feature scan. Both return identical candidate sets; off is the
  /// legacy discovery path (kept for before/after benchmarking).
  bool use_discovery_index = true;

  /// Deep-copy each discovery survivor's Graph under the shard lock
  /// instead of sharing ownership of the resident graph (the pre-PR 6
  /// behaviour). The deep-copy path is the equivalence oracle for shared
  /// ownership; StatisticsManager::shard_lock_graph_copies counts these
  /// copies, so it must be zero whenever this is off.
  bool copy_discovery_survivors = false;

  /// Reconcile CON/EVI change batches through the change-relevance index
  /// (cache/relevance_index): Algorithm 2's counter loop runs only over
  /// entries whose CGvalid footprint intersects the batch; everything
  /// else provably keeps its bits and is skipped. Off is the brute-force
  /// ValidateAll oracle (bit-exact by construction; kept for
  /// before/after benchmarking and equivalence gates).
  bool use_relevance_index = true;

  /// Sub-pattern fragment cache: decompose each subgraph query into
  /// canonical one-hop star fragments (match/fragments), cache
  /// per-fragment candidate bitsets beside the whole-query entries, and
  /// on a whole-query miss intersect the valid fragment non-answers out
  /// of Method M's candidate set — a pruning tier between the FTV filter
  /// and sub-iso verification. Pruning-only: a stale or missing fragment
  /// can never change an answer, so off is the bit-exact oracle (same
  /// answers, same resident whole-query state, same replacement
  /// decisions; kept for before/after benchmarking).
  bool use_fragment_cache = true;

  /// Total fragment-store capacity across all shards (entries). 0
  /// disables the store outright even when use_fragment_cache is set.
  std::size_t fragment_capacity = 256;

  /// Cap on star fragments decomposed per query (largest stars first;
  /// the decomposition order is permutation-invariant).
  std::size_t max_fragments_per_query = 8;

  /// Delta re-validation, CON only: for each (entry, dataset-graph) pair
  /// Algorithm 2 would invalidate, first try to prove the cached
  /// relation unchanged from the batch's edge-label-pair delta (the bit
  /// stays valid), and otherwise re-verify the pair with one full
  /// containment check against the batch-target graph state (the bit
  /// becomes valid with a fresh answer) instead of fading it. Keeps
  /// more of the cache hot under churn at reconcile-time verification
  /// cost. Answers stay exact either way; off preserves Algorithm 2's
  /// fade-only behaviour bit-exactly.
  bool delta_revalidation = false;

  /// Retrospective validation (the paper's §8 future-work optimisation),
  /// CON only: after Algorithm 2 fades validity bits, spend up to this
  /// many sub-iso re-verifications per dataset sync restoring them —
  /// re-testing invalidated (cached query, live graph) pairs against the
  /// *current* graph so the pair becomes known again instead of falling
  /// back to Method M at query time. Runs off the query critical path
  /// (accounted as validation overhead). 0 disables.
  std::size_t retrospective_budget = 0;

  /// Worker threads for Method M verification (1 = serial).
  std::size_t verify_threads = 1;

  /// Capacity of each per-shard bounded MPSC maintenance queue that
  /// decouples the shared-lock read phase from the per-shard maintenance
  /// phase. A query whose deferred mutations find a shard's queue full
  /// applies backpressure: it takes that shard's exclusive lock and
  /// drains inline.
  std::size_t maintenance_queue_capacity = 64;

  /// Epoch-protected read path: the engine publishes an immutable
  /// EngineSnapshot (dataset version, watermark, live mask, graphs, FTV
  /// view) through one atomic pointer; query read phases pin an epoch and
  /// read the snapshot instead of taking the engine lock — engine-lock
  /// acquisitions on the read path drop to zero. Dataset mutations apply
  /// the change, publish the successor snapshot, retire the predecessor
  /// under a grace period, and reconcile CON/EVI validity shard-by-shard
  /// under per-shard exclusive locks (no stop-the-world barrier). Off
  /// preserves the PR 4 lock path bit-exactly (same answers and
  /// replacement decisions) — the equivalence oracle.
  bool epoch_reads = false;

  /// Number of digest-sharded cache stores. Each shard owns its slice of
  /// the entries, inverted postings, statistics and replacement state
  /// under its own reader/writer lock, so a maintenance drain on one
  /// shard never blocks hit discovery on another. 1 reproduces the PR 2/3
  /// single-store engine bit-exactly (same admission order, same
  /// replacement decisions).
  std::size_t num_shards = 1;

  /// Run a dedicated maintenance thread that drains shard queues on
  /// queue-pressure or a timer, instead of the opportunistic post-query
  /// try-lock drain. Takes query tail latency off the hook for drains.
  bool maintenance_thread = false;

  /// Timer period of the maintenance thread (also the staleness bound on
  /// a queued batch when no pressure wakeup fires).
  std::size_t maintenance_interval_us = 200;

  /// Directory for durable cache checkpoints. Empty disables durability
  /// entirely: no background checkpoints, CheckpointNow/WarmRestart return
  /// FailedPrecondition.
  std::string checkpoint_dir;

  /// Background checkpoint period (µs), driven from the maintenance
  /// thread's drain loop. 0 disables background checkpointing (explicit
  /// CheckpointNow still works whenever checkpoint_dir is set). Requires
  /// maintenance_thread for background operation.
  std::size_t checkpoint_interval_us = 0;

  /// Committed checkpoint siblings to keep in checkpoint_dir. At least 2
  /// gives torn-write recovery a last-good file to degrade to.
  std::size_t checkpoint_keep = 2;

  /// Fault-injection hook threaded into every checkpoint file operation
  /// (tests only; nullptr in production). Not owned; must outlive the
  /// engine.
  FaultInjector* checkpoint_fault_injector = nullptr;

  /// Byte-accounted capacity model: a cap on the approximate resident
  /// graph+bitset bytes of the cache (summed across shards; ceil-split
  /// per shard, with 1/8 of each shard's slice carved out for its
  /// fragment store when fragments are on). Evictions the budget forces
  /// rank by utility-per-byte (paper R ÷ footprint); the entry-count caps
  /// above still apply first, so a budget that never binds reproduces the
  /// entry-count engine bit-exactly. Also arms the pressure monitor:
  /// ELEVATED pressure sheds new admission offers, CRITICAL additionally
  /// serves queries straight through uncached Method M. 0 = off (the
  /// legacy entry-count model, no monitor).
  std::size_t byte_budget = 0;

  /// Seed for cache-internal randomness (RANDOM policy).
  std::uint64_t rng_seed = 7;
};

}  // namespace gcp

#endif  // GCP_CORE_OPTIONS_HPP_
