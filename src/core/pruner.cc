#include "core/pruner.hpp"

#include <cassert>

namespace gcp {

PruneOutcome CandidateSetPruner::Prune(const DiscoveredHits& hits,
                                       const DynamicBitset& csm,
                                       QueryMetrics* metrics) {
  PruneOutcome out;
  const std::size_t horizon = csm.size();

  // §6.3 case 1 — exact hit: the cached answer restricted to the live
  // dataset is the final answer; every sub-iso test is alleviated.
  if (hits.exact.has_value()) {
    assert(hits.exact->answer.size() == horizon);
    out.direct = true;
    out.answer_direct = DynamicBitset::And(hits.exact->answer, csm);
    out.candidates = DynamicBitset(horizon);
    out.saved_positive = csm.Count();
    if (metrics != nullptr) {
      metrics->tests_saved_sub += out.saved_positive;
      metrics->candidates_final = 0;
    }
    return out;
  }

  // §6.3 case 2 — empty-answer proof: the answer is provably empty.
  if (hits.empty_proof.has_value()) {
    out.direct = true;
    out.answer_direct = DynamicBitset(horizon);
    out.candidates = DynamicBitset(horizon);
    out.saved_pruning = csm.Count();
    if (metrics != nullptr) {
      metrics->tests_saved_super += out.saved_pruning;
      metrics->candidates_final = 0;
    }
    return out;
  }

  // Formula (1): union of still-valid positive results.
  DynamicBitset answer_direct(horizon);
  for (const DiscoveredHit& e : hits.positive) {
    assert(e.valid.size() == horizon && e.answer.size() == horizon);
    answer_direct.OrWith(DynamicBitset::And(e.valid, e.answer));
  }

  // Formula (2): remove direct answers from the candidate set. (The
  // theorems guarantee answer_direct ⊆ csm for live graphs — validated by
  // the test suite rather than re-masked here, keeping the algebra
  // faithful to the paper.)
  DynamicBitset candidates = DynamicBitset::AndNot(csm, answer_direct);
  out.saved_positive = csm.Count() - candidates.Count();

  // Formula (5): intersect with each pruning hit's possible-answer set
  // (formula (4): complement of validity ∪ answers).
  for (const DiscoveredHit& e : hits.pruning) {
    assert(e.valid.size() == horizon && e.answer.size() == horizon);
    DynamicBitset possible = DynamicBitset::Not(e.valid);
    possible.OrWith(e.answer);
    candidates.AndWith(possible);
  }
  out.saved_pruning = csm.Count() - out.saved_positive - candidates.Count();

  out.answer_direct = std::move(answer_direct);
  out.candidates = std::move(candidates);
  if (metrics != nullptr) {
    metrics->tests_saved_sub += out.saved_positive;
    metrics->tests_saved_super += out.saved_pruning;
    metrics->candidates_final = out.candidates.Count();
  }
  return out;
}

}  // namespace gcp
