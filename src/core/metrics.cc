#include "core/metrics.hpp"

#include <sstream>

namespace gcp {

void AggregateMetrics::Add(const QueryMetrics& m) {
  ++queries;
  si_tests += m.si_tests;
  tests_saved_sub += m.tests_saved_sub;
  tests_saved_super += m.tests_saved_super;
  if (m.exact_hit) {
    ++exact_hits;
    if (m.si_tests == 0) ++exact_hits_zero_test;
  }
  if (m.empty_shortcut) ++empty_shortcuts;
  sub_hits += m.sub_hits;
  super_hits += m.super_hits;
  fragment_hits += m.fragment_hits;
  fragment_computed += m.fragment_computed;
  fragment_intersections += m.fragment_intersections;
  fragment_candidates_pruned += m.fragment_candidates_pruned;
  t_validate_ns += m.t_validate_ns;
  t_index_ns += m.t_index_ns;
  t_probe_ns += m.t_probe_ns;
  t_discover_ns += m.t_discover_ns;
  t_prune_ns += m.t_prune_ns;
  t_fragment_ns += m.t_fragment_ns;
  t_verify_ns += m.t_verify_ns;
  t_maintenance_ns += m.t_maintenance_ns;
  t_query_ns += m.QueryTimeNs();
}

double AggregateMetrics::ValidationShareOfOverhead() const {
  const double total =
      static_cast<double>(t_validate_ns) + static_cast<double>(t_maintenance_ns);
  if (total <= 0.0) return 0.0;
  return static_cast<double>(t_validate_ns) / total;
}

std::string AggregateMetrics::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " si_tests=" << si_tests
     << " saved_sub=" << tests_saved_sub << " saved_super=" << tests_saved_super
     << " exact_hits=" << exact_hits << " empty_shortcuts=" << empty_shortcuts
     << " sub_hits=" << sub_hits << " super_hits=" << super_hits
     << " fragment_hits=" << fragment_hits
     << " fragment_pruned=" << fragment_candidates_pruned
     << " avg_query_ms=" << AvgQueryTimeMs()
     << " avg_overhead_ms=" << AvgOverheadMs();
  return os.str();
}

}  // namespace gcp
