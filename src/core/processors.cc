#include "core/processors.hpp"

#include <algorithm>
#include <memory>

#include "common/stopwatch.hpp"

namespace gcp {

namespace {

CachedQueryKind ToCachedKind(QueryKind kind) {
  return kind == QueryKind::kSubgraph ? CachedQueryKind::kSubgraph
                                      : CachedQueryKind::kSupergraph;
}

// Standalone benefit of a positive hit: live graphs whose answer
// membership transfers without a sub-iso test (|live ∩ valid ∩ answer|).
std::size_t PositiveUtility(const CachedQuery& e, const DynamicBitset& live) {
  if (e.valid.size() != live.size()) return 0;
  return DynamicBitset::And(e.valid, e.answer).CountAnd(live);
}

// Standalone benefit of a pruning hit: live graphs eliminated from the
// candidate set by valid negative results (|live ∩ valid ∩ ¬answer|).
std::size_t PruningUtility(const CachedQuery& e, const DynamicBitset& live) {
  if (e.valid.size() != live.size()) return 0;
  return DynamicBitset::AndNot(e.valid, e.answer).CountAnd(live);
}

// True iff the entry's validity indicator covers every live graph —
// precondition for both §6.3 optimal cases.
bool FullyValid(const CachedQuery& e, const DynamicBitset& live) {
  return e.valid.size() == live.size() && live.IsSubsetOf(e.valid);
}

// True iff the entry's answer is empty over the live dataset.
bool EmptyLiveAnswer(const CachedQuery& e, const DynamicBitset& live) {
  return e.answer.size() == live.size() && !e.answer.Intersects(live);
}

// Moves the bitsets out of the (consumed) candidate — each candidate
// yields at most one hit.
DiscoveredHit TakeHit(HitDiscovery::Candidate& c) {
  DiscoveredHit hit;
  hit.id = c.id;
  hit.digest = c.digest;
  hit.answer = std::move(c.answer);
  hit.valid = std::move(c.valid);
  return hit;
}

}  // namespace

void HitDiscovery::CollectShard(const Graph& g, const GraphFeatures& features,
                                QueryKind kind, const CacheManager& shard,
                                const DynamicBitset& live,
                                std::vector<Candidate>* out,
                                QueryMetrics* metrics) const {
  const CachedQueryKind ckind = ToCachedKind(kind);

  // GC+sub processor shortlist: cached g' with (possibly) g ⊆ g'.
  // GC+super processor shortlist: cached g'' with (possibly) g'' ⊆ g.
  // The shard's inverted feature-signature index (or brute-force scan on
  // the legacy path — identical candidate sets) supplies the postings.
  std::vector<const CachedQuery*> sub_candidates;
  std::vector<const CachedQuery*> super_candidates;
  {
    std::int64_t unused_ns = 0;
    ScopedTimer discover_timer(metrics != nullptr ? &metrics->t_discover_ns
                                                  : &unused_ns);
    const QueryIndex& index = shard.index();
    sub_candidates = options_.use_discovery_index
                         ? index.SupergraphCandidates(features)
                         : index.SupergraphCandidatesScan(features);
    super_candidates = options_.use_discovery_index
                           ? index.SubgraphCandidates(features)
                           : index.SubgraphCandidatesScan(features);
  }

  // Resolve processor outputs into positive/pruning roles: for subgraph
  // queries GC+sub hits are positive; for supergraph queries the roles
  // flip (§6: "supergraph queries follow the exact inverse logic").
  const bool positive_from_sub = (kind == QueryKind::kSubgraph);

  // Prescreen: drop wrong-kind entries and zero-utility candidates that
  // can serve no §6.3 shortcut; copy the survivors so nothing references
  // the shard after its lock is dropped. An entry may survive in both
  // roles (it is then copied twice, once per role — rare by
  // construction: it must pass both direction shortlists).
  auto keep = [&](const CachedQuery* e, bool positive_role) {
    if (e->kind != ckind) return;
    Candidate c;
    c.positive_role = positive_role;
    if (positive_role) {
      c.utility = PositiveUtility(*e, live);
      c.maybe_exact = options_.enable_exact_shortcut &&
                      e->query->NumVertices() == g.NumVertices() &&
                      e->query->NumEdges() == g.NumEdges();
      if (c.utility == 0 && !c.maybe_exact) return;
    } else {
      c.utility = PruningUtility(*e, live);
      c.empty_eligible = options_.enable_empty_answer_shortcut &&
                         EmptyLiveAnswer(*e, live) && FullyValid(*e, live);
      if (c.utility == 0 && !c.empty_eligible) return;
    }
    // The graph is immutable after admission: survivors share ownership
    // (a refcount bump under the shard lock) instead of deep-copying it.
    // The bitsets ARE deep-copied — the validator rewrites them in place
    // under the exclusive shard lock, so they cannot be shared.
    if (options_.copy_discovery_survivors) {
      c.query = std::make_shared<const Graph>(*e->query);  // oracle path
      graph_copies_.fetch_add(1, std::memory_order_relaxed);
    } else {
      c.query = e->query;
    }
    c.answer = e->answer;
    c.valid = e->valid;
    c.id = e->id;
    c.digest = e->digest;
    out->push_back(std::move(c));
  };
  for (const CachedQuery* e : (positive_from_sub ? sub_candidates
                                                 : super_candidates)) {
    keep(e, /*positive_role=*/true);
  }
  for (const CachedQuery* e : (positive_from_sub ? super_candidates
                                                 : sub_candidates)) {
    keep(e, /*positive_role=*/false);
  }
}

DiscoveredHits HitDiscovery::ResolveHits(const Graph& g, QueryKind kind,
                                         std::vector<Candidate> candidates,
                                         const DynamicBitset& live,
                                         QueryMetrics* metrics) const {
  DiscoveredHits hits;
  const bool positive_from_sub = (kind == QueryKind::kSubgraph);

  // One global ordering over the merged pool: descending utility, ties on
  // (WL digest, entry id) so the verification order — and with it which
  // hits the caps select — does not depend on candidate enumeration
  // order, i.e. on how entries are distributed across shards (entry ids
  // are per-shard sequences, so they only disambiguate digest
  // collisions).
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const Candidate& ca = candidates[a];
                     const Candidate& cb = candidates[b];
                     if (ca.utility != cb.utility)
                       return ca.utility > cb.utility;
                     if (ca.digest != cb.digest) return ca.digest < cb.digest;
                     return ca.id < cb.id;
                   });

  // In the direction where g itself is the pattern (g ⊆ cached query) its
  // per-pattern match state is shared across every verified candidate.
  // Built lazily: miss-dominated queries (no surviving candidate in that
  // direction) never pay for the context.
  std::unique_ptr<PreparedPattern> prepared_g;
  auto prepared = [&]() -> const PreparedPattern& {
    if (prepared_g == nullptr) prepared_g = matcher_.Prepare(g);
    return *prepared_g;
  };

  const std::size_t positive_cap =
      options_.max_sub_hits == 0 ? candidates.size() : options_.max_sub_hits;
  const std::size_t pruning_cap =
      options_.max_super_hits == 0 ? candidates.size()
                                   : options_.max_super_hits;

  // Positive pool first (mirrors the serial engine: an exact hit
  // short-circuits before any pruning-direction verification happens).
  for (const std::size_t i : order) {
    Candidate& c = candidates[i];
    if (!c.positive_role) continue;
    if (hits.positive.size() >= positive_cap) break;
    // Positive direction: subgraph queries verify g ⊆ g'; supergraph
    // queries verify g'' ⊆ g.
    const bool contained =
        positive_from_sub
            ? (options_.reuse_match_context
                   ? matcher_.ContainsPrepared(prepared(), *c.query)
                   : matcher_.Contains(g, *c.query))
            : matcher_.Contains(*c.query, g);
    if (!contained) continue;
    // §6.3 case 1: equal counts + one-way containment ⇒ isomorphic; with
    // full validity the cached answer is final.
    if (c.maybe_exact && c.valid.size() == live.size() &&
        live.IsSubsetOf(c.valid)) {
      hits.exact = TakeHit(c);
      if (metrics != nullptr) metrics->exact_hit = true;
      return hits;
    }
    if (c.utility > 0) hits.positive.push_back(TakeHit(c));
  }

  for (const std::size_t i : order) {
    Candidate& c = candidates[i];
    if (c.positive_role) continue;
    if (hits.pruning.size() >= pruning_cap) break;
    const bool useful_for_empty_proof =
        c.empty_eligible && !hits.empty_proof.has_value();
    if (c.utility == 0 && !useful_for_empty_proof) continue;
    // Pruning direction: subgraph queries verify g'' ⊆ g; supergraph
    // queries verify g ⊆ g'.
    const bool contained =
        positive_from_sub
            ? matcher_.Contains(*c.query, g)
            : (options_.reuse_match_context
                   ? matcher_.ContainsPrepared(prepared(), *c.query)
                   : matcher_.Contains(g, *c.query));
    if (!contained) continue;
    if (useful_for_empty_proof) {
      hits.empty_proof = TakeHit(c);
      if (metrics != nullptr) metrics->empty_shortcut = true;
      return hits;
    }
    hits.pruning.push_back(TakeHit(c));
  }

  if (metrics != nullptr) {
    metrics->sub_hits = static_cast<std::uint32_t>(
        positive_from_sub ? hits.positive.size() : hits.pruning.size());
    metrics->super_hits = static_cast<std::uint32_t>(
        positive_from_sub ? hits.pruning.size() : hits.positive.size());
  }
  return hits;
}

DiscoveredHits HitDiscovery::Discover(const Graph& g, QueryKind kind,
                                      std::span<const CacheManager* const>
                                          shards,
                                      const DynamicBitset& live,
                                      QueryMetrics* metrics) const {
  const GraphFeatures features = GraphFeatures::Extract(g);
  std::vector<Candidate> pool;
  for (const CacheManager* shard : shards) {
    CollectShard(g, features, kind, *shard, live, &pool, metrics);
  }
  return ResolveHits(g, kind, std::move(pool), live, metrics);
}

}  // namespace gcp
