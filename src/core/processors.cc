#include "core/processors.hpp"

#include <algorithm>
#include <memory>

#include "common/stopwatch.hpp"

namespace gcp {

namespace {

CachedQueryKind ToCachedKind(QueryKind kind) {
  return kind == QueryKind::kSubgraph ? CachedQueryKind::kSubgraph
                                      : CachedQueryKind::kSupergraph;
}

// Standalone benefit of a positive hit: live graphs whose answer
// membership transfers without a sub-iso test (|live ∩ valid ∩ answer|).
std::size_t PositiveUtility(const CachedQuery& e, const DynamicBitset& live) {
  if (e.valid.size() != live.size()) return 0;
  return DynamicBitset::And(e.valid, e.answer).CountAnd(live);
}

// Standalone benefit of a pruning hit: live graphs eliminated from the
// candidate set by valid negative results (|live ∩ valid ∩ ¬answer|).
std::size_t PruningUtility(const CachedQuery& e, const DynamicBitset& live) {
  if (e.valid.size() != live.size()) return 0;
  return DynamicBitset::AndNot(e.valid, e.answer).CountAnd(live);
}

// True iff the entry's validity indicator covers every live graph —
// precondition for both §6.3 optimal cases.
bool FullyValid(const CachedQuery& e, const DynamicBitset& live) {
  return e.valid.size() == live.size() && live.IsSubsetOf(e.valid);
}

// True iff the entry's answer is empty over the live dataset.
bool EmptyLiveAnswer(const CachedQuery& e, const DynamicBitset& live) {
  return e.answer.size() == live.size() && !e.answer.Intersects(live);
}

// Sorts candidates by descending precomputed utility. Ties break on
// (WL digest, entry id) so the verification order — and with it which
// hits the caps select — does not depend on candidate enumeration order,
// i.e. on how entries are distributed across shards (entry ids are
// per-shard sequences, so they only disambiguate digest collisions).
void SortByUtility(std::vector<const CachedQuery*>& pool,
                   std::vector<std::size_t>& utility) {
  std::vector<std::size_t> order(pool.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    if (utility[a] != utility[b]) return utility[a] > utility[b];
    if (pool[a]->digest != pool[b]->digest) {
      return pool[a]->digest < pool[b]->digest;
    }
    return pool[a]->id < pool[b]->id;
  });
  std::vector<const CachedQuery*> sorted_pool(pool.size());
  std::vector<std::size_t> sorted_utility(pool.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted_pool[i] = pool[order[i]];
    sorted_utility[i] = utility[order[i]];
  }
  pool = std::move(sorted_pool);
  utility = std::move(sorted_utility);
}

}  // namespace

DiscoveredHits HitDiscovery::Discover(const Graph& g, QueryKind kind,
                                      std::span<const CacheManager* const>
                                          shards,
                                      const DynamicBitset& live,
                                      QueryMetrics* metrics) const {
  DiscoveredHits hits;
  const GraphFeatures features = GraphFeatures::Extract(g);
  const CachedQueryKind ckind = ToCachedKind(kind);

  // GC+sub processor shortlist: cached g' with (possibly) g ⊆ g'.
  // GC+super processor shortlist: cached g'' with (possibly) g'' ⊆ g.
  // Each shard's inverted feature-signature index (or brute-force scan on
  // the legacy path — identical candidate sets) contributes its postings;
  // the merged pool then goes through one utility ordering, so the caps
  // pick the same hits however the entries are distributed.
  std::vector<const CachedQuery*> sub_candidates;
  std::vector<const CachedQuery*> super_candidates;
  {
    std::int64_t unused_ns = 0;
    ScopedTimer discover_timer(metrics != nullptr ? &metrics->t_discover_ns
                                                  : &unused_ns);
    for (const CacheManager* shard : shards) {
      const QueryIndex& index = shard->index();
      auto append = [](std::vector<const CachedQuery*>& out,
                       std::vector<const CachedQuery*> part) {
        if (out.empty()) {
          out = std::move(part);
        } else {
          out.insert(out.end(), part.begin(), part.end());
        }
      };
      append(sub_candidates, options_.use_discovery_index
                                 ? index.SupergraphCandidates(features)
                                 : index.SupergraphCandidatesScan(features));
      append(super_candidates, options_.use_discovery_index
                                   ? index.SubgraphCandidates(features)
                                   : index.SubgraphCandidatesScan(features));
    }
  }

  // In the direction where g itself is the pattern (g ⊆ cached query) its
  // per-pattern match state is shared across every verified candidate.
  // Built lazily: miss-dominated queries (no surviving candidate in that
  // direction) never pay for the context.
  std::unique_ptr<PreparedPattern> prepared_g;
  auto prepared = [&]() -> const PreparedPattern& {
    if (prepared_g == nullptr) prepared_g = matcher_.Prepare(g);
    return *prepared_g;
  };

  // Resolve processor outputs into positive/pruning roles: for subgraph
  // queries GC+sub hits are positive; for supergraph queries the roles
  // flip (§6: "supergraph queries follow the exact inverse logic").
  const bool positive_from_sub = (kind == QueryKind::kSubgraph);
  std::vector<const CachedQuery*>& positive_pool =
      positive_from_sub ? sub_candidates : super_candidates;
  std::vector<const CachedQuery*>& pruning_pool =
      positive_from_sub ? super_candidates : sub_candidates;

  // Drop wrong-kind entries, precompute standalone utilities, and verify
  // highest-utility candidates first so the hit caps spend exact
  // containment checks where they pay off most.
  auto prepare = [&](std::vector<const CachedQuery*>& pool, auto utility_fn,
                     std::vector<std::size_t>& utility) {
    std::vector<const CachedQuery*> filtered;
    filtered.reserve(pool.size());
    for (const CachedQuery* e : pool) {
      if (e->kind == ckind) filtered.push_back(e);
    }
    pool = std::move(filtered);
    utility.resize(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      utility[i] = utility_fn(*pool[i], live);
    }
    SortByUtility(pool, utility);
  };
  std::vector<std::size_t> positive_utility;
  std::vector<std::size_t> pruning_utility;
  prepare(positive_pool, PositiveUtility, positive_utility);
  prepare(pruning_pool, PruningUtility, pruning_utility);

  const std::size_t positive_cap =
      options_.max_sub_hits == 0 ? positive_pool.size() : options_.max_sub_hits;
  const std::size_t pruning_cap = options_.max_super_hits == 0
                                      ? pruning_pool.size()
                                      : options_.max_super_hits;

  for (std::size_t i = 0; i < positive_pool.size(); ++i) {
    if (hits.positive.size() >= positive_cap) break;
    const CachedQuery* e = positive_pool[i];
    // §6.3 case 1 precheck: same vertex/edge count + one-way containment
    // ⇒ isomorphic; worth verifying even at zero transfer utility.
    const bool maybe_exact = options_.enable_exact_shortcut &&
                             e->query.NumVertices() == g.NumVertices() &&
                             e->query.NumEdges() == g.NumEdges();
    if (positive_utility[i] == 0 && !maybe_exact) continue;
    // Positive direction: subgraph queries verify g ⊆ g'; supergraph
    // queries verify g'' ⊆ g.
    const bool contained =
        positive_from_sub
            ? (options_.reuse_match_context
                   ? matcher_.ContainsPrepared(prepared(), e->query)
                   : matcher_.Contains(g, e->query))
            : matcher_.Contains(e->query, g);
    if (!contained) continue;
    if (maybe_exact && FullyValid(*e, live)) {
      hits.exact = e;
      if (metrics != nullptr) metrics->exact_hit = true;
      return hits;
    }
    if (positive_utility[i] > 0) hits.positive.push_back(e);
  }

  for (std::size_t i = 0; i < pruning_pool.size(); ++i) {
    if (hits.pruning.size() >= pruning_cap) break;
    const CachedQuery* e = pruning_pool[i];
    const bool useful_for_empty_proof =
        options_.enable_empty_answer_shortcut && hits.empty_proof == nullptr &&
        EmptyLiveAnswer(*e, live) && FullyValid(*e, live);
    if (pruning_utility[i] == 0 && !useful_for_empty_proof) continue;
    // Pruning direction: subgraph queries verify g'' ⊆ g; supergraph
    // queries verify g ⊆ g'.
    const bool contained =
        positive_from_sub
            ? matcher_.Contains(e->query, g)
            : (options_.reuse_match_context
                   ? matcher_.ContainsPrepared(prepared(), e->query)
                   : matcher_.Contains(g, e->query));
    if (!contained) continue;
    if (useful_for_empty_proof) {
      hits.empty_proof = e;
      if (metrics != nullptr) metrics->empty_shortcut = true;
      return hits;
    }
    hits.pruning.push_back(e);
  }

  if (metrics != nullptr) {
    metrics->sub_hits = static_cast<std::uint32_t>(
        positive_from_sub ? hits.positive.size() : hits.pruning.size());
    metrics->super_hits = static_cast<std::uint32_t>(
        positive_from_sub ? hits.pruning.size() : hits.positive.size());
  }
  return hits;
}

}  // namespace gcp
