// Candidate Set Pruner — formulas (1)-(5) and the §6.3 optimal cases.
//
// Subgraph-query logic (supergraph queries: same algebra with the
// positive/pruning roles resolved by the processors):
//   (1) Answer_sub(g)   = ⋃_{g'_i}  CGvalid(g'_i) ∩ Answer(g'_i)
//   (2) CS_GC+sub(g)    = CS_M(g) \ Answer_sub(g)
//   (4) g''.Answer_super(g) = ¬CGvalid(g'') ∪ Answer(g'')
//   (5) CS_GC+super(g)  = CS(g) ∩ ⋂_{g''_j} g''_j.Answer_super(g)
//   (3) Answer(g)       = verified(CS) ∪ Answer_sub(g)
// The runtime applies (2) first and then (5) on its result (§6.3), which
// is what this pruner does in one pass.

#ifndef GCP_CORE_PRUNER_HPP_
#define GCP_CORE_PRUNER_HPP_

#include "common/bitset.hpp"
#include "core/metrics.hpp"
#include "core/processors.hpp"

namespace gcp {

/// Outcome of candidate-set pruning for one query.
struct PruneOutcome {
  /// True when a §6.3 shortcut fully answered the query: `answer_direct`
  /// is final and `candidates` is empty.
  bool direct = false;

  /// Graphs answered without sub-iso testing: formula (1) contributions,
  /// or the full cached answer on an exact hit.
  DynamicBitset answer_direct;

  /// Candidate set left for Method M verification (formulas (2) + (5)).
  DynamicBitset candidates;

  /// Candidates removed by formula (2) (positive transfers) and by
  /// formula (5) (valid negative results).
  std::uint64_t saved_positive = 0;
  std::uint64_t saved_pruning = 0;
};

/// \brief Applies the pruning algebra to the discovered hits.
class CandidateSetPruner {
 public:
  /// `csm` is Method M's candidate set (the live mask). All resident
  /// entry bitsets must already be aligned to csm.size() (the Cache
  /// Validator maintains this on every dataset sync).
  static PruneOutcome Prune(const DiscoveredHits& hits,
                            const DynamicBitset& csm, QueryMetrics* metrics);
};

}  // namespace gcp

#endif  // GCP_CORE_PRUNER_HPP_
