// GC+sub / GC+super processors: cache-hit discovery (paper §4, §6).
//
// For an incoming query g the processors discover, among resident cached
// queries of the same query kind:
//   * GC+sub hits:  cached g' with g ⊆ g'  — for a subgraph query these
//     are the "positive" hits whose valid answers transfer directly into
//     g's answer (formula (1)); for a supergraph query they are the
//     "pruning" hits of the inverse logic.
//   * GC+super hits: cached g'' with g'' ⊆ g — pruning hits for subgraph
//     queries (formula (5)), positive hits for supergraph queries.
// Discovery is filter-then-verify against the cache: the QueryIndex
// shortlists by monotone features, an exact matcher verifies, and only
// *useful* candidates (non-zero standalone benefit) are verified at all.
// The processors also recognize the §6.3 optimal cases: an isomorphic
// cached query (exact hit) and an empty-answer proof.

#ifndef GCP_CORE_PROCESSORS_HPP_
#define GCP_CORE_PROCESSORS_HPP_

#include <span>
#include <vector>

#include "cache/cache_manager.hpp"
#include "core/metrics.hpp"
#include "core/method_m.hpp"
#include "core/options.hpp"
#include "match/matcher.hpp"

namespace gcp {

/// Result of cache-hit discovery for one query.
struct DiscoveredHits {
  /// Same-kind cached queries whose valid answers inject directly into the
  /// new query's answer set (g ⊆ g' for subgraph queries; g'' ⊆ g for
  /// supergraph queries).
  std::vector<const CachedQuery*> positive;

  /// Same-kind cached queries whose valid negative results eliminate
  /// candidates (formula (5) resp. its inverse).
  std::vector<const CachedQuery*> pruning;

  /// §6.3 case 1: resident query isomorphic to g with full validity over
  /// the live dataset; its answer is returned directly.
  const CachedQuery* exact = nullptr;

  /// §6.3 case 2: a pruning-direction entry with (still fully valid) empty
  /// answer proving the new query's answer is empty.
  const CachedQuery* empty_proof = nullptr;
};

/// \brief Implements both processors over the cache index.
class HitDiscovery {
 public:
  /// `internal_matcher` verifies query-vs-cached-query containment; the
  /// options supply hit caps and shortcut switches. Both must outlive the
  /// discovery object.
  HitDiscovery(const SubgraphMatcher& internal_matcher,
               const GraphCachePlusOptions& options)
      : matcher_(internal_matcher), options_(options) {}

  /// Runs GC+sub and GC+super discovery for `g` across every store in
  /// `shards` (candidates are shortlisted per shard, then utilities,
  /// ordering, caps and containment verification apply to the merged
  /// pool, ordered by (utility, WL digest, id) — so hit selection is
  /// independent of how entries are sharded, up to WL-digest collisions
  /// between distinct resident queries).
  /// `live` is the live-graph mask (CS_M); metrics get hit counts. The
  /// caller holds every shard's lock for the duration of the call and for
  /// as long as it dereferences the returned entry pointers.
  DiscoveredHits Discover(const Graph& g, QueryKind kind,
                          std::span<const CacheManager* const> shards,
                          const DynamicBitset& live,
                          QueryMetrics* metrics) const;

  /// Single-store convenience overload.
  DiscoveredHits Discover(const Graph& g, QueryKind kind,
                          const CacheManager& cache, const DynamicBitset& live,
                          QueryMetrics* metrics) const {
    const CacheManager* one = &cache;
    return Discover(g, kind, std::span<const CacheManager* const>(&one, 1),
                    live, metrics);
  }

 private:
  const SubgraphMatcher& matcher_;
  const GraphCachePlusOptions& options_;
};

}  // namespace gcp

#endif  // GCP_CORE_PROCESSORS_HPP_
