// GC+sub / GC+super processors: cache-hit discovery (paper §4, §6).
//
// For an incoming query g the processors discover, among resident cached
// queries of the same query kind:
//   * GC+sub hits:  cached g' with g ⊆ g'  — for a subgraph query these
//     are the "positive" hits whose valid answers transfer directly into
//     g's answer (formula (1)); for a supergraph query they are the
//     "pruning" hits of the inverse logic.
//   * GC+super hits: cached g'' with g'' ⊆ g — pruning hits for subgraph
//     queries (formula (5)), positive hits for supergraph queries.
// Discovery is filter-then-verify against the cache: the QueryIndex
// shortlists by monotone features, an exact matcher verifies, and only
// *useful* candidates (non-zero standalone benefit) are verified at all.
// The processors also recognize the §6.3 optimal cases: an isomorphic
// cached query (exact hit) and an empty-answer proof.
//
// Discovery is shard-local (PR 5): CollectShard runs the per-shard
// prescreen — candidate enumeration, kind filter, utility computation,
// zero-utility drop — under ONE shard's lock. Survivors COPY the
// answer/valid bitsets (the validator mutates those in place under the
// exclusive shard lock, so sharing them would race) but SHARE ownership
// of the immutable query graph — the shared_ptr grabbed under the shard
// lock keeps the graph alive even if the entry is evicted before
// verification runs, the same grace-period guarantee the EpochManager
// gives snapshot graphs. No resident-entry pointer ever escapes a shard
// lock. ResolveHits then merges the per-shard survivor lists, applies
// the single global utility ordering (ties on WL digest, then entry id —
// hit selection is shard-layout-independent), and runs containment
// verification and the §6.3 shortcuts with no lock held at all. The
// resulting DiscoveredHits own their data outright.

#ifndef GCP_CORE_PROCESSORS_HPP_
#define GCP_CORE_PROCESSORS_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cache/cache_manager.hpp"
#include "core/metrics.hpp"
#include "core/method_m.hpp"
#include "core/options.hpp"
#include "match/matcher.hpp"

namespace gcp {

/// One exploited cache hit: the slices of the resident entry the pruner
/// and the deferred-credit machinery need, copied out under the entry's
/// home-shard lock (safe to use after every lock is released).
struct DiscoveredHit {
  CacheEntryId id = 0;        ///< For deferred benefit credits.
  std::uint64_t digest = 0;   ///< Routes the credit to the home shard.
  DynamicBitset answer;
  DynamicBitset valid;
};

/// Result of cache-hit discovery for one query. Owns all data.
struct DiscoveredHits {
  /// Same-kind cached queries whose valid answers inject directly into the
  /// new query's answer set (g ⊆ g' for subgraph queries; g'' ⊆ g for
  /// supergraph queries).
  std::vector<DiscoveredHit> positive;

  /// Same-kind cached queries whose valid negative results eliminate
  /// candidates (formula (5) resp. its inverse).
  std::vector<DiscoveredHit> pruning;

  /// §6.3 case 1: resident query isomorphic to g with full validity over
  /// the live dataset; its answer is returned directly.
  std::optional<DiscoveredHit> exact;

  /// §6.3 case 2: a pruning-direction entry with (still fully valid) empty
  /// answer proving the new query's answer is empty.
  std::optional<DiscoveredHit> empty_proof;
};

/// \brief Implements both processors over the cache index.
class HitDiscovery {
 public:
  /// One prescreen survivor: the entry slices the resolve stage
  /// (verification + shortcuts) consumes lock-free — bitsets owned,
  /// query graph shared with the resident entry.
  struct Candidate {
    /// For containment verification after the merge. Shared ownership of
    /// the resident entry's immutable graph (deep-copied only on the
    /// copy_discovery_survivors oracle path).
    std::shared_ptr<const Graph> query;
    DynamicBitset answer;
    DynamicBitset valid;
    CacheEntryId id = 0;
    std::uint64_t digest = 0;
    std::size_t utility = 0;
    bool positive_role = false;  ///< Positive pool vs pruning pool.
    bool maybe_exact = false;    ///< §6.3 case-1 precheck passed.
    bool empty_eligible = false; ///< §6.3 case-2 precondition holds.
  };

  /// `internal_matcher` verifies query-vs-cached-query containment; the
  /// options supply hit caps and shortcut switches. Both must outlive the
  /// discovery object.
  HitDiscovery(const SubgraphMatcher& internal_matcher,
               const GraphCachePlusOptions& options)
      : matcher_(internal_matcher), options_(options) {}

  /// Per-shard prescreen: enumerates `shard`'s index candidates for `g`
  /// in both directions, filters by kind, computes standalone utilities
  /// against `live`, drops zero-utility candidates that can serve no §6.3
  /// shortcut, and appends owned copies of the survivors to `out`. The
  /// caller holds this shard's lock (shared suffices) for exactly this
  /// call. `features` must be GraphFeatures::Extract(g). Adds candidate
  /// enumeration time to metrics->t_discover_ns.
  void CollectShard(const Graph& g, const GraphFeatures& features,
                    QueryKind kind, const CacheManager& shard,
                    const DynamicBitset& live,
                    std::vector<Candidate>* out,
                    QueryMetrics* metrics) const;

  /// Merge + verify stage, lock-free: globally orders the merged survivor
  /// pool by (utility desc, WL digest, entry id), verifies containment in
  /// that order under the hit caps, and recognizes the §6.3 shortcuts —
  /// so hit selection is independent of how entries are sharded, up to WL
  /// digest collisions between distinct resident queries. Consumes
  /// `candidates`.
  DiscoveredHits ResolveHits(const Graph& g, QueryKind kind,
                             std::vector<Candidate> candidates,
                             const DynamicBitset& live,
                             QueryMetrics* metrics) const;

  /// Convenience composition for callers that already hold every shard
  /// lock (tests, single-store uses): collect across `shards`, then
  /// resolve.
  DiscoveredHits Discover(const Graph& g, QueryKind kind,
                          std::span<const CacheManager* const> shards,
                          const DynamicBitset& live,
                          QueryMetrics* metrics) const;

  /// Single-store convenience overload.
  DiscoveredHits Discover(const Graph& g, QueryKind kind,
                          const CacheManager& cache, const DynamicBitset& live,
                          QueryMetrics* metrics) const {
    const CacheManager* one = &cache;
    return Discover(g, kind, std::span<const CacheManager* const>(&one, 1),
                    live, metrics);
  }

  /// Survivor graphs deep-copied under a shard lock so far — stays zero
  /// unless options.copy_discovery_survivors turns the oracle path on.
  std::uint64_t shard_lock_graph_copies() const {
    return graph_copies_.load(std::memory_order_relaxed);
  }

 private:
  const SubgraphMatcher& matcher_;
  const GraphCachePlusOptions& options_;
  mutable std::atomic<std::uint64_t> graph_copies_{0};
};

}  // namespace gcp

#endif  // GCP_CORE_PROCESSORS_HPP_
