#include "core/method_m.hpp"

#include <atomic>
#include <vector>

namespace gcp {

MethodM::MethodM(MatcherKind kind, const GraphDataset& dataset,
                 ThreadPool* pool, bool reuse_context)
    : kind_(kind), matcher_(MakeMatcher(kind)), dataset_(dataset),
      pool_(pool), reuse_context_(reuse_context) {}

DynamicBitset MethodM::VerifyCandidates(const Graph& query, QueryKind kind,
                                        const DynamicBitset& candidates,
                                        std::uint64_t* tests_run) const {
  DynamicBitset verified(candidates.size());
  const std::vector<std::size_t> ids = candidates.ToVector();

  // Subgraph queries verify one fixed pattern against every candidate:
  // prepare its reusable state once (declared after `global_hist` so the
  // histogram outlives it). Supergraph queries swap roles per candidate —
  // the pattern varies, so there is nothing to reuse.
  LabelHistogram global_hist;
  std::unique_ptr<PreparedPattern> prepared;
  if (reuse_context_ && kind == QueryKind::kSubgraph && !ids.empty()) {
    global_hist = dataset_.GlobalLabelHistogram();
    prepared = matcher_->Prepare(query, &global_hist);
  }

  auto test_one = [&](GraphId id) {
    const Graph& g = dataset_.graph(id);
    // Subgraph query: pattern = query, target = dataset graph.
    // Supergraph query: roles swap (the dataset graph must embed in the
    // query).
    if (kind == QueryKind::kSubgraph) {
      return prepared != nullptr ? matcher_->ContainsPrepared(*prepared, g)
                                 : matcher_->Contains(query, g);
    }
    return matcher_->Contains(g, query);
  };

  if (pool_ == nullptr || ids.size() < 2) {
    for (const std::size_t id : ids) {
      if (test_one(static_cast<GraphId>(id))) verified.Set(id);
    }
  } else {
    std::vector<char> pass(ids.size(), 0);
    pool_->ParallelFor(ids.size(), [&](std::size_t i) {
      pass[i] = test_one(static_cast<GraphId>(ids[i])) ? 1 : 0;
    });
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (pass[i] != 0) verified.Set(ids[i]);
    }
  }
  if (tests_run != nullptr) *tests_run += ids.size();
  return verified;
}

}  // namespace gcp
