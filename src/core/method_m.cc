#include "core/method_m.hpp"

#include <atomic>
#include <vector>

#include "core/engine_snapshot.hpp"

namespace gcp {

MethodM::MethodM(MatcherKind kind, const GraphDataset& dataset,
                 ThreadPool* pool, bool reuse_context)
    : kind_(kind), matcher_(MakeMatcher(kind)), dataset_(dataset),
      pool_(pool), reuse_context_(reuse_context) {}

namespace {

/// Shared verification core: `graph_of(id)` supplies candidate graphs,
/// `hist` (nullable) the dataset-wide label histogram for the prepared
/// pattern's rarity order.
template <typename GraphOf>
DynamicBitset VerifyWith(const SubgraphMatcher& matcher, const Graph& query,
                         QueryKind kind, const DynamicBitset& candidates,
                         ThreadPool* pool, bool reuse_context,
                         const LabelHistogram* hist,
                         std::uint64_t* tests_run, GraphOf&& graph_of) {
  DynamicBitset verified(candidates.size());
  const std::vector<std::size_t> ids = candidates.ToVector();

  // Subgraph queries verify one fixed pattern against every candidate:
  // prepare its reusable state once. Supergraph queries swap roles per
  // candidate — the pattern varies, so there is nothing to reuse.
  std::unique_ptr<PreparedPattern> prepared;
  if (reuse_context && kind == QueryKind::kSubgraph && !ids.empty()) {
    prepared = matcher.Prepare(query, hist);
  }

  auto test_one = [&](GraphId id) {
    const Graph& g = graph_of(id);
    // Subgraph query: pattern = query, target = dataset graph.
    // Supergraph query: roles swap (the dataset graph must embed in the
    // query).
    if (kind == QueryKind::kSubgraph) {
      return prepared != nullptr ? matcher.ContainsPrepared(*prepared, g)
                                 : matcher.Contains(query, g);
    }
    return matcher.Contains(g, query);
  };

  if (pool == nullptr || ids.size() < 2) {
    for (const std::size_t id : ids) {
      if (test_one(static_cast<GraphId>(id))) verified.Set(id);
    }
  } else {
    std::vector<char> pass(ids.size(), 0);
    pool->ParallelFor(ids.size(), [&](std::size_t i) {
      pass[i] = test_one(static_cast<GraphId>(ids[i])) ? 1 : 0;
    });
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (pass[i] != 0) verified.Set(ids[i]);
    }
  }
  if (tests_run != nullptr) *tests_run += ids.size();
  return verified;
}

}  // namespace

DynamicBitset MethodM::VerifyCandidates(const Graph& query, QueryKind kind,
                                        const DynamicBitset& candidates,
                                        std::uint64_t* tests_run) const {
  LabelHistogram global_hist;
  const LabelHistogram* hist = nullptr;
  if (reuse_context_ && kind == QueryKind::kSubgraph && candidates.Any()) {
    global_hist = dataset_.GlobalLabelHistogram();
    hist = &global_hist;
  }
  return VerifyWith(
      *matcher_, query, kind, candidates, pool_, reuse_context_, hist,
      tests_run,
      [this](GraphId id) -> const Graph& { return dataset_.graph(id); });
}

DynamicBitset MethodM::VerifyCandidatesOn(const EngineSnapshot& snap,
                                          const Graph& query, QueryKind kind,
                                          const DynamicBitset& candidates,
                                          std::uint64_t* tests_run) const {
  return VerifyWith(
      *matcher_, query, kind, candidates, pool_, reuse_context_,
      &snap.global_label_histogram, tests_run,
      [&snap](GraphId id) -> const Graph& { return snap.graph(id); });
}

}  // namespace gcp
