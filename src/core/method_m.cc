#include "core/method_m.hpp"

#include <atomic>
#include <vector>

namespace gcp {

MethodM::MethodM(MatcherKind kind, const GraphDataset& dataset,
                 ThreadPool* pool)
    : kind_(kind), matcher_(MakeMatcher(kind)), dataset_(dataset),
      pool_(pool) {}

DynamicBitset MethodM::VerifyCandidates(const Graph& query, QueryKind kind,
                                        const DynamicBitset& candidates,
                                        std::uint64_t* tests_run) const {
  DynamicBitset verified(candidates.size());
  const std::vector<std::size_t> ids = candidates.ToVector();

  auto test_one = [&](GraphId id) {
    const Graph& g = dataset_.graph(id);
    // Subgraph query: pattern = query, target = dataset graph.
    // Supergraph query: roles swap (the dataset graph must embed in the
    // query).
    return kind == QueryKind::kSubgraph ? matcher_->Contains(query, g)
                                        : matcher_->Contains(g, query);
  };

  if (pool_ == nullptr || ids.size() < 2) {
    for (const std::size_t id : ids) {
      if (test_one(static_cast<GraphId>(id))) verified.Set(id);
    }
  } else {
    std::vector<char> pass(ids.size(), 0);
    pool_->ParallelFor(ids.size(), [&](std::size_t i) {
      pass[i] = test_one(static_cast<GraphId>(ids[i])) ? 1 : 0;
    });
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (pass[i] != 0) verified.Set(ids[i]);
    }
  }
  if (tests_run != nullptr) *tests_run += ids.size();
  return verified;
}

}  // namespace gcp
