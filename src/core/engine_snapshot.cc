#include "core/engine_snapshot.hpp"

#include <algorithm>

namespace gcp {

std::vector<ChangeRecord> EngineSnapshot::RecordsBetween(LogSeq after,
                                                         LogSeq upto) const {
  std::vector<ChangeRecord> out;
  if (upto <= after) return out;
  // Walk the segment chain newest-to-oldest, collecting overlapping
  // slices, then restore ascending order.
  std::vector<const LogSegment*> overlapping;
  for (const LogSegment* seg = log_tail.get(); seg != nullptr;
       seg = seg->prev.get()) {
    if (seg->last <= after) break;  // everything older is <= after too
    if (seg->first > upto) continue;
    overlapping.push_back(seg);
  }
  std::reverse(overlapping.begin(), overlapping.end());
  for (const LogSegment* seg : overlapping) {
    for (const ChangeRecord& r : seg->records) {
      if (r.seq > after && r.seq <= upto) out.push_back(r);
    }
  }
  return out;
}

namespace {

void FillCommon(EngineSnapshot& snap, const GraphDataset& dataset,
                const FtvIndex* ftv) {
  snap.id_horizon = dataset.IdHorizon();
  snap.num_live = dataset.NumLive();
  snap.live = dataset.LiveMask();
  snap.global_label_histogram = dataset.GlobalLabelHistogram();
  snap.watermark = dataset.log().LatestSeq();
  if (ftv != nullptr) {
    snap.has_ftv = true;
    snap.ftv_summaries = ftv->shared_summaries();  // aliased, never copied
  }
}

std::shared_ptr<const LogSegment> MakeSegment(
    std::shared_ptr<const LogSegment> prev,
    std::vector<ChangeRecord> records) {
  if (records.empty()) return prev;
  auto seg = std::make_shared<LogSegment>();
  seg->prev = std::move(prev);
  seg->first = records.front().seq;
  seg->last = records.back().seq;
  seg->records = std::move(records);
  return seg;
}

}  // namespace

std::unique_ptr<const EngineSnapshot> EngineSnapshot::Initial(
    const GraphDataset& dataset, const FtvIndex* ftv) {
  auto snap = std::make_unique<EngineSnapshot>();
  FillCommon(*snap, dataset, ftv);
  snap->graphs.resize(snap->id_horizon);
  for (const GraphId id : dataset.LiveIds()) {
    snap->graphs[id] = std::make_shared<const Graph>(dataset.graph(id));
  }
  // The full log in one segment: any watermark in the lineage can be
  // forward-validated from this snapshot.
  std::vector<ChangeRecord> all(dataset.log().records());
  snap->log_tail = MakeSegment(nullptr, std::move(all));
  return snap;
}

std::unique_ptr<const EngineSnapshot> EngineSnapshot::Next(
    const EngineSnapshot& prev, const GraphDataset& dataset,
    const FtvIndex* ftv, std::vector<ChangeRecord> new_records) {
  auto snap = std::make_unique<EngineSnapshot>();
  FillCommon(*snap, dataset, ftv);
  // Copy-on-write graph table: share every untouched graph with `prev`,
  // re-materialize only the ids the new records touched.
  snap->graphs = prev.graphs;
  snap->graphs.resize(snap->id_horizon);
  for (const ChangeRecord& r : new_records) {
    if (dataset.IsLive(r.graph_id)) {
      snap->graphs[r.graph_id] =
          std::make_shared<const Graph>(dataset.graph(r.graph_id));
    } else {
      snap->graphs[r.graph_id] = nullptr;
    }
  }
  snap->log_tail = MakeSegment(prev.log_tail, std::move(new_records));
  return snap;
}

}  // namespace gcp
