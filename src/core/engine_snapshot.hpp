// EngineSnapshot — the immutable read-side view the epoch engine
// publishes through a single atomic pointer.
//
// Under --epoch the query read phase never touches the engine lock, the
// GraphDataset, the change log or the FTV index directly: it pins an
// epoch (common/epoch.hpp), loads the current snapshot, and reads
// everything from there — dataset version (watermark), live mask,
// per-graph immutable Graph objects for Method M verification, the global
// label histogram for match-context rarity ordering, the change records
// needed to forward-validate stale admission offers, and (when the FTV
// index is on) the exported feature summaries for candidate filtering.
// A dataset mutation builds the successor off the current snapshot
// (copy-on-write: the graph-pointer table is copied, only touched graphs
// are re-materialized), publishes it with one atomic store, and retires
// the predecessor to the epoch manager for grace-period reclamation.
//
// Change records ride along as a persistent chain of immutable
// LogSegments — each publish appends one segment holding exactly the
// records of that mutation batch, so RecordsBetween never copies the
// whole log and never reads the (mutating) ChangeLog.

#ifndef GCP_CORE_ENGINE_SNAPSHOT_HPP_
#define GCP_CORE_ENGINE_SNAPSHOT_HPP_

#include <memory>
#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "dataset/dataset.hpp"
#include "ftv/ftv_index.hpp"
#include "graph/features.hpp"
#include "graph/graph.hpp"

namespace gcp {

/// \brief One immutable batch of change records, chained to its
/// predecessors. Seq numbers inside a segment are contiguous ascending.
struct LogSegment {
  std::shared_ptr<const LogSegment> prev;
  LogSeq first = 0;  ///< Seq of the oldest record in this segment.
  LogSeq last = 0;   ///< Seq of the newest record in this segment.
  std::vector<ChangeRecord> records;
};

/// \brief Immutable engine state at one dataset version.
struct EngineSnapshot {
  /// Change-log position this snapshot reflects.
  LogSeq watermark = 0;

  std::size_t id_horizon = 0;
  std::size_t num_live = 0;

  /// Live-graph mask over [0, id_horizon).
  DynamicBitset live;

  /// Per-id immutable graphs (null for dead ids). Shared with successor
  /// snapshots for untouched ids.
  std::vector<std::shared_ptr<const Graph>> graphs;

  /// Dataset-wide label histogram (match-context rarity table).
  LabelHistogram global_label_histogram;

  /// Newest change-record segment; chains back to the oldest. Null when
  /// the log was empty at snapshot time.
  std::shared_ptr<const LogSegment> log_tail;

  /// FTV feature summaries at snapshot time, aliased from the index's
  /// copy-on-write table (null + false when the engine runs without the
  /// FTV index). Publishing shares the vector; only an FTV-mutating batch
  /// makes the index clone it (FtvIndex::summary_copies).
  bool has_ftv = false;
  std::shared_ptr<const FtvIndex::SummaryVec> ftv_summaries;

  /// Live graph accessor; `id` must be live in this snapshot.
  const Graph& graph(GraphId id) const { return *graphs[id]; }

  /// Records with `after < seq <= upto`, ascending. Both bounds must be
  /// covered by this snapshot (upto <= watermark).
  std::vector<ChangeRecord> RecordsBetween(LogSeq after, LogSeq upto) const;

  /// Snapshot of the dataset's current state. Copies every live graph
  /// once and the full change log into the initial segment (so offers and
  /// cache restores watermarked anywhere in the lineage can be
  /// forward-validated).
  static std::unique_ptr<const EngineSnapshot> Initial(
      const GraphDataset& dataset, const FtvIndex* ftv);

  /// Successor of `prev` after the dataset absorbed `new_records` (the
  /// suffix since prev.watermark, ascending). Touched graphs are
  /// re-materialized from the dataset; everything else is shared with
  /// `prev`. `ftv` (if any) must already be in sync with the dataset.
  static std::unique_ptr<const EngineSnapshot> Next(
      const EngineSnapshot& prev, const GraphDataset& dataset,
      const FtvIndex* ftv, std::vector<ChangeRecord> new_records);
};

}  // namespace gcp

#endif  // GCP_CORE_ENGINE_SNAPSHOT_HPP_
