// Method M subsystem (paper §4): the external SI method GC+ expedites.
//
// Without GC+, Method M answers a subgraph query by running its verifier
// over the whole live dataset (its candidate set MCS); with GC+, the
// candidate set is first reduced by the pruner. This adapter runs the
// verifier over an arbitrary candidate bitset, optionally in parallel, and
// accounts tests and wall time.

#ifndef GCP_CORE_METHOD_M_HPP_
#define GCP_CORE_METHOD_M_HPP_

#include <memory>

#include "common/bitset.hpp"
#include "common/thread_pool.hpp"
#include "dataset/dataset.hpp"
#include "match/matcher.hpp"

namespace gcp {

struct EngineSnapshot;

/// Direction of a graph-pattern query.
enum class QueryKind {
  kSubgraph,    ///< Return dataset graphs G with query ⊆ G.
  kSupergraph,  ///< Return dataset graphs G with G ⊆ query.
};

/// \brief Runs the SI verifier over dataset candidates.
class MethodM {
 public:
  /// `pool` may be nullptr (serial verification). The dataset reference
  /// must outlive the MethodM instance. With `reuse_context` (default),
  /// subgraph-query verification prepares the query's per-pattern state
  /// (SubgraphMatcher::Prepare, rarity ranked by the dataset-wide label
  /// histogram) once and reuses it across every candidate; `false` keeps
  /// the per-pair formulation (the legacy hot path benches compare
  /// against).
  MethodM(MatcherKind kind, const GraphDataset& dataset,
          ThreadPool* pool = nullptr, bool reuse_context = true);

  /// Verifies `query` against every candidate id; returns the bitset of
  /// candidates that pass (same size as `candidates`). `tests_run`
  /// (optional) receives the number of sub-iso invocations.
  DynamicBitset VerifyCandidates(const Graph& query, QueryKind kind,
                                 const DynamicBitset& candidates,
                                 std::uint64_t* tests_run = nullptr) const;

  /// Like VerifyCandidates, but reads candidate graphs and the global
  /// label histogram from an immutable EngineSnapshot instead of the live
  /// dataset — the epoch read path, safe to run concurrently with dataset
  /// mutations without any lock.
  DynamicBitset VerifyCandidatesOn(const EngineSnapshot& snap,
                                   const Graph& query, QueryKind kind,
                                   const DynamicBitset& candidates,
                                   std::uint64_t* tests_run = nullptr) const;

  const SubgraphMatcher& matcher() const { return *matcher_; }
  MatcherKind kind() const { return kind_; }

 private:
  MatcherKind kind_;
  std::unique_ptr<SubgraphMatcher> matcher_;
  const GraphDataset& dataset_;
  ThreadPool* pool_;
  bool reuse_context_;
};

}  // namespace gcp

#endif  // GCP_CORE_METHOD_M_HPP_
