// Statistics Monitor — per-query and aggregate metrics.
//
// The split mirrors the paper's reporting: Figure 4/5 need query time and
// sub-iso test counts (with and without GC+); Figure 6 needs the
// per-query breakdown into "query time" (probe + prune + verify) and
// "overhead" (window/cache maintenance, and for CON the log-analysis +
// validation cost, which §7.2 shows is <1% of CON overhead).

#ifndef GCP_CORE_METRICS_HPP_
#define GCP_CORE_METRICS_HPP_

#include <cstdint>
#include <string>

namespace gcp {

/// \brief Counters and timings of a single query execution.
struct QueryMetrics {
  std::uint64_t query_id = 0;

  // --- work counted -------------------------------------------------------
  std::uint64_t candidates_initial = 0;  ///< |CS_M(g)| (live dataset size).
  std::uint64_t candidates_final = 0;    ///< After formulas (2) and (5).
  std::uint64_t si_tests = 0;            ///< Sub-iso tests actually run.
  std::uint64_t tests_saved_sub = 0;     ///< Removed by formula (2).
  std::uint64_t tests_saved_super = 0;   ///< Removed by formula (5).
  std::uint64_t answer_size = 0;

  // --- hit anatomy ---------------------------------------------------------
  std::uint32_t sub_hits = 0;    ///< Cached g' with g ⊆ g' exploited.
  std::uint32_t super_hits = 0;  ///< Cached g'' with g'' ⊆ g exploited.
  bool exact_hit = false;        ///< §6.3 optimal case 1 fired.
  bool empty_shortcut = false;   ///< §6.3 optimal case 2 fired.

  // --- fragment cache ------------------------------------------------------
  std::uint32_t fragment_hits = 0;      ///< Resident fragments intersected.
  std::uint32_t fragment_computed = 0;  ///< Fragments computed on miss.
  std::uint32_t fragment_intersections = 0;  ///< Mask AND-NOTs applied.
  std::uint64_t fragment_candidates_pruned = 0;  ///< Candidates removed.

  // --- timings (ns) --------------------------------------------------------
  std::int64_t t_validate_ns = 0;     ///< CON: Algorithms 1 + 2 (EVI: purge).
  std::int64_t t_index_ns = 0;        ///< FTV index maintenance + filter.
  std::int64_t t_probe_ns = 0;        ///< Hit discovery in the cache.
  /// Candidate enumeration inside t_probe_ns: the QueryIndex lookup that
  /// shortlists resident entries (scan or inverted index), before
  /// utilities and containment verification.
  std::int64_t t_discover_ns = 0;
  std::int64_t t_prune_ns = 0;        ///< Bitset algebra of formulas (1)-(5).
  /// Fragment mask intersection + on-miss fragment computation (the
  /// shard-lock fragment probes ride t_probe_ns with discovery).
  std::int64_t t_fragment_ns = 0;
  std::int64_t t_verify_ns = 0;       ///< Method M sub-iso testing.
  std::int64_t t_maintenance_ns = 0;  ///< Admission + replacement + indexing.

  /// "Query time" in the paper's Figure 6 sense: everything on the
  /// query's critical path (excludes maintenance, which GC+ overlaps with
  /// subsequent queries, and includes validation, candidate generation,
  /// probe, prune, verify).
  std::int64_t QueryTimeNs() const {
    return t_validate_ns + t_index_ns + t_probe_ns + t_prune_ns +
           t_fragment_ns + t_verify_ns;
  }
  /// "Overhead" in the Figure 6 sense.
  std::int64_t OverheadNs() const { return t_maintenance_ns; }
};

/// \brief Aggregates QueryMetrics over a workload run.
struct AggregateMetrics {
  std::uint64_t queries = 0;
  std::uint64_t si_tests = 0;
  std::uint64_t tests_saved_sub = 0;
  std::uint64_t tests_saved_super = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t exact_hits_zero_test = 0;
  std::uint64_t empty_shortcuts = 0;
  std::uint64_t sub_hits = 0;
  std::uint64_t super_hits = 0;
  std::uint64_t fragment_hits = 0;
  std::uint64_t fragment_computed = 0;
  std::uint64_t fragment_intersections = 0;
  std::uint64_t fragment_candidates_pruned = 0;
  std::int64_t t_validate_ns = 0;
  std::int64_t t_index_ns = 0;
  std::int64_t t_probe_ns = 0;
  std::int64_t t_discover_ns = 0;
  std::int64_t t_prune_ns = 0;
  std::int64_t t_fragment_ns = 0;
  std::int64_t t_verify_ns = 0;
  std::int64_t t_maintenance_ns = 0;
  std::int64_t t_query_ns = 0;

  void Add(const QueryMetrics& m);

  double AvgQueryTimeMs() const {
    return queries == 0
               ? 0.0
               : static_cast<double>(t_query_ns) / 1e6 /
                     static_cast<double>(queries);
  }
  double AvgOverheadMs() const {
    return queries == 0
               ? 0.0
               : static_cast<double>(t_maintenance_ns) / 1e6 /
                     static_cast<double>(queries);
  }
  double AvgSiTests() const {
    return queries == 0
               ? 0.0
               : static_cast<double>(si_tests) / static_cast<double>(queries);
  }
  /// Share of CON-specific validation work within total overhead
  /// (validation + maintenance) — the paper's "<1% of CON overhead" claim.
  double ValidationShareOfOverhead() const;

  std::string ToString() const;
};

}  // namespace gcp

#endif  // GCP_CORE_METRICS_HPP_
