#include "match/enumerate.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "../test_util.hpp"
#include "graph/generators.hpp"
#include "match/matcher.hpp"

namespace gcp {
namespace {

using testing::MakeClique;
using testing::MakeCycle;
using testing::MakeGraph;
using testing::MakePath;
using testing::MakeSingleton;
using testing::MakeStar;
using testing::MakeTriangle;

// Exhaustive reference: tries every injective mapping (target arrangement)
// — exponential, for tiny inputs only.
std::uint64_t BruteForceCount(const Graph& pattern, const Graph& target) {
  const std::size_t np = pattern.NumVertices();
  const std::size_t nt = target.NumVertices();
  if (np == 0) return 1;
  if (np > nt) return 0;
  std::vector<VertexId> mapping(np);
  std::vector<bool> used(nt, false);
  std::uint64_t count = 0;
  std::function<void(std::size_t)> rec = [&](std::size_t u) {
    if (u == np) {
      ++count;
      return;
    }
    for (VertexId v = 0; v < nt; ++v) {
      if (used[v] || pattern.label(u) != target.label(v)) continue;
      bool ok = true;
      for (const VertexId w : pattern.neighbors(static_cast<VertexId>(u))) {
        if (w < u && !target.HasEdge(v, mapping[w])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      used[v] = true;
      mapping[u] = v;
      rec(u + 1);
      used[v] = false;
    }
  };
  rec(0);
  return count;
}

TEST(EnumerateTest, EmptyPatternHasOneEmbedding) {
  EXPECT_EQ(CountEmbeddings(Graph(), MakePath({0, 1})), 1u);
}

TEST(EnumerateTest, SingleVertexCountsLabelOccurrences) {
  const Graph t = MakePath({3, 1, 3, 3});
  EXPECT_EQ(CountEmbeddings(MakeSingleton(3), t), 3u);
  EXPECT_EQ(CountEmbeddings(MakeSingleton(9), t), 0u);
}

TEST(EnumerateTest, EdgeWithDistinctLabels) {
  // C-O edge occurs once per matching edge, one orientation each.
  const Graph t = MakeGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}, {1, 2}});
  // Edges: (0C,1O) ✓, (2C,3O) ✓, (1O,2C) ✓ -> 3 embeddings.
  EXPECT_EQ(CountEmbeddings(MakePath({0, 1}), t), 3u);
}

TEST(EnumerateTest, EdgeWithEqualLabelsCountsBothOrientations) {
  const Graph t = MakePath({5, 5, 5});  // two 5-5 edges
  EXPECT_EQ(CountEmbeddings(MakePath({5, 5}), t), 4u);
}

TEST(EnumerateTest, TriangleHasSixAutomorphicImages) {
  EXPECT_EQ(CountEmbeddings(MakeTriangle(0, 0, 0), MakeTriangle(0, 0, 0)),
            6u);
  // Two triangles sharing no vertex: 12.
  Graph two;
  for (int i = 0; i < 6; ++i) two.AddVertex(0);
  two.AddEdge(0, 1).ok();
  two.AddEdge(1, 2).ok();
  two.AddEdge(0, 2).ok();
  two.AddEdge(3, 4).ok();
  two.AddEdge(4, 5).ok();
  two.AddEdge(3, 5).ok();
  EXPECT_EQ(CountEmbeddings(MakeTriangle(0, 0, 0), two), 12u);
}

TEST(EnumerateTest, PathP3CountMatchesDegreeFormula) {
  // #embeddings of same-label P3 = sum over middle vertex of d(d-1).
  Rng rng(4);
  const Graph t = RandomConnectedGraph(rng, 12, 6, 1);
  std::uint64_t expected = 0;
  for (VertexId v = 0; v < t.NumVertices(); ++v) {
    const auto d = static_cast<std::uint64_t>(t.degree(v));
    expected += d * (d - 1);
  }
  EXPECT_EQ(CountEmbeddings(MakePath({0, 0, 0}), t), expected);
}

TEST(EnumerateTest, StarS3CountMatchesDegreeFormula) {
  // #embeddings of same-label star K1,3 = sum over centre of d(d-1)(d-2).
  Rng rng(5);
  const Graph t = RandomConnectedGraph(rng, 10, 8, 1);
  std::uint64_t expected = 0;
  for (VertexId v = 0; v < t.NumVertices(); ++v) {
    const auto d = static_cast<std::uint64_t>(t.degree(v));
    if (d >= 3) expected += d * (d - 1) * (d - 2);
  }
  EXPECT_EQ(CountEmbeddings(MakeStar({0, 0, 0, 0}), t), expected);
}

TEST(EnumerateTest, CliqueInCliqueIsFallingFactorial) {
  // K3 in K5, all same label: 5*4*3 = 60.
  EXPECT_EQ(CountEmbeddings(MakeClique(3, 0), MakeClique(5, 0)), 60u);
}

TEST(EnumerateTest, CallbackReceivesValidEmbeddings) {
  const Graph q = MakePath({0, 1, 0});
  const Graph t = MakeCycle({0, 1, 0, 1});
  std::set<std::vector<VertexId>> seen;
  const std::uint64_t n =
      EnumerateEmbeddings(q, t, [&](const std::vector<VertexId>& m) {
        EXPECT_TRUE(IsValidEmbedding(q, t, m));
        seen.insert(m);
        return true;
      });
  EXPECT_EQ(n, seen.size());  // all distinct
  EXPECT_GT(n, 0u);
}

TEST(EnumerateTest, CallbackCanStopEarly) {
  const Graph q = MakeSingleton(0);
  const Graph t = MakeClique(6, 0);
  int calls = 0;
  const std::uint64_t n =
      EnumerateEmbeddings(q, t, [&](const std::vector<VertexId>&) {
        return ++calls < 2;
      });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(n, 2u);
}

TEST(EnumerateTest, CountLimitSaturates) {
  EXPECT_EQ(CountEmbeddings(MakeSingleton(0), MakeClique(8, 0), 3), 3u);
  EXPECT_EQ(CountEmbeddings(MakeSingleton(0), MakeClique(8, 0)), 8u);
}

TEST(EnumerateTest, ConsistentWithDecisionMatchers) {
  Rng rng(6);
  const auto matcher = MakeMatcher(MatcherKind::kVf2);
  for (int i = 0; i < 40; ++i) {
    const Graph q = RandomConnectedGraph(rng, 3 + rng.UniformBelow(4),
                                         rng.UniformBelow(3), 2);
    const Graph t = RandomConnectedGraph(rng, 5 + rng.UniformBelow(5),
                                         rng.UniformBelow(5), 2);
    EXPECT_EQ(CountEmbeddings(q, t, 1) > 0, matcher->Contains(q, t));
  }
}

// Exhaustive differential oracle on tiny random graphs.
class EnumerateOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnumerateOracleTest, MatchesBruteForceCount) {
  Rng rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    const Graph q = RandomConnectedGraph(rng, 2 + rng.UniformBelow(4),
                                         rng.UniformBelow(3), 2);
    const Graph t = RandomConnectedGraph(rng, 4 + rng.UniformBelow(4),
                                         rng.UniformBelow(6), 2);
    EXPECT_EQ(CountEmbeddings(q, t), BruteForceCount(q, t))
        << "pattern=" << q.ToString() << " target=" << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumerateOracleTest,
                         ::testing::Values(71, 72, 73, 74));

// "Single massive graph" smoke (§8 future-work substrate): enumeration
// stays exact on a graph 100x the molecule scale.
TEST(EnumerateTest, SingleLargeGraph) {
  Rng rng(7);
  const Graph big = RandomConnectedGraph(rng, 3000, 4500, 4);
  const Graph pattern = MakePath({0, 1, 2});
  std::uint64_t count = 0;
  EnumerateEmbeddings(pattern, big, [&](const std::vector<VertexId>& m) {
    if (count < 50) {
      EXPECT_TRUE(IsValidEmbedding(pattern, big, m));
    }
    ++count;
    return true;
  });
  EXPECT_EQ(count, CountEmbeddings(pattern, big));
  // Cross-check one labelled-P3 formula on the big graph.
  std::uint64_t expected = 0;
  for (VertexId mid = 0; mid < big.NumVertices(); ++mid) {
    if (big.label(mid) != 1) continue;
    std::uint64_t zeros = 0, twos = 0;
    for (const VertexId w : big.neighbors(mid)) {
      zeros += big.label(w) == 0 ? 1 : 0;
      twos += big.label(w) == 2 ? 1 : 0;
    }
    expected += zeros * twos;
  }
  EXPECT_EQ(count, expected);
}

}  // namespace
}  // namespace gcp
