// The prepared-pattern protocol must be answer-preserving: for every
// matcher, ContainsPrepared/FindEmbeddingPrepared through Prepare must
// agree with the per-pair FindEmbedding on randomized corpora (planted
// positives, isomorphs, random negatives), witnesses must stay valid, and
// sharing one prepared pattern across many targets must not leak state
// between searches.

#include <gtest/gtest.h>

#include <map>

#include "../test_util.hpp"
#include "graph/generators.hpp"
#include "match/matcher.hpp"
#include "workload/query_gen.hpp"

namespace gcp {
namespace {

struct Corpus {
  std::vector<std::pair<Graph, Graph>> pairs;  // (pattern, target)
};

Corpus BuildCorpus(std::uint64_t seed) {
  Rng rng(seed);
  Corpus c;
  for (int i = 0; i < 12; ++i) {
    const Graph target = RandomConnectedGraph(rng, 6 + rng.UniformBelow(10),
                                              rng.UniformBelow(6), 3);
    const Graph query = ExtractBfsQuery(
        target,
        static_cast<VertexId>(rng.UniformBelow(target.NumVertices())),
        2 + rng.UniformBelow(6));
    c.pairs.emplace_back(query, target);
  }
  for (int i = 0; i < 6; ++i) {
    const Graph g = RandomConnectedGraph(rng, 5 + rng.UniformBelow(6),
                                         rng.UniformBelow(4), 3);
    c.pairs.emplace_back(g, RandomlyPermuted(rng, g));
  }
  for (int i = 0; i < 18; ++i) {
    c.pairs.emplace_back(
        RandomConnectedGraph(rng, 4 + rng.UniformBelow(5),
                             rng.UniformBelow(3), 3),
        RandomConnectedGraph(rng, 6 + rng.UniformBelow(8),
                             rng.UniformBelow(5), 3));
  }
  return c;
}

class PreparedMatcherTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PreparedMatcherTest, PreparedAgreesWithPerPairOnAllMatchers) {
  const Corpus corpus = BuildCorpus(GetParam());
  for (const MatcherKind kind :
       {MatcherKind::kVf2, MatcherKind::kVf2Plus, MatcherKind::kGraphQl,
        MatcherKind::kUllmann}) {
    const auto matcher = MakeMatcher(kind);
    for (const auto& [pattern, target] : corpus.pairs) {
      const bool expected = matcher->Contains(pattern, target);
      const auto prepared = matcher->Prepare(pattern);
      ASSERT_NE(prepared, nullptr);
      EXPECT_EQ(matcher->ContainsPrepared(*prepared, target), expected)
          << matcher->name() << " pattern=" << pattern.ToString()
          << " target=" << target.ToString();
      std::vector<VertexId> embedding;
      if (matcher->FindEmbeddingPrepared(*prepared, target, &embedding)) {
        EXPECT_TRUE(IsValidEmbedding(pattern, target, embedding))
            << matcher->name() << " pattern=" << pattern.ToString()
            << " target=" << target.ToString();
      }
    }
  }
}

TEST_P(PreparedMatcherTest, OnePreparedPatternServesManyTargets) {
  // The MethodM usage pattern: one pattern, many targets, with a rarity
  // table. Reusing the context (sequentially and with stats attached)
  // must give the same answers as fresh per-pair searches.
  Rng rng(GetParam() + 500);
  const auto vf2p = MakeMatcher(MatcherKind::kVf2Plus);
  for (int round = 0; round < 6; ++round) {
    std::vector<Graph> targets;
    LabelHistogram global;
    {
      std::map<Label, std::uint32_t> freq;
      for (int i = 0; i < 20; ++i) {
        targets.push_back(RandomConnectedGraph(
            rng, 6 + rng.UniformBelow(12), rng.UniformBelow(5), 3));
        for (const auto& [l, c] : targets.back().label_histogram()) {
          freq[l] += c;
        }
      }
      global.assign(freq.begin(), freq.end());
    }
    const Graph pattern = ExtractBfsQuery(
        targets[0], static_cast<VertexId>(rng.UniformBelow(
                        targets[0].NumVertices())),
        2 + rng.UniformBelow(5));
    const auto prepared = vf2p->Prepare(pattern, &global);
    MatchStats stats;
    for (const Graph& t : targets) {
      EXPECT_EQ(vf2p->ContainsPrepared(*prepared, t, &stats),
                vf2p->Contains(pattern, t));
    }
  }
}

TEST(PreparedMatcherTest, EmptyAndTrivialPatterns) {
  const auto vf2p = MakeMatcher(MatcherKind::kVf2Plus);
  const Graph empty;
  const Graph target = testing::MakePath({1, 2, 3});
  const auto prepared_empty = vf2p->Prepare(empty);
  EXPECT_TRUE(vf2p->ContainsPrepared(*prepared_empty, target));
  EXPECT_TRUE(vf2p->ContainsPrepared(*prepared_empty, empty));

  Graph single;
  single.AddVertex(2);
  const auto prepared_single = vf2p->Prepare(single);
  EXPECT_TRUE(vf2p->ContainsPrepared(*prepared_single, target));
  Graph wrong_label;
  wrong_label.AddVertex(9);
  EXPECT_FALSE(vf2p->ContainsPrepared(*prepared_single, wrong_label));
  // Pattern larger than target.
  const auto prepared_path = vf2p->Prepare(target);
  EXPECT_FALSE(vf2p->ContainsPrepared(*prepared_path, single));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreparedMatcherTest,
                         ::testing::Values(61001, 61002, 61003, 61004));

}  // namespace
}  // namespace gcp
