// Fragment canonicalization — the identity the fragment cache hangs off.
//
// The store keys fragments by WlDigest(canonical star) with a graph
// equality check behind the lookup, so correctness needs exactly two
// properties: (a) isomorphic stars canonicalize to bit-identical graphs
// (digest stability — a hit is found no matter how the query was laid
// out), and (b) non-isomorphic small stars never share both digest and
// canonical graph (collision sanity — checked exhaustively against a
// brute-force isomorphism oracle on the small-star universe).

#include "match/fragments.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "../test_util.hpp"
#include "graph/canonical.hpp"
#include "match/matcher.hpp"

namespace gcp {
namespace {

using gcp::testing::MakeGraph;
using gcp::testing::MakePath;
using gcp::testing::MakeStar;

bool SameGraph(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    if (a.label(v) != b.label(v)) return false;
  }
  return a.Edges() == b.Edges();
}

/// Relabels g's vertices through `perm` (vertex v becomes perm[v]) and
/// shuffles the edge list — an isomorphic copy with a different layout.
Graph Permuted(const Graph& g, const std::vector<VertexId>& perm,
               std::mt19937_64& rng) {
  std::vector<Label> labels(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    labels[perm[v]] = g.label(v);
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (const auto& [u, v] : g.Edges()) {
    edges.emplace_back(perm[u], perm[v]);
  }
  std::shuffle(edges.begin(), edges.end(), rng);
  auto r = Graph::Create(std::move(labels), edges);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(FragmentCanonicalTest, StarGraphIdenticalAcrossLeafOrderings) {
  const Graph a = MakeStarGraph(5, {3, 1, 2, 1});
  const Graph b = MakeStarGraph(5, {1, 2, 1, 3});
  const Graph c = MakeStarGraph(5, {1, 1, 2, 3});
  EXPECT_TRUE(SameGraph(a, b));
  EXPECT_TRUE(SameGraph(a, c));
  EXPECT_EQ(WlDigest(a), WlDigest(b));
  EXPECT_EQ(a.label(0), 5u);  // center is always vertex 0
}

TEST(FragmentCanonicalTest, DigestsStableUnderVertexPermutation) {
  std::mt19937_64 rng(7);
  const Graph graphs[] = {
      MakePath({1, 2, 3, 4, 5}),
      MakeStar({9, 1, 1, 2, 3}),
      MakeGraph({0, 1, 2, 0, 1},
                {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}),
  };
  for (const Graph& g : graphs) {
    const std::vector<Fragment> base = DecomposeToFragments(g, 8);
    ASSERT_FALSE(base.empty());
    std::vector<VertexId> perm(g.NumVertices());
    std::iota(perm.begin(), perm.end(), 0);
    for (int trial = 0; trial < 20; ++trial) {
      std::shuffle(perm.begin(), perm.end(), rng);
      const Graph p = Permuted(g, perm, rng);
      const std::vector<Fragment> got = DecomposeToFragments(p, 8);
      ASSERT_EQ(base.size(), got.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        // Same digests in the same order: the cap's selection and the
        // cache keys cannot depend on input layout.
        EXPECT_EQ(base[i].digest, got[i].digest);
        EXPECT_TRUE(SameGraph(base[i].star, got[i].star));
      }
    }
  }
}

TEST(FragmentCanonicalTest, ExhaustiveSmallStarsMatchIsomorphismOracle) {
  // Universe: every star with center label in {0,1,2} and 1..3 leaves
  // drawn (with repetition, order-free) from {0,1,2}. Two stars are
  // isomorphic iff their (center, leaf multiset) keys are equal — that is
  // the complete-invariant claim the cache relies on. Cross-check the
  // canonical layer against it, and against an independent matcher-based
  // oracle (mutual containment of equal-size graphs = isomorphism).
  struct Star {
    Label center;
    std::vector<Label> leaves;  // sorted
    Graph canonical;
    std::uint64_t digest;
  };
  std::vector<Star> universe;
  const std::vector<std::vector<Label>> multisets = {
      {0},       {1},       {2},       {0, 0},    {0, 1},    {0, 2},
      {1, 1},    {1, 2},    {2, 2},    {0, 0, 0}, {0, 0, 1}, {0, 0, 2},
      {0, 1, 1}, {0, 1, 2}, {0, 2, 2}, {1, 1, 1}, {1, 1, 2}, {1, 2, 2},
      {2, 2, 2}};
  for (Label center = 0; center < 3; ++center) {
    for (const auto& leaves : multisets) {
      Star s;
      s.center = center;
      s.leaves = leaves;
      // The key invariant holds after the single-edge normalization the
      // canonical layer applies (an unrooted edge has no distinguished
      // center): fold (a, {b}) with b < a onto (b, {a}).
      if (s.leaves.size() == 1 && s.leaves[0] < s.center) {
        std::swap(s.center, s.leaves[0]);
      }
      s.canonical = MakeStarGraph(center, leaves);  // pre-normalized input
      s.digest = WlDigest(s.canonical);
      universe.push_back(std::move(s));
    }
  }
  const auto matcher = MakeMatcher(MatcherKind::kVf2);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    for (std::size_t j = 0; j < universe.size(); ++j) {
      const Star& a = universe[i];
      const Star& b = universe[j];
      const bool iso_by_key = a.center == b.center && a.leaves == b.leaves;
      const bool iso_by_matcher =
          a.canonical.NumVertices() == b.canonical.NumVertices() &&
          matcher->Contains(a.canonical, b.canonical) &&
          matcher->Contains(b.canonical, a.canonical);
      ASSERT_EQ(iso_by_key, iso_by_matcher)
          << "key invariant disagrees with the matcher oracle";
      if (iso_by_key) {
        EXPECT_EQ(a.digest, b.digest);
        EXPECT_TRUE(SameGraph(a.canonical, b.canonical));
      } else {
        // Distinct fragments must be distinguishable by the store's
        // lookup: digest differs, or (a true WL collision) the canonical
        // graphs differ and the equality check rejects the alias.
        EXPECT_TRUE(a.digest != b.digest ||
                    !SameGraph(a.canonical, b.canonical));
      }
    }
  }
}

TEST(FragmentCanonicalTest, DecompositionDedupsOrdersAndCaps) {
  // Path 1-2-1: both endpoints yield the same star (center 1, leaf {2}),
  // the middle yields (center 2, leaves {1,1}).
  const std::vector<Fragment> frags =
      DecomposeToFragments(MakePath({1, 2, 1}), 8);
  ASSERT_EQ(frags.size(), 2u);
  // Largest star first (2 leaves before 1).
  EXPECT_EQ(frags[0].star.NumVertices(), 3u);
  EXPECT_EQ(frags[1].star.NumVertices(), 2u);
  EXPECT_EQ(frags[0].star.label(0), 2u);
  EXPECT_EQ(frags[1].star.label(0), 1u);

  // The cap keeps the most selective (largest) stars.
  const Graph g = MakeGraph({0, 1, 2, 3, 4},
                            {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}});
  const std::vector<Fragment> all = DecomposeToFragments(g, 8);
  const std::vector<Fragment> capped = DecomposeToFragments(g, 2);
  ASSERT_GT(all.size(), 2u);
  ASSERT_EQ(capped.size(), 2u);
  for (std::size_t i = 0; i < capped.size(); ++i) {
    EXPECT_EQ(capped[i].digest, all[i].digest);
  }
  EXPECT_EQ(capped[0].star.NumVertices(), 5u);  // the degree-4 center
}

TEST(FragmentCanonicalTest, EdgelessAndIsolatedVertices) {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  EXPECT_TRUE(DecomposeToFragments(g, 8).empty());
  EXPECT_TRUE(DecomposeToFragments(Graph(), 8).empty());
  // Isolated vertices contribute no fragment; the one edge contributes
  // exactly one (its two endpoint readings normalize to the same star).
  g.AddVertex(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(DecomposeToFragments(g, 8).size(), 1u);
}

TEST(FragmentCanonicalTest, SingleEdgeStarsNormalizeAcrossEndpoints) {
  const Graph a = MakeStarGraph(0, {1});
  const Graph b = MakeStarGraph(1, {0});
  EXPECT_TRUE(SameGraph(a, b));
  EXPECT_EQ(WlDigest(a), WlDigest(b));
  EXPECT_EQ(a.label(0), 0u);
}

TEST(FragmentCanonicalTest, EveryFragmentEmbedsInItsQuery) {
  // The soundness precondition of fragment pruning: star ⊆ query for
  // every decomposed fragment, under the engine's non-induced injective
  // matcher semantics.
  const auto matcher = MakeMatcher(MatcherKind::kVf2);
  const Graph graphs[] = {
      MakePath({1, 2, 3, 2, 1}),
      MakeStar({5, 1, 2, 3, 4}),
      gcp::testing::MakeClique(4, 7),
      MakeGraph({0, 1, 2, 0, 1},
                {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}),
  };
  for (const Graph& g : graphs) {
    for (const Fragment& f : DecomposeToFragments(g, 16)) {
      EXPECT_TRUE(matcher->Contains(f.star, g));
    }
  }
}

}  // namespace
}  // namespace gcp
