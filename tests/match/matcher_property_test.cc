// Property suite: the four matchers must agree pairwise on randomized
// corpora (decision agreement), report valid witness embeddings, and be
// consistent with containment facts known by construction (extracted
// queries, permuted isomorphs, supersets).

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "graph/generators.hpp"
#include "match/matcher.hpp"
#include "workload/query_gen.hpp"

namespace gcp {
namespace {

struct Corpus {
  std::vector<std::pair<Graph, Graph>> pairs;  // (pattern, target)
};

// Mixed corpus: planted positives (extracted subgraphs), permuted
// isomorphs, and independent random pairs (mostly negatives).
Corpus BuildCorpus(std::uint64_t seed) {
  Rng rng(seed);
  Corpus c;
  for (int i = 0; i < 12; ++i) {
    const Graph target = RandomConnectedGraph(rng, 6 + rng.UniformBelow(10),
                                              rng.UniformBelow(6), 3);
    const Graph query = ExtractBfsQuery(
        target, static_cast<VertexId>(rng.UniformBelow(
                         target.NumVertices())),
        2 + rng.UniformBelow(6));
    c.pairs.emplace_back(query, target);
  }
  for (int i = 0; i < 6; ++i) {
    const Graph g = RandomConnectedGraph(rng, 5 + rng.UniformBelow(6),
                                         rng.UniformBelow(4), 3);
    c.pairs.emplace_back(g, RandomlyPermuted(rng, g));
  }
  for (int i = 0; i < 18; ++i) {
    c.pairs.emplace_back(
        RandomConnectedGraph(rng, 4 + rng.UniformBelow(5),
                             rng.UniformBelow(3), 3),
        RandomConnectedGraph(rng, 6 + rng.UniformBelow(8),
                             rng.UniformBelow(5), 3));
  }
  return c;
}

class MatcherAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherAgreementTest, AllFourAgreeAndWitnessesAreValid) {
  const Corpus corpus = BuildCorpus(GetParam());
  const auto vf2 = MakeMatcher(MatcherKind::kVf2);
  const auto vf2p = MakeMatcher(MatcherKind::kVf2Plus);
  const auto gql = MakeMatcher(MatcherKind::kGraphQl);
  const auto ull = MakeMatcher(MatcherKind::kUllmann);

  for (const auto& [pattern, target] : corpus.pairs) {
    const bool expected = ull->Contains(pattern, target);
    EXPECT_EQ(vf2->Contains(pattern, target), expected)
        << "VF2 disagrees on pattern=" << pattern.ToString()
        << " target=" << target.ToString();
    EXPECT_EQ(vf2p->Contains(pattern, target), expected)
        << "VF2+ disagrees on pattern=" << pattern.ToString()
        << " target=" << target.ToString();
    EXPECT_EQ(gql->Contains(pattern, target), expected)
        << "GQL disagrees on pattern=" << pattern.ToString()
        << " target=" << target.ToString();

    if (expected) {
      for (const auto* m :
           {vf2.get(), vf2p.get(), gql.get(), ull.get()}) {
        std::vector<VertexId> embedding;
        ASSERT_TRUE(m->FindEmbedding(pattern, target, &embedding));
        EXPECT_TRUE(IsValidEmbedding(pattern, target, embedding))
            << m->name() << " produced an invalid witness";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherAgreementTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

class MatcherInvariantTest : public ::testing::TestWithParam<MatcherKind> {
 protected:
  std::unique_ptr<SubgraphMatcher> matcher_ = MakeMatcher(GetParam());
};

TEST_P(MatcherInvariantTest, ExtractedQueryAlwaysContained) {
  Rng rng(911);
  for (int i = 0; i < 25; ++i) {
    const Graph target = RandomConnectedGraph(rng, 12, 6, 4);
    const Graph q = ExtractBfsQuery(target, 0, 4);
    EXPECT_TRUE(matcher_->Contains(q, target));
  }
}

TEST_P(MatcherInvariantTest, IsomorphContainedBothWays) {
  Rng rng(912);
  for (int i = 0; i < 15; ++i) {
    const Graph g = RandomConnectedGraph(rng, 9, 4, 3);
    const Graph p = RandomlyPermuted(rng, g);
    EXPECT_TRUE(matcher_->Contains(g, p));
    EXPECT_TRUE(matcher_->Contains(p, g));
  }
}

TEST_P(MatcherInvariantTest, ContainmentTransitiveThroughChain) {
  // q ⊆ mid (q extracted from mid), mid ⊆ big (mid extracted... built the
  // other way: grow big from mid by attaching vertices).
  Rng rng(913);
  for (int i = 0; i < 15; ++i) {
    Graph mid = RandomConnectedGraph(rng, 8, 3, 3);
    const Graph q = ExtractBfsQuery(mid, 0, 3);
    Graph big = mid;
    for (int extra = 0; extra < 4; ++extra) {
      const VertexId nv = big.AddVertex(
          static_cast<Label>(rng.UniformBelow(3)));
      big.AddEdge(nv, static_cast<VertexId>(rng.UniformBelow(nv))).ok();
    }
    EXPECT_TRUE(matcher_->Contains(q, mid));
    EXPECT_TRUE(matcher_->Contains(mid, big));
    EXPECT_TRUE(matcher_->Contains(q, big));
  }
}

TEST_P(MatcherInvariantTest, RemovingPlantedEdgeBreaksTightContainment) {
  // A clique minus one edge no longer contains the full clique.
  const Graph clique = testing::MakeClique(5, 0);
  Graph damaged = clique;
  damaged.RemoveEdge(0, 1).ok();
  EXPECT_TRUE(matcher_->Contains(damaged, clique));
  EXPECT_FALSE(matcher_->Contains(clique, damaged));
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherInvariantTest,
                         ::testing::Values(MatcherKind::kVf2,
                                           MatcherKind::kVf2Plus,
                                           MatcherKind::kGraphQl,
                                           MatcherKind::kUllmann),
                         [](const ::testing::TestParamInfo<MatcherKind>& i) {
                           switch (i.param) {
                             case MatcherKind::kVf2:
                               return std::string("VF2");
                             case MatcherKind::kVf2Plus:
                               return std::string("VF2Plus");
                             case MatcherKind::kGraphQl:
                               return std::string("GQL");
                             case MatcherKind::kUllmann:
                               return std::string("Ullmann");
                           }
                           return std::string("Unknown");
                         });

}  // namespace
}  // namespace gcp
