#include "match/matcher.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace gcp {
namespace {

using testing::MakeClique;
using testing::MakeCycle;
using testing::MakeGraph;
using testing::MakePath;
using testing::MakeSingleton;
using testing::MakeStar;
using testing::MakeTriangle;

// Shared hand-built scenarios exercised against every implementation.
class MatcherKindTest : public ::testing::TestWithParam<MatcherKind> {
 protected:
  std::unique_ptr<SubgraphMatcher> matcher_ = MakeMatcher(GetParam());
};

TEST_P(MatcherKindTest, EmptyPatternInAnything) {
  EXPECT_TRUE(matcher_->Contains(Graph(), Graph()));
  EXPECT_TRUE(matcher_->Contains(Graph(), MakePath({0, 1, 2})));
}

TEST_P(MatcherKindTest, SingletonLabelMatch) {
  EXPECT_TRUE(matcher_->Contains(MakeSingleton(3), MakePath({1, 3, 2})));
  EXPECT_FALSE(matcher_->Contains(MakeSingleton(9), MakePath({1, 3, 2})));
}

TEST_P(MatcherKindTest, PatternLargerThanTargetFails) {
  EXPECT_FALSE(matcher_->Contains(MakePath({0, 0, 0}), MakePath({0, 0})));
}

TEST_P(MatcherKindTest, IdenticalGraphContainsItself) {
  const Graph g = MakeCycle({1, 2, 3, 4});
  EXPECT_TRUE(matcher_->Contains(g, g));
}

TEST_P(MatcherKindTest, PathInCycle) {
  EXPECT_TRUE(matcher_->Contains(MakePath({0, 0, 0}), MakeCycle({0, 0, 0, 0})));
}

TEST_P(MatcherKindTest, CycleNotInPath) {
  EXPECT_FALSE(
      matcher_->Contains(MakeCycle({0, 0, 0}), MakePath({0, 0, 0, 0})));
}

TEST_P(MatcherKindTest, LabelsMustMatchExactly) {
  // Structurally embeddable but label-blocked.
  EXPECT_FALSE(matcher_->Contains(MakePath({1, 2}), MakePath({1, 1, 1})));
  EXPECT_TRUE(matcher_->Contains(MakePath({1, 2}), MakePath({2, 1, 1})));
}

TEST_P(MatcherKindTest, NonInducedSemantics) {
  // P3 (no chord) embeds into a triangle although the triangle has the
  // extra closing edge — non-induced subgraph isomorphism.
  EXPECT_TRUE(
      matcher_->Contains(MakePath({0, 0, 0}), MakeTriangle(0, 0, 0)));
}

TEST_P(MatcherKindTest, InjectivityEnforced) {
  // Two distinct '1'-leaves cannot both map to the single '1' in target.
  const Graph q = MakeStar({0, 1, 1});
  const Graph t = MakeGraph({0, 1}, {{0, 1}});
  EXPECT_FALSE(matcher_->Contains(q, t));
}

TEST_P(MatcherKindTest, StarNeedsHighDegreeVertex) {
  EXPECT_FALSE(
      matcher_->Contains(MakeStar({0, 0, 0, 0}), MakePath({0, 0, 0, 0, 0})));
  EXPECT_TRUE(
      matcher_->Contains(MakeStar({0, 0, 0, 0}), MakeStar({0, 0, 0, 0, 0})));
}

TEST_P(MatcherKindTest, TriangleInClique) {
  EXPECT_TRUE(matcher_->Contains(MakeTriangle(0, 0, 0), MakeClique(5, 0)));
}

TEST_P(MatcherKindTest, CliqueNeedsClique) {
  EXPECT_FALSE(matcher_->Contains(MakeClique(4, 0), MakeCycle({0, 0, 0, 0})));
}

TEST_P(MatcherKindTest, DisconnectedPatternBothComponentsNeeded) {
  Graph q;
  q.AddVertex(1);
  q.AddVertex(2);  // two isolated vertices with labels 1, 2
  EXPECT_TRUE(matcher_->Contains(q, MakePath({1, 2})));
  EXPECT_FALSE(matcher_->Contains(q, MakePath({1, 1})));
}

TEST_P(MatcherKindTest, DisconnectedPatternInjective) {
  // Two isolated '1' vertices need two distinct '1' targets.
  Graph q;
  q.AddVertex(1);
  q.AddVertex(1);
  EXPECT_FALSE(matcher_->Contains(q, MakeSingleton(1)));
  EXPECT_TRUE(matcher_->Contains(q, MakePath({1, 1})));
}

TEST_P(MatcherKindTest, LongerCycleDoesNotContainShorter) {
  EXPECT_FALSE(matcher_->Contains(MakeCycle({0, 0, 0}),
                                  MakeCycle({0, 0, 0, 0, 0})));
}

TEST_P(MatcherKindTest, BranchingPatternInMolecule) {
  // A "carboxyl"-like pattern inside a larger molecule-ish graph.
  // Pattern: C(=O)-O  modelled as labels C=0, O=1: star C with two O.
  const Graph pattern = MakeStar({0, 1, 1});
  const Graph molecule = MakeGraph({0, 0, 1, 1, 0},
                                   {{0, 1}, {1, 2}, {1, 3}, {0, 4}});
  EXPECT_TRUE(matcher_->Contains(pattern, molecule));
}

TEST_P(MatcherKindTest, FindEmbeddingReturnsValidWitness) {
  const Graph q = MakePath({0, 1, 0});
  const Graph t = MakeCycle({0, 1, 0, 1});
  std::vector<VertexId> embedding;
  ASSERT_TRUE(matcher_->FindEmbedding(q, t, &embedding));
  EXPECT_TRUE(IsValidEmbedding(q, t, embedding));
}

TEST_P(MatcherKindTest, StatsAccumulate) {
  MatchStats stats;
  matcher_->Contains(MakePath({0, 0, 0}), MakeClique(6, 0), &stats);
  EXPECT_GT(stats.nodes_expanded, 0u);
}

std::string MatcherTestName(
    const ::testing::TestParamInfo<MatcherKind>& info) {
  switch (info.param) {
    case MatcherKind::kVf2:
      return "VF2";
    case MatcherKind::kVf2Plus:
      return "VF2Plus";
    case MatcherKind::kGraphQl:
      return "GQL";
    case MatcherKind::kUllmann:
      return "Ullmann";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherKindTest,
                         ::testing::Values(MatcherKind::kVf2,
                                           MatcherKind::kVf2Plus,
                                           MatcherKind::kGraphQl,
                                           MatcherKind::kUllmann),
                         MatcherTestName);

TEST(MatcherFactoryTest, NamesMatchKinds) {
  EXPECT_EQ(MakeMatcher(MatcherKind::kVf2)->name(), "VF2");
  EXPECT_EQ(MakeMatcher(MatcherKind::kVf2Plus)->name(), "VF2+");
  EXPECT_EQ(MakeMatcher(MatcherKind::kGraphQl)->name(), "GQL");
  EXPECT_EQ(MakeMatcher(MatcherKind::kUllmann)->name(), "Ullmann");
}

TEST(IsValidEmbeddingTest, RejectsBadMappings) {
  const Graph q = MakePath({0, 1});
  const Graph t = MakePath({0, 1, 0});
  EXPECT_TRUE(IsValidEmbedding(q, t, {0, 1}));
  EXPECT_TRUE(IsValidEmbedding(q, t, {2, 1}));        // the other valid map
  EXPECT_FALSE(IsValidEmbedding(q, t, {0}));          // wrong arity
  EXPECT_FALSE(IsValidEmbedding(q, t, {0, 0}));       // not injective
  EXPECT_FALSE(IsValidEmbedding(q, t, {1, 0}));       // labels flipped
  EXPECT_FALSE(IsValidEmbedding(q, t, {0, 9}));       // out of range
  // Label-correct but edge missing: map into non-adjacent vertices.
  const Graph t2 = MakeGraph({0, 1, 1}, {{0, 1}});
  EXPECT_TRUE(IsValidEmbedding(q, t2, {0, 1}));
  EXPECT_FALSE(IsValidEmbedding(q, t2, {0, 2}));      // (0,2) not an edge
}

}  // namespace
}  // namespace gcp
