// Shared graph-construction helpers for the GC+ test suite.

#ifndef GCP_TESTS_TEST_UTIL_HPP_
#define GCP_TESTS_TEST_UTIL_HPP_

#include <initializer_list>
#include <vector>

#include "graph/graph.hpp"

namespace gcp::testing {

/// Builds a graph from labels and edges; aborts on invalid input
/// (tests construct only valid graphs through this).
inline Graph MakeGraph(std::vector<Label> labels,
                       std::vector<std::pair<VertexId, VertexId>> edges) {
  auto r = Graph::Create(std::move(labels), edges);
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

/// Path v0 - v1 - ... - v_{n-1} with the given labels (n = labels.size()).
inline Graph MakePath(std::vector<Label> labels) {
  Graph g;
  for (const Label l : labels) g.AddVertex(l);
  for (VertexId v = 0; v + 1 < g.NumVertices(); ++v) {
    g.AddEdge(v, v + 1).ok();
  }
  return g;
}

/// Cycle over the given labels (requires >= 3 vertices).
inline Graph MakeCycle(std::vector<Label> labels) {
  Graph g = MakePath(std::move(labels));
  g.AddEdge(static_cast<VertexId>(g.NumVertices() - 1), 0).ok();
  return g;
}

/// Star: center (labels[0]) joined to every other label.
inline Graph MakeStar(std::vector<Label> labels) {
  Graph g;
  for (const Label l : labels) g.AddVertex(l);
  for (VertexId v = 1; v < g.NumVertices(); ++v) g.AddEdge(0, v).ok();
  return g;
}

/// Triangle with the three given labels.
inline Graph MakeTriangle(Label a, Label b, Label c) {
  return MakeCycle({a, b, c});
}

/// A single labelled vertex.
inline Graph MakeSingleton(Label l) {
  Graph g;
  g.AddVertex(l);
  return g;
}

/// Complete graph K_n, all vertices labelled `l`.
inline Graph MakeClique(std::size_t n, Label l) {
  Graph g;
  for (std::size_t i = 0; i < n; ++i) g.AddVertex(l);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.AddEdge(u, v).ok();
  }
  return g;
}

}  // namespace gcp::testing

#endif  // GCP_TESTS_TEST_UTIL_HPP_
