// Background checkpointing vs racing mutators and readers (PR 8, TSan
// shard). The maintenance thread cuts checkpoints from live shard stores
// while query threads run the epoch read path and a mutator thread churns
// the dataset; an explicit CheckpointNow races the background one on
// checkpoint_mu_. The gates: no data race (TSan), zero read-phase
// engine-lock acquisitions, at least one durable checkpoint, and a
// subsequent engine on the same dataset warm-restarts from it.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "cache/checkpoint.hpp"
#include "common/io.hpp"
#include "core/graphcache_plus.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;
using testing::MakeSingleton;
using testing::MakeStar;

std::vector<Graph> Corpus() {
  std::vector<Graph> graphs;
  for (Label l = 0; l < 4; ++l) {
    graphs.push_back(MakePath({l, 0, 1}));
    graphs.push_back(MakeCycle({l, 1, 0}));
    graphs.push_back(MakeStar({l, 0, 1, 2}));
  }
  return graphs;
}

TEST(CheckpointConcurrencyTest, BackgroundCheckpointsUnderChurn) {
  const std::string dir =
      ::testing::TempDir() + "/checkpoint_concurrency";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  ASSERT_TRUE(PruneCheckpoints(dir, 0).ok());

  GraphDataset ds;
  ds.Bootstrap(Corpus());

  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  opts.cache_capacity = 12;
  opts.window_capacity = 3;
  opts.num_shards = 4;
  opts.epoch_reads = true;
  opts.maintenance_thread = true;
  opts.maintenance_interval_us = 100;
  opts.checkpoint_dir = dir;
  opts.checkpoint_interval_us = 300;  // fire often while the storm runs
  opts.checkpoint_keep = 3;

  {
    GraphCachePlus gc(&ds, opts);

    const std::vector<Graph> queries = {
        MakePath({0, 1}), MakeSingleton(0), MakePath({1, 0}),
        MakeCycle({0, 1, 0}), MakeStar({2, 0, 1})};
    std::atomic<bool> stop{false};

    std::thread reader_a([&] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)gc.SubgraphQuery(queries[i++ % queries.size()]);
      }
    });
    std::thread reader_b([&] {
      std::size_t i = 2;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)gc.SupergraphQuery(queries[i++ % queries.size()]);
      }
    });
    std::thread mutator([&] {
      std::size_t step = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        gc.ApplyDatasetChanges([&](GraphDataset& d) {
          d.AddGraph(MakePath({static_cast<Label>(step % 4), 1}));
          const std::vector<GraphId> live = d.LiveIds();
          if (step % 3 == 0 && live.size() > 8) {
            (void)d.DeleteGraph(live[step % (live.size() / 2)]);
          }
        });
        ++step;
      }
    });

    // Main thread: explicit checkpoints racing the background ones.
    for (int i = 0; i < 20; ++i) {
      (void)gc.CheckpointNow();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true, std::memory_order_relaxed);
    reader_a.join();
    reader_b.join();
    mutator.join();

    gc.FlushMaintenance();
    ASSERT_TRUE(gc.CheckpointNow().ok());

    const StatisticsManager stats = gc.CacheStatsSnapshot();
    EXPECT_GE(stats.checkpoints_written, 1u);
    EXPECT_GT(stats.checkpoint_bytes, 0u);
    // The acceptance gate: checkpointing never drags the epoch read path
    // onto the engine lock.
    EXPECT_EQ(gc.read_phase_engine_lock_acquisitions(), 0u);
  }

  // The committed checkpoints survive the engine: a successor process on
  // the same dataset warm-restarts from the newest valid sibling.
  EXPECT_FALSE(ListCheckpointSeqs(dir).empty());
  GraphCachePlus restarted(&ds, opts);
  GraphCachePlus::WarmRestartReport report;
  ASSERT_TRUE(restarted.WarmRestart(&report).ok());
  EXPECT_TRUE(report.warm);
  (void)restarted.SubgraphQuery(MakePath({0, 1}));
  EXPECT_EQ(restarted.read_phase_engine_lock_acquisitions(), 0u);
}

}  // namespace
}  // namespace gcp
