// Byte-budget oracle gate (PR 10):
//
// --byte-budget=off must reproduce the entry-count engine bit-exactly,
// and the sharp way to prove it is the executable oracle the capacity
// model was designed around: a budget so large it never binds takes every
// budget-only code path (gauge accounting, pressure monitor, byte pass
// entry points) yet must replay the budget-free engine exactly — same
// answers every step (both checked against uncached Method M), same
// resident population with identical CGvalid/answer indicators, same
// admission/eviction/hit/reconciliation counters — over a 300-step churn
// across {CON, EVI} × {lock, epoch} × shards {1, 8}. A bound budget then
// proves the byte pass engages: occupancy capped, byte evictions > 0,
// answers still exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

std::vector<Graph> ChurnCorpus(std::uint64_t seed) {
  AidsLikeOptions opts;
  opts.num_graphs = 120;
  opts.mean_vertices = 9.0;
  opts.stddev_vertices = 3.0;
  opts.min_vertices = 4;
  opts.max_vertices = 14;
  opts.num_labels = 8;
  opts.seed = seed;
  return AidsLikeGenerator(opts).Generate();
}

struct EngineUnderTest {
  std::unique_ptr<GraphDataset> ds;
  std::unique_ptr<GraphCachePlus> gc;
};

EngineUnderTest MakeEngine(const std::vector<Graph>& corpus, CacheModel model,
                           bool epoch, std::size_t shards,
                           std::size_t byte_budget, bool admission) {
  EngineUnderTest e;
  e.ds = std::make_unique<GraphDataset>();
  e.ds->Bootstrap(corpus);
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  opts.num_shards = shards;
  opts.epoch_reads = epoch;
  opts.use_ftv_index = true;
  opts.fragment_capacity = 24;
  opts.byte_budget = byte_budget;
  if (!admission) {
    opts.enable_admission = false;
    opts.enable_exact_shortcut = false;
    opts.enable_empty_answer_shortcut = false;
  }
  e.gc = std::make_unique<GraphCachePlus>(e.ds.get(), opts);
  return e;
}

void ApplyChurnChanges(GraphDataset& ds, const std::vector<Graph>& corpus,
                       std::size_t step) {
  ds.AddGraph(corpus[(5 * step + 2) % corpus.size()]);
  const std::vector<GraphId> live = ds.LiveIds();
  std::size_t mutated = 0;
  for (std::size_t i = live.size(); i-- > 0 && mutated < 3;) {
    const GraphId id = live[i];
    const Graph& g = ds.graph(id);
    if (g.NumVertices() >= 2 && g.HasEdge(0, 1)) {
      ASSERT_TRUE(ds.RemoveEdge(id, 0, 1).ok());
      if ((step + mutated) % 2 == 0) {
        ASSERT_TRUE(ds.AddEdge(id, 0, 1).ok());
      }
      ++mutated;
    }
  }
  if (step % 3 == 0) {
    const GraphId victim = live[(13 * step + 7) % (live.size() / 2 + 1)];
    ASSERT_TRUE(ds.DeleteGraph(victim).ok());
  }
}

std::string BitsetString(const DynamicBitset& bits) {
  std::string s(bits.size(), '0');
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.Test(i)) s[i] = '1';
  }
  return s;
}

/// Sorted (digest, kind, CGvalid, answer) tuples over every resident
/// whole-query entry — equality means identical contents, validity
/// knowledge AND replacement decisions.
std::vector<std::string> ResidentState(const GraphCachePlus& gc) {
  std::vector<std::string> out;
  gc.cache_shards().ForEachEntry([&out](const CachedQuery& e) {
    out.push_back(std::to_string(e.digest) + "|" +
                  (e.kind == CachedQueryKind::kSubgraph ? "sub" : "super") +
                  "|" + BitsetString(e.valid) + "|" + BitsetString(e.answer));
  });
  std::sort(out.begin(), out.end());
  return out;
}

/// A budget the tiny churn caches can never reach, yet finite — so the
/// gauge, monitor and byte-pass entry points all run.
constexpr std::size_t kHugeBudget = std::size_t{1} << 32;

void RunBudgetReplay(CacheModel model, bool epoch, std::size_t shards) {
  constexpr std::size_t kSteps = 300;
  const std::vector<Graph> corpus = ChurnCorpus(2468);
  const Workload w = GenerateTypeAByName(corpus, "ZU", kSteps, /*seed=*/707,
                                         /*zipf_alpha=*/1.2);

  EngineUnderTest off = MakeEngine(corpus, model, epoch, shards,
                                   /*byte_budget=*/0, /*admission=*/true);
  EngineUnderTest huge = MakeEngine(corpus, model, epoch, shards, kHugeBudget,
                                    /*admission=*/true);
  EngineUnderTest method_m = MakeEngine(corpus, model, epoch, shards,
                                        /*byte_budget=*/0,
                                        /*admission=*/false);

  for (std::size_t step = 0; step < kSteps; ++step) {
    if (step % 7 == 5) {
      for (EngineUnderTest* e : {&off, &huge, &method_m}) {
        e->gc->ApplyDatasetChanges([&corpus, step](GraphDataset& d) {
          ApplyChurnChanges(d, corpus, step);
        });
      }
      continue;
    }
    const QueryKind kind =
        step % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
    const Graph& q = w.queries[step].query;
    const std::vector<GraphId> truth = method_m.gc->Query(q, kind).answer;
    EXPECT_EQ(off.gc->Query(q, kind).answer, truth)
        << "budget-off engine diverged from Method M at step " << step;
    EXPECT_EQ(huge.gc->Query(q, kind).answer, truth)
        << "never-binding budget changed an answer at step " << step;
  }

  // Settle on the same point of the sync cycle before comparing state.
  const std::vector<GraphId> settle =
      off.gc->Query(w.queries[0].query, QueryKind::kSubgraph).answer;
  EXPECT_EQ(huge.gc->Query(w.queries[0].query, QueryKind::kSubgraph).answer,
            settle);

  off.gc->FlushMaintenance();
  huge.gc->FlushMaintenance();
  const StatisticsManager offs = off.gc->CacheStatsSnapshot();
  const StatisticsManager huges = huge.gc->CacheStatsSnapshot();

  EXPECT_EQ(ResidentState(*off.gc), ResidentState(*huge.gc));
  EXPECT_GT(offs.total_admissions, 0u);
  EXPECT_EQ(huges.total_admissions, offs.total_admissions);
  EXPECT_EQ(huges.total_evictions, offs.total_evictions);
  EXPECT_EQ(huges.total_admission_dedups, offs.total_admission_dedups);
  EXPECT_EQ(huges.total_exact_hits, offs.total_exact_hits);
  EXPECT_EQ(huges.total_sub_hits, offs.total_sub_hits);
  EXPECT_EQ(huges.total_super_hits, offs.total_super_hits);
  EXPECT_EQ(huges.reconcile_entries_touched, offs.reconcile_entries_touched);
  EXPECT_EQ(huges.reconcile_entries_skipped, offs.reconcile_entries_skipped);
  EXPECT_EQ(huges.fragment_admissions, offs.fragment_admissions);
  EXPECT_EQ(huges.fragment_evictions, offs.fragment_evictions);
  // Identical resident state ⇒ identical byte gauges.
  EXPECT_EQ(huges.approx_graph_bytes, offs.approx_graph_bytes);
  EXPECT_EQ(huges.approx_bitset_bytes, offs.approx_bitset_bytes);

  // The budget never bound and the monitor never tripped: no byte
  // evictions, no shed offers, no bypasses, tier parked at NORMAL.
  EXPECT_EQ(huges.byte_budget_evictions, 0u);
  EXPECT_EQ(huges.fragment_byte_evictions, 0u);
  EXPECT_EQ(huges.admission_offers_shed, 0u);
  EXPECT_EQ(huges.pressure_bypassed_queries, 0u);
  EXPECT_EQ(huges.pressure_elevated_transitions, 0u);
  ASSERT_NE(huge.gc->pressure_monitor(), nullptr);
  EXPECT_EQ(huge.gc->pressure_tier(), PressureTier::kNormal);
  // The gauge really ran: it mirrors the resident graph+bitset bytes of
  // every shard's whole-query and fragment stores.
  std::uint64_t resident_bytes = 0;
  for (std::size_t s = 0; s < huge.gc->cache_shards().num_shards(); ++s) {
    const CacheManager& shard = huge.gc->cache_shards().shard(s);
    resident_bytes +=
        shard.approx_entry_bytes() + shard.fragments().approx_entry_bytes();
  }
  EXPECT_EQ(huge.gc->pressure_monitor()->bytes(), resident_bytes);
  // The budget-off engine has no monitor at all.
  EXPECT_EQ(off.gc->pressure_monitor(), nullptr);
}

void RunBoundBudgetServes(CacheModel model, bool epoch, std::size_t shards) {
  constexpr std::size_t kSteps = 120;
  const std::vector<Graph> corpus = ChurnCorpus(1357);
  const Workload w = GenerateTypeAByName(corpus, "ZU", kSteps, /*seed=*/11,
                                         /*zipf_alpha=*/1.2);
  // ~512 bytes per shard: room for at most an entry or two, well under
  // what the entry-count cap would keep even at 8 shards (ceil(16/8) + a
  // window slot), so it is the byte pass — not the count pass — that
  // fires constantly while answers stay exact.
  EngineUnderTest bound = MakeEngine(corpus, model, epoch, shards,
                                     /*byte_budget=*/512 * shards,
                                     /*admission=*/true);
  EngineUnderTest method_m = MakeEngine(corpus, model, epoch, shards, 0,
                                        /*admission=*/false);
  for (std::size_t step = 0; step < kSteps; ++step) {
    if (step % 7 == 5) {
      for (EngineUnderTest* e : {&bound, &method_m}) {
        e->gc->ApplyDatasetChanges([&corpus, step](GraphDataset& d) {
          ApplyChurnChanges(d, corpus, step);
        });
      }
      continue;
    }
    const QueryKind kind =
        step % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
    const Graph& q = w.queries[step].query;
    EXPECT_EQ(bound.gc->Query(q, kind).answer,
              method_m.gc->Query(q, kind).answer)
        << "bound budget changed an answer at step " << step;
  }
  bound.gc->FlushMaintenance();
  const StatisticsManager stats = bound.gc->CacheStatsSnapshot();
  EXPECT_GT(stats.byte_budget_evictions, 0u)
      << "the bound budget never forced an eviction — not a bound budget";
  // Post-merge occupancy respects the summed shard budgets.
  std::uint64_t resident_bytes = 0;
  std::uint64_t budget_sum = 0;
  for (std::size_t s = 0; s < bound.gc->cache_shards().num_shards(); ++s) {
    const CacheManager& shard = bound.gc->cache_shards().shard(s);
    resident_bytes += shard.approx_entry_bytes();
    budget_sum += shard.entry_byte_budget();
  }
  EXPECT_LE(resident_bytes, budget_sum);
}

TEST(ByteBudgetEquivalenceTest, ConLockSingleShard) {
  RunBudgetReplay(CacheModel::kCon, /*epoch=*/false, /*shards=*/1);
}

TEST(ByteBudgetEquivalenceTest, ConLockEightShards) {
  RunBudgetReplay(CacheModel::kCon, /*epoch=*/false, /*shards=*/8);
}

TEST(ByteBudgetEquivalenceTest, ConEpochSingleShard) {
  RunBudgetReplay(CacheModel::kCon, /*epoch=*/true, /*shards=*/1);
}

TEST(ByteBudgetEquivalenceTest, ConEpochEightShards) {
  RunBudgetReplay(CacheModel::kCon, /*epoch=*/true, /*shards=*/8);
}

TEST(ByteBudgetEquivalenceTest, EviLockSingleShard) {
  RunBudgetReplay(CacheModel::kEvi, /*epoch=*/false, /*shards=*/1);
}

TEST(ByteBudgetEquivalenceTest, EviLockEightShards) {
  RunBudgetReplay(CacheModel::kEvi, /*epoch=*/false, /*shards=*/8);
}

TEST(ByteBudgetEquivalenceTest, EviEpochSingleShard) {
  RunBudgetReplay(CacheModel::kEvi, /*epoch=*/true, /*shards=*/1);
}

TEST(ByteBudgetEquivalenceTest, EviEpochEightShards) {
  RunBudgetReplay(CacheModel::kEvi, /*epoch=*/true, /*shards=*/8);
}

TEST(ByteBudgetEquivalenceTest, BoundBudgetConLockStaysExact) {
  RunBoundBudgetServes(CacheModel::kCon, /*epoch=*/false, /*shards=*/1);
}

TEST(ByteBudgetEquivalenceTest, BoundBudgetEviEpochShardedStaysExact) {
  RunBoundBudgetServes(CacheModel::kEvi, /*epoch=*/true, /*shards=*/8);
}

}  // namespace
}  // namespace gcp
