// Drain-time admission dedup: two concurrent executions of the same query
// can both miss the read-phase exact-hit check and offer isomorphic twin
// entries. The per-shard apply path probes the shard's digest index and
// drops the second offer — but ONLY when the resident twin is fully valid
// over the live dataset (the serial engine's §6.3 exact-hit
// precondition); isomorphic-but-not-fully-valid residents do not block
// admission, because the serial engine admits those too.
//
// The tests make the race deterministic: the maintenance thread is given
// an hour-long timer and queues big enough that no pressure wakeup fires,
// so offers pile up unapplied until FlushMaintenance drains them in
// order.

#include <gtest/gtest.h>

#include <memory>

#include "core/graphcache_plus.hpp"
#include "../test_util.hpp"

namespace gcp {
namespace {

GraphCachePlusOptions ParkedMaintenanceOptions(std::size_t shards) {
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  opts.cache_capacity = 8;
  opts.window_capacity = 4;
  opts.num_shards = shards;
  opts.maintenance_thread = true;
  // Park the drain thread: no timer tick within the test, and queues far
  // from the pressure threshold — offers stay queued until an explicit
  // flush.
  opts.maintenance_interval_us = 3'600'000'000ULL;
  opts.maintenance_queue_capacity = 64;
  return opts;
}

class AdmissionDedupTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    // g0, g1 contain the A-B path; g2 (all-C path) does not and has a
    // free non-edge (0,2) to target with a UA later.
    corpus_.push_back(testing::MakePath({0, 1, 2}));  // A-B-C
    corpus_.push_back(testing::MakeTriangle(0, 1, 2));
    corpus_.push_back(testing::MakePath({2, 2, 2}));
    ds_.Bootstrap(corpus_);
    gc_ = std::make_unique<GraphCachePlus>(
        &ds_, ParkedMaintenanceOptions(GetParam()));
  }

  std::vector<Graph> corpus_;
  GraphDataset ds_;
  std::unique_ptr<GraphCachePlus> gc_;
  const Graph query_ = testing::MakePath({0, 1});  // A-B
};

TEST_P(AdmissionDedupTest, SecondTwinOfferIsDroppedAtDrain) {
  // Two executions of the same query before any drain: both read phases
  // see an empty cache, both defer an admission offer.
  const auto a1 = gc_->SubgraphQuery(query_).answer;
  const auto a2 = gc_->SubgraphQuery(query_).answer;
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(gc_->cache_shards().resident(), 0u)
      << "offers must still be queued";

  gc_->FlushMaintenance();
  EXPECT_EQ(gc_->cache_shards().resident(), 1u)
      << "exactly one of the two isomorphic offers may be admitted";
  const StatisticsManager stats = gc_->CacheStatsSnapshot();
  EXPECT_EQ(stats.total_admissions, 1u);
  EXPECT_EQ(stats.total_admission_dedups, 1u);

  // A third execution now sees the resident twin: exact hit, no offer.
  gc_->SubgraphQuery(query_);
  gc_->FlushMaintenance();
  EXPECT_EQ(gc_->cache_shards().resident(), 1u);
  EXPECT_EQ(gc_->CacheStatsSnapshot().total_exact_hits, 1u);
}

TEST_P(AdmissionDedupTest, NotFullyValidTwinDoesNotBlockAdmission) {
  // Admit the query once.
  gc_->SubgraphQuery(query_);
  gc_->FlushMaintenance();
  ASSERT_EQ(gc_->cache_shards().resident(), 1u);

  // UA on g2 — a live graph OUTSIDE the entry's answer — fades the
  // entry's validity bit for g2 at the next sync (edge additions only
  // preserve positive results for subgraph-query entries).
  gc_->ApplyDatasetChanges([](GraphDataset& d) {
    ASSERT_TRUE(d.AddEdge(2, 0, 2).ok());
  });

  // Two more executions: the resident twin is isomorphic but no longer
  // fully valid, so neither read phase takes the exact shortcut and both
  // defer offers, exactly like the serial engine would.
  gc_->SubgraphQuery(query_);
  gc_->SubgraphQuery(query_);
  gc_->FlushMaintenance();

  // Serial semantics preserved: the first fresh offer is admitted
  // alongside the faded twin; the second is dedup-dropped against the
  // (fully valid) first.
  EXPECT_EQ(gc_->cache_shards().resident(), 2u);
  const StatisticsManager stats = gc_->CacheStatsSnapshot();
  EXPECT_EQ(stats.total_admissions, 2u);
  EXPECT_EQ(stats.total_admission_dedups, 1u);
  EXPECT_EQ(stats.total_exact_hits, 0u);
  EXPECT_EQ(gc_->cache_shards().lock_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, AdmissionDedupTest,
                         ::testing::Values(1u, 4u));

}  // namespace
}  // namespace gcp
