// Allocation-fault matrix (PR 10): the OOM analogue of the crash matrix.
// Every discretionary allocation the engine makes — arena block growth,
// whole-query admission, fragment admission, snapshot export — consults
// the process-global injector; this sweep fails the Nth consult for every
// N and demands the run degrade gracefully: answers bit-exact vs an
// uncached Method M oracle, no crash, the refused state simply shed. A
// blackout scenario (every site failing at once) must serve uncached and
// then recover to full caching when the pressure lifts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.hpp"
#include "common/alloc_fault.hpp"
#include "core/graphcache_plus.hpp"

namespace gcp {
namespace {

using testing::MakeCycle;
using testing::MakePath;
using testing::MakeSingleton;
using testing::MakeStar;

std::vector<Graph> Corpus() {
  return {MakePath({0, 0, 1}),    MakePath({0, 1}),
          MakeCycle({0, 0, 0}),   MakePath({2, 0, 1}),
          MakeSingleton(2),       MakeStar({1, 0, 0, 2}),
          MakeCycle({1, 2, 1, 2}), MakePath({0, 1, 2, 0})};
}

std::vector<Graph> Queries() {
  return {MakePath({0, 1}),    MakeSingleton(0),     MakePath({0, 0}),
          MakeCycle({0, 0, 0}), MakePath({1, 2}),    MakeSingleton(2),
          MakePath({0, 1, 2}), MakeStar({1, 0, 0})};
}

constexpr int kMutationSteps = 5;

void Mutate(GraphDataset& ds, int step) {
  switch (step) {
    case 0: ds.AddGraph(MakePath({2, 2})); break;
    case 1: ASSERT_TRUE(ds.RemoveEdge(0, 0, 1).ok()); break;
    case 2: ds.AddGraph(MakeCycle({2, 0, 2})); break;
    case 3: ASSERT_TRUE(ds.DeleteGraph(4).ok()); break;
    case 4: ASSERT_TRUE(ds.AddEdge(0, 0, 1).ok()); break;
    default: FAIL() << "no such mutation step " << step;
  }
}

GraphCachePlusOptions EngineOptions() {
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  opts.cache_capacity = 8;
  opts.window_capacity = 2;
  opts.num_shards = 2;
  opts.fragment_capacity = 16;
  // Arm the pressure monitor (never binds at this scale) so recovery to
  // NORMAL is part of what every sweep iteration proves.
  opts.byte_budget = std::size_t{1} << 30;
  return opts;
}

GraphCachePlusOptions OracleOptions() {
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  opts.enable_admission = false;
  opts.enable_exact_shortcut = false;
  opts.enable_empty_answer_shortcut = false;
  return opts;
}

/// The interleaved run every sweep iteration replays: queries, dataset
/// mutations, one explicit snapshot export. Appends each query's answer.
std::vector<std::vector<GraphId>> SeedRun(GraphCachePlus& gc,
                                          GraphDataset& ds) {
  std::vector<std::vector<GraphId>> answers;
  for (int step = 0; step <= kMutationSteps; ++step) {
    for (const Graph& q : Queries()) {
      answers.push_back(gc.SubgraphQuery(q).answer);
    }
    if (step == 2) {
      gc.FlushMaintenance();
      // Export consults kSnapshotExport; a refused export is a failed
      // (counted) export, never a crash or a state change.
      (void)gc.ExportSnapshot();
    }
    if (step < kMutationSteps) Mutate(ds, step);
  }
  gc.FlushMaintenance();
  return answers;
}

std::vector<std::vector<GraphId>> OracleAnswers() {
  GraphDataset ds;
  ds.Bootstrap(Corpus());
  GraphCachePlus gc(&ds, OracleOptions());
  std::vector<std::vector<GraphId>> answers;
  for (int step = 0; step <= kMutationSteps; ++step) {
    for (const Graph& q : Queries()) {
      answers.push_back(gc.SubgraphQuery(q).answer);
    }
    if (step < kMutationSteps) Mutate(ds, step);
  }
  return answers;
}

TEST(OomMatrixTest, FailingEveryNthAllocationKeepsAnswersExact) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  bool saw_admission = false;
  bool saw_fragment = false;
  bool saw_export = false;
  // Sweep the failing consult over the global allocation index until a
  // full run completes without the script firing — every discretionary
  // allocation has then hosted a failure once.
  for (std::uint64_t n = 0;; ++n) {
    ScriptedAllocationFaultInjector injector;
    injector.FailAt(n);
    ScopedAllocationFaultInjector scope(&injector);
    GraphDataset ds;
    ds.Bootstrap(Corpus());
    GraphCachePlus gc(&ds, EngineOptions());
    EXPECT_EQ(SeedRun(gc, ds), oracle) << "divergence with OOM at consult "
                                       << n;
    EXPECT_EQ(gc.pressure_tier(), PressureTier::kNormal)
        << "no recovery after OOM at consult " << n;
    if (injector.fired() > 0) {
      switch (injector.fired_site()) {
        case AllocSite::kAdmission: saw_admission = true; break;
        case AllocSite::kFragmentAdmission: saw_fragment = true; break;
        case AllocSite::kSnapshotExport: saw_export = true; break;
        case AllocSite::kArenaBlock: break;
      }
    } else {
      break;  // n ran past every consult the run makes
    }
    ASSERT_LT(n, 512u) << "allocation sweep failed to terminate";
  }
  // The sweep actually crossed the cache's allocation sites (arena growth
  // is warm-up dependent, so it is not demanded here).
  EXPECT_TRUE(saw_admission);
  EXPECT_TRUE(saw_fragment);
  EXPECT_TRUE(saw_export);
}

TEST(OomMatrixTest, AllocationBlackoutServesUncachedThenRecovers) {
  const std::vector<std::vector<GraphId>> oracle = OracleAnswers();
  ScriptedAllocationFaultInjector injector;
  ScopedAllocationFaultInjector scope(&injector);
  for (const AllocSite site :
       {AllocSite::kArenaBlock, AllocSite::kAdmission,
        AllocSite::kFragmentAdmission, AllocSite::kSnapshotExport}) {
    injector.FailSite(site, true);
  }
  GraphDataset ds;
  ds.Bootstrap(Corpus());
  GraphCachePlus gc(&ds, EngineOptions());
  EXPECT_EQ(SeedRun(gc, ds), oracle);
  StatisticsManager starved = gc.CacheStatsSnapshot();
  // Every admission was refused: the engine served the whole run through
  // uncached Method M without learning a single query.
  EXPECT_EQ(starved.total_admissions, 0u);
  EXPECT_EQ(starved.fragment_admissions, 0u);
  EXPECT_GT(starved.alloc_failed_admissions, 0u);
  EXPECT_GT(starved.alloc_failed_fragments, 0u);
  EXPECT_FALSE(gc.ExportSnapshot().ok());

  // Memory pressure lifts: caching resumes on the same engine instance.
  injector.DisarmScript();
  for (const Graph& q : Queries()) {
    (void)gc.SubgraphQuery(q);
  }
  gc.FlushMaintenance();
  const StatisticsManager recovered = gc.CacheStatsSnapshot();
  EXPECT_GT(recovered.total_admissions, 0u);
  EXPECT_TRUE(gc.ExportSnapshot().ok());
  EXPECT_EQ(gc.pressure_tier(), PressureTier::kNormal);
}

TEST(OomMatrixTest, SnapshotExportFaultFailsCheckpointGracefully) {
  const std::string dir = ::testing::TempDir() + "/oom_export";
  GraphCachePlusOptions opts = EngineOptions();
  opts.checkpoint_dir = dir;
  GraphDataset ds;
  ds.Bootstrap(Corpus());
  GraphCachePlus gc(&ds, opts);
  for (const Graph& q : Queries()) {
    (void)gc.SubgraphQuery(q);
  }
  gc.FlushMaintenance();

  ScriptedAllocationFaultInjector injector;
  ScopedAllocationFaultInjector scope(&injector);
  injector.FailSite(AllocSite::kSnapshotExport, true);
  const Status refused = gc.CheckpointNow();
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  const StatisticsManager stats = gc.CacheStatsSnapshot();
  EXPECT_GE(stats.checkpoints_failed, 1u);
  EXPECT_EQ(stats.checkpoints_written, 0u);

  injector.DisarmScript();
  EXPECT_TRUE(gc.CheckpointNow().ok());
  EXPECT_GE(gc.CacheStatsSnapshot().checkpoints_written, 1u);
}

}  // namespace
}  // namespace gcp
