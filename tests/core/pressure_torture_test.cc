// Pressure-tier torture (PR 10): graceful degradation under memory and
// queue pressure. The deterministic suites drive the engine's pressure
// monitor directly — ELEVATED must shed admission offers (counted, never
// queued), CRITICAL must additionally serve discovery misses straight
// through uncached Method M, and recovery back to full caching must be
// automatic once the pressure lifts. The concurrent suites hammer one
// engine with closed-loop clients, queue backpressure and allocation-
// fault chaos, demanding exact answers throughout (sanitizer-gated: the
// suite name matches the ASan torture label and the TSan CI shard).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "common/alloc_fault.hpp"
#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

using testing::MakePath;

constexpr std::size_t kBudget = std::size_t{1} << 20;

std::vector<Graph> TortureCorpus() {
  AidsLikeOptions opts;
  opts.num_graphs = 60;
  opts.mean_vertices = 8.0;
  opts.stddev_vertices = 2.0;
  opts.min_vertices = 4;
  opts.max_vertices = 12;
  opts.num_labels = 6;
  opts.seed = 97;
  return AidsLikeGenerator(opts).Generate();
}

GraphCachePlusOptions TortureOptions() {
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  opts.fragment_capacity = 24;
  opts.byte_budget = kBudget;
  return opts;
}

/// Ground truth on the same (static) dataset: uncached Method M.
std::vector<std::vector<GraphId>> Truth(const std::vector<Graph>& corpus,
                                        const Workload& w, std::size_t n) {
  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kCon;
  opts.enable_admission = false;
  opts.enable_exact_shortcut = false;
  opts.enable_empty_answer_shortcut = false;
  GraphCachePlus gc(&ds, opts);
  std::vector<std::vector<GraphId>> truth;
  for (std::size_t i = 0; i < n; ++i) {
    truth.push_back(gc.SubgraphQuery(w.queries[i].query).answer);
  }
  return truth;
}

TEST(PressureTortureTest, CriticalPressureBypassesCacheAndRecovers) {
  const std::vector<Graph> corpus = TortureCorpus();
  const Workload w =
      GenerateTypeAByName(corpus, "ZU", 40, /*seed=*/5, /*zipf_alpha=*/1.3);
  const std::vector<std::vector<GraphId>> truth = Truth(corpus, w, 40);

  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlus gc(&ds, TortureOptions());
  ASSERT_NE(gc.pressure_monitor(), nullptr);
  // Warm: queries 0..19 admitted and servable as hits.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(gc.SubgraphQuery(w.queries[i].query).answer, truth[i]);
  }
  gc.FlushMaintenance();
  const StatisticsManager warm = gc.CacheStatsSnapshot();
  ASSERT_GT(warm.total_admissions, 0u);
  EXPECT_EQ(warm.pressure_bypassed_queries, 0u);

  // Synthetic memory flood → CRITICAL: every query bypasses discovery and
  // the fragment tier and is served through uncached Method M, bit-exact.
  gc.pressure_monitor()->AddBytes(static_cast<std::int64_t>(2 * kBudget));
  ASSERT_EQ(gc.pressure_tier(), PressureTier::kCritical);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(gc.SubgraphQuery(w.queries[i].query).answer, truth[i])
        << "CRITICAL bypass changed an answer at query " << i;
  }
  gc.FlushMaintenance();
  const StatisticsManager critical = gc.CacheStatsSnapshot();
  EXPECT_EQ(critical.pressure_bypassed_queries, 40u);
  // Nothing was admitted while shedding; the offers were counted instead.
  EXPECT_EQ(critical.total_admissions, warm.total_admissions);
  EXPECT_GT(critical.admission_offers_shed, 0u);
  // Bypassed queries never probe the cache, so no new hits either.
  EXPECT_EQ(critical.total_exact_hits, warm.total_exact_hits);
  EXPECT_GE(critical.pressure_critical_transitions, 1u);

  // Pressure lifts → NORMAL: hits and admissions resume on the same
  // engine instance.
  gc.pressure_monitor()->AddBytes(-static_cast<std::int64_t>(2 * kBudget));
  ASSERT_EQ(gc.pressure_tier(), PressureTier::kNormal);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(gc.SubgraphQuery(w.queries[i].query).answer, truth[i]);
  }
  gc.FlushMaintenance();
  const StatisticsManager recovered = gc.CacheStatsSnapshot();
  EXPECT_GT(recovered.total_exact_hits, critical.total_exact_hits);
  EXPECT_GT(recovered.total_admissions, critical.total_admissions);
  EXPECT_EQ(recovered.pressure_bypassed_queries,
            critical.pressure_bypassed_queries);
}

TEST(PressureTortureTest, ElevatedPressureShedsOffersButStillProbes) {
  const std::vector<Graph> corpus = TortureCorpus();
  const Workload w =
      GenerateTypeAByName(corpus, "ZU", 40, /*seed=*/6, /*zipf_alpha=*/1.3);
  const std::vector<std::vector<GraphId>> truth = Truth(corpus, w, 40);

  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlus gc(&ds, TortureOptions());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(gc.SubgraphQuery(w.queries[i].query).answer, truth[i]);
  }
  gc.FlushMaintenance();
  const StatisticsManager warm = gc.CacheStatsSnapshot();

  // ~1.5× the budget: ELEVATED, not CRITICAL.
  gc.pressure_monitor()->AddBytes(static_cast<std::int64_t>(kBudget * 3 / 2));
  ASSERT_EQ(gc.pressure_tier(), PressureTier::kElevated);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(gc.SubgraphQuery(w.queries[i].query).answer, truth[i]);
  }
  gc.FlushMaintenance();
  const StatisticsManager elevated = gc.CacheStatsSnapshot();
  // ELEVATED only sheds offers — discovery still serves hits.
  EXPECT_EQ(elevated.pressure_bypassed_queries, 0u);
  EXPECT_GT(elevated.total_exact_hits, warm.total_exact_hits);
  EXPECT_EQ(elevated.total_admissions, warm.total_admissions);
  EXPECT_GT(elevated.admission_offers_shed, 0u);
  EXPECT_GE(elevated.pressure_elevated_transitions, 1u);

  gc.pressure_monitor()->AddBytes(-static_cast<std::int64_t>(kBudget * 3 / 2));
  EXPECT_EQ(gc.pressure_tier(), PressureTier::kNormal);
  for (std::size_t i = 20; i < 40; ++i) {
    EXPECT_EQ(gc.SubgraphQuery(w.queries[i].query).answer, truth[i]);
  }
  gc.FlushMaintenance();
  EXPECT_GT(gc.CacheStatsSnapshot().total_admissions, warm.total_admissions);
}

TEST(PressureTortureTest, QueueBackpressureInlineDrainsAreCounted) {
  const std::vector<Graph> corpus = TortureCorpus();
  const Workload w = GenerateTypeAByName(corpus, "UU", 400, /*seed=*/7,
                                         /*zipf_alpha=*/1.0);
  const std::vector<std::vector<GraphId>> truth = Truth(corpus, w, 400);

  GraphCachePlusOptions opts = TortureOptions();
  // One shard with a single-slot queue: any two in-flight batches collide
  // and the loser must drain inline (counted, never dropped). The byte
  // budget is off here — with a single-slot queue even one successful
  // push reads as a full queue, and an armed monitor would go CRITICAL
  // and shed every later offer, leaving nothing to collide.
  opts.byte_budget = 0;
  opts.maintenance_queue_capacity = 1;

  // A collision needs two clients in the push window at once — on a
  // loaded machine one round of 400 queries can serialize cleanly, so
  // retry with a fresh engine until the counter moves. The answers and
  // lock-discipline checks hold on every round regardless.
  constexpr std::size_t kThreads = 4;
  constexpr int kMaxRounds = 25;
  std::uint64_t inline_drains = 0;
  for (int round = 0; round < kMaxRounds && inline_drains == 0; ++round) {
    GraphDataset ds;
    ds.Bootstrap(corpus);
    GraphCachePlus gc(&ds, opts);
    std::atomic<std::size_t> next{0};
    std::atomic<int> mismatches{0};
    std::atomic<std::size_t> ready{0};
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&] {
        // Spin-start barrier: release all clients into the engine at
        // once to maximize hand-off overlap.
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (ready.load(std::memory_order_acquire) < kThreads) {
        }
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= 400) return;
          if (gc.SubgraphQuery(w.queries[i].query).answer != truth[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& c : clients) c.join();
    gc.FlushMaintenance();
    EXPECT_EQ(mismatches.load(), 0) << "mismatch in round " << round;
    EXPECT_EQ(gc.cache_shards().lock_violations(), 0u);
    inline_drains = gc.CacheStatsSnapshot().backpressure_inline_drains;
  }
  EXPECT_GT(inline_drains, 0u)
      << "a single-slot queue under 4 clients never overflowed in "
      << kMaxRounds << " rounds";
}

TEST(PressureTortureTest, ChaosFaultsAndPressureSwingsStayExact) {
  const std::vector<Graph> corpus = TortureCorpus();
  const Workload w = GenerateTypeAByName(corpus, "ZU", 600, /*seed=*/8,
                                         /*zipf_alpha=*/1.2);
  const std::vector<std::vector<GraphId>> truth = Truth(corpus, w, 600);

  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlusOptions opts = TortureOptions();
  opts.num_shards = 4;
  opts.maintenance_thread = true;
  GraphCachePlus gc(&ds, opts);

  ScriptedAllocationFaultInjector injector;
  ScopedAllocationFaultInjector scope(&injector);

  constexpr std::size_t kThreads = 4;
  std::atomic<std::size_t> next{0};
  std::atomic<int> mismatches{0};
  std::atomic<bool> chaos_on{true};
  // Chaos: swing the byte gauge across every tier boundary and strobe
  // admission/fragment faults while the clients hammer the engine.
  std::thread chaos([&] {
    std::int64_t injected = 0;
    for (int round = 0; chaos_on.load(std::memory_order_relaxed); ++round) {
      const std::int64_t delta =
          (round % 3 == 0) ? static_cast<std::int64_t>(2 * kBudget)
                           : static_cast<std::int64_t>(kBudget / 2);
      gc.pressure_monitor()->AddBytes(delta);
      injected += delta;
      injector.FailSite(AllocSite::kAdmission, round % 2 == 0);
      injector.FailSite(AllocSite::kFragmentAdmission, round % 3 == 0);
      std::this_thread::yield();
      if (round % 4 == 3) {
        gc.pressure_monitor()->AddBytes(-injected);
        injected = 0;
      }
    }
    gc.pressure_monitor()->AddBytes(-injected);
    injector.DisarmScript();
  });
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= 600) return;
        if (gc.SubgraphQuery(w.queries[i].query).answer != truth[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  chaos_on.store(false, std::memory_order_relaxed);
  chaos.join();
  gc.FlushMaintenance();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(gc.cache_shards().lock_violations(), 0u);
  // The synthetic bytes are all withdrawn: the byte channel recovers (the
  // queue channel may need one more observation, so tier is not pinned).
  EXPECT_LE(gc.pressure_monitor()->bytes(), kBudget);
  // Post-chaos serving is fully functional.
  const StatisticsManager before = gc.CacheStatsSnapshot();
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(gc.SubgraphQuery(w.queries[i].query).answer, truth[i]);
  }
  gc.FlushMaintenance();
  EXPECT_GE(gc.CacheStatsSnapshot().total_admissions,
            before.total_admissions);
}

}  // namespace
}  // namespace gcp
