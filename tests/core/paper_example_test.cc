// End-to-end reproduction of the paper's running example (Figure 2
// timeline with the Figure 3 pruning logic) against a real GraphCachePlus
// instance in CON mode.
//
// Timeline:
//   T0  dataset {G0, G1, G2, G3}, empty CON cache
//   T1  query g' executed and admitted
//   T2  dataset changes: ADD G4, UR on G3
//   T3  query g'' executed and admitted (validation of g' happens here)
//   T4  dataset changes: DEL G0, UA on G1
//   T5  query g executed — facilitated by g' (and the validated state)

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/graphcache_plus.hpp"
#include "graph/canonical.hpp"

namespace gcp {
namespace {

using testing::MakePath;
using testing::MakeSingleton;

constexpr Label kA = 0, kB = 1, kC = 2;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() {
    std::vector<Graph> initial;
    initial.push_back(MakeSingleton(kA));       // G0: lone A
    {
      Graph g1;                                 // G1: A and B, no edge
      g1.AddVertex(kA);
      g1.AddVertex(kB);
      initial.push_back(g1);
    }
    initial.push_back(MakePath({kA, kB, kC}));  // G2: A-B-C
    initial.push_back(MakePath({kA, kB}));      // G3: A-B
    dataset_.Bootstrap(std::move(initial));

    GraphCachePlusOptions opts;
    opts.model = CacheModel::kCon;
    opts.window_capacity = 100;  // keep everything in window; no merges
    opts.cache_capacity = 100;
    // The paper's timeline has no fragment tier; keep its exact per-step
    // si_tests counts (fragment pruning is gated elsewhere).
    opts.use_fragment_cache = false;
    gc_ = std::make_unique<GraphCachePlus>(&dataset_, opts);
  }

  const CachedQuery* FindEntry(const Graph& q) const {
    const std::uint64_t digest = WlDigest(q);
    const CachedQuery* found = nullptr;
    gc_->cache_manager().ForEachEntry([&](const CachedQuery& e) {
      if (e.digest == digest) found = &e;
    });
    return found;
  }

  GraphDataset dataset_;
  std::unique_ptr<GraphCachePlus> gc_;
};

TEST_F(PaperExampleTest, FullTimeline) {
  const Graph g_prime = MakePath({kA, kB});

  // --- T1: execute g'. Answer must be {G2, G3}. ---------------------------
  const QueryResult r1 = gc_->SubgraphQuery(g_prime);
  EXPECT_EQ(r1.answer, (std::vector<GraphId>{2, 3}));
  EXPECT_EQ(r1.metrics.si_tests, 4u);  // cold cache: everything verified

  // g' resides with full validity over {G0..G3}.
  {
    const CachedQuery* e = FindEntry(g_prime);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->valid.Count(), 4u);
    EXPECT_TRUE(e->answer.Test(2));
    EXPECT_TRUE(e->answer.Test(3));
    EXPECT_FALSE(e->answer.Test(0));
    EXPECT_FALSE(e->answer.Test(1));
  }

  // --- T2: ADD G4 (copy of G2) and UR on G3. ------------------------------
  ASSERT_EQ(dataset_.AddGraph(dataset_.graph(2)), 4u);
  ASSERT_TRUE(dataset_.RemoveEdge(3, 0, 1).ok());

  // --- T3: execute g'' (vertex C). Sync validates g' first. ---------------
  const Graph g_dprime = MakeSingleton(kC);
  const QueryResult r3 = gc_->SubgraphQuery(g_dprime);
  EXPECT_EQ(r3.answer, (std::vector<GraphId>{2, 4}));

  {
    const CachedQuery* e = FindEntry(g_prime);
    ASSERT_NE(e, nullptr);
    ASSERT_EQ(e->valid.size(), 5u);
    EXPECT_TRUE(e->valid.Test(0));   // untouched
    EXPECT_TRUE(e->valid.Test(1));   // untouched
    EXPECT_TRUE(e->valid.Test(2));   // untouched
    EXPECT_FALSE(e->valid.Test(3));  // UR faded the positive result
    EXPECT_FALSE(e->valid.Test(4));  // newly added graph unknown
    // g'' holds validity towards every graph in the current dataset.
    const CachedQuery* e2 = FindEntry(g_dprime);
    ASSERT_NE(e2, nullptr);
    EXPECT_EQ(e2->valid.Count(), 5u);
  }

  // --- T4: DEL G0 and UA on G1. -------------------------------------------
  ASSERT_TRUE(dataset_.DeleteGraph(0).ok());
  ASSERT_TRUE(dataset_.AddEdge(1, 0, 1).ok());  // G1 becomes A-B

  // --- T5: query g = vertex A, a subgraph of cached g'. -------------------
  const Graph g = MakeSingleton(kA);
  const QueryResult r5 = gc_->SubgraphQuery(g);

  // Validation ran before the query: g' lost G0 (DEL) and G1 (UA upon a
  // negative result); G2 survives everything.
  {
    const CachedQuery* e = FindEntry(g_prime);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->valid.Test(0));
    EXPECT_FALSE(e->valid.Test(1));
    EXPECT_TRUE(e->valid.Test(2));
    EXPECT_FALSE(e->valid.Test(3));
    EXPECT_FALSE(e->valid.Test(4));
    // Figure 2, final g'' row: CGvalid = {G2, G3, G4}.
    const CachedQuery* e2 = FindEntry(g_dprime);
    ASSERT_NE(e2, nullptr);
    EXPECT_FALSE(e2->valid.Test(0));
    EXPECT_FALSE(e2->valid.Test(1));
    EXPECT_TRUE(e2->valid.Test(2));
    EXPECT_TRUE(e2->valid.Test(3));
    EXPECT_TRUE(e2->valid.Test(4));
  }

  // Answer over the live dataset {G1, G2, G3, G4}: all contain an A vertex.
  EXPECT_EQ(r5.answer, (std::vector<GraphId>{1, 2, 3, 4}));
  // G2 transferred from g' (formula (1)): one sub-iso test alleviated.
  EXPECT_EQ(r5.metrics.tests_saved_sub, 1u);
  EXPECT_EQ(r5.metrics.si_tests, 3u);  // |CS_M| = 4, minus the transfer
  EXPECT_GE(r5.metrics.sub_hits, 1u);
}

TEST_F(PaperExampleTest, EviModelPurgesOnEveryChange) {
  GraphCachePlusOptions opts;
  opts.model = CacheModel::kEvi;
  GraphDataset ds;
  ds.Bootstrap({MakePath({kA, kB}), MakePath({kA, kB, kC})});
  GraphCachePlus evi(&ds, opts);

  const Graph q = MakePath({kA, kB});
  evi.SubgraphQuery(q);
  EXPECT_EQ(evi.cache_manager().resident(), 1u);
  ds.AddEdge(1, 0, 2).ok();  // any change
  evi.SubgraphQuery(q);      // sync purges, then re-admits after execution
  EXPECT_EQ(evi.cache_manager().stats().total_cache_clears, 1u);
  // The re-executed query was verified from scratch (no exact hit).
  EXPECT_EQ(evi.aggregate().exact_hits, 0u);
}

}  // namespace
}  // namespace gcp
