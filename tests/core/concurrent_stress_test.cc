// Concurrency stress: N client threads share one GraphCachePlus and fire
// mixed sub/super queries, interleaved with dataset changes; every answer
// must be bit-exact vs. (a) uncached Method M on the dataset state the
// query observed and (b) a serial replay of the same schedule.
//
// The oracle leans on the exactness theorems (3/6): a GC+ answer depends
// ONLY on the dataset state the read phase observes, never on the cache
// contents — so with changes applied at phase barriers, every query of a
// phase has one well-defined reference answer, no matter how admissions
// and drains interleave. The serial replay additionally exercises a cache
// that evolved along a different admission order.
//
// A second test keeps a mutator thread applying changes *during* the
// query storm (through ApplyDatasetChanges). There the interleaving makes
// per-query references ill-defined, so it asserts structural invariants
// only — it exists to give TSan/ASan real reader-vs-maintenance overlap.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

constexpr std::size_t kThreads = 4;
constexpr std::size_t kPhases = 3;
constexpr std::size_t kQueriesPerPhase = 24;

std::vector<Graph> SmallCorpus() {
  AidsLikeOptions opts;
  opts.num_graphs = 60;
  opts.mean_vertices = 10.0;
  opts.stddev_vertices = 3.0;
  opts.min_vertices = 4;
  opts.max_vertices = 16;
  opts.num_labels = 8;
  opts.seed = 1234;
  return AidsLikeGenerator(opts).Generate();
}

GraphCachePlusOptions StressOptions(CacheModel model) {
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  // A tiny queue forces the backpressure (inline drain) path too.
  opts.maintenance_queue_capacity = 8;
  return opts;
}

QueryKind KindOf(std::size_t query_idx) {
  return query_idx % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
}

/// Uncached Method M over the full live dataset — the exactness reference.
std::vector<GraphId> ReferenceAnswer(const GraphDataset& ds, const Graph& q,
                                     QueryKind kind) {
  MethodM m(MatcherKind::kVf2, ds);
  const DynamicBitset bits = m.VerifyCandidates(q, kind, ds.LiveMask());
  std::vector<GraphId> out;
  bits.ForEachSetBit(
      [&out](std::size_t id) { out.push_back(static_cast<GraphId>(id)); });
  return out;
}

/// Deterministic phase-barrier change batch: the same ops applied to two
/// datasets in identical states produce identical states.
void ApplyPhaseChanges(GraphDataset& ds, const std::vector<Graph>& corpus,
                       std::size_t phase) {
  ds.AddGraph(corpus[(7 * phase + 3) % corpus.size()]);
  const std::vector<GraphId> live = ds.LiveIds();
  const GraphId victim = live[(11 * phase + 5) % live.size()];
  ASSERT_TRUE(ds.DeleteGraph(victim).ok());
  // Edge update on the first live graph with an edge between its first
  // two vertices (UR) — and re-add it on even phases (UA).
  for (const GraphId id : ds.LiveIds()) {
    const Graph& g = ds.graph(id);
    if (g.NumVertices() >= 2 && g.HasEdge(0, 1)) {
      ASSERT_TRUE(ds.RemoveEdge(id, 0, 1).ok());
      if (phase % 2 == 0) {
        ASSERT_TRUE(ds.AddEdge(id, 0, 1).ok());
      }
      break;
    }
  }
}

void RunPhasedStress(CacheModel model) {
  const std::vector<Graph> corpus = SmallCorpus();
  const Workload w = GenerateTypeAByName(corpus, "ZU", kPhases * kQueriesPerPhase,
                                         /*seed=*/77, /*zipf_alpha=*/1.2);
  ASSERT_EQ(w.size(), kPhases * kQueriesPerPhase);

  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlus gc(&ds, StressOptions(model));

  // Serial-replay twin: identical initial state, identical schedule, but
  // queries execute one at a time in index order.
  GraphDataset ds_serial;
  ds_serial.Bootstrap(corpus);
  GraphCachePlus gc_serial(&ds_serial, StressOptions(model));

  std::vector<std::vector<GraphId>> concurrent_answers(w.size());

  for (std::size_t phase = 0; phase < kPhases; ++phase) {
    const std::size_t begin = phase * kQueriesPerPhase;
    const std::size_t end = begin + kQueriesPerPhase;

    // Concurrent execution of this phase's slice.
    std::atomic<std::size_t> ticket{begin};
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&] {
        for (std::size_t i = ticket.fetch_add(1); i < end;
             i = ticket.fetch_add(1)) {
          concurrent_answers[i] =
              gc.Query(w.queries[i].query, KindOf(i)).answer;
        }
      });
    }
    for (auto& c : clients) c.join();

    // Oracle 1: uncached Method M on the (fixed-for-the-phase) dataset.
    // Oracle 2: the serial replay.
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_EQ(concurrent_answers[i],
                ReferenceAnswer(ds, w.queries[i].query, KindOf(i)))
          << "phase " << phase << " query " << i << " diverged from Method M";
      EXPECT_EQ(gc_serial.Query(w.queries[i].query, KindOf(i)).answer,
                concurrent_answers[i])
          << "phase " << phase << " query " << i
          << " diverged from the serial replay";
    }

    // Identical changes on both twins at the barrier.
    if (phase + 1 < kPhases) {
      gc.ApplyDatasetChanges([&corpus, phase](GraphDataset& d) {
        ApplyPhaseChanges(d, corpus, phase);
      });
      gc_serial.ApplyDatasetChanges([&corpus, phase](GraphDataset& d) {
        ApplyPhaseChanges(d, corpus, phase);
      });
      ASSERT_EQ(ds.NumLive(), ds_serial.NumLive());
      ASSERT_EQ(ds.IdHorizon(), ds_serial.IdHorizon());
    }
  }

  // Post-run sanity: quiescent drains leave coherent stores.
  gc.FlushMaintenance();
  EXPECT_LE(gc.cache_manager().cache_size(), StressOptions(model).cache_capacity);
  const AggregateMetrics agg = gc.AggregateSnapshot();
  EXPECT_EQ(agg.queries, w.size());
}

TEST(ConcurrentStressTest, PhasedAnswersBitExactCon) {
  RunPhasedStress(CacheModel::kCon);
}

TEST(ConcurrentStressTest, PhasedAnswersBitExactEvi) {
  RunPhasedStress(CacheModel::kEvi);
}

TEST(ConcurrentStressTest, ChurnWithConcurrentMutatorHoldsInvariants) {
  const std::vector<Graph> corpus = SmallCorpus();
  const Workload w =
      GenerateTypeAByName(corpus, "ZU", 96, /*seed=*/78, /*zipf_alpha=*/1.2);

  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlus gc(&ds, StressOptions(CacheModel::kCon));

  std::atomic<std::size_t> ticket{0};
  std::atomic<bool> clients_done{false};
  std::atomic<std::uint64_t> answered{0};
  // The horizon only grows, so every answered id must sit below the final
  // horizon; checked after the join (reading the dataset mid-churn from
  // the test would itself race the mutator).
  std::atomic<std::uint64_t> max_answer_id{0};

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (std::size_t i = ticket.fetch_add(1); i < w.size();
           i = ticket.fetch_add(1)) {
        const QueryResult r = gc.Query(w.queries[i].query, KindOf(i));
        if (!r.answer.empty()) {
          std::uint64_t seen = max_answer_id.load();
          while (seen < r.answer.back() &&
                 !max_answer_id.compare_exchange_weak(seen, r.answer.back())) {
          }
        }
        answered.fetch_add(1);
      }
    });
  }
  // Mutator races the clients through the exclusive-lock door.
  std::thread mutator([&] {
    std::size_t round = 0;
    while (!clients_done.load()) {
      gc.ApplyDatasetChanges([&corpus, &round](GraphDataset& d) {
        d.AddGraph(corpus[round % corpus.size()]);
        const std::vector<GraphId> live = d.LiveIds();
        if (live.size() > corpus.size() / 2) {
          d.DeleteGraph(live[(3 * round) % live.size()]).ok();
        }
        ++round;
      });
      std::this_thread::yield();
    }
  });
  for (auto& c : clients) c.join();
  clients_done.store(true);
  mutator.join();

  gc.FlushMaintenance();
  EXPECT_EQ(answered.load(), w.size());
  EXPECT_LT(max_answer_id.load(), gc.dataset().IdHorizon());
  EXPECT_EQ(gc.AggregateSnapshot().queries, w.size());
  // Residents must all be aligned once a final sync runs (next query
  // triggers it); force one and check.
  const Graph probe = w.queries[0].query;
  gc.Query(probe, QueryKind::kSubgraph);
  const std::size_t horizon = gc.dataset().IdHorizon();
  gc.cache_manager().ForEachEntry([&](const CachedQuery& e) {
    EXPECT_EQ(e.valid.size(), horizon);
    EXPECT_EQ(e.answer.size(), horizon);
  });
}

}  // namespace
}  // namespace gcp
