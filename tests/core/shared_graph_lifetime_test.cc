// EpochSharedGraphLifetimeTest — the sanitizer gate for shared-ownership
// graph reclamation (PR 6).
//
// Hit-discovery survivors alias the resident CachedQuery's Graph through
// a shared_ptr instead of deep-copying it under the shard lock, so an
// evicted or purged entry's graph must stay alive for as long as any
// in-flight query (or exported snapshot) can still reach it — the
// shared_ptr refcount subsumes the epoch grace period. This suite drives
// exactly the dangerous interleaving: a deliberately tiny cache (so
// resident graphs are evicted constantly) under racing client threads, a
// racing mutator, and the dedicated maintenance thread, all on the
// epoch read path. ASan/UBSan turns a premature free into a
// use-after-free report; TSan (the suite name matches the TSan CI shard)
// checks the handoff ordering. A serial case additionally pins an
// exported entry's graph across a cache purge and keeps using it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "cache/cache_manager.hpp"
#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

std::vector<Graph> SmallCorpus(std::uint64_t seed) {
  AidsLikeOptions opts;
  opts.num_graphs = 40;
  opts.mean_vertices = 9.0;
  opts.stddev_vertices = 3.0;
  opts.min_vertices = 4;
  opts.max_vertices = 14;
  opts.num_labels = 8;
  opts.seed = seed;
  return AidsLikeGenerator(opts).Generate();
}

constexpr std::size_t kThreads = 4;
constexpr std::size_t kQueries = 96;

void RunEvictionStorm(CacheModel model) {
  const std::vector<Graph> corpus = SmallCorpus(555);
  const Workload w = GenerateTypeAByName(corpus, "ZU", kQueries, /*seed=*/47,
                                         /*zipf_alpha=*/1.2);

  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlusOptions opts;
  opts.model = model;
  // Tiny capacities: nearly every admission evicts a resident whose graph
  // a concurrent query may still alias.
  opts.cache_capacity = 4;
  opts.window_capacity = 2;
  opts.num_shards = 4;
  opts.epoch_reads = true;
  opts.maintenance_thread = true;
  opts.maintenance_interval_us = 100;
  opts.maintenance_queue_capacity = 4;
  GraphCachePlus gc(&ds, opts);

  std::atomic<std::size_t> ticket{0};
  std::atomic<bool> clients_done{false};
  std::atomic<std::uint64_t> answered{0};

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (std::size_t i = ticket.fetch_add(1); i < w.size();
           i = ticket.fetch_add(1)) {
        const QueryKind kind =
            i % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
        const QueryResult r = gc.Query(w.queries[i].query, kind);
        // Answers materialize from an id-indexed bitset, so they must come
        // back strictly increasing. (Checking ids against the dataset's
        // horizon here would race the mutator — the dataset may only be
        // inspected through the engine while mutations are in flight.)
        EXPECT_EQ(std::adjacent_find(r.answer.begin(), r.answer.end(),
                                     std::greater_equal<GraphId>()),
                  r.answer.end());
        answered.fetch_add(1);
      }
    });
  }
  // The mutator races evictions with dataset churn: EVI purges the whole
  // cache per batch (every resident graph dropped at once), CON fades
  // validity and keeps replacing.
  std::thread mutator([&] {
    std::size_t round = 0;
    do {
      gc.ApplyDatasetChanges([&corpus, &round](GraphDataset& d) {
        d.AddGraph(corpus[round % corpus.size()]);
        const std::vector<GraphId> live = d.LiveIds();
        if (live.size() > corpus.size() / 2) {
          d.DeleteGraph(live[(3 * round) % live.size()]).ok();
        }
        ++round;
      });
      std::this_thread::yield();
    } while (!clients_done.load());
  });
  for (auto& c : clients) c.join();
  clients_done.store(true);
  mutator.join();

  gc.FlushMaintenance();
  EXPECT_EQ(answered.load(), w.size());
  // Sharing did its job under the storm: not one graph was deep-copied
  // under a shard lock, and the read path stayed lock-free.
  EXPECT_EQ(gc.CacheStatsSnapshot().shard_lock_graph_copies, 0u);
  EXPECT_EQ(gc.read_phase_engine_lock_acquisitions(), 0u);
  EXPECT_EQ(gc.epoch_manager().pinned_readers(), 0u);
  EXPECT_EQ(gc.cache_shards().lock_violations(), 0u);
}

TEST(EpochSharedGraphLifetimeTest, EvictionStormCon) {
  RunEvictionStorm(CacheModel::kCon);
}

TEST(EpochSharedGraphLifetimeTest, EvictionStormEvi) {
  RunEvictionStorm(CacheModel::kEvi);
}

// Serial pin: a graph exported from the cache must outlive the entry it
// came from (eviction, purge, engine teardown) for as long as the caller
// holds the shared_ptr.
TEST(EpochSharedGraphLifetimeTest, ExportedGraphOutlivesPurge) {
  const std::vector<Graph> corpus = SmallCorpus(11);
  std::shared_ptr<const Graph> pinned;
  std::size_t pinned_vertices = 0;
  {
    GraphDataset ds;
    ds.Bootstrap(corpus);
    GraphCachePlusOptions opts;
    opts.model = CacheModel::kEvi;
    opts.cache_capacity = 4;
    opts.window_capacity = 2;
    opts.epoch_reads = true;
    GraphCachePlus gc(&ds, opts);
    const Workload w =
        GenerateTypeAByName(corpus, "ZZ", 16, /*seed=*/5, /*zipf_alpha=*/1.2);
    for (std::size_t i = 0; i < w.size(); ++i) {
      gc.Query(w.queries[i].query, QueryKind::kSubgraph);
    }
    gc.FlushMaintenance();
    const std::vector<CachedQuery> entries = gc.cache_shards().ExportEntries();
    ASSERT_FALSE(entries.empty());
    pinned = entries.front().query;  // aliases the resident graph
    ASSERT_NE(pinned, nullptr);
    pinned_vertices = pinned->NumVertices();
    // EVI purge drops every resident entry; the pinned graph must survive
    // it — and the engine teardown at scope exit.
    gc.ApplyDatasetChanges(
        [&corpus](GraphDataset& d) { d.AddGraph(corpus[0]); });
    gc.Query(w.queries[0].query, QueryKind::kSubgraph);
    gc.FlushMaintenance();
  }
  // Engine, dataset and cache are gone; the graph is not.
  EXPECT_EQ(pinned->NumVertices(), pinned_vertices);
  EXPECT_GT(pinned->NumVertices(), 0u);
}

}  // namespace
}  // namespace gcp
