#include "core/processors.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace gcp {
namespace {

using testing::MakePath;
using testing::MakeSingleton;

class ProcessorsTest : public ::testing::Test {
 protected:
  ProcessorsTest()
      : matcher_(MakeMatcher(MatcherKind::kVf2Plus)),
        cache_(CacheManagerOptions{100, 100, ReplacementPolicy::kPin, 1}) {}

  HitDiscovery MakeDiscovery() { return HitDiscovery(*matcher_, options_); }

  // Admits an entry with given answer/valid bits over `horizon`.
  CacheEntryId AdmitEntry(Graph q, std::size_t horizon,
                          std::initializer_list<std::size_t> answer,
                          std::initializer_list<std::size_t> valid_off = {},
                          CachedQueryKind kind = CachedQueryKind::kSubgraph) {
    DynamicBitset a(horizon);
    for (const auto i : answer) a.Set(i);
    DynamicBitset v(horizon, true);
    for (const auto i : valid_off) v.Set(i, false);
    return cache_
        .Admit(std::move(q), kind, std::move(a), std::move(v),
               /*now=*/0, /*cost=*/1.0)
        .value();
  }

  std::unique_ptr<SubgraphMatcher> matcher_;
  GraphCachePlusOptions options_;
  CacheManager cache_;
};

TEST_F(ProcessorsTest, EmptyCacheFindsNothing) {
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), &m);
  EXPECT_TRUE(hits.positive.empty());
  EXPECT_TRUE(hits.pruning.empty());
  EXPECT_FALSE(hits.exact.has_value());
  EXPECT_FALSE(hits.empty_proof.has_value());
  EXPECT_EQ(m.sub_hits, 0u);
  EXPECT_EQ(m.super_hits, 0u);
}

TEST_F(ProcessorsTest, FindsPositiveHitForSubgraphQuery) {
  // Cached g' = A-B-C; query g = A-B. g ⊆ g' with non-empty valid answer.
  AdmitEntry(MakePath({0, 1, 2}), 4, {1, 2});
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), &m);
  ASSERT_EQ(hits.positive.size(), 1u);
  EXPECT_EQ(m.sub_hits, 1u);
  EXPECT_TRUE(hits.pruning.empty());
}

TEST_F(ProcessorsTest, FindsPruningHitForSubgraphQuery) {
  // Cached g'' = A; query g = A-B. g'' ⊆ g; g'' knows non-answers.
  AdmitEntry(MakeSingleton(0), 4, {1, 2});  // graphs 0,3 are valid negatives
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), &m);
  ASSERT_EQ(hits.pruning.size(), 1u);
  EXPECT_EQ(m.super_hits, 1u);
}

TEST_F(ProcessorsTest, RolesFlipForSupergraphQuery) {
  // For a supergraph query, a cached SUBGRAPH-kind entry is ignored, and a
  // cached supergraph-kind entry g'' ⊆ g becomes a positive hit.
  AdmitEntry(MakeSingleton(0), 4, {1}, {}, CachedQueryKind::kSupergraph);
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSupergraph, cache_,
                                         DynamicBitset(4, true), &m);
  ASSERT_EQ(hits.positive.size(), 1u);
  EXPECT_TRUE(hits.pruning.empty());
  // Role-corrected metric naming: positive hits of a supergraph query are
  // GC+super-style hits.
  EXPECT_EQ(m.super_hits, 1u);
  EXPECT_EQ(m.sub_hits, 0u);
}

TEST_F(ProcessorsTest, KindMismatchNeverHits) {
  AdmitEntry(MakePath({0, 1, 2}), 4, {1, 2}, {},
             CachedQueryKind::kSupergraph);
  const HitDiscovery d = MakeDiscovery();
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), nullptr);
  EXPECT_TRUE(hits.positive.empty());
  EXPECT_TRUE(hits.pruning.empty());
}

TEST_F(ProcessorsTest, ExactHitRequiresFullValidity) {
  // Same query resident but with one invalid bit ⇒ no exact shortcut; it
  // still serves as a plain positive hit.
  AdmitEntry(MakePath({0, 1}), 4, {1, 2}, /*valid_off=*/{3});
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), &m);
  EXPECT_FALSE(hits.exact.has_value());
  EXPECT_EQ(hits.positive.size(), 1u);
  EXPECT_FALSE(m.exact_hit);
}

TEST_F(ProcessorsTest, ExactHitDetectedWithFullValidity) {
  AdmitEntry(MakePath({0, 1}), 4, {1, 2});
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  // Query is an isomorphic relabelling of vertex order (same path).
  const DiscoveredHits hits = d.Discover(MakePath({1, 0}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), &m);
  ASSERT_TRUE(hits.exact.has_value());
  EXPECT_TRUE(m.exact_hit);
  EXPECT_TRUE(hits.positive.empty());  // short-circuited
}

TEST_F(ProcessorsTest, ExactHitIgnoredWhenDisabled) {
  AdmitEntry(MakePath({0, 1}), 4, {1, 2});
  options_.enable_exact_shortcut = false;
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), &m);
  EXPECT_FALSE(hits.exact.has_value());
  EXPECT_EQ(hits.positive.size(), 1u);  // falls back to a plain hit
}

TEST_F(ProcessorsTest, EmptyProofDetected) {
  // Cached g'' = A with empty answer, fully valid ⇒ any supergraph of g''
  // provably has an empty answer.
  AdmitEntry(MakeSingleton(0), 4, {});
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), &m);
  ASSERT_TRUE(hits.empty_proof.has_value());
  EXPECT_TRUE(m.empty_shortcut);
}

TEST_F(ProcessorsTest, EmptyProofRequiresFullValidity) {
  AdmitEntry(MakeSingleton(0), 4, {}, /*valid_off=*/{2});
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), &m);
  EXPECT_FALSE(hits.empty_proof.has_value());
  // Not even a pruning hit when nothing can be eliminated… here bits
  // {0,1,3} are valid negatives, so it still prunes.
  EXPECT_EQ(hits.pruning.size(), 1u);
}

TEST_F(ProcessorsTest, EmptyProofIgnoredWhenDisabled) {
  AdmitEntry(MakeSingleton(0), 4, {});
  options_.enable_empty_answer_shortcut = false;
  const HitDiscovery d = MakeDiscovery();
  QueryMetrics m;
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), &m);
  EXPECT_FALSE(hits.empty_proof.has_value());
  EXPECT_EQ(hits.pruning.size(), 1u);  // full pruning is equivalent here
}

TEST_F(ProcessorsTest, HitCapsRespected) {
  // Five distinct supergraphs of the query; cap positive hits at 2.
  AdmitEntry(MakePath({0, 1, 2}), 4, {0});
  AdmitEntry(MakePath({0, 1, 3}), 4, {1});
  AdmitEntry(MakePath({0, 1, 4}), 4, {2});
  AdmitEntry(MakePath({0, 1, 5}), 4, {3});
  const CacheEntryId best = AdmitEntry(MakePath({0, 1, 6}), 4, {0, 1});
  options_.max_sub_hits = 2;
  const HitDiscovery d = MakeDiscovery();
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), nullptr);
  EXPECT_EQ(hits.positive.size(), 2u);
  // Utility ordering: the entry transferring 2 answers is taken first.
  EXPECT_EQ(hits.positive[0].id, best);
}

TEST_F(ProcessorsTest, ZeroUtilityEntriesSkipped) {
  // A supergraph of the query whose valid answers are all turned off
  // cannot help and must not be verified/collected.
  AdmitEntry(MakePath({0, 1, 2}), 4, {1, 2}, /*valid_off=*/{0, 1, 2, 3});
  const HitDiscovery d = MakeDiscovery();
  const DiscoveredHits hits = d.Discover(MakePath({0, 1}),
                                         QueryKind::kSubgraph, cache_,
                                         DynamicBitset(4, true), nullptr);
  EXPECT_TRUE(hits.positive.empty());
}

}  // namespace
}  // namespace gcp
