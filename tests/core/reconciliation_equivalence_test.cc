// Reconciliation equivalence gates (PR 7):
//
// 1. ReconciliationEquivalenceTest — over a 300-step churn of interleaved
//    queries and dataset changes, reconciling through the change-relevance
//    index must replay the brute-force ValidateAll oracle bit-exactly —
//    same answers every step, same resident population with identical
//    CGvalid/answer indicators, same admission/eviction/hit counters —
//    across {CON, EVI} × {lock, epoch} × shards {1, 8}. An uncached
//    Method M engine replays the same churn as the ground-truth answer
//    oracle. The accounting invariant rides along: the two engines
//    process identical reconcile events, so indexed touched + skipped ==
//    oracle touched, oracle skipped == 0, and the localized churn makes
//    indexed skipped strictly positive under CON.
//
// 2. DeltaRevalidationEquivalenceTest — with delta re-validation ON the
//    relevance screen still replays the oracle bit-exactly (the screen
//    skips exactly the entries whose pairs never reach Algorithm 2's
//    clear site, so the delta hook sees the same pair sequence), answers
//    stay exact vs a fade-only engine, and the delta counters prove the
//    hook actually ran.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

std::vector<Graph> ChurnCorpus(std::uint64_t seed) {
  AidsLikeOptions opts;
  opts.num_graphs = 120;  // several 64-id footprint blocks
  opts.mean_vertices = 9.0;
  opts.stddev_vertices = 3.0;
  opts.min_vertices = 4;
  opts.max_vertices = 14;
  opts.num_labels = 8;
  opts.seed = seed;
  return AidsLikeGenerator(opts).Generate();
}

struct EngineConfig {
  std::string label;
  bool relevance = true;
  bool delta = false;
  bool epoch = false;
  std::size_t shards = 1;
  std::size_t retro_budget = 0;
  bool admission = true;  // false = uncached Method M passthrough
};

struct EngineUnderTest {
  EngineConfig cfg;
  std::unique_ptr<GraphDataset> ds;
  std::unique_ptr<GraphCachePlus> gc;
};

EngineUnderTest MakeEngine(const std::vector<Graph>& corpus, CacheModel model,
                           const EngineConfig& cfg) {
  EngineUnderTest e;
  e.cfg = cfg;
  e.ds = std::make_unique<GraphDataset>();
  e.ds->Bootstrap(corpus);
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  opts.num_shards = cfg.shards;
  opts.epoch_reads = cfg.epoch;
  opts.use_relevance_index = cfg.relevance;
  opts.delta_revalidation = cfg.delta;
  opts.retrospective_budget = cfg.retro_budget;
  opts.use_ftv_index = true;  // the delta fallback's feature prescreen
  if (!cfg.admission) {
    opts.enable_admission = false;
    opts.enable_exact_shortcut = false;
    opts.enable_empty_answer_shortcut = false;
  }
  e.gc = std::make_unique<GraphCachePlus>(e.ds.get(), opts);
  return e;
}

/// Localized churn: every batch grows the id range (new graphs land in
/// the newest 64-id blocks) and aims its edge ops at recently added ids,
/// so each batch's footprint covers a shrinking fraction of the resident
/// entries' — the access pattern the relevance index exists for. A slow
/// trickle of deletions of old ids keeps structural ops in the mix.
void ApplyChurnChanges(GraphDataset& ds, const std::vector<Graph>& corpus,
                       std::size_t step) {
  ds.AddGraph(corpus[(5 * step + 2) % corpus.size()]);
  const std::vector<GraphId> live = ds.LiveIds();
  // Edge ops on the most recently added live graphs.
  std::size_t mutated = 0;
  for (std::size_t i = live.size(); i-- > 0 && mutated < 3;) {
    const GraphId id = live[i];
    const Graph& g = ds.graph(id);
    if (g.NumVertices() >= 2 && g.HasEdge(0, 1)) {
      ASSERT_TRUE(ds.RemoveEdge(id, 0, 1).ok());
      if ((step + mutated) % 2 == 0) {
        ASSERT_TRUE(ds.AddEdge(id, 0, 1).ok());
      }
      ++mutated;
    }
  }
  if (step % 3 == 0) {
    const GraphId victim = live[(13 * step + 7) % (live.size() / 2 + 1)];
    ASSERT_TRUE(ds.DeleteGraph(victim).ok());
  }
}

std::string BitsetString(const DynamicBitset& bits) {
  std::string s(bits.size(), '0');
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.Test(i)) s[i] = '1';
  }
  return s;
}

/// Sorted (digest, kind, CGvalid, answer) tuples over every resident
/// entry — equality means identical replacement decisions AND identical
/// validity knowledge, bit for bit.
std::vector<std::string> ResidentState(const GraphCachePlus& gc) {
  std::vector<std::string> out;
  gc.cache_shards().ForEachEntry([&out](const CachedQuery& e) {
    out.push_back(std::to_string(e.digest) + "|" +
                  (e.kind == CachedQueryKind::kSubgraph ? "sub" : "super") +
                  "|" + BitsetString(e.valid) + "|" + BitsetString(e.answer));
  });
  std::sort(out.begin(), out.end());
  return out;
}

void RunReconcileReplay(CacheModel model, bool epoch, std::size_t shards) {
  constexpr std::size_t kSteps = 300;
  const std::vector<Graph> corpus = ChurnCorpus(4321);
  const Workload w = GenerateTypeAByName(corpus, "ZU", kSteps, /*seed=*/909,
                                         /*zipf_alpha=*/1.2);

  const std::size_t retro = model == CacheModel::kCon ? 4 : 0;
  EngineUnderTest oracle = MakeEngine(
      corpus, model,
      EngineConfig{"validate-all-oracle", false, false, epoch, shards, retro});
  EngineUnderTest indexed = MakeEngine(
      corpus, model,
      EngineConfig{"relevance-index", true, false, epoch, shards, retro});
  EngineUnderTest method_m = MakeEngine(
      corpus, model,
      EngineConfig{"uncached-method-m", false, false, epoch, shards, 0,
                   /*admission=*/false});

  for (std::size_t step = 0; step < kSteps; ++step) {
    if (step % 7 == 5) {
      for (EngineUnderTest* e : {&oracle, &indexed, &method_m}) {
        e->gc->ApplyDatasetChanges([&corpus, step](GraphDataset& d) {
          ApplyChurnChanges(d, corpus, step);
        });
      }
      continue;
    }
    const QueryKind kind =
        step % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
    const Graph& q = w.queries[step].query;
    const std::vector<GraphId> truth = method_m.gc->Query(q, kind).answer;
    EXPECT_EQ(oracle.gc->Query(q, kind).answer, truth)
        << "oracle diverged from uncached Method M at step " << step;
    EXPECT_EQ(indexed.gc->Query(q, kind).answer, truth)
        << "relevance index diverged from uncached Method M at step " << step;
  }

  // Settle: the churn ends on a mutation batch, which the lock path
  // absorbs lazily at the next query; one more query puts both cached
  // engines at the same point in the sync cycle.
  const std::vector<GraphId> settle =
      oracle.gc->Query(w.queries[0].query, QueryKind::kSubgraph).answer;
  EXPECT_EQ(indexed.gc->Query(w.queries[0].query, QueryKind::kSubgraph).answer,
            settle);

  oracle.gc->FlushMaintenance();
  indexed.gc->FlushMaintenance();
  const StatisticsManager os = oracle.gc->CacheStatsSnapshot();
  const StatisticsManager is = indexed.gc->CacheStatsSnapshot();

  // Identical residents with identical CGvalid/answer bits...
  EXPECT_EQ(ResidentState(*indexed.gc), ResidentState(*oracle.gc));
  // ...reached through identical admission/replacement/hit decisions.
  EXPECT_GT(os.total_admissions, 0u);
  EXPECT_EQ(is.total_admissions, os.total_admissions);
  EXPECT_EQ(is.total_evictions, os.total_evictions);
  EXPECT_EQ(is.total_admission_dedups, os.total_admission_dedups);
  EXPECT_EQ(is.total_exact_hits, os.total_exact_hits);
  EXPECT_EQ(is.total_sub_hits, os.total_sub_hits);
  EXPECT_EQ(is.total_super_hits, os.total_super_hits);
  EXPECT_EQ(is.total_retro_refreshes, os.total_retro_refreshes);

  // Reconciliation accounting: the oracle touches every resident entry
  // at every event and never skips; the indexed engine splits the same
  // event stream into touched + skipped. Neither runs delta hooks.
  EXPECT_EQ(os.reconcile_entries_skipped, 0u);
  EXPECT_EQ(is.reconcile_entries_touched + is.reconcile_entries_skipped,
            os.reconcile_entries_touched);
  EXPECT_EQ(os.delta_revalidations + is.delta_revalidations, 0u);
  EXPECT_EQ(os.delta_fallback_full_checks + is.delta_fallback_full_checks,
            0u);
  if (model == CacheModel::kCon) {
    // Localized churn against block-granular footprints must actually
    // skip entries — the point of the index.
    EXPECT_GT(is.reconcile_entries_skipped, 0u);
    EXPECT_LT(is.reconcile_entries_touched, os.reconcile_entries_touched);
  } else {
    // EVI purges indiscriminately: both engines touch everything.
    EXPECT_EQ(is.reconcile_entries_touched, os.reconcile_entries_touched);
    EXPECT_EQ(is.reconcile_entries_skipped, 0u);
  }
}

TEST(ReconciliationEquivalenceTest, ConLockSingleShard) {
  RunReconcileReplay(CacheModel::kCon, /*epoch=*/false, /*shards=*/1);
}

TEST(ReconciliationEquivalenceTest, ConLockEightShards) {
  RunReconcileReplay(CacheModel::kCon, /*epoch=*/false, /*shards=*/8);
}

TEST(ReconciliationEquivalenceTest, ConEpochSingleShard) {
  RunReconcileReplay(CacheModel::kCon, /*epoch=*/true, /*shards=*/1);
}

TEST(ReconciliationEquivalenceTest, ConEpochEightShards) {
  RunReconcileReplay(CacheModel::kCon, /*epoch=*/true, /*shards=*/8);
}

TEST(ReconciliationEquivalenceTest, EviLockSingleShard) {
  RunReconcileReplay(CacheModel::kEvi, /*epoch=*/false, /*shards=*/1);
}

TEST(ReconciliationEquivalenceTest, EviLockEightShards) {
  RunReconcileReplay(CacheModel::kEvi, /*epoch=*/false, /*shards=*/8);
}

TEST(ReconciliationEquivalenceTest, EviEpochSingleShard) {
  RunReconcileReplay(CacheModel::kEvi, /*epoch=*/true, /*shards=*/1);
}

TEST(ReconciliationEquivalenceTest, EviEpochEightShards) {
  RunReconcileReplay(CacheModel::kEvi, /*epoch=*/true, /*shards=*/8);
}

void RunDeltaReplay(bool epoch) {
  constexpr std::size_t kSteps = 300;
  const std::vector<Graph> corpus = ChurnCorpus(8765);
  const Workload w = GenerateTypeAByName(corpus, "ZU", kSteps, /*seed=*/909,
                                         /*zipf_alpha=*/1.2);

  // At a fixed delta setting the relevance screen must stay bit-exact;
  // a fade-only engine provides the answer ground truth (its CGvalid
  // bits legitimately differ — delta keeps/rewrites bits fading would
  // clear — but answers must not).
  EngineUnderTest delta_oracle = MakeEngine(
      corpus, CacheModel::kCon,
      EngineConfig{"delta,validate-all", false, true, epoch, 2});
  EngineUnderTest delta_indexed = MakeEngine(
      corpus, CacheModel::kCon,
      EngineConfig{"delta,relevance-index", true, true, epoch, 2});
  EngineUnderTest fade_only = MakeEngine(
      corpus, CacheModel::kCon,
      EngineConfig{"fade-only", true, false, epoch, 2});

  for (std::size_t step = 0; step < kSteps; ++step) {
    if (step % 7 == 5) {
      for (EngineUnderTest* e : {&delta_oracle, &delta_indexed, &fade_only}) {
        e->gc->ApplyDatasetChanges([&corpus, step](GraphDataset& d) {
          ApplyChurnChanges(d, corpus, step);
        });
      }
      continue;
    }
    const QueryKind kind =
        step % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
    const Graph& q = w.queries[step].query;
    const std::vector<GraphId> truth = fade_only.gc->Query(q, kind).answer;
    EXPECT_EQ(delta_oracle.gc->Query(q, kind).answer, truth)
        << "delta re-validation changed an answer at step " << step;
    EXPECT_EQ(delta_indexed.gc->Query(q, kind).answer, truth)
        << "delta+relevance changed an answer at step " << step;
  }
  delta_oracle.gc->Query(w.queries[0].query, QueryKind::kSubgraph);
  delta_indexed.gc->Query(w.queries[0].query, QueryKind::kSubgraph);
  delta_oracle.gc->FlushMaintenance();
  delta_indexed.gc->FlushMaintenance();

  // Relevance on/off at delta=on: fully bit-exact, and the hook ran.
  EXPECT_EQ(ResidentState(*delta_indexed.gc), ResidentState(*delta_oracle.gc));
  const StatisticsManager os = delta_oracle.gc->CacheStatsSnapshot();
  const StatisticsManager is = delta_indexed.gc->CacheStatsSnapshot();
  EXPECT_EQ(is.total_admissions, os.total_admissions);
  EXPECT_EQ(is.total_evictions, os.total_evictions);
  EXPECT_EQ(is.delta_revalidations, os.delta_revalidations);
  EXPECT_EQ(is.delta_fallback_full_checks, os.delta_fallback_full_checks);
  EXPECT_GT(os.delta_revalidations + os.delta_fallback_full_checks, 0u);
  EXPECT_GT(is.reconcile_entries_skipped, 0u);
}

TEST(DeltaRevalidationEquivalenceTest, LockPath) { RunDeltaReplay(false); }

TEST(DeltaRevalidationEquivalenceTest, EpochPath) { RunDeltaReplay(true); }

}  // namespace
}  // namespace gcp
