// Sharded-vs-serial equivalence: the digest-sharded engine (any shard
// count, with or without the dedicated maintenance thread) must return
// bit-exact answers vs the single-store serial engine and vs uncached
// Method M, under a 300-step churn of interleaved queries and dataset
// changes (CON and EVI).
//
// The oracle leans on the exactness theorems (3/6): a GC+ answer depends
// only on the dataset state the read phase observes, never on how the
// cache is partitioned, which shard a drain has or hasn't reached, or
// which admissions were dedup-dropped — so identical schedules must give
// identical answers at every shard count.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

constexpr std::size_t kSteps = 300;

std::vector<Graph> SmallCorpus() {
  AidsLikeOptions opts;
  opts.num_graphs = 40;
  opts.mean_vertices = 9.0;
  opts.stddev_vertices = 3.0;
  opts.min_vertices = 4;
  opts.max_vertices = 14;
  opts.num_labels = 8;
  opts.seed = 4321;
  return AidsLikeGenerator(opts).Generate();
}

struct EngineUnderTest {
  std::string label;
  std::unique_ptr<GraphDataset> ds;
  std::unique_ptr<GraphCachePlus> gc;
};

EngineUnderTest MakeEngine(const std::vector<Graph>& corpus, CacheModel model,
                           std::size_t shards, bool maintenance_thread,
                           bool epoch = false) {
  EngineUnderTest e;
  e.label = "shards=" + std::to_string(shards) +
            (maintenance_thread ? "+mt" : "") + (epoch ? "+epoch" : "");
  e.ds = std::make_unique<GraphDataset>();
  e.ds->Bootstrap(corpus);
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  opts.num_shards = shards;
  opts.maintenance_thread = maintenance_thread;
  opts.epoch_reads = epoch;
  // A small queue keeps the backpressure (inline per-shard drain) path in
  // play during the churn too.
  opts.maintenance_queue_capacity = 8;
  e.gc = std::make_unique<GraphCachePlus>(e.ds.get(), opts);
  return e;
}

/// Uncached Method M over the full live dataset — the exactness reference.
std::vector<GraphId> ReferenceAnswer(const GraphDataset& ds, const Graph& q,
                                     QueryKind kind) {
  MethodM m(MatcherKind::kVf2, ds);
  const DynamicBitset bits = m.VerifyCandidates(q, kind, ds.LiveMask());
  std::vector<GraphId> out;
  bits.ForEachSetBit(
      [&out](std::size_t id) { out.push_back(static_cast<GraphId>(id)); });
  return out;
}

/// Deterministic change batch for churn step `step`: add a corpus clone,
/// delete a live victim, flip an edge. Identical inputs ⇒ identical
/// resulting dataset on every engine.
void ApplyChurnChanges(GraphDataset& ds, const std::vector<Graph>& corpus,
                       std::size_t step) {
  ds.AddGraph(corpus[(5 * step + 2) % corpus.size()]);
  const std::vector<GraphId> live = ds.LiveIds();
  const GraphId victim = live[(13 * step + 7) % live.size()];
  ASSERT_TRUE(ds.DeleteGraph(victim).ok());
  for (const GraphId id : ds.LiveIds()) {
    const Graph& g = ds.graph(id);
    if (g.NumVertices() >= 2 && g.HasEdge(0, 1)) {
      ASSERT_TRUE(ds.RemoveEdge(id, 0, 1).ok());
      if (step % 2 == 0) {
        ASSERT_TRUE(ds.AddEdge(id, 0, 1).ok());
      }
      break;
    }
  }
}

void RunChurnEquivalence(CacheModel model) {
  const std::vector<Graph> corpus = SmallCorpus();
  const Workload w =
      GenerateTypeAByName(corpus, "ZU", kSteps, /*seed=*/909,
                          /*zipf_alpha=*/1.2);

  std::vector<EngineUnderTest> engines;
  engines.push_back(MakeEngine(corpus, model, 1, false));  // serial oracle
  engines.push_back(MakeEngine(corpus, model, 2, false));
  engines.push_back(MakeEngine(corpus, model, 8, false));
  engines.push_back(MakeEngine(corpus, model, 8, true));
  // Epoch read path joins the matrix: same churn, same answers.
  engines.push_back(MakeEngine(corpus, model, 8, false, /*epoch=*/true));

  for (std::size_t step = 0; step < kSteps; ++step) {
    if (step % 7 == 5) {
      for (EngineUnderTest& e : engines) {
        e.gc->ApplyDatasetChanges([&corpus, step](GraphDataset& d) {
          ApplyChurnChanges(d, corpus, step);
        });
      }
      ASSERT_EQ(engines[0].ds->NumLive(), engines.back().ds->NumLive());
      ASSERT_EQ(engines[0].ds->IdHorizon(), engines.back().ds->IdHorizon());
      continue;
    }
    const QueryKind kind =
        step % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
    const Graph& q = w.queries[step].query;
    const std::vector<GraphId> serial = engines[0].gc->Query(q, kind).answer;
    for (std::size_t i = 1; i < engines.size(); ++i) {
      EXPECT_EQ(engines[i].gc->Query(q, kind).answer, serial)
          << engines[i].label << " diverged from the serial engine at step "
          << step;
    }
    if (step % 10 == 0) {
      EXPECT_EQ(serial, ReferenceAnswer(*engines[0].ds, q, kind))
          << "serial engine diverged from uncached Method M at step " << step;
    }
  }

  for (EngineUnderTest& e : engines) {
    e.gc->FlushMaintenance();
    // Stores stay within their configured capacities and no per-shard
    // drain ever touched a foreign shard.
    EXPECT_EQ(e.gc->cache_shards().lock_violations(), 0u) << e.label;
    const std::size_t shards = e.gc->options().num_shards;
    const std::size_t per_shard_cache = (16 + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_LE(e.gc->cache_shards().shard(s).cache_size(), per_shard_cache)
          << e.label << " shard " << s;
    }
    // The churn admits far more queries than capacity: replacement must
    // have produced evictions in every configuration.
    EXPECT_GT(e.gc->CacheStatsSnapshot().total_admissions, 0u) << e.label;
  }
}

TEST(ShardedEquivalenceTest, ChurnAnswersBitExactCon) {
  RunChurnEquivalence(CacheModel::kCon);
}

TEST(ShardedEquivalenceTest, ChurnAnswersBitExactEvi) {
  RunChurnEquivalence(CacheModel::kEvi);
}

}  // namespace
}  // namespace gcp
