#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace gcp {
namespace {

QueryMetrics SampleMetrics() {
  QueryMetrics m;
  m.query_id = 7;
  m.candidates_initial = 100;
  m.candidates_final = 40;
  m.si_tests = 40;
  m.tests_saved_sub = 35;
  m.tests_saved_super = 25;
  m.answer_size = 12;
  m.sub_hits = 2;
  m.super_hits = 1;
  m.t_validate_ns = 1000;
  m.t_probe_ns = 2000;
  m.t_prune_ns = 500;
  m.t_verify_ns = 100000;
  m.t_maintenance_ns = 3000;
  return m;
}

TEST(QueryMetricsTest, QueryTimeIsCriticalPathSum) {
  const QueryMetrics m = SampleMetrics();
  EXPECT_EQ(m.QueryTimeNs(), 1000 + 2000 + 500 + 100000);
  EXPECT_EQ(m.OverheadNs(), 3000);
}

TEST(AggregateMetricsTest, StartsZeroed) {
  const AggregateMetrics a;
  EXPECT_EQ(a.queries, 0u);
  EXPECT_DOUBLE_EQ(a.AvgQueryTimeMs(), 0.0);
  EXPECT_DOUBLE_EQ(a.AvgOverheadMs(), 0.0);
  EXPECT_DOUBLE_EQ(a.AvgSiTests(), 0.0);
  EXPECT_DOUBLE_EQ(a.ValidationShareOfOverhead(), 0.0);
}

TEST(AggregateMetricsTest, AddAccumulates) {
  AggregateMetrics a;
  a.Add(SampleMetrics());
  a.Add(SampleMetrics());
  EXPECT_EQ(a.queries, 2u);
  EXPECT_EQ(a.si_tests, 80u);
  EXPECT_EQ(a.tests_saved_sub, 70u);
  EXPECT_EQ(a.tests_saved_super, 50u);
  EXPECT_EQ(a.sub_hits, 4u);
  EXPECT_EQ(a.super_hits, 2u);
  EXPECT_DOUBLE_EQ(a.AvgSiTests(), 40.0);
  EXPECT_NEAR(a.AvgQueryTimeMs(), 0.1035, 1e-9);
  EXPECT_NEAR(a.AvgOverheadMs(), 0.003, 1e-9);
}

TEST(AggregateMetricsTest, ExactHitCounting) {
  AggregateMetrics a;
  QueryMetrics hit = SampleMetrics();
  hit.exact_hit = true;
  hit.si_tests = 0;
  a.Add(hit);
  QueryMetrics hit_with_tests = SampleMetrics();
  hit_with_tests.exact_hit = true;
  hit_with_tests.si_tests = 3;
  a.Add(hit_with_tests);
  EXPECT_EQ(a.exact_hits, 2u);
  EXPECT_EQ(a.exact_hits_zero_test, 1u);
}

TEST(AggregateMetricsTest, EmptyShortcutCounting) {
  AggregateMetrics a;
  QueryMetrics m = SampleMetrics();
  m.empty_shortcut = true;
  a.Add(m);
  EXPECT_EQ(a.empty_shortcuts, 1u);
}

TEST(AggregateMetricsTest, ValidationShare) {
  AggregateMetrics a;
  QueryMetrics m;
  m.t_validate_ns = 25;
  m.t_maintenance_ns = 75;
  a.Add(m);
  EXPECT_DOUBLE_EQ(a.ValidationShareOfOverhead(), 0.25);
}

TEST(AggregateMetricsTest, ToStringMentionsKeyCounters) {
  AggregateMetrics a;
  a.Add(SampleMetrics());
  const std::string s = a.ToString();
  EXPECT_NE(s.find("queries=1"), std::string::npos);
  EXPECT_NE(s.find("si_tests=40"), std::string::npos);
}

}  // namespace
}  // namespace gcp
