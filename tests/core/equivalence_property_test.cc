// The central correctness oracle (Theorems 3 and 6 as an executable
// property): under ANY interleaving of queries and dataset changes, GC+
// (either model, any policy, any Method M) returns exactly the same answer
// sets as a cache-less Method M evaluated on the live dataset.

#include <gtest/gtest.h>

#include "dataset/aids_like.hpp"
#include "dataset/change_plan.hpp"
#include "workload/runner.hpp"
#include "workload/type_a.hpp"
#include "workload/type_b.hpp"

namespace gcp {
namespace {

struct Scenario {
  std::uint64_t seed;
  RunMode mode;
  ReplacementPolicy policy;
  QueryKind kind;
  std::size_t retrospective_budget = 0;
  bool use_ftv = false;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  std::string name = std::string(RunModeName(info.param.mode)) + "_" +
                     std::string(ReplacementPolicyName(info.param.policy)) +
                     "_" +
                     (info.param.kind == QueryKind::kSubgraph ? "Sub"
                                                              : "Super") +
                     "_s" + std::to_string(info.param.seed);
  if (info.param.retrospective_budget > 0) name += "_Retro";
  if (info.param.use_ftv) name += "_Ftv";
  return name;
}

class EquivalenceTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(EquivalenceTest, CachedAnswersEqualMethodM) {
  const Scenario& sc = GetParam();

  // Small AIDS-like corpus so the whole scenario runs in ~a second.
  AidsLikeOptions corpus_opts;
  corpus_opts.num_graphs = 60;
  corpus_opts.mean_vertices = 12;
  corpus_opts.stddev_vertices = 4;
  corpus_opts.min_vertices = 4;
  corpus_opts.max_vertices = 24;
  corpus_opts.num_labels = 8;
  corpus_opts.seed = sc.seed;
  const std::vector<Graph> initial = AidsLikeGenerator(corpus_opts).Generate();

  // Workload with strong repetition/containment structure (ZU) so the
  // cache actually fires on all hit paths.
  const Workload workload =
      GenerateTypeAByName(initial, "ZU", /*num_queries=*/120, sc.seed + 1);

  // Aggressive change plan: ~1 batch every 6 queries.
  Rng plan_rng(sc.seed + 2);
  const ChangePlan plan = ChangePlan::Generate(
      plan_rng, static_cast<std::uint32_t>(workload.size()),
      /*num_batches=*/20, /*ops_per_batch=*/4,
      static_cast<std::uint32_t>(initial.size()));

  RunnerConfig base_cfg;
  base_cfg.mode = RunMode::kMethodM;
  base_cfg.method = MatcherKind::kVf2;
  base_cfg.query_kind = sc.kind;
  base_cfg.record_answers = true;
  base_cfg.plan_seed = sc.seed + 3;
  const RunReport base = RunWorkload(initial, workload, plan, base_cfg);

  RunnerConfig cached_cfg = base_cfg;
  cached_cfg.mode = sc.mode;
  cached_cfg.policy = sc.policy;
  cached_cfg.cache_capacity = 20;  // small: forces evictions
  cached_cfg.window_capacity = 5;
  cached_cfg.retrospective_budget = sc.retrospective_budget;
  cached_cfg.use_ftv = sc.use_ftv;
  const RunReport cached = RunWorkload(initial, workload, plan, cached_cfg);

  ASSERT_EQ(base.answers.size(), cached.answers.size());
  for (std::size_t q = 0; q < base.answers.size(); ++q) {
    ASSERT_EQ(base.answers[q], cached.answers[q])
        << "answer mismatch at query " << q << " (" << cached.label << ")";
  }
  // The cache must actually have produced hits for the oracle to be
  // meaningful (ZU workloads repeat queries).
  if (sc.mode == RunMode::kCon) {
    EXPECT_GT(cached.agg.exact_hits + cached.agg.sub_hits +
                  cached.agg.super_hits + cached.agg.empty_shortcuts,
              0u)
        << "oracle vacuous: no cache activity";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EquivalenceTest,
    ::testing::Values(
        Scenario{1, RunMode::kCon, ReplacementPolicy::kHybrid,
                 QueryKind::kSubgraph},
        Scenario{2, RunMode::kCon, ReplacementPolicy::kPin,
                 QueryKind::kSubgraph},
        Scenario{3, RunMode::kCon, ReplacementPolicy::kPinc,
                 QueryKind::kSubgraph},
        Scenario{4, RunMode::kCon, ReplacementPolicy::kLru,
                 QueryKind::kSubgraph},
        Scenario{5, RunMode::kEvi, ReplacementPolicy::kHybrid,
                 QueryKind::kSubgraph},
        Scenario{6, RunMode::kEvi, ReplacementPolicy::kLfu,
                 QueryKind::kSubgraph},
        Scenario{7, RunMode::kCon, ReplacementPolicy::kHybrid,
                 QueryKind::kSupergraph},
        Scenario{8, RunMode::kEvi, ReplacementPolicy::kRandom,
                 QueryKind::kSupergraph},
        Scenario{9, RunMode::kCon, ReplacementPolicy::kRandom,
                 QueryKind::kSubgraph},
        Scenario{10, RunMode::kCon, ReplacementPolicy::kHybrid,
                 QueryKind::kSubgraph},
        // §8 retrospective validation must preserve exactness too.
        Scenario{11, RunMode::kCon, ReplacementPolicy::kHybrid,
                 QueryKind::kSubgraph, /*retrospective_budget=*/50},
        Scenario{12, RunMode::kCon, ReplacementPolicy::kHybrid,
                 QueryKind::kSupergraph, /*retrospective_budget=*/50},
        // Method M equipped with the updatable FTV index (its candidate
        // set is a filtered subset) must stay exact, cached or not.
        Scenario{13, RunMode::kMethodM, ReplacementPolicy::kHybrid,
                 QueryKind::kSubgraph, 0, /*use_ftv=*/true},
        Scenario{14, RunMode::kCon, ReplacementPolicy::kHybrid,
                 QueryKind::kSubgraph, 0, /*use_ftv=*/true},
        Scenario{15, RunMode::kCon, ReplacementPolicy::kHybrid,
                 QueryKind::kSupergraph, 0, /*use_ftv=*/true},
        Scenario{16, RunMode::kEvi, ReplacementPolicy::kHybrid,
                 QueryKind::kSubgraph, 0, /*use_ftv=*/true}),
    ScenarioName);

// Method-M invariance of the pruned candidate set (the premise of the
// paper's Figure 5): under a fixed configuration, the number of sub-iso
// tests per query is identical across VF2 / VF2+ / GQL.
TEST(MethodIndependenceTest, PrunedCandidateSetCountsAgreeAcrossMethods) {
  AidsLikeOptions corpus_opts;
  corpus_opts.num_graphs = 40;
  corpus_opts.mean_vertices = 10;
  corpus_opts.stddev_vertices = 3;
  corpus_opts.min_vertices = 4;
  corpus_opts.max_vertices = 18;
  corpus_opts.num_labels = 6;
  corpus_opts.seed = 77;
  const auto initial = AidsLikeGenerator(corpus_opts).Generate();
  const Workload workload = GenerateTypeAByName(initial, "ZU", 80, 78);
  Rng plan_rng(79);
  const ChangePlan plan = ChangePlan::Generate(
      plan_rng, 80, 10, 3, static_cast<std::uint32_t>(initial.size()));

  auto tests_for = [&](MatcherKind method) {
    RunnerConfig cfg;
    cfg.mode = RunMode::kCon;
    cfg.method = method;
    cfg.plan_seed = 80;
    cfg.warmup_queries = 0;
    const RunReport r = RunWorkload(initial, workload, plan, cfg);
    return r.agg.si_tests;
  };
  const auto vf2 = tests_for(MatcherKind::kVf2);
  const auto vf2p = tests_for(MatcherKind::kVf2Plus);
  const auto gql = tests_for(MatcherKind::kGraphQl);
  EXPECT_EQ(vf2, vf2p);
  EXPECT_EQ(vf2, gql);
}

}  // namespace
}  // namespace gcp
