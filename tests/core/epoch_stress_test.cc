// Epoch-engine gates, in two halves:
//
// 1. EpochSerialReplayTest — the bit-exactness oracle: over a 300-step
//    churn of interleaved queries and dataset changes (CON and EVI,
//    shards 1 and 4, changes through ApplyDatasetChanges AND direct
//    dataset mutation), --epoch=on must replay --epoch=off answers
//    bit-exactly and end with identical replacement decisions (same
//    admission/eviction/dedup counters, same resident digests). The
//    epoch engine must do it with ZERO engine-lock acquisitions on the
//    read path.
//
// 2. EpochStressTest (TSan-gated with the other concurrency suites) —
//    racing client threads + a racing mutator + the dedicated
//    maintenance thread against one epoch engine: every query completes
//    and answers only live-horizon ids, no per-shard drain ever touches
//    a foreign shard (lock_violations == 0), the read path stays
//    lock-free under the storm (read_phase_engine_lock_acquisitions ==
//    0), snapshots are published and retired snapshots reclaimed, and
//    quiescent stores are coherent afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

std::vector<Graph> SmallCorpus(std::uint64_t seed) {
  AidsLikeOptions opts;
  opts.num_graphs = 40;
  opts.mean_vertices = 9.0;
  opts.stddev_vertices = 3.0;
  opts.min_vertices = 4;
  opts.max_vertices = 14;
  opts.num_labels = 8;
  opts.seed = seed;
  return AidsLikeGenerator(opts).Generate();
}

struct EngineUnderTest {
  std::string label;
  std::unique_ptr<GraphDataset> ds;
  std::unique_ptr<GraphCachePlus> gc;
};

EngineUnderTest MakeEngine(const std::vector<Graph>& corpus, CacheModel model,
                           std::size_t shards, bool epoch) {
  EngineUnderTest e;
  e.label = std::string(epoch ? "epoch" : "lock") + "/shards=" +
            std::to_string(shards);
  e.ds = std::make_unique<GraphDataset>();
  e.ds->Bootstrap(corpus);
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  opts.num_shards = shards;
  opts.epoch_reads = epoch;
  opts.maintenance_queue_capacity = 8;
  e.gc = std::make_unique<GraphCachePlus>(e.ds.get(), opts);
  return e;
}

/// Deterministic change batch for churn step `step` (same shape as the
/// sharded equivalence churn: add a clone, delete a victim, flip an edge).
void ApplyChurnChanges(GraphDataset& ds, const std::vector<Graph>& corpus,
                       std::size_t step) {
  ds.AddGraph(corpus[(5 * step + 2) % corpus.size()]);
  const std::vector<GraphId> live = ds.LiveIds();
  const GraphId victim = live[(13 * step + 7) % live.size()];
  ASSERT_TRUE(ds.DeleteGraph(victim).ok());
  for (const GraphId id : ds.LiveIds()) {
    const Graph& g = ds.graph(id);
    if (g.NumVertices() >= 2 && g.HasEdge(0, 1)) {
      ASSERT_TRUE(ds.RemoveEdge(id, 0, 1).ok());
      if (step % 2 == 0) {
        ASSERT_TRUE(ds.AddEdge(id, 0, 1).ok());
      }
      break;
    }
  }
}

std::vector<std::uint64_t> SortedResidentDigests(const GraphCachePlus& gc) {
  std::vector<std::uint64_t> digests;
  gc.cache_shards().ForEachEntry(
      [&digests](const CachedQuery& e) { digests.push_back(e.digest); });
  std::sort(digests.begin(), digests.end());
  return digests;
}

void RunSerialReplay(CacheModel model) {
  constexpr std::size_t kSteps = 300;
  const std::vector<Graph> corpus = SmallCorpus(4321);
  const Workload w = GenerateTypeAByName(corpus, "ZU", kSteps, /*seed=*/909,
                                         /*zipf_alpha=*/1.2);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    EngineUnderTest lock_engine = MakeEngine(corpus, model, shards, false);
    EngineUnderTest epoch_engine = MakeEngine(corpus, model, shards, true);

    for (std::size_t step = 0; step < kSteps; ++step) {
      if (step % 7 == 5) {
        if (step % 14 == 5) {
          // Through the mutation API (publish + reconcile on the epoch
          // engine; stop-the-world on the lock engine).
          for (EngineUnderTest* e : {&lock_engine, &epoch_engine}) {
            e->gc->ApplyDatasetChanges([&corpus, step](GraphDataset& d) {
              ApplyChurnChanges(d, corpus, step);
            });
          }
        } else {
          // Direct dataset mutation between queries (single-threaded
          // convenience): the epoch engine must detect it via the log
          // tail and republish before the next read phase.
          ApplyChurnChanges(*lock_engine.ds, corpus, step);
          ApplyChurnChanges(*epoch_engine.ds, corpus, step);
        }
        continue;
      }
      const QueryKind kind =
          step % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
      const Graph& q = w.queries[step].query;
      const std::vector<GraphId> expect = lock_engine.gc->Query(q, kind).answer;
      EXPECT_EQ(epoch_engine.gc->Query(q, kind).answer, expect)
          << epoch_engine.label << " diverged from " << lock_engine.label
          << " at step " << step;
    }

    // Settle both engines at the same point in the reconcile cycle: the
    // churn can end on a mutation step, which the epoch engine reconciles
    // eagerly (at mutation time) and the lock engine lazily (at the next
    // query's sync) — same decision, different clock. One more query
    // forces the lazy sync; then flush.
    const std::vector<GraphId> settle_lock =
        lock_engine.gc->Query(w.queries[0].query, QueryKind::kSubgraph)
            .answer;
    EXPECT_EQ(epoch_engine.gc->Query(w.queries[0].query,
                                     QueryKind::kSubgraph).answer,
              settle_lock);
    for (EngineUnderTest* e : {&lock_engine, &epoch_engine}) {
      e->gc->FlushMaintenance();
      EXPECT_EQ(e->gc->cache_shards().lock_violations(), 0u) << e->label;
    }
    // Identical replacement decisions: same resident population, same
    // admission/eviction/dedup/hit counters.
    EXPECT_EQ(SortedResidentDigests(*epoch_engine.gc),
              SortedResidentDigests(*lock_engine.gc));
    const StatisticsManager lock_stats = lock_engine.gc->CacheStatsSnapshot();
    const StatisticsManager epoch_stats =
        epoch_engine.gc->CacheStatsSnapshot();
    EXPECT_EQ(epoch_stats.total_admissions, lock_stats.total_admissions);
    EXPECT_EQ(epoch_stats.total_evictions, lock_stats.total_evictions);
    EXPECT_EQ(epoch_stats.total_admission_dedups,
              lock_stats.total_admission_dedups);
    EXPECT_EQ(epoch_stats.total_exact_hits, lock_stats.total_exact_hits);
    EXPECT_EQ(epoch_stats.total_sub_hits, lock_stats.total_sub_hits);
    EXPECT_EQ(epoch_stats.total_super_hits, lock_stats.total_super_hits);
    EXPECT_GT(lock_stats.total_admissions, 0u);

    // The headline invariant: the epoch read path never took the engine
    // lock; the lock path took it on every query.
    EXPECT_EQ(epoch_stats.read_phase_engine_lock_acquisitions, 0u);
    EXPECT_GT(lock_stats.read_phase_engine_lock_acquisitions, 0u);
    EXPECT_GT(epoch_stats.snapshots_published, 1u);
    EXPECT_GT(epoch_stats.epochs_retired, 0u);
    EXPECT_EQ(lock_stats.snapshots_published, 0u);
  }
}

TEST(EpochSerialReplayTest, BitExactVsLockPathCon) {
  RunSerialReplay(CacheModel::kCon);
}

TEST(EpochSerialReplayTest, BitExactVsLockPathEvi) {
  RunSerialReplay(CacheModel::kEvi);
}

// --- Concurrent storm ------------------------------------------------------

constexpr std::size_t kThreads = 4;
constexpr std::size_t kQueries = 96;
constexpr std::size_t kShards = 8;

void RunStorm(CacheModel model) {
  const std::vector<Graph> corpus = SmallCorpus(777);
  const Workload w = GenerateTypeAByName(corpus, "ZU", kQueries, /*seed=*/31,
                                         /*zipf_alpha=*/1.2);

  GraphDataset ds;
  ds.Bootstrap(corpus);
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  opts.num_shards = kShards;
  opts.epoch_reads = true;
  opts.maintenance_thread = true;
  // Short timer + tiny queues: exercise timer wakeups, pressure wakeups
  // AND the backpressure (inline per-shard drain) path.
  opts.maintenance_interval_us = 100;
  opts.maintenance_queue_capacity = 4;
  GraphCachePlus gc(&ds, opts);

  std::atomic<std::size_t> ticket{0};
  std::atomic<bool> clients_done{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> max_answer_id{0};

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (std::size_t i = ticket.fetch_add(1); i < w.size();
           i = ticket.fetch_add(1)) {
        const QueryKind kind =
            i % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
        const QueryResult r = gc.Query(w.queries[i].query, kind);
        if (!r.answer.empty()) {
          std::uint64_t seen = max_answer_id.load();
          while (seen < r.answer.back() &&
                 !max_answer_id.compare_exchange_weak(seen, r.answer.back())) {
          }
        }
        answered.fetch_add(1);
      }
    });
  }
  // Mutator races the clients (and the maintenance thread): each batch
  // publishes a snapshot and reconciles shard-by-shard while queries keep
  // reading the predecessor.
  std::thread mutator([&] {
    std::size_t round = 0;
    // At least one batch even when the clients outrun this thread on a
    // loaded 1-core runner — the publish/retire counters below rely on a
    // mutation having happened.
    do {
      gc.ApplyDatasetChanges([&corpus, &round](GraphDataset& d) {
        d.AddGraph(corpus[round % corpus.size()]);
        const std::vector<GraphId> live = d.LiveIds();
        if (live.size() > corpus.size() / 2) {
          d.DeleteGraph(live[(3 * round) % live.size()]).ok();
        }
        ++round;
      });
      std::this_thread::yield();
    } while (!clients_done.load());
  });
  for (auto& c : clients) c.join();
  clients_done.store(true);
  mutator.join();

  gc.FlushMaintenance();
  EXPECT_EQ(answered.load(), w.size());
  EXPECT_LT(max_answer_id.load(), gc.dataset().IdHorizon());
  EXPECT_EQ(gc.AggregateSnapshot().queries, w.size());

  // THE epoch invariants, asserted under the storm:
  //   * no read phase took the engine lock;
  //   * snapshots were published and predecessors reclaimed behind grace
  //     periods;
  //   * no per-shard drain ever acquired a foreign shard's lock.
  EXPECT_EQ(gc.read_phase_engine_lock_acquisitions(), 0u);
  EXPECT_GT(gc.snapshots_published(), 1u);
  EXPECT_GT(gc.epoch_manager().reclaimed(), 0u);
  EXPECT_EQ(gc.epoch_manager().pinned_readers(), 0u);
  EXPECT_EQ(gc.cache_shards().lock_violations(), 0u);

  // The dedicated thread really ran drains (timer or pressure). On a
  // loaded 1-core runner the thread may not have been scheduled yet when
  // the clients finish — give it a bounded window to take its first tick.
  ASSERT_NE(gc.maintenance_thread(), nullptr);
  for (int spin = 0; spin < 2000 && gc.maintenance_thread()->wakeups() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_GT(gc.maintenance_thread()->wakeups(), 0u);

  // Coherent quiescent stores: every shard reconciled to the final
  // snapshot, every resident indicator aligned to the horizon, every
  // store within its per-shard capacity.
  gc.Query(w.queries[0].query, QueryKind::kSubgraph);
  gc.FlushMaintenance();
  const std::size_t horizon = gc.dataset().IdHorizon();
  gc.cache_shards().ForEachEntry([&](const CachedQuery& e) {
    EXPECT_EQ(e.valid.size(), horizon);
    EXPECT_EQ(e.answer.size(), horizon);
  });
  const std::size_t per_shard_cache = (16 + kShards - 1) / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_LE(gc.cache_shards().shard(s).cache_size(), per_shard_cache);
    EXPECT_EQ(gc.cache_shards().shard(s).watermark(),
              gc.dataset().log().LatestSeq());
  }
}

TEST(EpochStressTest, RacingMutatorStormCon) { RunStorm(CacheModel::kCon); }

TEST(EpochStressTest, RacingMutatorStormEvi) { RunStorm(CacheModel::kEvi); }

}  // namespace
}  // namespace gcp
