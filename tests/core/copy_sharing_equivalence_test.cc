// Copy-cost equivalence gates (PR 6), in two halves:
//
// 1. CopySharingEquivalenceTest — over a 300-step churn of interleaved
//    queries and dataset changes, the shipped configuration (survivors
//    share ownership of the resident graph, thread-arena scratch, SIMD
//    kernels at the widest detected level, on both the epoch and the
//    lock read path) must replay the full oracle configuration
//    (deep-copied survivors, plain-heap scratch, scalar kernels)
//    bit-exactly: same answers, same resident population, same
//    admission/eviction/hit counters.
//
// 2. Counter semantics: StatisticsManager::shard_lock_graph_copies is
//    pinned to zero whenever survivors share ownership (and is the only
//    thing the deep-copy oracle moves), and snapshot_summary_copies
//    increments exactly once per FTV-mutating change batch — zero on a
//    churn-free run, never on snapshot publishes.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/simd.hpp"
#include "core/graphcache_plus.hpp"
#include "dataset/aids_like.hpp"
#include "workload/type_a.hpp"

namespace gcp {
namespace {

std::vector<Graph> SmallCorpus(std::uint64_t seed) {
  AidsLikeOptions opts;
  opts.num_graphs = 40;
  opts.mean_vertices = 9.0;
  opts.stddev_vertices = 3.0;
  opts.min_vertices = 4;
  opts.max_vertices = 14;
  opts.num_labels = 8;
  opts.seed = seed;
  return AidsLikeGenerator(opts).Generate();
}

/// One engine configuration under comparison, including the
/// process-global toggles it runs its queries under.
struct PathConfig {
  std::string label;
  bool epoch = false;
  bool copy_survivors = false;
  bool arena = true;
  simd::SimdLevel simd_level = simd::SimdLevel::kScalar;
};

struct EngineUnderTest {
  PathConfig cfg;
  std::unique_ptr<GraphDataset> ds;
  std::unique_ptr<GraphCachePlus> gc;

  /// Applies this engine's process-global toggles; call before every
  /// interaction (the engines in one replay run under different ones).
  void Activate() const {
    SetArenaEnabled(cfg.arena);
    simd::SetSimdLevel(cfg.simd_level);
  }
};

EngineUnderTest MakeEngine(const std::vector<Graph>& corpus, CacheModel model,
                           const PathConfig& cfg) {
  EngineUnderTest e;
  e.cfg = cfg;
  e.ds = std::make_unique<GraphDataset>();
  e.ds->Bootstrap(corpus);
  GraphCachePlusOptions opts;
  opts.model = model;
  opts.cache_capacity = 16;
  opts.window_capacity = 4;
  opts.num_shards = 2;
  opts.epoch_reads = cfg.epoch;
  opts.copy_discovery_survivors = cfg.copy_survivors;
  opts.use_ftv_index = true;  // summary-clone accounting live everywhere
  e.gc = std::make_unique<GraphCachePlus>(e.ds.get(), opts);
  return e;
}

void ApplyChurnChanges(GraphDataset& ds, const std::vector<Graph>& corpus,
                       std::size_t step) {
  ds.AddGraph(corpus[(5 * step + 2) % corpus.size()]);
  const std::vector<GraphId> live = ds.LiveIds();
  const GraphId victim = live[(13 * step + 7) % live.size()];
  ASSERT_TRUE(ds.DeleteGraph(victim).ok());
  for (const GraphId id : ds.LiveIds()) {
    const Graph& g = ds.graph(id);
    if (g.NumVertices() >= 2 && g.HasEdge(0, 1)) {
      ASSERT_TRUE(ds.RemoveEdge(id, 0, 1).ok());
      if (step % 2 == 0) {
        ASSERT_TRUE(ds.AddEdge(id, 0, 1).ok());
      }
      break;
    }
  }
}

std::vector<std::uint64_t> SortedResidentDigests(const GraphCachePlus& gc) {
  std::vector<std::uint64_t> digests;
  gc.cache_shards().ForEachEntry(
      [&digests](const CachedQuery& e) { digests.push_back(e.digest); });
  std::sort(digests.begin(), digests.end());
  return digests;
}

/// Restores the default process-global toggles when a test exits.
struct ToggleGuard {
  ~ToggleGuard() {
    SetArenaEnabled(true);
    simd::SetSimdLevel(simd::DetectedSimdLevel());
  }
};

void RunChurnReplay(CacheModel model) {
  ToggleGuard guard;
  constexpr std::size_t kSteps = 300;
  const std::vector<Graph> corpus = SmallCorpus(4321);
  const Workload w = GenerateTypeAByName(corpus, "ZU", kSteps, /*seed=*/909,
                                         /*zipf_alpha=*/1.2);

  // The full "before" oracle, then the shipped configuration on both
  // read paths.
  const PathConfig oracle_cfg{"oracle(copy+heap+scalar,lock)", false, true,
                              false, simd::SimdLevel::kScalar};
  const std::vector<PathConfig> variant_cfgs = {
      {"shared+arena+simd,lock", false, false, true,
       simd::DetectedSimdLevel()},
      {"shared+arena+simd,epoch", true, false, true,
       simd::DetectedSimdLevel()},
  };

  EngineUnderTest oracle = MakeEngine(corpus, model, oracle_cfg);
  std::vector<EngineUnderTest> variants;
  for (const PathConfig& cfg : variant_cfgs) {
    variants.push_back(MakeEngine(corpus, model, cfg));
  }

  std::size_t mutation_batches = 0;
  for (std::size_t step = 0; step < kSteps; ++step) {
    if (step % 7 == 5) {
      ++mutation_batches;
      oracle.Activate();
      oracle.gc->ApplyDatasetChanges([&corpus, step](GraphDataset& d) {
        ApplyChurnChanges(d, corpus, step);
      });
      for (EngineUnderTest& e : variants) {
        e.Activate();
        e.gc->ApplyDatasetChanges([&corpus, step](GraphDataset& d) {
          ApplyChurnChanges(d, corpus, step);
        });
      }
      continue;
    }
    const QueryKind kind =
        step % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph;
    const Graph& q = w.queries[step].query;
    oracle.Activate();
    const std::vector<GraphId> expect = oracle.gc->Query(q, kind).answer;
    for (EngineUnderTest& e : variants) {
      e.Activate();
      EXPECT_EQ(e.gc->Query(q, kind).answer, expect)
          << e.cfg.label << " diverged from the oracle at step " << step;
    }
  }

  // Settle: the churn ends on a mutation batch, which the lock path
  // absorbs (and FTV-syncs) lazily at the next query. One more query
  // puts every engine at the same point in the sync cycle.
  oracle.Activate();
  const std::vector<GraphId> settle =
      oracle.gc->Query(w.queries[0].query, QueryKind::kSubgraph).answer;
  for (EngineUnderTest& e : variants) {
    e.Activate();
    EXPECT_EQ(e.gc->Query(w.queries[0].query, QueryKind::kSubgraph).answer,
              settle)
        << e.cfg.label;
  }

  oracle.Activate();
  oracle.gc->FlushMaintenance();
  const StatisticsManager oracle_stats = oracle.gc->CacheStatsSnapshot();
  const std::vector<std::uint64_t> oracle_digests =
      SortedResidentDigests(*oracle.gc);

  // The oracle really exercised the deep-copy path, and its summary
  // clones happened exactly once per mutating batch.
  EXPECT_GT(oracle_stats.total_admissions, 0u);
  EXPECT_GT(oracle_stats.shard_lock_graph_copies, 0u);
  EXPECT_EQ(oracle_stats.snapshot_summary_copies, mutation_batches);

  for (EngineUnderTest& e : variants) {
    e.Activate();
    e.gc->FlushMaintenance();
    const StatisticsManager stats = e.gc->CacheStatsSnapshot();
    // Identical replacement decisions...
    EXPECT_EQ(SortedResidentDigests(*e.gc), oracle_digests) << e.cfg.label;
    EXPECT_EQ(stats.total_admissions, oracle_stats.total_admissions)
        << e.cfg.label;
    EXPECT_EQ(stats.total_evictions, oracle_stats.total_evictions)
        << e.cfg.label;
    EXPECT_EQ(stats.total_admission_dedups,
              oracle_stats.total_admission_dedups)
        << e.cfg.label;
    EXPECT_EQ(stats.total_exact_hits, oracle_stats.total_exact_hits)
        << e.cfg.label;
    EXPECT_EQ(stats.total_sub_hits, oracle_stats.total_sub_hits)
        << e.cfg.label;
    EXPECT_EQ(stats.total_super_hits, oracle_stats.total_super_hits)
        << e.cfg.label;
    // ...with ZERO graphs deep-copied under a shard lock, and the same
    // one-clone-per-mutating-batch FTV accounting.
    EXPECT_EQ(stats.shard_lock_graph_copies, 0u) << e.cfg.label;
    EXPECT_EQ(stats.snapshot_summary_copies, mutation_batches)
        << e.cfg.label;
  }
}

TEST(CopySharingEquivalenceTest, BitExactVsDeepCopyOracleCon) {
  RunChurnReplay(CacheModel::kCon);
}

TEST(CopySharingEquivalenceTest, BitExactVsDeepCopyOracleEvi) {
  RunChurnReplay(CacheModel::kEvi);
}

TEST(CopySharingEquivalenceTest, NoMutationsMeansNoSummaryCopies) {
  ToggleGuard guard;
  const std::vector<Graph> corpus = SmallCorpus(99);
  const Workload w = GenerateTypeAByName(corpus, "ZZ", 40, /*seed=*/17,
                                         /*zipf_alpha=*/1.2);
  for (const bool epoch : {false, true}) {
    EngineUnderTest e = MakeEngine(
        corpus, CacheModel::kCon,
        PathConfig{epoch ? "epoch" : "lock", epoch, false, true,
                   simd::DetectedSimdLevel()});
    e.Activate();
    for (std::size_t i = 0; i < w.size(); ++i) {
      e.gc->Query(w.queries[i].query,
                  i % 2 == 0 ? QueryKind::kSubgraph : QueryKind::kSupergraph);
    }
    e.gc->FlushMaintenance();
    const StatisticsManager stats = e.gc->CacheStatsSnapshot();
    // Publishes alias the FTV summary vector: snapshots may have been
    // published (epoch path), but with no FTV-mutating batch not one
    // clone of the summaries is allowed.
    EXPECT_EQ(stats.snapshot_summary_copies, 0u);
    EXPECT_EQ(stats.shard_lock_graph_copies, 0u);
    EXPECT_GT(stats.total_admissions, 0u);
  }
}

}  // namespace
}  // namespace gcp
